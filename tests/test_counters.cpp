#include <gtest/gtest.h>

#include "trace/counters.h"

namespace stclock {
namespace {

TEST(Counters, TracksTotalsAndKinds) {
  MessageCounters c;
  c.on_send(MessageKind::kRound, 45);
  c.on_send(MessageKind::kRound, 45);
  c.on_send(MessageKind::kEcho, 9);
  c.on_deliver(MessageKind::kRound);

  EXPECT_EQ(c.total_sent(), 3u);
  EXPECT_EQ(c.total_delivered(), 1u);
  EXPECT_EQ(c.total_bytes(), 99u);
  EXPECT_EQ(c.kinds()[static_cast<std::size_t>(MessageKind::kRound)].messages, 2u);
  EXPECT_EQ(c.kinds()[static_cast<std::size_t>(MessageKind::kRound)].bytes, 90u);
  EXPECT_EQ(c.kinds()[static_cast<std::size_t>(MessageKind::kEcho)].messages, 1u);
}

TEST(Counters, ByKindConvertsToStringsAtReportTime) {
  MessageCounters c;
  c.on_send(MessageKind::kRound, 45);
  c.on_send(MessageKind::kRound, 45);
  c.on_send(MessageKind::kEcho, 9);

  const auto by_kind = c.by_kind();
  ASSERT_TRUE(by_kind.contains("round"));
  EXPECT_EQ(by_kind.at("round").messages, 2u);
  EXPECT_EQ(by_kind.at("round").bytes, 90u);
  EXPECT_EQ(by_kind.at("echo").messages, 1u);
  // Kinds with no traffic are omitted from the report.
  EXPECT_EQ(by_kind.size(), 2u);
  EXPECT_FALSE(by_kind.contains("init"));
}

TEST(Counters, ResetClearsEverything) {
  MessageCounters c;
  c.on_send(MessageKind::kInit, 1);
  c.on_deliver(MessageKind::kInit);
  c.reset();
  EXPECT_EQ(c.total_sent(), 0u);
  EXPECT_EQ(c.total_delivered(), 0u);
  EXPECT_EQ(c.total_bytes(), 0u);
  EXPECT_TRUE(c.by_kind().empty());
  for (const KindCount& k : c.kinds()) {
    EXPECT_EQ(k.messages, 0u);
    EXPECT_EQ(k.bytes, 0u);
  }
}

}  // namespace
}  // namespace stclock
