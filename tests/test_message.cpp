#include <gtest/gtest.h>

#include "sim/message.h"

namespace stclock {
namespace {

TEST(MessageTest, Kinds) {
  EXPECT_EQ(message_kind(Message(RoundMsg{1, {}})), MessageKind::kRound);
  EXPECT_EQ(message_kind(Message(InitMsg{1})), MessageKind::kInit);
  EXPECT_EQ(message_kind(Message(EchoMsg{1})), MessageKind::kEcho);
  EXPECT_EQ(message_kind(Message(CnvValueMsg{1, 0.5})), MessageKind::kCnv);
  EXPECT_EQ(message_kind(Message(LwValueMsg{1})), MessageKind::kLw);
  EXPECT_EQ(message_kind(Message(LeaderTimeMsg{1, 0.5})), MessageKind::kLeader);
  EXPECT_EQ(message_kind(Message(LockstepMsg{1, 0})), MessageKind::kLockstep);
}

TEST(MessageTest, KindNames) {
  EXPECT_STREQ(message_kind_name(MessageKind::kRound), "round");
  EXPECT_STREQ(message_kind_name(MessageKind::kInit), "init");
  EXPECT_STREQ(message_kind_name(MessageKind::kEcho), "echo");
  EXPECT_STREQ(message_kind_name(MessageKind::kCnv), "cnv");
  EXPECT_STREQ(message_kind_name(MessageKind::kLw), "lw");
  EXPECT_STREQ(message_kind_name(MessageKind::kLeader), "leader");
  EXPECT_STREQ(message_kind_name(MessageKind::kLockstep), "lockstep");
}

TEST(MessageTest, RoundExtraction) {
  EXPECT_EQ(message_round(Message(RoundMsg{42, {}})), 42u);
  EXPECT_EQ(message_round(Message(InitMsg{7})), 7u);
  EXPECT_EQ(message_round(Message(EchoMsg{9})), 9u);
  EXPECT_EQ(message_round(Message(CnvValueMsg{3, 0.0})), 3u);
}

TEST(MessageTest, SizeGrowsWithSignatures) {
  RoundMsg small{1, {}};
  RoundMsg big{1, SigBundle(5)};
  EXPECT_LT(message_size_bytes(Message(small)), message_size_bytes(Message(big)));
  // Each signature adds signer id + MAC.
  EXPECT_EQ(message_size_bytes(Message(big)) - message_size_bytes(Message(small)),
            5 * (4 + crypto::kDigestSize));
}

TEST(MessageTest, FixedSizesForUnsignedKinds) {
  EXPECT_EQ(message_size_bytes(Message(InitMsg{1})), message_size_bytes(Message(InitMsg{999})));
  EXPECT_EQ(message_size_bytes(Message(EchoMsg{1})), message_size_bytes(Message(InitMsg{1})));
  // Value-carrying kinds are 8 bytes larger.
  EXPECT_EQ(message_size_bytes(Message(CnvValueMsg{1, 0.0})) -
                message_size_bytes(Message(LwValueMsg{1})),
            8u);
}

TEST(MessageTest, SigningPayloadDependsOnlyOnRound) {
  EXPECT_EQ(round_signing_payload(5), round_signing_payload(5));
  EXPECT_NE(round_signing_payload(5), round_signing_payload(6));
}

}  // namespace
}  // namespace stclock
