#include "baselines/unsynchronized.h"

namespace stclock::baselines {

BaselineResult run_unsynchronized(const BaselineSpec& spec) {
  return to_baseline_result(experiment::run_scenario(to_scenario(spec, "unsynchronized")));
}

}  // namespace stclock::baselines
