#pragma once

#include "core/config.h"

/// Closed-form bounds for Algorithm CSA (the clock synchronization
/// algorithm), derived from the three broadcast-primitive properties.
///
/// These reproduce the *shape* of the paper's theorems — precision
/// Theta(tdel + rho*P), hardware-optimal accuracy up to O((alpha+D)/P), and
/// bounded resynchronization periods — with self-contained constants derived
/// in the comments of theory.cpp. Tests and experiments check measured
/// behaviour against these bounds; EXPERIMENTS.md records the tightness.
namespace stclock::theory {

struct Bounds {
  /// Acceptance spread D of the configured primitive (tdel or 2*tdel).
  Duration accept_spread = 0;
  /// Resolved adjustment constant alpha (config value or default (1+rho)*D).
  Duration alpha = 0;
  /// Maximal relative drift between two correct clocks:
  /// gamma = (1+rho) - 1/(1+rho).
  double gamma = 0;
  /// Dmax: bound on |C_i(t) - C_j(t)| over all times and honest i, j
  /// (precision / agreement).
  Duration precision = 0;
  /// Bound on the spread of acceptance (pulse) real times within one round.
  Duration pulse_spread = 0;
  /// Real-time bounds between consecutive pulses of one correct process.
  Duration min_period = 0;
  Duration max_period = 0;
  /// Long-run logical clock rate bounds (accuracy). Optimality: these tend
  /// to the hardware bounds 1/(1+rho) and (1+rho) as (alpha + D)/P -> 0.
  double rate_lo = 0;
  double rate_hi = 0;
};

[[nodiscard]] Bounds derive_bounds(const SyncConfig& cfg);

/// Resolved alpha for a config (default (1+rho) * D when cfg.alpha <= 0).
[[nodiscard]] Duration resolve_alpha(const SyncConfig& cfg);

/// Acceptance spread D for a config's variant.
[[nodiscard]] Duration accept_spread(const SyncConfig& cfg);

}  // namespace stclock::theory
