// Experiment T6 — Ablation of the adjustment mode (instant vs amortized).
//
// The paper analyzes instantaneous corrections (C := kP + alpha at every
// acceptance); real deployments amortize the correction over a window so the
// logical clock never jumps. This ablation quantifies what amortization
// costs: a correction still in flight when the skew is sampled shows up as
// extra precision error (up to the in-flight fraction of the correction),
// and a too-wide window can leave corrections unfinished when the next round
// lands. Run at n up to 25 — made affordable by the interned-broadcast /
// slim-queue hot path.

#include "bench_common.h"

namespace stclock {
namespace {

std::vector<experiment::SweepCell> build_cells(std::uint64_t seed) {
  experiment::SweepGrid grid(bench::adversarial_scenario(bench::default_auth_config(), 30.0,
                                                         seed));
  grid.axis("variant", {bench::variant_value(bench::default_auth_config()),
                        bench::variant_value(bench::default_echo_config())});

  std::vector<experiment::SweepGrid::Value> sizes;
  for (const std::uint32_t n : {7u, 13u, 25u}) {
    sizes.emplace_back(std::to_string(n), [n](experiment::ScenarioSpec& spec) {
      spec.cfg.n = n;
      spec.cfg.f = spec.cfg.variant == Variant::kAuthenticated ? max_faults_authenticated(n)
                                                               : max_faults_echo(n);
    });
  }
  grid.axis("n", std::move(sizes));

  std::vector<experiment::SweepGrid::Value> modes;
  modes.emplace_back("instant", [](experiment::ScenarioSpec& spec) {
    spec.cfg.adjust = AdjustMode::kInstant;
  });
  // Window multipliers over the default (half the minimum resynchronization
  // period); 1.9 nearly fills the period — the widest window validate()
  // admits before consecutive corrections could overlap.
  for (const double mult : {0.25, 1.0, 1.9}) {
    modes.emplace_back("amortized/" + Table::num(mult, 2),
                       [mult](experiment::ScenarioSpec& spec) {
                         spec.cfg.adjust = AdjustMode::kAmortized;
                         const auto bounds = theory::derive_bounds(spec.cfg);
                         spec.cfg.amortize_window = mult * bounds.min_period / 2;
                       });
  }
  grid.axis("adjust", std::move(modes));
  return grid.cells();
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("T6 — adjustment-mode ablation (instant vs amortized)",
                      "amortized corrections trade a bounded precision penalty for "
                      "jump-free logical clocks", opts);

  const std::vector<experiment::SweepCell> cells = build_cells(opts.seed);
  const std::vector<experiment::ScenarioResult> results = bench::run_cells(cells, opts);
  if (bench::emit_json(cells, results, opts)) return 0;

  Table table({"variant", "n", "adjust", "window(s)", "skew(s)", "Dmax(s)", "max rate",
               "rate bound", "min period(s)", "live"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SyncConfig& cfg = cells[i].spec.cfg;
    const experiment::ScenarioResult& r = results[i];
    table.add_row({cfg.variant_name(), std::to_string(cfg.n), cells[i].labels[2].second,
                   cfg.adjust == AdjustMode::kInstant ? "-" : Table::num(cfg.amortize_window, 3),
                   Table::sci(r.steady_skew), Table::sci(r.bounds.precision),
                   Table::num(r.envelope.max_rate, 6), Table::num(r.bounds.rate_hi, 6),
                   Table::num(r.min_period, 3), r.live ? "yes" : "NO"});
  }
  stclock::bench::emit(table, opts);
  std::cout << "(expect: amortized skew exceeds instant by at most the in-flight correction;\n"
               " liveness holds for all windows; rate stays inside the derived envelope)\n";
  return 0;
}
