#include "resultstore/cache_key.h"

#include "experiment/engine_info.h"
#include "scenfile/scenfile.h"
#include "util/digest.h"

namespace stclock::resultstore {

std::string cell_key(const experiment::ScenarioSpec& spec, std::string_view engine_fp) {
  util::Digest d;
  // sim_threads is an execution knob, not a scenario parameter: the parallel
  // engine is bit-identical to the sequential one, so a cached result from
  // either satisfies both. Pin it before serializing.
  experiment::ScenarioSpec keyed = experiment::resolved_spec(spec);
  keyed.sim_threads = 1;
  d.update(scenfile::spec_to_json(keyed));
  d.update_u64(spec.seed);
  d.update(engine_fp);
  return d.hex();
}

std::string cell_key(const experiment::ScenarioSpec& spec) {
  return cell_key(spec, experiment::engine_fingerprint());
}

}  // namespace stclock::resultstore
