#include "crypto/signature.h"

#include "crypto/hmac.h"
#include "util/bytes.h"
#include "util/contracts.h"

namespace stclock::crypto {

KeyRegistry::KeyRegistry(std::uint32_t n, std::uint64_t master_seed) {
  ST_REQUIRE(n > 0, "KeyRegistry: need at least one node");
  ByteWriter master;
  master.str("stclock-master-key");
  master.u64(master_seed);
  const Digest master_key = sha256(master.data());

  secrets_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ByteWriter w;
    w.str("node-secret");
    w.u32(i);
    secrets_.push_back(hmac_sha256(master_key, w.data()));
  }
}

Signer KeyRegistry::signer_for(NodeId id) const {
  ST_REQUIRE(id < secrets_.size(), "signer_for: node id out of range");
  return Signer(id, this);
}

Signature KeyRegistry::sign_as(NodeId signer, std::span<const std::uint8_t> payload) const {
  ST_REQUIRE(signer < secrets_.size(), "sign_as: node id out of range");
  return Signature{signer, hmac_sha256(secrets_[signer], payload)};
}

bool KeyRegistry::verify(const Signature& sig, std::span<const std::uint8_t> payload) const {
  if (sig.signer >= secrets_.size()) return false;
  return hmac_sha256(secrets_[sig.signer], payload) == sig.mac;
}

Signature Signer::sign(std::span<const std::uint8_t> payload) const {
  return registry_->sign_as(id_, payload);
}

}  // namespace stclock::crypto
