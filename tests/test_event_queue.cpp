#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace stclock {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push_timer(3.0, TimerEvent{0, 1});
  q.push_timer(1.0, TimerEvent{0, 2});
  q.push_timer(2.0, TimerEvent{0, 3});

  EXPECT_EQ(q.pop().timer.id, 2u);
  EXPECT_EQ(q.pop().timer.id, 3u);
  EXPECT_EQ(q.pop().timer.id, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  for (TimerId id = 1; id <= 5; ++id) q.push_timer(1.0, TimerEvent{0, id});
  for (TimerId id = 1; id <= 5; ++id) EXPECT_EQ(q.pop().timer.id, id);
}

TEST(EventQueue, MixedTimersAndDeliveries) {
  EventQueue q;
  auto msg = std::make_shared<const Message>(InitMsg{1});
  q.push_delivery(2.0, DeliveryEvent{1, 0, msg, 1.5});
  q.push_timer(1.0, TimerEvent{0, 7});

  const Event first = q.pop();
  EXPECT_TRUE(first.is_timer);
  const Event second = q.pop();
  EXPECT_FALSE(second.is_timer);
  EXPECT_EQ(second.delivery.to, 1u);
  EXPECT_EQ(second.delivery.from, 0u);
  EXPECT_DOUBLE_EQ(second.delivery.sent_at, 1.5);
}

TEST(EventQueue, NextTimePeeksWithoutPopping) {
  EventQueue q;
  q.push_timer(4.5, TimerEvent{0, 1});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.5);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EmptyQueueOperationsThrow) {
  EventQueue q;
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(EventQueue, RejectsNegativeTimeAndNullMessage) {
  EventQueue q;
  EXPECT_THROW(q.push_timer(-1.0, TimerEvent{0, 1}), std::logic_error);
  EXPECT_THROW(q.push_delivery(1.0, DeliveryEvent{0, 0, nullptr, 0.0}), std::logic_error);
}

TEST(EventQueue, LargeInterleavedLoad) {
  EventQueue q;
  // Push times 999, 998, ..., 0 then verify ascending pop order.
  for (int i = 999; i >= 0; --i) {
    q.push_timer(static_cast<RealTime>(i), TimerEvent{0, static_cast<TimerId>(i)});
  }
  RealTime prev = -1;
  while (!q.empty()) {
    const Event e = q.pop();
    EXPECT_GT(e.time, prev);
    prev = e.time;
  }
}

}  // namespace
}  // namespace stclock
