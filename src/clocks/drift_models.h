#pragma once

#include <vector>

#include "clocks/hardware_clock.h"
#include "util/rng.h"
#include "util/types.h"

/// Factories for hardware-clock trajectories.
///
/// In the model, the adversary fixes clock behaviour subject to the drift
/// bound rho; these factories cover the trajectories used by tests and
/// experiments, from benign (constant rate) to worst-case (extremal rates
/// chosen to maximize divergence).
namespace stclock::drift {

/// Constant-rate clock.
[[nodiscard]] HardwareClock constant(LocalTime initial, double rate);

/// Constant rate drawn uniformly from [1/(1+rho), 1+rho]; initial value
/// drawn uniformly from [0, max_initial].
[[nodiscard]] HardwareClock random_constant(Rng& rng, double rho, LocalTime max_initial);

/// Rate re-drawn uniformly within the drift bound at exponentially
/// distributed intervals (mean `switch_mean`) until `horizon`. Models an
/// oscillator wandering within spec.
[[nodiscard]] HardwareClock random_walk(Rng& rng, double rho, LocalTime max_initial,
                                        RealTime horizon, Duration switch_mean);

/// Worst-case divergent pair-style trajectories: the node runs at the
/// extremal fast (1+rho) or slow (1/(1+rho)) rate throughout.
[[nodiscard]] HardwareClock extremal_fast(LocalTime initial, double rho);
[[nodiscard]] HardwareClock extremal_slow(LocalTime initial, double rho);

/// A fleet of n clocks engineered to stress skew: half run fast, half slow,
/// initial values spread across [0, max_initial].
[[nodiscard]] std::vector<HardwareClock> adversarial_fleet(std::uint32_t n, double rho,
                                                           LocalTime max_initial);

/// A fleet of n independent random-walk clocks.
[[nodiscard]] std::vector<HardwareClock> random_fleet(Rng& rng, std::uint32_t n, double rho,
                                                      LocalTime max_initial, RealTime horizon,
                                                      Duration switch_mean);

}  // namespace stclock::drift
