#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "experiment/scenario.h"

/// Name → protocol mapping for the unified scenario engine.
///
/// Every protocol the repo can run — the two Srikanth–Toueg variants and all
/// prior-work baselines — registers here under a stable string name, so
/// sweeps, comparison tables, and command lines can select protocols
/// uniformly. The global registry is pre-populated with the built-ins:
///
///   "auth"                     Srikanth–Toueg, authenticated (n >= 2f+1)
///   "echo"                     Srikanth–Toueg, init/echo     (n >= 3f+1)
///   "lundelius_welch"          fault-tolerant midpoint averaging (f < n/3)
///   "interactive_convergence"  CNV egocentric averaging (f < n/3, agreement only)
///   "gradient"                 GCS-style neighbor averaging (local-skew baseline)
///   "hssd"                     HSSD-style single-signature authenticated sync
///   "leader"                   NTP-like leader strawman, honest leader
///   "leader_corrupt"           same, leader under adversary control
///   "unsynchronized"           free-running clocks (control)
namespace stclock::experiment {

class ProtocolRegistry {
 public:
  struct Entry {
    std::string name;
    EngineMode mode = EngineMode::kBaseline;
    /// Normalizes the spec before the engine runs — e.g. "auth" forces
    /// cfg.variant, "leader_corrupt" forces the kLeaderLie attack. May be
    /// null.
    std::function<void(ScenarioSpec&)> prepare;
    /// Builds one honest process per node.
    ProcessFactory factory;
  };

  /// The process-wide registry, pre-populated with the built-in protocols.
  /// Registration is not thread-safe; mutate only during startup (lookups
  /// from sweep worker threads are fine).
  [[nodiscard]] static ProtocolRegistry& global();

  /// Throws std::logic_error on duplicate names or a missing factory.
  void add(Entry entry);

  /// nullptr when unknown.
  [[nodiscard]] const Entry* find(const std::string& name) const;
  /// Throws std::out_of_range (listing the known names) when unknown.
  [[nodiscard]] const Entry& at(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Entry> entries_;
};

}  // namespace stclock::experiment
