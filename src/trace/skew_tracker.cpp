#include "trace/skew_tracker.h"

#include <algorithm>
#include <cmath>

namespace stclock {

SkewTracker::SkewTracker(Duration series_interval, std::function<bool(NodeId)> include)
    : series_interval_(series_interval), include_(std::move(include)) {}

void SkewTracker::set_stabilization(RealTime after, double threshold) {
  stab_armed_ = true;
  stab_after_ = after;
  stab_threshold_ = threshold;
}

void SkewTracker::sample(const Simulator& sim) {
  const RealTime t = sim.now();
  if (min_sample_gap_ > 0 && last_sample_time_ >= 0 &&
      t - last_sample_time_ < min_sample_gap_) {
    return;
  }
  // The adjacency live RIGHT NOW: on a dynamic topology this moves with the
  // epoch schedule, so local skew is always measured against the links that
  // existed at sampling time. Adjacent-pair skew only needs the per-node
  // readings when the graph is sparse; on a complete topology every pair is
  // adjacent, so the local skew IS the spread and the O(E) pass is skipped.
  const Topology* topology = sim.current_topology();
  const bool sparse = topology != nullptr && !topology->is_complete();
  const std::uint64_t prev_gen = cur_gen_;
  if (sparse) {
    pool_n_ = std::min(sim.n(), kLocalSkewPoolMaxN);
    values_.resize(pool_n_);
    gen_.resize(pool_n_, 0);
    ++cur_gen_;
  }

  double lo = 0, hi = 0;
  bool first = true;
  std::uint32_t sampled_count = 0;
  bool set_grew = false;       // a node sampled now that was not last time
  bool value_changed = false;  // a re-sampled node read a different value
  for (NodeId id : sim.honest_ids()) {
    // observe_* rather than is_started/logical: mid-window under the parallel
    // engine these report the committed pre-state, keeping hook-driven samples
    // bit-identical to the sequential engine.
    if (!sim.observe_started(id)) continue;
    if (include_ ? !include_(id) : !sim.observe_include(id)) continue;
    const double c = sim.observe_logical(id, t);
    if (sparse && id < pool_n_) {
      if (gen_[id] != prev_gen) {
        set_grew = true;
      } else if (values_[id] != c) {
        value_changed = true;
      }
      values_[id] = c;
      gen_[id] = cur_gen_;
      ++sampled_count;
    }
    if (first) {
      lo = hi = c;
      first = false;
    } else {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
  }
  if (first) return;  // nothing to measure yet
  last_sample_time_ = t;

  const double spread = hi - lo;
  if (spread > max_skew_) {
    max_skew_ = spread;
    max_skew_time_ = t;
  }
  if (t >= steady_start_) steady_max_skew_ = std::max(steady_max_skew_, spread);

  if (stab_armed_) {
    if (t < stab_after_) {
      // Pre-corruption reference for the auto threshold: how tight the run
      // was once past its convergence prefix.
      if (t >= steady_start_) stab_pre_max_ = std::max(stab_pre_max_, spread);
    } else {
      stab_post_seen_ = true;
      const double threshold = stab_threshold_ > 0 ? stab_threshold_ : stab_pre_max_;
      if (spread > threshold) {
        stab_candidate_ = -1;  // violating: any inside streak is void
      } else if (stab_candidate_ < 0) {
        stab_candidate_ = t;  // a new inside streak begins here
      }
    }
  }

  double local = spread;
  if (sparse) {
    // Counts equal with no additions means no drops either, so the sampled
    // set is exactly last sample's; identical values over an identical
    // graph make the rescan a pure recomputation — reuse its result.
    const bool same_set = !set_grew && sampled_count == last_sampled_count_;
    if (local_cache_valid_ && topology == last_topology_ && same_set && !value_changed) {
      local = last_local_;
    } else {
      local = 0;
      for (NodeId a : sim.honest_ids()) {
        if (a >= pool_n_) break;  // honest_ids is ascending; pooled prefix only
        if (gen_[a] != cur_gen_) continue;
        const auto [nbrs, degree] = topology->neighbor_span(a);
        for (std::size_t i = 0; i < degree; ++i) {
          const NodeId b = nbrs[i];
          if (b > a && b < pool_n_ && gen_[b] == cur_gen_) {
            local = std::max(local, std::abs(values_[a] - values_[b]));
          }
        }
      }
      last_local_ = local;
      local_cache_valid_ = true;
    }
    last_topology_ = topology;
    last_sampled_count_ = sampled_count;
  }
  local_skew_ = std::max(local_skew_, local);
  if (t >= steady_start_) steady_local_skew_ = std::max(steady_local_skew_, local);

  if (last_series_sample_ < 0 || t - last_series_sample_ >= series_interval_) {
    series_.emplace_back(t, spread);
    last_series_sample_ = t;
  }
}

}  // namespace stclock
