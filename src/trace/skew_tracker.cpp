#include "trace/skew_tracker.h"

#include <algorithm>

namespace stclock {

SkewTracker::SkewTracker(Duration series_interval, std::function<bool(NodeId)> include)
    : series_interval_(series_interval), include_(std::move(include)) {}

void SkewTracker::sample(const Simulator& sim) {
  const RealTime t = sim.now();
  double lo = 0, hi = 0;
  bool first = true;
  for (NodeId id : sim.honest_ids()) {
    if (!sim.is_started(id)) continue;
    if (include_ && !include_(id)) continue;
    const double c = sim.logical(id).read(t);
    if (first) {
      lo = hi = c;
      first = false;
    } else {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
  }
  if (first) return;  // nothing to measure yet

  const double spread = hi - lo;
  if (spread > max_skew_) {
    max_skew_ = spread;
    max_skew_time_ = t;
  }
  if (t >= steady_start_) steady_max_skew_ = std::max(steady_max_skew_, spread);

  if (last_series_sample_ < 0 || t - last_series_sample_ >= series_interval_) {
    series_.emplace_back(t, spread);
    last_series_sample_ = t;
  }
}

}  // namespace stclock
