#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiment/registry.h"
#include "experiment/sweep.h"
#include "scenfile/scenfile.h"
#include "sim/corruption.h"

/// The self-stabilization layer end to end: the corruption engine scrambles
/// seeded random subsets of node state mid-run, the stabilization metric
/// reports whether and when the fleet re-entered its precision envelope, and
/// the auth_stab variant — plain auth plus a hardware-anchored watchdog —
/// recovers from ANY of it while plain auth provably does not.
namespace stclock::experiment {
namespace {

ScenarioSpec corrupted_spec(const char* protocol, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.cfg.n = 8;
  spec.cfg.f = 0;
  spec.cfg.rho = 1e-4;
  spec.cfg.tdel = 0.01;
  spec.cfg.period = 1.0;
  spec.cfg.initial_sync = 0.005;
  spec.seed = seed;
  spec.horizon = 20.0;
  spec.topology = TopologyKind::kRing;
  spec.corrupt_at = {4.25};
  return spec;
}

TEST(Corruption, AuthStabRestabilizesFromTotalCorruptionAcrossTopologiesAndSeeds) {
  // The headline property: from EVERY reachable memory state — here, 100% of
  // the fleet scrambled in every corruptible category — auth_stab converges
  // back into its derived precision envelope, on random topologies, sizes,
  // and seeds. Draws are deterministic so failures reproduce.
  const TopologyKind kinds[] = {TopologyKind::kComplete, TopologyKind::kRing,
                                TopologyKind::kTorus, TopologyKind::kStar};
  std::mt19937_64 rng(0xc0441u);
  for (const TopologyKind kind : kinds) {
    for (int rep = 0; rep < 3; ++rep) {
      ScenarioSpec spec = corrupted_spec("auth_stab", rng());
      spec.cfg.n = 4 + static_cast<std::uint32_t>(rng() % 7);  // 4..10
      // torus(n) rejects prime n >= 5 (no near-square grid); bump to the
      // next composite so the random size draw stays in sequence.
      if (kind == TopologyKind::kTorus && (spec.cfg.n == 5 || spec.cfg.n == 7)) ++spec.cfg.n;
      spec.topology = kind;
      spec.corrupt_at = {5.0};
      spec.horizon = 30.0;
      SCOPED_TRACE(std::string(topology_kind_name(kind)) + " n=" +
                   std::to_string(spec.cfg.n) + " seed=" + std::to_string(spec.seed));

      const ScenarioResult r = run_scenario(spec);
      EXPECT_EQ(r.corruption_events, 1u);
      EXPECT_EQ(r.nodes_corrupted, spec.cfg.n);
      EXPECT_TRUE(r.live);
      EXPECT_TRUE(r.stabilized);
      EXPECT_GE(r.stabilization_time, 0.0);
      EXPECT_LT(r.stabilization_time, spec.horizon - spec.corrupt_at.back());
    }
  }
}

TEST(Corruption, PlainAuthFailsWhereAuthStabRecovers) {
  // The negative control, pinned: the SAME spec modulo the protocol name.
  // Full corruption cancels every process timer and nothing in plain auth
  // ever re-arms them, so the protocol goes silent and the scrambled clocks
  // stay scrambled forever.
  const ScenarioResult plain = run_scenario(corrupted_spec("auth", 11));
  EXPECT_FALSE(plain.live);
  EXPECT_FALSE(plain.stabilized);
  EXPECT_EQ(plain.stabilization_time, -1.0);

  const ScenarioResult stab = run_scenario(corrupted_spec("auth_stab", 11));
  EXPECT_TRUE(stab.live);
  EXPECT_TRUE(stab.stabilized);
  EXPECT_GE(stab.stabilization_time, 0.0);
}

TEST(Corruption, ComposesWithChurnThroughTheJoinerPath) {
  // A node corrupted and LATER churned must come back through the joiner
  // path cleanly: the corruption scrambled the process the churn destroys,
  // and the rebuilt process integrates passively like any repaired machine.
  ScenarioSpec spec = corrupted_spec("auth_stab", 21);
  spec.corrupt_at = {4.0};
  spec.churn_nodes = 1;
  spec.churn_leave = 5.0;
  spec.churn_rejoin = 8.0;
  spec.horizon = 24.0;
  const ScenarioResult r = run_scenario(spec);
  EXPECT_EQ(r.nodes_corrupted, spec.cfg.n);
  EXPECT_TRUE(r.churned_rejoined);
  EXPECT_GE(r.rejoin_latency, 0.0);
  EXPECT_TRUE(r.live);
  EXPECT_TRUE(r.stabilized);

  // And the other order: corruption strikes WHILE the churned node is down.
  // Down nodes are not corruptible (there is no memory to scramble), so the
  // victim count drops by one and the rebuilt process still integrates.
  ScenarioSpec while_down = spec;
  while_down.corrupt_at = {6.0};
  const ScenarioResult r2 = run_scenario(while_down);
  EXPECT_EQ(r2.nodes_corrupted, spec.cfg.n - 1);
  EXPECT_TRUE(r2.churned_rejoined);
  EXPECT_TRUE(r2.stabilized);
}

TEST(Corruption, FractionAndKindsSelectTheBlastRadius) {
  // fraction 0.5 on n=8 corrupts ceil(4) = 4 victims.
  ScenarioSpec half = corrupted_spec("auth_stab", 31);
  half.corrupt_fraction = 0.5;
  const ScenarioResult r_half = run_scenario(half);
  EXPECT_EQ(r_half.nodes_corrupted, 4u);
  EXPECT_TRUE(r_half.stabilized);

  // Clocks-only corruption leaves timers, buffers, and protocol state alone:
  // even PLAIN auth recovers, because its resynchronization rounds keep
  // firing and the accept path re-anchors the scrambled clocks. This is the
  // contrast that motivates auth_stab: the paper's protocol already handles
  // clock errors, it is the rest of the memory it cannot repair.
  ScenarioSpec clocks_only = corrupted_spec("auth", 31);
  clocks_only.corrupt_kinds = kCorruptClocks;
  const ScenarioResult r_clocks = run_scenario(clocks_only);
  EXPECT_TRUE(r_clocks.live);
  EXPECT_TRUE(r_clocks.stabilized);

  // Timers-only corruption is NOT fatal on its own: in-flight round
  // messages still produce acceptances, and every acceptance re-arms the
  // readiness timer, pulling the pipeline back up.
  ScenarioSpec timers_only = corrupted_spec("auth", 31);
  timers_only.corrupt_kinds = kCorruptTimers;
  const ScenarioResult r_timers = run_scenario(timers_only);
  EXPECT_TRUE(r_timers.live);
  EXPECT_TRUE(r_timers.stabilized);
  EXPECT_EQ(r_timers.stabilization_time, 0.0);

  // Timers plus protocol state IS fatal for plain auth — the scrambled
  // round counters reject every live acceptance, and with the timers gone
  // nothing restarts the broadcast cadence. The fleet goes silent; the
  // liveness flag is the discriminator here, not the skew (unscrambled
  // clocks coast inside the envelope at hardware drift).
  ScenarioSpec dead = corrupted_spec("auth", 31);
  dead.corrupt_kinds = kCorruptTimers | kCorruptState;
  const ScenarioResult r_dead = run_scenario(dead);
  EXPECT_FALSE(r_dead.live);
}

TEST(Corruption, DeterministicAndThreadInvariant) {
  // Same spec, same process, twice: every metric is bit-identical (the
  // corruption stream is seeded from the spec, not from global state).
  const ScenarioSpec spec = corrupted_spec("auth_stab", 41);
  const ScenarioResult a = run_scenario(spec);
  const ScenarioResult b = run_scenario(spec);
  EXPECT_EQ(a.max_skew, b.max_skew);
  EXPECT_EQ(a.stabilization_time, b.stabilization_time);
  EXPECT_EQ(a.nodes_corrupted, b.nodes_corrupted);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.skew_series, b.skew_series);

  // The corrupt_fraction x protocol sweep the scenario files expose, run on
  // 1 worker and on 4: the pool may never perturb a bit.
  SweepGrid grid(corrupted_spec("auth", 41));
  grid.protocols({"auth", "auth_stab"});
  grid.axis("corrupt_fraction",
            {{"0.5", [](ScenarioSpec& s) { s.corrupt_fraction = 0.5; }},
             {"1", [](ScenarioSpec& s) { s.corrupt_fraction = 1.0; }}});
  const std::vector<SweepCell> cells = grid.cells();
  const std::vector<ScenarioResult> serial = SweepRunner(1).run(cells);
  const std::vector<ScenarioResult> parallel = SweepRunner(4).run(cells);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(serial[i].max_skew, parallel[i].max_skew);
    EXPECT_EQ(serial[i].stabilized, parallel[i].stabilized);
    EXPECT_EQ(serial[i].stabilization_time, parallel[i].stabilization_time);
    EXPECT_EQ(serial[i].skew_series, parallel[i].skew_series);
  }
}

TEST(Corruption, SpecsRoundTripThroughTheScenarioFileLayer) {
  ScenarioSpec spec = corrupted_spec("auth_stab", 51);
  spec.corrupt_fraction = 0.75;
  spec.corrupt_kinds = kCorruptClocks | kCorruptState;
  const std::string json = scenfile::spec_to_json(spec);
  EXPECT_NE(json.find("\"corrupt_at\": [4.25]"), std::string::npos);
  EXPECT_NE(json.find("\"corrupt_kinds\": \"clocks,state\""), std::string::npos);

  const ScenarioSpec back = scenfile::parse_spec(json);
  EXPECT_EQ(back.corrupt_at, spec.corrupt_at);
  EXPECT_EQ(back.corrupt_fraction, spec.corrupt_fraction);
  EXPECT_EQ(back.corrupt_kinds, spec.corrupt_kinds);

  const ScenarioResult direct = run_scenario(spec);
  const ScenarioResult via_json = run_scenario(back);
  EXPECT_EQ(direct.stabilization_time, via_json.stabilization_time);
  EXPECT_EQ(direct.max_skew, via_json.max_skew);
  EXPECT_EQ(direct.skew_series, via_json.skew_series);
}

TEST(Corruption, KindNamesRoundTrip) {
  EXPECT_EQ(corrupt_kind_bit("clocks"), kCorruptClocks);
  EXPECT_EQ(corrupt_kind_bit("timers"), kCorruptTimers);
  EXPECT_EQ(corrupt_kind_bit("buffers"), kCorruptBuffers);
  EXPECT_EQ(corrupt_kind_bit("state"), kCorruptState);
  EXPECT_EQ(corrupt_kind_bit("all"), kCorruptAll);
  EXPECT_EQ(corrupt_kind_bit("bogus"), 0u);
  EXPECT_EQ(corrupt_kinds_name(kCorruptAll), "clocks,timers,buffers,state");
  EXPECT_EQ(corrupt_kinds_name(kCorruptTimers | kCorruptState), "timers,state");
}

TEST(Corruption, MalformedSpecsAreRejectedBeforeRunning) {
  {
    ScenarioSpec spec = corrupted_spec("auth_stab", 1);
    spec.corrupt_at = {spec.horizon};  // nothing left to stabilize
    EXPECT_THROW(run_scenario(spec), std::logic_error);
  }
  {
    ScenarioSpec spec = corrupted_spec("auth_stab", 1);
    spec.corrupt_at = {3.0, 2.0};  // decreasing
    EXPECT_THROW(run_scenario(spec), std::logic_error);
  }
  {
    ScenarioSpec spec = corrupted_spec("auth_stab", 1);
    spec.corrupt_at = {-1.0};
    EXPECT_THROW(run_scenario(spec), std::logic_error);
  }
  {
    ScenarioSpec spec = corrupted_spec("auth_stab", 1);
    spec.corrupt_fraction = 0.0;
    EXPECT_THROW(run_scenario(spec), std::logic_error);
  }
  {
    ScenarioSpec spec = corrupted_spec("auth_stab", 1);
    spec.corrupt_fraction = 1.5;
    EXPECT_THROW(run_scenario(spec), std::logic_error);
  }
  {
    ScenarioSpec spec = corrupted_spec("auth_stab", 1);
    spec.corrupt_kinds = 0;
    EXPECT_THROW(run_scenario(spec), std::logic_error);
  }
  {
    ScenarioSpec spec = corrupted_spec("auth_stab", 1);
    spec.corrupt_kinds = kCorruptAll + 1;  // unknown bit
    EXPECT_THROW(run_scenario(spec), std::logic_error);
  }
}

TEST(Corruption, MultipleEventsJudgeRecoveryFromTheLastOne) {
  // Two corruption events: stabilization is measured from the LAST one (the
  // paper's definition — time from the final transient fault), and both
  // fire.
  ScenarioSpec spec = corrupted_spec("auth_stab", 61);
  spec.corrupt_at = {3.0, 6.0};
  spec.horizon = 24.0;
  const ScenarioResult r = run_scenario(spec);
  EXPECT_EQ(r.corruption_events, 2u);
  EXPECT_EQ(r.nodes_corrupted, 2u * spec.cfg.n);
  EXPECT_TRUE(r.stabilized);
  // Re-entry happens strictly after the second fault's scramble, so the
  // latency is measured against t=6, not t=3.
  EXPECT_LT(r.stabilization_time, spec.horizon - 6.0);
}

}  // namespace
}  // namespace stclock::experiment
