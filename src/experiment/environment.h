#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "clocks/hardware_clock.h"
#include "sim/network.h"
#include "sim/topology.h"
#include "util/rng.h"
#include "util/types.h"

/// Environment knobs shared by every scenario: which hardware-clock
/// trajectory family the honest fleet runs on, and how honest-to-honest
/// message delays are assigned within [0, tdel]. These used to live in
/// core/runner.h; they belong to the experiment layer because they describe
/// the *world* a protocol runs in, not the protocol itself.
namespace stclock {

/// Hardware-clock trajectory family for the honest fleet.
enum class DriftKind {
  kNone,            ///< all clocks perfect rate 1 (isolates delay effects)
  kRandomConstant,  ///< per-node constant rate within the drift bound
  kRandomWalk,      ///< rates wander within the bound
  kExtremal,        ///< alternating fastest/slowest rates (worst-case drift)
};

/// Honest-to-honest delay assignment (all within [0, tdel]).
enum class DelayKind {
  kZero,         ///< instantaneous
  kHalf,         ///< every message takes tdel/2
  kMax,          ///< every message takes tdel
  kUniform,      ///< uniform in [0, tdel]
  kSplit,        ///< odd-indexed nodes always lag by tdel (worst-case spread)
  kAlternating,  ///< the lagging half flips every period
  kPerLink,      ///< each directed link gets its own stable hashed latency
};

[[nodiscard]] const char* drift_name(DriftKind kind);
[[nodiscard]] const char* delay_name(DelayKind kind);

namespace experiment {

/// Builds the honest fleet's hardware clocks for one scenario. The RNG is
/// consumed in a fixed order per (kind, n), so two runs with the same seed
/// see identical clock trajectories.
[[nodiscard]] std::vector<HardwareClock> build_clock_fleet(DriftKind kind, std::uint32_t n,
                                                           double rho, Duration initial_sync,
                                                           RealTime horizon, Duration period,
                                                           Rng& rng);

/// Builds the delay policy assigning honest-to-honest message delays.
/// `link_seed` only feeds the per-link kind (stable per-link latencies).
[[nodiscard]] std::unique_ptr<DelayPolicy> build_delay_policy(DelayKind kind, std::uint32_t n,
                                                              Duration period,
                                                              std::uint64_t link_seed = 1);

/// Builds the network graph for one scenario. `gnp_p` feeds only the G(n, p)
/// kind, `seed` the seeded kinds (gnp, expander), `expander_k` the expander
/// degree. Shape errors (e.g. a 2-node ring) throw std::logic_error.
[[nodiscard]] std::shared_ptr<const Topology> build_topology(TopologyKind kind,
                                                             std::uint32_t n, double gnp_p,
                                                             std::uint64_t seed,
                                                             std::uint32_t expander_k = 8);

}  // namespace experiment
}  // namespace stclock
