// WAN cluster scenario: geo-distributed replicas keeping time together.
//
// A 9-node cluster spread across data centers: one-way delays up to 50 ms,
// oven-stabilized oscillators (20 ppm drift), resynchronization every 5 s.
// Four replicas may be compromised (the authenticated maximum for n = 9).
// Compares the Srikanth–Toueg protocol against Lundelius–Welch and the
// unsynchronized control under identical conditions.

#include <iostream>

#include "baselines/lundelius_welch.h"
#include "baselines/unsynchronized.h"
#include "core/runner.h"
#include "util/table.h"

int main() {
  using namespace stclock;

  SyncConfig cfg;
  cfg.n = 9;
  cfg.f = 4;  // authenticated maximum
  cfg.rho = 2e-5;    // 20 ppm oscillators
  cfg.tdel = 0.05;   // 50 ms WAN delay bound
  cfg.period = 5.0;  // resync every 5 s
  cfg.initial_sync = 0.02;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 2024;
  spec.horizon = 300.0;  // five minutes
  spec.drift = DriftKind::kRandomWalk;  // realistic wandering oscillators
  spec.delay = DelayKind::kUniform;     // jittery network
  spec.attack = AttackKind::kSpamEarly;

  std::cout << "WAN cluster: n=9 replicas, 4 compromised, 50 ms delays, 20 ppm\n"
               "oscillators, resync every 5 s, 5 minutes of operation.\n\n";

  const RunResult st = run_sync(spec);

  baselines::BaselineSpec lw_spec;
  lw_spec.n = cfg.n;
  lw_spec.f = 2;  // LW cannot tolerate 4 of 9 — n > 3f forces f <= 2
  lw_spec.rho = cfg.rho;
  lw_spec.tdel = cfg.tdel;
  lw_spec.period = cfg.period;
  lw_spec.delta = 0.2;
  lw_spec.initial_sync = cfg.initial_sync;
  lw_spec.seed = spec.seed;
  lw_spec.horizon = spec.horizon;
  lw_spec.drift = spec.drift;
  lw_spec.delay = spec.delay;
  lw_spec.attack = AttackKind::kLwPull;
  const baselines::BaselineResult lw = baselines::run_lundelius_welch(lw_spec);

  baselines::BaselineSpec unsync_spec = lw_spec;
  unsync_spec.attack = AttackKind::kNone;
  const baselines::BaselineResult unsync = baselines::run_unsynchronized(unsync_spec);

  Table table({"algorithm", "tolerates", "worst skew", "skew bound", "msgs sent"});
  table.add_row({"srikanth-toueg (auth)", "4 of 9 Byzantine",
                 Table::num(st.steady_skew * 1e3, 2) + " ms",
                 Table::num(st.bounds.precision * 1e3, 2) + " ms",
                 std::to_string(st.messages_sent)});
  table.add_row({"lundelius-welch", "2 of 9 Byzantine",
                 Table::num(lw.steady_skew * 1e3, 2) + " ms", "-",
                 std::to_string(lw.messages_sent)});
  table.add_row({"unsynchronized", "-", Table::num(unsync.max_skew * 1e3, 2) + " ms",
                 "(grows forever)", "0"});
  table.print(std::cout);

  // When would free-running clocks overtake the synchronized bound?
  const double gamma = (1 + cfg.rho) - 1 / (1 + cfg.rho);
  const double crossover_min = st.bounds.precision / gamma / 60.0;

  std::cout << "\nTakeaways:\n"
            << "  - under 4 compromised replicas only the signature-based protocol\n"
            << "    still runs at all; LW's resilience tops out at f=2 for n=9;\n"
            << "  - synchronized skew is bounded FOREVER at the scale of the delay\n"
            << "    bound; free-running clocks drift ~"
            << Table::num(gamma * 3600 * 1e3, 0) << " ms/hour and pass the\n"
            << "    synchronized bound after ~" << Table::num(crossover_min, 0)
            << " minutes, growing without limit;\n"
            << "  - every replica pulsed " << st.min_pulses << "-" << st.max_pulses
            << " times (period within ["
            << Table::num(st.min_period, 2) << ", " << Table::num(st.max_period, 2)
            << "] s).\n";
  return 0;
}
