#include "trace/envelope.h"

#include <algorithm>

#include "util/contracts.h"

namespace stclock {

EnvelopeTracker::EnvelopeTracker(Duration sample_interval)
    : sample_interval_(sample_interval) {
  ST_REQUIRE(sample_interval > 0, "EnvelopeTracker: sample interval must be positive");
}

void EnvelopeTracker::sample(const Simulator& sim) {
  const RealTime t = sim.now();
  if (last_sample_ >= 0 && t - last_sample_ < sample_interval_) return;
  last_sample_ = t;

  if (series_.empty()) series_.resize(sim.n());
  for (NodeId id : sim.honest_ids()) {
    if (!sim.is_started(id)) continue;
    series_[id].t.push_back(t);
    series_[id].c.push_back(sim.logical(id).read(t));
  }
}

EnvelopeTracker::Report EnvelopeTracker::report(double slope_lo, double slope_hi,
                                                RealTime steady_start) const {
  Report rep;
  bool first = true;
  for (const NodeSeries& s : series_) {
    if (s.t.size() < 2) continue;

    // Restrict the fit to the steady-state window.
    std::vector<double> ts, cs;
    for (std::size_t i = 0; i < s.t.size(); ++i) {
      if (s.t[i] >= steady_start) {
        ts.push_back(s.t[i]);
        cs.push_back(s.c[i]);
      }
    }
    if (ts.size() < 2) continue;

    const LinearFit fit = fit_line(ts, cs);
    if (first) {
      rep.min_rate = rep.max_rate = fit.slope;
      first = false;
    } else {
      rep.min_rate = std::min(rep.min_rate, fit.slope);
      rep.max_rate = std::max(rep.max_rate, fit.slope);
    }

    for (std::size_t i = 0; i < s.t.size(); ++i) {
      rep.upper_offset = std::max(rep.upper_offset, s.c[i] - slope_hi * s.t[i]);
      rep.lower_offset = std::max(rep.lower_offset, slope_lo * s.t[i] - s.c[i]);
    }
  }
  ST_REQUIRE(!first, "EnvelopeTracker::report: no node has enough samples");
  return rep;
}

}  // namespace stclock
