#include "baselines/baseline.h"

#include "adversary/delay_policies.h"
#include "clocks/drift_models.h"
#include "sim/simulator.h"
#include "trace/skew_tracker.h"
#include "util/contracts.h"

namespace stclock::baselines {

namespace {

std::vector<HardwareClock> build_clocks(const BaselineSpec& spec, Rng& rng) {
  switch (spec.drift) {
    case DriftKind::kNone: {
      std::vector<HardwareClock> fleet;
      for (std::uint32_t i = 0; i < spec.n; ++i) {
        const LocalTime initial =
            spec.n == 1 ? 0.0
                        : spec.initial_sync * static_cast<double>(i) /
                              static_cast<double>(spec.n - 1);
        fleet.push_back(drift::constant(initial, 1.0));
      }
      return fleet;
    }
    case DriftKind::kRandomConstant: {
      std::vector<HardwareClock> fleet;
      for (std::uint32_t i = 0; i < spec.n; ++i) {
        fleet.push_back(drift::random_constant(rng, spec.rho, spec.initial_sync));
      }
      return fleet;
    }
    case DriftKind::kRandomWalk:
      return drift::random_fleet(rng, spec.n, spec.rho, spec.initial_sync,
                                 spec.horizon + 1.0, spec.period);
    case DriftKind::kExtremal:
      return drift::adversarial_fleet(spec.n, spec.rho, spec.initial_sync);
  }
  ST_ASSERT(false, "build_clocks: unhandled drift kind");
  return {};
}

std::unique_ptr<DelayPolicy> build_delays(const BaselineSpec& spec) {
  switch (spec.delay) {
    case DelayKind::kZero: return std::make_unique<FixedDelay>(0.0);
    case DelayKind::kHalf: return std::make_unique<FixedDelay>(0.5);
    case DelayKind::kMax: return std::make_unique<FixedDelay>(1.0);
    case DelayKind::kUniform: return std::make_unique<UniformDelay>(0.0, 1.0);
    case DelayKind::kSplit: {
      std::vector<NodeId> slow;
      for (NodeId id = 1; id < spec.n; id += 2) slow.push_back(id);
      return std::make_unique<SplitDelay>(std::move(slow));
    }
    case DelayKind::kAlternating:
      return std::make_unique<AlternatingDelay>(spec.period);
  }
  ST_ASSERT(false, "build_delays: unhandled delay kind");
  return nullptr;
}

}  // namespace

BaselineResult run_baseline(
    const BaselineSpec& spec,
    const std::function<std::unique_ptr<Process>(NodeId)>& factory) {
  ST_REQUIRE(spec.n > spec.f, "run_baseline: need at least one honest node");

  Rng rng(spec.seed);
  std::vector<HardwareClock> clocks = build_clocks(spec, rng);
  const crypto::KeyRegistry registry(spec.n, spec.seed ^ 0x5eedULL);

  SimParams params;
  params.n = spec.n;
  params.tdel = spec.tdel;
  params.seed = rng.next_u64();
  Simulator sim(params, std::move(clocks), build_delays(spec), &registry);

  std::vector<NodeId> corrupt;
  if (spec.attack != AttackKind::kNone && spec.f > 0) {
    for (NodeId id = spec.n - spec.f; id < spec.n; ++id) corrupt.push_back(id);
  }

  AttackParams attack_params;
  attack_params.max_round = static_cast<Round>(spec.horizon / spec.period) + 8;
  attack_params.period = spec.period;
  attack_params.cnv_delta = spec.delta;
  attack_params.nominal_delay = spec.tdel / 2;

  if (!corrupt.empty()) sim.set_adversary(corrupt, make_attack(spec.attack, attack_params));

  for (NodeId id = 0; id < spec.n - static_cast<std::uint32_t>(corrupt.size()); ++id) {
    sim.set_process(id, factory(id));
  }

  SkewTracker skew(0.05);
  skew.set_steady_start(3 * spec.period);
  EnvelopeTracker envelope(0.1);
  sim.set_post_event_hook([&skew, &envelope](const Simulator& s) {
    skew.sample(s);
    envelope.sample(s);
  });

  // Step the simulation so metrics get sampled even when a protocol (e.g.
  // the unsynchronized control) generates no events at all.
  for (RealTime t = 0.05; t < spec.horizon + 0.05; t += 0.05) {
    sim.run_until(std::min(t, spec.horizon));
    skew.sample(sim);
    envelope.sample(sim);
  }

  BaselineResult result;
  result.max_skew = skew.max_skew();
  result.steady_skew = skew.steady_max_skew();
  if (spec.horizon > 3 * spec.period + 1.0) {
    result.envelope = envelope.report(1.0 / (1.0 + spec.rho), 1.0 + spec.rho,
                                      3 * spec.period);
  }
  result.messages_sent = sim.counters().total_sent();
  result.bytes_sent = sim.counters().total_bytes();
  return result;
}

}  // namespace stclock::baselines
