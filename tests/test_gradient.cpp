#include <gtest/gtest.h>

#include "golden_specs.h"

/// The gradient (GCS-style neighbor averaging) baseline: the protocol that
/// exercises the local-skew metric end-to-end. The headline claim — asserted
/// here, per the PR acceptance bar — is that on the ring golden scenario its
/// steady local skew beats the leader strawman, whose broadcasts only ever
/// reach the leader's two ring neighbors and leave the rest of the cycle
/// free-running.
namespace stclock::experiment {
namespace {

/// The gradient-on-ring golden spec, found by protocol name so later PRs
/// can append golden rows without renumbering this test.
ScenarioSpec ring_spec() {
  for (const ScenarioSpec& spec : golden::specs()) {
    if (spec.protocol == "gradient") {
      EXPECT_EQ(spec.topology, TopologyKind::kRing);
      return spec;
    }
  }
  ADD_FAILURE() << "no gradient spec in golden::specs()";
  return {};
}

TEST(Gradient, BeatsLeaderSteadyLocalSkewOnTheRingGoldenScenario) {
  ScenarioSpec spec = ring_spec();
  const ScenarioResult gradient = run_scenario(spec);

  spec.protocol = "leader";
  const ScenarioResult leader = run_scenario(spec);

  // Gradient averages with BOTH ring neighbors every period; the leader's
  // clock reading dies one hop from node 0, so most adjacent pairs
  // free-run against each other.
  EXPECT_GT(gradient.steady_local_skew, 0.0);
  EXPECT_LT(gradient.steady_local_skew, leader.steady_local_skew);
  // And it pays for the win honestly: every node broadcasts, so the metric
  // comparison above is not an artifact of silence.
  EXPECT_GT(gradient.messages_sent, leader.messages_sent);
}

TEST(Gradient, ConvergesOnTheCompleteGraphWithExactDelayEstimates) {
  // With every message taking exactly tdel/2 the nominal-delay estimate is
  // exact, so averaging must pull the fleet well inside its initial spread.
  ScenarioSpec spec = ring_spec();
  spec.topology = TopologyKind::kComplete;
  spec.cfg.n = 6;
  spec.delay = DelayKind::kHalf;
  spec.horizon = 12.0;
  const ScenarioResult r = run_scenario(spec);
  EXPECT_LT(r.steady_skew, 0.4 * spec.cfg.initial_sync);
  EXPECT_EQ(r.local_skew, r.max_skew);  // complete: local degenerates to global
}

TEST(Gradient, TracksDriftBetterThanFreeRunningOnTheRing) {
  // At a ten-times-worse drift bound, free-running neighbors walk apart;
  // the averaging iteration keeps adjacent clocks bounded instead.
  ScenarioSpec spec = ring_spec();
  spec.cfg.rho = 1e-3;
  spec.horizon = 20.0;
  const ScenarioResult gradient = run_scenario(spec);

  spec.protocol = "unsynchronized";
  const ScenarioResult free_running = run_scenario(spec);
  EXPECT_LT(gradient.steady_local_skew, free_running.steady_local_skew);
}

TEST(Gradient, StaysBoundedThroughAnEdgeFailureWindow) {
  // Dynamic topology end-to-end: a ring edge fails and heals mid-run. The
  // stale-estimate cutoff must keep the two cut neighbors from chasing
  // ghost readings, and the run must stay deterministic.
  ScenarioSpec spec = ring_spec();
  spec.topology_events = {
      {TopologyEventSpec::Kind::kRemoveEdge, 2.5, 0, 1, TopologyKind::kRing},
      {TopologyEventSpec::Kind::kAddEdge, 5.5, 0, 1, TopologyKind::kRing},
  };
  const ScenarioResult r = run_scenario(spec);
  EXPECT_EQ(r.topology_epochs, 3u);
  EXPECT_GT(r.events_dispatched, 0u);
  EXPECT_LE(r.steady_local_skew, r.local_skew);
  EXPECT_LT(r.local_skew, 0.02);  // bounded, not free-running divergence

  const ScenarioResult again = run_scenario(spec);
  EXPECT_EQ(r.local_skew, again.local_skew);
  EXPECT_EQ(r.events_dispatched, again.events_dispatched);
  EXPECT_EQ(r.messages_sent, again.messages_sent);
}

}  // namespace
}  // namespace stclock::experiment
