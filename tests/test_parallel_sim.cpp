#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "golden_specs.h"
#include "resultstore/codec.h"
#include "scenfile/scenfile.h"

/// Bit-identity suite for the lookahead-windowed parallel engine.
///
/// The contract under test: for any scenario the registry can express,
/// running with sim_threads in {2, 4, 8} must produce a ScenarioResult whose
/// resultstore encoding is byte-for-byte equal to the sequential engine's —
/// same skew series, same pulse times, same message/byte/event counters,
/// same stabilization verdicts. The corpus is the golden registry
/// (tests/golden_specs.h): every topology kind, both broadcast fan-out
/// variants plus sampled mode, joiners, churn, partitions, dynamic epochs,
/// and state corruption.
///
/// Two deliberate corpus edits:
///  - delay is forced to "half" (FixedDelay tdel/2), the registry's only
///    positive-min_delay policies being half/max. The default uniform draw
///    has min_delay 0 and must instead take the loud sequential fallback —
///    pinned separately below.
///  - specs with an adversary (corrupt nodes) keep whatever engine the
///    fallback picks; the adversary's omniscient API is sequential-only, so
///    these rows pin the fallback path rather than the parallel one.
namespace stclock::experiment {
namespace {

ScenarioResult run_with_threads(ScenarioSpec spec, std::uint32_t threads) {
  spec.sim_threads = threads;
  return run_scenario(spec);
}

std::vector<ScenarioSpec> parallel_corpus() {
  std::vector<ScenarioSpec> specs = golden::specs();
  for (ScenarioSpec& spec : specs) spec.delay = DelayKind::kHalf;
  return specs;
}

// Mirrors the engine's parallel precondition: an adversary OBJECT disables
// windows. kCrash corrupts nodes but installs no strategy (make_attack
// returns null — crashed nodes are simply inert), so it stays parallel.
bool has_adversary_object(const ScenarioSpec& spec) {
  return spec.attack != AttackKind::kNone && spec.attack != AttackKind::kCrash &&
         (spec.corrupt_override > 0 || spec.cfg.f > 0);
}

TEST(ParallelSim, RegistryWideBitIdenticalToSequential) {
  const std::vector<ScenarioSpec> specs = parallel_corpus();
  ASSERT_FALSE(specs.empty());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const ScenarioResult seq = run_with_threads(specs[i], 1);
    const auto seq_bytes = resultstore::encode_result(seq);
    const bool has_adversary = has_adversary_object(specs[i]);
    for (const std::uint32_t threads : {2u, 4u, 8u}) {
      const ScenarioResult par = run_with_threads(specs[i], threads);
      EXPECT_EQ(resultstore::encode_result(par), seq_bytes)
          << "spec " << i << " (" << specs[i].protocol << ", seed "
          << specs[i].seed << ") diverged at sim_threads=" << threads;
      if (has_adversary) {
        EXPECT_EQ(par.parallel_windows, 0u)
            << "spec " << i << ": adversarial runs must fall back to sequential";
      } else {
        EXPECT_GT(par.parallel_windows, 0u)
            << "spec " << i << ": parallel engine never engaged at sim_threads="
            << threads;
      }
    }
  }
}

// The corruption + churn + sampled-broadcast combination in one run: the
// three workloads with the most engine-side mutable state (purge scans,
// restart timers, the dedicated broadcast RNG stream) interacting.
TEST(ParallelSim, CorruptionChurnSampledComboIsBitIdentical) {
  ScenarioSpec spec;
  spec.protocol = "auth_stab";
  spec.cfg.n = 9;
  spec.cfg.f = 0;
  spec.cfg.rho = 1e-4;
  spec.cfg.tdel = 0.01;
  spec.cfg.period = 1.0;
  spec.cfg.initial_sync = 0.005;
  spec.seed = 21;
  spec.horizon = 18.0;
  spec.drift = DriftKind::kRandomWalk;
  spec.delay = DelayKind::kHalf;
  spec.broadcast_mode = BroadcastMode::kSampled;
  spec.sample_size = 4;
  spec.churn_nodes = 2;
  spec.churn_leave = 3.0;
  spec.churn_rejoin = 6.0;
  spec.corrupt_at = {9.25};
  spec.corrupt_fraction = 0.5;

  const ScenarioResult seq = run_with_threads(spec, 1);
  const auto seq_bytes = resultstore::encode_result(seq);
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    const ScenarioResult par = run_with_threads(spec, threads);
    EXPECT_GT(par.parallel_windows, 0u);
    EXPECT_EQ(resultstore::encode_result(par), seq_bytes)
        << "combo diverged at sim_threads=" << threads;
  }
}

// delay=max is the other positive-min_delay policy; the window then spans a
// full tdel, the widest the contract allows.
TEST(ParallelSim, MaxDelayWindowsAreBitIdentical) {
  ScenarioSpec spec;
  spec.protocol = "auth";
  spec.cfg.n = 8;
  spec.cfg.f = 0;
  spec.cfg.rho = 1e-4;
  spec.cfg.tdel = 0.01;
  spec.cfg.period = 1.0;
  spec.cfg.initial_sync = 0.005;
  spec.seed = 22;
  spec.horizon = 8.0;
  spec.delay = DelayKind::kMax;
  spec.topology = TopologyKind::kExpander;
  spec.expander_k = 4;
  spec.broadcast_mode = BroadcastMode::kNeighbors;

  const ScenarioResult seq = run_with_threads(spec, 1);
  const ScenarioResult par = run_with_threads(spec, 8);
  EXPECT_GT(par.parallel_windows, 0u);
  EXPECT_EQ(resultstore::encode_result(par), resultstore::encode_result(seq));
}

// A zero-min_delay policy must NOT deadlock or silently serialize window by
// window: the engine refuses parallel mode up front (stderr notice), runs
// the plain sequential path, and the results match sim_threads=1 exactly.
TEST(ParallelSim, ZeroMinDelayFallsBackLoudly) {
  ScenarioSpec spec;
  spec.protocol = "auth";
  spec.cfg.n = 7;
  spec.cfg.f = 0;
  spec.cfg.rho = 1e-4;
  spec.cfg.tdel = 0.01;
  spec.cfg.period = 1.0;
  spec.cfg.initial_sync = 0.005;
  spec.seed = 23;
  spec.horizon = 6.0;
  spec.delay = DelayKind::kUniform;  // lower bound 0 => no lookahead

  const ScenarioResult seq = run_with_threads(spec, 1);
  const ScenarioResult par = run_with_threads(spec, 8);
  EXPECT_EQ(par.parallel_windows, 0u) << "zero lookahead must disable windows";
  EXPECT_EQ(resultstore::encode_result(par), resultstore::encode_result(seq));
}

// The scenfile knob round-trips and rejects nonsense.
TEST(ParallelSim, ScenfileKnobRoundTrips) {
  ScenarioSpec spec;
  spec.protocol = "auth";
  spec.sim_threads = 8;
  const std::string json = scenfile::spec_to_json(spec);
  const ScenarioSpec back = scenfile::parse_spec(json, "roundtrip");
  EXPECT_EQ(back.sim_threads, 8u);

  EXPECT_THROW(scenfile::parse_spec(
                   R"({"protocol": "auth", "sim_threads": 0})", "bad"),
               std::exception);
  EXPECT_THROW(scenfile::parse_spec(
                   R"({"protocol": "auth", "sim_threads": 65})", "bad"),
               std::exception);
}

}  // namespace
}  // namespace stclock::experiment
