// Experiment T4 — Initialization and integration of repaired processes.
//
// Claim: a process that boots mid-run integrates passively and is fully
// synchronized within one (maximum) resynchronization period, without
// disturbing the running system.

#include "bench_common.h"

namespace stclock {
namespace {

void sweep(Table& table, const SyncConfig& cfg, std::uint64_t seed) {
  for (const double phase : {0.0, 0.25, 0.5, 0.75}) {
    for (const RealTime base : {8.0, 15.0}) {
      RunSpec spec = bench::adversarial_spec(cfg, /*horizon=*/30.0, seed);
      spec.joiners = 1;
      spec.join_time = base + phase * cfg.period;
      const RunResult r = run_sync(spec);
      table.add_row({cfg.variant_name(), Table::num(spec.join_time, 2),
                     r.joiners_integrated ? "yes" : "NO",
                     Table::num(r.join_latency, 4),
                     Table::num(r.bounds.max_period, 4), Table::sci(r.steady_skew),
                     Table::sci(r.bounds.precision), r.live ? "yes" : "NO"});
    }
  }
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("T4 — Reintegration latency",
                      "a joining process synchronizes within one max period");

  Table table({"variant", "join-time(s)", "integrated", "latency(s)",
               "max-period bound", "post-join skew", "Dmax", "live"});
  sweep(table, bench::default_auth_config(), opts.seed);
  sweep(table, bench::default_echo_config(), opts.seed);
  stclock::bench::emit(table, opts);
  std::cout << "(spam-early attack active during integration; latency must stay\n"
               " below the max-period bound and skew below Dmax on every row)\n";
  return 0;
}
