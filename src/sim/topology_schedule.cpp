#include "sim/topology_schedule.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/contracts.h"

namespace stclock {

RealTime CompiledTopologySchedule::epoch_start(std::size_t i) const {
  ST_REQUIRE(i < epochs_.size(), "CompiledTopologySchedule: epoch index out of range");
  return epochs_[i].start;
}

const std::shared_ptr<const Topology>& CompiledTopologySchedule::epoch_graph(
    std::size_t i) const {
  ST_REQUIRE(i < epochs_.size(), "CompiledTopologySchedule: epoch index out of range");
  return epochs_[i].graph;
}

std::size_t CompiledTopologySchedule::epoch_at(RealTime t) const {
  ST_ASSERT(!epochs_.empty(), "CompiledTopologySchedule: no epochs");
  // Last epoch with start <= t; times before epoch 0 clamp to epoch 0.
  const auto it = std::upper_bound(
      epochs_.begin(), epochs_.end(), t,
      [](RealTime time, const Epoch& e) { return time < e.start; });
  return it == epochs_.begin() ? 0 : static_cast<std::size_t>(it - epochs_.begin() - 1);
}

const Topology& CompiledTopologySchedule::graph_at(RealTime t) const {
  return *epochs_[epoch_at(t)].graph;
}

bool CompiledTopologySchedule::adjacent_at(RealTime t, NodeId a, NodeId b) const {
  return graph_at(t).adjacent(a, b);
}

std::uint32_t CompiledTopologySchedule::n() const {
  ST_ASSERT(!epochs_.empty(), "CompiledTopologySchedule: no epochs");
  return epochs_.front().graph->n();
}

std::size_t CompiledTopologySchedule::first_disconnected_epoch() const {
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    if (!epochs_[i].graph->is_connected()) return i;
  }
  return kAllConnected;
}

TopologySchedule& TopologySchedule::add_edge(RealTime at, NodeId a, NodeId b) {
  events_.push_back(TopologyEvent{at, TopologyEvent::Kind::kAddEdge, a, b, nullptr});
  return *this;
}

TopologySchedule& TopologySchedule::remove_edge(RealTime at, NodeId a, NodeId b) {
  events_.push_back(TopologyEvent{at, TopologyEvent::Kind::kRemoveEdge, a, b, nullptr});
  return *this;
}

TopologySchedule& TopologySchedule::set_graph(RealTime at,
                                              std::shared_ptr<const Topology> graph) {
  ST_REQUIRE(graph != nullptr, "TopologySchedule::set_graph: graph required");
  events_.push_back(TopologyEvent{at, TopologyEvent::Kind::kSetGraph, 0, 0, std::move(graph)});
  return *this;
}

CompiledTopologySchedule TopologySchedule::compile(
    std::shared_ptr<const Topology> base) const {
  ST_REQUIRE(base != nullptr, "TopologySchedule::compile: base graph required");
  const std::uint32_t n = base->n();

  CompiledTopologySchedule out;
  out.epochs_.push_back({0.0, base});
  if (events_.empty()) return out;

  // The working edge set, normalized to (min, max) pairs; std::set keeps
  // iteration sorted, so every snapshot is built from a deterministic edge
  // order regardless of event order within an epoch.
  std::set<std::pair<NodeId, NodeId>> edges;
  const auto load_edges = [&edges](const Topology& topo) {
    edges.clear();
    for (NodeId a = 0; a < topo.n(); ++a) {
      for (const NodeId b : topo.neighbors(a)) {
        if (a < b) edges.emplace(a, b);
      }
    }
  };
  load_edges(*base);

  RealTime prev = 0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TopologyEvent& ev = events_[i];
    ST_REQUIRE(ev.at > 0,
               "topology schedule: event times must be strictly positive (epoch 0 is the "
               "base graph)");
    ST_REQUIRE(ev.at >= prev, "topology schedule: event times must be non-decreasing");
    prev = ev.at;

    switch (ev.kind) {
      case TopologyEvent::Kind::kSetGraph:
        ST_REQUIRE(ev.graph->n() == n,
                   "topology schedule: replacement graph must keep the node count");
        load_edges(*ev.graph);
        break;
      case TopologyEvent::Kind::kAddEdge:
      case TopologyEvent::Kind::kRemoveEdge: {
        ST_REQUIRE(ev.a < n && ev.b < n,
                   "topology schedule: edge endpoint outside [0, n)");
        ST_REQUIRE(ev.a != ev.b, "topology schedule: edge endpoints must be distinct");
        const auto key = std::minmax(ev.a, ev.b);
        if (ev.kind == TopologyEvent::Kind::kAddEdge) {
          ST_REQUIRE(edges.emplace(key.first, key.second).second,
                     "topology schedule: add_edge of a link that already exists");
        } else {
          ST_REQUIRE(edges.erase(key) == 1,
                     "topology schedule: remove_edge of a link that does not exist");
        }
        break;
      }
    }

    // Snapshot once per distinct time: events sharing a timestamp land in
    // one epoch, applied in list order.
    if (i + 1 < events_.size() && events_[i + 1].at == ev.at) continue;
    std::vector<std::pair<NodeId, NodeId>> list(edges.begin(), edges.end());
    out.epochs_.push_back(
        {ev.at, std::make_shared<const Topology>(Topology::from_edges(n, list))});
  }
  return out;
}

}  // namespace stclock
