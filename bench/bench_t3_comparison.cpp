// Experiment T3 — Comparison against prior algorithms.
//
// The paper's evaluation is a comparison-in-prose against contemporaneous
// algorithms; this table turns it into a measurement. All algorithms run on
// the identical substrate (n = 7, f = 2, same drift trajectories, same delay
// policy) in two regimes: benign (crashed faulty nodes) and attacked (each
// algorithm's worst implemented attack).
//
// Key columns: steady skew (precision) and the fitted clock rate under
// attack (accuracy). Srikanth–Toueg keeps BOTH bounded; interactive
// convergence keeps agreement but loses accuracy (drift amplification);
// leader sync loses everything to one corrupted leader.

#include "baselines/interactive_convergence.h"
#include "baselines/leader_sync.h"
#include "baselines/lundelius_welch.h"
#include "baselines/unsynchronized.h"
#include "bench_common.h"

namespace stclock {
namespace {

constexpr double kRho = 1e-4;

baselines::BaselineSpec baseline_spec(AttackKind attack) {
  baselines::BaselineSpec spec;
  spec.n = 7;
  spec.f = 2;
  spec.rho = kRho;
  spec.tdel = 0.01;
  spec.period = 1.0;
  spec.delta = 0.05;
  spec.initial_sync = 0.005;
  spec.seed = 1;
  spec.horizon = 30.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = attack;
  return spec;
}

struct Row {
  std::string name;
  double benign_skew;
  double attacked_skew;
  double attacked_rate;
  std::string guarantee;  // a-priori bound on the attacked rate, if any
  double msgs_per_round;
  std::string resilience;
};

Row st_row(Variant variant, std::uint64_t seed) {
  SyncConfig cfg = bench::default_auth_config();
  cfg.f = 2;  // match the baselines' f so substrates are identical
  cfg.variant = variant;
  RunSpec benign = bench::adversarial_spec(cfg, 30.0, seed);
  benign.attack = AttackKind::kCrash;
  RunSpec attacked = bench::adversarial_spec(cfg, 30.0, seed);
  attacked.attack = AttackKind::kSpamEarly;

  const RunResult rb = run_sync(benign);
  const RunResult ra = run_sync(attacked);
  const double rounds = static_cast<double>(ra.rounds_completed);
  return {std::string("srikanth-toueg-") + cfg.variant_name(), rb.steady_skew,
          ra.steady_skew, ra.envelope.max_rate,
          "<= " + Table::num(ra.bounds.rate_hi, 6),
          static_cast<double>(ra.messages_sent) / rounds,
          variant == Variant::kAuthenticated ? "f < n/2" : "f < n/3"};
}

double rounds_of(const baselines::BaselineSpec& spec) {
  return spec.horizon / spec.period;
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  using namespace stclock::baselines;
  bench::print_header(
      "T3 — Algorithm comparison (identical substrate, n=7, f=2)",
      "ST achieves skew Theta(tdel + rho*P) AND hardware-optimal accuracy at "
      "f < n/2 (auth); averaging baselines amplify drift or lose resilience");

  std::vector<Row> rows;
  rows.push_back(st_row(Variant::kAuthenticated, opts.seed));
  rows.push_back(st_row(Variant::kEcho, opts.seed));

  {
    const BaselineResult benign = run_lundelius_welch(baseline_spec(AttackKind::kCrash));
    const BaselineResult attacked = run_lundelius_welch(baseline_spec(AttackKind::kLwPull));
    rows.push_back({"lundelius-welch", benign.steady_skew, attacked.steady_skew,
                    attacked.envelope.max_rate, "bounded (f-trim)",
                    static_cast<double>(attacked.messages_sent) /
                        rounds_of(baseline_spec(AttackKind::kLwPull)),
                    "f < n/3"});
  }
  // Two CNV rows with different discard thresholds: the rate excess scales
  // with the attacker-relevant parameter delta — there is no a-priori bound.
  for (const double delta : {0.05, 0.2}) {
    BaselineSpec benign_spec = baseline_spec(AttackKind::kCrash);
    benign_spec.delta = delta;
    BaselineSpec attack_spec = baseline_spec(AttackKind::kCnvPull);
    attack_spec.delta = delta;
    const BaselineResult benign = run_interactive_convergence(benign_spec);
    const BaselineResult attacked = run_interactive_convergence(attack_spec);
    rows.push_back({"interactive-conv d=" + Table::num(delta, 2), benign.steady_skew,
                    attacked.steady_skew, attacked.envelope.max_rate,
                    "NONE (grows with delta)",
                    static_cast<double>(attacked.messages_sent) /
                        rounds_of(attack_spec),
                    "f < n/3 (agreement only)"});
  }
  {
    const BaselineResult benign = run_leader_sync(baseline_spec(AttackKind::kNone), false);
    const BaselineResult attacked = run_leader_sync(baseline_spec(AttackKind::kNone), true);
    rows.push_back({"leader-sync", benign.steady_skew, attacked.steady_skew,
                    attacked.envelope.max_rate, "NONE (leader-controlled)",
                    static_cast<double>(benign.messages_sent) /
                        rounds_of(baseline_spec(AttackKind::kNone)),
                    "f = 0"});
  }
  {
    const BaselineResult r = run_unsynchronized(baseline_spec(AttackKind::kNone));
    rows.push_back({"unsynchronized", r.max_skew, r.max_skew, 1.0 + kRho,
                    "hardware envelope", 0.0, "-"});
  }

  Table table({"algorithm", "skew benign(s)", "skew attacked(s)", "rate attacked",
               "rate guarantee", "msgs/round", "resilience"});
  for (const Row& row : rows) {
    table.add_row({row.name, Table::sci(row.benign_skew), Table::sci(row.attacked_skew),
                   Table::num(row.attacked_rate, 6), row.guarantee,
                   Table::num(row.msgs_per_round, 0), row.resilience});
  }
  stclock::bench::emit(table, opts);
  std::cout << "(hardware rate max = " << Table::num(1.0 + kRho, 6) << ".\n"
            << " ST's attacked rate sits at its fixed a-priori ceiling\n"
            << " (1+rho)*P/(P-alpha) = 1 + O(tdel/P), which vanishes as P grows.\n"
            << " CNV's excess is attacker-scalable: compare the d=0.05 and d=0.20\n"
            << " rows — doubling the threshold doubles the drift amplification,\n"
            << " and no choice of hardware quality or period bounds it a priori.)\n";
  return 0;
}
