#pragma once

#include <memory>

#include "clocks/logical_clock.h"
#include "crypto/signature.h"
#include "sim/event_queue.h"
#include "sim/message.h"
#include "util/rng.h"
#include "util/types.h"

/// Protocol-facing interfaces.
///
/// Honest protocol code runs against `Context`, which deliberately exposes
/// *only* what the model allows a process to see: its own clocks, its own
/// signing key, authenticated channels, and timers. In particular there is no
/// way to read real time — protocols that need "the" time have to earn it by
/// synchronizing.
///
/// Byzantine behaviour is written against `AdversaryContext`, which is
/// omniscient (full-information adversary): it can read real time, inspect
/// any node, sign for corrupted nodes, and deliver messages from corrupted
/// senders at any chosen future time. It structurally cannot sign for honest
/// nodes (unforgeability) and cannot tamper with honest-to-honest delivery
/// beyond the delay policy's [0, tdel] freedom.
namespace stclock {

class Simulator;

/// Handle giving one honest process its model-visible powers.
class Context {
 public:
  [[nodiscard]] NodeId self() const { return id_; }
  [[nodiscard]] std::uint32_t n() const;

  /// This node's hardware clock reading "now".
  [[nodiscard]] LocalTime hardware_now() const;
  /// This node's logical clock reading "now".
  [[nodiscard]] LocalTime logical_now() const;
  /// Mutable logical clock (protocols apply corrections through this).
  [[nodiscard]] LogicalClock& logical();

  /// Sends to every reachable node: all of them on the (default) complete
  /// topology, self plus neighbors on a general graph. Self-delivery is
  /// immediate; delays to other correct nodes are chosen by the network's
  /// delay policy within [0, tdel].
  void broadcast(const Message& m);
  /// Point-to-point send. On a general topology a unicast to a non-neighbor
  /// is lost in transit (no link can carry it) and counted as dropped.
  void send(NodeId to, const Message& m);

  /// Arms a timer that fires when this node's *logical* clock reads
  /// `target`. If the logical clock is adjusted after arming, the real fire
  /// time is NOT recomputed — cancel and re-arm (the sync protocol does this
  /// after every correction).
  [[nodiscard]] TimerId set_timer_at_logical(LocalTime target);
  /// Arms a timer on the hardware clock (immune to logical adjustments).
  [[nodiscard]] TimerId set_timer_at_hardware(LocalTime target);
  void cancel_timer(TimerId id);

  /// Starts this node's periodic hardware ticker: Process::on_tick fires
  /// every `hw_interval` units of the node's hardware clock, forever. The
  /// ticker is hardware (an oscillator interrupt), not memory: state
  /// corruption cannot cancel it and it is the anchor self-stabilizing
  /// protocols rebuild from. It dies only with the node itself (churn); a
  /// rebooted process must call start_ticker again. At most one per node.
  void start_ticker(Duration hw_interval);

  [[nodiscard]] const crypto::KeyRegistry& registry() const;
  /// This node's own signing capability.
  [[nodiscard]] const crypto::Signer& signer() const;

  [[nodiscard]] Rng& rng();

 private:
  friend class Simulator;
  Context(Simulator* sim, NodeId id) : sim_(sim), id_(id) {}

  Simulator* sim_;
  NodeId id_;
};

/// An honest protocol instance (one per honest node).
class Process {
 public:
  virtual ~Process() = default;

  virtual void on_start(Context& ctx) = 0;
  virtual void on_message(Context& ctx, NodeId from, const Message& m) = 0;
  virtual void on_timer(Context& ctx, TimerId id) = 0;

  /// Periodic hardware ticker (see Context::start_ticker). Only called for
  /// processes that started one.
  virtual void on_tick(Context& /*ctx*/) {}

  /// Fault injection: scramble this process's private state with draws from
  /// `rng` (the simulator's dedicated corruption stream — see
  /// sim/corruption.h). The simulator itself scrambles the state it owns
  /// (clock corrections, pending timers, in-flight messages); protocols
  /// whose memory goes beyond that (round counters, signature buffers)
  /// override this so corruption reaches all of it. No Context is passed on
  /// purpose: corruption rewrites memory, it cannot act.
  virtual void corrupt_state(Rng& /*rng*/) {}
};

/// Omniscient handle for Byzantine behaviour, controlling all corrupted
/// nodes at once.
class AdversaryContext {
 public:
  [[nodiscard]] RealTime real_now() const;
  [[nodiscard]] std::uint32_t n() const;
  [[nodiscard]] Duration tdel() const;
  [[nodiscard]] bool is_corrupt(NodeId id) const;

  /// Full-information access to the simulation (read-only).
  [[nodiscard]] const Simulator& observe() const;

  /// Sends `m` appearing to come from corrupted node `from`, delivered to
  /// `to` at real time `deliver_at` (>= now). Channels are authenticated, so
  /// `from` must be corrupted.
  void send_from(NodeId from, NodeId to, const Message& m, RealTime deliver_at);
  /// Convenience: same message to every honest node at the same time.
  void send_from_to_all(NodeId from, const Message& m, RealTime deliver_at);

  /// Signing capability of a corrupted node; throws for honest ids
  /// (unforgeability).
  [[nodiscard]] const crypto::Signer& signer_for(NodeId corrupt_id) const;
  [[nodiscard]] const crypto::KeyRegistry& registry() const;

  /// Arms a real-time timer routed to Adversary::on_timer.
  [[nodiscard]] TimerId set_timer_at_real(RealTime t);

  [[nodiscard]] Rng& rng();

 private:
  friend class Simulator;
  explicit AdversaryContext(Simulator* sim) : sim_(sim) {}

  Simulator* sim_;
};

/// A Byzantine strategy. Receives every message addressed to any corrupted
/// node and may schedule arbitrary (model-conforming) sends.
class Adversary {
 public:
  virtual ~Adversary() = default;

  virtual void on_start(AdversaryContext& ctx) = 0;
  /// A message delivered to corrupted node `at`.
  virtual void on_message(AdversaryContext& ctx, NodeId at, NodeId from, const Message& m) = 0;
  virtual void on_timer(AdversaryContext& ctx, TimerId id) = 0;
};

}  // namespace stclock
