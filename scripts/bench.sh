#!/usr/bin/env bash
# Perf trajectory runner: builds bench_micro in Release and runs the tracked
# hot-path benchmarks (broadcast fan-out, event-queue churn, counters, and
# the BM_Sweep_Grid8 end-to-end sweep), appending the result as one labelled
# point to BENCH_core.json.
#
# Usage: scripts/bench.sh [--smoke] [--scale] [--label NAME] [build-dir]
#   --smoke   1-iteration run to a temp file (CI bit-rot guard; does NOT
#             touch BENCH_core.json)
#   --scale   run the bench_scale sparse-fabric sweep (auth on expander k=16,
#             full vs sampled fan-out) instead of bench_micro, and append its
#             rows as a labelled point to BENCH_core.json
#   --label   label recorded with the run (default: git describe)
#   build-dir defaults to build-bench
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
SCALE=0
LABEL=""
BUILD_DIR="build-bench"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1; shift ;;
    --scale) SCALE=1; shift ;;
    --label)
      [[ $# -ge 2 ]] || { echo "bench.sh: --label needs a value (see --help)" >&2; exit 2; }
      LABEL="$2"; shift 2 ;;
    -h|--help)
      echo "usage: scripts/bench.sh [--smoke] [--scale] [--label NAME] [build-dir]"; exit 0 ;;
    *) BUILD_DIR="$1"; shift ;;
  esac
done
[[ -n "$LABEL" ]] || LABEL="$(git describe --always --dirty 2>/dev/null || echo unlabelled)"

if [[ "$SCALE" -eq 1 ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j --target bench_scale

  ROWS="$(mktemp)"
  trap 'rm -f "$ROWS"' EXIT
  # The message-complexity cliff: the same auth cells in full mode (Theta(n^2)
  # per round — n = 1000 alone is ~5M messages and ~90 s, which is why the
  # full leg stops there) vs sampled fan-out on an expander (O(m*n), so
  # n = 10^5 is cheaper than full mode at n = 10^3). The acceptance cell is
  # the n = 10^5 sampled row, budget-enforced.
  # (n = 4096, not a round 4000: cells at or above kScaleMetricThreshold use
  # the O(n) streaming metric policy; 4000 would pay full-fidelity metrics
  # and dominate its own row.)
  "$BUILD_DIR/bench_scale" --protocol auth --topology complete --mode full \
    --n 1000 --horizon 5 --json "$ROWS"
  "$BUILD_DIR/bench_scale" --protocol auth --topology expander --expander-k 16 \
    --mode sampled --sample 8 --n 1000 --n 4096 --n 100000 --horizon 5 \
    --budget 120 --json "$ROWS"

  # Thread-scaling curve for the lookahead-windowed parallel engine: the same
  # million-node sampled-expander cell at 1/2/4/8 worker threads, delay=half
  # (the registry's positive-min_delay policy, which is what gives the engine
  # its window). Every cell's metrics are bit-identical to the sequential row;
  # only wall time may move. NOTE the curve is only meaningful on multicore
  # hardware — on a single-CPU container the parallel rows measure pure
  # engine overhead (read host.num_cpus next to the point before judging it).
  for T in 1 2 4 8; do
    "$BUILD_DIR/bench_scale" --protocol auth --topology expander --expander-k 8 \
      --mode sampled --sample 8 --n 1000000 --horizon 5 --delay half \
      --sim-threads "$T" --json "$ROWS"
  done

  # The 10^7 frontier smoke cell: one order of magnitude past the million-node
  # acceptance row, budget-enforced on both wall clock and peak RSS so a
  # memory or runtime regression at the frontier fails the leg loudly.
  "$BUILD_DIR/bench_scale" --protocol auth --topology expander --expander-k 8 \
    --mode sampled --sample 8 --n 10000000 --horizon 1 --delay half \
    --budget 1200 --rss-budget 65536 --json "$ROWS"

  LABEL="$LABEL" ROWS="$ROWS" python3 - <<'EOF'
import datetime, json, os

rows = [json.loads(line) for line in open(os.environ["ROWS"]) if line.strip()]
point = {
    "label": os.environ["LABEL"] + "/scale",
    "date": datetime.datetime.now().isoformat(),
    "host": {"num_cpus": len(os.sched_getaffinity(0))},
    "benchmarks": rows,
}

path = "BENCH_core.json"
doc = {"tracks": "scripts/bench.sh hot-path trajectory", "history": []}
if os.path.exists(path):
    doc = json.load(open(path))
doc["history"].append(point)
json.dump(doc, open(path, "w"), indent=1)
open(path, "a").write("\n")
print(f"bench.sh: appended scale run '{point['label']}' to {path} "
      f"({len(doc['history'])} point(s) in trajectory)")
EOF
  exit 0
fi

FILTER='BM_Broadcast_N64|BM_Broadcast_N256|BM_Broadcast_N4096|BM_Broadcast_N65536|BM_TopoSwitch_Epochs|BM_EventQueue_Churn|BM_Counters|BM_Sweep_Grid8|BM_CellFingerprint|BM_StoreLookup'

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_micro
if [[ ! -x "$BUILD_DIR/bench_micro" ]]; then
  echo "bench.sh: bench_micro not built (google-benchmark not found)" >&2
  exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

EXTRA=()
if [[ "$SMOKE" -eq 1 ]]; then
  # Near-zero min_time: each benchmark runs a handful of iterations, just
  # enough to prove the binaries still build and execute. (The "1x"
  # iteration syntax needs google-benchmark >= 1.8, which the image lacks.)
  EXTRA+=(--benchmark_min_time=0.001)
fi

"$BUILD_DIR/bench_micro" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$RAW" \
  --benchmark_out_format=json \
  "${EXTRA[@]}"

if [[ "$SMOKE" -eq 1 ]]; then
  echo "bench.sh: smoke run OK (BENCH_core.json unchanged)"
  exit 0
fi

# Append this run to the perf trajectory. Requires python3 (baked into the
# dev image); the raw google-benchmark JSON is preserved verbatim per run.
LABEL="$LABEL" RAW="$RAW" python3 - <<'EOF'
import json, os

raw = json.load(open(os.environ["RAW"]))
point = {
    "label": os.environ["LABEL"],
    "date": raw["context"]["date"],
    "host": {k: raw["context"].get(k) for k in ("num_cpus", "mhz_per_cpu", "library_build_type")},
    "benchmarks": [
        {k: b.get(k) for k in ("name", "iterations", "real_time", "cpu_time",
                               "time_unit", "items_per_second") if k in b}
        for b in raw["benchmarks"]
    ],
}

path = "BENCH_core.json"
doc = {"tracks": "scripts/bench.sh hot-path trajectory", "history": []}
if os.path.exists(path):
    doc = json.load(open(path))
doc["history"].append(point)
json.dump(doc, open(path, "w"), indent=1)
open(path, "a").write("\n")
print(f"bench.sh: appended run '{point['label']}' to {path} "
      f"({len(doc['history'])} point(s) in trajectory)")
EOF
