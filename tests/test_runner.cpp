#include <gtest/gtest.h>

#include "core/runner.h"
#include "experiment/scenario.h"

namespace stclock {
namespace {

experiment::ScenarioSpec basic_spec(Variant variant) {
  SyncConfig cfg;
  cfg.variant = variant;
  cfg.n = 7;
  cfg.f = variant == Variant::kAuthenticated ? 3 : 2;
  cfg.rho = 1e-4;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;

  experiment::ScenarioSpec spec;
  spec.protocol = variant == Variant::kAuthenticated ? "auth" : "echo";
  spec.cfg = cfg;
  spec.seed = 1;
  spec.horizon = 15.0;
  spec.drift = DriftKind::kRandomWalk;
  spec.delay = DelayKind::kUniform;
  return spec;
}

TEST(Runner, SkewSeriesIsTimeMonotone) {
  const experiment::ScenarioResult r = run_scenario(basic_spec(Variant::kAuthenticated));
  ASSERT_GE(r.skew_series.size(), 10u);
  for (std::size_t i = 1; i < r.skew_series.size(); ++i) {
    EXPECT_GT(r.skew_series[i].first, r.skew_series[i - 1].first);
  }
  // Series values never exceed the reported maximum.
  for (const auto& [t, skew] : r.skew_series) {
    EXPECT_LE(skew, r.max_skew + 1e-15);
  }
}

TEST(Runner, PulseCountsConsistentWithHorizonAndPeriods) {
  const experiment::ScenarioResult r = run_scenario(basic_spec(Variant::kAuthenticated));
  EXPECT_LE(r.min_pulses, r.max_pulses);
  // Pulses per node ~ horizon / period; generous brackets either side.
  EXPECT_GE(r.min_pulses, 10u);
  EXPECT_LE(r.max_pulses, 20u);
  // Observed periods bracket the configured period loosely.
  EXPECT_GT(r.min_period, 0.5);
  EXPECT_LT(r.max_period, 2.0);
}

TEST(Runner, BoundsMatchTheoryModule) {
  const experiment::ScenarioSpec spec = basic_spec(Variant::kEcho);
  const experiment::ScenarioResult r = run_scenario(spec);
  const theory::Bounds direct = theory::derive_bounds(spec.cfg);
  EXPECT_DOUBLE_EQ(r.bounds.precision, direct.precision);
  EXPECT_DOUBLE_EQ(r.bounds.min_period, direct.min_period);
  EXPECT_DOUBLE_EQ(r.bounds.rate_hi, direct.rate_hi);
}

TEST(Runner, AuthRunsProduceOnlyRoundTraffic) {
  // Message-kind accounting: the authenticated protocol must emit nothing
  // but (round k) messages; a stray init/echo would mean the primitives
  // leaked into each other.
  const experiment::ScenarioResult r = run_scenario(basic_spec(Variant::kAuthenticated));
  EXPECT_GT(r.messages_sent, 0u);
  // Bytes per message for round msgs: header + at least one signature.
  EXPECT_GE(r.bytes_sent, r.messages_sent * (9 + 36));
}

TEST(Runner, EchoRunsAreCheaperPerMessage) {
  const experiment::ScenarioResult auth = run_scenario(basic_spec(Variant::kAuthenticated));
  const experiment::ScenarioResult echo = run_scenario(basic_spec(Variant::kEcho));
  const double auth_avg =
      static_cast<double>(auth.bytes_sent) / static_cast<double>(auth.messages_sent);
  const double echo_avg =
      static_cast<double>(echo.bytes_sent) / static_cast<double>(echo.messages_sent);
  EXPECT_LT(echo_avg, auth_avg);  // init/echo messages carry no signatures
}

TEST(Runner, RejectsInvalidSpecs) {
  {
    experiment::ScenarioSpec spec = basic_spec(Variant::kAuthenticated);
    spec.horizon = 0;
    EXPECT_THROW((void)run_scenario(spec), std::logic_error);
  }
  {
    experiment::ScenarioSpec spec = basic_spec(Variant::kAuthenticated);
    spec.cfg.f = 5;  // > ceil(7/2)-1
    EXPECT_THROW((void)run_scenario(spec), std::logic_error);
  }
  {
    experiment::ScenarioSpec spec = basic_spec(Variant::kAuthenticated);
    spec.joiners = 4;  // 7 - 3 corrupt - 4 joiners = 0 regular nodes
    spec.attack = AttackKind::kCrash;
    EXPECT_THROW((void)run_scenario(spec), std::logic_error);
  }
  {
    // The legacy shim forwards the same validation.
    RunSpec spec;
    spec.cfg = basic_spec(Variant::kAuthenticated).cfg;
    spec.horizon = 0;
    EXPECT_THROW((void)run_sync(spec), std::logic_error);
  }
}

TEST(Runner, NameHelpersCoverAllKinds) {
  EXPECT_STREQ(drift_name(DriftKind::kNone), "none");
  EXPECT_STREQ(drift_name(DriftKind::kRandomConstant), "rand-const");
  EXPECT_STREQ(drift_name(DriftKind::kRandomWalk), "rand-walk");
  EXPECT_STREQ(drift_name(DriftKind::kExtremal), "extremal");
  EXPECT_STREQ(delay_name(DelayKind::kZero), "zero");
  EXPECT_STREQ(delay_name(DelayKind::kAlternating), "alternating");
}

TEST(Runner, LegacyShimReproducesEngineMetrics) {
  RunSpec legacy;
  legacy.cfg = basic_spec(Variant::kAuthenticated).cfg;
  legacy.seed = 1;
  legacy.horizon = 15.0;
  legacy.drift = DriftKind::kRandomWalk;
  legacy.delay = DelayKind::kUniform;
  const RunResult shim = run_sync(legacy);
  const experiment::ScenarioResult direct = run_scenario(basic_spec(Variant::kAuthenticated));
  EXPECT_EQ(shim.max_skew, direct.max_skew);
  EXPECT_EQ(shim.messages_sent, direct.messages_sent);
  EXPECT_EQ(shim.min_pulses, direct.min_pulses);
}

TEST(Runner, SleeperWakeupVisibleInSkewSeries) {
  // The sleeper attack wakes at t = 10; pulses accelerate afterwards but
  // the run must stay within bounds — and the series must actually cover
  // both phases.
  experiment::ScenarioSpec spec = basic_spec(Variant::kAuthenticated);
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = AttackKind::kSleeper;
  spec.horizon = 20.0;
  const experiment::ScenarioResult r = run_scenario(spec);
  EXPECT_TRUE(r.live);
  EXPECT_GT(r.skew_series.back().first, 15.0);
  EXPECT_LE(r.steady_skew, r.bounds.precision);
}

}  // namespace
}  // namespace stclock
