#include <gtest/gtest.h>

#include "baselines/hssd_sync.h"
#include "core/runner.h"

namespace stclock {
namespace {

// ---------------------------------------------------------------------------
// HSSD-style single-signature synchronization (the authenticated competitor).
// ---------------------------------------------------------------------------

baselines::BaselineSpec hssd_spec() {
  baselines::BaselineSpec spec;
  spec.n = 7;
  spec.f = 3;
  spec.rho = 1e-4;
  spec.tdel = 0.01;
  spec.period = 1.0;
  spec.delta = 0.05;  // HSSD plausibility window
  spec.initial_sync = 0.005;
  spec.seed = 5;
  spec.horizon = 40.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kHalf;
  return spec;
}

TEST(Hssd, ConvergesUnderBenignConditions) {
  const auto r = baselines::run_hssd(hssd_spec());
  // First-signature acceptance keeps everyone within ~one delay + drift.
  EXPECT_LE(r.steady_skew, 3 * hssd_spec().tdel + 0.01);
}

TEST(Hssd, ToleratesCrashes) {
  auto spec = hssd_spec();
  spec.attack = AttackKind::kCrash;
  const auto r = baselines::run_hssd(spec);
  EXPECT_LE(r.steady_skew, 3 * spec.tdel + 0.01);
}

TEST(Hssd, EarlyTriggerAmplifiesDrift) {
  // The contrast the Srikanth–Toueg quorum rule exists for: ONE corrupted
  // node triggers every round the moment the plausibility window opens,
  // advancing all correct clocks by ~window per period. Expected rate
  // excess ~ window / P, far beyond the hardware envelope.
  auto spec = hssd_spec();
  spec.f = 1;  // a single corrupted node suffices
  spec.attack = AttackKind::kHssdEarly;
  const auto r = baselines::run_hssd(spec);
  EXPECT_GT(r.envelope.max_rate, 1 + spec.rho + 0.3 * spec.delta / spec.period);
  // Agreement survives (the relay drags everyone together)...
  EXPECT_LE(r.steady_skew, 3 * spec.delta);
}

TEST(Hssd, SrikanthTouegResistsTheSameAttackPattern) {
  // Under ST, acceptance needs f+1 signatures, so the identical early-
  // signature pressure cannot move acceptance before an honest ready: the
  // rate ceiling stays the protocol constant.
  SyncConfig cfg;
  cfg.n = 7;
  cfg.f = 3;
  cfg.rho = 1e-4;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 5;
  spec.horizon = 40.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kHalf;
  spec.attack = AttackKind::kSpamEarly;

  const RunResult r = run_sync(spec);
  EXPECT_LE(r.envelope.max_rate, r.bounds.rate_hi + r.rate_fit_tolerance);
}

TEST(Hssd, ParameterValidation) {
  baselines::HssdParams params;
  params.period = 1.0;
  params.window = 0.6;  // > P/2
  EXPECT_THROW(baselines::HssdProtocol{params}, std::logic_error);
  params.window = 0.05;
  params.beta = 1.5;  // >= P
  EXPECT_THROW(baselines::HssdProtocol{params}, std::logic_error);
}

// ---------------------------------------------------------------------------
// Initialization: convergence from an unsynchronized start.
// ---------------------------------------------------------------------------

TEST(Initialization, ConvergesFromLargeInitialOffsets) {
  // Clocks start spread across half a period — far beyond the steady-state
  // bound. The first accepted round anchors everyone; skew afterwards obeys
  // the ordinary precision bound.
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.5;  // huge: half a period
  cfg.allow_unsynchronized_start = true;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 4;
  spec.horizon = 25.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = AttackKind::kSpamEarly;

  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.live);
  // steady window starts after 2 * max_period: convergence is complete.
  EXPECT_LE(r.steady_skew, r.bounds.precision);
  // The initial spread really was visible before convergence.
  EXPECT_GE(r.max_skew, 0.2);
}

TEST(Initialization, ValidateRejectsLargeSpreadWithoutOptIn) {
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.5;
  EXPECT_THROW(cfg.validate(), std::logic_error);
  cfg.allow_unsynchronized_start = true;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Initialization, FastStartersSkipRoundsInsteadOfStalling) {
  // A node whose hardware clock starts several periods ahead broadcasts
  // readiness for early rounds nobody else is at; when the group's first
  // quorum forms it must adopt that round and continue (round skipping).
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 2.5;  // some nodes start 2.5 periods ahead
  cfg.allow_unsynchronized_start = true;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 6;
  spec.horizon = 25.0;
  spec.drift = DriftKind::kRandomConstant;
  spec.delay = DelayKind::kUniform;

  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.live);
  EXPECT_LE(r.steady_skew, r.bounds.precision);
}

// ---------------------------------------------------------------------------
// Sleeper adversary: attacks that begin mid-run.
// ---------------------------------------------------------------------------

TEST(Sleeper, MidRunAttackStaysWithinBounds) {
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 8;
  spec.horizon = 25.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = AttackKind::kSleeper;  // wakes at t = 10 by default

  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.live);
  EXPECT_LE(r.steady_skew, r.bounds.precision);
  EXPECT_LE(r.pulse_spread, r.bounds.pulse_spread + 1e-9);
  EXPECT_GE(r.min_period, r.bounds.min_period - 1e-9);
}

}  // namespace
}  // namespace stclock
