#include "resultstore/cache_key.h"

#include "experiment/engine_info.h"
#include "scenfile/scenfile.h"
#include "util/digest.h"

namespace stclock::resultstore {

std::string cell_key(const experiment::ScenarioSpec& spec, std::string_view engine_fp) {
  util::Digest d;
  d.update(scenfile::spec_to_json(experiment::resolved_spec(spec)));
  d.update_u64(spec.seed);
  d.update(engine_fp);
  return d.hex();
}

std::string cell_key(const experiment::ScenarioSpec& spec) {
  return cell_key(spec, experiment::engine_fingerprint());
}

}  // namespace stclock::resultstore
