#pragma once

#include <cstddef>
#include <vector>

#include "clocks/hardware_clock.h"
#include "util/types.h"

/// Logical (synchronized) clocks: C(t) = correction(H(t)).
///
/// A logical clock is a piecewise-linear map from *hardware* local time h to
/// logical time L(h). It starts as the identity, and the synchronization
/// protocol modifies it going forward in hardware time:
///
///  - `adjust_instant` introduces a discontinuity (the paper's C := kP + α),
///    which may move the clock forward or — by a small bounded amount —
///    backward;
///  - `adjust_amortized` spreads the correction over a window by running the
///    logical clock slightly faster/slower, yielding a continuous, monotone
///    clock (the standard smoothing technique the paper refers to).
///
/// All adjustments must be appended in increasing hardware time; the class
/// records the full history so experiments can audit every correction.
namespace stclock {

class LogicalClock {
 public:
  /// A logical clock that initially mirrors the hardware clock (L(h) = h).
  /// The clock keeps a pointer to `hw`, which must outlive it.
  explicit LogicalClock(const HardwareClock& hw);

  /// Logical reading at hardware time h (right-continuous at jumps).
  [[nodiscard]] LocalTime read_at_hardware(LocalTime h) const;

  /// Logical reading at real time t.
  [[nodiscard]] LocalTime read(RealTime t) const;

  /// Applies `delta` instantaneously at hardware time h_now.
  void adjust_instant(LocalTime h_now, Duration delta);

  /// Applies `delta` by modulating the logical rate over the next `window`
  /// hardware time units starting at h_now. Requires window > 0 and, for
  /// negative deltas, |delta| < window (so the logical clock keeps a
  /// positive rate and stays monotone).
  void adjust_amortized(LocalTime h_now, Duration delta, Duration window);

  /// Hard overwrite: like adjust_instant, but any pieces scheduled after
  /// h_now (an amortized ramp still in flight) are discarded first, so it
  /// never trips the forward-only invariant. Used where the correction
  /// state is being *replaced* rather than refined: fault injection
  /// (corruption rewrites memory wholesale) and self-stabilizing recovery
  /// (a repair must not be blocked by a pending smooth correction).
  void adjust_override(LocalTime h_now, Duration delta);

  /// First real time >= `now` at which the logical clock reads `target`.
  /// If the clock already reads >= target at `now`, returns `now`. Valid
  /// only with respect to adjustments applied so far; callers that adjust
  /// later must re-query (the sync protocol re-arms its round timer after
  /// every adjustment).
  [[nodiscard]] RealTime when_reads(RealTime now, LocalTime target) const;

  /// Effective logical rate dL/dt at real time t.
  [[nodiscard]] double rate_at(RealTime t) const;

  [[nodiscard]] const HardwareClock& hardware() const { return *hw_; }

  /// Total signed correction applied so far.
  [[nodiscard]] Duration total_adjustment() const { return total_adjustment_; }
  [[nodiscard]] std::size_t adjustment_count() const { return adjustment_count_; }
  /// Largest single |delta|.
  [[nodiscard]] Duration max_abs_adjustment() const { return max_abs_adjustment_; }

 private:
  struct Piece {
    LocalTime h_start;   // hardware time where this piece begins
    LocalTime value;     // logical value at h_start (right limit)
    double slope;        // dL/dh within the piece
  };

  [[nodiscard]] std::size_t piece_at(LocalTime h) const;
  void record(Duration delta);

  const HardwareClock* hw_;
  std::vector<Piece> pieces_;
  Duration total_adjustment_ = 0;
  Duration max_abs_adjustment_ = 0;
  std::size_t adjustment_count_ = 0;
};

}  // namespace stclock
