#include "sim/topology.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/rng.h"

namespace stclock {

const char* topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kComplete: return "complete";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kTorus: return "torus";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kGnp: return "gnp";
    case TopologyKind::kExpander: return "expander";
    case TopologyKind::kCustom: return "custom";
  }
  return "unknown";
}

Topology::Topology(TopologyKind kind, std::uint32_t n) : kind_(kind), n_(n) {
  ST_REQUIRE(n > 0, "Topology: need at least one node");
}

void Topology::add_edge(NodeId a, NodeId b) {
  ST_REQUIRE(a < n_ && b < n_, "Topology: edge endpoint out of range");
  ST_REQUIRE(a != b, "Topology: self-loops are not links");
  staged_.push_back({a, b});
  ++edge_count_;
}

void Topology::finalize() {
  ST_ASSERT(kind_ != TopologyKind::kComplete, "Topology: complete stores no adjacency");
  // Counting sort the staged edge list into CSR rows: one pass to count
  // degrees, one to scatter both directions, then a per-row sort. O(n + E)
  // plus the sort, and the only transient allocation is the staged list.
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& [a, b] : staged_) {
    ++offsets_[static_cast<std::size_t>(a) + 1];
    ++offsets_[static_cast<std::size_t>(b) + 1];
  }
  for (std::size_t id = 0; id < n_; ++id) offsets_[id + 1] += offsets_[id];
  nbrs_.resize(offsets_[n_]);
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [a, b] : staged_) {
    nbrs_[cursor[a]++] = b;
    nbrs_[cursor[b]++] = a;
  }
  staged_.clear();
  staged_.shrink_to_fit();
  for (NodeId id = 0; id < n_; ++id) {
    const auto row_begin = nbrs_.begin() + static_cast<std::ptrdiff_t>(offsets_[id]);
    const auto row_end = nbrs_.begin() + static_cast<std::ptrdiff_t>(offsets_[id + 1]);
    std::sort(row_begin, row_end);
    ST_REQUIRE(std::adjacent_find(row_begin, row_end) == row_end,
               "Topology: duplicate edge");
  }
  if (n_ > kBitsetMaxN) return;  // adjacent() binary-searches the CSR row
  const std::size_t cells = static_cast<std::size_t>(n_) * n_;
  bits_.assign((cells + 63) / 64, 0);
  for (NodeId a = 0; a < n_; ++a) {
    for (std::uint64_t i = offsets_[a]; i < offsets_[a + 1]; ++i) {
      const std::size_t bit = static_cast<std::size_t>(a) * n_ + nbrs_[i];
      bits_[bit / 64] |= std::uint64_t{1} << (bit % 64);
    }
  }
}

bool Topology::csr_adjacent(NodeId a, NodeId b) const {
  const NodeId* begin = nbrs_.data() + offsets_[a];
  const NodeId* end = nbrs_.data() + offsets_[static_cast<std::size_t>(a) + 1];
  return std::binary_search(begin, end, b);
}

bool Topology::adjacent(NodeId a, NodeId b) const {
  ST_REQUIRE(a < n_ && b < n_, "Topology::adjacent: node id out of range");
  if (kind_ == TopologyKind::kComplete) return a != b;
  if (!bits_.empty()) {
    const std::size_t bit = static_cast<std::size_t>(a) * n_ + b;
    return (bits_[bit / 64] >> (bit % 64)) & 1;
  }
  return csr_adjacent(a, b);
}

NeighborRange Topology::neighbors(NodeId id) const {
  ST_REQUIRE(id < n_, "Topology::neighbors: node id out of range");
  if (kind_ == TopologyKind::kComplete) return NeighborRange(n_, id);
  const NodeId* base = nbrs_.data();
  return NeighborRange(base + offsets_[id], base + offsets_[static_cast<std::size_t>(id) + 1]);
}

std::pair<const NodeId*, std::size_t> Topology::neighbor_span(NodeId id) const {
  ST_REQUIRE(id < n_, "Topology::neighbor_span: node id out of range");
  ST_REQUIRE(kind_ != TopologyKind::kComplete,
             "Topology::neighbor_span: complete neighbors are implicit (branch on "
             "is_complete first)");
  const std::uint64_t begin = offsets_[id];
  return {nbrs_.data() + begin, offsets_[static_cast<std::size_t>(id) + 1] - begin};
}

std::vector<NodeId> Topology::neighbor_list(NodeId id) const {
  const NeighborRange range = neighbors(id);
  std::vector<NodeId> out;
  out.reserve(range.size());
  for (const NodeId b : range) out.push_back(b);
  return out;
}

std::size_t Topology::degree(NodeId id) const {
  ST_REQUIRE(id < n_, "Topology::degree: node id out of range");
  if (kind_ == TopologyKind::kComplete) return n_ - 1;
  return offsets_[static_cast<std::size_t>(id) + 1] - offsets_[id];
}

bool Topology::is_connected() const {
  if (kind_ == TopologyKind::kComplete) return true;
  std::vector<bool> seen(n_, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::uint32_t reached = 1;
  while (!stack.empty()) {
    const NodeId at = stack.back();
    stack.pop_back();
    for (std::uint64_t i = offsets_[at]; i < offsets_[static_cast<std::size_t>(at) + 1]; ++i) {
      const NodeId next = nbrs_[i];
      if (!seen[next]) {
        seen[next] = true;
        ++reached;
        stack.push_back(next);
      }
    }
  }
  return reached == n_;
}

double Topology::normalized_lambda2(std::uint32_t iters, std::uint64_t seed) const {
  ST_REQUIRE(kind_ != TopologyKind::kComplete,
             "Topology::normalized_lambda2: the complete family stores no CSR "
             "rows (its normalized spectrum is -1/(n-1) repeated anyway)");
  ST_REQUIRE(n_ >= 2, "Topology::normalized_lambda2: need at least two nodes");
  ST_REQUIRE(iters >= 1, "Topology::normalized_lambda2: need at least one iteration");

  // inv_root[i] = 1/sqrt(deg_i); v1 (the eigenvalue-1 eigenvector of the
  // normalized adjacency) is sqrt(deg) normalized. Zero-degree nodes sit
  // outside the walk entirely — both vectors hold 0 there.
  std::vector<double> inv_root(n_, 0.0), v1(n_, 0.0);
  double v1_norm2 = 0;
  for (NodeId i = 0; i < n_; ++i) {
    const auto d = static_cast<double>(degree(i));
    if (d > 0) {
      inv_root[i] = 1.0 / std::sqrt(d);
      v1[i] = std::sqrt(d);
      v1_norm2 += d;
    }
  }
  ST_REQUIRE(v1_norm2 > 0, "Topology::normalized_lambda2: graph has no edges");
  const double v1_inv_norm = 1.0 / std::sqrt(v1_norm2);
  for (NodeId i = 0; i < n_; ++i) v1[i] *= v1_inv_norm;

  const auto deflate = [&](std::vector<double>& x) {
    double dot = 0;
    for (NodeId i = 0; i < n_; ++i) dot += v1[i] * x[i];
    for (NodeId i = 0; i < n_; ++i) x[i] -= dot * v1[i];
  };
  const auto normalize = [&](std::vector<double>& x) -> double {
    double norm2 = 0;
    for (NodeId i = 0; i < n_; ++i) norm2 += x[i] * x[i];
    const double norm = std::sqrt(norm2);
    if (norm > 0) {
      const double inv = 1.0 / norm;
      for (NodeId i = 0; i < n_; ++i) x[i] *= inv;
    }
    return norm;
  };

  Rng rng(seed);
  std::vector<double> x(n_), y(n_), w(n_);
  for (NodeId i = 0; i < n_; ++i) x[i] = rng.uniform(-1.0, 1.0);
  deflate(x);
  if (normalize(x) == 0) return 0;  // start vector was (numerically) all v1

  // Power iteration on the deflated operator: after enough rounds ||Mx||
  // converges to the largest REMAINING eigenvalue magnitude — which is
  // |lambda_2| whether the extreme eigenvalue is positive or negative
  // (bipartite-leaning graphs put it near -1).
  double lambda = 0;
  for (std::uint32_t it = 0; it < iters; ++it) {
    for (NodeId i = 0; i < n_; ++i) w[i] = x[i] * inv_root[i];
    for (NodeId i = 0; i < n_; ++i) {
      double acc = 0;
      for (std::uint64_t e = offsets_[i]; e < offsets_[static_cast<std::size_t>(i) + 1];
           ++e) {
        acc += w[nbrs_[e]];
      }
      y[i] = acc * inv_root[i];
    }
    deflate(y);  // re-deflate every round so rounding error cannot regrow v1
    lambda = normalize(y);
    if (lambda == 0) return 0;  // x was (numerically) in v1's span: gap is total
    x.swap(y);
  }
  return lambda;
}

std::size_t Topology::memory_bytes() const {
  return offsets_.capacity() * sizeof(std::uint64_t) + nbrs_.capacity() * sizeof(NodeId) +
         bits_.capacity() * sizeof(std::uint64_t) +
         staged_.capacity() * sizeof(std::pair<NodeId, NodeId>);
}

Topology Topology::complete(std::uint32_t n) {
  Topology topo(TopologyKind::kComplete, n);
  topo.edge_count_ = static_cast<std::size_t>(n) * (n - 1) / 2;
  return topo;
}

Topology Topology::ring(std::uint32_t n) {
  ST_REQUIRE(n >= 3, "Topology::ring: need n >= 3 (use complete for smaller fleets)");
  Topology topo(TopologyKind::kRing, n);
  topo.staged_.reserve(n);
  for (NodeId a = 0; a < n; ++a) topo.add_edge(a, (a + 1) % n);
  topo.finalize();
  return topo;
}

Topology Topology::torus(std::uint32_t rows, std::uint32_t cols) {
  ST_REQUIRE(rows >= 1 && cols >= 1, "Topology::torus: need positive dimensions");
  const std::uint32_t n = rows * cols;
  ST_REQUIRE(n >= 3, "Topology::torus: need at least 3 nodes");
  Topology topo(TopologyKind::kTorus, n);
  topo.staged_.reserve(static_cast<std::size_t>(n) * 2);
  const auto at = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      // Right and down wraparound links cover every edge exactly once;
      // dimensions of size <= 2 would duplicate them, so guard each.
      if (cols > 2 || c + 1 < cols) topo.add_edge(at(r, c), at(r, (c + 1) % cols));
      if (rows > 2 || r + 1 < rows) topo.add_edge(at(r, c), at((r + 1) % rows, c));
    }
  }
  topo.finalize();
  return topo;
}

Topology Topology::torus(std::uint32_t n) {
  std::uint32_t rows = 1;
  for (std::uint32_t d = 1; static_cast<std::uint64_t>(d) * d <= n; ++d) {
    if (n % d == 0) rows = d;
  }
  // A prime n has no divisor in (1, sqrt(n)], so the "near-square" grid
  // would silently degenerate to a 1 x n ring — reject it instead of
  // handing back a graph with the wrong diameter and degree. (n = 3 is the
  // 3-ring under either reading and stays accepted.)
  ST_REQUIRE(rows > 1 || n < 5,
             "Topology::torus(n): prime n has no near-square grid (use torus(rows, "
             "cols) or a composite n)");
  return torus(rows, n / rows);
}

Topology Topology::star(std::uint32_t n) {
  ST_REQUIRE(n >= 2, "Topology::star: need a hub and at least one spoke");
  Topology topo(TopologyKind::kStar, n);
  topo.staged_.reserve(n - 1);
  for (NodeId spoke = 1; spoke < n; ++spoke) topo.add_edge(0, spoke);
  topo.finalize();
  return topo;
}

Topology Topology::gnp(std::uint32_t n, double p, std::uint64_t seed) {
  ST_REQUIRE(p > 0 && p <= 1, "Topology::gnp: need edge probability in (0, 1]");
  Topology topo(TopologyKind::kGnp, n);
  Rng rng(seed);
  if (n < kGnpFastMinN || p >= 1.0) {
    // Legacy mapping: one bernoulli per pair in lexicographic order. Every
    // golden spec sits in this regime, so their graphs stay bit-identical.
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = a + 1; b < n; ++b) {
        if (rng.bernoulli(p)) topo.add_edge(a, b);
      }
    }
  } else {
    // Geometric skipping over the same lexicographic pair sequence: each
    // draw jumps the gap to the next present edge (skip distribution
    // Geometric(p)), so construction is O(n + E) instead of O(n^2) pair
    // draws. Still a pure function of (n, p, seed) — but a DIFFERENT
    // function than the per-pair walk, which is why the engine fingerprint
    // was bumped alongside this path.
    const double log1mp = std::log1p(-p);
    NodeId a = 0, b = 1;
    std::uint64_t left_in_row = n - 1;  // pairs remaining at or after (a, b)
    while (a + 1 < n) {
      const double u = rng.next_double();
      // u extremely close to 1 can push the quotient past 2^64 — casting
      // that double is UB. Total pairs never exceed n^2 < 2^63, so any skip
      // clamped to 2^63 drains the remaining rows and ends the walk.
      const double raw = std::floor(std::log1p(-u) / log1mp);
      std::uint64_t skip = raw < 9.0e18 ? static_cast<std::uint64_t>(raw)
                                        : std::uint64_t{1} << 63;
      while (a + 1 < n && skip >= left_in_row) {
        skip -= left_in_row;
        ++a;
        b = a + 1;
        left_in_row = n - b;
      }
      if (a + 1 >= n) break;
      b += static_cast<NodeId>(skip);
      left_in_row -= skip;
      topo.add_edge(a, b);
      // Step past the edge just placed.
      ++b;
      --left_in_row;
      if (left_in_row == 0) {
        ++a;
        b = a + 1;
        left_in_row = a + 1 < n ? n - b : 0;
      }
    }
  }
  topo.finalize();
  return topo;
}

Topology Topology::expander(std::uint32_t n, std::uint32_t k, std::uint64_t seed) {
  ST_REQUIRE(k >= 2 && k % 2 == 0,
             "Topology::expander: degree k must be even and >= 2 (the generator "
             "unions k/2 Hamiltonian cycles)");
  ST_REQUIRE(k < n, "Topology::expander: need k < n (use complete for denser fleets)");
  ST_REQUIRE(n >= 3, "Topology::expander: need n >= 3");
  Topology topo(TopologyKind::kExpander, n);
  Rng rng(seed);
  std::vector<NodeId> perm(n);
  topo.staged_.reserve(static_cast<std::size_t>(n) * (k / 2));
  for (std::uint32_t cycle = 0; cycle < k / 2; ++cycle) {
    for (NodeId id = 0; id < n; ++id) perm[id] = id;
    rng.shuffle(perm);
    for (std::uint32_t i = 0; i < n; ++i) {
      topo.add_edge(perm[i], perm[(i + 1) % n]);
    }
  }
  // Distinct cycles can land on the same pair; finalize() rejects duplicate
  // edges, so normalize and deduplicate the staged list first. Within one
  // cycle all n edges are distinct (n >= 3), so only cross-cycle collisions
  // are dropped — each node keeps at least its two cycle-0 links.
  for (auto& [a, b] : topo.staged_) {
    if (a > b) std::swap(a, b);
  }
  std::sort(topo.staged_.begin(), topo.staged_.end());
  topo.staged_.erase(std::unique(topo.staged_.begin(), topo.staged_.end()),
                     topo.staged_.end());
  topo.edge_count_ = topo.staged_.size();
  topo.finalize();
  ST_ASSERT(topo.is_connected(), "Topology::expander: Hamiltonian union must connect");
  return topo;
}

Topology Topology::from_edges(std::uint32_t n,
                              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  Topology topo(TopologyKind::kCustom, n);
  topo.staged_.reserve(edges.size());
  for (const auto& [a, b] : edges) topo.add_edge(a, b);
  topo.finalize();  // rejects duplicates
  return topo;
}

}  // namespace stclock
