#include "sim/message.h"

namespace stclock {

Bytes round_signing_payload(Round round) {
  ByteWriter w;
  w.str("st-round");
  w.u64(round);
  return std::move(w).take();
}

const char* message_kind_name(MessageKind kind) {
  switch (kind) {
    case MessageKind::kRound: return "round";
    case MessageKind::kInit: return "init";
    case MessageKind::kEcho: return "echo";
    case MessageKind::kCnv: return "cnv";
    case MessageKind::kLw: return "lw";
    case MessageKind::kLeader: return "leader";
    case MessageKind::kLockstep: return "lockstep";
    case MessageKind::kGradient: return "gradient";
  }
  return "unknown";
}

namespace {
struct SizeVisitor {
  // Header: 1 byte tag + 8 byte round.
  static constexpr std::size_t kHeader = 9;
  std::size_t operator()(const RoundMsg& m) const {
    // Each signature: 4-byte signer id + 32-byte MAC.
    return kHeader + m.sigs.size() * (4 + crypto::kDigestSize);
  }
  std::size_t operator()(const InitMsg&) const { return kHeader; }
  std::size_t operator()(const EchoMsg&) const { return kHeader; }
  std::size_t operator()(const CnvValueMsg&) const { return kHeader + 8; }
  std::size_t operator()(const LwValueMsg&) const { return kHeader; }
  std::size_t operator()(const LeaderTimeMsg&) const { return kHeader + 8; }
  std::size_t operator()(const LockstepMsg&) const { return kHeader + 8; }
  std::size_t operator()(const GradientMsg&) const { return kHeader + 8; }
};

struct RoundVisitor {
  Round operator()(const RoundMsg& m) const { return m.round; }
  Round operator()(const InitMsg& m) const { return m.round; }
  Round operator()(const EchoMsg& m) const { return m.round; }
  Round operator()(const CnvValueMsg& m) const { return m.round; }
  Round operator()(const LwValueMsg& m) const { return m.round; }
  Round operator()(const LeaderTimeMsg& m) const { return m.round; }
  Round operator()(const LockstepMsg& m) const { return m.round; }
  Round operator()(const GradientMsg& m) const { return m.round; }
};
}  // namespace

std::size_t message_size_bytes(const Message& m) { return std::visit(SizeVisitor{}, m); }

Round message_round(const Message& m) { return std::visit(RoundVisitor{}, m); }

}  // namespace stclock
