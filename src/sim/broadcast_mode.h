#pragma once

#include <cstdint>

/// How a broadcast fans out over the fleet.
///
/// The paper's protocols assume every broadcast reaches all n - 1 peers, so
/// one `auth` round costs O(n^2) messages — fine at n = 10, unusable at
/// n = 10^6. The sparse broadcast fabric keeps the protocols unchanged and
/// swaps the fan-out underneath them:
///
///  - kFull: today's behavior, bit-identical to every pre-fabric trace
///    (complete graphs flood all peers; sparse graphs flood the neighbor
///    row). The default, pinned by the golden suite.
///  - kNeighbors: identical fan-out sets to kFull — the mode exists to
///    *opt in* to quorum-aware acceptance thresholds scaled to the
///    topology's design degree (see scaled_threshold in
///    broadcast/primitive.h), which kFull never engages.
///  - kSampled: each broadcast sends to `sample_size` distinct peers drawn
///    from the sender's broadcast domain (neighbors, or everyone else on a
///    complete graph) via a dedicated RNG stream forked off the scenario
///    seed. Runs in the other modes never create that stream, so they stay
///    bit-identical; sampled runs are themselves pure functions of the
///    spec. O(n * m) messages per round.
namespace stclock {

enum class BroadcastMode : std::uint8_t {
  kFull,       ///< flood the whole domain (legacy, default)
  kNeighbors,  ///< same fan-out, quorum-aware thresholds
  kSampled,    ///< sample_size seeded-random peers per broadcast
};

[[nodiscard]] inline const char* broadcast_mode_name(BroadcastMode mode) {
  switch (mode) {
    case BroadcastMode::kFull: return "full";
    case BroadcastMode::kNeighbors: return "neighbors";
    case BroadcastMode::kSampled: return "sampled";
  }
  return "unknown";
}

}  // namespace stclock
