#include "core/stab_sync.h"

#include <algorithm>
#include <cmath>

namespace stclock {

namespace {

/// Round counters may legitimately run ahead of floor(C/P)+1 by one (a
/// broadcast fires exactly at C = kP) and behind during acceptance
/// turnover; anything further off is corruption.
constexpr Round kCounterSlack = 2;

}  // namespace

StabSyncProtocol::StabSyncProtocol(SyncConfig cfg,
                                   std::unique_ptr<BroadcastPrimitive> primitive,
                                   bool passive_join)
    : SyncProtocol(cfg, std::move(primitive), passive_join),
      // Four watchdog checks per period: recovery completes well within one
      // resynchronization period without meaningfully adding event load.
      tick_interval_(cfg.period / 4) {}

void StabSyncProtocol::on_start(Context& ctx) {
  SyncProtocol::on_start(ctx);
  ctx.start_ticker(tick_interval_);
}

Duration StabSyncProtocol::clamp_bound() const {
  // How far C - H can legitimately move between two anchor refreshes (at
  // most one tick interval apart): one round's re-anchoring correction
  // bounded by the initial offset plus alpha terms, plus a fixed fraction
  // of the period as jitter headroom. No drift term — drift moves the gap
  // by rho * tick_interval_ per tick, absorbed into the headroom, and the
  // anchor follows it. Far below the corruption scramble range (periods).
  return cfg_.initial_sync + 2 * alpha_ + cfg_.period / 16;
}

void StabSyncProtocol::on_accept(Context& ctx, Round k) {
  SyncProtocol::on_accept(ctx, k);
  // The acceptance just moved the clock (instantly, by starting an
  // amortized ramp, or by the integration jump of a joining process).
  // Whatever gap it produced is legitimate by construction — adopt it, so
  // the next tick measures excursions from here. For an amortized ramp the
  // gap keeps sliding toward the target; the per-tick tracking below
  // follows it, since one tick's slide is far inside clamp_bound().
  if (integrated()) {
    anchor_gap_ = ctx.logical_now() - ctx.hardware_now();
  }
}

void StabSyncProtocol::corrupt_state(Rng& rng) {
  SyncProtocol::corrupt_state(rng);
  anchor_gap_ = rng.uniform(-4.0 * cfg_.period, 4.0 * cfg_.period);
}

void StabSyncProtocol::on_tick(Context& ctx) {
  // A passively joining process owns no state worth repairing yet: it
  // adopts the first accepted round wholesale, which IS its recovery.
  if (!integrated()) return;

  const LocalTime h = ctx.hardware_now();
  LocalTime c = ctx.logical_now();
  const Duration gap = c - h;
  if (std::abs(gap - anchor_gap_) > clamp_bound()) {
    // (1) The logical clock left the band reachable from the last
    // known-legitimate gap: its correction state is corrupt. Overwrite it
    // with the anchored value (adjust_override also discards any in-flight
    // amortized ramp — that ramp is part of the state being replaced).
    // If the anchor itself was scrambled this restores a WRONG clock, but
    // a bounded-wrong one; the next acceptance snaps clock and anchor back.
    ctx.logical().adjust_override(h, anchor_gap_ - gap);
    c = h + anchor_gap_;
  } else {
    // In band: this gap is (still) legitimate. Track it, so the slow
    // divergence of fleet logical time from this node's hardware —
    // ~(rho + alpha) per period, unbounded over a run — never accumulates
    // into a false positive.
    anchor_gap_ = gap;
  }

  // (2) Counters re-derived from the now-plausible clock when out of band.
  const double from_clock = std::floor(c / cfg_.period) + 1;
  const Round expected = from_clock < 1 ? 1 : static_cast<Round>(from_clock);
  if (next_round_ + kCounterSlack < expected || next_round_ > expected + kCounterSlack) {
    next_round_ = expected;
  }
  if (next_broadcast_ + kCounterSlack < expected ||
      next_broadcast_ > expected + kCounterSlack) {
    next_broadcast_ = expected;
  }

  // (3) A primitive floor above the live round keeps every message out.
  primitive_->stabilize(next_round_ > kCounterSlack ? next_round_ - kCounterSlack : 0);

  // (4) Lost or stale readiness timers heal by unconditional re-arm: if the
  // state above was already healthy this arms the same deadline again (one
  // superseded timer pop per tick — the price of not having to detect
  // whether the old timer still exists).
  arm_ready_timer(ctx);
}

}  // namespace stclock
