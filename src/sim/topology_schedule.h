#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/topology.h"
#include "util/types.h"

/// Time-varying network graphs: the dynamic-network model of Kuhn, Lenzen,
/// Locher and Oshman, where the set of links changes as the run progresses.
///
/// A `TopologySchedule` is an ordered list of timed graph mutations — an
/// edge appears, an edge disappears, or the whole graph is replaced — and
/// compiles into a `CompiledTopologySchedule`: a sequence of *epochs*, each
/// an immutable `Topology` snapshot live over a half-open real-time window
/// [start, next-start). The simulator consumes the compiled form: epoch
/// switches are ordinary simulator events, every broadcast / unicast /
/// adversary send consults the snapshot live at its send time, and the trace
/// layer measures local skew against the adjacency live at sampling time.
///
/// Compilation is strict — out-of-range endpoints, self-loops, adding a link
/// that already exists, or removing one that does not are logic errors, so a
/// schedule can never silently drift from the graph it mutates. Compilation
/// does NOT require epochs to stay connected: windowed cut policies
/// (adversary/delay_policies.h) compile deliberately disconnected epochs.
/// Callers that need liveness (the scenario engine does) ask
/// `first_disconnected_epoch()` after compiling.
///
/// In-flight messages survive an epoch switch: link existence is checked at
/// send time, matching the "message sent over a live edge is delivered"
/// reading of the dynamic-graph model.
namespace stclock {

/// One timed mutation of the network graph.
struct TopologyEvent {
  enum class Kind : std::uint8_t {
    kAddEdge,     ///< link {a, b} appears at `at`
    kRemoveEdge,  ///< link {a, b} disappears at `at`
    kSetGraph,    ///< the whole graph is replaced by `graph` at `at`
  };

  RealTime at = 0;
  Kind kind = Kind::kAddEdge;
  NodeId a = 0;  ///< edge endpoints (edge events only)
  NodeId b = 0;
  std::shared_ptr<const Topology> graph;  ///< replacement (set-graph only)
};

/// The compiled form: per-epoch immutable snapshots, ready for O(log epochs)
/// time-to-graph lookup. Epoch 0 always starts at time 0 and holds the base
/// graph the schedule was compiled against (the same object, so a static
/// fast path keyed on pointer identity keeps working).
class CompiledTopologySchedule {
 public:
  [[nodiscard]] std::size_t epoch_count() const { return epochs_.size(); }
  [[nodiscard]] RealTime epoch_start(std::size_t i) const;
  [[nodiscard]] const std::shared_ptr<const Topology>& epoch_graph(std::size_t i) const;

  /// Index of the epoch live at time t (the last epoch with start <= t).
  [[nodiscard]] std::size_t epoch_at(RealTime t) const;
  /// The graph live at time t.
  [[nodiscard]] const Topology& graph_at(RealTime t) const;
  /// True when link {a, b} exists at time t (false for a == b).
  [[nodiscard]] bool adjacent_at(RealTime t, NodeId a, NodeId b) const;

  /// All snapshots share one node count.
  [[nodiscard]] std::uint32_t n() const;

  static constexpr std::size_t kAllConnected = static_cast<std::size_t>(-1);
  /// Index of the first epoch whose snapshot is disconnected, or
  /// kAllConnected. The scenario engine rejects schedules that fail this;
  /// cut delay policies deliberately do not call it.
  [[nodiscard]] std::size_t first_disconnected_epoch() const;

 private:
  friend class TopologySchedule;

  struct Epoch {
    RealTime start = 0;
    std::shared_ptr<const Topology> graph;
  };

  std::vector<Epoch> epochs_;
};

class TopologySchedule {
 public:
  /// Append one event. Times must be appended in non-decreasing order and be
  /// strictly positive (epoch 0 — time 0 — is the base graph); compile()
  /// enforces both. Events sharing one time merge into a single epoch.
  TopologySchedule& add_edge(RealTime at, NodeId a, NodeId b);
  TopologySchedule& remove_edge(RealTime at, NodeId a, NodeId b);
  TopologySchedule& set_graph(RealTime at, std::shared_ptr<const Topology> graph);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t event_count() const { return events_.size(); }
  [[nodiscard]] const std::vector<TopologyEvent>& events() const { return events_; }

  /// Compiles against `base` (the epoch-0 graph). Throws std::logic_error
  /// for unordered or non-positive times, endpoints outside [0, base->n()),
  /// self-loops, adding a present link, removing an absent one, or a
  /// replacement graph of a different size. Connectivity is deliberately
  /// NOT checked here — see first_disconnected_epoch().
  [[nodiscard]] CompiledTopologySchedule compile(
      std::shared_ptr<const Topology> base) const;

 private:
  std::vector<TopologyEvent> events_;
};

}  // namespace stclock
