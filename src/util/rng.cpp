#include "util/rng.h"

#include <cmath>

namespace stclock {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ST_REQUIRE(lo <= hi, "uniform: empty range");
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  ST_REQUIRE(lo <= hi, "uniform_int: empty range");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + v % span;
}

bool Rng::bernoulli(double p) { return next_double() < p; }

double Rng::exponential(double mean) {
  ST_REQUIRE(mean > 0, "exponential: mean must be positive");
  double u = next_double();
  while (u <= 0) u = next_double();
  return -mean * std::log(u);
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace stclock
