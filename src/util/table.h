#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// Aligned plain-text tables and CSV output for the experiment harnesses.
/// Every bench binary prints its table through this class so the output
/// format stays uniform across experiments.
namespace stclock {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string num(double v, int precision = 6);
  /// Scientific notation, for very small skews.
  [[nodiscard]] static std::string sci(double v, int precision = 3);

  /// Writes an aligned, boxed plain-text rendering.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stclock
