#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// Lightweight contract checking in the spirit of the C++ Core Guidelines
/// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()"). Violations throw, which
/// makes them testable with gtest and keeps simulations debuggable; none of
/// these checks sit on hot paths.
namespace stclock::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace stclock::detail

#define ST_REQUIRE(cond, msg)                                                  \
  do {                                                                         \
    if (!(cond))                                                               \
      ::stclock::detail::contract_failure("precondition", #cond, __FILE__,     \
                                          __LINE__, (msg));                    \
  } while (false)

#define ST_ENSURE(cond, msg)                                                   \
  do {                                                                         \
    if (!(cond))                                                               \
      ::stclock::detail::contract_failure("postcondition", #cond, __FILE__,    \
                                          __LINE__, (msg));                    \
  } while (false)

#define ST_ASSERT(cond, msg)                                                   \
  do {                                                                         \
    if (!(cond))                                                               \
      ::stclock::detail::contract_failure("invariant", #cond, __FILE__,        \
                                          __LINE__, (msg));                    \
  } while (false)
