#pragma once

#include <bit>
#include <cstddef>
#include <new>

/// Thread-local free-list arena for hot-path allocations.
///
/// The discrete-event core allocates two things per broadcast fan-out: the
/// interned Message node and (for the authenticated variant) the RoundMsg
/// signature-bundle buffer. Both are short-lived — they die when the last
/// delivery is dispatched — and come in a handful of recurring sizes, which
/// is exactly the pattern a size-classed free list serves: after the first
/// few rounds every allocation is a pop and every free a push, with no trips
/// to the general-purpose allocator.
///
/// Blocks are grouped into power-of-two size classes and cached per thread
/// as intrusive singly-linked lists (the link lives inside the freed block,
/// so the cache itself never allocates). Each SweepRunner worker simulates
/// whole scenarios, so alloc and free meet on the same thread; a block freed
/// elsewhere simply migrates to the freeing thread's cache. Caches are
/// bounded per class — peak retention is a few hundred KiB per thread — and
/// drained at thread exit, so leak checkers stay quiet. Oversized requests
/// fall through to operator new untouched.
namespace stclock::util {

class FreeListArena {
 public:
  /// Smallest pooled block; sub-64-byte requests share one class.
  static constexpr std::size_t kMinBlock = 64;
  /// Largest pooled block; bigger requests go straight to operator new.
  static constexpr std::size_t kMaxBlock = std::size_t{1} << 18;
  /// Per-class cap on cached blocks (beyond it, frees really free).
  static constexpr std::size_t kMaxCached = 256;

  [[nodiscard]] static void* allocate(std::size_t bytes) {
    if (bytes > kMaxBlock) return ::operator new(bytes);
    const std::size_t cls = size_class(bytes);
    ClassList& list = cache().lists[cls];
    if (list.head != nullptr) {
      void* block = list.head;
      list.head = next_of(block);
      --list.count;
      return block;
    }
    return ::operator new(kMinBlock << cls);
  }

  static void deallocate(void* p, std::size_t bytes) noexcept {
    if (bytes > kMaxBlock) {
      ::operator delete(p);
      return;
    }
    ClassList& list = cache().lists[size_class(bytes)];
    if (list.count < kMaxCached) {
      next_of(p) = list.head;
      list.head = p;
      ++list.count;
    } else {
      ::operator delete(p);
    }
  }

  /// Blocks currently cached on this thread (test introspection).
  [[nodiscard]] static std::size_t cached_blocks() {
    std::size_t total = 0;
    for (const ClassList& list : cache().lists) total += list.count;
    return total;
  }

 private:
  static constexpr std::size_t kClasses = 13;  // 64 B .. 256 KiB

  struct ClassList {
    void* head = nullptr;
    std::size_t count = 0;
  };

  struct Cache {
    ClassList lists[kClasses];
    ~Cache() {  // drain at thread exit so cached blocks are not leaked
      for (ClassList& list : lists) {
        while (list.head != nullptr) {
          void* block = list.head;
          list.head = next_of(block);
          ::operator delete(block);
        }
      }
    }
  };

  /// The intrusive link: a freed block's first word points at the next one.
  [[nodiscard]] static void*& next_of(void* block) { return *static_cast<void**>(block); }

  /// Index of the smallest class holding `bytes` (<= kMaxBlock).
  [[nodiscard]] static std::size_t size_class(std::size_t bytes) {
    return bytes <= kMinBlock ? 0 : std::bit_width(bytes - 1) - 6;
  }

  [[nodiscard]] static Cache& cache() {
    thread_local Cache lists;
    return lists;
  }
};

/// Minimal std::allocator drop-in over the arena. Stateless: all instances
/// are interchangeable, so containers swap and move freely.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(FreeListArena::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    FreeListArena::deallocate(p, n * sizeof(T));
  }
};

template <typename T, typename U>
bool operator==(const ArenaAllocator<T>&, const ArenaAllocator<U>&) {
  return true;
}

}  // namespace stclock::util
