#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "experiment/engine_info.h"
#include "experiment/sinks.h"
#include "experiment/sweep.h"
#include "resultstore/incremental.h"
#include "resultstore/store.h"
#include "scenfile/scenfile.h"

/// scenrun — run a scenario-file grid without recompiling.
///
///   scenrun grid.json [--threads N] [--cells A:B] [--csv FILE] [--json FILE]
///           [--store DIR] [--no-cache] [--count] [--list] [--version]
///
/// The grid is loaded and fully validated, materialized into cells, executed
/// on a worker pool, and dumped through the standard sinks. `--cells A:B`
/// runs only the half-open global index range — the process-level sharding
/// hook: shard a grid across machines, then reassemble the dumps with
/// scenmerge (byte-identical to the unsharded run). FILE may be "-" for
/// stdout.
///
/// `--store DIR` turns every cell into a lookup-then-compute against the
/// content-addressed result store: hits skip the scenario engine entirely,
/// misses run and are published back, and a `hits=X misses=Y` summary goes
/// to stderr (never into a sink stream). `--no-cache` forces recompute of
/// every cell while still refreshing the store. Because results are pure
/// functions of (spec, seed, engine fingerprint), cached and fresh output
/// bytes are identical — a warm re-run is a pure cache replay.
namespace {

int usage(std::ostream& os, int code) {
  os << "usage: scenrun GRID.json [--threads N] [--cells A:B] [--csv FILE] "
        "[--json FILE]\n"
        "               [--store DIR] [--no-cache] [--count] [--list] [--version]\n"
        "  --threads N   worker threads (0 = all cores; default 1)\n"
        "  --cells A:B   run only global cell indices [A, B) of the grid\n"
        "  --csv FILE    write the CSV sink to FILE (\"-\" = stdout)\n"
        "  --json FILE   write the JSON sink to FILE (\"-\" = stdout)\n"
        "  --store DIR   content-addressed result store: serve hits, publish misses\n"
        "  --no-cache    with --store: recompute every cell, refresh the store\n"
        "  --count       print the number of grid cells and exit\n"
        "  --list        print cell indices and labels and exit\n"
        "  --version     print the engine fingerprint (part of every cache key)\n";
  return code;
}

void write_sink(const std::string& path, const std::string& what,
                const std::vector<stclock::experiment::SweepCell>& cells,
                const std::vector<stclock::experiment::ScenarioResult>& results,
                void (*writer)(std::ostream&, const std::vector<stclock::experiment::SweepCell>&,
                               const std::vector<stclock::experiment::ScenarioResult>&)) {
  if (path == "-") {
    writer(std::cout, cells, results);
    return;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + what + " output file: " + path);
  writer(out, cells, results);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stclock;

  std::string grid_path;
  std::string cells_range;
  std::string csv_path;
  std::string json_path;
  std::string store_dir;
  unsigned threads = 1;
  bool count_only = false;
  bool list_only = false;
  bool no_cache = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--version") {
      std::cout << experiment::engine_fingerprint() << "\n";
      return 0;
    }
    if (arg == "--count") {
      count_only = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--cells" && i + 1 < argc) {
      cells_range = argv[++i];
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--store" && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "scenrun: unknown option: " << arg << "\n";
      return usage(std::cerr, 2);
    } else if (grid_path.empty()) {
      grid_path = arg;
    } else {
      std::cerr << "scenrun: more than one grid file given\n";
      return usage(std::cerr, 2);
    }
  }
  if (grid_path.empty()) {
    std::cerr << "scenrun: no grid file given\n";
    return usage(std::cerr, 2);
  }
  if (no_cache && store_dir.empty()) {
    std::cerr << "scenrun: --no-cache only makes sense with --store\n";
    return usage(std::cerr, 2);
  }

  try {
    const experiment::SweepGrid grid = scenfile::load_grid_file(grid_path);
    std::vector<experiment::SweepCell> cells = grid.cells();

    if (count_only) {
      std::cout << cells.size() << "\n";
      return 0;
    }
    if (list_only) {
      for (const experiment::SweepCell& cell : cells) {
        std::cout << cell.index;
        for (const auto& [axis, value] : cell.labels) {
          std::cout << " " << axis << "=" << value;
        }
        std::cout << "\n";
      }
      return 0;
    }

    if (!cells_range.empty()) {
      const auto [lo, hi] = scenfile::parse_cell_range(cells_range, cells.size());
      cells = std::vector<experiment::SweepCell>(cells.begin() + static_cast<std::ptrdiff_t>(lo),
                                                cells.begin() + static_cast<std::ptrdiff_t>(hi));
    }

    std::unique_ptr<resultstore::ResultStore> store;
    if (!store_dir.empty()) store = std::make_unique<resultstore::ResultStore>(store_dir);

    resultstore::CacheStats cache;
    const std::vector<experiment::ScenarioResult> results = resultstore::run_cells_cached(
        cells, store.get(), threads, /*use_cache=*/!no_cache, &cache);
    if (store) {
      std::cerr << "scenrun: store=" << store_dir << " cells=" << cells.size()
                << " hits=" << cache.hits << " misses=" << cache.misses << "\n";
    }

    if (!csv_path.empty()) {
      write_sink(csv_path, "CSV", cells, results, &experiment::write_csv);
    }
    if (!json_path.empty()) {
      write_sink(json_path, "JSON", cells, results, &experiment::write_json);
    }
    if (csv_path.empty() && json_path.empty()) {
      // Human-readable summary: one line per cell.
      for (std::size_t i = 0; i < cells.size(); ++i) {
        std::cout << "cell " << cells[i].index;
        for (const auto& [axis, value] : cells[i].labels) {
          std::cout << " " << axis << "=" << value;
        }
        std::cout << ": max_skew=" << results[i].max_skew
                  << " steady_skew=" << results[i].steady_skew
                  << " local_skew=" << results[i].local_skew
                  << " live=" << (results[i].live ? 1 : 0)
                  << " epochs=" << results[i].topology_epochs
                  << " messages=" << results[i].messages_sent
                  << " dropped=" << results[i].messages_dropped
                  << " stab=" << results[i].stabilization_time << "\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "scenrun: " << e.what() << "\n";
    return 1;
  }
}
