#include "sim/event_queue.h"

#include "util/contracts.h"

namespace stclock {

void EventQueue::push_timer(RealTime time, TimerEvent ev) {
  ST_REQUIRE(time >= 0, "EventQueue: negative event time");
  Event e;
  e.time = time;
  e.seq = next_seq_++;
  e.is_timer = true;
  e.timer = ev;
  heap_.push(std::move(e));
}

void EventQueue::push_delivery(RealTime time, DeliveryEvent ev) {
  ST_REQUIRE(time >= 0, "EventQueue: negative event time");
  ST_REQUIRE(ev.msg != nullptr, "EventQueue: null message");
  Event e;
  e.time = time;
  e.seq = next_seq_++;
  e.is_timer = false;
  e.delivery = std::move(ev);
  heap_.push(std::move(e));
}

RealTime EventQueue::next_time() const {
  ST_REQUIRE(!heap_.empty(), "EventQueue: next_time on empty queue");
  return heap_.top().time;
}

Event EventQueue::pop() {
  ST_REQUIRE(!heap_.empty(), "EventQueue: pop on empty queue");
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace stclock
