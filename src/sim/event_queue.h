#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/message.h"
#include "util/types.h"

/// Time-ordered event queue for the discrete-event simulator.
///
/// Events at equal real times are dispatched in insertion order (a strictly
/// increasing sequence number breaks ties), which makes every run fully
/// deterministic for a given seed.
///
/// Internally this is a ladder queue (Tang et al.), not a binary heap: a
/// small sorted "bottom" list serves pops in O(1), everything further out
/// sits in unsorted time-bucketed rungs (plus an unsorted "top" catch-all)
/// and is only sorted — one bucket at a time — when the simulation clock
/// actually reaches it. A binary heap sifts a 32-byte entry through O(log n)
/// levels on every op; at n = 10^6 the standing population is millions of
/// deliveries and the sifts dominate the run (BM_EventQueue_Churn). The
/// ladder does O(1) amortized work per event regardless of population, and
/// pops the exact same (time, seq) order as the heap did — the golden suite
/// and a property test against a reference heap pin this bit-for-bit.
///
/// The ladder exploits the discrete-event contract the heap never could:
/// pushes are never earlier than the last pop (the simulator only schedules
/// into the future). push_timer/push_delivery enforce this.
///
/// Entries stay slim PODs: timer payloads (two ids) are inlined, and
/// delivery payloads live in a free-listed slab referenced by slot, so
/// bucket moves never touch a shared_ptr refcount.
namespace stclock {

using TimerId = std::uint64_t;

struct TimerEvent {
  NodeId node = 0;
  TimerId id = 0;
};

struct DeliveryEvent {
  NodeId to = 0;
  NodeId from = 0;
  std::shared_ptr<const Message> msg;
  RealTime sent_at = 0;
};

/// A popped event, materialized from the queue's slim internal
/// representation: `timer` is meaningful when is_timer, `delivery` otherwise.
struct Event {
  RealTime time = 0;
  std::uint64_t seq = 0;
  bool is_timer = false;
  TimerEvent timer;
  DeliveryEvent delivery;
};

class EventQueue {
 public:
  /// The sweepable ladder parameters (bench_tune drives grids over these;
  /// the simulator always runs the defaults, which kSpawnThreshold /
  /// kBottomOverflow pin together with the sweep evidence).
  struct Tuning {
    /// Buckets larger than this spawn a deeper rung instead of sorting.
    std::size_t spawn_threshold = 64;
    /// Bottom-list size that triggers pushing its tail back out to the top.
    std::size_t bottom_overflow = 2048;
  };

  EventQueue() = default;
  explicit EventQueue(Tuning tuning) : tuning_(tuning) {}

  /// Pre-sizes the delivery slab and the staging arrays for `events`
  /// resident events, so the steady state never reallocates.
  void reserve(std::size_t events);

  /// Both push fronts require time >= the last popped time: the simulator
  /// only ever schedules into the (non-strict) future, and the ladder's
  /// bucket spine depends on it.
  void push_timer(RealTime time, TimerEvent ev);
  void push_delivery(RealTime time, DeliveryEvent ev);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Earliest pending time. Non-const: peeking may sort the next bucket
  /// into the bottom list (observable state is untouched). Requires !empty().
  [[nodiscard]] RealTime next_time();

  /// Removes and returns the earliest event. Requires !empty().
  [[nodiscard]] Event pop();

  /// Window-bounded drain: pops the earliest event iff one exists with
  /// time < end_exclusive and time <= horizon, else leaves the queue
  /// untouched and returns false. The parallel simulator drains one
  /// lookahead window [t, t + min_delay) with this, never consuming the
  /// event that closes the window.
  [[nodiscard]] bool pop_window(RealTime end_exclusive, RealTime horizon, Event& out);

  /// Consumes one sequence number without pushing an event. The parallel
  /// commit phase uses this for events it executed in place (same-window
  /// self-deliveries and timers): the sequential engine would have pushed
  /// and later popped them, so skipping the push must still advance the
  /// tie-break counter for the (time, seq) order of every later push to
  /// match the sequential run exactly.
  [[nodiscard]] std::uint64_t take_seq() { return next_seq_++; }

 private:
  struct Entry {
    RealTime time = 0;
    std::uint64_t seq = 0;
    TimerId timer_id = 0;            ///< timer payload (is_timer only)
    std::uint32_t node_or_slot = 0;  ///< timer target node, or delivery slab slot
    bool is_timer = false;
  };

  /// One ladder rung: `buckets.size()` unsorted buckets of `width` seconds
  /// tiling [start, end). Buckets before `cur` have been drained (into the
  /// bottom list or a deeper rung) and never refill — routing sends their
  /// time range to the bottom list instead.
  struct Rung {
    double start = 0;
    double width = 0;
    RealTime end = 0;     ///< exclusive upper bound of times this rung accepts
    std::size_t cur = 0;  ///< first bucket not yet drained
    std::vector<std::vector<Entry>> buckets;
  };

  /// Buckets larger than this spawn a deeper rung instead of being sorted
  /// wholesale; a direct sort stays O(k log k) for small k. Default of
  /// Tuning::spawn_threshold; swept by bench_tune --queue (64 sits on the
  /// flat optimum across churn and broadcast-burst loads — see the
  /// "Ladder tuning" notes in README).
  static constexpr std::size_t kSpawnThreshold = 64;
  /// Spawn-depth backstop: past this, buckets sort directly no matter their
  /// size (each level divides the time range by >= kMinBuckets, so real
  /// workloads never get close).
  static constexpr std::size_t kMaxRungs = 48;
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = 65536;
  /// When the bottom list outgrows this with no rungs armed, its tail is
  /// pushed back out to the top so pops stay O(1). Default of
  /// Tuning::bottom_overflow; swept by bench_tune --queue.
  static constexpr std::size_t kBottomOverflow = 2048;
  static constexpr std::size_t kBottomKeep = 64;

  Tuning tuning_{};

  void push_entry(RealTime time, Entry e);
  /// Establishes a non-empty bottom list (requires size_ > 0).
  void ensure_bottom();
  void refill_from_rung();
  void transfer_top();
  void maybe_rebalance_bottom();

  [[nodiscard]] static std::size_t raw_index(const Rung& r, RealTime t);
  /// Smallest representable time with raw_index >= k (k >= 1) — the exact
  /// float boundary between buckets, so routing and draining can never
  /// disagree about which side an entry falls on.
  [[nodiscard]] static RealTime bucket_boundary(const Rung& r, std::size_t k);
  [[nodiscard]] std::size_t bottom_active() const { return bottom_.size() - bot_head_; }

  /// Sorted ascending by (time, seq); pops at bot_head_. Owns [last pop,
  /// bot_end_).
  std::vector<Entry> bottom_;
  std::size_t bot_head_ = 0;
  RealTime bot_end_ = 0;
  /// rungs_[0] is shallowest (widest range); back() is deepest and owns the
  /// interval right above the bottom list.
  std::vector<Rung> rungs_;
  /// Unsorted catch-all for times beyond every rung.
  std::vector<Entry> top_;
  RealTime top_min_ = 0;
  RealTime top_max_ = 0;

  std::vector<DeliveryEvent> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  RealTime last_pop_time_ = 0;
};

}  // namespace stclock
