#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "sim/broadcast_sample.h"
#include "util/arena.h"
#include "util/contracts.h"

namespace stclock {

namespace {

/// One interned, immutable Message per fan-out — allocated from the
/// thread-local arena, like the signature bundle it carries, so a broadcast
/// round costs zero general-purpose allocations once the free lists warm up.
std::shared_ptr<const Message> intern_message(const Message& m) {
  return std::allocate_shared<const Message>(util::ArenaAllocator<Message>{}, m);
}

/// Worker-thread marker for the parallel engine: while a worker executes a
/// window, `now()` on that thread reports the executing event's time, so
/// protocol handlers observe exactly the "now" they would sequentially.
thread_local const Simulator* t_worker_sim = nullptr;
thread_local RealTime t_worker_now = 0;

}  // namespace

RealTime Simulator::now() const { return t_worker_sim == this ? t_worker_now : now_; }

bool Simulator::in_worker() const { return t_worker_sim == this; }

void Simulator::tls_enter_worker() const {
  t_worker_sim = this;
  t_worker_now = 0;
}

void Simulator::tls_set_worker_now(RealTime t) const { t_worker_now = t; }

void Simulator::tls_leave_worker() const { t_worker_sim = nullptr; }

Simulator::Simulator(SimParams params, std::vector<HardwareClock> clocks,
                     std::unique_ptr<DelayPolicy> delays, const crypto::KeyRegistry* registry)
    : params_(params), delays_(std::move(delays)), registry_(registry) {
  ST_REQUIRE(params_.n > 0, "Simulator: need at least one node");
  ST_REQUIRE(clocks.size() == params_.n, "Simulator: clock count must equal n");
  ST_REQUIRE(params_.tdel > 0, "Simulator: tdel must be positive");
  ST_REQUIRE(delays_ != nullptr, "Simulator: delay policy required");
  if (params_.topology != nullptr) {
    ST_REQUIRE(params_.topology->n() == params_.n, "Simulator: topology size must equal n");
    delays_->on_topology(*params_.topology);
  }
  topo_now_ = params_.topology.get();
  if (params_.schedule != nullptr) {
    ST_REQUIRE(params_.schedule->epoch_graph(0).get() == params_.topology.get(),
               "Simulator: schedule must be compiled against params.topology");
    ST_REQUIRE(params_.schedule->n() == params_.n,
               "Simulator: schedule size must equal n");
  }

  RealTime prev_corrupt = 0;
  for (const CorruptionEvent& ev : params_.corruptions) {
    ST_REQUIRE(ev.at > 0, "Simulator: corruption times must be positive");
    ST_REQUIRE(ev.at >= prev_corrupt, "Simulator: corruption times must be non-decreasing");
    prev_corrupt = ev.at;
    ST_REQUIRE(ev.fraction > 0 && ev.fraction <= 1,
               "Simulator: corruption fraction must lie in (0, 1]");
    ST_REQUIRE(ev.kinds != 0 && (ev.kinds & ~kCorruptAll) == 0,
               "Simulator: corruption kinds must be a non-empty subset of the known kinds");
    ST_REQUIRE((ev.kinds & kCorruptClocks) == 0 || ev.clock_range > 0,
               "Simulator: clock corruption needs a positive clock_range");
  }

  Rng root(params_.seed);
  net_rng_.emplace(root.fork());
  adv_rng_.emplace(root.fork());
  if (!params_.corruptions.empty()) {
    // A derived stream of its own (NOT a fork of root): the fork sequence
    // net -> adversary -> per-node is pinned by the golden suite, and the
    // corruption-disabled path must not create this stream at all.
    corrupt_rng_.emplace(params_.seed ^ 0x5e1f57ab1eULL);
  }
  if (params_.broadcast_mode == BroadcastMode::kSampled) {
    ST_REQUIRE(params_.sample_size >= 1,
               "Simulator: sampled broadcast mode needs sample_size >= 1");
    // Same derived-stream discipline as corruption: peer sampling draws from
    // its own stream so full/neighbors runs never create it and stay
    // bit-identical to the pre-fabric engine.
    bcast_rng_.emplace(params_.seed ^ 0xfab10ca575a321ULL);
    sample_scratch_.reserve(params_.sample_size);
  }

  // Default queue reservation, sized by the graph actually installed: a
  // broadcast round is ~n^2 resident deliveries on a complete graph but only
  // ~2E on a sparse one — and the old unconditional n*(n+2) default asked
  // for terabytes at n = 10^6. Reservation is a pure pre-size (the queue
  // grows past it fine), so a cap cannot change behavior, only first-touch
  // allocation timing.
  std::size_t reserve = params_.queue_reserve;
  if (reserve == 0) {
    const auto n = static_cast<std::size_t>(params_.n);
    if (params_.topology == nullptr || params_.topology->is_complete()) {
      reserve = n * (n + 2);
    } else {
      reserve = 2 * params_.topology->edge_count() + 4 * n;
    }
    constexpr std::size_t kQueueReserveCap = std::size_t{1} << 22;  // ~128 MB of slab
    reserve = std::min(reserve, kQueueReserveCap);
  }
  queue_.reserve(reserve);
  timer_states_.reserve(static_cast<std::size_t>(params_.n) * 4);
  timer_owners_.reserve(static_cast<std::size_t>(params_.n) * 4);

  // nodes_ is sized exactly once; LogicalClock instances hold pointers into
  // their own Node's HardwareClock, so the vector must never reallocate.
  nodes_.resize(params_.n);
  for (NodeId id = 0; id < params_.n; ++id) {
    Node& node = nodes_[id];
    node.hw.emplace(std::move(clocks[id]));
    node.logical.emplace(*node.hw);
    node.rng.emplace(root.fork());
    node.ctx.emplace(Context(this, id));
    honest_ids_.push_back(id);
  }

  if (registry_ != nullptr) {
    ST_REQUIRE(registry_->size() >= params_.n, "Simulator: registry smaller than n");
    signers_.reserve(params_.n);
    for (NodeId id = 0; id < params_.n; ++id) signers_.push_back(registry_->signer_for(id));
  }
}

// ~Simulator lives in simulator_parallel.cpp, where ParEngine is complete
// (the destructor joins the worker pool).

void Simulator::set_process(NodeId id, std::unique_ptr<Process> process) {
  ST_REQUIRE(id < params_.n, "set_process: node id out of range");
  ST_REQUIRE(!started_, "set_process: simulation already started");
  ST_REQUIRE(!nodes_[id].corrupt, "set_process: node is corrupted");
  nodes_[id].process = std::move(process);
}

void Simulator::set_adversary(std::vector<NodeId> ids, std::unique_ptr<Adversary> adversary) {
  ST_REQUIRE(!started_, "set_adversary: simulation already started");
  ST_REQUIRE(adversary_ == nullptr, "set_adversary: adversary already installed");
  for (NodeId id : ids) {
    ST_REQUIRE(id < params_.n, "set_adversary: node id out of range");
    ST_REQUIRE(nodes_[id].process == nullptr, "set_adversary: node already has a process");
    nodes_[id].corrupt = true;
    nodes_[id].started = true;  // the adversary is always "up"
  }
  adversary_ = std::move(adversary);
  adv_ctx_.emplace(AdversaryContext(this));
  honest_ids_.clear();
  for (NodeId id = 0; id < params_.n; ++id) {
    if (!nodes_[id].corrupt) honest_ids_.push_back(id);
  }
}

void Simulator::set_start_time(NodeId id, RealTime t) {
  ST_REQUIRE(id < params_.n, "set_start_time: node id out of range");
  ST_REQUIRE(!started_, "set_start_time: simulation already started");
  ST_REQUIRE(t >= 0, "set_start_time: negative start time");
  nodes_[id].start_time = t;
}

void Simulator::schedule_restart(NodeId id, RealTime down_at, RealTime up_at,
                                 ProcessBuilder rebuild) {
  ST_REQUIRE(id < params_.n, "schedule_restart: node id out of range");
  ST_REQUIRE(!started_, "schedule_restart: simulation already started");
  ST_REQUIRE(!nodes_[id].corrupt, "schedule_restart: node is corrupted");
  ST_REQUIRE(down_at > nodes_[id].start_time,
             "schedule_restart: node must go down after it boots");
  ST_REQUIRE(up_at > down_at, "schedule_restart: rejoin must come after the crash");
  ST_REQUIRE(rebuild != nullptr, "schedule_restart: rebuild callback required");
  for (const Restart& r : restarts_) {
    ST_REQUIRE(r.node != id, "schedule_restart: node already has a restart scheduled");
  }
  restarts_.push_back(Restart{id, down_at, up_at, std::move(rebuild), 0});
}

bool Simulator::is_corrupt(NodeId id) const {
  ST_REQUIRE(id < params_.n, "is_corrupt: node id out of range");
  return nodes_[id].corrupt;
}

bool Simulator::is_started(NodeId id) const {
  ST_REQUIRE(id < params_.n, "is_started: node id out of range");
  return nodes_[id].started;
}

const HardwareClock& Simulator::hardware(NodeId id) const {
  ST_REQUIRE(id < params_.n, "hardware: node id out of range");
  return *nodes_[id].hw;
}

const LogicalClock& Simulator::logical(NodeId id) const {
  ST_REQUIRE(id < params_.n, "logical: node id out of range");
  return *nodes_[id].logical;
}

LogicalClock& Simulator::logical(NodeId id) {
  ST_REQUIRE(id < params_.n, "logical: node id out of range");
  return *nodes_[id].logical;
}

void Simulator::set_post_event_hook(std::function<void(const Simulator&)> hook) {
  post_event_hook_ = std::move(hook);
}

void Simulator::set_include_probe(std::function<bool(NodeId)> probe) {
  include_probe_ = std::move(probe);
}

void Simulator::run_until(RealTime horizon) {
  if (!started_) {
    started_ = true;
    // Epoch switches are ordinary timer events. They are armed FIRST, so a
    // boundary that ties with a node start or a delivery applies before it
    // (ties break by insertion order): traffic at time t always sees the
    // graph of the epoch that starts at t.
    if (params_.schedule != nullptr) {
      for (std::size_t e = 1; e < params_.schedule->epoch_count(); ++e) {
        (void)arm_timer(static_cast<NodeId>(e), params_.schedule->epoch_start(e),
                        TimerState::kArmedEpoch);
      }
    }
    // Node starts are ordinary timer events so they interleave correctly
    // with message deliveries (late joiners may start mid-protocol). They
    // are enqueued BEFORE the adversary runs, so time-0 attack messages
    // reach nodes that boot at time 0 (ties break by insertion order).
    for (NodeId id = 0; id < params_.n; ++id) {
      Node& node = nodes_[id];
      if (node.corrupt || node.process == nullptr) continue;
      (void)arm_timer(id, node.start_time, TimerState::kArmedStart);
    }
    for (Restart& restart : restarts_) {
      ST_REQUIRE(nodes_[restart.node].process != nullptr,
                 "schedule_restart: node has no process installed");
      restart.stop_timer = arm_timer(restart.node, restart.down_at, TimerState::kArmedStop);
    }
    // Corruption events are armed LAST among the internal timers: at a time
    // tie with a boot or a churn stop, the lifecycle transition applies
    // first and corruption scrambles the post-transition state (ties break
    // by insertion order). The owner slot carries the event's index.
    for (std::size_t c = 0; c < params_.corruptions.size(); ++c) {
      (void)arm_timer(static_cast<NodeId>(c), params_.corruptions[c].at,
                      TimerState::kArmedCorrupt);
    }
    if (adversary_ != nullptr) adversary_->on_start(*adv_ctx_);
  }

  if (!par_checked_) maybe_enable_parallel();
  if (par_ != nullptr) {
    run_parallel(horizon);
    now_ = std::max(now_, horizon);
    return;
  }

  while (!queue_.empty() && queue_.next_time() <= horizon) {
    ST_REQUIRE(++events_dispatched_ <= params_.max_events,
               "Simulator: event budget exhausted (runaway protocol?)");
    const Event ev = queue_.pop();
    ST_ASSERT(ev.time >= now_, "Simulator: time went backwards");
    now_ = ev.time;
    dispatch(ev);
    if (post_event_hook_) post_event_hook_(*this);
  }
  now_ = std::max(now_, horizon);
}

void Simulator::dispatch(const Event& ev) {
  if (ev.is_timer) {
    const TimerId id = ev.timer.id;
    TimerState& slot = timer_state(id);
    const TimerState kind = slot;
    slot = TimerState::kFired;  // each armed timer pops exactly once
    switch (kind) {
      case TimerState::kCancelled:
        return;
      case TimerState::kArmedStart: {
        Node& node = nodes_[ev.timer.node];
        node.started = true;
        node.process->on_start(*node.ctx);
        return;
      }
      case TimerState::kArmedStop: {
        // Churn: the node crashes. Its pending timers die with it, messages
        // addressed to it are lost while it is down (the `started` check in
        // the delivery path), and a fresh process — built now, booted at the
        // rejoin time through the ordinary start path — takes its place.
        Restart* restart = nullptr;
        for (Restart& r : restarts_) {
          if (r.stop_timer == id) restart = &r;
        }
        ST_ASSERT(restart != nullptr, "Simulator: stop timer without a restart entry");
        Node& node = nodes_[restart->node];
        node.started = false;
        // Protocol timers AND the hardware ticker die with the node: the
        // ticker survives state corruption (it is hardware) but not the
        // machine itself going down. A rebuilt process restarts its own.
        for (TimerId t = 1; t < next_timer_id_; ++t) {
          if ((timer_states_[t - 1] == TimerState::kArmedProcess ||
               timer_states_[t - 1] == TimerState::kArmedTick) &&
              timer_owners_[t - 1] == restart->node) {
            timer_states_[t - 1] = TimerState::kCancelled;
          }
        }
        for (TimerState& st : node.par_timers) {
          if (st == TimerState::kArmedProcess || st == TimerState::kArmedTick) {
            st = TimerState::kCancelled;
          }
        }
        node.ticker_interval = 0;
        node.process = restart->rebuild();
        ST_REQUIRE(node.process != nullptr, "schedule_restart: rebuild returned no process");
        (void)arm_timer(restart->node, restart->up_at, TimerState::kArmedStart);
        return;
      }
      case TimerState::kArmedEpoch: {
        // Topology epoch boundary: swap the live graph and tell the delay
        // policy. Boundaries fire in epoch order (armed ascending at start),
        // so the owner slot's epoch index only ever moves forward.
        epoch_ = timer_owners_[static_cast<std::size_t>(id - 1)];
        topo_now_ = params_.schedule->epoch_graph(epoch_).get();
        delays_->on_topology_change(*topo_now_, now_);
        return;
      }
      case TimerState::kArmedCorrupt:
        apply_corruption(timer_owners_[static_cast<std::size_t>(id - 1)]);
        return;
      case TimerState::kArmedTick: {
        Node& node = nodes_[ev.timer.node];
        if (node.process == nullptr || !node.started || node.ticker_interval <= 0) return;
        // Re-arm BEFORE the callback (a periodic interrupt, not a one-shot):
        // the protocol cannot cancel or corrupt it away.
        (void)arm_timer(ev.timer.node,
                        node.hw->when_reads(node.hw->read(now_) + node.ticker_interval),
                        TimerState::kArmedTick);
        node.process->on_tick(*node.ctx);
        return;
      }
      case TimerState::kArmedAdversary:
        if (adversary_ != nullptr) adversary_->on_timer(*adv_ctx_, id);
        return;
      case TimerState::kArmedProcess: {
        Node& node = nodes_[ev.timer.node];
        if (node.process != nullptr && node.started) node.process->on_timer(*node.ctx, id);
        return;
      }
      case TimerState::kFired:
        ST_ASSERT(kind != TimerState::kFired, "Simulator: timer dispatched twice");
        return;
    }
    return;
  }

  const DeliveryEvent& d = ev.delivery;
  counters_.on_deliver(message_kind(*d.msg));
  Node& node = nodes_[d.to];
  if (node.corrupt) {
    if (adversary_ != nullptr) adversary_->on_message(*adv_ctx_, d.to, d.from, *d.msg);
    return;
  }
  // A wiped receive buffer: messages already in flight toward this node when
  // a corruption event hit were part of the scrambled memory image and are
  // lost on arrival.
  if (d.sent_at < node.purge_before) {
    ++messages_dropped_;
    return;
  }
  // Messages addressed to a node that has not booted yet are lost (the node
  // was down); the integration protocol exists precisely for this.
  if (node.process != nullptr && node.started) node.process->on_message(*node.ctx, d.from, *d.msg);
}

void Simulator::honest_send(NodeId from, NodeId to, const Message& m) {
  if (in_worker()) {
    par_unicast(from, to, m);
    return;
  }
  // This overload is the unicast entry point (Context::send), so the link
  // check lives here: a send off the graph physically cannot be carried and
  // is lost like partitioned traffic. Broadcast traffic never needs the
  // check — its fan-out loop only visits neighbors — which keeps the
  // per-recipient hot path below free of it.
  const Topology* topo = topo_now_;
  if (to != from && topo != nullptr && !topo->adjacent(from, to)) {
    counters_.on_send(message_kind(m), message_size_bytes(m));
    ++messages_dropped_;
    return;
  }
  honest_send(from, to, intern_message(m));
}

void Simulator::honest_send(NodeId from, NodeId to, std::shared_ptr<const Message> msg) {
  counters_.on_send(message_kind(*msg), message_size_bytes(*msg));

  Duration delay = 0;
  if (to != from && !nodes_[to].corrupt) {
    delay = delays_->delay(from, to, now_, params_.tdel, *net_rng_);
    if (delay == kDropMessage) {
      // The policy partitioned this link: the message is lost in transit.
      ++messages_dropped_;
      return;
    }
    ST_ASSERT(delay >= 0 && delay <= params_.tdel,
              "DelayPolicy returned a delay outside [0, tdel]");
  }
  // Self-delivery and delivery to corrupted nodes (rushing adversary) are
  // immediate; both are within the model's [0, tdel].
  queue_.push_delivery(now_ + delay, DeliveryEvent{to, from, std::move(msg), now_});
}

void Simulator::adversary_send(NodeId from, NodeId to, std::shared_ptr<const Message> msg,
                               RealTime deliver_at) {
  ST_REQUIRE(nodes_[from].corrupt, "adversary_send: sender must be corrupted (channels are "
                                   "authenticated)");
  ST_REQUIRE(deliver_at >= now_, "adversary_send: cannot deliver in the past");
  ST_REQUIRE(to < params_.n, "adversary_send: recipient out of range");
  counters_.on_send(message_kind(*msg), message_size_bytes(*msg));
  const Topology* topo = topo_now_;
  if (to != from && topo != nullptr && !topo->adjacent(from, to)) {
    // Even an omniscient adversary is bound by the graph: a corrupted node
    // can only inject traffic on links it actually has.
    ++messages_dropped_;
    return;
  }
  queue_.push_delivery(deliver_at, DeliveryEvent{to, from, std::move(msg), now_});
}

TimerId Simulator::arm_timer(NodeId node, RealTime fire_at, TimerState kind) {
  if (in_worker()) return par_arm_timer(node, fire_at, kind);
  const TimerId id = next_timer_id_++;
  timer_states_.push_back(kind);
  timer_owners_.push_back(node);
  queue_.push_timer(std::max(fire_at, now_), TimerEvent{node, id});
  return id;
}

void Simulator::cancel_timer(TimerId id) {
  TimerState& state = timer_state(id);
  ST_REQUIRE(state != TimerState::kArmedStart && state != TimerState::kArmedStop &&
                 state != TimerState::kArmedEpoch && state != TimerState::kArmedCorrupt &&
                 state != TimerState::kArmedTick,
             "cancel_timer: start/stop/epoch/corruption/ticker timers are internal");
  // Cancelling a timer that already fired (or was already cancelled) is a
  // harmless no-op — and leaves no tombstone behind.
  if (state == TimerState::kArmedProcess || state == TimerState::kArmedAdversary) {
    state = TimerState::kCancelled;
  }
}

Simulator::TimerState& Simulator::timer_state(TimerId id) {
  if (id & kParTimerBit) {
    const NodeId node = par_timer_node(id);
    const std::size_t k = par_timer_index(id);
    ST_REQUIRE(node < params_.n && k < nodes_[node].par_timers.size(),
               "Simulator: unknown timer id");
    return nodes_[node].par_timers[k];
  }
  ST_REQUIRE(id >= 1 && id < next_timer_id_, "Simulator: unknown timer id");
  return timer_states_[static_cast<std::size_t>(id - 1)];
}

void Simulator::start_ticker(NodeId id, Duration hw_interval) {
  ST_REQUIRE(id < params_.n, "start_ticker: node id out of range");
  ST_REQUIRE(hw_interval > 0, "start_ticker: interval must be positive");
  Node& node = nodes_[id];
  ST_REQUIRE(!node.corrupt, "start_ticker: node is corrupted");
  ST_REQUIRE(node.ticker_interval == 0, "start_ticker: ticker already running");
  node.ticker_interval = hw_interval;
  (void)arm_timer(id, node.hw->when_reads(node.hw->read(now()) + hw_interval),
                  TimerState::kArmedTick);
}

void Simulator::apply_corruption(std::size_t idx) {
  const CorruptionEvent& ev = params_.corruptions[idx];
  // Victims: a seeded random subset of the honest nodes that are up. Every
  // draw below comes from the dedicated corruption stream, in a canonical
  // order (subset first, then per victim ascending by id), so the whole
  // event is a pure function of (seed, event index, fleet state).
  std::vector<NodeId> victims;
  for (const NodeId id : honest_ids_) {
    if (nodes_[id].started && nodes_[id].process != nullptr) victims.push_back(id);
  }
  if (victims.empty()) return;
  const auto want = static_cast<std::size_t>(
      std::ceil(ev.fraction * static_cast<double>(victims.size())));
  const std::size_t count = std::clamp<std::size_t>(want, 1, victims.size());
  corrupt_rng_->shuffle(victims);
  victims.resize(count);
  std::sort(victims.begin(), victims.end());

  ++corruption_events_fired_;
  nodes_corrupted_ += count;
  for (const NodeId id : victims) {
    Node& node = nodes_[id];
    if (ev.kinds & kCorruptClocks) {
      // Shift the correction state by a uniform draw; the HARDWARE clock is
      // untouched (it is an oscillator, not memory) — which is exactly the
      // anchor a self-stabilizing protocol recovers from.
      const Duration delta = corrupt_rng_->uniform(-ev.clock_range, ev.clock_range);
      node.logical->adjust_override(node.hw->read(now_), delta);
    }
    if (ev.kinds & kCorruptTimers) {
      // Pending protocol timers are memory; they vanish exactly like on a
      // churn crash. The hardware ticker (kArmedTick) survives.
      for (TimerId t = 1; t < next_timer_id_; ++t) {
        if (timer_states_[t - 1] == TimerState::kArmedProcess && timer_owners_[t - 1] == id) {
          timer_states_[t - 1] = TimerState::kCancelled;
        }
      }
      for (TimerState& st : node.par_timers) {
        if (st == TimerState::kArmedProcess) st = TimerState::kCancelled;
      }
    }
    if (ev.kinds & kCorruptBuffers) node.purge_before = now_;
    if (ev.kinds & kCorruptState) node.process->corrupt_state(*corrupt_rng_);
  }
}

// --- Context ---

std::uint32_t Context::n() const { return sim_->params_.n; }

LocalTime Context::hardware_now() const { return sim_->nodes_[id_].hw->read(sim_->now()); }

LocalTime Context::logical_now() const { return sim_->nodes_[id_].logical->read(sim_->now()); }

LogicalClock& Context::logical() { return *sim_->nodes_[id_].logical; }

void Context::broadcast(const Message& m) {
  if (sim_->in_worker()) {
    // Parallel window execution: the fan-out is buffered and replayed at
    // commit, where delay draws (and sampled-mode peer draws) happen in the
    // sequential engine's canonical order.
    sim_->par_broadcast(id_, m);
    return;
  }
  // Intern the payload once for the whole fan-out: n refcount bumps instead
  // of n deep copies (a RoundMsg relay bundle carries Theta(n) signatures).
  const auto msg = intern_message(m);
  if (sim_->params_.broadcast_mode == BroadcastMode::kSampled) {
    sim_->sampled_fan_out(id_, msg);
    return;
  }
  const Topology* topo = sim_->topo_now_;
  if (topo == nullptr || topo->is_complete()) {
    for (NodeId to = 0; to < sim_->params_.n; ++to) sim_->honest_send(id_, to, msg);
    return;
  }
  sim_->sparse_fan_out(id_, *topo, msg);
}

// Kept out of line on purpose: honest_send inlines into its caller's fan-out
// loop, and letting the three sparse call sites inline it too doubles the
// size of Context::broadcast and measurably slows the complete-graph loop
// (the tracked BM_Broadcast benches) through worse code layout.
__attribute__((noinline)) void Simulator::sparse_fan_out(
    NodeId from, const Topology& topo, const std::shared_ptr<const Message>& msg) {
  // The broadcast reaches self plus neighbors, in the same ascending order
  // the complete loop would visit them, so same-time delivery ties keep
  // breaking by the same insertion order. Reads the CSR row as a raw span —
  // no iterator machinery in the per-neighbor loop.
  const auto [nbrs, degree] = topo.neighbor_span(from);
  bool self_sent = false;
  for (std::size_t i = 0; i < degree; ++i) {
    const NodeId to = nbrs[i];
    if (!self_sent && to > from) {
      honest_send(from, from, msg);
      self_sent = true;
    }
    honest_send(from, to, msg);
  }
  if (!self_sent) honest_send(from, from, msg);
}

bool Simulator::sample_broadcast_targets(NodeId from) {
  const Topology* topo = topo_now_;
  const std::uint32_t m = params_.sample_size;
  const NodeId* domain = nullptr;  // null = implicit all-but-self (complete)
  std::uint32_t domain_size = 0;
  if (topo == nullptr || topo->is_complete()) {
    domain_size = params_.n - 1;
  } else {
    const auto [nbrs, degree] = topo->neighbor_span(from);
    domain = nbrs;
    domain_size = static_cast<std::uint32_t>(degree);
  }
  if (domain_size <= m) return false;  // degenerate: the full fan-out, no draws
  sample_scratch_.clear();
  if (domain != nullptr && m >= broadcast_sample::kFisherYatesMinSample) {
    // Large sample over a CSR row: partial Fisher–Yates over the simulator's
    // private mutable copy of the topology's rows — O(m) flat, no membership
    // probe. Rows stay permuted between draws (same id set, deterministic
    // draw sequence), so no undo pass is needed.
    if (fy_src_ != topo) {
      fy_src_ = topo;
      const std::uint32_t n = topo->n();
      fy_offsets_.assign(n + 1, 0);
      std::size_t total = 0;
      for (NodeId v = 0; v < n; ++v) {
        fy_offsets_[v] = total;
        total += topo->neighbor_span(v).second;
      }
      fy_offsets_[n] = total;
      fy_rows_.resize(total);
      for (NodeId v = 0; v < n; ++v) {
        const auto [nbrs, deg] = topo->neighbor_span(v);
        std::copy(nbrs, nbrs + deg, fy_rows_.begin() + static_cast<std::ptrdiff_t>(fy_offsets_[v]));
      }
    }
    broadcast_sample::fisher_yates(*bcast_rng_, fy_rows_.data() + fy_offsets_[from],
                                   domain_size, m, sample_scratch_);
  } else {
    // Floyd's algorithm: m distinct indices in [0, domain_size), exactly m
    // draws from the dedicated stream regardless of domain size. The scratch
    // stays tiny (m entries), so the membership probe is a linear scan.
    broadcast_sample::floyd_indices(*bcast_rng_, domain_size, m, sample_scratch_);
    // Map indices to node ids: the implicit complete domain is 0..n-1 minus
    // self, a CSR row already holds ids (and never contains self).
    for (NodeId& id : sample_scratch_) {
      id = domain != nullptr ? domain[id] : (id < from ? id : id + 1);
    }
  }
  // Ascending, so same-time delivery ties break in the same id order every
  // other fan-out uses.
  std::sort(sample_scratch_.begin(), sample_scratch_.end());
  return true;
}

__attribute__((noinline)) void Simulator::sampled_fan_out(
    NodeId from, const std::shared_ptr<const Message>& msg) {
  if (!sample_broadcast_targets(from)) {
    // Domain no larger than the sample: identical to the full fan-out.
    const Topology* topo = topo_now_;
    if (topo == nullptr || topo->is_complete()) {
      for (NodeId to = 0; to < params_.n; ++to) honest_send(from, to, msg);
    } else {
      sparse_fan_out(from, *topo, msg);
    }
    return;
  }
  // Self plus the sampled peers, self interleaved at its ascending position
  // exactly like sparse_fan_out.
  bool self_sent = false;
  for (const NodeId to : sample_scratch_) {
    if (!self_sent && to > from) {
      honest_send(from, from, msg);
      self_sent = true;
    }
    honest_send(from, to, msg);
  }
  if (!self_sent) honest_send(from, from, msg);
}

void Context::send(NodeId to, const Message& m) { sim_->honest_send(id_, to, m); }

TimerId Context::set_timer_at_logical(LocalTime target) {
  const RealTime fire_at = sim_->nodes_[id_].logical->when_reads(sim_->now(), target);
  return sim_->arm_timer(id_, fire_at);
}

TimerId Context::set_timer_at_hardware(LocalTime target) {
  const HardwareClock& hw = *sim_->nodes_[id_].hw;
  const RealTime now = sim_->now();
  const RealTime fire_at = target <= hw.read(now) ? now : hw.when_reads(target);
  return sim_->arm_timer(id_, fire_at);
}

void Context::cancel_timer(TimerId id) { sim_->cancel_timer(id); }

void Context::start_ticker(Duration hw_interval) { sim_->start_ticker(id_, hw_interval); }

const crypto::KeyRegistry& Context::registry() const {
  ST_REQUIRE(sim_->registry_ != nullptr, "Context::registry: no key registry installed");
  return *sim_->registry_;
}

const crypto::Signer& Context::signer() const {
  ST_REQUIRE(!sim_->signers_.empty(), "Context::signer: no key registry installed");
  return sim_->signers_[id_];
}

Rng& Context::rng() { return *sim_->nodes_[id_].rng; }

// --- AdversaryContext ---

RealTime AdversaryContext::real_now() const { return sim_->now_; }

std::uint32_t AdversaryContext::n() const { return sim_->params_.n; }

Duration AdversaryContext::tdel() const { return sim_->params_.tdel; }

bool AdversaryContext::is_corrupt(NodeId id) const { return sim_->is_corrupt(id); }

const Simulator& AdversaryContext::observe() const { return *sim_; }

void AdversaryContext::send_from(NodeId from, NodeId to, const Message& m,
                                 RealTime deliver_at) {
  sim_->adversary_send(from, to, intern_message(m), deliver_at);
}

void AdversaryContext::send_from_to_all(NodeId from, const Message& m, RealTime deliver_at) {
  const auto msg = intern_message(m);
  if (sim_->params_.broadcast_mode == BroadcastMode::kSampled &&
      sim_->sample_broadcast_targets(from)) {
    // The adversary's flood samples from the same stream and domain as an
    // honest broadcast would (traffic patterns stay comparable); picks that
    // land on fellow corrupted nodes are simply not sent.
    for (const NodeId to : sim_->sample_scratch_) {
      if (!sim_->is_corrupt(to)) sim_->adversary_send(from, to, msg, deliver_at);
    }
    return;
  }
  const Topology* topo = sim_->topo_now_;
  if (topo == nullptr || topo->is_complete()) {
    for (NodeId to = 0; to < sim_->params_.n; ++to) {
      if (!sim_->is_corrupt(to)) sim_->adversary_send(from, to, msg, deliver_at);
    }
    return;
  }
  // The corrupted node's flood reaches only its honest neighbors.
  const auto [nbrs, degree] = topo->neighbor_span(from);
  for (std::size_t i = 0; i < degree; ++i) {
    if (!sim_->is_corrupt(nbrs[i])) sim_->adversary_send(from, nbrs[i], msg, deliver_at);
  }
}

const crypto::Signer& AdversaryContext::signer_for(NodeId corrupt_id) const {
  ST_REQUIRE(sim_->is_corrupt(corrupt_id),
             "AdversaryContext::signer_for: honest keys are unforgeable");
  ST_REQUIRE(!sim_->signers_.empty(), "AdversaryContext::signer_for: no key registry");
  return sim_->signers_[corrupt_id];
}

const crypto::KeyRegistry& AdversaryContext::registry() const {
  ST_REQUIRE(sim_->registry_ != nullptr, "AdversaryContext::registry: no key registry");
  return *sim_->registry_;
}

TimerId AdversaryContext::set_timer_at_real(RealTime t) {
  return sim_->arm_timer(0, std::max(t, sim_->now_), Simulator::TimerState::kArmedAdversary);
}

Rng& AdversaryContext::rng() { return *sim_->adv_rng_; }

}  // namespace stclock
