#include "core/sync_protocol.h"

#include <algorithm>

#include "util/contracts.h"

namespace stclock {

SyncProtocol::SyncProtocol(SyncConfig cfg, std::unique_ptr<BroadcastPrimitive> primitive,
                           bool passive_join)
    : cfg_(cfg), primitive_(std::move(primitive)), integrated_(!passive_join) {
  ST_REQUIRE(primitive_ != nullptr, "SyncProtocol: primitive required");
  cfg_.validate();
  const auto bounds = theory::derive_bounds(cfg_);
  alpha_ = bounds.alpha;
  amortize_window_ =
      cfg_.amortize_window > 0 ? cfg_.amortize_window : bounds.min_period / 2;
  primitive_->set_accept_handler(
      [this](Context& ctx, Round k) { on_accept(ctx, k); });
}

void SyncProtocol::on_start(Context& ctx) {
  if (integrated_) arm_ready_timer(ctx);
  // A passively joining process arms nothing: it adopts the clock of the
  // first round it observes being accepted.
}

void SyncProtocol::on_message(Context& ctx, NodeId from, const Message& m) {
  primitive_->handle_message(ctx, from, m);
}

void SyncProtocol::corrupt_state(Rng& rng) {
  // An arbitrary memory image: the counters land anywhere in a huge range.
  // Scrambled high, the node ignores every live acceptance and schedules its
  // next broadcast in the far future; either way a non-stabilizing protocol
  // has no path back. The draw order (next_round_, next_broadcast_, then the
  // primitive) is part of the determinism contract.
  next_round_ = rng.uniform_int(0, 1u << 20);
  next_broadcast_ = rng.uniform_int(0, 1u << 20);
  primitive_->corrupt_state(rng);
}

void SyncProtocol::arm_ready_timer(Context& ctx) {
  if (ready_timer_ != 0) ctx.cancel_timer(ready_timer_);
  ready_timer_ = ctx.set_timer_at_logical(cfg_.period * static_cast<double>(next_broadcast_));
}

void SyncProtocol::on_timer(Context& ctx, TimerId id) {
  if (id != ready_timer_) return;  // superseded timer that escaped cancellation
  ready_timer_ = 0;
  const Round k = next_broadcast_;
  ++next_broadcast_;
  // May reentrantly trigger on_accept (e.g. f = 0, own signature completes
  // the quorum), which re-arms the timer; only arm if that did not happen.
  primitive_->broadcast_ready(ctx, k);
  if (ready_timer_ == 0) arm_ready_timer(ctx);
}

void SyncProtocol::apply_correction(Context& ctx, Duration delta) {
  const LocalTime h_now = ctx.hardware_now();
  if (cfg_.adjust == AdjustMode::kInstant) {
    ctx.logical().adjust_instant(h_now, delta);
    return;
  }
  // Amortized: keep the logical rate positive even for backward corrections
  // by widening the window when |delta| is unusually large.
  Duration window = amortize_window_;
  if (delta < 0 && -delta >= window / 2) window = std::max(window, 4 * -delta);
  ctx.logical().adjust_amortized(h_now, delta, window);
}

void SyncProtocol::on_accept(Context& ctx, Round k) {
  if (k < next_round_) return;  // already resynchronized past this round

  const LocalTime target = cfg_.period * static_cast<double>(k) + alpha_;
  const Duration delta = target - ctx.logical_now();

  if (!integrated_) {
    // Integration: adopt the running system's clock outright. The correction
    // can be arbitrarily large, so it is always applied instantaneously.
    ctx.logical().adjust_instant(ctx.hardware_now(), delta);
    integrated_ = true;
  } else {
    apply_correction(ctx, delta);
  }

  next_round_ = k + 1;
  next_broadcast_ = std::max(next_broadcast_, k + 1);
  primitive_->forget_below(next_round_);

  ++pulse_count_;
  if (observer_) observer_(ctx.self(), k);

  // The clock just moved: the pending readiness timer's real fire time is
  // stale, so re-arm it against the corrected clock.
  arm_ready_timer(ctx);
}

}  // namespace stclock
