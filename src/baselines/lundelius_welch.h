#pragma once

#include <map>

#include "baselines/baseline.h"

/// Lundelius–Welch fault-tolerant averaging (PODC 1984) — the strongest
/// contemporaneous baseline: like CNV it is a round-based averaging
/// algorithm with f < n/3, but the combining function is the *fault-tolerant
/// midpoint*: sort the offset estimates, discard the f lowest and f highest,
/// and take the midpoint of the extremes of the rest. Because any surviving
/// extreme is bracketed by correct values, f colluding nodes cannot drag the
/// correction beyond the correct spread — no drift amplification (contrast
/// with CNV under the same kLwPull/kCnvPull attacks in experiment F2).
namespace stclock::baselines {

struct LwParams {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  Duration period = 1.0;
  Duration nominal_delay = 0.005;  ///< assumed one-way delay (tdel / 2)
  Duration collect_window = 0.05;  ///< how long after kP to wait for readings
};

class LwProtocol final : public Process {
 public:
  explicit LwProtocol(LwParams params);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, NodeId from, const Message& m) override;
  void on_timer(Context& ctx, TimerId id) override;

  [[nodiscard]] Round rounds_completed() const { return round_ - 1; }

 private:
  void arm_broadcast(Context& ctx);
  void finish_round(Context& ctx);

  LwParams params_;
  Round round_ = 1;
  TimerId broadcast_timer_ = 0;
  TimerId collect_timer_ = 0;
  std::map<Round, std::map<NodeId, Duration>> offsets_;
};

[[nodiscard]] BaselineResult run_lundelius_welch(const BaselineSpec& spec);

}  // namespace stclock::baselines
