// Quickstart: synchronize a 5-node system that tolerates 2 Byzantine nodes.
//
// Build & run:
//   cmake -B build && cmake --build build && ./build/example_quickstart
//
// The snippet below is the complete recipe: describe the system with a
// SyncConfig, describe the protocol/environment/adversary with a
// ScenarioSpec, call run_scenario(), and read the metrics off the result.
// The same three steps run every protocol in the registry — swap
// spec.protocol for "echo", "lundelius_welch", ... and nothing else changes.

#include <iostream>

#include "experiment/scenario.h"
#include "util/table.h"

int main() {
  using namespace stclock;

  // --- 1. Describe the system --------------------------------------------
  SyncConfig cfg;
  cfg.n = 5;                            // five processes
  cfg.f = 2;                            // tolerate 2 Byzantine (= ceil(5/2)-1)
  cfg.variant = Variant::kAuthenticated;  // signatures -> f < n/2
  cfg.rho = 1e-4;      // hardware clocks drift up to 100 ppm
  cfg.tdel = 0.01;     // messages arrive within 10 ms
  cfg.period = 1.0;    // resynchronize every second of logical time
  cfg.initial_sync = 0.005;  // clocks boot within 5 ms of each other
  cfg.validate();            // throws on inconsistent parameters

  // The closed-form guarantees for this configuration:
  const theory::Bounds bounds = theory::derive_bounds(cfg);
  std::cout << "Configured system: n=" << cfg.n << ", f=" << cfg.f << " ("
            << cfg.variant_name() << ")\n"
            << "  guaranteed skew  (Dmax): " << Table::sci(bounds.precision) << " s\n"
            << "  pulse spread bound (D):  " << Table::sci(bounds.pulse_spread) << " s\n"
            << "  period: [" << Table::num(bounds.min_period, 4) << ", "
            << Table::num(bounds.max_period, 4) << "] s\n\n";

  // --- 2. Describe the protocol, environment, and adversary --------------
  experiment::ScenarioSpec spec;
  spec.protocol = "auth";              // any ProtocolRegistry name runs here
  spec.cfg = cfg;
  spec.seed = 42;                      // fully deterministic replay
  spec.horizon = 30.0;                 // simulate 30 s of real time
  spec.drift = DriftKind::kExtremal;   // worst-case clock rates
  spec.delay = DelayKind::kSplit;      // worst-case delay assignment
  spec.attack = AttackKind::kSpamEarly;  // f nodes actively Byzantine

  // --- 3. Run and inspect ------------------------------------------------
  const experiment::ScenarioResult result = experiment::run_scenario(spec);

  std::cout << "After " << spec.horizon << " s under attack:\n"
            << "  all nodes kept pulsing:   " << (result.live ? "yes" : "NO") << "\n"
            << "  worst skew observed:      " << Table::sci(result.steady_skew)
            << " s (bound " << Table::sci(result.bounds.precision) << ")\n"
            << "  worst pulse spread:       " << Table::sci(result.pulse_spread)
            << " s (bound " << Table::sci(result.bounds.pulse_spread) << ")\n"
            << "  clock rates stayed within [" << Table::num(result.envelope.min_rate, 6)
            << ", " << Table::num(result.envelope.max_rate, 6) << "]\n"
            << "  messages sent:            " << result.messages_sent << "\n";

  const bool ok = result.live && result.steady_skew <= result.bounds.precision;
  std::cout << "\n" << (ok ? "All guarantees held." : "GUARANTEE VIOLATED (bug!)") << "\n";
  return ok ? 0 : 1;
}
