#include <gtest/gtest.h>

#include "core/runner.h"

namespace stclock {
namespace {

RunSpec join_spec(Variant variant) {
  SyncConfig cfg;
  cfg.f = 1;
  cfg.n = variant == Variant::kAuthenticated ? 5 : 7;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;
  cfg.variant = variant;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 3;
  spec.horizon = 25.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.joiners = 1;
  spec.join_time = 10.3;  // mid-round, no alignment with pulses
  return spec;
}

TEST(Joiner, IntegratesWithinOnePeriodAuth) {
  const RunResult r = run_sync(join_spec(Variant::kAuthenticated));
  EXPECT_TRUE(r.live);
  EXPECT_TRUE(r.joiners_integrated);
  // The joiner adopts the first round accepted after boot; rounds recur at
  // most max_period apart, so integration completes within one max period.
  EXPECT_GE(r.join_latency, 0.0);
  EXPECT_LE(r.join_latency, r.bounds.max_period + 1e-9);
}

TEST(Joiner, IntegratesWithinOnePeriodEcho) {
  const RunResult r = run_sync(join_spec(Variant::kEcho));
  EXPECT_TRUE(r.live);
  EXPECT_TRUE(r.joiners_integrated);
  EXPECT_LE(r.join_latency, r.bounds.max_period + 1e-9);
}

TEST(Joiner, PostIntegrationSkewWithinBound) {
  // Once integrated, the joiner counts toward the skew metric; the run-wide
  // steady skew (which includes the joiner from its first pulse) must still
  // meet the precision bound.
  const RunResult r = run_sync(join_spec(Variant::kAuthenticated));
  EXPECT_LE(r.steady_skew, r.bounds.precision);
}

TEST(Joiner, IntegrationWorksUnderByzantineInterference) {
  RunSpec spec = join_spec(Variant::kAuthenticated);
  spec.attack = AttackKind::kSpamEarly;
  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.joiners_integrated);
  EXPECT_LE(r.steady_skew, r.bounds.precision);
}

TEST(Joiner, MultipleJoinersIntegrate) {
  RunSpec spec = join_spec(Variant::kAuthenticated);
  spec.joiners = 2;  // leaves 2 regular honest nodes + f crashed... still > f+1 ready
  spec.attack = AttackKind::kNone;
  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.joiners_integrated);
  EXPECT_TRUE(r.live);
}

TEST(Joiner, LateJoinDeepIntoRun) {
  RunSpec spec = join_spec(Variant::kAuthenticated);
  spec.horizon = 40.0;
  spec.join_time = 31.7;
  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.joiners_integrated);
  EXPECT_LE(r.join_latency, r.bounds.max_period + 1e-9);
}

TEST(Joiner, JoinerDoesNotDisruptRunningSystem) {
  // Compare pulse behaviour with and without a joiner: the running nodes'
  // bounds must hold in both cases.
  RunSpec with = join_spec(Variant::kAuthenticated);
  RunSpec without = with;
  without.joiners = 0;
  const RunResult a = run_sync(with);
  const RunResult b = run_sync(without);
  EXPECT_TRUE(a.live);
  EXPECT_TRUE(b.live);
  EXPECT_LE(a.steady_skew, a.bounds.precision);
  EXPECT_LE(b.steady_skew, b.bounds.precision);
}

}  // namespace
}  // namespace stclock
