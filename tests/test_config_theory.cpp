#include <gtest/gtest.h>

#include "core/config.h"
#include "core/theory.h"

namespace stclock {
namespace {

SyncConfig base_config() {
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 1e-4;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;
  cfg.variant = Variant::kAuthenticated;
  return cfg;
}

TEST(SyncConfigTest, ValidDefaultsPass) {
  EXPECT_NO_THROW(base_config().validate());
}

TEST(SyncConfigTest, AuthenticatedResilienceBound) {
  SyncConfig cfg = base_config();
  // n = 2f+1 is the authenticated limit: f = ceil(n/2) - 1.
  cfg.n = 5;
  cfg.f = 2;
  EXPECT_TRUE(cfg.resilience_ok());
  cfg.f = 3;
  EXPECT_FALSE(cfg.resilience_ok());
  EXPECT_THROW(cfg.validate(), std::logic_error);
}

TEST(SyncConfigTest, EchoResilienceBound) {
  SyncConfig cfg = base_config();
  cfg.variant = Variant::kEcho;
  cfg.n = 7;
  cfg.f = 2;
  EXPECT_TRUE(cfg.resilience_ok());
  cfg.f = 3;  // needs n >= 10
  EXPECT_FALSE(cfg.resilience_ok());
}

TEST(SyncConfigTest, MaxFaultHelpers) {
  EXPECT_EQ(max_faults_authenticated(3), 1u);
  EXPECT_EQ(max_faults_authenticated(4), 1u);
  EXPECT_EQ(max_faults_authenticated(5), 2u);
  EXPECT_EQ(max_faults_authenticated(10), 4u);
  EXPECT_EQ(max_faults_echo(4), 1u);
  EXPECT_EQ(max_faults_echo(6), 1u);
  EXPECT_EQ(max_faults_echo(7), 2u);
  EXPECT_EQ(max_faults_echo(10), 3u);
}

TEST(SyncConfigTest, RejectsDegenerateParameters) {
  {
    SyncConfig cfg = base_config();
    cfg.tdel = 0;
    EXPECT_THROW(cfg.validate(), std::logic_error);
  }
  {
    SyncConfig cfg = base_config();
    cfg.period = 0;
    EXPECT_THROW(cfg.validate(), std::logic_error);
  }
  {
    SyncConfig cfg = base_config();
    cfg.rho = -0.1;
    EXPECT_THROW(cfg.validate(), std::logic_error);
  }
  {
    SyncConfig cfg = base_config();
    cfg.alpha = 2.0;  // >= period
    EXPECT_THROW(cfg.validate(), std::logic_error);
  }
  {
    // Period too small relative to delays: min period would be <= 0.
    SyncConfig cfg = base_config();
    cfg.period = 0.02;
    cfg.initial_sync = 0.0;
    EXPECT_THROW(cfg.validate(), std::logic_error);
  }
}

TEST(TheoryTest, AcceptSpreadDependsOnVariant) {
  SyncConfig cfg = base_config();
  EXPECT_DOUBLE_EQ(theory::accept_spread(cfg), cfg.tdel);
  cfg.variant = Variant::kEcho;
  cfg.n = 7;
  EXPECT_DOUBLE_EQ(theory::accept_spread(cfg), 2 * cfg.tdel);
}

TEST(TheoryTest, DefaultAlpha) {
  SyncConfig cfg = base_config();
  EXPECT_DOUBLE_EQ(theory::resolve_alpha(cfg), (1 + cfg.rho) * cfg.tdel);
  cfg.alpha = 0.123;
  EXPECT_DOUBLE_EQ(theory::resolve_alpha(cfg), 0.123);
}

TEST(TheoryTest, BoundsBasicShape) {
  const auto b = theory::derive_bounds(base_config());
  EXPECT_GT(b.precision, 0);
  EXPECT_GT(b.min_period, 0);
  EXPECT_GT(b.max_period, b.min_period);
  EXPECT_GT(b.rate_hi, 1.0);
  EXPECT_LT(b.rate_lo, 1.0);
  EXPECT_DOUBLE_EQ(b.pulse_spread, b.accept_spread);
}

TEST(TheoryTest, PrecisionMonotoneInTdel) {
  SyncConfig cfg = base_config();
  const double p1 = theory::derive_bounds(cfg).precision;
  cfg.tdel = 0.02;
  const double p2 = theory::derive_bounds(cfg).precision;
  EXPECT_GT(p2, p1);
}

TEST(TheoryTest, PrecisionMonotoneInRho) {
  SyncConfig cfg = base_config();
  const double p1 = theory::derive_bounds(cfg).precision;
  cfg.rho = 1e-3;
  const double p2 = theory::derive_bounds(cfg).precision;
  EXPECT_GT(p2, p1);
}

TEST(TheoryTest, PrecisionShapeThetaOfTdelPlusRhoP) {
  // Dmax should scale ~linearly in tdel and ~linearly in rho * P.
  SyncConfig cfg = base_config();
  cfg.rho = 0;
  const double base = theory::derive_bounds(cfg).precision;
  cfg.tdel = 2 * 0.01;
  const double doubled_tdel = theory::derive_bounds(cfg).precision;
  EXPECT_NEAR(doubled_tdel / base, 2.0, 0.1);

  cfg.tdel = 0.01;
  cfg.rho = 1e-3;
  cfg.period = 10.0;
  const double with_drift_p10 = theory::derive_bounds(cfg).precision;
  cfg.period = 20.0;
  const double with_drift_p20 = theory::derive_bounds(cfg).precision;
  // The drift-dependent part doubles with P.
  EXPECT_GT(with_drift_p20 - with_drift_p10, 0.9 * 1e-3 * 10.0);
}

TEST(TheoryTest, EchoVariantPaysFactorTwo) {
  SyncConfig auth = base_config();
  SyncConfig echo = base_config();
  echo.variant = Variant::kEcho;
  echo.n = 7;
  const auto ba = theory::derive_bounds(auth);
  const auto be = theory::derive_bounds(echo);
  EXPECT_GT(be.precision, ba.precision);
  EXPECT_DOUBLE_EQ(be.accept_spread, 2 * ba.accept_spread);
}

TEST(TheoryTest, AccuracyOptimalityAsPeriodGrows) {
  // The rate envelope converges to the hardware bounds as P / tdel -> inf:
  // the "optimal accuracy" claim.
  SyncConfig cfg = base_config();
  cfg.rho = 1e-3;
  cfg.period = 1.0;
  const auto b1 = theory::derive_bounds(cfg);
  cfg.period = 100.0;
  const auto b2 = theory::derive_bounds(cfg);

  const double hw_hi = 1 + cfg.rho;
  const double hw_lo = 1 / (1 + cfg.rho);
  EXPECT_LT(b2.rate_hi - hw_hi, b1.rate_hi - hw_hi);
  EXPECT_LT(hw_lo - b2.rate_lo, hw_lo - b1.rate_lo);
  EXPECT_NEAR(b2.rate_hi, hw_hi, 5e-4);
  EXPECT_NEAR(b2.rate_lo, hw_lo, 5e-4);
}

TEST(TheoryTest, GammaIsRelativeDriftRate) {
  SyncConfig cfg = base_config();
  cfg.rho = 0.01;
  const auto b = theory::derive_bounds(cfg);
  EXPECT_NEAR(b.gamma, (1.01) - 1 / 1.01, 1e-12);
}

TEST(TheoryTest, ZeroDriftPrecisionIsDelayOnly) {
  SyncConfig cfg = base_config();
  cfg.rho = 0;
  const auto b = theory::derive_bounds(cfg);
  // With rho = 0: Dmax = D + alpha + D = alpha + 2D, alpha defaults to D.
  EXPECT_NEAR(b.precision, 3 * cfg.tdel, 1e-12);
}

}  // namespace
}  // namespace stclock
