#include "experiment/sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "util/contracts.h"

namespace stclock::experiment {

std::uint64_t derive_cell_seed(std::uint64_t base_seed, std::uint64_t cell_index) {
  // splitmix64 over the concatenated inputs; bijective per fixed base, so no
  // two cells of one grid collide.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (cell_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_cell_seed(std::uint64_t base_seed, std::string_view protocol,
                               std::uint64_t cell_index) {
  // FNV-1a over the protocol name folds it into the base seed. The index mix
  // stays bijective per (base, protocol), so cells of one grid still never
  // collide, and cells differing only in protocol get independent streams.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : protocol) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return derive_cell_seed(base_seed ^ h, cell_index);
}

SweepGrid& SweepGrid::axis(std::string name, std::vector<Value> values) {
  ST_REQUIRE(!values.empty(), "SweepGrid: axis needs at least one value");
  axes_.push_back(Axis{std::move(name), std::move(values)});
  return *this;
}

SweepGrid& SweepGrid::protocols(const std::vector<std::string>& names) {
  std::vector<Value> values;
  values.reserve(names.size());
  for (const std::string& name : names) {
    values.emplace_back(name, [name](ScenarioSpec& spec) { spec.protocol = name; });
  }
  return axis("protocol", std::move(values));
}

std::vector<SweepCell> SweepGrid::cells() const {
  std::size_t total = 1;
  for (const Axis& axis : axes_) total *= axis.values.size();

  std::vector<SweepCell> cells;
  cells.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    SweepCell cell;
    cell.index = index;
    cell.spec = base_;
    // Row-major: the first axis varies slowest.
    std::size_t stride = total;
    for (const Axis& axis : axes_) {
      stride /= axis.values.size();
      const auto& [label, mutate] = axis.values[(index / stride) % axis.values.size()];
      cell.labels.emplace_back(axis.name, label);
      if (mutate) mutate(cell.spec);
    }
    if (reseed_) cell.spec.seed = derive_cell_seed(base_.seed, cell.spec.protocol, index);
    cells.push_back(std::move(cell));
  }
  return cells;
}

SweepRunner::SweepRunner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) threads_ = std::max(1u, std::thread::hardware_concurrency());
}

std::vector<ScenarioResult> SweepRunner::run(const std::vector<SweepCell>& cells) const {
  std::vector<ScenarioResult> results(cells.size());
  if (cells.empty()) return results;

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads_, cells.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) results[i] = run_scenario(cells[i].spec);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto work = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells.size()) return;
      try {
        results[i] = run_scenario(cells[i].spec);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) pool.emplace_back(work);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<ScenarioResult> SweepRunner::run(const std::vector<ScenarioSpec>& specs) const {
  std::vector<SweepCell> cells(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    cells[i].index = i;
    cells[i].spec = specs[i];
  }
  return run(cells);
}

}  // namespace stclock::experiment
