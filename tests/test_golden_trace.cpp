#include <gtest/gtest.h>

#include "golden_specs.h"

/// Golden trace-equivalence test for the simulator hot path.
///
/// Every metric below was captured (at %.17g round-trip precision, so the
/// comparison is bit-exact for doubles) from the scenarios in
/// tests/golden_specs.h BEFORE the hot-path refactor landed — message
/// interning in Context::broadcast / AdversaryContext::send_from_to_all, the
/// slab-backed slim event queue, the flat timer-state table, and enum-keyed
/// counters. Running them today must reproduce every value exactly: the
/// refactor is a pure performance change with no observable behavior.
///
/// Regenerating (only after a DELIBERATE semantic change): run each spec
/// from golden_specs() through run_scenario and print the Expected fields
/// with printf("%.17g"/PRIu64); paste the rows below in order.
namespace stclock::experiment {
namespace {

struct Expected {
  double max_skew;
  double steady_skew;
  double pulse_spread;
  double min_period;
  double max_period;
  std::uint64_t min_pulses;
  std::uint64_t max_pulses;
  bool live;
  double envelope_min_rate;
  double envelope_max_rate;
  std::uint64_t messages_sent;
  std::uint64_t bytes_sent;
  std::uint64_t events_dispatched;
  std::uint64_t rounds_completed;
  // PR-3 workload metrics; rows predating them keep the defaults.
  std::uint64_t messages_dropped = 0;
  double rejoin_latency = -1;
  bool churned_rejoined = false;
  // PR-4 topology metrics. On the complete topology local skew IS the
  // global spread, so rows predating the topology layer keep the -1
  // sentinel and are checked against max_skew / steady_skew instead.
  double local_skew = -1;
  double steady_local_skew = -1;
  // PR-5 dynamic-topology metric; static rows keep the single epoch.
  std::uint64_t topology_epochs = 1;
  // PR-7 fault-injection metrics; corruption-free rows keep the defaults.
  std::uint64_t corruption_events = 0;
  std::uint64_t nodes_corrupted = 0;
  bool stabilized = false;
  double stabilization_time = -1;
};

// Captured at commit "PR 1" (pre-refactor), in golden_specs() order:
// auth+spam_early seeds 1,2,3; echo+replay seeds 1,4; auth+joiner; LW
// baseline. The last two rows (auth+churn, echo+partition) were captured
// when the PR-3 dynamic-network workloads landed.
constexpr Expected kExpected[] = {
    {0.01123902034072799, 0.01123902034072799, 0.0012091023750455676, 0.9891038644601311,
     0.99008140976091319, 10, 10, true, 1.0100784746402467, 1.0101815993153049, 755, 64215,
     832, 10},
    {0.013158159271966396, 0.012135114613062381, 0.0025895859557885093, 0.98850975663999252,
     0.99007817999121706, 10, 10, true, 1.010093533422626, 1.0103922611619955, 706, 62010,
     776, 10},
    {0.01371718437232472, 0.011162237978668443, 0.0011612496921236115, 0.9894399122028541,
     0.99007614983487979, 10, 10, true, 1.0101068509449915, 1.0102511697786023, 748, 63900,
     824, 10},
    {0.017454856432758126, 0.014218551121503609, 0.0082548374371105293, 0.98517874133324668,
     0.99951185328134118, 10, 10, true, 1.0070963520399832, 1.0076728282686829, 6180, 55620,
     6290, 10},
    {0.016076320087703655, 0.015156587569736146, 0.008358284330585164, 0.9850398080763263,
     1.0007802257922318, 10, 10, true, 1.006266248397963, 1.0072167965457299, 6160, 55440,
     6270, 10},
    {0.016727364724340887, 0.016727364724340887, 0.0067141557504672988, 0.98500448223381731,
     0.995782581777795, 15, 15, true, 1.0100741426424302, 1.0119599633661818, 1200, 89784,
     1351, 15},
    {0.0074836537359008748, 0.0051657812043153228, 0, 0, 0, 0, 0, false, 1.0016072463274817,
     1.0021873777992789, 1880, 16920, 2060, 0},
    {0.011755068739271124, 0.011755068739271124, 0.0061539553240770317, 0.9887020559207258,
     0.99992503103077102, 12, 12, true, 1.0054558126167632, 1.0062000375436042, 721, 59661,
     828, 12, 0, 0.96862062064054566, true},
    {0.033081797726873141, 0.033081797726873141, 0.0066855862152257473, 0.98208627469343313,
     2.9719787595449709, 10, 12, true, 1.010835667183057, 1.0115390447457415, 1134, 10206,
     1236, 12, 60, -1, false},
    // PR-4 topology rows: ring x {auth, echo}, gnp x {auth, echo}. Captured
    // when the topology layer landed; local skew is now a distinct metric.
    {0.014380101625396158, 0.014038740247466208, 0.0040524120741145531, 0.98713344837244743,
     0.99009748830299282, 8, 8, true, 1.0100738650743086, 1.010532407398119, 360, 16200,
     480, 8, 0, -1, false, 0.013897451823208118, 0.013559554786396699},
    {0.024381101625396306, 0.024041407074483878, 0.0040519801122878008, 0.97713330393571685,
     0.98009549337116131, 8, 8, true, 1.0199236988332299, 1.0203822221658654, 357, 3213,
     477, 8, 0, -1, false, 0.023898451823208267, 0.023561629357466529},
    {0.012311027307200462, 0.012311027307200462, 0.0038856628953949368, 0.98881777368769797,
     0.9941229688586013, 8, 8, true, 1.0085718962342123, 1.009100908384067, 859, 54783,
     983, 8, 0, -1, false, 0.012311027307200462, 0.012311027307200462},
    {0.023780192229139629, 0.023780192229139629, 0.0086071105073468601, 0.979314198636553,
     0.98944499735917057, 8, 8, true, 1.0150487870756677, 1.0160928340105337, 890, 8010,
     1018, 8, 0, -1, false, 0.023780192229139629, 0.023780192229139629},
    // PR-5 dynamic-topology rows: ring with an edge-failure window (the
    // {0, 1} edge out over [2.5, 5.5)) x {auth, echo} — three compiled
    // epochs, broadcasts rerouted mid-run — and the gradient baseline on
    // the static ring. Captured when the topology-schedule layer landed.
    {0.013621065043235125, 0.012903531952113578, 0.0029153297649813226, 0.98793316985466428,
     0.99009490240298126, 8, 8, true, 1.0097482014523265, 1.0101741615108677, 348, 15660,
     471, 8, 0, -1, false, 0.013621065043235125, 0.012257493825187815, 3},
    {0.023622065043235274, 0.022902430782282046, 0.0029153297649813226, 0.97793130859712618,
     0.98009293359398963, 8, 8, true, 1.0198514995633599, 1.0202744594152133, 348, 3132,
     471, 8, 0, -1, false, 0.023622065043235274, 0.022255969480081461, 3},
    // PR-7 fault-injection rows: auth vs auth_stab on the ring, one
    // full-fraction corruption event at t=4.25. Plain auth never recovers —
    // its process timers died with its memory and its round counter keeps
    // the scrambled value (hence the absurd rounds_completed) — while
    // auth_stab's hardware-anchored watchdog repairs clock, counters, and
    // primitive floor and re-enters the precision envelope.
    {5.7439196861006403, 5.7439196861006403, 0.0026354978737882506, 0.98800910986171786,
     0.99008508421617525, 4, 4, false, 0.90203631998148259, 1.097602536331145, 177, 7965,
     253, 137912, 0, -1, false, 5.7439196861006403, 5.7439196861006403, 1,
     1, 8, false, -1},
    {6.4810395603914719, 6.4810395603914719, 1.445091952233355, -0.4550723494657456,
     2.4351702083415514, 20, 22, true, 1.0731434327004907, 1.1001062165798301, 972, 43740,
     2539, 22, 0, -1, false, 5.3759078925225765, 5.3759078925225765, 1,
     1, 8, true, 0.90115068363147977},
    {0.004388306538742115, 0.0036859473499006867, 0, 0,
     0, 0, 0, false, 0.99961388847323385, 1.0008601072591083, 192, 3264,
     250, 0, 0, -1, false, 0.0039895831942931004, 0.0035611683515077708, 1},
    // PR-9 sparse-fabric rows: auth on the k=4 expander under neighbors
    // fan-out, and auth on the complete graph under sampled fan-out (m=3).
    // Captured when the broadcast-mode layer landed; they pin the expander
    // edge set and the dedicated sampled-broadcast RNG stream.
    {0.014938677203654716, 0.014141475885360855, 0.0041921857975512067, 0.9872555956556025,
     0.99005230075167461, 8, 8, true, 1.010107586409746, 1.0105635958787018, 451, 20295,
     558, 8, 0, -1, false, 0.014938677203654716, 0.013029364801028009, 1},
    {0.013185200562091159, 0.011918016951859567, 0.0026307569216621474, 0.98800063206422628,
     0.99008353213763733, 8, 8, true, 1.0100359247595274, 1.0103825610145274, 464, 20880,
     581, 8, 0, -1, false, -1, -1, 1},
};

TEST(GoldenTrace, MetricsAreBitIdenticalAcrossHotPathRefactor) {
  const std::vector<ScenarioSpec> specs = golden::specs();
  ASSERT_EQ(specs.size(), std::size(kExpected));

  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE("scenario " + std::to_string(i) + " (" + specs[i].protocol + ", seed " +
                 std::to_string(specs[i].seed) + ")");
    const ScenarioResult r = run_scenario(specs[i]);
    const Expected& e = kExpected[i];

    EXPECT_EQ(r.max_skew, e.max_skew);
    EXPECT_EQ(r.steady_skew, e.steady_skew);
    EXPECT_EQ(r.pulse_spread, e.pulse_spread);
    EXPECT_EQ(r.min_period, e.min_period);
    EXPECT_EQ(r.max_period, e.max_period);
    EXPECT_EQ(r.min_pulses, e.min_pulses);
    EXPECT_EQ(r.max_pulses, e.max_pulses);
    EXPECT_EQ(r.live, e.live);
    EXPECT_EQ(r.envelope.min_rate, e.envelope_min_rate);
    EXPECT_EQ(r.envelope.max_rate, e.envelope_max_rate);
    EXPECT_EQ(r.messages_sent, e.messages_sent);
    EXPECT_EQ(r.bytes_sent, e.bytes_sent);
    EXPECT_EQ(r.events_dispatched, e.events_dispatched);
    EXPECT_EQ(r.rounds_completed, e.rounds_completed);
    EXPECT_EQ(r.messages_dropped, e.messages_dropped);
    EXPECT_EQ(r.rejoin_latency, e.rejoin_latency);
    EXPECT_EQ(r.churned_rejoined, e.churned_rejoined);
    EXPECT_EQ(r.topology_epochs, e.topology_epochs);
    EXPECT_EQ(r.corruption_events, e.corruption_events);
    EXPECT_EQ(r.nodes_corrupted, e.nodes_corrupted);
    EXPECT_EQ(r.stabilized, e.stabilized);
    EXPECT_EQ(r.stabilization_time, e.stabilization_time);
    if (e.local_skew < 0) {
      // Complete topology: the local-skew metric must degenerate to the
      // global spread exactly (every pair is adjacent).
      EXPECT_EQ(r.local_skew, r.max_skew);
      EXPECT_EQ(r.steady_local_skew, r.steady_skew);
    } else {
      EXPECT_EQ(r.local_skew, e.local_skew);
      EXPECT_EQ(r.steady_local_skew, e.steady_local_skew);
    }
  }
}

TEST(GoldenTrace, RepeatRunsAreDeterministic) {
  // The golden values above only pin the engine against history; this pins
  // it against itself — two runs of one spec in one process must agree.
  const std::vector<ScenarioSpec> specs = golden::specs();
  const ScenarioResult a = run_scenario(specs.front());
  const ScenarioResult b = run_scenario(specs.front());
  EXPECT_EQ(a.max_skew, b.max_skew);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
}

}  // namespace
}  // namespace stclock::experiment
