#pragma once

#include <memory>

#include "core/config.h"
#include "sim/process.h"

/// Byzantine strategies used by tests and experiments.
///
/// Each strategy drives all corrupted nodes at once through the omniscient
/// AdversaryContext. Strategies are model-conforming by construction: they
/// cannot sign for honest nodes, cannot impersonate honest senders, and
/// cannot touch honest-to-honest delays (those belong to the DelayPolicy).
namespace stclock {

enum class AttackKind {
  kNone,        ///< no corrupted nodes at all
  kCrash,       ///< corrupted nodes are silent from the start
  kSpamEarly,   ///< floods valid corrupt signatures / init / echo for every
                ///< future round at time 0 — maximal acceptance acceleration
  kEquivocate,  ///< sends round messages to only half the honest nodes,
                ///< trying to split acceptance (stresses Relay)
  kReplay,      ///< records honest round messages and replays them much
                ///< later (stresses round-tagged signatures)
  kForge,       ///< fabricates signatures for honest signers with random
                ///< MACs (must be rejected: unforgeability)
  kCnvPull,     ///< baseline attack: feeds each CNV node per-receiver
                ///< readings at the discard threshold to drag the average
  kLwPull,      ///< baseline attack: extreme-early/late readings against
                ///< Lundelius–Welch (discarded by the f-trim)
  kLeaderLie,   ///< baseline attack: a corrupted leader feeds followers a
                ///< clock running 10% fast (leader-sync strawman breakdown)
  kHssdEarly,   ///< baseline attack: signs each round the instant any honest
                ///< node's plausibility window opens (HSSD single-signature
                ///< acceptance -> per-round clock advance of ~window)
  kSleeper,     ///< behaves crashed until mid-run, then turns into the
                ///< spam-early flood (tests that guarantees are not merely a
                ///< property of clean starts)
};

[[nodiscard]] const char* attack_name(AttackKind kind);

struct AttackParams {
  /// Highest round the attack pre-computes messages for (>= horizon / P).
  Round max_round = 64;
  /// The protocol period P (for attacks that pace themselves).
  Duration period = 1.0;
  /// Which variant the honest nodes run (attack messages differ).
  Variant variant = Variant::kAuthenticated;
  /// Baseline threshold: CNV's discard threshold (kCnvPull) and HSSD's
  /// plausibility window (kHssdEarly).
  Duration cnv_delta = 0.1;
  /// Real time at which a kSleeper adversary wakes up.
  RealTime sleeper_wake = 10.0;
  /// Nominal one-way delay assumed by the baselines (tdel / 2).
  Duration nominal_delay = 0.005;
};

/// Builds the strategy; returns nullptr for kNone / kCrash (no behaviour
/// needed — marking nodes corrupted is the caller's job).
[[nodiscard]] std::unique_ptr<Adversary> make_attack(AttackKind kind,
                                                     const AttackParams& params);

}  // namespace stclock
