// Experiment F3 — Skew as a function of the drift bound rho.
//
// Figure data: measured worst-case steady skew vs rho, for both variants,
// against Dmax(rho). At small rho the delay term (D, alpha) dominates; past
// rho ~ tdel/P the rho*P term takes over and the curve turns linear in rho.

#include "bench_common.h"

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("F3 — Skew vs drift bound rho",
                      "Dmax = Theta(tdel + rho*P): flat in rho until rho*P ~ tdel, "
                      "then linear");

  Table table({"variant", "rho", "skew(s)", "Dmax(s)", "ratio", "live"});
  for (const Variant variant : {Variant::kAuthenticated, Variant::kEcho}) {
    for (const double rho : {0.0, 1e-5, 1e-4, 1e-3, 3e-3, 1e-2}) {
      SyncConfig cfg = variant == Variant::kAuthenticated
                           ? bench::default_auth_config()
                           : bench::default_echo_config();
      cfg.rho = rho;
      const RunSpec spec = bench::adversarial_spec(cfg, 30.0, opts.seed);
      const RunResult r = run_sync(spec);
      table.add_row({cfg.variant_name(), Table::sci(rho, 1), Table::sci(r.steady_skew),
                     Table::sci(r.bounds.precision),
                     Table::num(r.steady_skew / r.bounds.precision, 2),
                     r.live ? "yes" : "NO"});
    }
  }
  stclock::bench::emit(table, opts);
  std::cout << "(n=7, tdel=10ms, P=1s, extremal drift, split delays, spam-early)\n";
  return 0;
}
