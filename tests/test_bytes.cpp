#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/bytes.h"

namespace stclock {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(3.14159);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, RoundTripSpecialDoubles) {
  ByteWriter w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());

  ByteReader r(w.data());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

TEST(Bytes, RoundTripStringsAndBytes) {
  ByteWriter w;
  w.str("hello, world");
  w.str("");
  const Bytes blob{1, 2, 3, 255};
  w.bytes(blob);

  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "hello, world");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.data().size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u32(42);
  ByteReader r(w.data());
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), std::out_of_range);
}

TEST(Bytes, TruncatedLengthPrefixedThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow, but none do
  ByteReader r(w.data());
  EXPECT_THROW((void)r.bytes(), std::out_of_range);
}

TEST(Bytes, DistinctEncodingsForDistinctValues) {
  // The signing payload must be injective in the round number.
  ByteWriter a, b;
  a.u64(1);
  b.u64(2);
  EXPECT_NE(a.data(), b.data());
}

TEST(Hex, RoundTrip) {
  const Bytes data{0x00, 0x7F, 0x80, 0xFF};
  EXPECT_EQ(to_hex(data), "007f80ff");
  EXPECT_EQ(from_hex("007f80ff"), data);
  EXPECT_EQ(from_hex("007F80FF"), data);  // upper-case accepted
}

TEST(Hex, Malformed) {
  EXPECT_THROW((void)from_hex("abc"), std::invalid_argument);  // odd length
  EXPECT_THROW((void)from_hex("zz"), std::invalid_argument);   // bad digit
  EXPECT_TRUE(from_hex("").empty());
}

}  // namespace
}  // namespace stclock
