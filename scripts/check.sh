#!/usr/bin/env bash
# Local / CI gate: the tier-1 verify line with warnings-as-errors. The whole
# tree (src/, tests/, bench/, examples/) builds under -Wall -Wextra -Werror,
# so any new warning in the hot-path files fails the gate.
#
# Usage: scripts/check.sh [--bench] [build-dir]   (default: build-check)
#   --bench  additionally smoke-run the tracked perf benchmarks (1 iteration,
#            via scripts/bench.sh --smoke) so the bench binaries cannot
#            bit-rot; BENCH_core.json is not modified.
#
# Uses a separate build directory so the strict flags never pollute an
# incremental developer build.
set -euo pipefail

cd "$(dirname "$0")/.."
RUN_BENCH=0
BUILD_DIR="build-check"
for arg in "$@"; do
  case "$arg" in
    --bench) RUN_BENCH=1 ;;
    -*) echo "check.sh: unknown option: $arg" >&2; exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [[ "$RUN_BENCH" -eq 1 ]]; then
  scripts/bench.sh --smoke "$BUILD_DIR-bench"
fi
echo "check.sh: all green"
