// Experiment F2 — Accuracy envelope (the paper's headline optimality result).
//
// Claim: Srikanth–Toueg logical clocks stay within a linear envelope of real
// time with the HARDWARE drift slopes (up to the O((alpha+D)/P) rate term) —
// synchronization does not amplify drift. Averaging under attack does:
// interactive convergence lets f colluding nodes drag every correct clock's
// rate beyond any hardware bound.
//
// Figure data: fitted long-run rate of each algorithm's logical clocks under
// its worst implemented attack, against the hardware envelope. Every
// algorithm is one registry name; the whole figure is a single sweep.

#include "bench_common.h"

namespace stclock {
namespace {

constexpr double kRho = 1e-4;

experiment::ScenarioSpec cell_spec(const std::string& protocol, AttackKind attack,
                                   std::uint64_t seed, std::uint32_t f = 2) {
  SyncConfig cfg = bench::default_auth_config();
  cfg.f = f;
  cfg.rho = kRho;
  experiment::ScenarioSpec spec = bench::adversarial_scenario(cfg, /*horizon=*/60.0, seed);
  spec.protocol = protocol;
  spec.attack = attack;
  if (protocol == "echo") spec.cfg.variant = Variant::kEcho;
  return spec;
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("F2 — Accuracy envelope under attack",
                      "ST logical-clock rates stay hardware-optimal; averaging "
                      "(CNV) amplifies drift under f colluding nodes", opts);

  const double hw_hi = 1 + kRho;
  const double hw_lo = 1 / (1 + kRho);
  const std::string hw_envelope =
      "[" + Table::num(hw_lo, 6) + ", " + Table::num(hw_hi, 6) + "]";

  std::vector<experiment::SweepCell> cells;
  auto add_cell = [&cells](const std::string& algorithm, const std::string& attack_label,
                           experiment::ScenarioSpec spec) {
    experiment::SweepCell cell;
    cell.index = cells.size();
    cell.labels = {{"algorithm", algorithm}, {"attack", attack_label}};
    cell.spec = std::move(spec);
    cells.push_back(std::move(cell));
  };
  add_cell("srikanth-toueg-auth", "spam-early",
           cell_spec("auth", AttackKind::kSpamEarly, opts.seed));
  add_cell("srikanth-toueg-echo", "spam-early",
           cell_spec("echo", AttackKind::kSpamEarly, opts.seed));
  add_cell("lundelius-welch", "lw-pull", cell_spec("lundelius_welch", AttackKind::kLwPull,
                                                   opts.seed));
  add_cell("interactive-conv", "cnv-pull",
           cell_spec("interactive_convergence", AttackKind::kCnvPull, opts.seed));
  // HSSD accepts on a single signature within a plausibility window: ONE
  // corrupted node advances every clock by ~window per period.
  add_cell("hssd-single-sig", "hssd-early (1 node)",
           cell_spec("hssd", AttackKind::kHssdEarly, opts.seed, /*f=*/1));
  add_cell("leader-sync", "leader-lie",
           cell_spec("leader_corrupt", AttackKind::kNone, opts.seed));
  add_cell("unsynchronized", "-", cell_spec("unsynchronized", AttackKind::kNone, opts.seed));

  const std::vector<experiment::ScenarioResult> results = bench::run_cells(cells, opts);
  if (bench::emit_json(cells, results, opts)) return 0;

  Table table({"algorithm", "attack", "min rate", "max rate", "hw envelope",
               "theory ceiling", "verdict"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const experiment::ScenarioResult& r = results[i];
    const std::string& algorithm = cells[i].labels[0].second;
    const experiment::ScenarioSpec& spec = cells[i].spec;

    std::string ceiling = "-";
    std::string verdict;
    if (algorithm == "srikanth-toueg-auth" || algorithm == "srikanth-toueg-echo") {
      const bool optimal =
          r.envelope.max_rate <= r.bounds.rate_hi + r.rate_fit_tolerance &&
          r.envelope.min_rate >= r.bounds.rate_lo - r.rate_fit_tolerance;
      ceiling = Table::num(r.bounds.rate_hi, 6);
      verdict = optimal ? "hardware-optimal" : "VIOLATED";
    } else if (algorithm == "lundelius-welch") {
      // Asymmetric delays bias every reading by up to tdel/2, so LW (like ST)
      // carries an inherent O(tdel/P) rate term; the f-trim keeps the
      // *attack* from adding anything beyond it.
      const bool resists = r.envelope.max_rate < hw_hi + spec.cfg.tdel / spec.cfg.period;
      verdict = resists ? "resists (delay-bias only)" : "amplified";
    } else if (algorithm == "interactive-conv") {
      verdict = r.envelope.max_rate > hw_hi + 0.001 ? "drift AMPLIFIED" : "unexpected";
    } else if (algorithm == "hssd-single-sig") {
      verdict = r.envelope.max_rate > hw_hi + 0.005 ? "drift AMPLIFIED" : "unexpected";
    } else if (algorithm == "leader-sync") {
      verdict = r.envelope.max_rate > 1.05 ? "fully hijacked" : "unexpected";
    } else {
      verdict = "hardware itself";
    }
    table.add_row({algorithm, cells[i].labels[1].second, Table::num(r.envelope.min_rate, 6),
                   Table::num(r.envelope.max_rate, 6), hw_envelope, ceiling, verdict});
  }

  stclock::bench::emit(table, opts);
  std::cout << "(the ST rows must sit inside the theory ceiling — barely wider than\n"
               " the hardware envelope; CNV's max rate escapes the envelope by about\n"
               " f*0.9*delta/(n*P) = " << Table::num(2 * 0.9 * 0.05 / 7.0, 5)
            << " per unit rate, leader-sync by the full lie)\n";
  return 0;
}
