// WAN cluster scenario: geo-distributed replicas keeping time together.
//
// A 9-node cluster spread across data centers: one-way delays up to 50 ms,
// oven-stabilized oscillators (20 ppm drift), resynchronization every 5 s.
// Four replicas may be compromised (the authenticated maximum for n = 9).
// Compares the Srikanth–Toueg protocol against Lundelius–Welch and the
// unsynchronized control under identical conditions — three registry names,
// one parallel sweep, one engine.

#include <iostream>

#include "experiment/sweep.h"
#include "util/table.h"

int main() {
  using namespace stclock;

  experiment::ScenarioSpec base;
  base.cfg.n = 9;
  base.cfg.f = 4;  // authenticated maximum
  base.cfg.rho = 2e-5;    // 20 ppm oscillators
  base.cfg.tdel = 0.05;   // 50 ms WAN delay bound
  base.cfg.period = 5.0;  // resync every 5 s
  base.cfg.initial_sync = 0.02;
  base.delta = 0.2;
  base.seed = 2024;
  base.horizon = 300.0;  // five minutes
  base.drift = DriftKind::kRandomWalk;  // realistic wandering oscillators
  base.delay = DelayKind::kUniform;     // jittery network

  std::cout << "WAN cluster: n=9 replicas, 4 compromised, 50 ms delays, 20 ppm\n"
               "oscillators, resync every 5 s, 5 minutes of operation.\n\n";

  experiment::SweepGrid grid(base);
  grid.axis("algorithm",
            {{"srikanth-toueg (auth)",
              [](experiment::ScenarioSpec& spec) {
                spec.protocol = "auth";
                spec.attack = AttackKind::kSpamEarly;
              }},
             {"lundelius-welch",
              [](experiment::ScenarioSpec& spec) {
                spec.protocol = "lundelius_welch";
                spec.cfg.f = 2;  // LW cannot tolerate 4 of 9 — n > 3f forces f <= 2
                spec.attack = AttackKind::kLwPull;
              }},
             {"unsynchronized", [](experiment::ScenarioSpec& spec) {
                spec.protocol = "unsynchronized";
                spec.cfg.f = 2;
                spec.attack = AttackKind::kNone;
              }}});
  const std::vector<experiment::SweepCell> cells = grid.cells();
  const std::vector<experiment::ScenarioResult> results =
      experiment::SweepRunner(/*threads=*/3).run(cells);
  const experiment::ScenarioResult& st = results[0];
  const experiment::ScenarioResult& lw = results[1];
  const experiment::ScenarioResult& unsync = results[2];

  Table table({"algorithm", "tolerates", "worst skew", "skew bound", "msgs sent"});
  table.add_row({"srikanth-toueg (auth)", "4 of 9 Byzantine",
                 Table::num(st.steady_skew * 1e3, 2) + " ms",
                 Table::num(st.bounds.precision * 1e3, 2) + " ms",
                 std::to_string(st.messages_sent)});
  table.add_row({"lundelius-welch", "2 of 9 Byzantine",
                 Table::num(lw.steady_skew * 1e3, 2) + " ms", "-",
                 std::to_string(lw.messages_sent)});
  table.add_row({"unsynchronized", "-", Table::num(unsync.max_skew * 1e3, 2) + " ms",
                 "(grows forever)", "0"});
  table.print(std::cout);

  // When would free-running clocks overtake the synchronized bound?
  const double gamma = (1 + base.cfg.rho) - 1 / (1 + base.cfg.rho);
  const double crossover_min = st.bounds.precision / gamma / 60.0;

  std::cout << "\nTakeaways:\n"
            << "  - under 4 compromised replicas only the signature-based protocol\n"
            << "    still runs at all; LW's resilience tops out at f=2 for n=9;\n"
            << "  - synchronized skew is bounded FOREVER at the scale of the delay\n"
            << "    bound; free-running clocks drift ~"
            << Table::num(gamma * 3600 * 1e3, 0) << " ms/hour and pass the\n"
            << "    synchronized bound after ~" << Table::num(crossover_min, 0)
            << " minutes, growing without limit;\n"
            << "  - every replica pulsed " << st.min_pulses << "-" << st.max_pulses
            << " times (period within ["
            << Table::num(st.min_period, 2) << ", " << Table::num(st.max_period, 2)
            << "] s).\n";
  return 0;
}
