#pragma once

#include <memory>

#include "util/rng.h"
#include "util/types.h"

/// Delay policies: the adversary's control over honest-to-honest message
/// delays. The model guarantees only that any message between correct
/// processes is delivered within tdel; *which* delay in [0, tdel] each
/// message gets is adversarial. A DelayPolicy encodes one such strategy.
/// Policies returning values outside [0, tdel] are clamped (and this is a
/// contract violation caught in debug checks).
///
/// Policies are *link-keyed*: delay() receives the directed link (from, to),
/// so a policy may treat every link independently (see LinkDelay). Policies
/// that need the network graph itself override on_topology(), which the
/// simulator calls once before any traffic flows.
namespace stclock {

class Topology;

/// Sentinel a DelayPolicy may return instead of a delay: the message is lost.
/// This steps OUTSIDE the Srikanth–Toueg model (which guarantees delivery
/// within tdel between correct processes); it exists for the dynamic-network
/// workloads — partitions that later heal — where the paper's liveness
/// guarantees are deliberately suspended for a window.
inline constexpr Duration kDropMessage = -1.0;

class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;

  /// Delay for a message on the directed link from honest `from` to honest
  /// `to`, sent at `now`. Must lie in [0, tdel], or be exactly kDropMessage
  /// to lose the message.
  [[nodiscard]] virtual Duration delay(NodeId from, NodeId to, RealTime now, Duration tdel,
                                       Rng& rng) = 0;

  /// Lower bound on every value delay() can return for the given tdel (drops
  /// excluded — kDropMessage creates no event, so it cannot shrink the
  /// causality window). This is the conservative-PDES lookahead contract: the
  /// parallel simulator executes events inside [t, t + min_delay) on a worker
  /// pool, relying on no cross-node interaction within the window. The bound
  /// must be exact in floating point: for any delay d the policy returns,
  /// d >= min_delay(tdel) as doubles. The default (0) is always sound and
  /// simply disables parallel execution for the policy.
  [[nodiscard]] virtual Duration min_delay(Duration tdel) const {
    (void)tdel;
    return 0.0;
  }

  /// Called once by the simulator, before any delay() call, when the run has
  /// an explicit topology. The default keeps node-keyed policies working
  /// bit-exactly as before; override to size per-link state or key decisions
  /// on the graph. `topo` outlives the simulation.
  virtual void on_topology(const Topology& topo) { (void)topo; }

  /// Called at every topology-schedule epoch switch (dynamic runs only; a
  /// static run never calls this) with the graph that just went live, before
  /// any delay() at or after `at`. Policies that cached per-link state from
  /// on_topology() refresh it here. `topo` outlives the epoch.
  virtual void on_topology_change(const Topology& topo, RealTime at) {
    (void)topo;
    (void)at;
  }
};

/// Every message takes exactly `fraction * tdel`.
class FixedDelay final : public DelayPolicy {
 public:
  explicit FixedDelay(double fraction);
  [[nodiscard]] Duration delay(NodeId, NodeId, RealTime, Duration tdel, Rng&) override;
  [[nodiscard]] Duration min_delay(Duration tdel) const override;

 private:
  double fraction_;
};

/// Delay uniform in [lo_fraction, hi_fraction] * tdel.
class UniformDelay final : public DelayPolicy {
 public:
  UniformDelay(double lo_fraction, double hi_fraction);
  [[nodiscard]] Duration delay(NodeId, NodeId, RealTime, Duration tdel, Rng& rng) override;
  [[nodiscard]] Duration min_delay(Duration tdel) const override;

 private:
  double lo_, hi_;
};

/// Heterogeneous per-link latency: each *directed* link (from, to) gets its
/// own fixed fraction of tdel, drawn once by hashing (seed, from, to) into
/// [lo_fraction, hi_fraction]. Models a WAN where every link has a stable
/// but different latency — the simplest genuinely link-keyed policy, and
/// stateless: no table, so it works for any n and any topology.
class LinkDelay final : public DelayPolicy {
 public:
  LinkDelay(double lo_fraction, double hi_fraction, std::uint64_t seed);
  [[nodiscard]] Duration delay(NodeId from, NodeId to, RealTime, Duration tdel,
                               Rng&) override;
  [[nodiscard]] Duration min_delay(Duration tdel) const override;

 private:
  double lo_, hi_;
  std::uint64_t seed_;
};

}  // namespace stclock
