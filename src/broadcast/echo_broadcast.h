#pragma once

#include <map>
#include <set>

#include "broadcast/primitive.h"

/// Signature-free broadcast primitive (the paper's simulation of
/// authenticated broadcast; the ancestor of Byzantine reliable broadcast).
///
/// Ready processes broadcast (init, k). A process broadcasts (echo, k) on
/// receiving f+1 (init, k) *or* f+1 (echo, k) from distinct senders, and
/// accepts on 2f+1 (echo, k). Requires n >= 3f+1:
///
///  - Unforgeability: 2f+1 echoes contain >= f+1 correct echoes; a correct
///    echo traces back (inductively) to f+1 inits, of which one is correct.
///  - Correctness: f+1 correct inits reach everyone within tdel; then all
///    n-f >= 2f+1 correct processes echo, so everyone accepts within 2*tdel.
///  - Relay: acceptance implies f+1 correct echoes already sent; they reach
///    everyone within tdel, triggering the remaining correct echoes, so all
///    accept within 2*tdel.
///
/// Acceptance spread: D = 2 * tdel.
namespace stclock {

class EchoBroadcast final : public BroadcastPrimitive {
 public:
  /// `fanin` = peers each node hears on the broadcast fabric (0 = the full
  /// fleet): both thresholds are scaled_threshold(...) of the paper's f + 1
  /// and 2f + 1, so the default keeps them exactly.
  EchoBroadcast(std::uint32_t n, std::uint32_t f, std::uint32_t fanin = 0);

  void broadcast_ready(Context& ctx, Round k) override;
  bool handle_message(Context& ctx, NodeId from, const Message& m) override;
  void forget_below(Round floor) override;
  [[nodiscard]] Duration accept_spread(Duration tdel) const override { return 2 * tdel; }
  /// Same corruption surface as AuthBroadcast: floor plus per-round buffers.
  void corrupt_state(Rng& rng) override;
  void stabilize(Round expected_floor) override;

  [[nodiscard]] std::uint32_t echo_threshold() const { return echo_threshold_; }
  [[nodiscard]] std::uint32_t accept_threshold() const { return accept_threshold_; }

 private:
  struct RoundState {
    std::set<NodeId> init_from;
    std::set<NodeId> echo_from;
    bool sent_init = false;
    bool sent_echo = false;
    bool accepted = false;
  };

  void maybe_progress(Context& ctx, Round k, RoundState& state);

  std::uint32_t n_;
  std::uint32_t f_;
  std::uint32_t echo_threshold_;
  std::uint32_t accept_threshold_;
  Round floor_ = 0;
  std::map<Round, RoundState> rounds_;
};

}  // namespace stclock
