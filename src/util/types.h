#pragma once

#include <cstdint>
#include <limits>

/// Basic vocabulary types shared by every module.
///
/// Time is continuous in the Srikanth–Toueg model, so we represent both real
/// ("Newtonian") time and per-node local (hardware/logical) time as double
/// seconds. Real and local time are deliberately distinct aliases so that
/// signatures document which frame a value lives in; the clock classes in
/// `clocks/` are the only code that converts between the two frames.
namespace stclock {

/// Real (global, true) time in seconds. Only the simulator sees this frame.
using RealTime = double;

/// Local time in seconds, as measured by one node's hardware/logical clock.
using LocalTime = double;

/// A span of time, valid in either frame.
using Duration = double;

/// Index of a process in [0, n).
using NodeId = std::uint32_t;

/// Resynchronization round number (first resynchronization is round 1).
using Round = std::uint64_t;

inline constexpr RealTime kTimeInfinity = std::numeric_limits<double>::infinity();

/// Returns the ceiling of a/b for positive integers (used for f-bounds like
/// ceil(n/2) - 1 without floating point).
[[nodiscard]] constexpr std::uint32_t ceil_div(std::uint32_t a, std::uint32_t b) {
  return (a + b - 1) / b;
}

/// Maximum number of Byzantine faults tolerated by the authenticated
/// algorithm: f <= ceil(n/2) - 1, i.e. n >= 2f + 1.
[[nodiscard]] constexpr std::uint32_t max_faults_authenticated(std::uint32_t n) {
  return ceil_div(n, 2) - 1;
}

/// Maximum number of Byzantine faults tolerated by the signature-free
/// (init/echo) algorithm: f <= ceil(n/3) - 1, i.e. n >= 3f + 1.
[[nodiscard]] constexpr std::uint32_t max_faults_echo(std::uint32_t n) {
  return ceil_div(n, 3) - 1;
}

}  // namespace stclock
