#pragma once

#include <cstddef>
#include <vector>

/// Small statistics helpers used by the metrics and benchmark code.
namespace stclock {

/// Online accumulator for min/max/mean/variance (Welford). O(1) memory; does
/// not support percentiles — use Samples for that.
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::size_t n_ = 0;
  double min_ = 0, max_ = 0, mean_ = 0, m2_ = 0;
};

/// Stores all samples; supports percentiles. Use for modest sample counts.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  void reserve(std::size_t n) { xs_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50); }

  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  void ensure_sorted() const;
};

/// Least-squares fit of y = a + b*x; used by the accuracy-envelope estimator
/// to measure the long-run rate of logical clocks against real time.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
};

[[nodiscard]] LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace stclock
