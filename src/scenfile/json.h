#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// Minimal strict JSON for the scenario-file layer (src/scenfile/).
///
/// The repo deliberately carries no third-party JSON dependency; scenario
/// files need only a small, strict subset: UTF-8 text, RFC 8259 grammar, no
/// comments, no trailing commas, and — stricter than the RFC — duplicate
/// object keys are errors (a duplicated axis or field in a scenario file is
/// always a mistake). Every value remembers its source line so the
/// deserializer can point at the offending field, not just "bad file".
namespace stclock::scenfile {

/// Error type for the whole scenario-file layer. what() always carries
/// "source:line:" context plus the field path where applicable, so a failing
/// grid file names the exact field that broke.
class ScenarioFileError : public std::runtime_error {
 public:
  explicit ScenarioFileError(const std::string& msg) : std::runtime_error(msg) {}
};

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  /// For numbers: the original token text. Integer fields re-parse this so
  /// 64-bit seeds survive without passing through a double.
  std::string raw;
  /// For strings: the unescaped contents.
  std::string text;
  std::vector<JsonValue> array;
  /// Insertion-ordered; duplicate keys were rejected by the parser.
  std::vector<std::pair<std::string, JsonValue>> object;
  /// 1-based source line of the value's first token.
  int line = 0;

  /// Object member lookup; nullptr when missing (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  [[nodiscard]] const char* kind_name() const;
};

/// Parses one JSON document (rejecting trailing garbage). `source` names the
/// input in error messages — a file path or "<inline>".
[[nodiscard]] JsonValue parse_json(std::string_view input, const std::string& source);

}  // namespace stclock::scenfile
