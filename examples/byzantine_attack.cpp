// Byzantine attack demo: what the adversary can (and cannot) do.
//
// Runs a 7-node system with 3 actively malicious nodes (the authenticated
// maximum) through every implemented attack strategy, then deliberately
// over-corrupts the system to show where the guarantees genuinely stop.

#include <iostream>

#include "core/runner.h"
#include "util/table.h"

int main() {
  using namespace stclock;

  SyncConfig cfg;
  cfg.n = 7;
  cfg.f = 3;  // ceil(7/2) - 1: every second node may be malicious
  cfg.rho = 1e-4;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;

  std::cout << "System: n=7, f=3 (authenticated). Every attack below controls 3 nodes\n"
               "with full knowledge of the system state and of all message timing.\n\n";

  Table table({"attack", "what it tries", "skew(s)", "Dmax(s)", "held?"});
  const struct {
    AttackKind kind;
    const char* description;
  } attacks[] = {
      {AttackKind::kCrash, "silence (reduce redundancy)"},
      {AttackKind::kSpamEarly, "pre-delivered signatures (race the clock)"},
      {AttackKind::kEquivocate, "tell half the system a different story"},
      {AttackKind::kReplay, "replay stale round messages"},
      {AttackKind::kForge, "fabricate honest nodes' signatures"},
  };

  for (const auto& attack : attacks) {
    RunSpec spec;
    spec.cfg = cfg;
    spec.seed = 7;
    spec.horizon = 20.0;
    spec.drift = DriftKind::kExtremal;
    spec.delay = DelayKind::kSplit;
    spec.attack = attack.kind;
    const RunResult r = run_sync(spec);
    const bool held = r.live && r.steady_skew <= r.bounds.precision;
    table.add_row({attack_name(attack.kind), attack.description,
                   Table::sci(r.steady_skew), Table::sci(r.bounds.precision),
                   held ? "yes" : "NO"});
  }
  table.print(std::cout);

  // And now the honest answer about where the guarantee ends.
  std::cout << "\nOver-corrupting the same system (4 nodes = f+1, spam-early):\n";
  RunSpec breakdown;
  breakdown.cfg = cfg;
  breakdown.seed = 7;
  breakdown.horizon = 20.0;
  breakdown.drift = DriftKind::kExtremal;
  breakdown.delay = DelayKind::kZero;
  breakdown.attack = AttackKind::kSpamEarly;
  breakdown.corrupt_override = 4;
  const RunResult r = run_sync(breakdown);
  std::cout << "  min inter-pulse period: " << Table::num(r.min_period, 4)
            << " s (floor was " << Table::num(r.bounds.min_period, 4) << " s)\n"
            << "  -> with f+1 corrupted nodes the adversary assembles signature\n"
            << "     quorums alone and drives pulses at will; resilience ceil(n/2)-1\n"
            << "     is tight, exactly as the paper proves.\n";
  return 0;
}
