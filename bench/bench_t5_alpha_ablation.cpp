// Experiment T5 — Ablation of the adjustment constant alpha.
//
// The paper sets alpha = (1+rho) * D (one maximal acceptance latency). This
// ablation shows the trade-off the choice navigates: small alpha shrinks the
// skew contribution of the reset itself, while large alpha eats into the
// effective period (P - alpha), raising both the pulse rate ceiling and the
// drift-accumulation term. Correctness holds for any alpha in (0, P).

#include "bench_common.h"

namespace stclock {
namespace {

void sweep(Table& table, const SyncConfig& base, std::uint64_t seed) {
  const Duration alpha_default = theory::resolve_alpha(base);
  for (const double mult : {0.25, 0.5, 1.0, 2.0, 8.0, 32.0}) {
    SyncConfig cfg = base;
    cfg.alpha = mult * alpha_default;
    const RunSpec spec = bench::adversarial_spec(cfg, 30.0, seed);
    const RunResult r = run_sync(spec);
    table.add_row({cfg.variant_name(), Table::num(mult, 2),
                   Table::num(cfg.alpha * 1e3, 2), Table::sci(r.steady_skew),
                   Table::sci(r.bounds.precision),
                   Table::num(r.envelope.max_rate, 6),
                   Table::num(r.bounds.rate_hi, 6), Table::num(r.min_period, 3),
                   r.live ? "yes" : "NO"});
  }
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("T5 — alpha ablation",
                      "alpha = (1+rho)*D balances skew against period/rate inflation");

  Table table({"variant", "alpha/default", "alpha(ms)", "skew(s)", "Dmax(s)",
               "max rate", "rate bound", "min period(s)", "live"});
  sweep(table, bench::default_auth_config(), opts.seed);
  sweep(table, bench::default_echo_config(), opts.seed);
  stclock::bench::emit(table, opts);
  std::cout << "(expect: skew within Dmax for all alpha; rate ceiling and min-period\n"
               " degradation grow with alpha — the paper's default keeps both negligible)\n";
  return 0;
}
