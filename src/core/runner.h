#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "adversary/strategies.h"
#include "core/config.h"
#include "core/theory.h"
#include "experiment/environment.h"
#include "trace/envelope.h"

/// One-call experiment runner for the Srikanth–Toueg protocol.
///
/// This is now a thin shim over the unified scenario engine
/// (experiment/scenario.h): a RunSpec maps 1:1 onto a ScenarioSpec with
/// protocol "auth" or "echo", and run_sync() reproduces seed-identical
/// metrics through experiment::run_scenario(). New code should use the
/// scenario API directly — it runs baselines and sweeps through the same
/// engine; this entry point remains for its concise ST-only signature.
namespace stclock {

struct RunSpec {
  SyncConfig cfg;
  std::uint64_t seed = 1;
  RealTime horizon = 30.0;
  DriftKind drift = DriftKind::kRandomWalk;
  DelayKind delay = DelayKind::kUniform;
  AttackKind attack = AttackKind::kNone;

  /// The last `joiners` honest nodes boot at `join_time` and integrate
  /// passively instead of starting at time 0.
  std::uint32_t joiners = 0;
  RealTime join_time = 10.0;

  /// If non-zero, the adversary controls this many nodes regardless of
  /// cfg.f (which the protocol still uses for its thresholds). Setting it
  /// above the variant's resilience bound demonstrates breakdown (T2).
  std::uint32_t corrupt_override = 0;

  /// Metric sampling granularity.
  Duration skew_series_interval = 0.05;
  Duration envelope_interval = 0.1;
};

struct RunResult {
  theory::Bounds bounds;  ///< the config's derived theoretical bounds

  // Precision.
  double max_skew = 0;     ///< sup spread of honest logical clocks, whole run
  double steady_skew = 0;  ///< same, after the convergence prefix
  std::vector<std::pair<RealTime, double>> skew_series;

  // Pulses (acceptance events).
  double pulse_spread = 0;   ///< max over rounds of acceptance real-time spread
  double min_period = 0;     ///< min observed per-node inter-pulse gap
  double max_period = 0;     ///< max observed per-node inter-pulse gap
  std::uint64_t min_pulses = 0;
  std::uint64_t max_pulses = 0;
  bool live = false;  ///< every honest node keeps pulsing (no stall / split)

  // Accuracy.
  EnvelopeTracker::Report envelope;
  /// Least-squares slopes over a finite window carry O(precision / window)
  /// noise from the sawtooth of corrections; compare fitted rates against
  /// [rate_lo - tol, rate_hi + tol] with this tol.
  double rate_fit_tolerance = 0;

  // Integration (when spec.joiners > 0).
  double join_latency = -1;  ///< worst joiner: first pulse time - boot time
  bool joiners_integrated = false;

  // Cost.
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t rounds_completed = 0;  ///< min over honest nodes of last round
};

/// Runs the Srikanth–Toueg protocol per `spec` and collects all metrics.
[[nodiscard]] RunResult run_sync(const RunSpec& spec);

}  // namespace stclock
