#pragma once

#include <string>
#include <vector>

#include "experiment/scenario.h"

/// Scenario specs pinned by the golden trace-equivalence test
/// (test_golden_trace.cpp). The expected metric values in that test were
/// captured from these exact specs before the hot-path refactor (message
/// interning, slab event queue, enum counters) landed; re-running them must
/// reproduce every metric bit-for-bit. Regenerate with the recipe documented
/// in test_golden_trace.cpp if a *deliberate* semantic change lands.
namespace stclock::experiment::golden {

inline std::vector<ScenarioSpec> specs() {
  std::vector<ScenarioSpec> out;

  auto base = [](const char* protocol, std::uint32_t f, std::uint64_t seed) {
    ScenarioSpec spec;
    spec.protocol = protocol;
    spec.cfg.n = 7;
    spec.cfg.f = f;
    spec.cfg.rho = 1e-4;
    spec.cfg.tdel = 0.01;
    spec.cfg.period = 1.0;
    spec.cfg.initial_sync = 0.005;
    spec.seed = seed;
    spec.horizon = 10.0;
    spec.drift = DriftKind::kRandomWalk;
    spec.delay = DelayKind::kUniform;
    return spec;
  };

  // Authenticated variant under the spam-early flood, three seeds: the
  // O(n^2) signature-relay path the interning change rewrites.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    ScenarioSpec spec = base("auth", 3, seed);
    spec.attack = AttackKind::kSpamEarly;
    out.push_back(spec);
  }

  // Echo variant under replay, two seeds: the signature-free primitive plus
  // the adversary stash/delivery path.
  for (const std::uint64_t seed : {1ULL, 4ULL}) {
    ScenarioSpec spec = base("echo", 2, seed);
    spec.attack = AttackKind::kReplay;
    out.push_back(spec);
  }

  // A late joiner integrating mid-run: exercises start timers and the
  // cancel/re-arm churn of the flat timer table.
  {
    ScenarioSpec spec = base("auth", 2, 5);
    spec.attack = AttackKind::kEquivocate;
    spec.joiners = 1;
    spec.join_time = 4.0;
    spec.horizon = 15.0;
    out.push_back(spec);
  }

  // A baseline (no pulses, kBaseline engine mode) under its matched attack.
  {
    ScenarioSpec spec = base("lundelius_welch", 2, 6);
    spec.attack = AttackKind::kLwPull;
    out.push_back(spec);
  }

  // Churn: two nodes crash mid-run and reintegrate through the joiner path
  // (PR-3 workload). Pins the stop-timer path, per-node timer cancellation,
  // and the rebuilt process's passive integration.
  {
    ScenarioSpec spec = base("auth", 2, 7);
    spec.attack = AttackKind::kCrash;
    spec.churn_nodes = 2;
    spec.churn_leave = 3.0;
    spec.churn_rejoin = 6.0;
    spec.horizon = 12.0;
    out.push_back(spec);
  }

  // Partition/heal: nodes {0, 1} cut off for two periods, then healed (PR-3
  // workload). Pins the drop path in honest_send and the healed re-sync.
  {
    ScenarioSpec spec = base("echo", 2, 8);
    spec.partition_group = 2;
    spec.partition_start = 4.0;
    spec.partition_end = 6.0;
    spec.horizon = 12.0;
    out.push_back(spec);
  }

  // Ring topology (PR-4 workload): broadcasts reach only the two ring
  // neighbors, so the authenticated variant synchronizes by relay-flooding
  // and local skew becomes a distinct metric. No faults — resilience bounds
  // on sparse graphs are outside the paper's model.
  for (const char* protocol : {"auth", "echo"}) {
    ScenarioSpec spec = base(protocol, 0, 9);
    spec.cfg.n = 8;
    spec.topology = TopologyKind::kRing;
    spec.horizon = 8.0;
    out.push_back(spec);
  }

  // Seeded G(n, p) topology (PR-4 workload): a connected random graph with
  // a crash-faulty node, pinning the gnp generator, the neighbor fan-out,
  // and the adversary's neighbor-restricted flood.
  for (const char* protocol : {"auth", "echo"}) {
    ScenarioSpec spec = base(protocol, 1, 10);
    spec.cfg.n = 9;
    spec.topology = TopologyKind::kGnp;
    spec.gnp_p = 0.75;
    spec.topology_seed = 5;
    spec.attack = AttackKind::kCrash;
    spec.horizon = 8.0;
    out.push_back(spec);
  }

  // Dynamic ring with an edge-failure window (PR-5 workload): the {0, 1}
  // ring edge fails at t=2.5 and heals at t=5.5. The graph stays connected
  // throughout (traffic takes the long way around), so liveness holds while
  // the epoch switches reroute every broadcast and move the local-skew
  // adjacency. Pins the whole topology-schedule machinery: compile, epoch
  // timers, live-graph fan-out, and epoch-aware skew tracking.
  for (const char* protocol : {"auth", "echo"}) {
    ScenarioSpec spec = base(protocol, 0, 12);
    spec.cfg.n = 8;
    spec.topology = TopologyKind::kRing;
    spec.topology_events = {
        {TopologyEventSpec::Kind::kRemoveEdge, 2.5, 0, 1, TopologyKind::kRing},
        {TopologyEventSpec::Kind::kAddEdge, 5.5, 0, 1, TopologyKind::kRing},
    };
    spec.horizon = 8.0;
    out.push_back(spec);
  }

  // Fault injection (PR-7): one full-fraction corruption event on the
  // static ring, plain auth vs the self-stabilizing variant on the SAME
  // spec. The pair pins the whole corruption engine — victim selection,
  // per-victim scramble draws, buffer purge — plus the stabilization
  // metric for both outcomes: auth never recovers (its timers died with
  // its memory), auth_stab's watchdog restabilizes well before the
  // horizon.
  for (const char* protocol : {"auth", "auth_stab"}) {
    ScenarioSpec spec = base(protocol, 0, 11);
    spec.cfg.n = 8;
    spec.topology = TopologyKind::kRing;
    spec.horizon = 20.0;
    spec.corrupt_at = {4.25};
    out.push_back(spec);
  }

  // The gradient baseline on the static ring (PR-5): the first protocol
  // whose figure of merit IS the local skew — neighbors average each other's
  // readings, so the metric the topology layer introduced finally has a
  // protocol optimizing it (a dedicated test asserts it beats "leader").
  {
    ScenarioSpec spec = base("gradient", 0, 9);
    spec.cfg.n = 8;
    spec.topology = TopologyKind::kRing;
    spec.horizon = 8.0;
    out.push_back(spec);
  }

  // Sparse broadcast fabric (PR-9): auth on a k=4 expander with neighbors
  // fan-out, and auth on the complete graph with sampled fan-out (m=3 from
  // the dedicated broadcast RNG stream). Pins the expander edge set, the
  // quorum scaling, and the sampled draw sequence — appended after all
  // earlier rows, which must stay untouched by the new stream's existence.
  {
    ScenarioSpec spec = base("auth", 0, 13);
    spec.cfg.n = 8;
    spec.topology = TopologyKind::kExpander;
    spec.expander_k = 4;
    spec.topology_seed = 7;
    spec.broadcast_mode = BroadcastMode::kNeighbors;
    spec.horizon = 8.0;
    out.push_back(spec);
  }
  {
    ScenarioSpec spec = base("auth", 0, 14);
    spec.cfg.n = 8;
    spec.broadcast_mode = BroadcastMode::kSampled;
    spec.sample_size = 3;
    spec.horizon = 8.0;
    out.push_back(spec);
  }

  return out;
}

}  // namespace stclock::experiment::golden
