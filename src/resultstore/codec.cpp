#include "resultstore/codec.h"

#include <stdexcept>

namespace stclock::resultstore {

namespace {

void put_bounds(ByteWriter& w, const theory::Bounds& b) {
  w.f64(b.accept_spread);
  w.f64(b.alpha);
  w.f64(b.gamma);
  w.f64(b.precision);
  w.f64(b.pulse_spread);
  w.f64(b.min_period);
  w.f64(b.max_period);
  w.f64(b.rate_lo);
  w.f64(b.rate_hi);
}

theory::Bounds get_bounds(ByteReader& r) {
  theory::Bounds b;
  b.accept_spread = r.f64();
  b.alpha = r.f64();
  b.gamma = r.f64();
  b.precision = r.f64();
  b.pulse_spread = r.f64();
  b.min_period = r.f64();
  b.max_period = r.f64();
  b.rate_lo = r.f64();
  b.rate_hi = r.f64();
  return b;
}

}  // namespace

Bytes encode_result(const experiment::ScenarioResult& r) {
  ByteWriter w;
  w.u32(kResultCodecVersion);
  w.str(r.protocol);
  put_bounds(w, r.bounds);
  w.f64(r.max_skew);
  w.f64(r.steady_skew);
  w.f64(r.local_skew);
  w.f64(r.steady_local_skew);
  w.u64(r.skew_series.size());
  for (const auto& [t, skew] : r.skew_series) {
    w.f64(t);
    w.f64(skew);
  }
  w.f64(r.pulse_spread);
  w.f64(r.min_period);
  w.f64(r.max_period);
  w.u64(r.min_pulses);
  w.u64(r.max_pulses);
  w.u8(r.live ? 1 : 0);
  w.f64(r.envelope.min_rate);
  w.f64(r.envelope.max_rate);
  w.f64(r.envelope.upper_offset);
  w.f64(r.envelope.lower_offset);
  w.f64(r.rate_fit_tolerance);
  w.f64(r.join_latency);
  w.u8(r.joiners_integrated ? 1 : 0);
  w.f64(r.rejoin_latency);
  w.u8(r.churned_rejoined ? 1 : 0);
  w.u64(r.topology_epochs);
  w.u64(r.corruption_events);
  w.u64(r.nodes_corrupted);
  w.u8(r.stabilized ? 1 : 0);
  w.f64(r.stabilization_time);
  w.u64(r.messages_sent);
  w.u64(r.bytes_sent);
  w.u64(r.messages_dropped);
  w.u64(r.events_dispatched);
  w.u64(r.rounds_completed);
  return std::move(w).take();
}

experiment::ScenarioResult decode_result(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const std::uint32_t version = r.u32();
  if (version != kResultCodecVersion) {
    throw std::logic_error("resultstore codec: unsupported record version");
  }
  experiment::ScenarioResult out;
  out.protocol = r.str();
  out.bounds = get_bounds(r);
  out.max_skew = r.f64();
  out.steady_skew = r.f64();
  out.local_skew = r.f64();
  out.steady_local_skew = r.f64();
  const std::uint64_t samples = r.u64();
  // A length prefix larger than the remaining payload is corruption; fail
  // before allocating.
  if (samples > r.remaining() / 16) {
    throw std::logic_error("resultstore codec: skew series length exceeds payload");
  }
  out.skew_series.reserve(static_cast<std::size_t>(samples));
  for (std::uint64_t i = 0; i < samples; ++i) {
    const double t = r.f64();
    const double skew = r.f64();
    out.skew_series.emplace_back(t, skew);
  }
  out.pulse_spread = r.f64();
  out.min_period = r.f64();
  out.max_period = r.f64();
  out.min_pulses = r.u64();
  out.max_pulses = r.u64();
  out.live = r.u8() != 0;
  out.envelope.min_rate = r.f64();
  out.envelope.max_rate = r.f64();
  out.envelope.upper_offset = r.f64();
  out.envelope.lower_offset = r.f64();
  out.rate_fit_tolerance = r.f64();
  out.join_latency = r.f64();
  out.joiners_integrated = r.u8() != 0;
  out.rejoin_latency = r.f64();
  out.churned_rejoined = r.u8() != 0;
  out.topology_epochs = r.u64();
  out.corruption_events = r.u64();
  out.nodes_corrupted = r.u64();
  out.stabilized = r.u8() != 0;
  out.stabilization_time = r.f64();
  out.messages_sent = r.u64();
  out.bytes_sent = r.u64();
  out.messages_dropped = r.u64();
  out.events_dispatched = r.u64();
  out.rounds_completed = r.u64();
  if (!r.exhausted()) {
    throw std::logic_error("resultstore codec: trailing bytes after record");
  }
  return out;
}

}  // namespace stclock::resultstore
