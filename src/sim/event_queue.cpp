#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.h"

namespace stclock {

namespace {

constexpr RealTime kInf = std::numeric_limits<RealTime>::infinity();

/// The one total order everything here serves: (time, seq) ascending.
bool entry_before(const RealTime ta, const std::uint64_t sa, const RealTime tb,
                  const std::uint64_t sb) {
  if (ta != tb) return ta < tb;
  return sa < sb;
}

}  // namespace

void EventQueue::reserve(std::size_t events) {
  slab_.reserve(events);
  free_slots_.reserve(events);
  top_.reserve(events);
}

void EventQueue::push_timer(RealTime time, TimerEvent ev) {
  ST_REQUIRE(time >= 0, "EventQueue: negative event time");
  push_entry(time, Entry{time, next_seq_++, ev.id, ev.node, true});
}

void EventQueue::push_delivery(RealTime time, DeliveryEvent ev) {
  ST_REQUIRE(time >= 0, "EventQueue: negative event time");
  ST_REQUIRE(ev.msg != nullptr, "EventQueue: null message");
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(std::move(ev));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot] = std::move(ev);
  }
  push_entry(time, Entry{time, next_seq_++, 0, slot, false});
}

void EventQueue::push_entry(RealTime time, Entry e) {
  ST_REQUIRE(time >= last_pop_time_,
             "EventQueue: push earlier than the last pop (the simulator only "
             "schedules into the future)");
  if (time < bot_end_) {
    // Within the bottom list's window. The new entry carries the largest
    // seq, so a push at or past the current tail time appends in O(1) —
    // which covers the common same-time cohort storm exactly.
    if (bottom_.size() == bot_head_ || !(time < bottom_.back().time)) {
      bottom_.push_back(e);
    } else {
      const auto it =
          std::upper_bound(bottom_.begin() + static_cast<std::ptrdiff_t>(bot_head_),
                           bottom_.end(), time,
                           [](RealTime t, const Entry& x) { return t < x.time; });
      bottom_.insert(it, e);
    }
    maybe_rebalance_bottom();
  } else {
    bool placed = false;
    for (auto it = rungs_.rbegin(); it != rungs_.rend(); ++it) {
      if (time < it->end) {
        const std::size_t nb = it->buckets.size();
        const std::size_t idx = std::min(raw_index(*it, time), nb - 1);
        ST_ASSERT(idx >= it->cur, "EventQueue: routed into a drained bucket");
        it->buckets[idx].push_back(e);
        placed = true;
        break;
      }
    }
    if (!placed) {
      if (top_.empty()) {
        top_min_ = top_max_ = time;
      } else {
        top_min_ = std::min(top_min_, time);
        top_max_ = std::max(top_max_, time);
      }
      top_.push_back(e);
    }
  }
  ++size_;
}

void EventQueue::maybe_rebalance_bottom() {
  // Only the rung-less regime can grow the bottom without bound (bot_end_ is
  // infinite after a wholesale top transfer); with rungs armed the window is
  // one bucket wide. Push the tail back out to the top — cheap, unsorted —
  // keeping at least kBottomKeep entries and never splitting a time cohort.
  if (!rungs_.empty() || bottom_active() <= tuning_.bottom_overflow) return;
  const Entry& keep_last = bottom_[bot_head_ + kBottomKeep - 1];
  if (!(keep_last.time < bottom_.back().time)) return;  // one cohort, nothing to move
  const auto split =
      std::upper_bound(bottom_.begin() + static_cast<std::ptrdiff_t>(bot_head_ + kBottomKeep),
                       bottom_.end(), keep_last.time,
                       [](RealTime t, const Entry& x) { return t < x.time; });
  for (auto it = split; it != bottom_.end(); ++it) {
    if (top_.empty()) {
      top_min_ = top_max_ = it->time;
    } else {
      top_min_ = std::min(top_min_, it->time);
      top_max_ = std::max(top_max_, it->time);
    }
    top_.push_back(*it);
  }
  bot_end_ = split->time;
  bottom_.erase(split, bottom_.end());
}

std::size_t EventQueue::raw_index(const Rung& r, RealTime t) {
  const double v = std::floor((t - r.start) / r.width);
  if (v <= 0) return 0;
  return static_cast<std::size_t>(v);
}

RealTime EventQueue::bucket_boundary(const Rung& r, std::size_t k) {
  // start + k * width is only approximately the boundary; nudge by ulps
  // until it is the exact smallest time that indexes into bucket k. floor
  // and the subtract/divide are monotone, so the walk is well-defined.
  RealTime c = r.start + static_cast<double>(k) * r.width;
  while (raw_index(r, c) < k) c = std::nextafter(c, kInf);
  for (;;) {
    const RealTime p = std::nextafter(c, -kInf);
    if (p < r.start || raw_index(r, p) < k) break;
    c = p;
  }
  return c;
}

void EventQueue::ensure_bottom() {
  while (bot_head_ == bottom_.size()) {
    bottom_.clear();
    bot_head_ = 0;
    if (!rungs_.empty()) {
      refill_from_rung();
    } else {
      ST_ASSERT(!top_.empty(), "EventQueue: size_ > 0 but no entries staged");
      transfer_top();
    }
  }
}

void EventQueue::refill_from_rung() {
  Rung& r = rungs_.back();
  const std::size_t nb = r.buckets.size();
  while (r.cur < nb && r.buckets[r.cur].empty()) ++r.cur;
  if (r.cur == nb) {
    rungs_.pop_back();
    return;
  }
  std::vector<Entry>& bucket = r.buckets[r.cur];
  const RealTime lower = r.cur == 0 ? r.start : bucket_boundary(r, r.cur);
  const RealTime upper = r.cur + 1 == nb ? r.end : bucket_boundary(r, r.cur + 1);

  if (bucket.size() > tuning_.spawn_threshold && rungs_.size() < kMaxRungs) {
    RealTime mn = bucket.front().time, mx = bucket.front().time;
    for (const Entry& e : bucket) {
      mn = std::min(mn, e.time);
      mx = std::max(mx, e.time);
    }
    const std::size_t cnb = std::clamp(bucket.size(), kMinBuckets, kMaxBuckets);
    const double w = (upper - lower) / static_cast<double>(cnb);
    // A bucket of identical times cannot subdivide (and needs no sorting
    // beyond seq); a width that rounds away cannot either.
    if (mx > mn && lower + w > lower) {
      Rung child;
      child.start = lower;
      child.width = w;
      child.end = upper;
      child.buckets.resize(cnb);
      for (const Entry& e : bucket) {
        child.buckets[std::min(raw_index(child, e.time), cnb - 1)].push_back(e);
      }
      bucket.clear();
      bucket.shrink_to_fit();
      ++r.cur;  // the parent bucket's interval now belongs to the child
      rungs_.push_back(std::move(child));
      return;  // ensure_bottom loops and drains the child instead
    }
  }

  std::sort(bucket.begin(), bucket.end(), [](const Entry& a, const Entry& b) {
    return entry_before(a.time, a.seq, b.time, b.seq);
  });
  bottom_ = std::move(bucket);
  bucket = std::vector<Entry>{};  // leave the moved-from slot truly empty
  ++r.cur;
  bot_end_ = upper;
}

void EventQueue::transfer_top() {
  if (top_.size() <= tuning_.spawn_threshold || !(top_min_ < top_max_)) {
    std::sort(top_.begin(), top_.end(), [](const Entry& a, const Entry& b) {
      return entry_before(a.time, a.seq, b.time, b.seq);
    });
    bottom_ = std::move(top_);
    top_ = std::vector<Entry>{};
    // Nothing is staged beyond the bottom list now, so it owns all time;
    // maybe_rebalance_bottom sheds back to the top if pushes pile up.
    bot_end_ = kInf;
    return;
  }
  Rung rung;
  rung.start = top_min_;
  // nextafter so a future push at exactly top_max_ still routes into the
  // rung (its interval is half-open).
  rung.end = std::nextafter(top_max_, kInf);
  const std::size_t nb = std::clamp(top_.size(), kMinBuckets, kMaxBuckets);
  rung.width = (rung.end - rung.start) / static_cast<double>(nb);
  if (!(rung.start + rung.width > rung.start)) {
    // Range too narrow to bucket (a few ulps): degrade to the direct sort.
    std::sort(top_.begin(), top_.end(), [](const Entry& a, const Entry& b) {
      return entry_before(a.time, a.seq, b.time, b.seq);
    });
    bottom_ = std::move(top_);
    top_ = std::vector<Entry>{};
    bot_end_ = kInf;
    return;
  }
  rung.buckets.resize(nb);
  for (const Entry& e : top_) {
    rung.buckets[std::min(raw_index(rung, e.time), nb - 1)].push_back(e);
  }
  top_.clear();
  rungs_.push_back(std::move(rung));
}

RealTime EventQueue::next_time() {
  ST_REQUIRE(size_ > 0, "EventQueue: next_time on empty queue");
  ensure_bottom();
  return bottom_[bot_head_].time;
}

Event EventQueue::pop() {
  ST_REQUIRE(size_ > 0, "EventQueue: pop on empty queue");
  ensure_bottom();
  const Entry top = bottom_[bot_head_++];
  if (bot_head_ == bottom_.size()) {
    bottom_.clear();
    bot_head_ = 0;
  }
  --size_;
  last_pop_time_ = top.time;

  Event e;
  e.time = top.time;
  e.seq = top.seq;
  e.is_timer = top.is_timer;
  if (top.is_timer) {
    e.timer = TimerEvent{top.node_or_slot, top.timer_id};
  } else {
    e.delivery = std::move(slab_[top.node_or_slot]);
    free_slots_.push_back(top.node_or_slot);
  }
  return e;
}

bool EventQueue::pop_window(RealTime end_exclusive, RealTime horizon, Event& out) {
  if (size_ == 0) return false;
  const RealTime t = next_time();
  if (t >= end_exclusive || t > horizon) return false;
  out = pop();
  return true;
}

}  // namespace stclock
