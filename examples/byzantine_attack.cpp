// Byzantine attack demo: what the adversary can (and cannot) do.
//
// Runs a 7-node system with 3 actively malicious nodes (the authenticated
// maximum) through every implemented attack strategy — one sweep over the
// attack axis, executed on a small worker pool — then deliberately
// over-corrupts the system to show where the guarantees genuinely stop.

#include <iostream>

#include "experiment/sweep.h"
#include "util/table.h"

int main() {
  using namespace stclock;

  experiment::ScenarioSpec base;
  base.protocol = "auth";
  base.cfg.n = 7;
  base.cfg.f = 3;  // ceil(7/2) - 1: every second node may be malicious
  base.cfg.rho = 1e-4;
  base.cfg.tdel = 0.01;
  base.cfg.period = 1.0;
  base.cfg.initial_sync = 0.005;
  base.seed = 7;
  base.horizon = 20.0;
  base.drift = DriftKind::kExtremal;
  base.delay = DelayKind::kSplit;

  std::cout << "System: n=7, f=3 (authenticated). Every attack below controls 3 nodes\n"
               "with full knowledge of the system state and of all message timing.\n\n";

  const struct {
    AttackKind kind;
    const char* description;
  } attacks[] = {
      {AttackKind::kCrash, "silence (reduce redundancy)"},
      {AttackKind::kSpamEarly, "pre-delivered signatures (race the clock)"},
      {AttackKind::kEquivocate, "tell half the system a different story"},
      {AttackKind::kReplay, "replay stale round messages"},
      {AttackKind::kForge, "fabricate honest nodes' signatures"},
  };

  experiment::SweepGrid grid(base);
  std::vector<experiment::SweepGrid::Value> axis;
  for (const auto& attack : attacks) {
    const AttackKind kind = attack.kind;
    axis.emplace_back(attack_name(kind),
                      [kind](experiment::ScenarioSpec& spec) { spec.attack = kind; });
  }
  grid.axis("attack", std::move(axis));
  const std::vector<experiment::SweepCell> cells = grid.cells();
  const std::vector<experiment::ScenarioResult> results =
      experiment::SweepRunner(/*threads=*/0).run(cells);  // 0 = all cores

  Table table({"attack", "what it tries", "skew(s)", "Dmax(s)", "held?"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const experiment::ScenarioResult& r = results[i];
    const bool held = r.live && r.steady_skew <= r.bounds.precision;
    table.add_row({attack_name(attacks[i].kind), attacks[i].description,
                   Table::sci(r.steady_skew), Table::sci(r.bounds.precision),
                   held ? "yes" : "NO"});
  }
  table.print(std::cout);

  // And now the honest answer about where the guarantee ends.
  std::cout << "\nOver-corrupting the same system (4 nodes = f+1, spam-early):\n";
  experiment::ScenarioSpec breakdown = base;
  breakdown.delay = DelayKind::kZero;
  breakdown.attack = AttackKind::kSpamEarly;
  breakdown.corrupt_override = 4;
  const experiment::ScenarioResult r = experiment::run_scenario(breakdown);
  std::cout << "  min inter-pulse period: " << Table::num(r.min_period, 4)
            << " s (floor was " << Table::num(r.bounds.min_period, 4) << " s)\n"
            << "  -> with f+1 corrupted nodes the adversary assembles signature\n"
            << "     quorums alone and drives pulses at will; resilience ceil(n/2)-1\n"
            << "     is tight, exactly as the paper proves.\n";
  return 0;
}
