#include "baselines/leader_sync.h"

#include "util/contracts.h"

namespace stclock::baselines {

LeaderProtocol::LeaderProtocol(NodeId leader, Duration period, Duration nominal_delay)
    : leader_(leader), period_(period), nominal_delay_(nominal_delay) {
  ST_REQUIRE(period > 0, "LeaderProtocol: period must be positive");
}

void LeaderProtocol::on_start(Context& ctx) {
  if (ctx.self() == leader_) {
    timer_ = ctx.set_timer_at_logical(period_ * static_cast<double>(round_));
  }
}

void LeaderProtocol::on_message(Context& ctx, NodeId from, const Message& m) {
  const auto* lt = std::get_if<LeaderTimeMsg>(&m);
  if (lt == nullptr || from != leader_ || ctx.self() == leader_) return;
  // Slave unconditionally to the leader's clock — the whole point of the
  // strawman: there is no quorum between the leader and our clock.
  const Duration delta = (lt->value + nominal_delay_) - ctx.logical_now();
  ctx.logical().adjust_instant(ctx.hardware_now(), delta);
}

void LeaderProtocol::on_timer(Context& ctx, TimerId id) {
  if (id != timer_) return;
  ctx.broadcast(Message(LeaderTimeMsg{round_, ctx.logical_now()}));
  ++round_;
  timer_ = ctx.set_timer_at_logical(period_ * static_cast<double>(round_));
}

BaselineResult run_leader_sync(const BaselineSpec& spec, bool corrupt_leader) {
  // The registry entries carry the leader placement and forced attack: the
  // engine corrupts the highest ids, so "leader_corrupt" leads from the last
  // node, "leader" from node 0 with no attack.
  return to_baseline_result(experiment::run_scenario(
      to_scenario(spec, corrupt_leader ? "leader_corrupt" : "leader")));
}

}  // namespace stclock::baselines
