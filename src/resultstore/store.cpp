#include "resultstore/store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <sstream>
#include <system_error>

#include "resultstore/codec.h"
#include "util/contracts.h"
#include "util/digest.h"

namespace stclock::resultstore {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'S', 'T', 'R', 'E', 'S', 'V', '0', '1'};
constexpr std::size_t kMagicLen = sizeof kMagic;
constexpr std::size_t kTrailerLen = 16;  // payload length u64 + checksum u64

std::uint64_t read_u64le(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void write_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

/// A process-unique staging name: pid + monotonic counter. Two processes
/// staging the same key never collide, and within one process the counter
/// disambiguates concurrent writer threads.
std::string staging_name(const std::string& key) {
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream os;
  os << key << '.' << ::getpid() << '.' << counter.fetch_add(1) << ".tmp";
  return os.str();
}

bool valid_key(const std::string& key) {
  if (key.size() < 3) return false;
  return std::all_of(key.begin(), key.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

}  // namespace

ResultStore::ResultStore(fs::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_ / "objects", ec);
  if (!ec) fs::create_directories(dir_ / "tmp", ec);
  if (ec) {
    throw std::runtime_error("resultstore: cannot create store at " + dir_.string() + ": " +
                             ec.message());
  }
  // Probe writability now: save() stages into tmp/, so if this write fails a
  // whole sweep would compute everything and then die on the first publish.
  std::ostringstream probe_name;
  probe_name << ".probe." << ::getpid() << ".tmp";
  const fs::path probe = dir_ / "tmp" / probe_name.str();
  {
    std::ofstream out(probe, std::ios::binary | std::ios::trunc);
    out << '\0';
    out.flush();
    if (!out) {
      fs::remove(probe, ec);
      throw std::runtime_error("resultstore: store at " + dir_.string() +
                               " is not writable (staging probe failed)");
    }
  }
  fs::remove(probe, ec);
}

fs::path ResultStore::object_path(const std::string& key) const {
  ST_REQUIRE(valid_key(key), "resultstore: malformed cell key");
  return dir_ / "objects" / key.substr(0, 2) / (key + ".res");
}

std::optional<experiment::ScenarioResult> ResultStore::load(const std::string& key) const {
  std::ifstream in(object_path(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  const std::string raw = buffer.str();

  if (raw.size() < kMagicLen + kTrailerLen) return std::nullopt;
  if (std::memcmp(raw.data(), kMagic, kMagicLen) != 0) return std::nullopt;
  const auto* trailer =
      reinterpret_cast<const unsigned char*>(raw.data() + raw.size() - kTrailerLen);
  const std::uint64_t payload_len = read_u64le(trailer);
  const std::uint64_t checksum = read_u64le(trailer + 8);
  if (payload_len != raw.size() - kMagicLen - kTrailerLen) return std::nullopt;
  const auto* payload = reinterpret_cast<const std::uint8_t*>(raw.data() + kMagicLen);
  if (util::fnv1a64(payload, static_cast<std::size_t>(payload_len)) != checksum) {
    return std::nullopt;
  }
  try {
    return decode_result({payload, static_cast<std::size_t>(payload_len)});
  } catch (const std::exception&) {
    // Structurally valid wrapper, malformed payload (e.g. a record written
    // by a future codec): still just a miss.
    return std::nullopt;
  }
}

void ResultStore::save(const std::string& key, const experiment::ScenarioResult& result) const {
  const Bytes payload = encode_result(result);

  std::string record;
  record.reserve(kMagicLen + payload.size() + kTrailerLen);
  record.append(kMagic, kMagicLen);
  record.append(reinterpret_cast<const char*>(payload.data()), payload.size());
  write_u64le(record, payload.size());
  write_u64le(record, util::fnv1a64(payload.data(), payload.size()));

  const fs::path target = object_path(key);
  std::error_code ec;
  fs::create_directories(target.parent_path(), ec);
  if (ec) throw std::runtime_error("resultstore: cannot create " + target.parent_path().string());

  const fs::path staged = dir_ / "tmp" / staging_name(key);
  {
    std::ofstream out(staged, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("resultstore: cannot stage " + staged.string());
    out.write(record.data(), static_cast<std::streamsize>(record.size()));
    out.flush();
    if (!out) {
      fs::remove(staged, ec);
      throw std::runtime_error("resultstore: short write staging " + staged.string());
    }
  }
  fs::rename(staged, target, ec);
  if (ec) {
    fs::remove(staged, ec);
    throw std::runtime_error("resultstore: cannot publish " + target.string() + ": " +
                             ec.message());
  }
}

bool ResultStore::contains(const std::string& key) const {
  std::error_code ec;
  return fs::exists(object_path(key), ec);
}

std::vector<std::string> ResultStore::keys() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir_ / "objects", ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (p.extension() == ".res") out.push_back(p.stem().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

ResultStore::Stats ResultStore::stats() const {
  Stats s;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir_ / "objects", ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != ".res") continue;
    ++s.entries;
    s.bytes += static_cast<std::uint64_t>(it->file_size(ec));
  }
  return s;
}

std::size_t ResultStore::gc(std::chrono::seconds keep) const {
  const auto cutoff = fs::file_time_type::clock::now() - keep;
  std::size_t removed = 0;
  std::error_code ec;

  std::vector<fs::path> victims;
  for (fs::recursive_directory_iterator it(dir_ / "objects", ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const auto mtime = it->last_write_time(ec);
    if (!ec && mtime < cutoff) victims.push_back(it->path());
  }
  for (const fs::path& p : victims) {
    if (fs::remove(p, ec) && !ec) ++removed;
  }

  // Abandoned staging files (a writer that died mid-save) age out on the
  // same clock; successful saves rename them away immediately.
  for (fs::directory_iterator it(dir_ / "tmp", ec), end; !ec && it != end; it.increment(ec)) {
    const auto mtime = it->last_write_time(ec);
    if (!ec && mtime < cutoff) fs::remove(it->path(), ec);
  }

  // Prune now-empty fan-out directories so ls stays readable.
  for (fs::directory_iterator it(dir_ / "objects", ec), end; !ec && it != end;
       it.increment(ec)) {
    std::error_code dir_ec;
    if (it->is_directory(dir_ec) && fs::is_empty(it->path(), dir_ec) && !dir_ec) {
      fs::remove(it->path(), dir_ec);
    }
  }
  return removed;
}

ResultStore::VerifyReport ResultStore::verify() const {
  VerifyReport report;
  for (const std::string& key : keys()) {
    ++report.checked;
    // A stem that is not even a well-formed key can never be served; count
    // it corrupt rather than letting object_path's contract fire.
    if (!valid_key(key) || !load(key)) report.corrupt.push_back(key);
  }
  std::error_code ec;
  for (fs::directory_iterator it(dir_ / "tmp", ec), end; !ec && it != end; it.increment(ec)) {
    ++report.orphan_tmp;
  }
  return report;
}

bool ResultStore::remove(const std::string& key) const {
  std::error_code ec;
  return fs::remove(object_path(key), ec) && !ec;
}

}  // namespace stclock::resultstore
