#include "experiment/engine_info.h"

#include <cfloat>
#include <sstream>

#include "util/digest.h"

namespace stclock::experiment {

std::string engine_build_salt() {
  std::ostringstream os;
#if defined(__VERSION__)
  os << "compiler=" << __VERSION__;
#else
  os << "compiler=unknown";
#endif
#if defined(__OPTIMIZE__)
  os << " optimize=1";
#else
  os << " optimize=0";
#endif
#if defined(NDEBUG)
  os << " ndebug=1";
#else
  os << " ndebug=0";
#endif
#if defined(__FAST_MATH__)
  os << " fast_math=1";
#else
  os << " fast_math=0";
#endif
  os << " flt_eval=" << FLT_EVAL_METHOD;
  os << " sizeof_long_double=" << sizeof(long double);
  return os.str();
}

const std::string& engine_fingerprint() {
  static const std::string fp = [] {
    // 16 hex chars of salt digest keep the string short enough for a
    // --version line while still making distinct build configs distinct.
    const std::string salt_hex = util::digest_hex(engine_build_salt()).substr(0, 16);
    return std::string(kEngineVersion) + "+" + salt_hex;
  }();
  return fp;
}

}  // namespace stclock::experiment
