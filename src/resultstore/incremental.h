#pragma once

#include <cstddef>
#include <vector>

#include "experiment/sweep.h"
#include "resultstore/store.h"

/// The incremental sweep engine: lookup-then-compute over a ResultStore.
///
/// Every cell's key is fingerprinted (resultstore/cache_key.h); hits are
/// served from the store, only misses go through the SweepRunner thread
/// pool, and fresh results are published back. Because cells are pure
/// functions of their spec, a warm re-run of an unchanged grid performs zero
/// scenario computations, and editing one axis recomputes exactly the delta
/// cells — the sinks cannot tell the difference (hit payloads round-trip
/// every ScenarioResult field bit-exactly).
namespace stclock::resultstore {

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
};

/// Runs `cells`, consulting `store` first. `store == nullptr` degrades to a
/// plain SweepRunner run. `use_cache == false` skips every lookup (forced
/// recompute) but still publishes the fresh results, refreshing the store in
/// place. Results come back indexed like the input, exactly as
/// SweepRunner::run would order them.
[[nodiscard]] std::vector<experiment::ScenarioResult> run_cells_cached(
    const std::vector<experiment::SweepCell>& cells, const ResultStore* store,
    unsigned threads, bool use_cache = true, CacheStats* stats = nullptr);

}  // namespace stclock::resultstore
