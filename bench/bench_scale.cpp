// Scale sweep driver: wall-clock and memory for sparse-topology scenarios
// at fleet sizes up to n = 10^6 — the regime the sparse-first topology
// representation and the ladder event queue exist for. Unlike bench_micro
// (google-benchmark hot paths) this is a plain binary: one row per cell,
// timed end-to-end through the real run_scenario path, metrics included.
//
//   bench_scale                        # default sweep: ring 10^4..10^6
//   bench_scale --topology torus --n 1000000
//   bench_scale --topology gnp --n 100000 --gnp-p 2e-4
//   bench_scale --protocol unsynchronized ...   # metric-overhead floor
//
// Exits non-zero if any cell exceeds --budget wall seconds (default: off),
// so CI can enforce "a million-node ring sweep finishes in minutes".

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "experiment/registry.h"
#include "experiment/scenario.h"
#include "sim/topology.h"

namespace stclock {
namespace {

long peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss / 1024;  // Linux reports KB
}

struct Options {
  std::vector<std::uint32_t> sizes;
  std::string topology = "ring";
  std::string protocol = "gradient";
  double gnp_p = 2e-4;
  double horizon = 5.0;
  double budget = 0;  // wall-seconds per cell; 0 = unenforced
  std::uint64_t seed = 1;
};

Options parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--n" && has_value) {
      opts.sizes.push_back(static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10)));
    } else if (arg == "--topology" && has_value) {
      opts.topology = argv[++i];
    } else if (arg == "--protocol" && has_value) {
      opts.protocol = argv[++i];
    } else if (arg == "--gnp-p" && has_value) {
      opts.gnp_p = std::strtod(argv[++i], nullptr);
    } else if (arg == "--horizon" && has_value) {
      opts.horizon = std::strtod(argv[++i], nullptr);
    } else if (arg == "--budget" && has_value) {
      opts.budget = std::strtod(argv[++i], nullptr);
    } else if (arg == "--seed" && has_value) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_scale [--n N]... [--topology ring|torus|gnp] "
          "[--protocol NAME] [--gnp-p P] [--horizon H] [--budget SECONDS] [--seed S]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "bench_scale: unknown option %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  if (opts.sizes.empty()) opts.sizes = {10000, 100000, 1000000};
  return opts;
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  using namespace stclock;
  const Options opts = parse(argc, argv);

  std::printf("# protocol=%s topology=%s horizon=%.2f seed=%llu\n", opts.protocol.c_str(),
              opts.topology.c_str(), opts.horizon,
              static_cast<unsigned long long>(opts.seed));
  std::printf("%10s %12s %12s %10s %10s %12s %12s\n", "n", "events", "messages",
              "wall_s", "rss_mb", "max_skew", "local_skew");

  bool over_budget = false;
  for (const std::uint32_t n : opts.sizes) {
    experiment::ScenarioSpec spec;
    spec.protocol = opts.protocol;
    spec.cfg.n = n;
    spec.cfg.f = 0;
    spec.cfg.rho = 1e-4;
    spec.cfg.tdel = 0.01;
    spec.cfg.period = 1.0;
    spec.cfg.initial_sync = 0.005;
    spec.seed = opts.seed;
    spec.horizon = opts.horizon;
    spec.attack = AttackKind::kNone;
    spec.gnp_p = opts.gnp_p;
    spec.topology_seed = opts.seed;
    if (opts.topology == "ring") {
      spec.topology = TopologyKind::kRing;
    } else if (opts.topology == "torus") {
      spec.topology = TopologyKind::kTorus;
    } else if (opts.topology == "gnp") {
      spec.topology = TopologyKind::kGnp;
    } else if (opts.topology == "complete") {
      spec.topology = TopologyKind::kComplete;
    } else {
      std::fprintf(stderr, "bench_scale: unknown topology %s\n", opts.topology.c_str());
      return 2;
    }

    const auto begin = std::chrono::steady_clock::now();
    const experiment::ScenarioResult r = experiment::run_scenario(spec);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();

    std::printf("%10u %12llu %12llu %10.2f %10ld %12.3e %12.3e\n", n,
                static_cast<unsigned long long>(r.events_dispatched),
                static_cast<unsigned long long>(r.messages_sent), wall, peak_rss_mb(),
                r.max_skew, r.local_skew);
    std::fflush(stdout);
    if (opts.budget > 0 && wall > opts.budget) {
      std::fprintf(stderr, "bench_scale: n=%u took %.1fs (budget %.1fs)\n", n, wall,
                   opts.budget);
      over_budget = true;
    }
  }
  return over_budget ? 1 : 0;
}
