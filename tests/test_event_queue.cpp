#include <gtest/gtest.h>

#include "sim/event_queue.h"

namespace stclock {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push_timer(3.0, TimerEvent{0, 1});
  q.push_timer(1.0, TimerEvent{0, 2});
  q.push_timer(2.0, TimerEvent{0, 3});

  EXPECT_EQ(q.pop().timer.id, 2u);
  EXPECT_EQ(q.pop().timer.id, 3u);
  EXPECT_EQ(q.pop().timer.id, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  for (TimerId id = 1; id <= 5; ++id) q.push_timer(1.0, TimerEvent{0, id});
  for (TimerId id = 1; id <= 5; ++id) EXPECT_EQ(q.pop().timer.id, id);
}

TEST(EventQueue, MixedTimersAndDeliveries) {
  EventQueue q;
  auto msg = std::make_shared<const Message>(InitMsg{1});
  q.push_delivery(2.0, DeliveryEvent{1, 0, msg, 1.5});
  q.push_timer(1.0, TimerEvent{0, 7});

  const Event first = q.pop();
  EXPECT_TRUE(first.is_timer);
  const Event second = q.pop();
  EXPECT_FALSE(second.is_timer);
  EXPECT_EQ(second.delivery.to, 1u);
  EXPECT_EQ(second.delivery.from, 0u);
  EXPECT_DOUBLE_EQ(second.delivery.sent_at, 1.5);
}

TEST(EventQueue, NextTimePeeksWithoutPopping) {
  EventQueue q;
  q.push_timer(4.5, TimerEvent{0, 1});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.5);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EmptyQueueOperationsThrow) {
  EventQueue q;
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(EventQueue, RejectsNegativeTimeAndNullMessage) {
  EventQueue q;
  EXPECT_THROW(q.push_timer(-1.0, TimerEvent{0, 1}), std::logic_error);
  EXPECT_THROW(q.push_delivery(1.0, DeliveryEvent{0, 0, nullptr, 0.0}), std::logic_error);
}

TEST(EventQueue, EqualTimeTiesBreakFifoAcrossKinds) {
  // Timers and deliveries interleaved at one instant must pop in exact
  // insertion order even though they live in different internal stores
  // (timers inline in the heap entry, deliveries in the slab).
  EventQueue q;
  auto msg = std::make_shared<const Message>(InitMsg{1});
  for (std::uint32_t i = 0; i < 64; ++i) {
    if (i % 3 == 0) {
      q.push_timer(2.5, TimerEvent{i, static_cast<TimerId>(i + 1)});
    } else {
      q.push_delivery(2.5, DeliveryEvent{i, 0, msg, 0.0});
    }
  }
  for (std::uint32_t i = 0; i < 64; ++i) {
    const Event e = q.pop();
    EXPECT_DOUBLE_EQ(e.time, 2.5);
    if (i % 3 == 0) {
      ASSERT_TRUE(e.is_timer) << "position " << i;
      EXPECT_EQ(e.timer.node, i);
      EXPECT_EQ(e.timer.id, static_cast<TimerId>(i + 1));
    } else {
      ASSERT_FALSE(e.is_timer) << "position " << i;
      EXPECT_EQ(e.delivery.to, i);
    }
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SlabSlotsAreReusedWithoutCorruption) {
  // Heavy pop/push churn forces delivery payload slots through the free
  // list; every payload must come back intact (right receiver, right
  // message) regardless of which slot it landed in.
  EventQueue q;
  RealTime t = 0;
  std::uint32_t next_to = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    q.push_delivery(t + 1, DeliveryEvent{next_to, 0,
                                         std::make_shared<const Message>(InitMsg{next_to}), t});
    ++next_to;
  }
  std::uint32_t expect_to = 0;
  for (int step = 0; step < 1000; ++step) {
    const Event e = q.pop();
    ASSERT_FALSE(e.is_timer);
    EXPECT_EQ(e.delivery.to, expect_to);
    EXPECT_EQ(message_round(*e.delivery.msg), expect_to);
    ++expect_to;
    t = e.time;
    q.push_delivery(t + 1, DeliveryEvent{next_to, 0,
                                         std::make_shared<const Message>(InitMsg{next_to}), t});
    ++next_to;
  }
  EXPECT_EQ(q.size(), 8u);
}

TEST(EventQueue, ReserveDoesNotDisturbContents) {
  EventQueue q;
  q.reserve(1024);
  q.push_timer(1.0, TimerEvent{0, 1});
  q.push_timer(0.5, TimerEvent{0, 2});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().timer.id, 2u);
  EXPECT_EQ(q.pop().timer.id, 1u);
}

TEST(EventQueue, LargeInterleavedLoad) {
  EventQueue q;
  // Push times 999, 998, ..., 0 then verify ascending pop order.
  for (int i = 999; i >= 0; --i) {
    q.push_timer(static_cast<RealTime>(i), TimerEvent{0, static_cast<TimerId>(i)});
  }
  RealTime prev = -1;
  while (!q.empty()) {
    const Event e = q.pop();
    EXPECT_GT(e.time, prev);
    prev = e.time;
  }
}

}  // namespace
}  // namespace stclock
