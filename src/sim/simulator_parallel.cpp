#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "util/arena.h"
#include "util/contracts.h"

/// The lookahead-windowed parallel engine (SimParams::sim_threads > 1).
///
/// Conservative PDES, specialized to this simulator's model: every honest
/// cross-node message takes at least DelayPolicy::min_delay(tdel) to arrive,
/// so the events inside one window [t, t + min_delay) cannot causally reach
/// a *different* node within the same window. The engine therefore
///
///  1. drains one window of events off the queue (the "roots"),
///  2. groups them by owning node and executes each node's share on a worker
///     pool — handlers run for real against node-local state (clocks,
///     process memory, RNG), while every side effect that touches shared
///     state (sends, timer pushes, counters, RNG draws from the shared
///     net/bcast streams) is buffered into per-worker op logs, and
///  3. replays the logs on the main thread in the exact (time, seq) order
///     the sequential engine would have used, assigning queue sequence
///     numbers at replay time — so delays are drawn in the canonical order,
///     pushes get the canonical seqs, counters advance event by event, and
///     the post-event hook observes the same intermediate states.
///
/// Same-node effects that land inside the window (self-deliveries, timers
/// firing before the window closes) are executed *in* the window by the
/// owning worker, merged into its per-node order; at replay they consume a
/// sequence number via EventQueue::take_seq() at exactly the moment the
/// sequential engine would have pushed them, keeping every later (time, seq)
/// comparison bit-identical.
///
/// Fleet-wide events — churn stops, topology epochs, corruption events —
/// are barriers: the drain stops at one, everything before it runs in
/// parallel, and the barrier itself dispatches sequentially after the
/// commit. Children spawned at or past the barrier's time are deferred to
/// commit-time queue pushes rather than executed locally, because
/// sequentially they would run after the barrier (its seq is older).
///
/// Byzantine adversaries break the premise outright (rushing deliveries to
/// corrupted nodes are immediate), so the engine refuses to engage and the
/// run falls back — loudly — to the sequential path, as it does when the
/// delay policy's min_delay() is zero.
namespace stclock {

namespace {

constexpr std::uint32_t kNoIndex = 0xffffffffu;

/// Same interning as the sequential hot path; the arena is thread-local and
/// its free path is cross-thread safe, so workers intern directly.
std::shared_ptr<const Message> par_intern(const Message& m) {
  return std::allocate_shared<const Message>(util::ArenaAllocator<Message>{}, m);
}

/// Which worker slot the current thread is executing (valid only while
/// in_worker() holds for the owning simulator).
thread_local std::uint32_t t_worker_index = 0;

}  // namespace

struct Simulator::ParEngine {
  /// One buffered side effect, replayed on the main thread at commit in the
  /// recording order (which is the handler's issuing order).
  enum class OpKind : std::uint8_t {
    kSendLink,       ///< cross-node send: on_send, delay draw, push or drop
    kSendSelfPush,   ///< self-delivery deferred past a barrier: on_send, push
    kSendLocal,      ///< self-delivery executed in-window: on_send, take_seq
    kSendDropNoLink, ///< unicast without a link: on_send, count the drop
    kTimerPush,      ///< timer beyond the window: push_timer with its par id
    kTimerLocal,     ///< timer executed in-window: take_seq
    kSampledBcast,   ///< sampled fan-out: peer draws happen at commit
  };

  struct Op {
    OpKind kind;
    NodeId to = 0;                  ///< recipient / timer owner
    std::uint32_t child = kNoIndex; ///< in-window child rec (kSendLocal/kTimerLocal/self of kSampledBcast)
    RealTime fire_at = 0;           ///< push time for deferred pushes
    TimerId timer = 0;              ///< kTimerPush/kTimerLocal: the parallel timer id
    std::shared_ptr<const Message> msg;
  };

  /// One executed event: a drained root or an in-window child. Roots carry
  /// their queue seq; children get theirs at commit (take_seq), exactly when
  /// the sequential engine would have pushed them.
  struct Rec {
    RealTime time = 0;
    std::uint64_t seq = 0;
    NodeId node = 0;
    bool is_timer = false;
    bool purge_dropped = false; ///< delivery hit the node's wiped buffer
    bool has_obs = false;       ///< an ObsChange entry was recorded for this rec
    TimerId timer_id = 0;
    NodeId from = 0;
    RealTime sent_at = 0;
    std::shared_ptr<const Message> msg;
    std::uint32_t ops_begin = 0;
    std::uint32_t ops_end = 0;
    std::uint32_t next_in_node = kNoIndex; ///< root chain within the node
  };

  /// Pre-state snapshot taken whenever a rec changes the node's observable
  /// state (started flag, include predicate, logical clock). The replay
  /// cursor walks these so the post-event hook observes exactly the
  /// sequential intermediate values, never a worker's finished future.
  struct ObsChange {
    RealTime time = 0;
    LocalTime pre_value = 0;
    bool pre_started = false;
    bool pre_include = false;
    bool clock_changed = false;
  };

  /// Per-node exec-order heap entry for in-window children: spawn order
  /// stands in for the commit seq (children of one node are committed in
  /// spawn order, so the tie-break agrees).
  struct HeapEntry {
    RealTime time = 0;
    std::uint32_t rank = 0;
    std::uint32_t rec = 0;
  };

  struct ReplayEntry {
    RealTime time = 0;
    std::uint64_t seq = 0;
    std::uint32_t worker = 0;
    std::uint32_t rec = 0;
  };

  struct Worker {
    std::vector<Rec> recs;
    std::vector<Op> ops;
    std::vector<ObsChange> obs;
    std::vector<NodeId> nodes;  ///< owned this window, first-appearance order
    std::vector<HeapEntry> heap;
    std::uint32_t spawn_rank = 0;
    std::uint32_t cur_rec = kNoIndex;
    std::exception_ptr error;
  };

  /// Where a node's pending ObsChange entries live (gen-marked by obs_gen).
  struct ObsSpan {
    std::uint32_t worker = 0;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint32_t cursor = 0;
  };

  Simulator* sim;
  Duration lookahead;
  std::uint32_t nworkers;
  std::vector<Worker> workers;

  // Per-node routing state, generation-marked so a window touching k nodes
  // costs O(k) setup, not O(n).
  std::vector<std::uint32_t> node_worker, chain_head, chain_tail;
  std::vector<std::uint64_t> node_gen, obs_gen;
  std::vector<ObsSpan> obs_span;
  std::uint64_t gen = 0;
  std::uint32_t rr = 0;

  std::vector<std::pair<std::uint32_t, std::uint32_t>> commit_order;  // (worker, rec)
  std::vector<ReplayEntry> replay_heap;
  RealTime window_bound = 0;    ///< exclusive local-execution bound (W, or the barrier time)
  RealTime window_horizon = 0;  ///< run_until horizon (events never execute past it)

  std::vector<std::thread> threads;
  std::mutex mu;
  std::condition_variable cv_start, cv_done;
  std::uint64_t start_gen = 0;
  std::uint32_t running = 0;
  bool shutdown = false;

  ParEngine(Simulator* s, Duration look, std::uint32_t nthreads)
      : sim(s), lookahead(look), nworkers(nthreads), workers(nthreads) {
    const std::size_t n = s->params_.n;
    node_worker.resize(n);
    chain_head.resize(n);
    chain_tail.resize(n);
    node_gen.assign(n, 0);
    obs_gen.assign(n, 0);
    obs_span.resize(n);
    threads.reserve(nthreads - 1);
    for (std::uint32_t w = 1; w < nthreads; ++w) {
      threads.emplace_back([this, w] { thread_main(w); });
    }
  }

  ~ParEngine() {
    {
      std::lock_guard<std::mutex> lk(mu);
      shutdown = true;
    }
    cv_start.notify_all();
    for (std::thread& t : threads) t.join();
  }

  void thread_main(std::uint32_t w) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_start.wait(lk, [&] { return shutdown || start_gen != seen; });
        if (shutdown) return;
        seen = start_gen;
      }
      exec_worker(w);
      {
        std::lock_guard<std::mutex> lk(mu);
        if (--running == 0) cv_done.notify_all();
      }
    }
  }

  /// Kicks the pool, runs worker 0's share on the calling (main) thread,
  /// and waits for everyone. The mutex handoffs give the usual barrier
  /// happens-before in both directions.
  void release_and_join() {
    {
      std::lock_guard<std::mutex> lk(mu);
      running = nworkers - 1;
      ++start_gen;
    }
    cv_start.notify_all();
    exec_worker(0);
    if (nworkers > 1) {
      std::unique_lock<std::mutex> lk(mu);
      cv_done.wait(lk, [&] { return running == 0; });
    }
  }

  // ---------------------------------------------------------------- window

  void run_window(RealTime horizon) {
    Simulator& S = *sim;
    ++gen;
    rr = 0;
    commit_order.clear();
    replay_heap.clear();
    for (Worker& wk : workers) {
      wk.recs.clear();
      wk.ops.clear();
      wk.obs.clear();
      wk.nodes.clear();
      wk.error = nullptr;
    }

    const RealTime t0 = S.queue_.next_time();
    RealTime bound = t0 + lookahead;
    if (!(bound > t0)) {
      // Float edge: t0 so large the lookahead rounds away entirely. One
      // sequential step makes progress instead of spinning on empty windows.
      sequential_step();
      return;
    }
    window_horizon = horizon;

    bool have_barrier = false;
    Event barrier_ev;
    Event ev;
    while (S.queue_.pop_window(bound, horizon, ev)) {
      if (ev.is_timer) {
        const TimerState st = S.timer_state(ev.timer.id);
        if (st == TimerState::kArmedStop || st == TimerState::kArmedEpoch ||
            st == TimerState::kArmedCorrupt || st == TimerState::kArmedAdversary) {
          // Fleet-wide event: close the window here. Everything drained so
          // far precedes it in (time, seq) order; children at or past its
          // time defer to the queue (window_bound shrinks to the barrier).
          have_barrier = true;
          barrier_ev = ev;
          bound = ev.time;
          break;
        }
      }
      route_root(std::move(ev));
    }
    window_bound = bound;

    if (!commit_order.empty()) {
      release_and_join();
      for (const Worker& wk : workers) {
        if (wk.error) std::rethrow_exception(wk.error);
      }
      replay();
    }

    if (have_barrier) {
      ST_REQUIRE(++S.events_dispatched_ <= S.params_.max_events,
                 "Simulator: event budget exhausted (runaway protocol?)");
      S.now_ = barrier_ev.time;
      S.dispatch(barrier_ev);
      if (S.post_event_hook_) S.post_event_hook_(S);
    }
  }

  /// The sequential engine's step, verbatim, for windows that cannot open.
  void sequential_step() {
    Simulator& S = *sim;
    ST_REQUIRE(++S.events_dispatched_ <= S.params_.max_events,
               "Simulator: event budget exhausted (runaway protocol?)");
    const Event ev = S.queue_.pop();
    S.now_ = ev.time;
    S.dispatch(ev);
    if (S.post_event_hook_) S.post_event_hook_(S);
  }

  void route_root(Event&& ev) {
    const NodeId v = ev.is_timer ? ev.timer.node : ev.delivery.to;
    if (node_gen[v] != gen) {
      node_gen[v] = gen;
      node_worker[v] = rr++ % nworkers;
      chain_head[v] = kNoIndex;
      chain_tail[v] = kNoIndex;
      workers[node_worker[v]].nodes.push_back(v);
    }
    const std::uint32_t w = node_worker[v];
    Worker& wk = workers[w];
    const auto idx = static_cast<std::uint32_t>(wk.recs.size());
    Rec rec;
    rec.time = ev.time;
    rec.seq = ev.seq;
    rec.node = v;
    rec.is_timer = ev.is_timer;
    if (ev.is_timer) {
      rec.timer_id = ev.timer.id;
    } else {
      rec.from = ev.delivery.from;
      rec.sent_at = ev.delivery.sent_at;
      rec.msg = std::move(ev.delivery.msg);
    }
    wk.recs.push_back(std::move(rec));
    if (chain_tail[v] == kNoIndex) {
      chain_head[v] = idx;
    } else {
      wk.recs[chain_tail[v]].next_in_node = idx;
    }
    chain_tail[v] = idx;
    commit_order.emplace_back(w, idx);
  }

  // ------------------------------------------------------------ worker phase

  void exec_worker(std::uint32_t w) {
    Worker& wk = workers[w];
    sim->tls_enter_worker();
    t_worker_index = w;
    try {
      for (const NodeId v : wk.nodes) run_node(w, v);
    } catch (...) {
      wk.error = std::current_exception();
    }
    sim->tls_leave_worker();
  }

  /// Executes node v's window share: the root chain (already (time, seq)
  /// sorted — drain order) merged with the in-window children it spawns.
  /// Roots win time ties (their seqs predate any commit-assigned child seq);
  /// children tie-break by spawn rank, which equals their commit seq order.
  void run_node(std::uint32_t w, NodeId v) {
    Worker& wk = workers[w];
    const auto obs_begin = static_cast<std::uint32_t>(wk.obs.size());
    wk.heap.clear();
    const auto heap_after = [](const HeapEntry& a, const HeapEntry& b) {
      return a.time != b.time ? a.time > b.time : a.rank > b.rank;
    };
    std::uint32_t root = chain_head[v];
    while (root != kNoIndex || !wk.heap.empty()) {
      std::uint32_t r;
      bool from_root;
      if (root != kNoIndex &&
          (wk.heap.empty() || wk.recs[root].time <= wk.heap.front().time)) {
        r = root;
        from_root = true;
      } else {
        r = wk.heap.front().rec;
        std::pop_heap(wk.heap.begin(), wk.heap.end(), heap_after);
        wk.heap.pop_back();
        from_root = false;
      }
      exec_rec(w, r);
      if (from_root) root = wk.recs[r].next_in_node;
    }
    obs_span[v] = ObsSpan{w, obs_begin, static_cast<std::uint32_t>(wk.obs.size()), obs_begin};
    obs_gen[v] = gen;
  }

  void exec_rec(std::uint32_t w, std::uint32_t r) {
    Worker& wk = workers[w];
    const RealTime time = wk.recs[r].time;
    const NodeId v = wk.recs[r].node;
    sim->tls_set_worker_now(time);
    Node& node = sim->nodes_[v];

    const bool pre_started = node.started;
    const bool pre_include = sim->include_probe_ == nullptr || sim->include_probe_(v);
    const std::uint64_t pre_adj = node.logical->adjustment_count();
    const LocalTime pre_value = node.logical->read(time);
    wk.cur_rec = r;
    wk.recs[r].ops_begin = static_cast<std::uint32_t>(wk.ops.size());

    if (!wk.recs[r].is_timer) {
      if (wk.recs[r].sent_at < node.purge_before) {
        // Wiped in-flight buffer; the drop is *counted* at replay so
        // messages_dropped_ advances in sequential order.
        wk.recs[r].purge_dropped = true;
      } else if (node.process != nullptr && node.started) {
        // Keep the payload alive across rec-vector growth from spawns.
        const std::shared_ptr<const Message> msg = wk.recs[r].msg;
        const NodeId from = wk.recs[r].from;
        node.process->on_message(*node.ctx, from, *msg);
      }
    } else {
      const TimerId id = wk.recs[r].timer_id;
      TimerState& slot = sim->timer_state(id);
      const TimerState kind = slot;
      slot = TimerState::kFired;  // owner-only byte write; each id pops once
      switch (kind) {
        case TimerState::kCancelled:
          break;  // still an event: counted and hooked at replay
        case TimerState::kArmedStart:
          node.started = true;
          node.process->on_start(*node.ctx);
          break;
        case TimerState::kArmedTick:
          if (node.process != nullptr && node.started && node.ticker_interval > 0) {
            // Re-arm before the callback, like the sequential dispatcher.
            (void)sim->arm_timer(
                v, node.hw->when_reads(node.hw->read(time) + node.ticker_interval),
                TimerState::kArmedTick);
            node.process->on_tick(*node.ctx);
          }
          break;
        case TimerState::kArmedProcess:
          if (node.process != nullptr && node.started) {
            node.process->on_timer(*node.ctx, id);
          }
          break;
        default:
          ST_ASSERT(kind == TimerState::kCancelled,
                    "parallel worker executed a fleet-wide (barrier) timer");
          break;
      }
    }

    wk.recs[r].ops_end = static_cast<std::uint32_t>(wk.ops.size());
    const bool post_include = sim->include_probe_ == nullptr || sim->include_probe_(v);
    const bool clock_changed = node.logical->adjustment_count() != pre_adj;
    if (node.started != pre_started || post_include != pre_include || clock_changed) {
      wk.obs.push_back(ObsChange{time, pre_value, pre_started, pre_include, clock_changed});
      wk.recs[r].has_obs = true;
    }
  }

  // Worker-side effect recording (reached via Simulator::par_*).

  Worker& cur() { return workers[t_worker_index]; }

  std::uint32_t spawn_delivery(Worker& wk, NodeId to, NodeId from, RealTime time,
                               const std::shared_ptr<const Message>& msg) {
    const auto idx = static_cast<std::uint32_t>(wk.recs.size());
    Rec rec;
    rec.time = time;
    rec.node = to;
    rec.is_timer = false;
    rec.from = from;
    rec.sent_at = time;
    rec.msg = msg;
    wk.recs.push_back(std::move(rec));
    wk.heap.push_back(HeapEntry{time, wk.spawn_rank++, idx});
    std::push_heap(wk.heap.begin(), wk.heap.end(), [](const HeapEntry& a, const HeapEntry& b) {
      return a.time != b.time ? a.time > b.time : a.rank > b.rank;
    });
    return idx;
  }

  std::uint32_t spawn_timer(Worker& wk, NodeId v, RealTime fire, TimerId id) {
    const auto idx = static_cast<std::uint32_t>(wk.recs.size());
    Rec rec;
    rec.time = fire;
    rec.node = v;
    rec.is_timer = true;
    rec.timer_id = id;
    wk.recs.push_back(std::move(rec));
    wk.heap.push_back(HeapEntry{fire, wk.spawn_rank++, idx});
    std::push_heap(wk.heap.begin(), wk.heap.end(), [](const HeapEntry& a, const HeapEntry& b) {
      return a.time != b.time ? a.time > b.time : a.rank > b.rank;
    });
    return idx;
  }

  void op_send_peer(NodeId to, std::shared_ptr<const Message> msg) {
    cur().ops.push_back(Op{OpKind::kSendLink, to, kNoIndex, 0, 0, std::move(msg)});
  }

  void op_send_self(NodeId self, std::shared_ptr<const Message> msg) {
    Worker& wk = cur();
    const RealTime time = wk.recs[wk.cur_rec].time;
    if (time < window_bound) {
      // Lands inside the window: execute it here, in this node's order; the
      // commit assigns its seq at the moment the push would have happened.
      const std::uint32_t child = spawn_delivery(wk, self, self, time, msg);
      wk.ops.push_back(Op{OpKind::kSendLocal, self, child, time, 0, std::move(msg)});
    } else {
      // At or past a barrier's time: sequentially this runs after the
      // barrier (its seq is older), so it must go through the queue.
      wk.ops.push_back(Op{OpKind::kSendSelfPush, self, kNoIndex, time, 0, std::move(msg)});
    }
  }

  void worker_unicast(NodeId from, NodeId to, const Message& m) {
    const Topology* topo = sim->topo_now_;
    if (to != from && topo != nullptr && !topo->adjacent(from, to)) {
      cur().ops.push_back(
          Op{OpKind::kSendDropNoLink, to, kNoIndex, 0, 0, par_intern(m)});
      return;
    }
    auto msg = par_intern(m);
    if (to == from) {
      op_send_self(from, std::move(msg));
    } else {
      op_send_peer(to, std::move(msg));
    }
  }

  void worker_broadcast(NodeId from, const Message& m) {
    auto msg = par_intern(m);
    if (sim->params_.broadcast_mode == BroadcastMode::kSampled) {
      // Peer draws come from the shared bcast stream, so the whole fan-out
      // defers to commit; only the self-delivery (always part of a sampled
      // fan-out) is classified now so the window can execute it.
      Worker& wk = cur();
      const RealTime time = wk.recs[wk.cur_rec].time;
      std::uint32_t child = kNoIndex;
      if (time < window_bound) child = spawn_delivery(wk, from, from, time, msg);
      wk.ops.push_back(Op{OpKind::kSampledBcast, from, child, time, 0, std::move(msg)});
      return;
    }
    const Topology* topo = sim->topo_now_;
    if (topo == nullptr || topo->is_complete()) {
      for (NodeId to = 0; to < sim->params_.n; ++to) {
        if (to == from) {
          op_send_self(from, msg);
        } else {
          op_send_peer(to, msg);
        }
      }
      return;
    }
    // Sparse: self interleaved at its ascending position, like
    // sparse_fan_out, so replay reproduces the sequential seq order.
    const auto [nbrs, degree] = topo->neighbor_span(from);
    bool self_sent = false;
    for (std::size_t i = 0; i < degree; ++i) {
      const NodeId to = nbrs[i];
      if (!self_sent && to > from) {
        op_send_self(from, msg);
        self_sent = true;
      }
      op_send_peer(to, msg);
    }
    if (!self_sent) op_send_self(from, msg);
  }

  TimerId worker_arm_timer(NodeId v, RealTime fire_at, TimerState kind) {
    Worker& wk = cur();
    Node& node = sim->nodes_[v];
    const std::size_t index = node.par_timers.size();
    node.par_timers.push_back(kind);
    const TimerId id = par_timer_id(v, index);
    const RealTime fire = std::max(fire_at, wk.recs[wk.cur_rec].time);
    if (fire < window_bound && fire <= window_horizon) {
      const std::uint32_t child = spawn_timer(wk, v, fire, id);
      wk.ops.push_back(Op{OpKind::kTimerLocal, v, child, fire, id, nullptr});
    } else {
      wk.ops.push_back(Op{OpKind::kTimerPush, v, kNoIndex, fire, id, nullptr});
    }
    return id;
  }

  // ------------------------------------------------------------ commit phase

  void replay() {
    Simulator& S = *sim;
    std::size_t ri = 0;
    while (ri < commit_order.size() || !replay_heap.empty()) {
      bool take_root;
      if (ri >= commit_order.size()) {
        take_root = false;
      } else if (replay_heap.empty()) {
        take_root = true;
      } else {
        const Rec& root = workers[commit_order[ri].first].recs[commit_order[ri].second];
        const ReplayEntry& top = replay_heap.front();
        take_root = root.time != top.time ? root.time < top.time : root.seq < top.seq;
      }
      std::uint32_t w, r;
      if (take_root) {
        w = commit_order[ri].first;
        r = commit_order[ri].second;
        ++ri;
      } else {
        w = replay_heap.front().worker;
        r = replay_heap.front().rec;
        std::pop_heap(replay_heap.begin(), replay_heap.end(), replay_after);
        replay_heap.pop_back();
      }
      replay_rec(w, r);
    }
    (void)S;
  }

  static bool replay_after(const ReplayEntry& a, const ReplayEntry& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }

  void replay_rec(std::uint32_t w, std::uint32_t r) {
    Simulator& S = *sim;
    Worker& wk = workers[w];
    Rec& rec = wk.recs[r];
    ST_REQUIRE(++S.events_dispatched_ <= S.params_.max_events,
               "Simulator: event budget exhausted (runaway protocol?)");
    S.now_ = rec.time;
    if (!rec.is_timer) {
      S.counters_.on_deliver(message_kind(*rec.msg));
      if (rec.purge_dropped) ++S.messages_dropped_;
    }
    for (std::uint32_t oi = rec.ops_begin; oi < rec.ops_end; ++oi) {
      apply_op(w, rec, wk.ops[oi]);
    }
    if (rec.has_obs) ++obs_span[rec.node].cursor;  // the change is now committed
    if (S.post_event_hook_) S.post_event_hook_(S);
  }

  void schedule_child(std::uint32_t w, std::uint32_t child) {
    Rec& c = workers[w].recs[child];
    c.seq = sim->queue_.take_seq();
    replay_heap.push_back(ReplayEntry{c.time, c.seq, w, child});
    std::push_heap(replay_heap.begin(), replay_heap.end(), replay_after);
  }

  void send_peer_commit(const Rec& rec, NodeId to, const std::shared_ptr<const Message>& msg) {
    Simulator& S = *sim;
    S.counters_.on_send(message_kind(*msg), message_size_bytes(*msg));
    const Duration delay = S.delays_->delay(rec.node, to, rec.time, S.params_.tdel, *S.net_rng_);
    if (delay == kDropMessage) {
      ++S.messages_dropped_;
      return;
    }
    ST_ASSERT(delay >= 0 && delay <= S.params_.tdel,
              "DelayPolicy returned a delay outside [0, tdel]");
    ST_ASSERT(delay >= lookahead,
              "DelayPolicy violated its min_delay() lookahead contract");
    S.queue_.push_delivery(rec.time + delay, DeliveryEvent{to, rec.node, msg, rec.time});
  }

  void apply_op(std::uint32_t w, const Rec& rec, Op& op) {
    Simulator& S = *sim;
    switch (op.kind) {
      case OpKind::kSendLink:
        send_peer_commit(rec, op.to, op.msg);
        break;
      case OpKind::kSendDropNoLink:
        S.counters_.on_send(message_kind(*op.msg), message_size_bytes(*op.msg));
        ++S.messages_dropped_;
        break;
      case OpKind::kSendSelfPush:
        S.counters_.on_send(message_kind(*op.msg), message_size_bytes(*op.msg));
        S.queue_.push_delivery(op.fire_at,
                               DeliveryEvent{rec.node, rec.node, op.msg, op.fire_at});
        break;
      case OpKind::kSendLocal:
        S.counters_.on_send(message_kind(*op.msg), message_size_bytes(*op.msg));
        schedule_child(w, op.child);
        break;
      case OpKind::kTimerPush:
        S.queue_.push_timer(op.fire_at, TimerEvent{op.to, op.timer});
        break;
      case OpKind::kTimerLocal:
        schedule_child(w, op.child);
        break;
      case OpKind::kSampledBcast:
        apply_sampled(w, rec, op);
        break;
    }
  }

  void apply_sampled(std::uint32_t w, const Rec& rec, const Op& op) {
    Simulator& S = *sim;
    const NodeId from = rec.node;
    const auto self_commit = [&] {
      S.counters_.on_send(message_kind(*op.msg), message_size_bytes(*op.msg));
      if (op.child != kNoIndex) {
        schedule_child(w, op.child);
      } else {
        S.queue_.push_delivery(rec.time, DeliveryEvent{from, from, op.msg, rec.time});
      }
    };
    if (S.sample_broadcast_targets(from)) {
      bool self_sent = false;
      for (const NodeId to : S.sample_scratch_) {
        if (!self_sent && to > from) {
          self_commit();
          self_sent = true;
        }
        send_peer_commit(rec, to, op.msg);
      }
      if (!self_sent) self_commit();
      return;
    }
    // Domain no larger than the sample: the full fan-out, no draws — same
    // fallback the sequential sampled_fan_out takes.
    const Topology* topo = S.topo_now_;
    if (topo == nullptr || topo->is_complete()) {
      for (NodeId to = 0; to < S.params_.n; ++to) {
        if (to == from) {
          self_commit();
        } else {
          send_peer_commit(rec, to, op.msg);
        }
      }
      return;
    }
    const auto [nbrs, degree] = topo->neighbor_span(from);
    bool self_sent = false;
    for (std::size_t i = 0; i < degree; ++i) {
      const NodeId to = nbrs[i];
      if (!self_sent && to > from) {
        self_commit();
        self_sent = true;
      }
      send_peer_commit(rec, to, op.msg);
    }
    if (!self_sent) self_commit();
  }
};

// ------------------------------------------------------------ Simulator glue

Simulator::~Simulator() = default;

void Simulator::ParEngineDeleter::operator()(ParEngine* e) const { delete e; }

void Simulator::maybe_enable_parallel() {
  par_checked_ = true;
  if (params_.sim_threads <= 1) return;
  if (adversary_ != nullptr) {
    std::fprintf(stderr,
                 "stclock: sim_threads=%u requested but a Byzantine adversary is installed "
                 "(rushing deliveries are immediate, so no lookahead window exists); "
                 "falling back to the sequential engine\n",
                 params_.sim_threads);
    return;
  }
  const Duration look = delays_->min_delay(params_.tdel);
  ST_REQUIRE(look >= 0 && look <= params_.tdel,
             "DelayPolicy::min_delay must lie in [0, tdel]");
  if (!(look > 0)) {
    std::fprintf(stderr,
                 "stclock: sim_threads=%u requested but the delay policy's min_delay() is "
                 "zero (no lookahead window); falling back to the sequential engine\n",
                 params_.sim_threads);
    return;
  }
  par_.reset(new ParEngine(this, look, params_.sim_threads));
}

void Simulator::run_parallel(RealTime horizon) {
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    par_->run_window(horizon);
    ++parallel_windows_;
  }
}

void Simulator::par_unicast(NodeId from, NodeId to, const Message& m) {
  par_->worker_unicast(from, to, m);
}

void Simulator::par_broadcast(NodeId from, const Message& m) {
  par_->worker_broadcast(from, m);
}

TimerId Simulator::par_arm_timer(NodeId node, RealTime fire_at, TimerState kind) {
  return par_->worker_arm_timer(node, fire_at, kind);
}

bool Simulator::observe_started_slow(NodeId id) const {
  const ParEngine& e = *par_;
  if (e.obs_gen[id] == e.gen) {
    const ParEngine::ObsSpan& s = e.obs_span[id];
    if (s.cursor < s.end) return e.workers[s.worker].obs[s.cursor].pre_started;
  }
  return nodes_[id].started;
}

bool Simulator::observe_include_slow(NodeId id) const {
  const ParEngine& e = *par_;
  if (e.obs_gen[id] == e.gen) {
    const ParEngine::ObsSpan& s = e.obs_span[id];
    if (s.cursor < s.end) return e.workers[s.worker].obs[s.cursor].pre_include;
  }
  return include_probe_ == nullptr || include_probe_(id);
}

LocalTime Simulator::observe_logical_slow(NodeId id, RealTime t) const {
  const ParEngine& e = *par_;
  if (e.obs_gen[id] == e.gen) {
    const ParEngine::ObsSpan& s = e.obs_span[id];
    const auto& obs = e.workers[s.worker].obs;
    // Pending entries have time >= the replay point. Only an uncommitted
    // adjustment at exactly t could pollute a live read (later pieces start
    // past t and cannot affect read(t)); the first such entry's pre-state is
    // the sequential value.
    for (std::uint32_t i = s.cursor; i < s.end && obs[i].time <= t; ++i) {
      if (obs[i].clock_changed) return obs[i].pre_value;
    }
  }
  return nodes_[id].logical->read(t);
}

}  // namespace stclock
