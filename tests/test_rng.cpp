#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace stclock {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform(-2.5, 3.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, UniformMeanRoughlyCentered) {
  Rng rng(11);
  double sum = 0;
  const int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform(0.0, 1.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(17);
  EXPECT_EQ(rng.uniform_int(5, 5), 5u);
}

TEST(Rng, EmptyRangeThrows) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(1.0, 0.0), std::logic_error);
  EXPECT_THROW((void)rng.uniform_int(2, 1), std::logic_error);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  const int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(Rng, ExponentialPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(0.001), 0.0);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(42), b(42);
  Rng fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
  // Parent stream continues deterministically after the fork too.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // identity permutation is astronomically unlikely
}

}  // namespace
}  // namespace stclock
