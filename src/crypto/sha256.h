#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "util/bytes.h"

/// SHA-256 (FIPS 180-4), implemented from scratch so the repository has no
/// external crypto dependency. Used by HMAC-SHA256, which in turn backs the
/// simulated signature scheme in crypto/signature.h.
namespace stclock::crypto {

inline constexpr std::size_t kDigestSize = 32;
using Digest = std::array<std::uint8_t, kDigestSize>;

/// Incremental hasher: update() any number of times, then finish().
class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s);

  /// Finalizes and returns the digest; the hasher must not be reused after.
  [[nodiscard]] Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finished_ = false;
};

/// One-shot convenience.
[[nodiscard]] Digest sha256(std::span<const std::uint8_t> data);
[[nodiscard]] Digest sha256(std::string_view s);

}  // namespace stclock::crypto
