#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <queue>
#include <random>
#include <vector>

#include "sim/event_queue.h"

/// Property suite for the ladder-queue EventQueue: on randomized monotone
/// workloads (pushes never earlier than the last pop — the discrete-event
/// contract the simulator upholds), the pop sequence must be byte-for-byte
/// the one a reference binary heap ordered by (time, seq) produces. This is
/// the FIFO-preservation guarantee that keeps every golden row bit-identical
/// across the heap -> ladder swap.
namespace stclock {
namespace {

/// The reference model: the old implementation's ordering contract, kept as
/// a plain (time, insertion seq) min-heap with payloads carried alongside.
class ReferenceQueue {
 public:
  void push_timer(RealTime time, TimerEvent ev) {
    Entry e;
    e.time = time;
    e.seq = next_seq_++;
    e.is_timer = true;
    e.timer = ev;
    heap_.push(std::move(e));
  }

  void push_delivery(RealTime time, DeliveryEvent ev) {
    Entry e;
    e.time = time;
    e.seq = next_seq_++;
    e.delivery = std::move(ev);
    heap_.push(std::move(e));
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] RealTime next_time() const { return heap_.top().time; }

  Event pop() {
    const Entry& top = heap_.top();
    Event out;
    out.time = top.time;
    out.seq = top.seq;
    out.is_timer = top.is_timer;
    out.timer = top.timer;
    out.delivery = top.delivery;
    heap_.pop();
    return out;
  }

 private:
  struct Entry {
    RealTime time = 0;
    std::uint64_t seq = 0;
    bool is_timer = false;
    TimerEvent timer;
    DeliveryEvent delivery;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Drives the ladder queue and the reference heap in lockstep: every push
/// goes to both, every pop compares all observable fields exactly — times
/// and sent_at by bit equality, payloads by value, messages by pointer
/// identity (the queue must hand back the same object it was given).
class LockstepHarness {
 public:
  void push(RealTime t) {
    ++salt_;
    if (salt_ % 3 == 0) {
      const TimerEvent ev{static_cast<NodeId>(salt_ % 97), salt_};
      q.push_timer(t, ev);
      ref.push_timer(t, ev);
    } else {
      // sent_at doubles as a payload integrity check: it must ride through
      // slab slot recycling untouched.
      const DeliveryEvent ev{static_cast<NodeId>(salt_ % 89),
                             static_cast<NodeId>(salt_ % 83), msg_,
                             static_cast<RealTime>(salt_) * 0.5};
      q.push_delivery(t, ev);
      ref.push_delivery(t, ev);
    }
  }

  /// Pops from both and returns the (verified identical) event time.
  RealTime pop_and_compare(std::uint64_t step) {
    [&] {
      ASSERT_FALSE(q.empty()) << "ladder empty early at step " << step;
      ASSERT_FALSE(ref.empty()) << "reference empty early at step " << step;
    }();
    EXPECT_EQ(q.next_time(), ref.next_time()) << "peek diverged at step " << step;
    const Event a = q.pop();
    const Event b = ref.pop();
    EXPECT_EQ(a.time, b.time) << "time diverged at step " << step;
    EXPECT_EQ(a.seq, b.seq) << "seq diverged at step " << step;
    EXPECT_EQ(a.is_timer, b.is_timer) << "kind diverged at step " << step;
    if (a.is_timer && b.is_timer) {
      EXPECT_EQ(a.timer.node, b.timer.node);
      EXPECT_EQ(a.timer.id, b.timer.id);
    } else if (!a.is_timer && !b.is_timer) {
      EXPECT_EQ(a.delivery.to, b.delivery.to);
      EXPECT_EQ(a.delivery.from, b.delivery.from);
      EXPECT_EQ(a.delivery.msg.get(), b.delivery.msg.get());
      EXPECT_EQ(a.delivery.sent_at, b.delivery.sent_at);
    }
    return b.time;
  }

  EventQueue q;
  ReferenceQueue ref;

 private:
  std::uint64_t salt_ = 0;
  std::shared_ptr<const Message> msg_ = std::make_shared<const Message>(InitMsg{1});
};

TEST(EventQueueProperty, MatchesReferenceHeapOnChurnWorkloads) {
  // The simulator's steady state: a standing population with every pop
  // spawning a push a random (sometimes zero) distance into the future.
  // Several regimes stress different internals: tight spans keep everything
  // in the bottom list, wide exponential offsets exercise rung spawn and
  // drain, the zero-probability mass creates same-instant cohorts, and the
  // big-population regime forces bottom-overflow rebalancing.
  struct Regime {
    std::uint64_t seed;
    double span;       // scale of initial times and future offsets
    double zero_prob;  // chance a push lands exactly on the popped time
    std::size_t population;
  };
  const Regime regimes[] = {
      {11, 0.001, 0.0, 256},   // dense near-term: bottom-list churn
      {12, 10.0, 0.0, 4096},   // wide spread: rungs spawn and drain
      {13, 1.0, 0.25, 1024},   // heavy same-time cohorts
      {14, 1000.0, 0.0, 512},  // sparse far-future: top catch-all cycles
      {15, 1.0, 0.02, 20000},  // large population: overflow rebalancing
  };
  for (const Regime& r : regimes) {
    SCOPED_TRACE("seed=" + std::to_string(r.seed));
    LockstepHarness h;
    std::mt19937_64 rng(r.seed);
    std::uniform_real_distribution<double> unit(0.0, 1.0);

    for (std::size_t i = 0; i < r.population; ++i) h.push(unit(rng) * r.span);
    for (std::uint64_t step = 0; step < 3 * r.population; ++step) {
      const RealTime popped = h.pop_and_compare(step);
      if (::testing::Test::HasFatalFailure()) return;
      // Push relative to the POPPED time — the monotone contract, exactly
      // how the simulator schedules timers and deliveries.
      const double offset = unit(rng) < r.zero_prob
                                ? 0.0
                                : -r.span * 0.1 * std::log1p(-unit(rng));
      h.push(popped + offset);
    }
    // Drain completely: the tail (deep rung remnants, top leftovers) must
    // come out in reference order too.
    std::uint64_t step = 3 * r.population;
    while (!h.ref.empty()) {
      (void)h.pop_and_compare(step++);
      if (::testing::Test::HasFatalFailure()) return;
    }
    EXPECT_TRUE(h.q.empty());
  }
}

TEST(EventQueueProperty, MatchesReferenceHeapOnBurstThenDrain) {
  // The other shape the simulator produces: a broadcast fans out a burst of
  // deliveries at once (plus stragglers mid-drain), then run_until consumes
  // the backlog. Bimodal times force multi-level rung spawning.
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  LockstepHarness h;
  RealTime base = 0;
  std::uint64_t step = 0;
  for (int burst = 0; burst < 40; ++burst) {
    const std::size_t count = 1 + static_cast<std::size_t>(unit(rng) * 600);
    for (std::size_t i = 0; i < count; ++i) {
      // 10% of pushes land ~1000x further out than the rest.
      const double scale = unit(rng) < 0.1 ? 500.0 : 0.5;
      h.push(base + unit(rng) * scale);
    }
    // Drain roughly half the backlog, pushing the occasional zero-delay
    // event at the just-popped instant (joins its time cohort at the tail).
    const std::size_t drain = count / 2 + 1;
    for (std::size_t i = 0; i < drain && !h.ref.empty(); ++i) {
      base = h.pop_and_compare(step++);
      if (::testing::Test::HasFatalFailure()) return;
      if (i % 7 == 0) h.push(base);
    }
  }
  while (!h.ref.empty()) {
    (void)h.pop_and_compare(step++);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_TRUE(h.q.empty());
}

TEST(EventQueueProperty, RejectsPushesBeforeTheLastPop) {
  // The ladder's bucket spine depends on the monotone contract, so it is
  // enforced, not assumed: scheduling into the past is a logic error.
  EventQueue q;
  q.push_timer(5.0, TimerEvent{0, 1});
  q.push_timer(1.0, TimerEvent{0, 2});  // before another PUSH is fine
  EXPECT_EQ(q.pop().timer.id, 2u);
  EXPECT_THROW(q.push_timer(0.5, TimerEvent{0, 3}), std::logic_error);
  q.push_timer(1.0, TimerEvent{0, 4});  // exactly at the last pop is fine
  EXPECT_EQ(q.pop().timer.id, 4u);
  EXPECT_EQ(q.pop().timer.id, 1u);
}

}  // namespace
}  // namespace stclock
