#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.h"
#include "util/types.h"

/// Simulated digital signatures.
///
/// The Srikanth–Toueg authenticated algorithm assumes unforgeable signatures.
/// We model them with per-node HMAC-SHA256 keys held by a KeyRegistry:
///
///  - *Signing* requires a `Signer` capability handle. The simulation runner
///    hands each honest protocol instance only its own handle and hands the
///    adversary the handles of corrupted nodes — so adversary code is
///    structurally unable to sign on behalf of honest nodes, which is exactly
///    the unforgeability assumption. (A "forger" adversary that fabricates
///    MAC bytes exists in src/adversary/ and is rejected with overwhelming
///    probability by verification; a test pins this down.)
///  - *Verification* is public: anyone may call KeyRegistry::verify. In a real
///    deployment this would be public-key verification against a PKI; using a
///    registry-mediated MAC keeps the trust model identical inside one
///    simulation while exercising a real crypto code path.
namespace stclock::crypto {

struct Signature {
  NodeId signer = 0;
  Digest mac{};

  friend bool operator==(const Signature&, const Signature&) = default;
};

class KeyRegistry;

/// Capability to sign as one node. Copyable but only obtainable from the
/// registry; ownership discipline in core/runner.cpp provides unforgeability.
class Signer {
 public:
  [[nodiscard]] Signature sign(std::span<const std::uint8_t> payload) const;
  [[nodiscard]] NodeId id() const { return id_; }

 private:
  friend class KeyRegistry;
  Signer(NodeId id, const KeyRegistry* registry) : id_(id), registry_(registry) {}

  NodeId id_;
  const KeyRegistry* registry_;
};

class KeyRegistry {
 public:
  /// Derives n per-node secrets deterministically from the master seed.
  KeyRegistry(std::uint32_t n, std::uint64_t master_seed);

  [[nodiscard]] std::uint32_t size() const { return static_cast<std::uint32_t>(secrets_.size()); }

  /// Obtains the signing capability for one node. The caller is responsible
  /// for handing it only to that node's protocol instance (or to the
  /// adversary, if the node is corrupted).
  [[nodiscard]] Signer signer_for(NodeId id) const;

  /// Public verification: checks that `sig` is a valid signature by
  /// `sig.signer` over `payload`.
  [[nodiscard]] bool verify(const Signature& sig, std::span<const std::uint8_t> payload) const;

 private:
  friend class Signer;
  [[nodiscard]] Signature sign_as(NodeId signer, std::span<const std::uint8_t> payload) const;

  std::vector<Digest> secrets_;
};

}  // namespace stclock::crypto
