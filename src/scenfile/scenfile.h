#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "experiment/sweep.h"
#include "scenfile/json.h"

/// Scenario files: define a full experiment — one ScenarioSpec plus a
/// SweepGrid over it — in JSON, so experiments run without recompiling.
///
/// Grid document shape (all keys optional, defaults = ScenarioSpec{}):
///
///   {
///     "base":  { "protocol": "auth", "n": 7, "f": 3, "tdel": 0.01, ... },
///     "axes":  [ {"name": "protocol", "values": ["auth", "echo"]},
///                {"name": "n",        "values": [4, 7, 10]},
///                {"name": "seed",     "values": [1, 2, 3]} ],
///     "reseed_per_cell": false
///   }
///
/// "base" accepts every ScenarioSpec field under the same flat names the
/// sinks emit (n, f, rho, tdel, period, drift, delay, attack, topology,
/// gnp_p, churn_nodes, partition_group, ...), plus the dynamic
/// "topology_events" list of timed {"at": T, "add"/"remove": [a, b]} /
/// {"at": T, "set": "ring"} graph mutations; an axis may range over any of
/// those fields — including the topology block, so one grid can sweep
/// complete vs ring vs gnp, a gnp_p density axis, or (the one array-valued
/// axis) whole edge-failure windows via topology_events. The
/// loader is strict: unknown keys, wrong types, out-of-range values,
/// unregistered protocols, and duplicate axes are hard errors that name the
/// offending field and source line (ScenarioFileError), and every
/// materialized cell is pre-validated against the engine's own rules
/// (experiment::validate_spec) so a bad grid fails at load time, not
/// mid-sweep.
namespace stclock::scenfile {

/// Deserializes one ScenarioSpec from a "base"-shaped JSON object.
[[nodiscard]] experiment::ScenarioSpec spec_from_json(const JsonValue& value,
                                                      const std::string& source,
                                                      const std::string& path = "spec");

/// Parses a ScenarioSpec from JSON text (a bare "base" object).
[[nodiscard]] experiment::ScenarioSpec parse_spec(const std::string& text,
                                                  const std::string& source = "<spec>");

/// Serializes every ScenarioSpec field to JSON, bit-exactly round-trippable
/// through parse_spec (doubles at max_digits10, 64-bit seeds as integers).
[[nodiscard]] std::string spec_to_json(const experiment::ScenarioSpec& spec);

/// Parses and fully validates a grid document from JSON text.
[[nodiscard]] experiment::SweepGrid parse_grid(const std::string& text,
                                               const std::string& source = "<grid>");

/// Reads and parses a grid file from disk.
[[nodiscard]] experiment::SweepGrid load_grid_file(const std::string& path);

/// Parses a "A:B" cell range (half-open, global indices) against a grid of
/// `total` cells. Throws ScenarioFileError for malformed, empty, or
/// out-of-bounds ranges.
[[nodiscard]] std::pair<std::size_t, std::size_t> parse_cell_range(const std::string& range,
                                                                   std::size_t total);

/// Deterministically merges shard outputs of experiment::write_json (e.g.
/// from `scenrun --cells A:B`) into one document: records are re-ordered by
/// their global cell index. Merging shards that cover all cells yields a
/// document byte-identical to the unsharded dump. Duplicate cell indices and
/// unparseable records are errors.
[[nodiscard]] std::string merge_json_sinks(const std::vector<std::string>& shards);

/// Same, for experiment::write_csv outputs: shards must agree on the header
/// row; data rows are re-ordered by the leading cell index.
[[nodiscard]] std::string merge_csv_sinks(const std::vector<std::string>& shards);

}  // namespace stclock::scenfile
