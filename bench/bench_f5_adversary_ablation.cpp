// Experiment F5 — Skew under each Byzantine strategy.
//
// Figure data: one bar per implemented attack, for both variants. The claim
// is uniform: no strategy pushes skew past Dmax, pulse spread past D, or the
// pulse rate past the unforgeability floor.

#include "bench_common.h"

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("F5 — Adversary strategy ablation",
                      "every implemented attack stays within the theorem's bounds", opts);

  experiment::SweepGrid grid(bench::adversarial_scenario(bench::default_auth_config(), 20.0,
                                                         opts.seed));
  grid.axis("variant", {bench::variant_value(bench::default_auth_config()),
                        bench::variant_value(bench::default_echo_config())});
  std::vector<experiment::SweepGrid::Value> attacks;
  for (const AttackKind attack :
       {AttackKind::kNone, AttackKind::kCrash, AttackKind::kSpamEarly,
        AttackKind::kEquivocate, AttackKind::kReplay, AttackKind::kForge}) {
    attacks.emplace_back(attack_name(attack),
                         [attack](experiment::ScenarioSpec& spec) { spec.attack = attack; });
  }
  grid.axis("attack", std::move(attacks));

  const std::vector<experiment::SweepCell> cells = grid.cells();
  const std::vector<experiment::ScenarioResult> results = bench::run_cells(cells, opts);
  if (bench::emit_json(cells, results, opts)) return 0;

  Table table({"variant", "attack", "skew(s)", "Dmax(s)", "pulse-spread",
               "min-period", "max-period", "verdict"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const experiment::ScenarioResult& r = results[i];
    const bool ok = r.live && r.steady_skew <= r.bounds.precision &&
                    r.pulse_spread <= r.bounds.pulse_spread + 1e-9 &&
                    r.min_period >= r.bounds.min_period - 1e-9;
    table.add_row({cells[i].spec.cfg.variant_name(), attack_name(cells[i].spec.attack),
                   Table::sci(r.steady_skew), Table::sci(r.bounds.precision),
                   Table::sci(r.pulse_spread), Table::num(r.min_period, 4),
                   Table::num(r.max_period, 4), ok ? "ok" : "VIOLATED"});
  }
  stclock::bench::emit(table, opts);
  std::cout << "(n=7, extremal drift, split delays; forge rows double as the\n"
               " unforgeability check: a successful forgery would collapse min-period)\n";
  return 0;
}
