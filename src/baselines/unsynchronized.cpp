#include "baselines/unsynchronized.h"

namespace stclock::baselines {

BaselineResult run_unsynchronized(const BaselineSpec& spec) {
  return run_baseline(spec, [](NodeId) { return std::make_unique<UnsynchronizedProtocol>(); });
}

}  // namespace stclock::baselines
