#include "broadcast/echo_broadcast.h"

#include "util/contracts.h"

namespace stclock {

EchoBroadcast::EchoBroadcast(std::uint32_t n, std::uint32_t f, std::uint32_t fanin)
    : n_(n),
      f_(f),
      echo_threshold_(scaled_threshold(f + 1, n, fanin)),
      accept_threshold_(scaled_threshold(2 * f + 1, n, fanin)) {
  ST_REQUIRE(n >= 3 * f + 1, "EchoBroadcast requires n >= 3f+1");
}

void EchoBroadcast::broadcast_ready(Context& ctx, Round k) {
  if (k < floor_) return;
  RoundState& state = rounds_[k];
  if (state.sent_init) return;
  state.sent_init = true;
  ctx.broadcast(Message(InitMsg{k}));
}

bool EchoBroadcast::handle_message(Context& ctx, NodeId from, const Message& m) {
  if (const auto* init = std::get_if<InitMsg>(&m)) {
    if (init->round < floor_) return true;
    RoundState& state = rounds_[init->round];
    state.init_from.insert(from);
    maybe_progress(ctx, init->round, state);
    return true;
  }
  if (const auto* echo = std::get_if<EchoMsg>(&m)) {
    if (echo->round < floor_) return true;
    RoundState& state = rounds_[echo->round];
    state.echo_from.insert(from);
    maybe_progress(ctx, echo->round, state);
    return true;
  }
  return false;
}

void EchoBroadcast::maybe_progress(Context& ctx, Round k, RoundState& state) {
  if (!state.sent_echo &&
      (state.init_from.size() >= echo_threshold() ||
       state.echo_from.size() >= echo_threshold())) {
    state.sent_echo = true;
    ctx.broadcast(Message(EchoMsg{k}));
    // The broadcast self-delivers asynchronously, but acceptance thresholds
    // are evaluated on every delivery, so no state is missed.
  }
  if (!state.accepted && state.echo_from.size() >= accept_threshold()) {
    state.accepted = true;
    deliver_accept(ctx, k);
  }
}

void EchoBroadcast::forget_below(Round floor) {
  if (floor <= floor_) return;
  floor_ = floor;
  rounds_.erase(rounds_.begin(), rounds_.lower_bound(floor));
}

void EchoBroadcast::corrupt_state(Rng& rng) {
  floor_ = rng.uniform_int(0, 1u << 20);
  rounds_.clear();
}

void EchoBroadcast::stabilize(Round expected_floor) {
  if (floor_ > expected_floor) floor_ = expected_floor;
}

}  // namespace stclock
