#pragma once

#include <vector>

#include "baselines/baseline.h"

/// Gradient clock synchronization (GCS) baseline — the protocol family of
/// Fan & Lynch / Lenzen–Locher–Wattenhofer, built for *general graphs* where
/// the figure of merit is the LOCAL skew between adjacent nodes rather than
/// the global spread.
///
/// Each round k, every node broadcasts its logical clock when it reads k*P
/// — on a sparse topology the broadcast reaches only its neighbors. A
/// receiver turns the reading into an offset estimate (value + nominal_delay
/// - own clock at arrival) and keeps the freshest estimate per neighbor. At
/// its next round boundary the node nudges its clock by `gain` times the
/// mean of its fresh neighbor offsets with its own (zero) offset included —
/// the classic distributed-averaging iteration, which converges on every
/// connected graph and keeps the skew between neighbors bounded by the
/// per-round estimate error instead of letting it grow with the network
/// diameter.
///
/// This is the first protocol that exercises the local-skew metric
/// end-to-end: on a ring its steady local skew beats the leader strawman
/// (whose broadcasts only ever reach the leader's two neighbors, leaving
/// the rest of the cycle free-running), which a dedicated test asserts.
/// Averaging carries no Byzantine defense — like CNV, a corrupted neighbor
/// can drag the mean — so it is registered as a fault-free baseline.
namespace stclock::baselines {

struct GradientParams {
  std::uint32_t n = 3;             ///< fleet size (sizes the estimate table)
  Duration period = 1.0;           ///< round length in logical time
  Duration nominal_delay = 0.005;  ///< assumed one-way delay (tdel / 2)
  /// Fraction of the mean neighbor offset applied per round, in (0, 1].
  /// 1.0 jumps straight to the neighborhood average; smaller values smooth
  /// the per-link delay-estimate noise at the cost of slower convergence.
  double gain = 0.5;
};

class GradientProtocol final : public Process {
 public:
  explicit GradientProtocol(GradientParams params);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, NodeId from, const Message& m) override;
  void on_timer(Context& ctx, TimerId id) override;

  [[nodiscard]] Round rounds_completed() const { return round_ - 1; }

 private:
  /// Freshest offset estimate from one neighbor, tagged with the round it
  /// was heard in; estimates older than one round are stale (the neighbor
  /// fell silent or the link vanished mid-run) and are ignored.
  struct PeerEstimate {
    NodeId peer = 0;
    Round heard_round = 0;
    Duration offset = 0;
  };

  GradientParams params_;
  Round round_ = 1;
  TimerId timer_ = 0;
  /// Estimates for the peers actually heard from, sorted by id. Only
  /// neighbors can reach us (broadcast is graph-restricted), so this is
  /// O(degree) per node — an n-sized table here made the fleet O(n^2) in
  /// memory and made every round an O(n) scan per node, which is what
  /// capped gradient sweeps around n = 10^4.
  std::vector<PeerEstimate> peers_;
};

}  // namespace stclock::baselines
