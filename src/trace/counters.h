#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "sim/message.h"

/// Message/byte accounting, maintained by the simulator and reported by the
/// message-complexity experiment (F4).
///
/// The accounting sits on the per-send/per-deliver hot path, so counts are
/// kept in a fixed array keyed by MessageKind — no hashing, no string
/// allocation per event. The string-keyed view is materialized only at
/// report time (by_kind()).
namespace stclock {

struct KindCount {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class MessageCounters {
 public:
  void on_send(MessageKind kind, std::size_t bytes) {
    ++total_sent_;
    total_bytes_ += bytes;
    KindCount& k = kinds_[static_cast<std::size_t>(kind)];
    ++k.messages;
    k.bytes += bytes;
  }

  void on_deliver(MessageKind /*kind*/) { ++total_delivered_; }

  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  [[nodiscard]] std::uint64_t total_delivered() const { return total_delivered_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  /// Raw per-kind counts, indexed by MessageKind.
  [[nodiscard]] const std::array<KindCount, kMessageKindCount>& kinds() const { return kinds_; }

  /// Report-time view keyed by kind name; kinds with no traffic are omitted.
  [[nodiscard]] std::map<std::string, KindCount> by_kind() const;

  void reset();

 private:
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::array<KindCount, kMessageKindCount> kinds_{};
};

}  // namespace stclock
