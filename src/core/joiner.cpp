#include "core/joiner.h"

#include "broadcast/auth_broadcast.h"
#include "broadcast/echo_broadcast.h"

namespace stclock {

std::unique_ptr<BroadcastPrimitive> make_primitive(const SyncConfig& cfg,
                                                   std::uint32_t fanin) {
  if (cfg.variant == Variant::kAuthenticated) {
    return std::make_unique<AuthBroadcast>(cfg.n, cfg.f, fanin);
  }
  return std::make_unique<EchoBroadcast>(cfg.n, cfg.f, fanin);
}

std::unique_ptr<SyncProtocol> make_sync_process(const SyncConfig& cfg, std::uint32_t fanin) {
  return std::make_unique<SyncProtocol>(cfg, make_primitive(cfg, fanin),
                                        /*passive_join=*/false);
}

std::unique_ptr<SyncProtocol> make_joining_process(const SyncConfig& cfg,
                                                   std::uint32_t fanin) {
  return std::make_unique<SyncProtocol>(cfg, make_primitive(cfg, fanin),
                                        /*passive_join=*/true);
}

}  // namespace stclock
