// Experiment F5 — Skew under each Byzantine strategy.
//
// Figure data: one bar per implemented attack, for both variants. The claim
// is uniform: no strategy pushes skew past Dmax, pulse spread past D, or the
// pulse rate past the unforgeability floor.

#include "bench_common.h"

namespace stclock {
namespace {

void sweep(Table& table, const SyncConfig& cfg, std::uint64_t seed) {
  for (const AttackKind attack :
       {AttackKind::kNone, AttackKind::kCrash, AttackKind::kSpamEarly,
        AttackKind::kEquivocate, AttackKind::kReplay, AttackKind::kForge}) {
    RunSpec spec = bench::adversarial_spec(cfg, /*horizon=*/20.0, seed);
    spec.attack = attack;
    const RunResult r = run_sync(spec);
    const bool ok = r.live && r.steady_skew <= r.bounds.precision &&
                    r.pulse_spread <= r.bounds.pulse_spread + 1e-9 &&
                    r.min_period >= r.bounds.min_period - 1e-9;
    table.add_row({cfg.variant_name(), attack_name(attack), Table::sci(r.steady_skew),
                   Table::sci(r.bounds.precision), Table::sci(r.pulse_spread),
                   Table::num(r.min_period, 4), Table::num(r.max_period, 4),
                   ok ? "ok" : "VIOLATED"});
  }
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("F5 — Adversary strategy ablation",
                      "every implemented attack stays within the theorem's bounds");

  Table table({"variant", "attack", "skew(s)", "Dmax(s)", "pulse-spread",
               "min-period", "max-period", "verdict"});
  sweep(table, bench::default_auth_config(), opts.seed);
  sweep(table, bench::default_echo_config(), opts.seed);
  stclock::bench::emit(table, opts);
  std::cout << "(n=7, extremal drift, split delays; forge rows double as the\n"
               " unforgeability check: a successful forgery would collapse min-period)\n";
  return 0;
}
