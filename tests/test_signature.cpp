#include <gtest/gtest.h>

#include "crypto/signature.h"
#include "sim/message.h"

namespace stclock {
namespace {

TEST(Signature, SignVerifyRoundTrip) {
  const crypto::KeyRegistry registry(4, 1);
  const Bytes payload = round_signing_payload(7);
  const crypto::Signature sig = registry.signer_for(2).sign(payload);
  EXPECT_EQ(sig.signer, 2u);
  EXPECT_TRUE(registry.verify(sig, payload));
}

TEST(Signature, WrongPayloadRejected) {
  const crypto::KeyRegistry registry(4, 1);
  const crypto::Signature sig = registry.signer_for(0).sign(round_signing_payload(7));
  EXPECT_FALSE(registry.verify(sig, round_signing_payload(8)));
}

TEST(Signature, CrossSignerRejected) {
  const crypto::KeyRegistry registry(4, 1);
  const Bytes payload = round_signing_payload(1);
  crypto::Signature sig = registry.signer_for(0).sign(payload);
  sig.signer = 1;  // claim somebody else signed it
  EXPECT_FALSE(registry.verify(sig, payload));
}

TEST(Signature, TamperedMacRejected) {
  const crypto::KeyRegistry registry(4, 1);
  const Bytes payload = round_signing_payload(1);
  crypto::Signature sig = registry.signer_for(0).sign(payload);
  sig.mac[0] ^= 0x01;
  EXPECT_FALSE(registry.verify(sig, payload));
}

TEST(Signature, UnknownSignerRejected) {
  const crypto::KeyRegistry registry(4, 1);
  crypto::Signature sig;
  sig.signer = 99;  // not a registered node
  EXPECT_FALSE(registry.verify(sig, round_signing_payload(1)));
}

TEST(Signature, DistinctRegistriesIncompatible) {
  // Two systems with different master seeds must not accept each other's
  // signatures (models separate PKIs).
  const crypto::KeyRegistry a(4, 1), b(4, 2);
  const Bytes payload = round_signing_payload(3);
  const crypto::Signature sig = a.signer_for(0).sign(payload);
  EXPECT_FALSE(b.verify(sig, payload));
}

TEST(Signature, DeterministicAcrossReconstruction) {
  const Bytes payload = round_signing_payload(5);
  const crypto::KeyRegistry a(4, 99), b(4, 99);
  EXPECT_EQ(a.signer_for(3).sign(payload), b.signer_for(3).sign(payload));
}

TEST(Signature, SignerOutOfRangeThrows) {
  const crypto::KeyRegistry registry(4, 1);
  EXPECT_THROW((void)registry.signer_for(4), std::logic_error);
}

TEST(Signature, RoundPayloadsAreInjective) {
  EXPECT_NE(round_signing_payload(1), round_signing_payload(2));
  EXPECT_NE(round_signing_payload(0), round_signing_payload(1));
  // Large rounds too (bit patterns beyond 32 bits).
  EXPECT_NE(round_signing_payload(1ULL << 40), round_signing_payload((1ULL << 40) + 1));
}

}  // namespace
}  // namespace stclock
