#include "baselines/interactive_convergence.h"

#include <cmath>

#include "util/contracts.h"

namespace stclock::baselines {

CnvProtocol::CnvProtocol(CnvParams params) : params_(params) {
  window_ = params_.collect_window > 0 ? params_.collect_window
                                       : params_.delta + 4 * params_.nominal_delay;
  ST_REQUIRE(params_.period > window_ + params_.delta,
             "CnvProtocol: period too small for collection window + threshold");
}

void CnvProtocol::on_start(Context& ctx) { arm_broadcast(ctx); }

void CnvProtocol::arm_broadcast(Context& ctx) {
  broadcast_timer_ =
      ctx.set_timer_at_logical(params_.period * static_cast<double>(round_));
}

void CnvProtocol::on_message(Context& ctx, NodeId from, const Message& m) {
  const auto* cnv = std::get_if<CnvValueMsg>(&m);
  if (cnv == nullptr) return;
  if (cnv->round < round_) return;  // stale round
  auto& slot = offsets_[cnv->round];
  if (slot.contains(from)) return;  // first reading wins
  // Estimated offset of `from`'s clock relative to ours, assuming nominal
  // one-way delay. Estimation error <= tdel/2 + drift during transit.
  slot[from] = cnv->value + params_.nominal_delay - ctx.logical_now();
}

void CnvProtocol::on_timer(Context& ctx, TimerId id) {
  if (id == broadcast_timer_) {
    broadcast_timer_ = 0;
    ctx.broadcast(Message(CnvValueMsg{round_, ctx.logical_now()}));
    collect_timer_ = ctx.set_timer_at_logical(
        params_.period * static_cast<double>(round_) + window_);
    return;
  }
  if (id == collect_timer_) {
    collect_timer_ = 0;
    finish_round(ctx);
  }
}

void CnvProtocol::finish_round(Context& ctx) {
  const auto& slot = offsets_[round_];
  // Average over all n slots; own slot and missing/discarded senders
  // contribute 0 (i.e. "my own value", per the algorithm).
  double sum = 0;
  for (const auto& [sender, offset] : slot) {
    if (sender == ctx.self()) continue;
    if (std::abs(offset) > params_.delta) continue;  // discard outliers
    sum += offset;
  }
  const double adjustment = sum / static_cast<double>(params_.n);
  ctx.logical().adjust_instant(ctx.hardware_now(), adjustment);

  offsets_.erase(offsets_.begin(), offsets_.upper_bound(round_));
  ++round_;
  arm_broadcast(ctx);
}

BaselineResult run_interactive_convergence(const BaselineSpec& spec) {
  return to_baseline_result(
      experiment::run_scenario(to_scenario(spec, "interactive_convergence")));
}

}  // namespace stclock::baselines
