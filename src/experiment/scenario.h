#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adversary/strategies.h"
#include "core/config.h"
#include "core/theory.h"
#include "experiment/environment.h"
#include "sim/broadcast_mode.h"
#include "sim/corruption.h"
#include "sim/process.h"
#include "trace/envelope.h"

/// The unified experiment API: one engine runs every protocol — both
/// Srikanth–Toueg variants and all prior-work baselines — on an identical
/// substrate (clocks, delays, adversary, metric sampling), so comparison
/// tables measure algorithms, not harness differences.
///
/// A `ScenarioSpec` names a protocol (resolved through the ProtocolRegistry,
/// see experiment/registry.h) and describes the environment and adversary;
/// `run_scenario` builds the simulation, runs it, and reports every metric
/// the paper's claims are checked against in one `ScenarioResult`.
namespace stclock::experiment {

/// Fleet size at which the runner switches metric collection to its O(n)
/// scale policy: streaming envelope sums instead of per-node sample series,
/// a minimum skew-sample gap (per-event O(n) sweeps decimated to the step
/// granularity), and no per-node pulse log for baselines. Everything the
/// golden suite pins runs at n <= 9, far below this, so the policy can
/// never perturb a pinned row.
inline constexpr std::uint32_t kScaleMetricThreshold = 4096;

/// How the engine treats the protocol under test.
enum class EngineMode {
  /// A Srikanth–Toueg variant: the engine derives the paper's theoretical
  /// bounds, tracks pulses/liveness, supports late joiners and
  /// over-corruption, and fits the accuracy envelope against the derived
  /// rate bounds.
  kSyncProtocol,
  /// A prior-work baseline: skew / accuracy / cost metrics only; the
  /// accuracy envelope is fitted against the raw hardware drift bounds.
  kBaseline,
};

/// One timed topology mutation in a scenario (the engine compiles the list
/// into a sim::TopologySchedule). Edge events name the endpoints; set-graph
/// events name a generator family, built with the spec's own n / gnp_p /
/// topology_seed. Times must be positive and non-decreasing, endpoints must
/// lie in [0, n), and no compiled epoch may disconnect the graph — all
/// validated at load time for scenario files.
struct TopologyEventSpec {
  enum class Kind : std::uint8_t { kAddEdge, kRemoveEdge, kSetGraph };

  Kind kind = Kind::kAddEdge;
  RealTime at = 0;
  NodeId a = 0;  ///< edge endpoints (edge events only)
  NodeId b = 0;
  TopologyKind set = TopologyKind::kRing;  ///< generator (set-graph only)
};

/// Everything needed to run one experiment cell. Supersedes the legacy
/// RunSpec (core/runner.h) and BaselineSpec (baselines/baseline.h), both of
/// which are now thin shims over this type.
struct ScenarioSpec {
  /// Protocol name resolved via the ProtocolRegistry: "auth", "echo",
  /// "lundelius_welch", "interactive_convergence", "gradient", "hssd",
  /// "leader", "leader_corrupt", "unsynchronized", or any custom
  /// registration.
  std::string protocol = "auth";

  /// System parameters (n, f, rho, tdel, period, alpha, initial_sync, ...).
  /// Baselines read the subset they need; `variant` is forced by the
  /// "auth"/"echo" registry entries.
  SyncConfig cfg;

  /// Baseline collection threshold: CNV's discard threshold, HSSD's
  /// plausibility window, and the sizing of LW's collection window.
  Duration delta = 0.05;

  std::uint64_t seed = 1;
  RealTime horizon = 30.0;
  DriftKind drift = DriftKind::kRandomWalk;
  DelayKind delay = DelayKind::kUniform;
  AttackKind attack = AttackKind::kNone;

  /// Network graph the fleet runs on. The default complete graph is the
  /// paper's implicit topology and reproduces the legacy (pre-topology)
  /// engine bit for bit; any other kind restricts broadcasts to neighbors.
  /// `gnp_p` and `topology_seed` only feed the "gnp" kind, which is
  /// connectivity-checked at validation time.
  TopologyKind topology = TopologyKind::kComplete;
  double gnp_p = 0.5;
  std::uint64_t topology_seed = 1;
  /// Degree of the "expander" topology kind (even, 2 <= k < n); ignored by
  /// every other kind. Sweepable as a scenfile axis.
  std::uint32_t expander_k = 8;

  /// Broadcast fabric (see sim/broadcast_mode.h). "full" — the default,
  /// pinned bit-identical by the golden suite — floods the whole domain with
  /// the paper's absolute thresholds. "neighbors" keeps the same fan-out but
  /// scales the auth/echo acceptance thresholds to the topology's design
  /// degree. "sampled" sends each broadcast to `sample_size` seeded-random
  /// peers (O(n * m) messages per round) with thresholds scaled to the
  /// sample size.
  BroadcastMode broadcast_mode = BroadcastMode::kFull;
  /// Peers per broadcast under sampled mode (>= 1 required then); ignored —
  /// but allowed, so grids can sweep broadcast_mode — in the other modes.
  std::uint32_t sample_size = 0;

  /// Dynamic topology: timed edge/graph events applied to the base
  /// `topology` as the run progresses (edges failing and healing, whole
  /// rewires). Empty — the default — keeps the static path bit-for-bit.
  std::vector<TopologyEventSpec> topology_events;

  /// The last `joiners` honest nodes boot at `join_time` and integrate
  /// passively instead of starting at time 0 (kSyncProtocol only).
  std::uint32_t joiners = 0;
  RealTime join_time = 10.0;

  /// Churn workload (kSyncProtocol only): the first `churn_nodes` honest
  /// nodes crash at `churn_leave` and reboot at `churn_rejoin` as fresh
  /// passively integrating processes (the paper's repaired-process path).
  /// Their pending timers die with them and messages to them are lost while
  /// down. At least one honest node must stay up throughout.
  std::uint32_t churn_nodes = 0;
  RealTime churn_leave = 5.0;
  RealTime churn_rejoin = 12.0;

  /// Partition/heal workload (outside the ST delivery model): during
  /// [partition_start, partition_end) every honest message crossing the cut
  /// between nodes [0, partition_group) and the rest is dropped; the base
  /// `delay` policy governs all other traffic and the healed network.
  /// 0 disables the partition.
  std::uint32_t partition_group = 0;
  RealTime partition_start = 5.0;
  RealTime partition_end = 10.0;

  /// If non-zero, the adversary controls this many nodes regardless of
  /// cfg.f (which the protocol still uses for its thresholds). Setting it
  /// above the variant's resilience bound demonstrates breakdown (T2).
  std::uint32_t corrupt_override = 0;

  /// State-corruption fault injection (the self-stabilization workload, see
  /// sim/corruption.h). At each listed real time — positive, non-decreasing,
  /// strictly before the horizon — a seeded random `corrupt_fraction` of the
  /// up honest nodes has the `corrupt_kinds` categories of its memory
  /// scrambled. Empty — the default — arms nothing and keeps the run
  /// bit-identical to a corruption-free engine.
  std::vector<RealTime> corrupt_at;
  double corrupt_fraction = 1.0;
  std::uint32_t corrupt_kinds = kCorruptAll;

  /// Metric sampling granularity.
  Duration skew_series_interval = 0.05;
  Duration envelope_interval = 0.1;

  /// Worker threads for the simulator core (1..64). 1 — the default — keeps
  /// the sequential engine; >= 2 turns on the lookahead-windowed parallel
  /// engine, which is bit-identical in every metric and so deliberately NOT
  /// part of the result cell key (a cached sequential result satisfies a
  /// parallel request and vice versa). Requires a delay policy with positive
  /// min_delay (delay=half/max); otherwise the run falls back to sequential
  /// with a stderr notice.
  std::uint32_t sim_threads = 1;
};

/// Superset of the legacy RunResult / BaselineResult. Fields that only make
/// sense for kSyncProtocol scenarios (bounds, pulses, liveness, joiners)
/// keep their zero defaults for baselines.
struct ScenarioResult {
  std::string protocol;

  theory::Bounds bounds;  ///< derived theoretical bounds (kSyncProtocol only)

  // Precision.
  double max_skew = 0;     ///< sup spread of honest logical clocks, whole run
  double steady_skew = 0;  ///< same, after the convergence prefix
  /// Local skew (Kuhn/Lenzen/Locher/Oshman): sup over *adjacent* pairs of
  /// the clock difference. Equals the global spread on a complete topology;
  /// on sparse graphs it is the gradient property's figure of merit.
  double local_skew = 0;
  double steady_local_skew = 0;  ///< same, after the convergence prefix
  std::vector<std::pair<RealTime, double>> skew_series;

  // Pulses (acceptance events; kSyncProtocol only).
  double pulse_spread = 0;   ///< max over rounds of acceptance real-time spread
  double min_period = 0;     ///< min observed per-node inter-pulse gap
  double max_period = 0;     ///< max observed per-node inter-pulse gap
  std::uint64_t min_pulses = 0;
  std::uint64_t max_pulses = 0;
  bool live = false;  ///< every honest node keeps pulsing (no stall / split)

  // Accuracy.
  EnvelopeTracker::Report envelope;
  /// Least-squares slopes over a finite window carry O(precision / window)
  /// noise from the sawtooth of corrections; compare fitted rates against
  /// [rate_lo - tol, rate_hi + tol] with this tol (kSyncProtocol only).
  double rate_fit_tolerance = 0;

  // Integration (when spec.joiners > 0).
  double join_latency = -1;  ///< worst joiner: first pulse time - boot time
  bool joiners_integrated = false;

  // Churn (when spec.churn_nodes > 0).
  double rejoin_latency = -1;  ///< worst churned node: first post-rejoin pulse - rejoin time
  bool churned_rejoined = false;  ///< every churned node re-integrated and pulsed again

  // Topology.
  std::uint64_t topology_epochs = 1;  ///< compiled schedule epochs (1 = static)

  // Fault injection (when spec.corrupt_at is non-empty).
  std::uint64_t corruption_events = 0;  ///< corruption events that fired
  std::uint64_t nodes_corrupted = 0;    ///< total victims across those events
  /// Did the skew re-enter — and stay inside — the envelope after the last
  /// corruption event? (Threshold: the derived precision bound for sync
  /// protocols, the pre-corruption steady spread for baselines.)
  bool stabilized = false;
  /// First time after the last corruption event from which the spread
  /// stayed inside the threshold, minus that event's time; 0 when it never
  /// left, -1 when it never re-entered (or no corruption was scheduled).
  double stabilization_time = -1;

  // Cost.
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_dropped = 0;  ///< sends lost to a partition window
  std::uint64_t events_dispatched = 0;  ///< simulator events (timers + deliveries)
  std::uint64_t rounds_completed = 0;  ///< min over honest nodes of last round

  /// Lookahead windows the parallel engine committed; 0 on the sequential
  /// engine (or after a loud fallback). Execution diagnostic only: NOT part
  /// of the resultstore codec, so a run's encoded bytes stay identical
  /// whichever engine produced them.
  std::uint64_t parallel_windows = 0;
};

/// Builds one honest protocol instance. `joining` is true for late joiners
/// (kSyncProtocol scenarios only; baselines never see it set).
using ProcessFactory =
    std::function<std::unique_ptr<Process>(const ScenarioSpec&, NodeId, bool joining)>;

/// Runs the scenario with the protocol resolved through the global
/// ProtocolRegistry. Throws std::out_of_range for unknown protocol names and
/// std::logic_error for inconsistent specs.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

/// The effective per-node broadcast fan-in of the spec's fabric, for
/// quorum-aware primitive thresholds (see scaled_threshold in
/// broadcast/primitive.h). 0 means "the full fleet": full mode always,
/// and any mode whose fan-out the engine cannot bound by design (complete /
/// gnp / custom under neighbors mode). Sampled mode returns sample_size
/// capped at the topology's design degree; neighbors mode returns the
/// design degree of the regular families (ring 2, star 1, torus grid
/// degree, expander k). Cheap — never builds the graph — so registry
/// factories may call it per node.
[[nodiscard]] std::uint32_t broadcast_fanin(const ScenarioSpec& spec);

/// Everything run_scenario_with would reject, checked WITHOUT running the
/// scenario: model requirements (SyncConfig::validate) plus the engine's
/// structural constraints (joiner / churn / partition / corruption counts).
/// Throws std::logic_error naming the violated requirement. The scenario-file
/// loader calls this per grid cell so a bad file fails at load time with the
/// same rules the engine enforces at run time.
void validate_spec(const ScenarioSpec& spec, EngineMode mode);

/// The spec as the engine actually runs it: the registry entry's prepare
/// hook applied (e.g. "leader_corrupt" forces attack = kLeaderLie and
/// f >= 1). Unknown protocols come back unchanged. The sinks record this,
/// so dumps reflect the run, not the request.
[[nodiscard]] ScenarioSpec resolved_spec(const ScenarioSpec& spec);

/// The engine itself: runs the scenario with an explicit mode and process
/// factory, bypassing the registry. This is what the legacy
/// `baselines::run_baseline(spec, factory)` shim calls.
[[nodiscard]] ScenarioResult run_scenario_with(const ScenarioSpec& spec, EngineMode mode,
                                               const ProcessFactory& factory);

}  // namespace stclock::experiment
