#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "resultstore/cache_key.h"
#include "resultstore/codec.h"
#include "resultstore/incremental.h"
#include "resultstore/store.h"

#include "experiment/engine_info.h"

/// The content-addressed result store: cache keys must be stable and
/// sensitive to every key input (spec, seed, engine fingerprint); records
/// must round-trip every ScenarioResult field; and NO corruption —
/// truncation, byte mutation, garbage files — may ever surface as anything
/// but a miss. Robustness mirrors the test_scenfile_errors fuzz style:
/// exhaustive small perturbations, asserted crash-free.
namespace stclock::resultstore {
namespace {

namespace fs = std::filesystem;

using experiment::ScenarioResult;
using experiment::ScenarioSpec;

/// A fresh store directory per test, removed on destruction.
class StoreDir {
 public:
  StoreDir() {
    static std::atomic<int> counter{0};
    dir_ = fs::temp_directory_path() /
           ("stclock-store-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(dir_);
  }
  ~StoreDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
};

/// Every field distinct and nonzero, so a dropped/reordered field in the
/// codec cannot cancel out.
ScenarioResult dense_result() {
  ScenarioResult r;
  r.protocol = "auth";
  r.bounds.accept_spread = 0.01;
  r.bounds.alpha = 0.011;
  r.bounds.gamma = 2e-4;
  r.bounds.precision = 0.031;
  r.bounds.pulse_spread = 0.012;
  r.bounds.min_period = 0.9;
  r.bounds.max_period = 1.1;
  r.bounds.rate_lo = 0.9997;
  r.bounds.rate_hi = 1.0003;
  r.max_skew = 0.0123;
  r.steady_skew = 0.0045;
  r.local_skew = 0.0101;
  r.steady_local_skew = 0.0040;
  r.skew_series = {{0.1, 0.004}, {0.2, 0.0041}, {0.3, 0.0039}, {5.5, 0.0038}};
  r.pulse_spread = 0.008;
  r.min_period = 0.95;
  r.max_period = 1.05;
  r.min_pulses = 5;
  r.max_pulses = 6;
  r.live = true;
  r.envelope.min_rate = 0.99985;
  r.envelope.max_rate = 1.00015;
  r.envelope.upper_offset = 0.002;
  r.envelope.lower_offset = 0.003;
  r.rate_fit_tolerance = 0.0007;
  r.join_latency = 1.25;
  r.joiners_integrated = true;
  r.rejoin_latency = 2.5;
  r.churned_rejoined = true;
  r.topology_epochs = 3;
  r.messages_sent = 1234;
  r.bytes_sent = 56789;
  r.messages_dropped = 17;
  r.events_dispatched = 99999;
  r.rounds_completed = 6;
  r.corruption_events = 2;
  r.nodes_corrupted = 13;
  r.stabilized = true;
  r.stabilization_time = 3.75;
  return r;
}

void expect_equal(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.bounds.accept_spread, b.bounds.accept_spread);
  EXPECT_EQ(a.bounds.alpha, b.bounds.alpha);
  EXPECT_EQ(a.bounds.gamma, b.bounds.gamma);
  EXPECT_EQ(a.bounds.precision, b.bounds.precision);
  EXPECT_EQ(a.bounds.pulse_spread, b.bounds.pulse_spread);
  EXPECT_EQ(a.bounds.min_period, b.bounds.min_period);
  EXPECT_EQ(a.bounds.max_period, b.bounds.max_period);
  EXPECT_EQ(a.bounds.rate_lo, b.bounds.rate_lo);
  EXPECT_EQ(a.bounds.rate_hi, b.bounds.rate_hi);
  EXPECT_EQ(a.max_skew, b.max_skew);
  EXPECT_EQ(a.steady_skew, b.steady_skew);
  EXPECT_EQ(a.local_skew, b.local_skew);
  EXPECT_EQ(a.steady_local_skew, b.steady_local_skew);
  EXPECT_EQ(a.skew_series, b.skew_series);
  EXPECT_EQ(a.pulse_spread, b.pulse_spread);
  EXPECT_EQ(a.min_period, b.min_period);
  EXPECT_EQ(a.max_period, b.max_period);
  EXPECT_EQ(a.min_pulses, b.min_pulses);
  EXPECT_EQ(a.max_pulses, b.max_pulses);
  EXPECT_EQ(a.live, b.live);
  EXPECT_EQ(a.envelope.min_rate, b.envelope.min_rate);
  EXPECT_EQ(a.envelope.max_rate, b.envelope.max_rate);
  EXPECT_EQ(a.envelope.upper_offset, b.envelope.upper_offset);
  EXPECT_EQ(a.envelope.lower_offset, b.envelope.lower_offset);
  EXPECT_EQ(a.rate_fit_tolerance, b.rate_fit_tolerance);
  EXPECT_EQ(a.join_latency, b.join_latency);
  EXPECT_EQ(a.joiners_integrated, b.joiners_integrated);
  EXPECT_EQ(a.rejoin_latency, b.rejoin_latency);
  EXPECT_EQ(a.churned_rejoined, b.churned_rejoined);
  EXPECT_EQ(a.topology_epochs, b.topology_epochs);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.rounds_completed, b.rounds_completed);
  EXPECT_EQ(a.corruption_events, b.corruption_events);
  EXPECT_EQ(a.nodes_corrupted, b.nodes_corrupted);
  EXPECT_EQ(a.stabilized, b.stabilized);
  EXPECT_EQ(a.stabilization_time, b.stabilization_time);
}

// --- Cell fingerprint --------------------------------------------------------

TEST(CacheKey, StableAcrossCallsAndShapedLikeADigest) {
  const ScenarioSpec spec;
  const std::string key = cell_key(spec);
  EXPECT_EQ(key, cell_key(spec));
  EXPECT_EQ(key.size(), 32u);
  for (const char c : key) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << key;
  }
}

TEST(CacheKey, EverySweepableInputChangesTheKey) {
  const ScenarioSpec base;
  std::set<std::string> keys;
  keys.insert(cell_key(base));

  ScenarioSpec mutated = base;
  mutated.protocol = "echo";
  keys.insert(cell_key(mutated));

  mutated = base;
  mutated.cfg.n = 9;
  keys.insert(cell_key(mutated));

  mutated = base;
  mutated.seed = base.seed + 1;
  keys.insert(cell_key(mutated));

  mutated = base;
  mutated.horizon = base.horizon + 1.0;
  keys.insert(cell_key(mutated));

  mutated = base;
  mutated.topology = TopologyKind::kRing;
  keys.insert(cell_key(mutated));

  mutated = base;
  mutated.topology_events.push_back(
      {experiment::TopologyEventSpec::Kind::kRemoveEdge, 1.0, 0, 1, TopologyKind::kRing});
  keys.insert(cell_key(mutated));

  // 1 base + 6 mutations, all distinct.
  EXPECT_EQ(keys.size(), 7u);
}

// sim_threads is an execution knob, not a scenario input: the parallel
// engine is bit-identical, so a cached sequential cell must hit for a
// parallel request (and vice versa).
TEST(CacheKey, SimThreadsDoesNotChangeTheKey) {
  const ScenarioSpec base;
  ScenarioSpec threaded = base;
  threaded.sim_threads = 8;
  EXPECT_EQ(cell_key(base), cell_key(threaded));
}

TEST(CacheKey, AliasProtocolsThatResolveIdenticallyShareAKey) {
  // "leader_corrupt" is registry sugar for "leader_corrupt" with the attack
  // forced; keying happens AFTER resolution, so requesting the resolved form
  // explicitly maps to the same key.
  ScenarioSpec requested;
  requested.protocol = "leader_corrupt";
  requested.cfg.f = 1;
  EXPECT_EQ(cell_key(requested), cell_key(experiment::resolved_spec(requested)));
}

TEST(CacheKey, EngineFingerprintBumpInvalidatesEveryKey) {
  // The satellite guarantee: stale hits across engine rebuilds are
  // structurally impossible because no key survives a fingerprint change.
  std::vector<ScenarioSpec> specs(4);
  specs[1].protocol = "echo";
  specs[2].cfg.n = 8;
  specs[2].topology = TopologyKind::kRing;
  specs[3].seed = 42;
  for (const ScenarioSpec& spec : specs) {
    const std::string now = cell_key(spec, experiment::engine_fingerprint());
    const std::string bumped = cell_key(spec, "stclock-engine/999.0+deadbeef");
    EXPECT_NE(now, bumped);
    EXPECT_EQ(now, cell_key(spec));  // default overload uses the live fingerprint
  }
}

TEST(EngineInfo, FingerprintNamesTheVersionAndASalt) {
  const std::string& fp = experiment::engine_fingerprint();
  EXPECT_NE(fp.find(experiment::kEngineVersion), std::string::npos);
  EXPECT_NE(fp.find('+'), std::string::npos);
  EXPECT_FALSE(experiment::engine_build_salt().empty());
}

// --- Codec -------------------------------------------------------------------

TEST(ResultCodec, RoundTripsEveryField) {
  const ScenarioResult original = dense_result();
  const Bytes encoded = encode_result(original);
  expect_equal(original, decode_result(encoded));
}

TEST(ResultCodec, RejectsVersionMismatchAndTrailingBytes) {
  Bytes encoded = encode_result(dense_result());
  Bytes wrong_version = encoded;
  wrong_version[0] ^= 0xFF;  // version is the leading u32
  EXPECT_THROW((void)decode_result(wrong_version), std::logic_error);

  Bytes trailing = encoded;
  trailing.push_back(0);
  EXPECT_THROW((void)decode_result(trailing), std::logic_error);
}

// --- Store robustness --------------------------------------------------------

TEST(ResultStore, SaveLoadRoundTripAndMissSemantics) {
  const StoreDir dir;
  const ResultStore store(dir.path());
  const std::string key = cell_key(ScenarioSpec{});

  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_FALSE(store.contains(key));

  const ScenarioResult original = dense_result();
  store.save(key, original);
  EXPECT_TRUE(store.contains(key));
  const auto loaded = store.load(key);
  ASSERT_TRUE(loaded.has_value());
  expect_equal(original, *loaded);

  EXPECT_TRUE(store.remove(key));
  EXPECT_FALSE(store.load(key).has_value());
  EXPECT_FALSE(store.remove(key));
}

TEST(ResultStore, EveryTruncationIsAMissNeverACrash) {
  const StoreDir dir;
  const ResultStore store(dir.path());
  const std::string key = cell_key(ScenarioSpec{});
  store.save(key, dense_result());

  const fs::path file = store.object_path(key);
  std::ifstream in(file, std::ios::binary);
  std::string record((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ASSERT_GT(record.size(), 24u);

  for (std::size_t len = 0; len < record.size(); ++len) {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(record.data(), static_cast<std::streamsize>(len));
    out.close();
    EXPECT_FALSE(store.load(key).has_value()) << "truncation to " << len << " bytes must miss";
  }
}

TEST(ResultStore, EveryByteMutationIsAMissNeverACrash) {
  const StoreDir dir;
  const ResultStore store(dir.path());
  const std::string key = cell_key(ScenarioSpec{});
  store.save(key, dense_result());

  const fs::path file = store.object_path(key);
  std::ifstream in(file, std::ios::binary);
  std::string record((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  for (std::size_t pos = 0; pos < record.size(); ++pos) {
    std::string mutated = record;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5A);
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    out.close();
    EXPECT_FALSE(store.load(key).has_value()) << "byte flip at " << pos << " must miss";
  }
}

TEST(ResultStore, GarbageAndEmptyFilesAreMisses) {
  const StoreDir dir;
  const ResultStore store(dir.path());
  const std::string key = cell_key(ScenarioSpec{});

  const fs::path file = store.object_path(key);
  fs::create_directories(file.parent_path());
  {
    std::ofstream out(file, std::ios::binary);
  }
  EXPECT_FALSE(store.load(key).has_value());
  {
    std::ofstream out(file, std::ios::binary);
    out << "this is not a result record, but it is long enough to have a trailer";
  }
  EXPECT_FALSE(store.load(key).has_value());
}

TEST(ResultStore, ConcurrentWritersOfOneKeyNeverCorruptReaders) {
  const StoreDir dir;
  const ResultStore store(dir.path());
  const std::string key = cell_key(ScenarioSpec{});
  const ScenarioResult value = dense_result();
  store.save(key, value);  // readers must see SOME complete record throughout

  std::atomic<bool> stop{false};
  std::atomic<int> corrupt_reads{0};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) store.save(key, value);
    });
  }
  std::thread reader([&] {
    while (!stop.load()) {
      const auto loaded = store.load(key);
      if (!loaded.has_value() || loaded->messages_sent != value.messages_sent) {
        corrupt_reads.fetch_add(1);
      }
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(corrupt_reads.load(), 0);
  const auto final_load = store.load(key);
  ASSERT_TRUE(final_load.has_value());
  expect_equal(value, *final_load);
}

TEST(ResultStore, GcDropsOldEntriesKeepsFreshOnes) {
  const StoreDir dir;
  const ResultStore store(dir.path());
  const ScenarioSpec fresh_spec;
  ScenarioSpec old_spec;
  old_spec.seed = 999;
  const std::string fresh_key = cell_key(fresh_spec);
  const std::string old_key = cell_key(old_spec);
  store.save(fresh_key, dense_result());
  store.save(old_key, dense_result());

  // Backdate one record two days; GC with keep = 1 day must drop exactly it.
  fs::last_write_time(store.object_path(old_key),
                      fs::file_time_type::clock::now() - std::chrono::hours(48));
  EXPECT_EQ(store.gc(std::chrono::seconds(86400)), 1u);
  EXPECT_TRUE(store.load(fresh_key).has_value());
  EXPECT_FALSE(store.load(old_key).has_value());
  EXPECT_EQ(store.stats().entries, 1u);

  // keep = 0 empties the store.
  EXPECT_EQ(store.gc(std::chrono::seconds(0)), 1u);
  EXPECT_EQ(store.stats().entries, 0u);
  EXPECT_TRUE(store.keys().empty());
}

TEST(ResultStore, VerifySweepsTheWholeStoreAndNamesTheDamage) {
  const StoreDir dir;
  const ResultStore store(dir.path());
  std::vector<std::string> keys;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ScenarioSpec spec;
    spec.seed = seed;
    keys.push_back(cell_key(spec));
    store.save(keys.back(), dense_result());
  }

  // Healthy store: everything checked, nothing reported.
  const ResultStore::VerifyReport clean = store.verify();
  EXPECT_EQ(clean.checked, 4u);
  EXPECT_TRUE(clean.corrupt.empty());
  EXPECT_EQ(clean.orphan_tmp, 0u);

  // Flip one byte mid-payload in one published object: verify must name
  // exactly that key (load() already treats it as a miss; verify makes the
  // damage visible instead of silently re-running).
  const fs::path victim = store.object_path(keys[2]);
  std::fstream f(victim, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(10);
  char b = 0;
  f.seekg(10);
  f.get(b);
  f.seekp(10);
  f.put(static_cast<char>(b ^ 0x5A));
  f.close();

  // And plant an orphaned staging file — the residue of a writer that died
  // between stage and rename.
  { std::ofstream orphan(dir.path() / "tmp" / "dead-writer.tmp"); }

  const ResultStore::VerifyReport damaged = store.verify();
  EXPECT_EQ(damaged.checked, 4u);
  ASSERT_EQ(damaged.corrupt.size(), 1u);
  EXPECT_EQ(damaged.corrupt[0], keys[2]);
  EXPECT_EQ(damaged.orphan_tmp, 1u);
}

TEST(ResultStore, UnusableStoreDirectoryFailsLoudlyAtConstruction) {
  // A store rooted UNDER a regular file can never be created.
  const StoreDir dir;
  fs::create_directories(dir.path());
  { std::ofstream plain(dir.path() / "plain"); }
  EXPECT_THROW(ResultStore(dir.path() / "plain" / "store"), std::runtime_error);

  // A store whose staging area is a regular file exists but cannot stage
  // writes; the constructor's probe must refuse it up front rather than let
  // every later save fail quietly.
  const StoreDir dir2;
  fs::create_directories(dir2.path() / "objects");
  { std::ofstream plain(dir2.path() / "tmp"); }
  EXPECT_THROW(ResultStore(dir2.path()), std::runtime_error);
}

TEST(ResultStore, StatsAndKeysEnumerateTheObjects) {
  const StoreDir dir;
  const ResultStore store(dir.path());
  std::set<std::string> expect;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ScenarioSpec spec;
    spec.seed = seed;
    const std::string key = cell_key(spec);
    expect.insert(key);
    store.save(key, dense_result());
  }
  const std::vector<std::string> keys = store.keys();
  EXPECT_EQ(std::set<std::string>(keys.begin(), keys.end()), expect);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(store.stats().entries, 5u);
  EXPECT_GT(store.stats().bytes, 0u);
}

}  // namespace
}  // namespace stclock::resultstore
