#pragma once

#include <memory>
#include <vector>

#include "sim/network.h"
#include "sim/topology_schedule.h"

/// Adversarial delay policies: skew-maximizing assignments of honest-to-
/// honest message delays within the model's [0, tdel].
namespace stclock {

/// Messages to nodes in `slow_targets` take the full tdel; everything else
/// is instantaneous. Maximizes the spread of acceptance times.
class SplitDelay final : public DelayPolicy {
 public:
  explicit SplitDelay(std::vector<NodeId> slow_targets);
  [[nodiscard]] Duration delay(NodeId from, NodeId to, RealTime now, Duration tdel,
                               Rng& rng) override;

 private:
  std::vector<NodeId> slow_;
};

/// Alternates which half of the nodes is slow, switching every `interval`
/// of real time — the lagging group changes between rounds, which stresses
/// the precision analysis harder than a static split.
class AlternatingDelay final : public DelayPolicy {
 public:
  explicit AlternatingDelay(Duration interval);
  [[nodiscard]] Duration delay(NodeId from, NodeId to, RealTime now, Duration tdel,
                               Rng& rng) override;

 private:
  Duration interval_;
};

/// Windowed topology cut (dynamic networks, outside the ST model): during
/// [start, end) every message crossing the cut between the member set
/// (`in_side_a[id]` true) and its complement is dropped (kDropMessage); all
/// other traffic — and all traffic once the cut heals — is delegated to the
/// base policy. Nodes beyond the membership vector are on side B, so any
/// node-set cut of any topology is expressible.
///
/// Since the topology-schedule refactor this is a thin wrapper over a
/// compiled TopologySchedule: on_topology() compiles a three-epoch schedule
/// over the complete graph — full / cross-cut links removed / full again —
/// and delay() drops exactly the sends whose link is missing at their send
/// time. "Which links exist at time t" therefore has a single source of
/// truth, shared with the simulator's own dynamic-graph machinery. The cut
/// schedule is built over the COMPLETE graph on n nodes deliberately: the
/// simulator already enforces the run's actual (possibly itself dynamic)
/// topology, so the policy only encodes what the cut forbids, and the two
/// compose.
class CutDelay : public DelayPolicy {
 public:
  CutDelay(std::vector<bool> in_side_a, RealTime start, RealTime end,
           std::unique_ptr<DelayPolicy> base);
  [[nodiscard]] Duration delay(NodeId from, NodeId to, RealTime now, Duration tdel,
                               Rng& rng) override;
  /// The base policy's bound: a cut only ever *drops* messages (no event, so
  /// nothing inside a lookahead window), and surviving traffic is delegated.
  [[nodiscard]] Duration min_delay(Duration tdel) const override;
  /// Compiles the cut schedule (needs the fleet size) and forwards to the
  /// base policy. Must run before any delay() call — the simulator
  /// guarantees this for every run with a topology, which the scenario
  /// engine always installs.
  void on_topology(const Topology& topo) override;
  void on_topology_change(const Topology& topo, RealTime at) override;  // forwarded

 private:
  [[nodiscard]] bool in_a(NodeId id) const {
    return id < in_a_.size() && in_a_[id];
  }

  std::vector<bool> in_a_;
  RealTime start_, end_;
  std::unique_ptr<DelayPolicy> base_;
  /// full -> cut -> full epochs; null until on_topology().
  std::shared_ptr<const CompiledTopologySchedule> cut_;
};

/// The PR-3 partition/heal workload, now a special case of a topology cut:
/// side A is the contiguous prefix [0, group_a).
class PartitionDelay final : public CutDelay {
 public:
  PartitionDelay(std::uint32_t group_a, RealTime start, RealTime end,
                 std::unique_ptr<DelayPolicy> base);
};

}  // namespace stclock
