// Experiment F1 — Skew over time (the steady-state sawtooth).
//
// Figure data: maximum pairwise skew of honest logical clocks sampled over a
// long adversarial run. The shape to reproduce: skew ratchets up between
// resynchronizations (relative drift + delay spread) and snaps back at each
// pulse, staying below Dmax forever. Emitted as CSV for plotting, plus an
// ASCII sparkline for eyeballing.

#include <algorithm>

#include "bench_common.h"

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("F1 — Skew trace", "skew is a bounded sawtooth, never exceeding Dmax", opts);

  SyncConfig cfg = bench::default_auth_config();
  cfg.rho = 1e-3;  // visible drift component
  experiment::SweepCell cell;
  cell.labels = {{"figure", "f1-skew-trace"}};
  cell.spec = bench::adversarial_scenario(cfg, /*horizon=*/30.0, opts.seed);
  cell.spec.skew_series_interval = 0.25;
  const std::vector<experiment::SweepCell> cells = {cell};
  const std::vector<experiment::ScenarioResult> results = bench::run_cells(cells, opts);
  const experiment::ScenarioResult& r = results[0];
  if (bench::emit_json(cells, results, opts)) return 0;

  std::cout << "# csv: time_s,skew_s,dmax_s\n";
  Table csv({"time_s", "skew_s", "dmax_s"});
  for (const auto& [t, skew] : r.skew_series) {
    csv.add_row({Table::num(t, 2), Table::sci(skew), Table::sci(r.bounds.precision)});
  }
  csv.print_csv(std::cout);

  // ASCII sparkline, 8 levels scaled to Dmax.
  std::cout << "\nsparkline (full scale = Dmax = " << Table::sci(r.bounds.precision)
            << " s):\n";
  const char* levels[] = {"_", ".", ":", "-", "=", "+", "*", "#"};
  std::string line;
  for (const auto& [t, skew] : r.skew_series) {
    const int idx = std::min(7, static_cast<int>(8 * skew / r.bounds.precision));
    line += levels[std::max(0, idx)];
  }
  std::cout << line << "\n\n";
  std::cout << "max skew:    " << Table::sci(r.max_skew) << " s\n"
            << "steady skew: " << Table::sci(r.steady_skew) << " s\n"
            << "Dmax bound:  " << Table::sci(r.bounds.precision) << " s  ("
            << (r.steady_skew <= r.bounds.precision ? "holds" : "VIOLATED") << ")\n";
  return 0;
}
