#include "experiment/sinks.h"

#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "util/contracts.h"

namespace stclock::experiment {

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& field) {
  std::string out;
  for (const char c : field) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Axis names in order of first appearance across all cells.
std::vector<std::string> label_columns(const std::vector<SweepCell>& cells) {
  std::vector<std::string> columns;
  for (const SweepCell& cell : cells) {
    for (const auto& [axis, value] : cell.labels) {
      (void)value;
      bool seen = false;
      for (const std::string& column : columns) seen = seen || column == axis;
      if (!seen) columns.push_back(axis);
    }
  }
  return columns;
}

std::string label_value(const SweepCell& cell, const std::string& axis) {
  for (const auto& [name, value] : cell.labels) {
    if (name == axis) return value;
  }
  return "";
}

struct Field {
  const char* name;
  std::string value;
};

/// Compact label for a corrupt_at list: "[a;b]" (semicolons keep CSV cells
/// unquoted-friendly and the value sweep-axis comparable).
std::string corrupt_at_label(const std::vector<RealTime>& at) {
  std::string out = "[";
  for (std::size_t i = 0; i < at.size(); ++i) {
    if (i > 0) out += ';';
    out += fmt(at[i]);
  }
  return out + "]";
}

std::vector<Field> spec_fields(const ScenarioSpec& spec) {
  return {
      {"protocol", spec.protocol},
      {"n", std::to_string(spec.cfg.n)},
      {"f", std::to_string(spec.cfg.f)},
      {"rho", fmt(spec.cfg.rho)},
      {"tdel", fmt(spec.cfg.tdel)},
      {"period", fmt(spec.cfg.period)},
      {"delta", fmt(spec.delta)},
      {"seed", std::to_string(spec.seed)},
      {"horizon", fmt(spec.horizon)},
      {"drift", drift_name(spec.drift)},
      {"delay", delay_name(spec.delay)},
      {"attack", attack_name(spec.attack)},
      {"topology", topology_kind_name(spec.topology)},
      {"gnp_p", fmt(spec.gnp_p)},
      {"topology_seed", std::to_string(spec.topology_seed)},
      {"expander_k", std::to_string(spec.expander_k)},
      {"broadcast_mode", broadcast_mode_name(spec.broadcast_mode)},
      {"sample_size", std::to_string(spec.sample_size)},
      {"topology_events", std::to_string(spec.topology_events.size())},
      {"joiners", std::to_string(spec.joiners)},
      {"corrupt_override", std::to_string(spec.corrupt_override)},
      {"corrupt_at", corrupt_at_label(spec.corrupt_at)},
      {"corrupt_fraction", fmt(spec.corrupt_fraction)},
      {"corrupt_kinds", corrupt_kinds_name(spec.corrupt_kinds)},
      {"churn_nodes", std::to_string(spec.churn_nodes)},
      {"churn_leave", fmt(spec.churn_leave)},
      {"churn_rejoin", fmt(spec.churn_rejoin)},
      {"partition_group", std::to_string(spec.partition_group)},
      {"partition_start", fmt(spec.partition_start)},
      {"partition_end", fmt(spec.partition_end)},
  };
}

std::vector<Field> result_fields(const ScenarioResult& r) {
  return {
      {"max_skew", fmt(r.max_skew)},
      {"steady_skew", fmt(r.steady_skew)},
      {"local_skew", fmt(r.local_skew)},
      {"steady_local_skew", fmt(r.steady_local_skew)},
      {"precision_bound", fmt(r.bounds.precision)},
      {"pulse_spread", fmt(r.pulse_spread)},
      {"min_period", fmt(r.min_period)},
      {"max_period", fmt(r.max_period)},
      {"min_pulses", std::to_string(r.min_pulses)},
      {"max_pulses", std::to_string(r.max_pulses)},
      {"live", r.live ? "1" : "0"},
      {"min_rate", fmt(r.envelope.min_rate)},
      {"max_rate", fmt(r.envelope.max_rate)},
      {"rate_fit_tolerance", fmt(r.rate_fit_tolerance)},
      {"join_latency", fmt(r.join_latency)},
      {"joiners_integrated", r.joiners_integrated ? "1" : "0"},
      {"rejoin_latency", fmt(r.rejoin_latency)},
      {"churned_rejoined", r.churned_rejoined ? "1" : "0"},
      {"topology_epochs", std::to_string(r.topology_epochs)},
      {"corruption_events", std::to_string(r.corruption_events)},
      {"nodes_corrupted", std::to_string(r.nodes_corrupted)},
      {"stabilized", r.stabilized ? "1" : "0"},
      {"stabilization_time", fmt(r.stabilization_time)},
      {"messages_sent", std::to_string(r.messages_sent)},
      {"bytes_sent", std::to_string(r.bytes_sent)},
      {"messages_dropped", std::to_string(r.messages_dropped)},
      {"events_dispatched", std::to_string(r.events_dispatched)},
      {"rounds_completed", std::to_string(r.rounds_completed)},
  };
}

/// Numeric fields pass through bare in JSON; everything else is quoted.
bool json_bare(const std::string& value) {
  if (value.empty()) return false;
  std::size_t start = value[0] == '-' ? 1 : 0;
  if (start == value.size()) return false;
  for (std::size_t i = start; i < value.size(); ++i) {
    const char c = value[i];
    const bool numeric = (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
                         c == '+' || c == '-';
    if (!numeric) return false;
  }
  return value != "inf" && value != "-inf" && value != "nan";
}

void write_json_object(std::ostream& os, const std::vector<Field>& fields) {
  os << '{';
  bool first = true;
  for (const Field& field : fields) {
    if (!first) os << ", ";
    first = false;
    os << '"' << field.name << "\": ";
    if (json_bare(field.value)) {
      os << field.value;
    } else {
      os << '"' << json_escape(field.value) << '"';
    }
  }
  os << '}';
}

}  // namespace

void write_csv(std::ostream& os, const std::vector<SweepCell>& cells,
               const std::vector<ScenarioResult>& results) {
  ST_REQUIRE(cells.size() == results.size(), "write_csv: cells/results size mismatch");
  const std::vector<std::string> axes = label_columns(cells);

  os << "cell";
  for (const std::string& axis : axes) os << ',' << csv_escape(axis);
  if (!cells.empty()) {
    for (const Field& field : spec_fields(cells[0].spec)) os << ',' << field.name;
    for (const Field& field : result_fields(results[0])) os << ',' << field.name;
  }
  os << '\n';

  for (std::size_t i = 0; i < cells.size(); ++i) {
    os << cells[i].index;
    for (const std::string& axis : axes) os << ',' << csv_escape(label_value(cells[i], axis));
    // Record what actually ran (the registry's prepare hook applied), not
    // the pre-resolution request.
    for (const Field& field : spec_fields(resolved_spec(cells[i].spec))) {
      os << ',' << csv_escape(field.value);
    }
    for (const Field& field : result_fields(results[i])) os << ',' << csv_escape(field.value);
    os << '\n';
  }
}

void write_json(std::ostream& os, const std::vector<SweepCell>& cells,
                const std::vector<ScenarioResult>& results) {
  ST_REQUIRE(cells.size() == results.size(), "write_json: cells/results size mismatch");
  os << "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    os << "  {\"cell\": " << cells[i].index << ", \"labels\": {";
    bool first = true;
    for (const auto& [axis, value] : cells[i].labels) {
      if (!first) os << ", ";
      first = false;
      os << '"' << json_escape(axis) << "\": \"" << json_escape(value) << '"';
    }
    os << "}, \"spec\": ";
    write_json_object(os, spec_fields(resolved_spec(cells[i].spec)));
    os << ", \"result\": ";
    write_json_object(os, result_fields(results[i]));
    os << '}' << (i + 1 < cells.size() ? "," : "") << '\n';
  }
  os << "]\n";
}

}  // namespace stclock::experiment
