#pragma once

#include <vector>

#include "util/types.h"

/// Hardware clocks in the Srikanth–Toueg model.
///
/// A hardware clock is a strictly increasing, piecewise-linear map
/// H : real time -> local time whose rate stays within
/// [1/(1+rho), 1+rho]. The adversary (or a drift model) fixes the whole
/// trajectory up front; protocols may only *read* the clock. Because H is
/// strictly increasing it is invertible, which the simulator uses to turn
/// "wake me when my clock reads L" into a real-time event.
namespace stclock {

class HardwareClock {
 public:
  /// A clock starting at local value `initial` with rate `rate` from real
  /// time 0.
  explicit HardwareClock(LocalTime initial = 0.0, double rate = 1.0);

  /// Appends a rate change taking effect at real time `from`. Segments must
  /// be appended in increasing real-time order; rates must be positive.
  void set_rate_from(RealTime from, double rate);

  /// H(t): local reading at real time t >= 0.
  [[nodiscard]] LocalTime read(RealTime t) const;

  /// Inverse: the unique real time at which the clock reads `local`.
  /// Requires local >= initial value.
  [[nodiscard]] RealTime when_reads(LocalTime local) const;

  /// Instantaneous rate at real time t (right-continuous at breakpoints).
  [[nodiscard]] double rate_at(RealTime t) const;

  [[nodiscard]] LocalTime initial_value() const { return segments_.front().local_start; }

  /// True iff every segment rate lies within [1/(1+rho), 1+rho] (with a tiny
  /// tolerance for round-off). Drift models assert this after construction.
  [[nodiscard]] bool respects_drift_bound(double rho) const;

 private:
  struct Segment {
    RealTime real_start;
    LocalTime local_start;
    double rate;
  };

  /// Index of the segment containing real time t.
  [[nodiscard]] std::size_t segment_at(RealTime t) const;

  std::vector<Segment> segments_;
};

}  // namespace stclock
