#include <gtest/gtest.h>

#include <sstream>

#include "util/table.h"

namespace stclock {
namespace {

TEST(TableTest, AlignedOutputContainsCellsAndRules) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"a-much-longer-name", "22"});

  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);
  // Header + 2 rows + 3 rules = 6 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(TableTest, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::logic_error);
}

TEST(TableTest, EmptyHeaderThrows) {
  EXPECT_THROW(Table t({}), std::logic_error);
}

TEST(TableTest, CsvEscaping) {
  Table t({"k", "v"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quoted\"field", "line\nbreak"});

  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quoted\"\"field\""), std::string::npos);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456789, 3), "1.235");
  EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
  EXPECT_EQ(Table::sci(0.000123, 2), "1.23e-04");
}

TEST(TableTest, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace stclock
