#pragma once

#include <cstdint>
#include <vector>

#include "util/contracts.h"

/// Deterministic pseudo-randomness for simulations.
///
/// Every stochastic choice in the repository (drift trajectories, message
/// delays, adversary coin flips, workload generation) flows through this
/// generator so that any run is reproducible from a single 64-bit seed.
/// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
namespace stclock {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform in [0, 2^64).
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// True with probability p.
  [[nodiscard]] bool bernoulli(double p);

  /// Exponentially distributed with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  /// Forks an independent stream; child streams are themselves deterministic
  /// functions of (parent seed, fork order). Use one child per node so that
  /// adding instrumentation to one node cannot perturb another's randomness.
  [[nodiscard]] Rng fork();

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace stclock
