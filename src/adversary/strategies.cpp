#include "adversary/strategies.h"

#include <algorithm>
#include <vector>

#include "sim/simulator.h"
#include "util/contracts.h"

namespace stclock {

const char* attack_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone: return "none";
    case AttackKind::kCrash: return "crash";
    case AttackKind::kSpamEarly: return "spam-early";
    case AttackKind::kEquivocate: return "equivocate";
    case AttackKind::kReplay: return "replay";
    case AttackKind::kForge: return "forge";
    case AttackKind::kCnvPull: return "cnv-pull";
    case AttackKind::kLwPull: return "lw-pull";
    case AttackKind::kLeaderLie: return "leader-lie";
    case AttackKind::kHssdEarly: return "hssd-early";
    case AttackKind::kSleeper: return "sleeper";
  }
  return "unknown";
}

namespace {

std::vector<NodeId> corrupt_ids(const AdversaryContext& ctx) {
  std::vector<NodeId> ids;
  for (NodeId id = 0; id < ctx.n(); ++id) {
    if (ctx.is_corrupt(id)) ids.push_back(id);
  }
  return ids;
}

std::vector<NodeId> honest_ids_of(const AdversaryContext& ctx) {
  std::vector<NodeId> ids;
  for (NodeId id = 0; id < ctx.n(); ++id) {
    if (!ctx.is_corrupt(id)) ids.push_back(id);
  }
  return ids;
}

/// The maximal flood: every valid message the corrupted nodes could ever
/// legitimately send — round-k signatures (authenticated variant) or init +
/// echo pairs (echo variant) for all rounds up to max_round, delivered to
/// every honest node at `now`. Each round payload is serialized once, not
/// once per corrupted node. Shared by the spam-early and sleeper attacks.
void flood_all_rounds(AdversaryContext& ctx, const AttackParams& params, RealTime now) {
  std::vector<Bytes> payloads;  // authenticated variant only
  if (params.variant == Variant::kAuthenticated) {
    payloads.reserve(params.max_round);
    for (Round k = 1; k <= params.max_round; ++k) payloads.push_back(round_signing_payload(k));
  }
  for (NodeId c : corrupt_ids(ctx)) {
    for (Round k = 1; k <= params.max_round; ++k) {
      if (params.variant == Variant::kAuthenticated) {
        const crypto::Signature sig = ctx.signer_for(c).sign(payloads[k - 1]);
        ctx.send_from_to_all(c, Message(RoundMsg{k, {sig}}), now);
      } else {
        ctx.send_from_to_all(c, Message(InitMsg{k}), now);
        ctx.send_from_to_all(c, Message(EchoMsg{k}), now);
      }
    }
  }
}

/// Highest logical clock among honest started nodes (omniscient estimate of
/// how far the protocol has progressed).
LocalTime max_honest_logical(const AdversaryContext& ctx) {
  const Simulator& sim = ctx.observe();
  LocalTime best = 0;
  for (NodeId id : sim.honest_ids()) {
    if (!sim.is_started(id)) continue;
    best = std::max(best, sim.logical(id).read(sim.now()));
  }
  return best;
}

/// Floods, at time 0, every valid message the corrupted nodes could ever
/// legitimately send: round-k signatures (authenticated variant) or init +
/// echo messages (echo variant) for all rounds up to max_round. This is the
/// maximal acceleration attack: acceptance of round k then fires the moment
/// the FIRST honest node becomes ready, since the f corrupted contributions
/// are already in place.
class SpamEarlyAdversary final : public Adversary {
 public:
  explicit SpamEarlyAdversary(AttackParams params) : params_(params) {}

  void on_start(AdversaryContext& ctx) override {
    flood_all_rounds(ctx, params_, ctx.real_now());
  }
  void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
  void on_timer(AdversaryContext&, TimerId) override {}

 private:
  AttackParams params_;
};

/// Sends round contributions to only the even-indexed half of the honest
/// nodes, trying to make some accept much earlier than others. The Relay
/// property of the primitive defeats this: any accepting honest node drags
/// the rest along within D.
class EquivocateAdversary final : public Adversary {
 public:
  explicit EquivocateAdversary(AttackParams params) : params_(params) {}

  void on_start(AdversaryContext& ctx) override { arm(ctx); }

  void on_timer(AdversaryContext& ctx, TimerId) override {
    const Round k_est =
        static_cast<Round>(std::max(0.0, max_honest_logical(ctx) / params_.period)) + 1;
    const RealTime now = ctx.real_now();
    const std::vector<NodeId> honest = honest_ids_of(ctx);
    for (NodeId c : corrupt_ids(ctx)) {
      for (Round k = k_est; k <= k_est + 1 && k <= params_.max_round; ++k) {
        for (std::size_t i = 0; i < honest.size(); i += 2) {  // half the nodes only
          if (params_.variant == Variant::kAuthenticated) {
            const crypto::Signature sig = ctx.signer_for(c).sign(round_signing_payload(k));
            ctx.send_from(c, honest[i], Message(RoundMsg{k, {sig}}), now);
          } else {
            ctx.send_from(c, honest[i], Message(InitMsg{k}), now);
            ctx.send_from(c, honest[i], Message(EchoMsg{k}), now);
          }
        }
      }
    }
    arm(ctx);
  }
  void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}

 private:
  void arm(AdversaryContext& ctx) {
    (void)ctx.set_timer_at_real(ctx.real_now() + params_.period / 2);
  }
  AttackParams params_;
};

/// Records every protocol message received by corrupted nodes and replays
/// the lot once per period. Round-tagged signing payloads make replays
/// harmless: a (round k) signature never counts for round k' != k, and
/// duplicate signers are deduplicated.
class ReplayAdversary final : public Adversary {
 public:
  explicit ReplayAdversary(AttackParams params) : params_(params) {}

  void on_start(AdversaryContext& ctx) override { arm(ctx); }

  void on_message(AdversaryContext&, NodeId, NodeId, const Message& m) override {
    if (stash_.size() < kMaxStash) stash_.push_back(m);
  }

  void on_timer(AdversaryContext& ctx, TimerId) override {
    const std::vector<NodeId> corrupt = corrupt_ids(ctx);
    if (!corrupt.empty()) {
      for (const Message& m : stash_) {
        ctx.send_from_to_all(corrupt.front(), m, ctx.real_now());
      }
    }
    arm(ctx);
  }

 private:
  void arm(AdversaryContext& ctx) {
    (void)ctx.set_timer_at_real(ctx.real_now() + params_.period);
  }

  static constexpr std::size_t kMaxStash = 512;
  AttackParams params_;
  std::vector<Message> stash_;
};

/// Fabricates signature bundles naming *honest* signers with random MAC
/// bytes, for rounds slightly in the future. If any honest node ever
/// accepted one of these, Unforgeability would be broken; verification
/// rejects them (probability of a 256-bit MAC collision is negligible).
class ForgeAdversary final : public Adversary {
 public:
  explicit ForgeAdversary(AttackParams params) : params_(params) {}

  void on_start(AdversaryContext& ctx) override { arm(ctx); }

  void on_timer(AdversaryContext& ctx, TimerId) override {
    const Round k = static_cast<Round>(
                        std::max(0.0, max_honest_logical(ctx) / params_.period)) +
                    2;  // a round no honest node is ready for yet
    const std::vector<NodeId> honest = honest_ids_of(ctx);
    const std::vector<NodeId> corrupt = corrupt_ids(ctx);
    if (!corrupt.empty() && params_.variant == Variant::kAuthenticated) {
      RoundMsg forged{k, {}};
      for (NodeId h : honest) {
        crypto::Signature sig;
        sig.signer = h;
        for (auto& byte : sig.mac) byte = static_cast<std::uint8_t>(ctx.rng().next_u64());
        forged.sigs.push_back(sig);
      }
      ctx.send_from_to_all(corrupt.front(), Message(forged), ctx.real_now());
    }
    arm(ctx);
  }
  void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}

 private:
  void arm(AdversaryContext& ctx) {
    (void)ctx.set_timer_at_real(ctx.real_now() + params_.period / 2);
  }
  AttackParams params_;
};

/// Against interactive convergence (CNV): each corrupted node feeds every
/// honest receiver a per-receiver reading sitting just inside the discard
/// threshold, dragging the round average (and hence the clock rate) upward
/// by ~ f * 0.9 * delta / n per round. This is the drift-amplification
/// weakness the paper's accuracy-optimality result fixes.
class CnvPullAdversary final : public Adversary {
 public:
  explicit CnvPullAdversary(AttackParams params) : params_(params) {}

  void on_start(AdversaryContext& ctx) override { arm(ctx); }

  void on_timer(AdversaryContext& ctx, TimerId) override {
    const Simulator& sim = ctx.observe();
    const RealTime now = ctx.real_now();
    for (NodeId r : sim.honest_ids()) {
      if (!sim.is_started(r)) continue;
      const LocalTime lr = sim.logical(r).read(now);
      const Round k = static_cast<Round>(std::max(0.0, lr / params_.period));
      // The receiver turns (value, delivery clock) into an offset estimate
      // (value + nominal_delay - L_recv); aim that estimate at +0.9*delta.
      const LocalTime value = lr + 0.9 * params_.cnv_delta - params_.nominal_delay;
      for (NodeId c : corrupt_ids(ctx)) {
        for (Round kk = std::max<Round>(k, 1); kk <= k + 1; ++kk) {
          ctx.send_from(c, r, Message(CnvValueMsg{kk, value}), now);
        }
      }
    }
    arm(ctx);
  }
  void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}

 private:
  void arm(AdversaryContext& ctx) {
    (void)ctx.set_timer_at_real(ctx.real_now() + params_.period / 8);
  }
  AttackParams params_;
};

/// Against Lundelius–Welch: corrupted nodes send sync messages for rounds
/// the honest nodes have not reached, producing extreme positive offset
/// estimates. The f-highest / f-lowest trim discards them, so LW should be
/// unaffected (this is the contrast case to CnvPull).
class LwPullAdversary final : public Adversary {
 public:
  explicit LwPullAdversary(AttackParams params) : params_(params) {}

  void on_start(AdversaryContext& ctx) override { arm(ctx); }

  void on_timer(AdversaryContext& ctx, TimerId) override {
    const Round k = static_cast<Round>(
                        std::max(0.0, max_honest_logical(ctx) / params_.period)) +
                    1;
    for (NodeId c : corrupt_ids(ctx)) {
      ctx.send_from_to_all(c, Message(LwValueMsg{k}), ctx.real_now());
      if (k > 1) ctx.send_from_to_all(c, Message(LwValueMsg{k - 1}), ctx.real_now());
    }
    arm(ctx);
  }
  void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}

 private:
  void arm(AdversaryContext& ctx) {
    (void)ctx.set_timer_at_real(ctx.real_now() + params_.period / 8);
  }
  AttackParams params_;
};

/// Against HSSD-style single-signature acceptance: for each honest receiver,
/// sign (round k) for the largest k whose plausibility window has opened at
/// that receiver and deliver it immediately. Every valid acceptance then
/// advances the receiver's clock by up to the window width — compounding
/// each round into a constant-factor rate amplification.
class HssdEarlyAdversary final : public Adversary {
 public:
  explicit HssdEarlyAdversary(AttackParams params) : params_(params) {}

  void on_start(AdversaryContext& ctx) override { arm(ctx); }

  void on_timer(AdversaryContext& ctx, TimerId) override {
    const Simulator& sim = ctx.observe();
    const RealTime now = ctx.real_now();
    const std::vector<NodeId> corrupt = corrupt_ids(ctx);
    if (!corrupt.empty()) {
      for (NodeId r : sim.honest_ids()) {
        if (!sim.is_started(r)) continue;
        const LocalTime c = sim.logical(r).read(now);
        // Largest k with k*P - window <= c.
        const auto k = static_cast<Round>((c + params_.cnv_delta) / params_.period);
        if (k >= 1) {
          const crypto::Signature sig =
              ctx.signer_for(corrupt.front()).sign(round_signing_payload(k));
          ctx.send_from(corrupt.front(), r, Message(RoundMsg{k, {sig}}), now);
        }
      }
    }
    arm(ctx);
  }
  void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}

 private:
  void arm(AdversaryContext& ctx) {
    (void)ctx.set_timer_at_real(ctx.real_now() + params_.period / 16);
  }
  AttackParams params_;
};

/// Crashed until `sleeper_wake`, then the full spam-early flood. Guarantees
/// must not depend on the adversary showing its hand at time zero.
class SleeperAdversary final : public Adversary {
 public:
  explicit SleeperAdversary(AttackParams params) : params_(params) {}

  void on_start(AdversaryContext& ctx) override {
    (void)ctx.set_timer_at_real(params_.sleeper_wake);
  }

  void on_timer(AdversaryContext& ctx, TimerId) override {
    flood_all_rounds(ctx, params_, ctx.real_now());
  }
  void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}

 private:
  AttackParams params_;
};

/// A corrupted leader (the highest node id) that broadcasts a clock running
/// 10% fast. Followers of the leader-sync strawman slave to it unquestioned,
/// so every correct clock in the system is dragged off by an unbounded and
/// growing amount — the single-point-of-failure the quorum-based primitive
/// eliminates.
class LeaderLieAdversary final : public Adversary {
 public:
  explicit LeaderLieAdversary(AttackParams params) : params_(params) {}

  void on_start(AdversaryContext& ctx) override { arm(ctx); }

  void on_timer(AdversaryContext& ctx, TimerId) override {
    const std::vector<NodeId> corrupt = corrupt_ids(ctx);
    if (!corrupt.empty()) {
      const NodeId leader = corrupt.back();
      const LocalTime lie = 1.1 * ctx.real_now();
      ctx.send_from_to_all(leader, Message(LeaderTimeMsg{round_, lie}), ctx.real_now());
      ++round_;
    }
    arm(ctx);
  }
  void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}

 private:
  void arm(AdversaryContext& ctx) {
    (void)ctx.set_timer_at_real(ctx.real_now() + params_.period);
  }
  AttackParams params_;
  Round round_ = 1;
};

}  // namespace

std::unique_ptr<Adversary> make_attack(AttackKind kind, const AttackParams& params) {
  switch (kind) {
    case AttackKind::kNone:
    case AttackKind::kCrash:
      return nullptr;
    case AttackKind::kSpamEarly:
      return std::make_unique<SpamEarlyAdversary>(params);
    case AttackKind::kEquivocate:
      return std::make_unique<EquivocateAdversary>(params);
    case AttackKind::kReplay:
      return std::make_unique<ReplayAdversary>(params);
    case AttackKind::kForge:
      return std::make_unique<ForgeAdversary>(params);
    case AttackKind::kCnvPull:
      return std::make_unique<CnvPullAdversary>(params);
    case AttackKind::kLwPull:
      return std::make_unique<LwPullAdversary>(params);
    case AttackKind::kLeaderLie:
      return std::make_unique<LeaderLieAdversary>(params);
    case AttackKind::kHssdEarly:
      return std::make_unique<HssdEarlyAdversary>(params);
    case AttackKind::kSleeper:
      return std::make_unique<SleeperAdversary>(params);
  }
  return nullptr;
}

}  // namespace stclock
