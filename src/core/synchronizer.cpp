#include "core/synchronizer.h"

#include "core/joiner.h"
#include "util/contracts.h"

namespace stclock {

Duration min_lockstep_round_duration(const SyncConfig& cfg) {
  const theory::Bounds bounds = theory::derive_bounds(cfg);
  // Skew between sender and receiver logical clocks, plus the logical time
  // the receiver's clock advances while the message is in flight, with 5%
  // headroom over the exact bound.
  return 1.05 * (bounds.precision + (1 + cfg.rho) * cfg.tdel);
}

SynchronizedApp::SynchronizedApp(SyncConfig cfg, Duration round_duration,
                                 LocalTime first_round_at, std::unique_ptr<LockstepApp> app)
    : sync_(make_sync_process(cfg)),
      app_(std::move(app)),
      round_duration_(round_duration),
      first_round_at_(first_round_at) {
  ST_REQUIRE(app_ != nullptr, "SynchronizedApp: app required");
  ST_REQUIRE(round_duration_ >= min_lockstep_round_duration(cfg),
             "SynchronizedApp: round duration below the synchrony bound");
  ST_REQUIRE(first_round_at_ > 0, "SynchronizedApp: first round must be in the future");

  // Every clock correction invalidates the real-time translation of the
  // pending round timer; note it and re-arm once the enclosing handler
  // finishes (we need the Context to do so).
  sync_->set_pulse_observer([this](NodeId node, Round k) {
    rearm_pending_ = true;
    if (external_observer_) external_observer_(node, k);
  });
}

void SynchronizedApp::set_pulse_observer(SyncProtocol::PulseObserver observer) {
  external_observer_ = std::move(observer);
}

void SynchronizedApp::arm_round_timer(Context& ctx) {
  if (round_timer_ != 0) ctx.cancel_timer(round_timer_);
  const LocalTime next =
      first_round_at_ + round_duration_ * static_cast<double>(current_round_);
  round_timer_ = ctx.set_timer_at_logical(next);
  rearm_pending_ = false;
}

void SynchronizedApp::on_start(Context& ctx) {
  sync_->on_start(ctx);
  arm_round_timer(ctx);
}

void SynchronizedApp::on_message(Context& ctx, NodeId from, const Message& m) {
  if (const auto* lockstep = std::get_if<LockstepMsg>(&m)) {
    handle_lockstep(ctx, from, *lockstep);
    return;
  }
  sync_->on_message(ctx, from, m);
  if (rearm_pending_) arm_round_timer(ctx);
}

void SynchronizedApp::on_timer(Context& ctx, TimerId id) {
  if (id == round_timer_) {
    round_timer_ = 0;
    enter_round(ctx);
    return;
  }
  sync_->on_timer(ctx, id);
  if (rearm_pending_) arm_round_timer(ctx);
}

void SynchronizedApp::handle_lockstep(Context& ctx, NodeId from, const LockstepMsg& m) {
  if (m.round == current_round_) {
    app_->on_round_message(from, m.round, m.payload);
    return;
  }
  if (m.round > current_round_) {
    // The sender is (legitimately) up to one skew-bound ahead; hold the
    // message until this node enters that round.
    buffered_[m.round].emplace_back(from, m.payload);
    return;
  }
  // Synchrony violation: the message arrived after this node left round
  // m.round. Must never happen when round_duration respects the bound.
  (void)ctx;
  ++late_messages_;
}

void SynchronizedApp::enter_round(Context& ctx) {
  ++current_round_;

  const std::uint64_t payload = app_->on_round(ctx.self(), current_round_);
  ctx.broadcast(Message(LockstepMsg{current_round_, payload}));

  // Flush messages that arrived while we were still in the previous round.
  if (const auto it = buffered_.find(current_round_); it != buffered_.end()) {
    for (const auto& [from, buffered_payload] : it->second) {
      app_->on_round_message(from, current_round_, buffered_payload);
    }
    buffered_.erase(it);
  }
  // Drop any stale buffers (rounds this node skipped cannot be replayed
  // meaningfully; there are none when synchrony holds).
  buffered_.erase(buffered_.begin(), buffered_.lower_bound(current_round_));

  arm_round_timer(ctx);
}

}  // namespace stclock
