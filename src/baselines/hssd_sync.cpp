#include "baselines/hssd_sync.h"

#include <algorithm>

#include "util/contracts.h"

namespace stclock::baselines {

HssdProtocol::HssdProtocol(HssdParams params) : params_(params) {
  ST_REQUIRE(params_.window > 0 && params_.window < params_.period / 2,
             "HssdProtocol: window must lie in (0, P/2)");
  ST_REQUIRE(params_.beta >= 0 && params_.beta < params_.period,
             "HssdProtocol: beta must lie in [0, P)");
}

void HssdProtocol::on_start(Context& ctx) { arm_broadcast(ctx); }

void HssdProtocol::arm_broadcast(Context& ctx) {
  if (broadcast_timer_ != 0) ctx.cancel_timer(broadcast_timer_);
  broadcast_timer_ =
      ctx.set_timer_at_logical(params_.period * static_cast<double>(next_broadcast_));
}

void HssdProtocol::on_timer(Context& ctx, TimerId id) {
  if (id != broadcast_timer_) return;
  broadcast_timer_ = 0;
  const Round k = next_broadcast_;
  ++next_broadcast_;
  const crypto::Signature sig = ctx.signer().sign(round_signing_payload(k));
  ctx.broadcast(Message(RoundMsg{k, {sig}}));
  // Own signature triggers acceptance through self-delivery; arm the next
  // broadcast only if acceptance has not already done so.
  if (broadcast_timer_ == 0) arm_broadcast(ctx);
}

void HssdProtocol::on_message(Context& ctx, NodeId /*from*/, const Message& m) {
  const auto* rm = std::get_if<RoundMsg>(&m);
  if (rm == nullptr || rm->sigs.empty()) return;
  try_accept(ctx, rm->round, rm->sigs.front());
}

void HssdProtocol::try_accept(Context& ctx, Round k, const crypto::Signature& sig) {
  if (k < next_round_) return;  // already reset for this round
  if (!ctx.registry().verify(sig, round_signing_payload(k))) return;

  // Plausibility guard: the message may move our clock only within the
  // window around kP. This is the sole protection — one valid signature
  // from ANY node (honest or not) passes it.
  const LocalTime target = params_.period * static_cast<double>(k);
  const LocalTime now = ctx.logical_now();
  if (now < target - params_.window || now > target + params_.window) return;

  // Relay first so everyone else accepts within one delay.
  ctx.broadcast(Message(RoundMsg{k, {sig}}));

  ctx.logical().adjust_instant(ctx.hardware_now(), target + params_.beta - now);
  next_round_ = k + 1;
  next_broadcast_ = std::max(next_broadcast_, k + 1);
  arm_broadcast(ctx);
}

BaselineResult run_hssd(const BaselineSpec& spec) {
  return to_baseline_result(experiment::run_scenario(to_scenario(spec, "hssd")));
}

}  // namespace stclock::baselines
