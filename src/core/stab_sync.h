#pragma once

#include <memory>

#include "core/sync_protocol.h"

/// Self-stabilizing Srikanth–Toueg (after Khanchandani–Lenzen,
/// "Self-stabilizing Byzantine Clock Synchronization with Optimal
/// Precision"): the ordinary round/acceptance protocol on the wire, hardened
/// to resume synchronization from ARBITRARY memory state — not just the
/// clean boots the joiner path covers.
///
/// The recovery anchor is the hardware clock. Corruption rewrites memory —
/// logical-clock corrections, round counters, primitive floors and buffers,
/// pending timers — but the oscillator itself is hardware and keeps running,
/// and so does the periodic hardware ticker (Context::start_ticker). Every
/// tick, a watchdog clamps each piece of state back into the band that
/// correct operation can reach:
///
///  1. Clock: the gap C - H moves slowly in correct operation — one bounded
///     correction per round — so the watchdog tracks its legitimate value
///     (`anchor_gap_`, refreshed at every acceptance and every in-band
///     tick) and overwrites any excursion beyond clamp_bound() with
///     C := H + anchor. Tracking the gap rather than pinning C near H
///     matters: the fleet's logical time legitimately diverges from any one
///     hardware clock (rounds pace at the fastest node, ~rho + alpha per
///     period), so a fixed anchor would eventually clamp healthy nodes.
///  2. Counters: next_round_/next_broadcast_ must match floor(C/P)+1 up to
///     a small slack; outside it they are recomputed from the (repaired)
///     clock. Bounded state, re-derivable from the anchor.
///  3. Primitive: a round floor scrambled above the live round would leave
///     the node deaf forever; it is clamped back down (never up).
///  4. Readiness timer: unconditionally re-armed every tick, so a timer that
///     was cancelled by corruption — or armed against pre-corruption clock
///     state and therefore stale — heals within one tick instead of
///     stalling the node permanently.
///
/// The anchor itself is ordinary corruptible memory (corrupt_state scrambles
/// it along with the counters). A scrambled anchor survives at most until
/// the next acceptance: the watchdog clamps the clock to the wrong gap, but
/// the clock is then merely offset — the situation plain auth already
/// recovers from — and the first accepted round snaps clock AND anchor back.
///
/// Once clocks and counters realign, round broadcasts re-synchronize,
/// quorums re-form, and the first acceptance restores ordinary precision;
/// `stabilization_time` in ScenarioResult measures exactly this. Plain
/// `auth` under the same full corruption stalls permanently: its timers are
/// gone and nothing ever re-arms them. Deliberately NOT used: co-signing
/// future rounds ahead of time — unbounded forward state would let one
/// Byzantine signer plus stored co-signatures forge a quorum for an
/// arbitrary round, destroying the unforgeability argument. The hardware
/// anchor needs no extra trust.
namespace stclock {

class StabSyncProtocol final : public SyncProtocol {
 public:
  StabSyncProtocol(SyncConfig cfg, std::unique_ptr<BroadcastPrimitive> primitive,
                   bool passive_join = false);

  void on_start(Context& ctx) override;
  void on_tick(Context& ctx) override;
  /// Everything the base scrambles, plus the watchdog's own anchor — the
  /// repair machinery gets no memory the fault model cannot touch.
  void corrupt_state(Rng& rng) override;

 protected:
  /// Every legitimate correction moves C - H; record the post-correction
  /// gap so the watchdog never mistakes it for damage (this also covers the
  /// arbitrarily large integration jump of a joining process).
  void on_accept(Context& ctx, Round k) override;

 private:
  /// Largest legitimate |(C - H) - anchor| between two anchor refreshes:
  /// one round's correction plus jitter headroom. Far below the corruption
  /// scramble range (several periods).
  [[nodiscard]] Duration clamp_bound() const;

  Duration tick_interval_;
  Duration anchor_gap_ = 0;  ///< last known-legitimate value of C - H
};

}  // namespace stclock
