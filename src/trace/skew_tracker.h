#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "util/types.h"

/// Measures precision: the spread of honest logical clocks over a run.
///
/// Install via Simulator::set_post_event_hook (the runner does this), so the
/// spread is sampled at exactly the instants state can change. Between
/// events clocks advance linearly, so event-time sampling bounds the true
/// supremum to within gamma * (inter-event gap) — negligible at the event
/// densities of these protocols.
///
/// Besides the global spread, the tracker measures *local skew* — the max
/// clock difference over pairs of topology-adjacent nodes, the figure of
/// merit of gradient clock synchronization (Kuhn/Lenzen/Locher/Oshman). The
/// adjacency is read from the simulator's CURRENT graph at every sample, so
/// on a dynamic topology the metric always reflects the links that were
/// live at measurement time. On the complete topology (or with no topology)
/// local skew equals the global spread, at no extra cost.
///
/// The sparse pass is built to survive n = 10^6: per-node scratch is marked
/// with a generation counter (no O(n) re-zeroing per sample), and the O(E)
/// adjacent-pair rescan is skipped entirely — reusing the previous result
/// bit-for-bit — when the sampled set, every sampled value, and the live
/// graph are all unchanged since the last sample.
///
/// Past n = kLocalSkewPoolMaxN the per-node scratch itself would be the
/// problem (16 bytes/node = 160 MB per tracker at 10^7), so the local-skew
/// measurement pools: only nodes with id < kLocalSkewPoolMaxN carry scratch,
/// and local skew is measured over the subgraph induced on that prefix — a
/// deterministic sample of the fleet's adjacent pairs. The global spread
/// still scans every node (no storage needed). Every run at or below the
/// cap — including the whole golden suite and the n = 10^6 benches — is
/// bit-identical to the unpooled tracker.
namespace stclock {

class SkewTracker {
 public:
  /// Fleet size past which local skew pools to the id < cap prefix (2^20,
  /// comfortably above n = 10^6).
  static constexpr std::uint32_t kLocalSkewPoolMaxN = 1u << 20;
  /// `include` filters which nodes count (e.g. to exclude a joiner until it
  /// has integrated); null means "all honest started nodes".
  explicit SkewTracker(Duration series_interval = 0.05,
                       std::function<bool(NodeId)> include = nullptr);

  /// Samples the current spread; called from the post-event hook.
  void sample(const Simulator& sim);

  /// Ignore samples before `t` in steady_max_skew() (skip the initial
  /// convergence phase).
  void set_steady_start(RealTime t) { steady_start_ = t; }

  /// Decimates sampling itself: samples closer than `gap` to the previous
  /// one are dropped wholesale. At n >= the scale threshold the per-event
  /// O(n) value sweep is what dominates a run, and event densities make
  /// per-event sampling redundant; the runner engages this only for fleets
  /// far above everything the golden suite pins. 0 (the default) keeps the
  /// every-event behavior.
  void set_min_sample_gap(Duration gap) { min_sample_gap_ = gap; }

  /// Arms the stabilization watch: samples at t >= `after` (the last
  /// corruption event) are judged against `threshold`, and the tracker
  /// records the first time from which the spread enters — and then STAYS —
  /// inside it. threshold <= 0 selects the pre-corruption reference: the
  /// max spread observed in [steady_start, after), i.e. "as tight as it was
  /// before the fault" (for baselines with no derived precision bound).
  void set_stabilization(RealTime after, double threshold);

  /// True iff post-corruption samples exist and the spread re-entered the
  /// threshold and never left again.
  [[nodiscard]] bool stabilized() const {
    return stab_armed_ && stab_post_seen_ && stab_candidate_ >= 0;
  }
  /// Recovery latency: first time (minus `after`) from which the spread
  /// stayed inside the threshold; 0 if it never left, -1 if not stabilized.
  [[nodiscard]] double stabilization_time() const {
    return stabilized() ? std::max(0.0, stab_candidate_ - stab_after_) : -1.0;
  }

  [[nodiscard]] double max_skew() const { return max_skew_; }
  [[nodiscard]] double steady_max_skew() const { return steady_max_skew_; }
  [[nodiscard]] RealTime max_skew_time() const { return max_skew_time_; }
  /// Max skew over topology-adjacent pairs (== max_skew when complete).
  [[nodiscard]] double local_skew() const { return local_skew_; }
  [[nodiscard]] double steady_local_skew() const { return steady_local_skew_; }

  /// Decimated (time, spread) series for the skew-trace figure.
  [[nodiscard]] const std::vector<std::pair<RealTime, double>>& series() const {
    return series_;
  }

 private:
  Duration series_interval_;
  std::function<bool(NodeId)> include_;
  RealTime steady_start_ = 0;
  Duration min_sample_gap_ = 0;
  RealTime last_sample_time_ = -1;

  bool stab_armed_ = false;
  RealTime stab_after_ = 0;
  double stab_threshold_ = 0;   ///< <= 0: use stab_pre_max_
  double stab_pre_max_ = 0;     ///< max spread in [steady_start_, stab_after_)
  bool stab_post_seen_ = false;
  RealTime stab_candidate_ = -1;  ///< start of the current inside streak (-1: violating)

  double max_skew_ = 0;
  double steady_max_skew_ = 0;
  double local_skew_ = 0;
  double steady_local_skew_ = 0;
  RealTime max_skew_time_ = 0;
  RealTime last_series_sample_ = -1;
  std::vector<std::pair<RealTime, double>> series_;

  /// Per-node sample scratch for the sparse local-skew pass, sized
  /// min(n, kLocalSkewPoolMaxN). A slot holds a current value iff
  /// gen_[id] == cur_gen_ — bumping cur_gen_ invalidates the whole array in
  /// O(1), replacing the old per-sample O(n) assign.
  std::vector<double> values_;
  std::vector<std::uint64_t> gen_;
  /// Nodes carrying scratch: ids < pool_n_ (n, unless pooled).
  std::uint32_t pool_n_ = 0;
  std::uint64_t cur_gen_ = 0;
  /// Rescan-skip cache: the previous sample's per-sample local skew is
  /// reused verbatim when the graph, the sampled set, and every sampled
  /// value are unchanged (exact compares, so reuse is bit-identical).
  bool local_cache_valid_ = false;
  double last_local_ = 0;
  const Topology* last_topology_ = nullptr;
  std::uint32_t last_sampled_count_ = 0;
};

}  // namespace stclock
