#include <gtest/gtest.h>

#include "clocks/hardware_clock.h"

namespace stclock {
namespace {

TEST(HardwareClock, IdentityByDefault) {
  HardwareClock clock;
  EXPECT_DOUBLE_EQ(clock.read(0.0), 0.0);
  EXPECT_DOUBLE_EQ(clock.read(5.5), 5.5);
  EXPECT_DOUBLE_EQ(clock.rate_at(3.0), 1.0);
}

TEST(HardwareClock, InitialOffsetAndRate) {
  HardwareClock clock(10.0, 2.0);
  EXPECT_DOUBLE_EQ(clock.read(0.0), 10.0);
  EXPECT_DOUBLE_EQ(clock.read(3.0), 16.0);
}

TEST(HardwareClock, PiecewiseRates) {
  HardwareClock clock(0.0, 1.0);
  clock.set_rate_from(10.0, 2.0);
  clock.set_rate_from(20.0, 0.5);
  EXPECT_DOUBLE_EQ(clock.read(10.0), 10.0);
  EXPECT_DOUBLE_EQ(clock.read(15.0), 20.0);
  EXPECT_DOUBLE_EQ(clock.read(20.0), 30.0);
  EXPECT_DOUBLE_EQ(clock.read(24.0), 32.0);
  EXPECT_DOUBLE_EQ(clock.rate_at(12.0), 2.0);
  EXPECT_DOUBLE_EQ(clock.rate_at(25.0), 0.5);
}

TEST(HardwareClock, RateChangeAtSameInstantOverwrites) {
  HardwareClock clock(0.0, 1.0);
  clock.set_rate_from(5.0, 2.0);
  clock.set_rate_from(5.0, 3.0);  // replaces, does not stack
  EXPECT_DOUBLE_EQ(clock.read(6.0), 8.0);
}

TEST(HardwareClock, InverseRoundTrip) {
  HardwareClock clock(2.0, 1.5);
  clock.set_rate_from(4.0, 0.8);
  clock.set_rate_from(9.0, 1.2);
  for (double t : {0.0, 1.0, 3.999, 4.0, 7.3, 9.0, 15.0}) {
    EXPECT_NEAR(clock.when_reads(clock.read(t)), t, 1e-9) << "t = " << t;
  }
}

TEST(HardwareClock, InverseAcrossSegmentBoundary) {
  HardwareClock clock(0.0, 2.0);
  clock.set_rate_from(1.0, 0.5);  // local 2.0 at the boundary
  EXPECT_NEAR(clock.when_reads(2.0), 1.0, 1e-12);
  EXPECT_NEAR(clock.when_reads(2.5), 2.0, 1e-12);
}

TEST(HardwareClock, StrictlyMonotone) {
  HardwareClock clock(0.0, 0.9);
  clock.set_rate_from(2.0, 1.1);
  double prev = clock.read(0.0);
  for (double t = 0.01; t < 5.0; t += 0.01) {
    const double cur = clock.read(t);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(HardwareClock, RejectsNonPositiveRate) {
  EXPECT_THROW(HardwareClock(0.0, 0.0), std::logic_error);
  HardwareClock clock;
  EXPECT_THROW(clock.set_rate_from(1.0, -1.0), std::logic_error);
}

TEST(HardwareClock, RejectsOutOfOrderSegments) {
  HardwareClock clock;
  clock.set_rate_from(5.0, 1.1);
  EXPECT_THROW(clock.set_rate_from(4.0, 1.0), std::logic_error);
}

TEST(HardwareClock, RejectsNegativeTime) {
  HardwareClock clock;
  EXPECT_THROW((void)clock.read(-0.1), std::logic_error);
}

TEST(HardwareClock, WhenReadsBeforeStartThrows) {
  HardwareClock clock(5.0, 1.0);
  EXPECT_THROW((void)clock.when_reads(4.9), std::logic_error);
}

TEST(HardwareClock, DriftBoundCheck) {
  const double rho = 0.01;
  HardwareClock ok(0.0, 1.0 + rho);
  ok.set_rate_from(1.0, 1.0 / (1.0 + rho));
  EXPECT_TRUE(ok.respects_drift_bound(rho));
  EXPECT_FALSE(ok.respects_drift_bound(0.001));

  HardwareClock fast(0.0, 1.02);
  EXPECT_FALSE(fast.respects_drift_bound(0.01));
}

}  // namespace
}  // namespace stclock
