#include <gtest/gtest.h>

#include <vector>

#include "clocks/drift_models.h"
#include "sim/simulator.h"

namespace stclock {
namespace {

std::vector<HardwareClock> identity_clocks(std::uint32_t n) {
  std::vector<HardwareClock> clocks;
  for (std::uint32_t i = 0; i < n; ++i) clocks.emplace_back(0.0, 1.0);
  return clocks;
}

Simulator make_sim(std::uint32_t n, Duration tdel, double delay_fraction,
                   const crypto::KeyRegistry* registry = nullptr) {
  SimParams params;
  params.n = n;
  params.tdel = tdel;
  params.seed = 1;
  return Simulator(params, identity_clocks(n), std::make_unique<FixedDelay>(delay_fraction),
                   registry);
}

/// Records deliveries with their receive times.
class Recorder final : public Process {
 public:
  struct Received {
    RealTime at;
    NodeId from;
    Round round;
  };

  explicit Recorder(const Simulator& sim) : sim_(&sim) {}

  void on_start(Context&) override { started_ = true; }
  void on_message(Context&, NodeId from, const Message& m) override {
    log_.push_back({sim_->now(), from, message_round(m)});
  }
  void on_timer(Context&, TimerId) override {}

  [[nodiscard]] const std::vector<Received>& log() const { return log_; }
  [[nodiscard]] bool started() const { return started_; }

 private:
  const Simulator* sim_;
  std::vector<Received> log_;
  bool started_ = false;
};

/// Broadcasts one InitMsg at start.
class OneShotBroadcaster final : public Process {
 public:
  void on_start(Context& ctx) override { ctx.broadcast(Message(InitMsg{1})); }
  void on_message(Context&, NodeId, const Message&) override {}
  void on_timer(Context&, TimerId) override {}
};

TEST(Simulator, BroadcastReachesEveryoneWithConfiguredDelay) {
  Simulator sim = make_sim(3, 0.01, 1.0);  // full tdel delay
  sim.set_process(0, std::make_unique<OneShotBroadcaster>());
  auto r1 = std::make_unique<Recorder>(sim);
  auto r2 = std::make_unique<Recorder>(sim);
  const Recorder* p1 = r1.get();
  const Recorder* p2 = r2.get();
  sim.set_process(1, std::move(r1));
  sim.set_process(2, std::move(r2));

  sim.run_until(1.0);

  ASSERT_EQ(p1->log().size(), 1u);
  ASSERT_EQ(p2->log().size(), 1u);
  EXPECT_DOUBLE_EQ(p1->log()[0].at, 0.01);
  EXPECT_EQ(p1->log()[0].from, 0u);
  EXPECT_DOUBLE_EQ(p2->log()[0].at, 0.01);
}

TEST(Simulator, SelfDeliveryIsImmediate) {
  Simulator sim = make_sim(2, 0.01, 1.0);

  class SelfBroadcaster final : public Process {
   public:
    explicit SelfBroadcaster(const Simulator& sim) : sim_(&sim) {}
    void on_start(Context& ctx) override { ctx.broadcast(Message(InitMsg{1})); }
    void on_message(Context& ctx, NodeId from, const Message&) override {
      if (from == ctx.self()) self_delivery_time_ = sim_->now();
    }
    void on_timer(Context&, TimerId) override {}
    RealTime self_delivery_time_ = -1;

   private:
    const Simulator* sim_;
  };

  auto proc = std::make_unique<SelfBroadcaster>(sim);
  const SelfBroadcaster* p = proc.get();
  sim.set_process(0, std::move(proc));
  sim.set_process(1, std::make_unique<Recorder>(sim));
  sim.run_until(1.0);
  EXPECT_DOUBLE_EQ(p->self_delivery_time_, 0.0);
}

TEST(Simulator, LogicalTimerFiresAtRightRealTime) {
  SimParams params;
  params.n = 1;
  params.tdel = 0.01;
  params.seed = 1;
  std::vector<HardwareClock> clocks;
  clocks.push_back(HardwareClock(0.0, 2.0));  // runs double speed
  Simulator sim(params, std::move(clocks), std::make_unique<FixedDelay>(0.0), nullptr);

  class TimerProc final : public Process {
   public:
    explicit TimerProc(const Simulator& sim) : sim_(&sim) {}
    void on_start(Context& ctx) override { (void)ctx.set_timer_at_logical(4.0); }
    void on_message(Context&, NodeId, const Message&) override {}
    void on_timer(Context&, TimerId) override { fired_at_ = sim_->now(); }
    RealTime fired_at_ = -1;

   private:
    const Simulator* sim_;
  };

  auto proc = std::make_unique<TimerProc>(sim);
  const TimerProc* p = proc.get();
  sim.set_process(0, std::move(proc));
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(p->fired_at_, 2.0);  // logical 4 at double speed = real 2
}

TEST(Simulator, CancelledTimerDoesNotFire) {
  Simulator sim = make_sim(1, 0.01, 0.0);

  class CancelProc final : public Process {
   public:
    void on_start(Context& ctx) override {
      const TimerId a = ctx.set_timer_at_logical(1.0);
      keep_ = ctx.set_timer_at_logical(2.0);
      ctx.cancel_timer(a);
    }
    void on_message(Context&, NodeId, const Message&) override {}
    void on_timer(Context&, TimerId id) override { fired_.push_back(id); }
    std::vector<TimerId> fired_;
    TimerId keep_ = 0;
  };

  auto proc = std::make_unique<CancelProc>();
  CancelProc* p = proc.get();
  sim.set_process(0, std::move(proc));
  sim.run_until(5.0);
  ASSERT_EQ(p->fired_.size(), 1u);
  EXPECT_EQ(p->fired_[0], p->keep_);
}

TEST(Simulator, CancelAfterFireIsANoOpAndUnknownIdsThrow) {
  Simulator sim = make_sim(1, 0.01, 0.0);

  class LateCancelProc final : public Process {
   public:
    void on_start(Context& ctx) override { first_ = ctx.set_timer_at_logical(1.0); }
    void on_message(Context&, NodeId, const Message&) override {}
    void on_timer(Context& ctx, TimerId id) override {
      ++fired_;
      if (id == first_) {
        // The timer just fired; cancelling it now must be accepted quietly
        // (the pre-refactor tombstone set leaked an entry here) ...
        EXPECT_NO_THROW(ctx.cancel_timer(first_));
        // ... and cancelling twice is equally harmless.
        EXPECT_NO_THROW(ctx.cancel_timer(first_));
        // A timer id never handed out is a caller bug.
        EXPECT_THROW(ctx.cancel_timer(9999), std::logic_error);
        (void)ctx.set_timer_at_logical(2.0);
      }
    }
    TimerId first_ = 0;
    int fired_ = 0;
  };

  auto proc = std::make_unique<LateCancelProc>();
  LateCancelProc* p = proc.get();
  sim.set_process(0, std::move(proc));
  sim.run_until(5.0);
  EXPECT_EQ(p->fired_, 2);  // the no-op cancels must not eat the second timer
}

TEST(Simulator, LateStartDropsEarlierMessages) {
  Simulator sim = make_sim(2, 0.01, 0.0);
  sim.set_process(0, std::make_unique<OneShotBroadcaster>());
  auto rec = std::make_unique<Recorder>(sim);
  const Recorder* p = rec.get();
  sim.set_process(1, std::move(rec));
  sim.set_start_time(1, 5.0);  // boots long after the broadcast

  sim.run_until(10.0);
  EXPECT_TRUE(p->started());
  EXPECT_TRUE(p->log().empty());
}

TEST(Simulator, AdversaryCanScheduleFutureDelivery) {
  Simulator sim = make_sim(3, 0.01, 0.0);

  class DelayedSender final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      ctx.send_from(2, 0, Message(EchoMsg{9}), 0.5);
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  auto rec = std::make_unique<Recorder>(sim);
  const Recorder* p = rec.get();
  sim.set_process(0, std::move(rec));
  sim.set_process(1, std::make_unique<Recorder>(sim));
  sim.set_adversary({2}, std::make_unique<DelayedSender>());

  sim.run_until(1.0);
  ASSERT_EQ(p->log().size(), 1u);
  EXPECT_DOUBLE_EQ(p->log()[0].at, 0.5);
  EXPECT_EQ(p->log()[0].from, 2u);
  EXPECT_EQ(p->log()[0].round, 9u);
}

TEST(Simulator, AdversaryCannotImpersonateHonestNodes) {
  Simulator sim = make_sim(3, 0.01, 0.0);

  class Impersonator final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      // Node 0 is honest; sending "from" it must be rejected.
      EXPECT_THROW(ctx.send_from(0, 1, Message(InitMsg{1}), 0.0), std::logic_error);
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  sim.set_process(0, std::make_unique<Recorder>(sim));
  sim.set_process(1, std::make_unique<Recorder>(sim));
  sim.set_adversary({2}, std::make_unique<Impersonator>());
  sim.run_until(0.1);
}

TEST(Simulator, AdversaryCannotSignForHonestNodes) {
  const crypto::KeyRegistry registry(3, 7);
  Simulator sim = make_sim(3, 0.01, 0.0, &registry);

  class KeyThief final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      EXPECT_THROW((void)ctx.signer_for(0), std::logic_error);  // honest
      EXPECT_NO_THROW((void)ctx.signer_for(2));                 // corrupted
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  sim.set_process(0, std::make_unique<Recorder>(sim));
  sim.set_process(1, std::make_unique<Recorder>(sim));
  sim.set_adversary({2}, std::make_unique<KeyThief>());
  sim.run_until(0.1);
}

TEST(Simulator, HonestIdsExcludeCorrupted) {
  Simulator sim = make_sim(4, 0.01, 0.0);
  sim.set_adversary({1, 3}, nullptr);
  EXPECT_EQ(sim.honest_ids(), (std::vector<NodeId>{0, 2}));
  EXPECT_TRUE(sim.is_corrupt(1));
  EXPECT_FALSE(sim.is_corrupt(0));
}

TEST(Simulator, MessagesToCrashedNodesVanish) {
  // Corrupted nodes with a null adversary model crash faults: messages to
  // them are swallowed, and they never send anything.
  Simulator sim = make_sim(2, 0.01, 0.0);
  sim.set_process(0, std::make_unique<OneShotBroadcaster>());
  sim.set_adversary({1}, nullptr);
  sim.run_until(1.0);
  EXPECT_GE(sim.counters().total_sent(), 2u);  // broadcast still sent n ways
}

TEST(Simulator, PostEventHookSeesMonotoneTime) {
  Simulator sim = make_sim(2, 0.01, 1.0);
  sim.set_process(0, std::make_unique<OneShotBroadcaster>());
  sim.set_process(1, std::make_unique<Recorder>(sim));

  RealTime last = -1;
  int calls = 0;
  sim.set_post_event_hook([&last, &calls](const Simulator& s) {
    EXPECT_GE(s.now(), last);
    last = s.now();
    ++calls;
  });
  sim.run_until(1.0);
  EXPECT_GT(calls, 0);
}

TEST(Simulator, EventBudgetGuardsRunaways) {
  SimParams params;
  params.n = 1;
  params.tdel = 0.01;
  params.seed = 1;
  params.max_events = 10;

  class Storm final : public Process {
   public:
    void on_start(Context& ctx) override { ctx.send(ctx.self(), Message(InitMsg{1})); }
    void on_message(Context& ctx, NodeId, const Message&) override {
      ctx.send(ctx.self(), Message(InitMsg{1}));  // infinite self-message loop
    }
    void on_timer(Context&, TimerId) override {}
  };

  Simulator sim(params, identity_clocks(1), std::make_unique<FixedDelay>(0.0), nullptr);
  sim.set_process(0, std::make_unique<Storm>());
  EXPECT_THROW(sim.run_until(1.0), std::logic_error);
}

TEST(Simulator, DeterministicGivenSeed) {
  auto run_once = [] {
    SimParams params;
    params.n = 3;
    params.tdel = 0.01;
    params.seed = 42;
    Simulator sim(params, identity_clocks(3), std::make_unique<UniformDelay>(0.0, 1.0),
                  nullptr);
    sim.set_process(0, std::make_unique<OneShotBroadcaster>());
    auto rec = std::make_unique<Recorder>(sim);
    const Recorder* p = rec.get();
    sim.set_process(1, std::move(rec));
    sim.set_process(2, std::make_unique<Recorder>(sim));
    sim.run_until(1.0);
    return p->log().at(0).at;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace stclock
