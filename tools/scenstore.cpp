#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/engine_info.h"
#include "resultstore/store.h"

/// scenstore — inspect and maintain a content-addressed result store.
///
///   scenstore DIR stats                  entry count and total bytes
///   scenstore DIR ls                     one cell key per line, sorted
///   scenstore DIR gc --keep-days N       drop records older than N days
///                                        (N may be fractional; 0 = drop all)
///   scenstore DIR verify                 checksum-sweep every record and
///                                        audit tmp/ for orphaned staging
///                                        files; exit 1 if anything is corrupt
///
/// The store is written by `scenrun --store DIR`; keys are cell fingerprints
/// (resolved spec + seed + engine fingerprint), so entries from superseded
/// engine builds are unreachable dead weight — `gc` is how they age out.
/// GC is safe to run concurrently with sweeps: a record deleted mid-lookup
/// is just a miss, and misses recompute.
namespace {

int usage(std::ostream& os, int code) {
  os << "usage: scenstore DIR stats\n"
        "       scenstore DIR ls\n"
        "       scenstore DIR gc --keep-days N\n"
        "       scenstore DIR verify\n"
        "       scenstore --version\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stclock;

  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && (args[0] == "--help" || args[0] == "-h")) return usage(std::cout, 0);
  if (!args.empty() && args[0] == "--version") {
    std::cout << experiment::engine_fingerprint() << "\n";
    return 0;
  }
  if (args.size() < 2) {
    std::cerr << "scenstore: need a store directory and a command\n";
    return usage(std::cerr, 2);
  }

  const std::string dir = args[0];
  const std::string command = args[1];

  try {
    const resultstore::ResultStore store(dir);

    if (command == "stats") {
      const resultstore::ResultStore::Stats s = store.stats();
      std::cout << "entries=" << s.entries << " bytes=" << s.bytes << "\n";
      return 0;
    }
    if (command == "ls") {
      for (const std::string& key : store.keys()) std::cout << key << "\n";
      return 0;
    }
    if (command == "gc") {
      double keep_days = -1;
      for (std::size_t i = 2; i < args.size(); ++i) {
        if (args[i] == "--keep-days" && i + 1 < args.size()) {
          char* end = nullptr;
          keep_days = std::strtod(args[++i].c_str(), &end);
          if (end == nullptr || *end != '\0') keep_days = -1;
        } else {
          std::cerr << "scenstore: unknown gc option: " << args[i] << "\n";
          return usage(std::cerr, 2);
        }
      }
      if (keep_days < 0) {
        std::cerr << "scenstore: gc needs --keep-days N (N >= 0)\n";
        return usage(std::cerr, 2);
      }
      const auto keep = std::chrono::seconds(static_cast<long long>(keep_days * 86400.0));
      const std::size_t removed = store.gc(keep);
      const resultstore::ResultStore::Stats s = store.stats();
      std::cout << "removed=" << removed << " entries=" << s.entries << " bytes=" << s.bytes
                << "\n";
      return 0;
    }

    if (command == "verify") {
      const resultstore::ResultStore::VerifyReport report = store.verify();
      std::cout << "checked=" << report.checked << " corrupt=" << report.corrupt.size()
                << " orphan_tmp=" << report.orphan_tmp << "\n";
      for (const std::string& key : report.corrupt) {
        std::cout << "corrupt " << key << "\n";
      }
      // Orphans are a normal crash residue (gc ages them out); corruption is
      // an integrity failure and should trip scripts.
      return report.corrupt.empty() ? 0 : 1;
    }

    std::cerr << "scenstore: unknown command: " << command << "\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& e) {
    std::cerr << "scenstore: " << e.what() << "\n";
    return 1;
  }
}
