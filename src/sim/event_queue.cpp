#include "sim/event_queue.h"

#include <algorithm>

#include "util/contracts.h"

namespace stclock {

void EventQueue::reserve(std::size_t events) {
  heap_.reserve(events);
  slab_.reserve(events);
  free_slots_.reserve(events);
}

void EventQueue::push_timer(RealTime time, TimerEvent ev) {
  ST_REQUIRE(time >= 0, "EventQueue: negative event time");
  heap_.push_back(Entry{time, next_seq_++, ev.id, ev.node, true});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::push_delivery(RealTime time, DeliveryEvent ev) {
  ST_REQUIRE(time >= 0, "EventQueue: negative event time");
  ST_REQUIRE(ev.msg != nullptr, "EventQueue: null message");
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(std::move(ev));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot] = std::move(ev);
  }
  heap_.push_back(Entry{time, next_seq_++, 0, slot, false});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

RealTime EventQueue::next_time() const {
  ST_REQUIRE(!heap_.empty(), "EventQueue: next_time on empty queue");
  return heap_.front().time;
}

Event EventQueue::pop() {
  ST_REQUIRE(!heap_.empty(), "EventQueue: pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry top = heap_.back();
  heap_.pop_back();

  Event e;
  e.time = top.time;
  e.seq = top.seq;
  e.is_timer = top.is_timer;
  if (top.is_timer) {
    e.timer = TimerEvent{top.node_or_slot, top.timer_id};
  } else {
    e.delivery = std::move(slab_[top.node_or_slot]);
    free_slots_.push_back(top.node_or_slot);
  }
  return e;
}

}  // namespace stclock
