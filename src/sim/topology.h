#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.h"

/// Network topology: which pairs of nodes share a link.
///
/// The paper's model is an implicit complete graph — every process hears
/// every broadcast directly. The most-cited follow-on work (gradient clock
/// synchronization on dynamic networks, ad hoc timepiece networks) studies
/// synchronization on *general* graphs, where a broadcast reaches only the
/// sender's neighbors and the figure of merit becomes the *local* skew
/// between adjacent nodes. A `Topology` makes the graph first-class: the
/// simulator fans broadcasts out over neighbors, delay policies may key on
/// links, and the trace layer measures skew over adjacent pairs.
///
/// Graphs are undirected and simple (no self-loops, no parallel edges);
/// neighbor iteration is sorted ascending, so the event-queue insertion
/// order that breaks delivery ties is deterministic.
///
/// Storage is sparse-first (CSR): one offsets array (n + 1 entries) plus one
/// flat sorted-neighbor array (2E entries), ~8 bytes per node plus 4 bytes
/// per directed edge. A ring at n = 10^6 costs ~16 MB where the old per-pair
/// bitset alone needed ~125 GB. `adjacent()` answers from a row-major bitset
/// only while n <= kBitsetMaxN (at most 512 KB); past that it binary-searches
/// the CSR row. The complete family stores NO adjacency at all — neighbors
/// are implicit (every id but self) and the message hot path keeps the
/// legacy all-pairs fan-out loop.
namespace stclock {

class Rng;

/// Built-in generator families (scenario files select these by name).
enum class TopologyKind : std::uint8_t {
  kComplete,  ///< every pair linked (the paper's implicit topology)
  kRing,      ///< cycle 0-1-...-n-1-0
  kTorus,     ///< near-square rows x cols grid with wraparound
  kStar,      ///< hub node 0 linked to every spoke
  kGnp,       ///< Erdos-Renyi G(n, p), seeded; may be disconnected
  kExpander,  ///< seeded k-regular expander (union of k/2 random Hamiltonian cycles)
  kCustom,    ///< arbitrary edge list (from_edges); not a scenario-file kind
};

[[nodiscard]] const char* topology_kind_name(TopologyKind kind);

/// A lazily-iterated, sorted-ascending view of one node's neighbors. Backed
/// either by a CSR row (pointer range) or, for the complete family, by the
/// implicit sequence 0..n-1 minus self — so iterating a complete node's
/// neighborhood allocates nothing and the graph itself stores nothing.
class NeighborRange {
 public:
  class iterator {
   public:
    using value_type = NodeId;

    [[nodiscard]] NodeId operator*() const { return ptr_ != nullptr ? *ptr_ : cur_; }
    iterator& operator++() {
      if (ptr_ != nullptr) {
        ++ptr_;
      } else {
        ++cur_;
        if (cur_ == skip_) ++cur_;
      }
      return *this;
    }
    [[nodiscard]] bool operator==(const iterator& o) const {
      return ptr_ != nullptr ? ptr_ == o.ptr_ : cur_ == o.cur_;
    }
    [[nodiscard]] bool operator!=(const iterator& o) const { return !(*this == o); }

   private:
    friend class NeighborRange;
    iterator(const NodeId* ptr, NodeId cur, NodeId skip)
        : ptr_(ptr), cur_(cur), skip_(skip) {}

    const NodeId* ptr_;  ///< CSR mode when non-null; implicit mode otherwise
    NodeId cur_;
    NodeId skip_;
  };

  [[nodiscard]] iterator begin() const {
    if (csr_begin_ != nullptr) return iterator(csr_begin_, 0, 0);
    const NodeId first = skip_ == 0 ? 1 : 0;
    return iterator(nullptr, first, skip_);
  }
  [[nodiscard]] iterator end() const {
    if (csr_begin_ != nullptr) return iterator(csr_end_, 0, 0);
    // The implicit walk skips `skip_`, so it exits at n even when self is
    // the last id.
    return iterator(nullptr, n_, skip_);
  }
  [[nodiscard]] std::size_t size() const {
    if (csr_begin_ != nullptr) return static_cast<std::size_t>(csr_end_ - csr_begin_);
    return n_ > 0 ? n_ - 1 : 0;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  friend class Topology;
  NeighborRange(const NodeId* begin, const NodeId* end)
      : csr_begin_(begin), csr_end_(end) {}
  NeighborRange(NodeId n, NodeId skip) : n_(n), skip_(skip) {}

  const NodeId* csr_begin_ = nullptr;
  const NodeId* csr_end_ = nullptr;
  NodeId n_ = 0;
  NodeId skip_ = 0;
};

class Topology {
 public:
  /// Largest n for which adjacent() keeps the O(1) row-major bitset
  /// (n^2 / 8 bytes, so at most 512 KB). Above it, adjacency binary-searches
  /// the sorted CSR row — O(log degree), and no quadratic storage anywhere.
  static constexpr std::uint32_t kBitsetMaxN = 2048;

  /// Smallest n at which gnp() switches from the legacy per-pair bernoulli
  /// walk to geometric skipping. Below it (every golden spec lives there)
  /// the seed -> graph mapping is bit-identical to the original generator;
  /// at or above it the mapping is new, covered by the engine fingerprint
  /// bump so cached sweep results stay honest.
  static constexpr std::uint32_t kGnpFastMinN = 4096;

  /// Every pair of distinct nodes linked. Stores no adjacency — neighbors
  /// are implicit and the message path keeps the legacy all-pairs fan-out.
  [[nodiscard]] static Topology complete(std::uint32_t n);

  /// Cycle: node i linked to (i±1) mod n. Requires n >= 3 (a 2-ring would
  /// need a parallel edge; use complete(2) instead).
  [[nodiscard]] static Topology ring(std::uint32_t n);

  /// rows x cols grid with wraparound in both dimensions, nodes numbered
  /// row-major. Degenerate 1 x n and 2 x n shapes collapse to a ring /
  /// ladder without parallel edges. Requires rows * cols == n.
  [[nodiscard]] static Topology torus(std::uint32_t rows, std::uint32_t cols);

  /// Near-square torus: rows = the largest divisor of n that is <= sqrt(n),
  /// so rows <= cols always. Rejects prime n >= 5, which has no non-trivial
  /// factorization and would silently degenerate to a 1 x n ring; pass an
  /// explicit rows x cols or pick a composite n instead. (n = 3 stays legal
  /// for backward compatibility: it is the 3-ring either way.)
  [[nodiscard]] static Topology torus(std::uint32_t n);

  /// Hub-and-spoke: node 0 linked to every other node.
  [[nodiscard]] static Topology star(std::uint32_t n);

  /// Erdos-Renyi G(n, p): each pair {i, j} linked independently with
  /// probability p, drawn from a generator seeded with `seed` (the draw
  /// order is fixed, so the graph is a pure function of (n, p, seed)).
  /// For n < kGnpFastMinN every pair draws one bernoulli (the original
  /// mapping); for larger n the generator geometrically skips over absent
  /// edges, so construction is O(n + E) instead of O(n^2).
  /// May be disconnected — callers that need liveness should check
  /// is_connected() (the scenario validator does).
  [[nodiscard]] static Topology gnp(std::uint32_t n, double p, std::uint64_t seed);

  /// Seeded k-regular expander: the union of k/2 independent random
  /// Hamiltonian cycles (each a seeded Fisher-Yates permutation closed into
  /// a cycle). Connected by construction — cycle 0 alone visits every node —
  /// with degree at most k (coinciding cross-cycle edges are deduplicated,
  /// so a node's degree can dip below k; at k << n collisions are rare) and
  /// at least 2. Random regular-ish graphs of this family are expanders with
  /// overwhelming probability: diameter O(log n / log k), which the test
  /// suite asserts as a BFS-diameter spectral-gap proxy. Pure function of
  /// (n, k, seed). Requires even k with 2 <= k < n.
  ///
  /// This is the sparse broadcast fabric for the paper's complete-graph
  /// protocols: a round of `auth` costs O(n*k) messages over it instead of
  /// O(n^2) (see BroadcastMode in sim/broadcast_mode.h).
  [[nodiscard]] static Topology expander(std::uint32_t n, std::uint32_t k,
                                         std::uint64_t seed);

  /// Arbitrary undirected edge list (tests and custom scenarios). Rejects
  /// out-of-range endpoints, self-loops, and duplicate edges.
  [[nodiscard]] static Topology from_edges(std::uint32_t n,
                                           const std::vector<std::pair<NodeId, NodeId>>& edges);

  [[nodiscard]] std::uint32_t n() const { return n_; }
  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] const char* name() const { return topology_kind_name(kind_); }

  /// True for the complete family: the hot path uses this to skip adjacency
  /// lookups entirely and keep the legacy broadcast loop.
  [[nodiscard]] bool is_complete() const { return kind_ == TopologyKind::kComplete; }

  /// O(1) while n <= kBitsetMaxN or complete, O(log degree) past that.
  /// False for a == b (no self-loops).
  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const;

  /// Sorted ascending. Valid for every kind; for complete the range is
  /// implicit (nothing is stored or allocated).
  [[nodiscard]] NeighborRange neighbors(NodeId id) const;

  /// The CSR row as a raw span — the zero-overhead form hot loops want.
  /// Not valid for the complete family (which stores no rows); those call
  /// sites branch on is_complete() first.
  [[nodiscard]] std::pair<const NodeId*, std::size_t> neighbor_span(NodeId id) const;

  /// Materialized copy, for tests and diagnostics that want vector
  /// semantics (equality, indexing). O(degree) allocation — not a hot path.
  [[nodiscard]] std::vector<NodeId> neighbor_list(NodeId id) const;

  [[nodiscard]] std::size_t degree(NodeId id) const;

  /// Undirected edge count.
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// BFS from node 0; a single node counts as connected. O(1) for complete.
  [[nodiscard]] bool is_connected() const;

  /// |lambda_2| of the normalized adjacency D^{-1/2} A D^{-1/2}, estimated by
  /// `iters` rounds of power iteration with the principal eigenvector
  /// (proportional to sqrt(degree), eigenvalue exactly 1) deflated out each
  /// step. This is the expander mixing quantity itself — small |lambda_2|
  /// IS a spectral gap — where the BFS diameter the tests previously
  /// asserted on is only a coarse proxy (a graph can have logarithmic
  /// diameter and still mix slowly). Deterministic: the start vector comes
  /// from a generator seeded with `seed`. O(iters * (n + E)); zero-degree
  /// nodes contribute nothing. Not valid for the complete family (whose
  /// normalized spectrum is known: -1/(n-1) repeated).
  [[nodiscard]] double normalized_lambda2(std::uint32_t iters, std::uint64_t seed) const;

  /// Bytes of adjacency storage actually held (CSR arrays + bitset). The
  /// memory-ceiling tests assert on this instead of process RSS, which is
  /// noisy under a test runner.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  Topology(TopologyKind kind, std::uint32_t n);

  /// Stages an undirected edge; storage is built by finalize().
  void add_edge(NodeId a, NodeId b);
  /// Counting-sorts the staged edges into CSR rows (each sorted ascending,
  /// duplicates rejected) and builds the small-n adjacency bitset.
  void finalize();

  [[nodiscard]] bool csr_adjacent(NodeId a, NodeId b) const;

  TopologyKind kind_ = TopologyKind::kComplete;
  std::uint32_t n_ = 0;
  std::size_t edge_count_ = 0;
  /// Staged edges between add_edge and finalize; cleared by finalize.
  std::vector<std::pair<NodeId, NodeId>> staged_;
  /// CSR: row id spans nbrs_[offsets_[id] .. offsets_[id + 1]). Empty for
  /// complete (implicit neighbors).
  std::vector<std::uint64_t> offsets_;
  std::vector<NodeId> nbrs_;
  /// Row-major n x n bitset for O(1) adjacent(); only while n <= kBitsetMaxN
  /// and never for complete.
  std::vector<std::uint64_t> bits_;
};

}  // namespace stclock
