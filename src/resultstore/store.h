#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "experiment/scenario.h"

/// Content-addressed, on-disk store of ScenarioResults.
///
/// Layout (everything under one root directory, safe to rsync or share over
/// NFS between launcher hosts):
///
///   <dir>/objects/<key[0:2]>/<key>.res   one record per cell key
///   <dir>/tmp/                           staging for atomic publication
///
/// Records are written to tmp/ and published with std::filesystem::rename —
/// atomic on POSIX within one filesystem — so concurrent writers of the same
/// key (two sweep shards overlapping, or a straggler and its re-dispatch)
/// can never interleave bytes: readers see either a complete old record or a
/// complete new one. Since keys are content addresses, all writers of one
/// key are writing identical bytes anyway.
///
/// Record format: 8-byte magic, the codec payload, then a trailer of
/// payload length + FNV-1a checksum (both u64 LE). Anything that fails
/// validation — short file, bad magic, length mismatch, checksum mismatch,
/// codec error — is a MISS, never an exception: a half-destroyed store
/// degrades to recomputation, it cannot take the sweep down.
namespace stclock::resultstore {

class ResultStore {
 public:
  /// Opens (and creates, including parents) the store rooted at `dir`.
  /// Throws std::runtime_error if the directory cannot be created or is not
  /// writable (probed with a staging-file write, so a sweep pointed at a
  /// read-only or mis-owned store fails at startup, not mid-publication).
  explicit ResultStore(std::filesystem::path dir);

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

  /// The record for `key`, or nullopt when absent OR unreadable/corrupt.
  [[nodiscard]] std::optional<experiment::ScenarioResult> load(const std::string& key) const;

  /// Atomically publishes the record for `key` (overwrites an existing one).
  /// Throws std::runtime_error on I/O failure.
  void save(const std::string& key, const experiment::ScenarioResult& result) const;

  /// True iff a record file exists for `key` (no validation).
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Every key currently in the store, sorted.
  [[nodiscard]] std::vector<std::string> keys() const;

  struct Stats {
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Full-store integrity sweep: every record is loaded through the complete
  /// validation path (magic, length, checksum, codec), and the tmp/ staging
  /// area is audited for orphans left by writers that died mid-save. Corrupt
  /// records are reported, not removed — `remove()` or `gc()` is the
  /// operator's call (a listed key degrades to a cache miss either way).
  struct VerifyReport {
    std::uint64_t checked = 0;         ///< records examined
    std::vector<std::string> corrupt;  ///< keys whose record failed validation
    std::uint64_t orphan_tmp = 0;      ///< abandoned staging files in tmp/
  };
  [[nodiscard]] VerifyReport verify() const;

  /// Removes records whose mtime is older than now - keep, plus any stale
  /// staging files, and prunes emptied fan-out directories. Returns the
  /// number of records removed. Publication refreshes mtime, so a hit loop
  /// never ages out entries it still writes; pure readers do not refresh.
  std::size_t gc(std::chrono::seconds keep) const;

  /// Removes one record; returns true if it existed.
  bool remove(const std::string& key) const;

  /// Path of the record file for `key` (exists or not).
  [[nodiscard]] std::filesystem::path object_path(const std::string& key) const;

 private:
  std::filesystem::path dir_;
};

}  // namespace stclock::resultstore
