#pragma once

#include <functional>
#include <memory>

#include "broadcast/primitive.h"
#include "core/config.h"
#include "core/theory.h"
#include "sim/process.h"

/// Algorithm CSA — the Srikanth–Toueg clock synchronization algorithm.
///
/// Per correct process:
///
///     when C reads kP           : broadcast (round k)     [via the primitive]
///     when (round k) is accepted: C := kP + alpha
///
/// The protocol is agnostic to the broadcast primitive, which supplies the
/// Correctness / Unforgeability / Relay properties; the same class therefore
/// implements both the authenticated (n >= 2f+1) and the signature-free
/// (n >= 3f+1) variants of the paper.
///
/// Acceptance for a round later than the one the process is waiting for is
/// honoured (the process "skips" rounds it slept through); acceptance for
/// already-processed rounds is ignored. Corrections are applied either
/// instantaneously (as analyzed in the paper) or amortized over a window
/// (continuous, monotone clocks — the smoothing the paper alludes to).
namespace stclock {

class SyncProtocol : public Process {
 public:
  /// Called at every pulse (acceptance acted upon): (node, round).
  using PulseObserver = std::function<void(NodeId, Round)>;

  /// `passive_join` starts the process in integration mode: it participates
  /// in message handling but neither broadcasts readiness nor counts pulses
  /// until it accepts its first round, at which point it adopts that round's
  /// clock value and becomes a full participant (the paper's reintegration
  /// of repaired processes).
  SyncProtocol(SyncConfig cfg, std::unique_ptr<BroadcastPrimitive> primitive,
               bool passive_join = false);

  void set_pulse_observer(PulseObserver observer) { observer_ = std::move(observer); }

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, NodeId from, const Message& m) override;
  void on_timer(Context& ctx, TimerId id) override;

  /// Fault injection: the round counters and the primitive's state are this
  /// protocol's memory. The readiness timer HANDLE is deliberately left
  /// alone — scrambling it would turn recovery into use of a foreign timer
  /// id; losing the timer itself is the simulator's kCorruptTimers kind.
  void corrupt_state(Rng& rng) override;

  [[nodiscard]] std::uint64_t pulse_count() const { return pulse_count_; }
  /// Highest round acted upon so far (0 before the first pulse).
  [[nodiscard]] Round last_round() const { return next_round_ - 1; }
  [[nodiscard]] bool integrated() const { return integrated_; }
  [[nodiscard]] const SyncConfig& config() const { return cfg_; }

 protected:
  // Protected, not private: the self-stabilizing variant (core/stab_sync.h)
  // is this protocol plus a watchdog that inspects and repairs exactly this
  // state. on_accept is virtual so the watchdog can refresh its recovery
  // anchor at every legitimate correction.
  void arm_ready_timer(Context& ctx);
  virtual void on_accept(Context& ctx, Round k);
  void apply_correction(Context& ctx, Duration delta);

  SyncConfig cfg_;
  Duration alpha_;
  Duration amortize_window_;
  std::unique_ptr<BroadcastPrimitive> primitive_;

  Round next_round_ = 1;      ///< next round whose acceptance we act on
  Round next_broadcast_ = 1;  ///< next round to broadcast readiness for
  TimerId ready_timer_ = 0;   ///< 0 = no timer armed
  bool integrated_ = true;

 private:
  std::uint64_t pulse_count_ = 0;
  PulseObserver observer_;
};

}  // namespace stclock
