#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contracts.h"

namespace stclock {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ST_REQUIRE(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ST_REQUIRE(cells.size() == headers_.size(), "Table: row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace stclock
