#include "util/bytes.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace stclock {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::need(std::size_t count) const {
  if (remaining() < count) throw std::out_of_range("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

Bytes ByteReader::bytes() {
  const std::uint32_t len = u32();
  need(len);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

std::string ByteReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex digit");
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) * 16 + hex_value(hex[i + 1])));
  }
  return out;
}

}  // namespace stclock
