#!/usr/bin/env bash
# scenlaunch — process-level shard launcher for scenario-file grids.
#
# Splits a grid's global cell range into contiguous --cells A:B shards, runs
# one scenrun worker process per shard (all local, up to --workers at once),
# then scenmerges the per-shard dumps into the final CSV/JSON — byte-identical
# to an unsharded run, which `scripts/check.sh --scen` verifies for the
# checked-in grids. This is the single-machine instance of the distributed
# pattern: point the same A:B ranges at remote machines and feed the collected
# dumps to scenmerge to go multi-host.
#
# Usage: scripts/scenlaunch.sh GRID.json --workers N [options]
#   --workers N     worker processes (required, >= 1)
#   --csv FILE      merged CSV output
#   --json FILE     merged JSON output        (at least one of --csv/--json)
#   --threads N     threads per worker (scenrun --threads; default 1)
#   --build-dir DIR directory holding scenrun/scenmerge (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
  sed -n 's/^# \{0,1\}//p' "$0" | sed -n '2,16p'
}

GRID=""
WORKERS=0
CSV_OUT=""
JSON_OUT=""
THREADS=1
BUILD_DIR="build"
while [[ $# -gt 0 ]]; do
  case "$1" in
    -h|--help) usage; exit 0 ;;
    --workers) WORKERS="$2"; shift 2 ;;
    --csv) CSV_OUT="$2"; shift 2 ;;
    --json) JSON_OUT="$2"; shift 2 ;;
    --threads) THREADS="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    -*) echo "scenlaunch: unknown option: $1" >&2; usage >&2; exit 2 ;;
    *)
      [[ -z "$GRID" ]] || { echo "scenlaunch: more than one grid file" >&2; exit 2; }
      GRID="$1"; shift ;;
  esac
done

[[ -n "$GRID" ]] || { echo "scenlaunch: no grid file given" >&2; usage >&2; exit 2; }
[[ "$WORKERS" =~ ^[0-9]+$ && "$WORKERS" -ge 1 ]] \
  || { echo "scenlaunch: --workers must be a positive integer" >&2; exit 2; }
[[ -n "$CSV_OUT" || -n "$JSON_OUT" ]] \
  || { echo "scenlaunch: need --csv and/or --json output" >&2; exit 2; }
SCENRUN="$BUILD_DIR/scenrun"
SCENMERGE="$BUILD_DIR/scenmerge"
[[ -x "$SCENRUN" && -x "$SCENMERGE" ]] \
  || { echo "scenlaunch: $SCENRUN / $SCENMERGE not built (cmake --build $BUILD_DIR)" >&2; exit 1; }

TOTAL="$("$SCENRUN" "$GRID" --count)"
if (( WORKERS > TOTAL )); then
  WORKERS="$TOTAL"
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Contiguous near-even split: the first (TOTAL % WORKERS) shards get one
# extra cell, covering [0, TOTAL) exactly.
PIDS=()
RANGES=()
lo=0
for (( w = 0; w < WORKERS; w++ )); do
  size=$(( TOTAL / WORKERS + (w < TOTAL % WORKERS ? 1 : 0) ))
  hi=$(( lo + size ))
  range="$lo:$hi"
  RANGES+=("$range")
  args=("$GRID" --cells "$range" --threads "$THREADS")
  [[ -z "$CSV_OUT" ]] || args+=(--csv "$TMP/shard$w.csv")
  [[ -z "$JSON_OUT" ]] || args+=(--json "$TMP/shard$w.json")
  "$SCENRUN" "${args[@]}" &
  PIDS+=($!)
  lo=$hi
done

FAILED=0
for (( w = 0; w < WORKERS; w++ )); do
  if ! wait "${PIDS[$w]}"; then
    echo "scenlaunch: shard ${RANGES[$w]} failed" >&2
    FAILED=1
  fi
done
(( FAILED == 0 )) || exit 1

if [[ -n "$CSV_OUT" ]]; then
  "$SCENMERGE" -o "$CSV_OUT" "$TMP"/shard*.csv
fi
if [[ -n "$JSON_OUT" ]]; then
  "$SCENMERGE" -o "$JSON_OUT" "$TMP"/shard*.json
fi
echo "scenlaunch: $TOTAL cells across $WORKERS worker(s) -> ${CSV_OUT:-}${CSV_OUT:+ }${JSON_OUT:-}"
