#include <gtest/gtest.h>

#include "clocks/drift_models.h"
#include "sim/simulator.h"
#include "trace/envelope.h"
#include "trace/skew_tracker.h"

namespace stclock {
namespace {

Simulator make_sim(std::vector<HardwareClock> clocks) {
  SimParams params;
  params.n = static_cast<std::uint32_t>(clocks.size());
  params.tdel = 0.01;
  params.seed = 1;
  return Simulator(params, std::move(clocks), std::make_unique<FixedDelay>(0.0), nullptr);
}

class Idle final : public Process {
 public:
  void on_start(Context&) override {}
  void on_message(Context&, NodeId, const Message&) override {}
  void on_timer(Context&, TimerId) override {}
};

TEST(SkewTrackerTest, MeasuresSpreadOfFreeRunningClocks) {
  std::vector<HardwareClock> clocks;
  clocks.emplace_back(0.0, 1.01);   // fast
  clocks.emplace_back(0.0, 0.99);   // slow
  Simulator sim = make_sim(std::move(clocks));
  sim.set_process(0, std::make_unique<Idle>());
  sim.set_process(1, std::make_unique<Idle>());

  SkewTracker tracker(0.1);
  for (double t = 0.5; t <= 10.0; t += 0.5) {
    sim.run_until(t);
    tracker.sample(sim);
  }
  // Spread at t: (1.01 - 0.99) * t = 0.02 t -> max at t = 10.
  EXPECT_NEAR(tracker.max_skew(), 0.2, 1e-9);
  EXPECT_NEAR(tracker.max_skew_time(), 10.0, 1e-9);
}

TEST(SkewTrackerTest, SteadyWindowIgnoresEarlySamples) {
  std::vector<HardwareClock> clocks;
  clocks.emplace_back(0.3, 1.0);  // offset that will persist
  clocks.emplace_back(0.0, 1.0);
  Simulator sim = make_sim(std::move(clocks));
  sim.set_process(0, std::make_unique<Idle>());
  sim.set_process(1, std::make_unique<Idle>());

  SkewTracker tracker(0.1);
  tracker.set_steady_start(5.0);
  for (double t = 0.5; t <= 10.0; t += 0.5) {
    sim.run_until(t);
    tracker.sample(sim);
  }
  EXPECT_NEAR(tracker.steady_max_skew(), 0.3, 1e-9);
  EXPECT_NEAR(tracker.max_skew(), 0.3, 1e-9);
}

TEST(SkewTrackerTest, IncludeFilterExcludesNodes) {
  std::vector<HardwareClock> clocks;
  clocks.emplace_back(0.0, 1.0);
  clocks.emplace_back(5.0, 1.0);  // wild outlier, filtered out
  clocks.emplace_back(0.1, 1.0);
  Simulator sim = make_sim(std::move(clocks));
  for (NodeId id = 0; id < 3; ++id) sim.set_process(id, std::make_unique<Idle>());

  SkewTracker tracker(0.1, [](NodeId id) { return id != 1; });
  sim.run_until(1.0);
  tracker.sample(sim);
  EXPECT_NEAR(tracker.max_skew(), 0.1, 1e-9);
}

TEST(SkewTrackerTest, SeriesIsDecimated) {
  std::vector<HardwareClock> clocks;
  clocks.emplace_back(0.0, 1.0);
  clocks.emplace_back(0.0, 1.0);
  Simulator sim = make_sim(std::move(clocks));
  sim.set_process(0, std::make_unique<Idle>());
  sim.set_process(1, std::make_unique<Idle>());

  SkewTracker tracker(1.0);  // one-second series interval
  for (double t = 0.01; t <= 5.0; t += 0.01) {
    sim.run_until(t);
    tracker.sample(sim);
  }
  // ~5 series points despite 500 samples.
  EXPECT_LE(tracker.series().size(), 7u);
  EXPECT_GE(tracker.series().size(), 4u);
}

TEST(EnvelopeTrackerTest, RecoversConstantRates) {
  std::vector<HardwareClock> clocks;
  clocks.emplace_back(0.0, 1.02);
  clocks.emplace_back(0.0, 0.98);
  Simulator sim = make_sim(std::move(clocks));
  sim.set_process(0, std::make_unique<Idle>());
  sim.set_process(1, std::make_unique<Idle>());

  EnvelopeTracker tracker(0.1);
  for (double t = 0.1; t <= 20.0; t += 0.1) {
    sim.run_until(t);
    tracker.sample(sim);
  }
  const auto report = tracker.report(0.98, 1.02, 0.0);
  EXPECT_NEAR(report.max_rate, 1.02, 1e-9);
  EXPECT_NEAR(report.min_rate, 0.98, 1e-9);
  // The candidate slopes match exactly, so offsets stay ~0.
  EXPECT_LT(report.upper_offset, 1e-9);
  EXPECT_LT(report.lower_offset, 1e-9);
}

TEST(EnvelopeTrackerTest, OffsetsDetectEnvelopeViolations) {
  std::vector<HardwareClock> clocks;
  clocks.emplace_back(0.0, 1.1);  // faster than the claimed envelope
  Simulator sim = make_sim(std::move(clocks));
  sim.set_process(0, std::make_unique<Idle>());

  EnvelopeTracker tracker(0.1);
  for (double t = 0.1; t <= 10.0; t += 0.1) {
    sim.run_until(t);
    tracker.sample(sim);
  }
  const auto report = tracker.report(0.99, 1.01, 0.0);
  // C(t) - 1.01 t = 0.09 t grows: a large upper offset flags the violation.
  EXPECT_GT(report.upper_offset, 0.5);
}

TEST(EnvelopeTrackerTest, SteadyStartRestrictsFitNotOffsets) {
  std::vector<HardwareClock> clocks;
  // Rate 2 until t = 5, then rate 1: the steady fit should see slope ~1.
  HardwareClock clock(0.0, 2.0);
  clock.set_rate_from(5.0, 1.0);
  clocks.push_back(std::move(clock));
  Simulator sim = make_sim(std::move(clocks));
  sim.set_process(0, std::make_unique<Idle>());

  EnvelopeTracker tracker(0.1);
  for (double t = 0.1; t <= 30.0; t += 0.1) {
    sim.run_until(t);
    tracker.sample(sim);
  }
  const auto report = tracker.report(0.9, 1.1, /*steady_start=*/6.0);
  EXPECT_NEAR(report.max_rate, 1.0, 1e-6);
}

TEST(EnvelopeTrackerTest, ReportWithoutSamplesThrows) {
  EnvelopeTracker tracker(0.1);
  EXPECT_THROW((void)tracker.report(1.0, 1.0, 0.0), std::logic_error);
}

}  // namespace
}  // namespace stclock
