// Experiment T4 — Initialization and integration of repaired processes.
//
// Claim: a process that boots mid-run integrates passively and is fully
// synchronized within one (maximum) resynchronization period, without
// disturbing the running system.

#include "bench_common.h"

namespace stclock {
namespace {

std::vector<experiment::SweepCell> build_cells(std::uint64_t seed) {
  experiment::SweepGrid grid(bench::adversarial_scenario(bench::default_auth_config(), 30.0,
                                                         seed));
  grid.axis("variant", {bench::variant_value(bench::default_auth_config()),
                        bench::variant_value(bench::default_echo_config())});
  std::vector<experiment::SweepGrid::Value> joins;
  for (const double phase : {0.0, 0.25, 0.5, 0.75}) {
    for (const RealTime base : {8.0, 15.0}) {
      joins.emplace_back(Table::num(base, 0) + "s+" + Table::num(phase, 2) + "P",
                         [phase, base](experiment::ScenarioSpec& spec) {
                           spec.joiners = 1;
                           spec.join_time = base + phase * spec.cfg.period;
                         });
    }
  }
  grid.axis("join", std::move(joins));
  return grid.cells();
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("T4 — Reintegration latency",
                      "a joining process synchronizes within one max period", opts);

  const std::vector<experiment::SweepCell> cells = build_cells(opts.seed);
  const std::vector<experiment::ScenarioResult> results = bench::run_cells(cells, opts);
  if (bench::emit_json(cells, results, opts)) return 0;

  Table table({"variant", "join-time(s)", "integrated", "latency(s)",
               "max-period bound", "post-join skew", "Dmax", "live"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const experiment::ScenarioResult& r = results[i];
    table.add_row({cells[i].spec.cfg.variant_name(), Table::num(cells[i].spec.join_time, 2),
                   r.joiners_integrated ? "yes" : "NO", Table::num(r.join_latency, 4),
                   Table::num(r.bounds.max_period, 4), Table::sci(r.steady_skew),
                   Table::sci(r.bounds.precision), r.live ? "yes" : "NO"});
  }
  stclock::bench::emit(table, opts);
  std::cout << "(spam-early attack active during integration; latency must stay\n"
               " below the max-period bound and skew below Dmax on every row)\n";
  return 0;
}
