#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/sync_protocol.h"

/// Lockstep synchronizer: simulating synchronous rounds on top of
/// synchronized clocks.
///
/// The paper's introduction motivates clock synchronization as the
/// foundation for simulating synchronous execution in a Byzantine
/// environment. This module makes that claim executable: a SynchronizedApp
/// runs the full Srikanth–Toueg protocol internally and schedules
/// application rounds on the *logical* clock — round r spans logical times
/// [start + (r-1)*delta, start + r*delta).
///
/// The synchrony guarantee: if delta >= min_lockstep_round_duration(...),
/// every honest round-r message reaches every honest node before that node
/// leaves round r. Proof sketch: a sender broadcasts at its logical
/// start + (r-1)*delta; the receiver's logical clock at arrival lags the
/// sender's by at most the skew bound S and advances at most (1+rho)*tdel
/// during transit, so it reads less than start + (r-1)*delta + S +
/// (1+rho)*tdel < start + r*delta. Violations are counted, not hidden —
/// tests assert the counter stays zero exactly when delta is large enough.
namespace stclock {

/// Smallest safe logical round duration for a given configuration.
[[nodiscard]] Duration min_lockstep_round_duration(const SyncConfig& cfg);

/// Application callback interface for lockstep rounds.
class LockstepApp {
 public:
  virtual ~LockstepApp() = default;

  /// The node enters round `round`; the return value is broadcast to every
  /// node as this node's round-`round` message.
  virtual std::uint64_t on_round(NodeId self, std::uint64_t round) = 0;

  /// A round-`round` message from `from`. Delivered during the receiver's
  /// round `round` (messages that arrive while the receiver is still in an
  /// earlier round are buffered until it catches up).
  virtual void on_round_message(NodeId from, std::uint64_t round,
                                std::uint64_t payload) = 0;
};

class SynchronizedApp final : public Process {
 public:
  /// `round_duration` is the logical length of one lockstep round;
  /// `first_round_at` the logical time round 1 begins (leave some multiple
  /// of the sync period for initial convergence). The clock-synchronization
  /// machinery itself is built from `cfg` exactly as make_sync_process does.
  SynchronizedApp(SyncConfig cfg, Duration round_duration, LocalTime first_round_at,
                  std::unique_ptr<LockstepApp> app);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, NodeId from, const Message& m) override;
  void on_timer(Context& ctx, TimerId id) override;

  /// Forwards to the inner protocol (metrics instrumentation).
  void set_pulse_observer(SyncProtocol::PulseObserver observer);

  [[nodiscard]] std::uint64_t rounds_executed() const { return current_round_; }
  /// Round-r messages that arrived after this node had left round r — must
  /// be zero whenever round_duration respects the bound.
  [[nodiscard]] std::uint64_t late_messages() const { return late_messages_; }
  [[nodiscard]] const SyncProtocol& sync() const { return *sync_; }

 private:
  void arm_round_timer(Context& ctx);
  void enter_round(Context& ctx);
  void handle_lockstep(Context& ctx, NodeId from, const LockstepMsg& m);

  std::unique_ptr<SyncProtocol> sync_;
  std::unique_ptr<LockstepApp> app_;
  Duration round_duration_;
  LocalTime first_round_at_;

  std::uint64_t current_round_ = 0;  // 0 = lockstep not begun
  TimerId round_timer_ = 0;
  bool rearm_pending_ = false;  // set when the sync layer adjusts the clock
  std::uint64_t late_messages_ = 0;
  std::map<std::uint64_t, std::vector<std::pair<NodeId, std::uint64_t>>> buffered_;
  SyncProtocol::PulseObserver external_observer_;
};

}  // namespace stclock
