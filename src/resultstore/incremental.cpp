#include "resultstore/incremental.h"

#include <optional>
#include <utility>

#include "resultstore/cache_key.h"

namespace stclock::resultstore {

std::vector<experiment::ScenarioResult> run_cells_cached(
    const std::vector<experiment::SweepCell>& cells, const ResultStore* store,
    unsigned threads, bool use_cache, CacheStats* stats) {
  const experiment::SweepRunner runner(threads);
  if (stats) *stats = CacheStats{};
  if (!store) {
    if (stats) stats->misses = cells.size();
    return runner.run(cells);
  }

  std::vector<std::string> keys;
  keys.reserve(cells.size());
  for (const experiment::SweepCell& cell : cells) keys.push_back(cell_key(cell.spec));

  std::vector<experiment::ScenarioResult> results(cells.size());
  std::vector<std::size_t> miss_indices;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (use_cache) {
      if (std::optional<experiment::ScenarioResult> hit = store->load(keys[i])) {
        results[i] = std::move(*hit);
        if (stats) ++stats->hits;
        continue;
      }
    }
    miss_indices.push_back(i);
  }
  if (stats) stats->misses = miss_indices.size();
  if (miss_indices.empty()) return results;

  std::vector<experiment::SweepCell> miss_cells;
  miss_cells.reserve(miss_indices.size());
  for (const std::size_t i : miss_indices) miss_cells.push_back(cells[i]);

  std::vector<experiment::ScenarioResult> fresh = runner.run(miss_cells);
  for (std::size_t j = 0; j < miss_indices.size(); ++j) {
    store->save(keys[miss_indices[j]], fresh[j]);
    results[miss_indices[j]] = std::move(fresh[j]);
  }
  return results;
}

}  // namespace stclock::resultstore
