#include <gtest/gtest.h>

#include <map>

#include "core/joiner.h"
#include "core/runner.h"
#include "sim/simulator.h"

/// Executable sketches of the paper's optimality (lower bound) results.
///
/// The accuracy lower bound rests on an indistinguishability/scaling
/// argument: if every hardware clock runs at rate r and every delay scales
/// by 1/r, no process can tell the difference from the nominal execution —
/// its local observations are identical — so its logical clock readings are
/// the same function of local time, and real-time accuracy degrades by
/// exactly r. Hence no algorithm's logical clocks can have drift better than
/// the hardware envelope. These tests *execute* both worlds and verify the
/// scaling exactly.
namespace stclock {
namespace {

/// Runs the authenticated protocol with all hardware clocks at `rate` and
/// tdel scaled by 1/rate; returns each node's round -> pulse real time.
std::map<Round, RealTime> pulses_under_rate(double rate) {
  SyncConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.rho = 0.2;  // generous bound so both scaled worlds are legal
  cfg.tdel = 0.01 / rate;
  cfg.period = 1.0;
  // The *algorithm* (its local constants) must be identical in both worlds;
  // only the environment scales. Pin alpha rather than deriving it from the
  // scaled tdel.
  cfg.alpha = 0.011;
  cfg.initial_sync = 0;

  const crypto::KeyRegistry registry(cfg.n, 1);
  SimParams params;
  params.n = cfg.n;
  params.tdel = cfg.tdel;
  params.seed = 1;

  std::vector<HardwareClock> clocks;
  for (std::uint32_t i = 0; i < cfg.n; ++i) clocks.emplace_back(0.0, rate);

  Simulator sim(params, std::move(clocks), std::make_unique<FixedDelay>(1.0), &registry);

  std::map<Round, RealTime> pulses;  // node 0's pulses
  for (NodeId id = 0; id < cfg.n; ++id) {
    auto proc = make_sync_process(cfg);
    if (id == 0) {
      proc->set_pulse_observer([&pulses, &sim](NodeId, Round k) { pulses[k] = sim.now(); });
    }
    sim.set_process(id, std::move(proc));
  }
  // Generous margin past the last compared round so a pulse landing exactly
  // on the horizon cannot be included in one world and excluded in the other.
  sim.run_until(10.5 / rate);
  return pulses;
}

TEST(LowerBound, ScaledExecutionsAreIndistinguishable) {
  // World A: nominal. World B: clocks 10% fast, delays 10% shorter. The
  // pulse *pattern* is identical; only real time is compressed by 1.1.
  const auto nominal = pulses_under_rate(1.0);
  const auto fast = pulses_under_rate(1.1);

  // Compare rounds comfortably inside both horizons.
  for (Round round = 1; round <= 8; ++round) {
    ASSERT_TRUE(nominal.contains(round));
    ASSERT_TRUE(fast.contains(round));
    EXPECT_NEAR(fast.at(round), nominal.at(round) / 1.1, 1e-9)
        << "pulse " << round << " does not scale: the worlds were distinguishable";
  }
}

TEST(LowerBound, LogicalClocksInheritHardwareDrift) {
  // Consequence of indistinguishability: between the two worlds, the same
  // logical clock value is reached at real times differing by factor 1.1 —
  // i.e. no algorithm can guarantee logical drift below hardware drift.
  const auto nominal = pulses_under_rate(1.0);
  const auto fast = pulses_under_rate(1.1);
  const Round last = 8;
  ASSERT_TRUE(nominal.contains(last) && fast.contains(last));
  const double rate_nominal = static_cast<double>(last) / nominal.at(last);
  const double rate_fast = static_cast<double>(last) / fast.at(last);
  EXPECT_NEAR(rate_fast / rate_nominal, 1.1, 1e-6);
}

TEST(LowerBound, SynchronizationIsNecessaryAtAll) {
  // Without resynchronization, skew grows linearly in time — the baseline
  // motivating the whole problem. (gamma * horizon vs. the synchronized
  // protocol's constant bound.)
  SyncConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.0;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 1;
  spec.horizon = 30.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kHalf;

  const RunResult synced = run_sync(spec);
  const double gamma = (1 + cfg.rho) - 1 / (1 + cfg.rho);
  const double unsynced_skew = gamma * spec.horizon;  // exact for extremal drift
  EXPECT_LT(synced.steady_skew, unsynced_skew / 4)
      << "synchronization should beat free-running clocks by a wide margin";
}

TEST(LowerBound, SkewCannotBeZeroUnderDelayUncertainty) {
  // With adversarial delays in [0, tdel], measured skew is bounded away
  // from zero (Theta(tdel) is inherent when u = tdel): the split-delay
  // policy forces a spread of order tdel on every round.
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 0;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 2;
  spec.horizon = 15.0;
  spec.drift = DriftKind::kNone;
  spec.delay = DelayKind::kSplit;
  spec.attack = AttackKind::kSpamEarly;

  const RunResult r = run_sync(spec);
  EXPECT_GE(r.steady_skew, cfg.tdel / 2);
}

}  // namespace
}  // namespace stclock
