#pragma once

#include <span>

#include "crypto/sha256.h"

/// HMAC-SHA256 (RFC 2104 / FIPS 198-1), built on the local SHA-256.
namespace stclock::crypto {

[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);

}  // namespace stclock::crypto
