#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.h"

/// Network topology: which pairs of nodes share a link.
///
/// The paper's model is an implicit complete graph — every process hears
/// every broadcast directly. The most-cited follow-on work (gradient clock
/// synchronization on dynamic networks, ad hoc timepiece networks) studies
/// synchronization on *general* graphs, where a broadcast reaches only the
/// sender's neighbors and the figure of merit becomes the *local* skew
/// between adjacent nodes. A `Topology` makes the graph first-class: the
/// simulator fans broadcasts out over neighbors, delay policies may key on
/// links, and the trace layer measures skew over adjacent pairs.
///
/// Graphs are undirected and simple (no self-loops, no parallel edges);
/// neighbor lists are sorted ascending, so iteration order — and therefore
/// the event-queue insertion order that breaks delivery ties — is
/// deterministic. A complete topology is marked specially so the message
/// hot path can keep the legacy all-pairs loop bit-for-bit.
namespace stclock {

class Rng;

/// Built-in generator families (scenario files select these by name).
enum class TopologyKind : std::uint8_t {
  kComplete,  ///< every pair linked (the paper's implicit topology)
  kRing,      ///< cycle 0-1-...-n-1-0
  kTorus,     ///< near-square rows x cols grid with wraparound
  kStar,      ///< hub node 0 linked to every spoke
  kGnp,       ///< Erdos-Renyi G(n, p), seeded; may be disconnected
  kCustom,    ///< arbitrary edge list (from_edges); not a scenario-file kind
};

[[nodiscard]] const char* topology_kind_name(TopologyKind kind);

class Topology {
 public:
  /// Every pair of distinct nodes linked. Stores no adjacency — the message
  /// path detects this kind and keeps the legacy all-pairs fan-out.
  [[nodiscard]] static Topology complete(std::uint32_t n);

  /// Cycle: node i linked to (i±1) mod n. Requires n >= 3 (a 2-ring would
  /// need a parallel edge; use complete(2) instead).
  [[nodiscard]] static Topology ring(std::uint32_t n);

  /// rows x cols grid with wraparound in both dimensions, nodes numbered
  /// row-major. Degenerate 1 x n and 2 x n shapes collapse to a ring /
  /// ladder without parallel edges. Requires rows * cols == n.
  [[nodiscard]] static Topology torus(std::uint32_t rows, std::uint32_t cols);

  /// Near-square torus: rows = the largest divisor of n that is <= sqrt(n)
  /// (prime n therefore degenerates to a 1 x n ring).
  [[nodiscard]] static Topology torus(std::uint32_t n);

  /// Hub-and-spoke: node 0 linked to every other node.
  [[nodiscard]] static Topology star(std::uint32_t n);

  /// Erdos-Renyi G(n, p): each pair {i, j} linked independently with
  /// probability p, drawn from a generator seeded with `seed` (the draw
  /// order is fixed, so the graph is a pure function of (n, p, seed)).
  /// May be disconnected — callers that need liveness should check
  /// is_connected() (the scenario validator does).
  [[nodiscard]] static Topology gnp(std::uint32_t n, double p, std::uint64_t seed);

  /// Arbitrary undirected edge list (tests and custom scenarios). Rejects
  /// out-of-range endpoints, self-loops, and duplicate edges.
  [[nodiscard]] static Topology from_edges(std::uint32_t n,
                                           const std::vector<std::pair<NodeId, NodeId>>& edges);

  [[nodiscard]] std::uint32_t n() const { return n_; }
  [[nodiscard]] TopologyKind kind() const { return kind_; }
  [[nodiscard]] const char* name() const { return topology_kind_name(kind_); }

  /// True for the complete family: the hot path uses this to skip adjacency
  /// lookups entirely and keep the legacy broadcast loop.
  [[nodiscard]] bool is_complete() const { return kind_ == TopologyKind::kComplete; }

  /// O(1). False for a == b (no self-loops).
  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const;

  /// Sorted ascending. Valid for every kind, including complete.
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId id) const;

  [[nodiscard]] std::size_t degree(NodeId id) const { return neighbors(id).size(); }

  /// Undirected edge count.
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// BFS from node 0; a single node counts as connected.
  [[nodiscard]] bool is_connected() const;

 private:
  Topology(TopologyKind kind, std::uint32_t n);

  void add_edge(NodeId a, NodeId b);
  /// Sorts neighbor lists and builds the adjacency bitset.
  void finalize();

  TopologyKind kind_ = TopologyKind::kComplete;
  std::uint32_t n_ = 0;
  std::size_t edge_count_ = 0;
  std::vector<std::vector<NodeId>> adj_;
  /// Row-major n x n bitset for O(1) adjacent(); empty for complete.
  std::vector<std::uint64_t> bits_;
};

}  // namespace stclock
