#include "baselines/lundelius_welch.h"

#include <algorithm>
#include <vector>

#include "util/contracts.h"

namespace stclock::baselines {

LwProtocol::LwProtocol(LwParams params) : params_(params) {
  ST_REQUIRE(params_.n > 3 * params_.f, "LwProtocol requires n > 3f");
  ST_REQUIRE(params_.period > params_.collect_window,
             "LwProtocol: period too small for the collection window");
}

void LwProtocol::on_start(Context& ctx) { arm_broadcast(ctx); }

void LwProtocol::arm_broadcast(Context& ctx) {
  broadcast_timer_ =
      ctx.set_timer_at_logical(params_.period * static_cast<double>(round_));
}

void LwProtocol::on_message(Context& ctx, NodeId from, const Message& m) {
  const auto* lw = std::get_if<LwValueMsg>(&m);
  if (lw == nullptr) return;
  if (lw->round < round_) return;
  auto& slot = offsets_[lw->round];
  if (slot.contains(from)) return;
  // The sender transmitted exactly when its clock read round * P.
  const LocalTime implied_value = params_.period * static_cast<double>(lw->round);
  slot[from] = implied_value + params_.nominal_delay - ctx.logical_now();
}

void LwProtocol::on_timer(Context& ctx, TimerId id) {
  if (id == broadcast_timer_) {
    broadcast_timer_ = 0;
    ctx.broadcast(Message(LwValueMsg{round_}));
    collect_timer_ = ctx.set_timer_at_logical(
        params_.period * static_cast<double>(round_) + params_.collect_window);
    return;
  }
  if (id == collect_timer_) {
    collect_timer_ = 0;
    finish_round(ctx);
  }
}

void LwProtocol::finish_round(Context& ctx) {
  std::vector<Duration> estimates;
  estimates.reserve(params_.n);
  for (const auto& [sender, offset] : offsets_[round_]) {
    if (sender == ctx.self()) continue;
    estimates.push_back(offset);
  }
  estimates.push_back(0.0);  // own clock
  std::sort(estimates.begin(), estimates.end());

  // Fault-tolerant midpoint: drop the f lowest and f highest estimates; the
  // midpoint of the surviving extremes is bracketed by correct readings.
  Duration adjustment = 0;
  if (estimates.size() > 2 * params_.f) {
    const Duration lo = estimates[params_.f];
    const Duration hi = estimates[estimates.size() - 1 - params_.f];
    adjustment = (lo + hi) / 2;
  }
  ctx.logical().adjust_instant(ctx.hardware_now(), adjustment);

  offsets_.erase(offsets_.begin(), offsets_.upper_bound(round_));
  ++round_;
  arm_broadcast(ctx);
}

BaselineResult run_lundelius_welch(const BaselineSpec& spec) {
  return to_baseline_result(experiment::run_scenario(to_scenario(spec, "lundelius_welch")));
}

}  // namespace stclock::baselines
