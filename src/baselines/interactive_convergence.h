#pragma once

#include <map>

#include "baselines/baseline.h"

/// Interactive convergence (CNV) — Lamport & Melliar-Smith's averaging
/// algorithm, the classic pre-Srikanth–Toueg baseline.
///
/// Each round k, every node broadcasts its clock when it reads k*P. A
/// receiver converts the reading into an offset estimate (value +
/// nominal_delay - local clock at arrival), replaces estimates farther than
/// `delta` from its own clock by 0 (its own value), and at the end of the
/// collection window adjusts by the mean over all n slots (missing senders
/// count as 0 too).
///
/// Tolerates f < n/3 Byzantine faults for agreement, but — the property the
/// paper's accuracy theorem targets — each corrupted node can bias the mean
/// by up to ~delta/n per round, so f colluding nodes drag the *rate* of all
/// correct clocks by ~ f*delta/(n*P): drift amplification that no choice of
/// hardware clock quality can fix. Experiment F2 measures exactly this.
namespace stclock::baselines {

struct CnvParams {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  Duration period = 1.0;
  Duration delta = 0.05;         ///< discard threshold
  Duration nominal_delay = 0.005;  ///< assumed one-way delay (tdel / 2)
  Duration collect_window = 0;   ///< <= 0: derived as delta + 4 * nominal_delay
};

class CnvProtocol final : public Process {
 public:
  explicit CnvProtocol(CnvParams params);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, NodeId from, const Message& m) override;
  void on_timer(Context& ctx, TimerId id) override;

  [[nodiscard]] Round rounds_completed() const { return round_ - 1; }

 private:
  void arm_broadcast(Context& ctx);
  void finish_round(Context& ctx);

  CnvParams params_;
  Duration window_;
  Round round_ = 1;
  TimerId broadcast_timer_ = 0;
  TimerId collect_timer_ = 0;
  /// Offset estimates per round per sender (first reading wins).
  std::map<Round, std::map<NodeId, Duration>> offsets_;
};

[[nodiscard]] BaselineResult run_interactive_convergence(const BaselineSpec& spec);

}  // namespace stclock::baselines
