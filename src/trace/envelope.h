#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "util/stats.h"
#include "util/types.h"

/// Measures accuracy: how logical clocks progress relative to real time.
///
/// The paper's optimality theorem says logical clocks stay within a linear
/// envelope of real time with the *hardware* drift slopes 1/(1+rho) and
/// (1+rho) (up to additive constants and an O((alpha+D)/P) rate term) —
/// i.e. synchronization does not amplify drift. This tracker samples
/// (t, C_i(t)) for every honest node and reports:
///
///  - per-node least-squares rate (long-run slope), and the fleet min/max;
///  - envelope offsets: max_t [C_i(t) - rate_hi * t] and
///    max_t [rate_lo * t - C_i(t)] for given candidate slopes — constants iff
///    the envelope holds.
///
/// Two storage modes:
///  - Series mode (default): every (t, C) sample is kept per node and
///    report() fits after the run — the original behavior, pinned by the
///    golden suite.
///  - Streaming mode (enable_streaming): the envelope parameters are fixed
///    up-front, so each node keeps only O(1) running sums (window moments
///    for the fit, running offset maxima). O(n) total memory instead of
///    O(n * samples) — at n = 10^6 with a 0.1 s interval and a 20 s horizon
///    the series would be ~2 * 10^8 points. The fitted slopes use the
///    one-pass normal equations, mathematically equal to fit_line but not
///    bit-identical to its centered two-pass arithmetic, which is why the
///    runner engages streaming only above the scale threshold.
///
/// Past n = kStreamPoolMaxN even the O(n) streaming sums get heavy (64
/// bytes/node = 640 MB at 10^7), so streaming mode pools: only nodes with
/// id < the cap carry sums, and the reported min/max rate and offsets are
/// measured over that deterministic prefix of the fleet. Runs at or below
/// the cap — everything up to and including n = 10^6 — are bit-identical to
/// the unpooled tracker.
namespace stclock {

class EnvelopeTracker {
 public:
  /// Fleet size past which streaming sums pool to the id < cap prefix
  /// (2^20, comfortably above n = 10^6). Series mode never pools — the
  /// runner only uses it below the scale threshold.
  static constexpr std::uint32_t kStreamPoolMaxN = 1u << 20;

  explicit EnvelopeTracker(Duration sample_interval = 0.1);

  /// Switches to streaming mode (before the first sample). The later
  /// report() call must pass exactly these parameters.
  void enable_streaming(double slope_lo, double slope_hi, RealTime steady_start);

  /// Samples all honest started nodes; called from the post-event hook.
  void sample(const Simulator& sim);

  struct Report {
    double min_rate = 0;  ///< smallest fitted per-node slope
    double max_rate = 0;  ///< largest fitted per-node slope
    /// Worst additive offsets against the candidate envelope slopes.
    double upper_offset = 0;  ///< max over samples of C(t) - slope_hi * t
    double lower_offset = 0;  ///< max over samples of slope_lo * t - C(t)
  };

  /// Requires at least two samples per node. Slopes are fitted over samples
  /// with t >= steady_start (skip convergence). In streaming mode the
  /// arguments must match enable_streaming's.
  [[nodiscard]] Report report(double slope_lo, double slope_hi,
                              RealTime steady_start = 0) const;

 private:
  struct NodeSeries {
    std::vector<double> t;
    std::vector<double> c;
  };

  /// Streaming per-node state: total sample count, steady-window moments,
  /// and running offset maxima over all samples.
  struct NodeSums {
    std::uint64_t samples = 0;
    std::uint64_t window = 0;
    double st = 0, sc = 0, stt = 0, stc = 0;
    double upper = 0, lower = 0;
  };

  Duration sample_interval_;
  RealTime last_sample_ = -1;
  std::vector<NodeSeries> series_;  // index = node id (empty for corrupt)

  bool streaming_ = false;
  double stream_lo_ = 0, stream_hi_ = 0;
  RealTime stream_steady_ = 0;
  std::vector<NodeSums> sums_;
};

}  // namespace stclock
