#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/runner.h"

/// Property sweeps: the paper's theorems, checked across the parameter grid.
/// Every combination must satisfy, simultaneously:
///   - Liveness (every correct node keeps pulsing),
///   - Agreement (skew <= Dmax),
///   - Relay (pulse spread <= D),
///   - Bounded periods,
///   - Accuracy (fitted rate within [rate_lo, rate_hi]).
namespace stclock {
namespace {

struct GridPoint {
  std::uint32_t n;
  std::uint32_t f;
  Variant variant;
  DriftKind drift;
  DelayKind delay;
  AttackKind attack;
  std::uint64_t seed;
};

std::string point_name(const ::testing::TestParamInfo<GridPoint>& info) {
  const GridPoint& p = info.param;
  std::string name = "n" + std::to_string(p.n) + "f" + std::to_string(p.f);
  name += p.variant == Variant::kAuthenticated ? "_auth" : "_echo";
  name += std::string("_") + drift_name(p.drift);
  name += std::string("_") + delay_name(p.delay);
  name += std::string("_") + attack_name(p.attack);
  name += "_s" + std::to_string(p.seed);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class TheoremSweep : public ::testing::TestWithParam<GridPoint> {};

TEST_P(TheoremSweep, AllBoundsHold) {
  const GridPoint& p = GetParam();

  SyncConfig cfg;
  cfg.n = p.n;
  cfg.f = p.f;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;
  cfg.variant = p.variant;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = p.seed;
  spec.horizon = 12.0;
  spec.drift = p.drift;
  spec.delay = p.delay;
  spec.attack = p.attack;

  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.live);
  EXPECT_LE(r.steady_skew, r.bounds.precision);
  EXPECT_LE(r.pulse_spread, r.bounds.pulse_spread + 1e-9);
  EXPECT_GE(r.min_period, r.bounds.min_period - 1e-9);
  EXPECT_LE(r.max_period, r.bounds.max_period + 1e-9);
  EXPECT_GE(r.envelope.min_rate, r.bounds.rate_lo - r.rate_fit_tolerance);
  EXPECT_LE(r.envelope.max_rate, r.bounds.rate_hi + r.rate_fit_tolerance);
}

std::vector<GridPoint> auth_grid() {
  std::vector<GridPoint> grid;
  for (std::uint32_t n : {3u, 5u, 9u}) {
    const std::uint32_t f = max_faults_authenticated(n);
    for (DriftKind drift : {DriftKind::kRandomWalk, DriftKind::kExtremal}) {
      for (DelayKind delay : {DelayKind::kUniform, DelayKind::kSplit}) {
        for (AttackKind attack :
             {AttackKind::kCrash, AttackKind::kSpamEarly, AttackKind::kEquivocate}) {
          for (std::uint64_t seed : {1ull, 2ull}) {
            grid.push_back({n, f, Variant::kAuthenticated, drift, delay, attack, seed});
          }
        }
      }
    }
  }
  return grid;
}

std::vector<GridPoint> echo_grid() {
  std::vector<GridPoint> grid;
  for (std::uint32_t n : {4u, 7u, 10u}) {
    const std::uint32_t f = max_faults_echo(n);
    for (DriftKind drift : {DriftKind::kRandomWalk, DriftKind::kExtremal}) {
      for (DelayKind delay : {DelayKind::kUniform, DelayKind::kSplit}) {
        for (AttackKind attack : {AttackKind::kCrash, AttackKind::kSpamEarly}) {
          grid.push_back({n, f, Variant::kEcho, drift, delay, attack, 1});
        }
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Auth, TheoremSweep, ::testing::ValuesIn(auth_grid()), point_name);
INSTANTIATE_TEST_SUITE_P(Echo, TheoremSweep, ::testing::ValuesIn(echo_grid()), point_name);

/// Sweep over drift magnitudes: the precision bound must hold as rho grows,
/// and the measured skew must actually grow with rho (the bound is not
/// vacuous).
class DriftMagnitudeSweep : public ::testing::TestWithParam<double> {};

TEST_P(DriftMagnitudeSweep, PrecisionHoldsAndScales) {
  const double rho = GetParam();
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = rho;
  cfg.tdel = 0.005;
  cfg.period = 1.0;
  cfg.initial_sync = 0.002;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 9;
  spec.horizon = 12.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = AttackKind::kCrash;

  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.live);
  EXPECT_LE(r.steady_skew, r.bounds.precision);
}

INSTANTIATE_TEST_SUITE_P(Rho, DriftMagnitudeSweep,
                         ::testing::Values(0.0, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2));

/// Sweep over delay bounds: precision tracks tdel.
class DelayMagnitudeSweep : public ::testing::TestWithParam<double> {};

TEST_P(DelayMagnitudeSweep, PrecisionHolds) {
  const double tdel = GetParam();
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 1e-4;
  cfg.tdel = tdel;
  cfg.period = 1.0;
  cfg.initial_sync = tdel / 2;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 13;
  spec.horizon = 12.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = AttackKind::kSpamEarly;

  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.live);
  EXPECT_LE(r.steady_skew, r.bounds.precision);
  // Non-vacuous: the adversarial delay policy realizes a decent fraction of
  // the budget.
  EXPECT_GE(r.steady_skew, tdel / 2);
}

INSTANTIATE_TEST_SUITE_P(Tdel, DelayMagnitudeSweep,
                         ::testing::Values(0.001, 0.005, 0.01, 0.02, 0.05));

/// Alpha ablation: any alpha in (0, P) keeps the algorithm correct; the
/// default (1+rho)*D is just the paper's choice.
class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, CorrectForAnyReasonableAlpha) {
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;
  cfg.alpha = GetParam();

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 21;
  spec.horizon = 12.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = AttackKind::kSpamEarly;

  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.live);
  EXPECT_LE(r.steady_skew, r.bounds.precision);
}

INSTANTIATE_TEST_SUITE_P(Alpha, AlphaSweep,
                         ::testing::Values(0.005, 0.01, 0.02, 0.05, 0.2));

/// Joiner sweep: integration must succeed for any join phase, both
/// variants, with and without an active attack.
struct JoinPoint {
  Variant variant;
  double join_time;
  AttackKind attack;
};

class JoinerSweep : public ::testing::TestWithParam<JoinPoint> {};

TEST_P(JoinerSweep, IntegrationAlwaysSucceeds) {
  const JoinPoint& p = GetParam();
  SyncConfig cfg;
  cfg.variant = p.variant;
  // Liveness while the joiner is down needs n - f(actual) - joiners >= f+1:
  // the down joiner effectively counts toward the fault budget.
  cfg.n = 7;
  cfg.f = 2;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 17;
  spec.horizon = 20.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = p.attack;
  spec.joiners = 1;
  spec.join_time = p.join_time;

  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.joiners_integrated);
  EXPECT_LE(r.join_latency, r.bounds.max_period + 1e-9);
  EXPECT_LE(r.steady_skew, r.bounds.precision);
}

std::vector<JoinPoint> join_grid() {
  std::vector<JoinPoint> grid;
  for (Variant variant : {Variant::kAuthenticated, Variant::kEcho}) {
    for (double join_time : {5.1, 7.53, 9.999, 12.25}) {
      for (AttackKind attack : {AttackKind::kCrash, AttackKind::kSpamEarly}) {
        grid.push_back({variant, join_time, attack});
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Join, JoinerSweep, ::testing::ValuesIn(join_grid()));

/// Amortized (smooth) adjustment sweep: monotone clocks, bounded skew, for
/// a range of amortization windows.
class AmortizedSweep : public ::testing::TestWithParam<double> {};

TEST_P(AmortizedSweep, SmoothModeStaysCorrect) {
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;
  cfg.adjust = AdjustMode::kAmortized;
  cfg.amortize_window = GetParam();

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 23;
  spec.horizon = 15.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = AttackKind::kSpamEarly;

  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.live);
  EXPECT_GT(r.envelope.min_rate, 0.5);  // clocks never stall or run backwards
  // Corrections lag by up to one window; allow that slack on top of Dmax.
  EXPECT_LE(r.steady_skew, r.bounds.precision + 2 * r.bounds.accept_spread);
}

INSTANTIATE_TEST_SUITE_P(Window, AmortizedSweep,
                         ::testing::Values(0.05, 0.1, 0.25, 0.45));

/// Sleeper sweep: the attack may begin at any time without breaking bounds.
class SleeperSweep : public ::testing::TestWithParam<double> {};

TEST_P(SleeperSweep, MidRunWakeupIsHarmless) {
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 29;
  spec.horizon = 18.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = AttackKind::kSleeper;  // wake time fixed at 10 s in AttackParams

  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.live);
  EXPECT_LE(r.steady_skew, r.bounds.precision);
  EXPECT_GE(r.min_period, r.bounds.min_period - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Wake, SleeperSweep, ::testing::Values(1.0));

/// Unsynchronized-start sweep: convergence from any initial spread.
class InitSpreadSweep : public ::testing::TestWithParam<double> {};

TEST_P(InitSpreadSweep, ConvergesFromAnySpread) {
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = GetParam();
  cfg.allow_unsynchronized_start = true;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 31;
  spec.horizon = 20.0;
  spec.drift = DriftKind::kRandomConstant;
  spec.delay = DelayKind::kUniform;
  spec.attack = AttackKind::kSpamEarly;

  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.live);
  EXPECT_LE(r.steady_skew, r.bounds.precision);
}

INSTANTIATE_TEST_SUITE_P(Spread, InitSpreadSweep,
                         ::testing::Values(0.05, 0.2, 0.5, 1.5, 3.0));

}  // namespace
}  // namespace stclock
