// Experiment F3 — Skew as a function of the drift bound rho.
//
// Figure data: measured worst-case steady skew vs rho, for both variants,
// against Dmax(rho). At small rho the delay term (D, alpha) dominates; past
// rho ~ tdel/P the rho*P term takes over and the curve turns linear in rho.

#include "bench_common.h"

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("F3 — Skew vs drift bound rho",
                      "Dmax = Theta(tdel + rho*P): flat in rho until rho*P ~ tdel, "
                      "then linear", opts);

  experiment::SweepGrid grid(bench::adversarial_scenario(bench::default_auth_config(), 30.0,
                                                         opts.seed));
  grid.axis("variant", {bench::variant_value(bench::default_auth_config()),
                        bench::variant_value(bench::default_echo_config())});
  std::vector<experiment::SweepGrid::Value> rhos;
  for (const double rho : {0.0, 1e-5, 1e-4, 1e-3, 3e-3, 1e-2}) {
    rhos.emplace_back(Table::sci(rho, 1),
                      [rho](experiment::ScenarioSpec& spec) { spec.cfg.rho = rho; });
  }
  grid.axis("rho", std::move(rhos));

  const std::vector<experiment::SweepCell> cells = grid.cells();
  const std::vector<experiment::ScenarioResult> results = bench::run_cells(cells, opts);
  if (bench::emit_json(cells, results, opts)) return 0;

  Table table({"variant", "rho", "skew(s)", "Dmax(s)", "ratio", "live"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const experiment::ScenarioResult& r = results[i];
    table.add_row({cells[i].spec.cfg.variant_name(), Table::sci(cells[i].spec.cfg.rho, 1),
                   Table::sci(r.steady_skew), Table::sci(r.bounds.precision),
                   Table::num(r.steady_skew / r.bounds.precision, 2),
                   r.live ? "yes" : "NO"});
  }
  stclock::bench::emit(table, opts);
  std::cout << "(n=7, tdel=10ms, P=1s, extremal drift, split delays, spam-early)\n";
  return 0;
}
