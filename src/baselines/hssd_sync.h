#pragma once

#include <set>

#include "baselines/baseline.h"

/// HSSD-style authenticated synchronization (after Halpern, Simons, Strong &
/// Dolev, PODC 1984) — the signature-based competitor the paper improves on.
///
/// Simplified faithfully to its accuracy-relevant core: when a process's
/// clock reads kP it signs and broadcasts (round k); a process resets
/// C := kP + beta upon the FIRST valid (round k) signature it sees — its own
/// or anyone else's — provided its clock is within a plausibility window W
/// of kP, and relays that message. One signature suffices (instead of the
/// paper's f+1 quorum), which buys resilience to any number of faults for
/// *agreement*, but surrenders the unforgeability anchor: a single corrupted
/// node can legitimately trigger every round as soon as the window opens,
/// advancing every correct clock by ~W per period. The result is
/// constant-factor drift amplification ~ (1 + W/P), which no hardware
/// quality or period choice removes — exactly the accuracy weakness the
/// Srikanth–Toueg quorum rule eliminates.
namespace stclock::baselines {

struct HssdParams {
  std::uint32_t n = 4;
  Duration period = 1.0;
  /// Clock-reset offset (compensates expected delivery delay).
  Duration beta = 0.01;
  /// Plausibility window: accept (round k) while own clock is in
  /// [kP - window, kP + window].
  Duration window = 0.05;
};

class HssdProtocol final : public Process {
 public:
  explicit HssdProtocol(HssdParams params);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, NodeId from, const Message& m) override;
  void on_timer(Context& ctx, TimerId id) override;

  [[nodiscard]] Round rounds_completed() const { return next_round_ - 1; }

 private:
  void arm_broadcast(Context& ctx);
  void try_accept(Context& ctx, Round k, const crypto::Signature& sig);

  HssdParams params_;
  Round next_round_ = 1;      ///< next round to resynchronize on
  Round next_broadcast_ = 1;  ///< next round to sign & broadcast at kP
  TimerId broadcast_timer_ = 0;
};

/// The matching attack is AttackKind::kHssdEarly (adversary/strategies.h):
/// corrupted nodes sign each round the moment any honest window opens.
[[nodiscard]] BaselineResult run_hssd(const BaselineSpec& spec);

}  // namespace stclock::baselines
