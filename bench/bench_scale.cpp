// Scale sweep driver: wall-clock and memory for sparse-topology scenarios
// at fleet sizes up to n = 10^6 — the regime the sparse-first topology
// representation and the ladder event queue exist for. Unlike bench_micro
// (google-benchmark hot paths) this is a plain binary: one row per cell,
// timed end-to-end through the real run_scenario path, metrics included.
//
//   bench_scale                        # default sweep: ring 10^4..10^6
//   bench_scale --topology torus --n 1000000
//   bench_scale --topology gnp --n 100000 --gnp-p 2e-4
//   bench_scale --protocol unsynchronized ...   # metric-overhead floor
//   bench_scale --topology expander --expander-k 16 --mode sampled
//       --sample 8 --protocol auth --n 100000   # sparse-fabric acceptance cell
//
// The sparse-fabric knobs mirror the scenario fields: --mode
// full|neighbors|sampled selects the broadcast fan-out, --sample M the
// per-broadcast recipient count in sampled mode, --expander-k the expander
// degree. The msgs/rnd column (messages / protocol rounds) is the
// message-complexity cliff: Theta(n^2) per round in full mode vs O(k*n) on
// the sparse fabric.
//
// Exits non-zero if any cell exceeds --budget wall seconds (default: off),
// so CI can enforce "a million-node ring sweep finishes in minutes".
// --json FILE appends one JSON object per row (ndjson) for
// scripts/bench.sh --scale to fold into BENCH_core.json.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "experiment/registry.h"
#include "experiment/scenario.h"
#include "sim/topology.h"

namespace stclock {
namespace {

long peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss / 1024;  // Linux reports KB
}

struct Options {
  std::vector<std::uint32_t> sizes;
  std::string topology = "ring";
  std::string protocol = "gradient";
  std::string mode = "full";
  std::uint32_t sample = 0;
  std::uint32_t expander_k = 16;
  double gnp_p = 2e-4;
  double horizon = 5.0;
  double budget = 0;      // wall-seconds per cell; 0 = unenforced
  long rss_budget = 0;    // peak-RSS MB per cell; 0 = unenforced
  std::uint32_t sim_threads = 1;
  std::string delay = "uniform";
  std::uint64_t seed = 1;
  std::string json_path;  // append ndjson rows here when non-empty
};

Options parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--n" && has_value) {
      opts.sizes.push_back(static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10)));
    } else if (arg == "--topology" && has_value) {
      opts.topology = argv[++i];
    } else if (arg == "--protocol" && has_value) {
      opts.protocol = argv[++i];
    } else if (arg == "--gnp-p" && has_value) {
      opts.gnp_p = std::strtod(argv[++i], nullptr);
    } else if (arg == "--mode" && has_value) {
      opts.mode = argv[++i];
    } else if (arg == "--sample" && has_value) {
      opts.sample = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--expander-k" && has_value) {
      opts.expander_k = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--json" && has_value) {
      opts.json_path = argv[++i];
    } else if (arg == "--horizon" && has_value) {
      opts.horizon = std::strtod(argv[++i], nullptr);
    } else if (arg == "--budget" && has_value) {
      opts.budget = std::strtod(argv[++i], nullptr);
    } else if (arg == "--rss-budget" && has_value) {
      opts.rss_budget = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--sim-threads" && has_value) {
      opts.sim_threads = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--delay" && has_value) {
      opts.delay = argv[++i];
    } else if (arg == "--seed" && has_value) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_scale [--n N]... [--topology ring|torus|gnp|expander|complete] "
          "[--protocol NAME] [--mode full|neighbors|sampled] [--sample M] "
          "[--expander-k K] [--gnp-p P] [--horizon H] [--budget SECONDS] "
          "[--rss-budget MB] [--sim-threads T] [--delay uniform|half|max] [--seed S] "
          "[--json FILE]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "bench_scale: unknown option %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  if (opts.sizes.empty()) opts.sizes = {10000, 100000, 1000000};
  return opts;
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  using namespace stclock;
  const Options opts = parse(argc, argv);

  std::printf("# protocol=%s topology=%s mode=%s delay=%s threads=%u horizon=%.2f seed=%llu\n",
              opts.protocol.c_str(), opts.topology.c_str(), opts.mode.c_str(),
              opts.delay.c_str(), opts.sim_threads, opts.horizon,
              static_cast<unsigned long long>(opts.seed));
  std::printf("%10s %12s %12s %10s %10s %10s %12s %12s %8s\n", "n", "events", "messages",
              "msgs_rnd", "wall_s", "rss_mb", "max_skew", "local_skew", "windows");

  std::FILE* json = nullptr;
  if (!opts.json_path.empty()) {
    json = std::fopen(opts.json_path.c_str(), "a");
    if (json == nullptr) {
      std::fprintf(stderr, "bench_scale: cannot open %s\n", opts.json_path.c_str());
      return 2;
    }
  }

  bool over_budget = false;
  for (const std::uint32_t n : opts.sizes) {
    experiment::ScenarioSpec spec;
    spec.protocol = opts.protocol;
    spec.cfg.n = n;
    spec.cfg.f = 0;
    spec.cfg.rho = 1e-4;
    spec.cfg.tdel = 0.01;
    spec.cfg.period = 1.0;
    spec.cfg.initial_sync = 0.005;
    spec.seed = opts.seed;
    spec.horizon = opts.horizon;
    spec.attack = AttackKind::kNone;
    spec.gnp_p = opts.gnp_p;
    spec.topology_seed = opts.seed;
    spec.expander_k = opts.expander_k;
    spec.sim_threads = opts.sim_threads;
    if (opts.delay == "uniform") {
      spec.delay = DelayKind::kUniform;
    } else if (opts.delay == "half") {
      spec.delay = DelayKind::kHalf;
    } else if (opts.delay == "max") {
      spec.delay = DelayKind::kMax;
    } else {
      std::fprintf(stderr, "bench_scale: unknown delay %s (uniform|half|max)\n",
                   opts.delay.c_str());
      return 2;
    }
    if (opts.topology == "ring") {
      spec.topology = TopologyKind::kRing;
    } else if (opts.topology == "torus") {
      spec.topology = TopologyKind::kTorus;
    } else if (opts.topology == "gnp") {
      spec.topology = TopologyKind::kGnp;
    } else if (opts.topology == "expander") {
      spec.topology = TopologyKind::kExpander;
    } else if (opts.topology == "complete") {
      spec.topology = TopologyKind::kComplete;
    } else {
      std::fprintf(stderr, "bench_scale: unknown topology %s\n", opts.topology.c_str());
      return 2;
    }
    if (opts.mode == "full") {
      spec.broadcast_mode = BroadcastMode::kFull;
    } else if (opts.mode == "neighbors") {
      spec.broadcast_mode = BroadcastMode::kNeighbors;
    } else if (opts.mode == "sampled") {
      spec.broadcast_mode = BroadcastMode::kSampled;
      spec.sample_size = opts.sample > 0 ? opts.sample : 8;
    } else {
      std::fprintf(stderr, "bench_scale: unknown mode %s\n", opts.mode.c_str());
      return 2;
    }

    const auto begin = std::chrono::steady_clock::now();
    const experiment::ScenarioResult r = experiment::run_scenario(spec);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();

    // Protocol rounds: pulses when the protocol produces them, else the
    // resync schedule implied by the horizon. Guards the division for short
    // horizons that never complete a round.
    const std::uint64_t rounds = std::max<std::uint64_t>(
        r.max_pulses > 0 ? r.max_pulses
                         : static_cast<std::uint64_t>(opts.horizon / spec.cfg.period),
        1);
    const double msgs_per_round = static_cast<double>(r.messages_sent) / rounds;
    const long rss = peak_rss_mb();

    std::printf("%10u %12llu %12llu %10.3e %10.2f %10ld %12.3e %12.3e %8llu\n", n,
                static_cast<unsigned long long>(r.events_dispatched),
                static_cast<unsigned long long>(r.messages_sent), msgs_per_round, wall,
                rss, r.max_skew, r.local_skew,
                static_cast<unsigned long long>(r.parallel_windows));
    std::fflush(stdout);
    if (json != nullptr) {
      std::fprintf(json,
                   "{\"name\": \"bench_scale/%s/%s/%s/n=%u/t=%u\", \"n\": %u, "
                   "\"sim_threads\": %u, \"events\": %llu, \"messages\": %llu, "
                   "\"msgs_per_round\": %.1f, \"wall_s\": %.3f, \"rss_mb\": %ld, "
                   "\"max_skew\": %.6e, \"local_skew\": %.6e, \"parallel_windows\": %llu}\n",
                   opts.protocol.c_str(), opts.topology.c_str(), opts.mode.c_str(), n,
                   opts.sim_threads, n, opts.sim_threads,
                   static_cast<unsigned long long>(r.events_dispatched),
                   static_cast<unsigned long long>(r.messages_sent), msgs_per_round, wall,
                   rss, r.max_skew, r.local_skew,
                   static_cast<unsigned long long>(r.parallel_windows));
      std::fflush(json);
    }
    if (opts.budget > 0 && wall > opts.budget) {
      std::fprintf(stderr, "bench_scale: n=%u took %.1fs (budget %.1fs)\n", n, wall,
                   opts.budget);
      over_budget = true;
    }
    if (opts.rss_budget > 0 && rss > opts.rss_budget) {
      std::fprintf(stderr, "bench_scale: n=%u peaked at %ld MB RSS (budget %ld MB)\n", n,
                   rss, opts.rss_budget);
      over_budget = true;
    }
  }
  if (json != nullptr) std::fclose(json);
  return over_budget ? 1 : 0;
}
