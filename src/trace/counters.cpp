#include "trace/counters.h"

namespace stclock {

std::map<std::string, KindCount> MessageCounters::by_kind() const {
  std::map<std::string, KindCount> out;
  for (std::size_t i = 0; i < kinds_.size(); ++i) {
    const KindCount& k = kinds_[i];
    if (k.messages == 0 && k.bytes == 0) continue;
    out.emplace(message_kind_name(static_cast<MessageKind>(i)), k);
  }
  return out;
}

void MessageCounters::reset() {
  total_sent_ = 0;
  total_delivered_ = 0;
  total_bytes_ = 0;
  kinds_.fill(KindCount{});
}

}  // namespace stclock
