#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "experiment/registry.h"
#include "experiment/scenario.h"
#include "experiment/sinks.h"
#include "experiment/sweep.h"
#include "util/table.h"

/// Shared harness for the experiment binaries, built on the unified scenario
/// API: every experiment declares its grid as ScenarioSpec cells, executes
/// them through a SweepRunner (parallel with --threads), and either renders
/// its bespoke figure table or dumps the standard machine-readable sink
/// (--csv / --json).
///
/// Every experiment runs the protocol under *adversarial* conditions by
/// default — worst-case drift (extremal rates), worst-case delay assignment
/// (split), and an active attack — because that is the regime the paper's
/// bounds are about.
namespace stclock::bench {

inline SyncConfig default_auth_config() {
  SyncConfig cfg;
  cfg.n = 7;
  cfg.f = 3;  // = ceil(7/2) - 1, the authenticated maximum
  cfg.rho = 1e-4;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;
  cfg.variant = Variant::kAuthenticated;
  return cfg;
}

inline SyncConfig default_echo_config() {
  SyncConfig cfg = default_auth_config();
  cfg.variant = Variant::kEcho;
  cfg.f = 2;  // = ceil(7/3) - 1, the signature-free maximum
  return cfg;
}

/// Worst-case scenario for a Srikanth–Toueg config: extremal drift, split
/// delays, spam-early attack; the protocol name follows cfg.variant.
inline experiment::ScenarioSpec adversarial_scenario(SyncConfig cfg, RealTime horizon = 30.0,
                                                     std::uint64_t seed = 1) {
  experiment::ScenarioSpec spec;
  spec.protocol = cfg.variant == Variant::kEcho ? "echo" : "auth";
  spec.cfg = cfg;
  spec.seed = seed;
  spec.horizon = horizon;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = AttackKind::kSpamEarly;
  return spec;
}

/// Grid-axis value that swaps in a whole ST config (and matching protocol):
/// the standard "variant" axis of the T/F experiments. Because it replaces
/// cfg wholesale, declare this axis FIRST — a variant axis applied after a
/// cfg-mutating axis would silently undo that axis's mutation.
inline experiment::SweepGrid::Value variant_value(const SyncConfig& cfg) {
  return {cfg.variant_name(), [cfg](experiment::ScenarioSpec& spec) {
            spec.cfg = cfg;
            spec.protocol = cfg.variant == Variant::kEcho ? "echo" : "auth";
          }};
}

inline void print_header(const char* experiment, const char* claim) {
  std::cout << "==============================================================\n"
            << experiment << "\n"
            << "Paper claim: " << claim << "\n"
            << "==============================================================\n";
}

/// Command-line options shared by every experiment binary:
///   --seed N     rerun the experiment with a different random seed
///   --threads N  run the scenario grid on N worker threads (0 = all cores)
///   --csv        emit CSV instead of the aligned table (for plotting)
///   --json       emit the standard JSON sink with every spec+metric field
struct Options {
  std::uint64_t seed = 1;
  unsigned threads = 1;
  bool csv = false;
  bool json = false;
};

inline Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      opts.csv = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      opts.threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0] << " [--seed N] [--threads N] [--csv] [--json]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << arg << " (try --help)\n";
      std::exit(2);
    }
  }
  return opts;
}

/// Banner variant that keeps stdout machine-parseable: under --json the
/// whole stream must be the JSON document, so the banner is suppressed.
inline void print_header(const char* experiment, const char* claim, const Options& opts) {
  if (opts.json) return;
  print_header(experiment, claim);
}

/// Executes every cell on the option-selected worker pool.
inline std::vector<experiment::ScenarioResult> run_cells(
    const std::vector<experiment::SweepCell>& cells, const Options& opts) {
  return experiment::SweepRunner(opts.threads).run(cells);
}

/// Emits the standard machine-readable dump when --json was passed. Returns
/// true if it did — callers then skip their bespoke table.
inline bool emit_json(const std::vector<experiment::SweepCell>& cells,
                      const std::vector<experiment::ScenarioResult>& results,
                      const Options& opts) {
  if (!opts.json) return false;
  experiment::write_json(std::cout, cells, results);
  return true;
}

inline void emit(const Table& table, const Options& opts) {
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

}  // namespace stclock::bench
