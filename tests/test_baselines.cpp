#include <gtest/gtest.h>

#include "baselines/interactive_convergence.h"
#include "baselines/leader_sync.h"
#include "baselines/lundelius_welch.h"
#include "baselines/unsynchronized.h"

namespace stclock::baselines {
namespace {

BaselineSpec base_spec() {
  BaselineSpec spec;
  spec.n = 7;
  spec.f = 2;
  spec.rho = 1e-3;
  spec.tdel = 0.01;
  spec.period = 1.0;
  spec.delta = 0.05;
  spec.initial_sync = 0.005;
  spec.seed = 5;
  spec.horizon = 30.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kHalf;
  return spec;
}

TEST(Unsynchronized, SkewGrowsLinearlyWithDrift) {
  const BaselineSpec spec = base_spec();
  const BaselineResult r = run_unsynchronized(spec);
  const double gamma = (1 + spec.rho) - 1 / (1 + spec.rho);
  // Extremal drift: fastest and slowest clocks diverge at rate gamma.
  EXPECT_GE(r.max_skew, 0.8 * gamma * spec.horizon);
  EXPECT_LE(r.max_skew, gamma * spec.horizon + spec.initial_sync + 1e-9);
}

TEST(Unsynchronized, NoMessagesSent) {
  const BaselineResult r = run_unsynchronized(base_spec());
  EXPECT_EQ(r.messages_sent, 0u);
}

TEST(Cnv, ConvergesUnderBenignConditions) {
  const BaselineResult r = run_interactive_convergence(base_spec());
  // Steady-state skew bounded by roughly the reading error (tdel) plus
  // drift per round — far below the unsynchronized linear growth.
  EXPECT_LE(r.steady_skew, 3 * base_spec().tdel + 0.01);
}

TEST(Cnv, ToleratesCrashFaults) {
  BaselineSpec spec = base_spec();
  spec.attack = AttackKind::kCrash;
  const BaselineResult r = run_interactive_convergence(spec);
  EXPECT_LE(r.steady_skew, 3 * spec.tdel + 0.01);
}

TEST(Cnv, PullAttackAmplifiesDrift) {
  // The paper's motivation: averaging lets f colluding nodes drag the
  // *rate* of every correct clock. Expected bias ~ f * 0.9*delta / n per
  // period.
  BaselineSpec spec = base_spec();
  spec.attack = AttackKind::kCnvPull;
  const BaselineResult r = run_interactive_convergence(spec);

  const double bias_per_period =
      static_cast<double>(spec.f) * 0.9 * spec.delta / spec.n;
  const double expected_rate = 1.0 + bias_per_period / spec.period;
  // The fleet runs measurably faster than any hardware clock is allowed to.
  EXPECT_GT(r.envelope.max_rate, 1 + spec.rho + 0.5 * bias_per_period / spec.period);
  EXPECT_LT(r.envelope.max_rate, expected_rate + 0.01);
}

TEST(Cnv, AgreementSurvivesPullAttackEvenThoughAccuracyDoesNot) {
  BaselineSpec spec = base_spec();
  spec.attack = AttackKind::kCnvPull;
  const BaselineResult r = run_interactive_convergence(spec);
  // The attack drags everyone together: mutual skew stays bounded...
  EXPECT_LE(r.steady_skew, 3 * spec.delta);
  // ...while real-time accuracy is destroyed (checked above).
}

TEST(Lw, ConvergesUnderBenignConditions) {
  const BaselineResult r = run_lundelius_welch(base_spec());
  EXPECT_LE(r.steady_skew, 3 * base_spec().tdel + 0.01);
}

TEST(Lw, FaultTolerantMidpointResistsPullAttack) {
  // The f-trim discards the adversary's extreme estimates: rate stays within
  // (a hair of) the hardware envelope — the contrast case to CNV.
  BaselineSpec spec = base_spec();
  spec.attack = AttackKind::kLwPull;
  const BaselineResult r = run_lundelius_welch(spec);
  EXPECT_LT(r.envelope.max_rate, 1 + spec.rho + 5 * spec.tdel / spec.period);
  EXPECT_LE(r.steady_skew, 5 * spec.tdel + 0.01);
}

TEST(Lw, RequiresNGreaterThan3f) {
  LwParams params;
  params.n = 6;
  params.f = 2;
  EXPECT_THROW(LwProtocol{params}, std::logic_error);
}

TEST(Leader, HonestLeaderGivesTightSkew) {
  BaselineSpec spec = base_spec();
  const BaselineResult r = run_leader_sync(spec, /*corrupt_leader=*/false);
  EXPECT_LE(r.steady_skew, 3 * spec.tdel + 0.01);
}

TEST(Leader, CorruptLeaderDestroysAccuracy) {
  BaselineSpec spec = base_spec();
  const BaselineResult r = run_leader_sync(spec, /*corrupt_leader=*/true);
  // Followers slave to a clock running 10% fast: rate blows far past any
  // drift bound — a single fault defeats the scheme entirely.
  EXPECT_GT(r.envelope.max_rate, 1.05);
}

TEST(Leader, HonestLeaderMessageCostIsLinear) {
  BaselineSpec spec = base_spec();
  const BaselineResult r = run_leader_sync(spec, false);
  // ~n messages per period, ~horizon/period periods.
  const double periods = spec.horizon / spec.period;
  EXPECT_LT(static_cast<double>(r.messages_sent), 2.0 * spec.n * periods);
}

TEST(Baselines, DeterministicGivenSeed) {
  const BaselineSpec spec = base_spec();
  EXPECT_DOUBLE_EQ(run_interactive_convergence(spec).max_skew,
                   run_interactive_convergence(spec).max_skew);
  EXPECT_DOUBLE_EQ(run_lundelius_welch(spec).max_skew,
                   run_lundelius_welch(spec).max_skew);
}

}  // namespace
}  // namespace stclock::baselines
