#include "sim/topology.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/rng.h"

namespace stclock {

const char* topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kComplete: return "complete";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kTorus: return "torus";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kGnp: return "gnp";
    case TopologyKind::kCustom: return "custom";
  }
  return "unknown";
}

Topology::Topology(TopologyKind kind, std::uint32_t n) : kind_(kind), n_(n) {
  ST_REQUIRE(n > 0, "Topology: need at least one node");
  adj_.resize(n);
}

void Topology::add_edge(NodeId a, NodeId b) {
  ST_REQUIRE(a < n_ && b < n_, "Topology: edge endpoint out of range");
  ST_REQUIRE(a != b, "Topology: self-loops are not links");
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  ++edge_count_;
}

void Topology::finalize() {
  for (NodeId id = 0; id < n_; ++id) {
    std::vector<NodeId>& nbrs = adj_[id];
    std::sort(nbrs.begin(), nbrs.end());
    ST_REQUIRE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end(),
               "Topology: duplicate edge");
  }
  if (kind_ == TopologyKind::kComplete) return;  // adjacent() answers a != b
  const std::size_t cells = static_cast<std::size_t>(n_) * n_;
  bits_.assign((cells + 63) / 64, 0);
  for (NodeId a = 0; a < n_; ++a) {
    for (const NodeId b : adj_[a]) {
      const std::size_t bit = static_cast<std::size_t>(a) * n_ + b;
      bits_[bit / 64] |= std::uint64_t{1} << (bit % 64);
    }
  }
}

bool Topology::adjacent(NodeId a, NodeId b) const {
  ST_REQUIRE(a < n_ && b < n_, "Topology::adjacent: node id out of range");
  if (kind_ == TopologyKind::kComplete) return a != b;
  const std::size_t bit = static_cast<std::size_t>(a) * n_ + b;
  return (bits_[bit / 64] >> (bit % 64)) & 1;
}

const std::vector<NodeId>& Topology::neighbors(NodeId id) const {
  ST_REQUIRE(id < n_, "Topology::neighbors: node id out of range");
  return adj_[id];
}

bool Topology::is_connected() const {
  std::vector<bool> seen(n_, false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::uint32_t reached = 1;
  while (!stack.empty()) {
    const NodeId at = stack.back();
    stack.pop_back();
    for (const NodeId next : adj_[at]) {
      if (!seen[next]) {
        seen[next] = true;
        ++reached;
        stack.push_back(next);
      }
    }
  }
  return reached == n_;
}

Topology Topology::complete(std::uint32_t n) {
  Topology topo(TopologyKind::kComplete, n);
  for (NodeId a = 0; a < n; ++a) {
    topo.adj_[a].reserve(n - 1);
    for (NodeId b = 0; b < n; ++b) {
      if (b != a) topo.adj_[a].push_back(b);
    }
  }
  topo.edge_count_ = static_cast<std::size_t>(n) * (n - 1) / 2;
  topo.finalize();
  return topo;
}

Topology Topology::ring(std::uint32_t n) {
  ST_REQUIRE(n >= 3, "Topology::ring: need n >= 3 (use complete for smaller fleets)");
  Topology topo(TopologyKind::kRing, n);
  for (NodeId a = 0; a < n; ++a) topo.add_edge(a, (a + 1) % n);
  topo.finalize();
  return topo;
}

Topology Topology::torus(std::uint32_t rows, std::uint32_t cols) {
  ST_REQUIRE(rows >= 1 && cols >= 1, "Topology::torus: need positive dimensions");
  const std::uint32_t n = rows * cols;
  ST_REQUIRE(n >= 3, "Topology::torus: need at least 3 nodes");
  Topology topo(TopologyKind::kTorus, n);
  const auto at = [cols](std::uint32_t r, std::uint32_t c) { return r * cols + c; };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      // Right and down wraparound links cover every edge exactly once;
      // dimensions of size <= 2 would duplicate them, so guard each.
      if (cols > 2 || c + 1 < cols) topo.add_edge(at(r, c), at(r, (c + 1) % cols));
      if (rows > 2 || r + 1 < rows) topo.add_edge(at(r, c), at((r + 1) % rows, c));
    }
  }
  topo.finalize();
  return topo;
}

Topology Topology::torus(std::uint32_t n) {
  std::uint32_t rows = 1;
  for (std::uint32_t d = 1; static_cast<std::uint64_t>(d) * d <= n; ++d) {
    if (n % d == 0) rows = d;
  }
  return torus(rows, n / rows);
}

Topology Topology::star(std::uint32_t n) {
  ST_REQUIRE(n >= 2, "Topology::star: need a hub and at least one spoke");
  Topology topo(TopologyKind::kStar, n);
  for (NodeId spoke = 1; spoke < n; ++spoke) topo.add_edge(0, spoke);
  topo.finalize();
  return topo;
}

Topology Topology::gnp(std::uint32_t n, double p, std::uint64_t seed) {
  ST_REQUIRE(p > 0 && p <= 1, "Topology::gnp: need edge probability in (0, 1]");
  Topology topo(TopologyKind::kGnp, n);
  Rng rng(seed);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (rng.bernoulli(p)) topo.add_edge(a, b);
    }
  }
  topo.finalize();
  return topo;
}

Topology Topology::from_edges(std::uint32_t n,
                              const std::vector<std::pair<NodeId, NodeId>>& edges) {
  Topology topo(TopologyKind::kCustom, n);
  for (const auto& [a, b] : edges) topo.add_edge(a, b);
  topo.finalize();  // rejects duplicates
  return topo;
}

}  // namespace stclock
