#include "baselines/gradient_sync.h"

#include "util/contracts.h"

namespace stclock::baselines {

GradientProtocol::GradientProtocol(GradientParams params) : params_(params) {
  ST_REQUIRE(params_.n >= 1, "GradientProtocol: need at least one node");
  ST_REQUIRE(params_.period > 0, "GradientProtocol: period must be positive");
  ST_REQUIRE(params_.nominal_delay >= 0, "GradientProtocol: negative nominal delay");
  ST_REQUIRE(params_.gain > 0 && params_.gain <= 1.0,
             "GradientProtocol: gain must lie in (0, 1]");
  offsets_.assign(params_.n, 0.0);
  heard_round_.assign(params_.n, 0);
}

void GradientProtocol::on_start(Context& ctx) {
  timer_ = ctx.set_timer_at_logical(params_.period * static_cast<double>(round_));
}

void GradientProtocol::on_message(Context& ctx, NodeId from, const Message& m) {
  const auto* g = std::get_if<GradientMsg>(&m);
  if (g == nullptr || from == ctx.self() || from >= params_.n) return;
  // Freshest estimate per neighbor wins. The offset is measured against our
  // clock at arrival; both clocks run within rho of real time, so it stays
  // accurate for the one round it is allowed to live.
  offsets_[from] = (g->value + params_.nominal_delay) - ctx.logical_now();
  heard_round_[from] = g->round;
}

void GradientProtocol::on_timer(Context& ctx, TimerId id) {
  if (id != timer_) return;
  // Average the fresh neighbor estimates with our own zero offset, correct,
  // THEN broadcast and re-arm — so the next fire time accounts for the
  // adjustment just applied.
  Duration sum = 0;
  std::uint32_t count = 1;  // self
  for (NodeId peer = 0; peer < params_.n; ++peer) {
    if (heard_round_[peer] + 1 >= round_ && heard_round_[peer] > 0) {
      sum += offsets_[peer];
      ++count;
    }
  }
  if (count > 1) {
    const Duration delta = params_.gain * (sum / static_cast<double>(count));
    ctx.logical().adjust_instant(ctx.hardware_now(), delta);
  }
  ctx.broadcast(Message(GradientMsg{round_, ctx.logical_now()}));
  ++round_;
  timer_ = ctx.set_timer_at_logical(params_.period * static_cast<double>(round_));
}

}  // namespace stclock::baselines
