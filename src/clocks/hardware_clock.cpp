#include "clocks/hardware_clock.h"

#include <algorithm>

#include "util/contracts.h"

namespace stclock {

HardwareClock::HardwareClock(LocalTime initial, double rate) {
  ST_REQUIRE(rate > 0, "HardwareClock: rate must be positive");
  segments_.push_back(Segment{0.0, initial, rate});
}

void HardwareClock::set_rate_from(RealTime from, double rate) {
  ST_REQUIRE(rate > 0, "HardwareClock: rate must be positive");
  const Segment& last = segments_.back();
  ST_REQUIRE(from >= last.real_start, "HardwareClock: segments must be appended in order");
  if (from == last.real_start) {
    segments_.back().rate = rate;
    return;
  }
  const LocalTime local = last.local_start + last.rate * (from - last.real_start);
  segments_.push_back(Segment{from, local, rate});
}

std::size_t HardwareClock::segment_at(RealTime t) const {
  ST_REQUIRE(t >= 0, "HardwareClock: negative real time");
  // Last segment with real_start <= t.
  auto it = std::upper_bound(segments_.begin(), segments_.end(), t,
                             [](RealTime v, const Segment& s) { return v < s.real_start; });
  ST_ASSERT(it != segments_.begin(), "HardwareClock: no segment covers t");
  return static_cast<std::size_t>(std::distance(segments_.begin(), it)) - 1;
}

LocalTime HardwareClock::read(RealTime t) const {
  const Segment& s = segments_[segment_at(t)];
  return s.local_start + s.rate * (t - s.real_start);
}

RealTime HardwareClock::when_reads(LocalTime local) const {
  ST_REQUIRE(local >= segments_.front().local_start,
             "HardwareClock: local time precedes clock start");
  // Last segment with local_start <= local; strict monotonicity makes the
  // answer unique.
  auto it = std::upper_bound(segments_.begin(), segments_.end(), local,
                             [](LocalTime v, const Segment& s) { return v < s.local_start; });
  const Segment& s = *std::prev(it);
  return s.real_start + (local - s.local_start) / s.rate;
}

double HardwareClock::rate_at(RealTime t) const { return segments_[segment_at(t)].rate; }

bool HardwareClock::respects_drift_bound(double rho) const {
  constexpr double kTol = 1e-12;
  const double lo = 1.0 / (1.0 + rho) - kTol;
  const double hi = (1.0 + rho) + kTol;
  return std::all_of(segments_.begin(), segments_.end(),
                     [&](const Segment& s) { return s.rate >= lo && s.rate <= hi; });
}

}  // namespace stclock
