// Experiment T2 — Resilience (tightness of the fault bounds).
//
// Claim: the authenticated algorithm tolerates exactly f <= ceil(n/2)-1
// Byzantine nodes and the signature-free algorithm exactly f <= ceil(n/3)-1.
// We sweep the number of *actually corrupted* nodes past the protocol's
// threshold: within the bound every metric holds; one past it, the adversary
// assembles quorums by itself and the unforgeability floor on the pulse rate
// collapses (min period far below the theoretical minimum).

#include "bench_common.h"

namespace stclock {
namespace {

void sweep(Table& table, SyncConfig cfg, std::uint32_t max_corrupt, std::uint64_t seed) {
  for (std::uint32_t corrupt = 0; corrupt <= max_corrupt; ++corrupt) {
    RunSpec spec = bench::adversarial_spec(cfg, /*horizon=*/20.0, seed);
    spec.delay = DelayKind::kZero;  // give the adversary its best case
    spec.corrupt_override = corrupt;
    if (corrupt == 0) spec.attack = AttackKind::kNone;
    const RunResult r = run_sync(spec);

    const bool within = corrupt <= cfg.f;
    const bool floor_holds = r.min_period >= r.bounds.min_period - 1e-9;
    const bool skew_ok = r.steady_skew <= r.bounds.precision;
    table.add_row({cfg.variant_name(), std::to_string(cfg.n), std::to_string(cfg.f),
                   std::to_string(corrupt), within ? "yes" : "NO",
                   Table::sci(r.steady_skew), Table::sci(r.bounds.precision),
                   Table::num(r.min_period, 4), Table::num(r.bounds.min_period, 4),
                   r.live ? "yes" : "NO", floor_holds && skew_ok ? "ok" : "BROKEN"});
  }
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("T2 — Resilience sweep",
                      "auth correct iff corrupt <= ceil(n/2)-1; echo iff <= ceil(n/3)-1");

  Table table({"variant", "n", "f(protocol)", "corrupt", "within-bound", "skew",
               "Dmax", "min-period", "period-floor", "live", "verdict"});

  SyncConfig auth = bench::default_auth_config();  // n=7, f=3
  sweep(table, auth, 4, opts.seed);                           // 4 > 3: breakdown row

  SyncConfig echo = bench::default_echo_config();  // n=7, f=2
  sweep(table, echo, 3, opts.seed);                           // 3 > 2: breakdown row

  stclock::bench::emit(table, opts);
  std::cout << "(spam-early attack, zero honest delays — the adversary's best case.\n"
               " Expect verdict=ok for corrupt <= f and BROKEN beyond: the pulse-rate\n"
               " floor collapses once the adversary can assemble quorums alone.)\n";
  return 0;
}
