// Tuning sweep for the PR 8 first-principles constants: the ladder queue's
// spawn threshold / bottom-overflow pair and the scale-metric threshold.
// Plain binary (like bench_scale), so it runs without google-benchmark.
//
//   bench_tune --queue      # spawn x overflow grid, churn + burst workloads
//   bench_tune --metric     # scenario wall time around kScaleMetricThreshold
//   bench_tune --sample     # Floyd vs Fisher-Yates sampled-broadcast crossover
//   bench_tune              # all three
//
// The --queue grid drives EventQueue::Tuning directly: each cell runs the
// BM_EventQueue_Churn workload (standing population 1024, one push per pop)
// plus a broadcast-burst workload (batches of 64 deliveries at t + delay,
// the shape a protocol round actually produces) and prints ns/op. The
// defaults (spawn 64, overflow 2048) are asserted to sit within 15% of the
// grid's best cell per workload — if a code change moves the optimum, this
// binary is the evidence trail for re-pinning the constants.
//
// The --metric sweep runs the same scenario below and above
// kScaleMetricThreshold (n = 4096) and prints wall seconds per cell: the
// policy's value is visible as the growth-rate change at the boundary.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "experiment/scenario.h"
#include "sim/broadcast_sample.h"
#include "sim/event_queue.h"
#include "sim/topology.h"
#include "util/rng.h"

namespace stclock {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// BM_EventQueue_Churn's workload: standing population, one mixed push per
/// pop at a random future time. Returns ns/op.
double run_churn(EventQueue::Tuning tuning, std::size_t ops) {
  EventQueue q(tuning);
  Rng rng(7);
  const auto msg = std::make_shared<const Message>(RoundMsg{1, {}});
  for (int i = 0; i < 1024; ++i) {
    if (i % 2 == 0) {
      q.push_timer(rng.next_double(), TimerEvent{0, static_cast<TimerId>(i + 1)});
    } else {
      q.push_delivery(rng.next_double(), DeliveryEvent{0, 1, msg, 0.0});
    }
  }
  const double begin = now_s();
  for (std::size_t i = 0; i < ops; ++i) {
    const Event e = q.pop();
    const RealTime t = e.time + rng.next_double();
    if (e.is_timer) {
      q.push_delivery(t, DeliveryEvent{0, 1, msg, e.time});
    } else {
      q.push_timer(t, TimerEvent{0, 1});
    }
  }
  return (now_s() - begin) * 1e9 / static_cast<double>(ops);
}

/// Broadcast-burst workload: the event shape a protocol round produces —
/// every pop of a "round timer" pushes a batch of 64 deliveries one delay
/// out plus the next round timer, so the population swings between lean and
/// burst-heavy instead of churning one-for-one.
double run_burst(EventQueue::Tuning tuning, std::size_t ops) {
  EventQueue q(tuning);
  Rng rng(11);
  const auto msg = std::make_shared<const Message>(RoundMsg{1, {}});
  q.push_timer(0.0, TimerEvent{0, 1});
  std::size_t done = 0;
  const double begin = now_s();
  while (done < ops) {
    const Event e = q.pop();
    ++done;
    if (e.is_timer) {
      for (int i = 0; i < 64; ++i) {
        q.push_delivery(e.time + 0.002 + 0.008 * rng.next_double(),
                        DeliveryEvent{0, 1, msg, e.time});
      }
      q.push_timer(e.time + 0.01, TimerEvent{0, 1});
    }
  }
  return (now_s() - begin) * 1e9 / static_cast<double>(ops);
}

struct Cell {
  std::size_t spawn = 0;
  std::size_t overflow = 0;
  double churn_ns = 0;
  double burst_ns = 0;
};

int sweep_queue(std::size_t ops) {
  const std::vector<std::size_t> spawns = {16, 32, 64, 128, 256};
  const std::vector<std::size_t> overflows = {512, 1024, 2048, 4096, 8192};
  std::printf("# ladder tuning grid, %zu ops per cell\n", ops);
  std::printf("%8s %10s %12s %12s\n", "spawn", "overflow", "churn_ns", "burst_ns");
  std::vector<Cell> cells;
  double best_churn = 0, best_burst = 0;
  for (const std::size_t spawn : spawns) {
    for (const std::size_t overflow : overflows) {
      Cell cell;
      cell.spawn = spawn;
      cell.overflow = overflow;
      cell.churn_ns = run_churn({spawn, overflow}, ops);
      cell.burst_ns = run_burst({spawn, overflow}, ops);
      std::printf("%8zu %10zu %12.1f %12.1f\n", spawn, overflow, cell.churn_ns,
                  cell.burst_ns);
      std::fflush(stdout);
      if (cells.empty() || cell.churn_ns < best_churn) best_churn = cell.churn_ns;
      if (cells.empty() || cell.burst_ns < best_burst) best_burst = cell.burst_ns;
      cells.push_back(cell);
    }
  }
  const EventQueue::Tuning defaults{};
  Cell def;
  for (const Cell& c : cells) {
    if (c.spawn == defaults.spawn_threshold &&
        c.overflow == defaults.bottom_overflow) {
      def = c;
    }
  }
  std::printf("# default (%zu, %zu): churn %.1f ns (best %.1f), burst %.1f ns (best %.1f)\n",
              defaults.spawn_threshold, defaults.bottom_overflow, def.churn_ns,
              best_churn, def.burst_ns, best_burst);
  // Generous slack: single-shot timings jitter, and the grid's floor is flat
  // around the optimum. A real regression (wrong constant after a refactor)
  // shows up as 2x+, not 15%.
  const bool ok =
      def.churn_ns <= best_churn * 1.5 && def.burst_ns <= best_burst * 1.5;
  if (!ok) {
    std::fprintf(stderr,
                 "bench_tune: default tuning is >50%% off the grid optimum — "
                 "re-pin kSpawnThreshold/kBottomOverflow\n");
  }
  return ok ? 0 : 1;
}

int sweep_metric() {
  // Same scenario either side of the threshold: the scale policy engages at
  // n >= kScaleMetricThreshold = 4096 (streaming envelope, skew decimation).
  // Wall time per node should DROP across the boundary; if the policy ever
  // regresses, n = 4096 costs more per node than n = 4095.
  const std::vector<std::uint32_t> sizes = {2048, 4095, 4096, 8192, 16384};
  std::printf("# metric-policy sweep around kScaleMetricThreshold = %u (ring, gradient)\n",
              experiment::kScaleMetricThreshold);
  std::printf("%8s %10s %12s %14s\n", "n", "policy", "wall_s", "wall_us_per_n");
  double below = 0, above = 0;
  for (const std::uint32_t n : sizes) {
    experiment::ScenarioSpec spec;
    spec.protocol = "gradient";
    spec.cfg.n = n;
    spec.cfg.f = 0;
    spec.cfg.rho = 1e-4;
    spec.cfg.tdel = 0.01;
    spec.cfg.period = 1.0;
    spec.cfg.initial_sync = 0.005;
    spec.topology = TopologyKind::kRing;
    spec.horizon = 3.0;
    const double begin = now_s();
    const experiment::ScenarioResult r = experiment::run_scenario(spec);
    (void)r;
    const double wall = now_s() - begin;
    const double per_n = wall * 1e6 / n;
    std::printf("%8u %10s %12.2f %14.2f\n", n,
                n >= experiment::kScaleMetricThreshold ? "scale" : "full", wall, per_n);
    std::fflush(stdout);
    if (n == 4095) below = per_n;
    if (n == 4096) above = per_n;
  }
  std::printf("# per-node cost at the boundary: %.2f us (full) -> %.2f us (scale)\n",
              below, above);
  // The policy exists to make per-node cost non-increasing across the
  // boundary; equality is fine (the win grows with n).
  if (above > below * 1.25) {
    std::fprintf(stderr,
                 "bench_tune: scale policy costs more per node than the full path "
                 "at its own threshold — retune kScaleMetricThreshold\n");
    return 1;
  }
  return 0;
}

int sweep_sample() {
  // The sampled-broadcast kernel choice (simulator.cpp sample_broadcast
  // targets): Floyd's probe set is O(m^2) in comparisons, partial
  // Fisher-Yates is O(m) flat but needs a mutable domain row. Evidence
  // trail for broadcast_sample::kFisherYatesMinSample = 64 — Floyd must
  // still win (or tie) below the constant and lose above it.
  constexpr std::uint32_t kDomain = 4096;
  constexpr std::size_t kReps = 20'000;
  std::vector<NodeId> row(kDomain);
  for (std::uint32_t i = 0; i < kDomain; ++i) row[i] = i;
  std::vector<NodeId> out;
  out.reserve(kDomain);

  std::printf("# sampled-broadcast kernel crossover, domain %u, %zu draws per cell\n",
              kDomain, kReps);
  std::printf("%8s %12s %12s %8s\n", "m", "floyd_ns", "fy_ns", "winner");
  double floyd_at_cut = 0, fy_at_cut = 0, floyd_past = 0, fy_past = 0;
  for (const std::uint32_t m : {4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    Rng floyd_rng(3);
    double begin = now_s();
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      out.clear();
      broadcast_sample::floyd_indices(floyd_rng, kDomain, m, out);
    }
    const double floyd_ns = (now_s() - begin) * 1e9 / static_cast<double>(kReps);

    Rng fy_rng(3);
    begin = now_s();
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      out.clear();
      broadcast_sample::fisher_yates(fy_rng, row.data(), kDomain, m, out);
    }
    const double fy_ns = (now_s() - begin) * 1e9 / static_cast<double>(kReps);

    std::printf("%8u %12.1f %12.1f %8s\n", m, floyd_ns, fy_ns,
                floyd_ns <= fy_ns ? "floyd" : "fy");
    std::fflush(stdout);
    if (m == broadcast_sample::kFisherYatesMinSample) {
      floyd_at_cut = floyd_ns;
      fy_at_cut = fy_ns;
    }
    if (m == 512) {
      floyd_past = floyd_ns;
      fy_past = fy_ns;
    }
  }
  // The constant is well-placed if FY is at worst modestly slower right at
  // the cut (both kernels are sub-microsecond there; generous 2x slack for
  // timer jitter) and clearly ahead deep in its regime.
  const bool ok = fy_at_cut <= floyd_at_cut * 2.0 && fy_past < floyd_past;
  if (!ok) {
    std::fprintf(stderr,
                 "bench_tune: Floyd/Fisher-Yates crossover moved away from "
                 "kFisherYatesMinSample = %u — re-pin it\n",
                 broadcast_sample::kFisherYatesMinSample);
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  using namespace stclock;
  bool queue = false, metric = false, sample = false;
  std::size_t ops = 2'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--queue") {
      queue = true;
    } else if (arg == "--metric") {
      metric = true;
    } else if (arg == "--sample") {
      sample = true;
    } else if (arg == "--ops" && i + 1 < argc) {
      ops = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: bench_tune [--queue] [--metric] [--sample] [--ops N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "bench_tune: unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (!queue && !metric && !sample) queue = metric = sample = true;
  int rc = 0;
  if (queue) rc |= sweep_queue(ops);
  if (metric) rc |= sweep_metric();
  if (sample) rc |= sweep_sample();
  return rc;
}
