#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/lundelius_welch.h"
#include "core/runner.h"
#include "experiment/registry.h"
#include "experiment/sinks.h"
#include "experiment/sweep.h"

namespace stclock::experiment {
namespace {

ScenarioSpec small_spec(const std::string& protocol) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.cfg.n = 5;
  spec.cfg.f = 1;
  spec.cfg.rho = 1e-4;
  spec.cfg.tdel = 0.01;
  spec.cfg.period = 1.0;
  spec.cfg.initial_sync = 0.005;
  spec.seed = 3;
  spec.horizon = 8.0;
  spec.drift = DriftKind::kRandomConstant;
  spec.delay = DelayKind::kUniform;
  return spec;
}

TEST(Registry, ListsEveryBuiltInProtocol) {
  const std::vector<std::string> names = ProtocolRegistry::global().names();
  for (const char* expected :
       {"auth", "echo", "lundelius_welch", "interactive_convergence", "gradient", "hssd",
        "leader", "leader_corrupt", "unsynchronized"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing protocol: " << expected;
  }
}

TEST(Registry, UnknownProtocolThrowsWithKnownNames) {
  ScenarioSpec spec = small_spec("no_such_protocol");
  try {
    (void)run_scenario(spec);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    // The error must help: it lists the registered names.
    EXPECT_NE(std::string(e.what()).find("auth"), std::string::npos);
  }
}

TEST(Registry, EveryRegisteredProtocolInstantiatesAndRuns) {
  for (const std::string& name : ProtocolRegistry::global().names()) {
    SCOPED_TRACE(name);
    const ScenarioResult r = run_scenario(small_spec(name));
    EXPECT_EQ(r.protocol, name);
    EXPECT_FALSE(r.skew_series.empty());
    EXPECT_GE(r.max_skew, 0.0);
    // Every protocol except the free-running control exchanges messages.
    if (name == "unsynchronized") {
      EXPECT_EQ(r.messages_sent, 0u);
    } else {
      EXPECT_GT(r.messages_sent, 0u);
    }
    // Synchronizing protocols must beat free-running drift; the skew series
    // must cover (almost) the whole horizon for everyone.
    EXPECT_GT(r.skew_series.back().first, 7.0);
  }
}

TEST(Registry, SyncEntriesDeriveBoundsAndPulse) {
  for (const std::string& name : {std::string("auth"), std::string("echo")}) {
    SCOPED_TRACE(name);
    const ScenarioResult r = run_scenario(small_spec(name));
    EXPECT_GT(r.bounds.precision, 0.0);
    EXPECT_GE(r.min_pulses, 2u);
    EXPECT_TRUE(r.live);
  }
}

TEST(ShimEquivalence, RunSyncMatchesScenarioEngine) {
  RunSpec legacy;
  legacy.cfg.n = 7;
  legacy.cfg.f = 3;
  legacy.cfg.variant = Variant::kAuthenticated;
  legacy.seed = 11;
  legacy.horizon = 12.0;
  legacy.drift = DriftKind::kRandomWalk;
  legacy.delay = DelayKind::kSplit;
  legacy.attack = AttackKind::kSpamEarly;
  const RunResult via_shim = run_sync(legacy);

  ScenarioSpec scenario;
  scenario.protocol = "auth";
  scenario.cfg = legacy.cfg;
  scenario.seed = legacy.seed;
  scenario.horizon = legacy.horizon;
  scenario.drift = legacy.drift;
  scenario.delay = legacy.delay;
  scenario.attack = legacy.attack;
  const ScenarioResult direct = run_scenario(scenario);

  EXPECT_EQ(via_shim.max_skew, direct.max_skew);
  EXPECT_EQ(via_shim.steady_skew, direct.steady_skew);
  EXPECT_EQ(via_shim.pulse_spread, direct.pulse_spread);
  EXPECT_EQ(via_shim.messages_sent, direct.messages_sent);
  EXPECT_EQ(via_shim.bytes_sent, direct.bytes_sent);
  EXPECT_EQ(via_shim.rounds_completed, direct.rounds_completed);
  EXPECT_EQ(via_shim.skew_series.size(), direct.skew_series.size());
}

TEST(ShimEquivalence, RunBaselineMatchesScenarioEngine) {
  baselines::BaselineSpec legacy;
  legacy.n = 7;
  legacy.f = 2;
  legacy.rho = 1e-3;
  legacy.seed = 5;
  legacy.horizon = 10.0;
  legacy.drift = DriftKind::kExtremal;
  legacy.delay = DelayKind::kHalf;
  legacy.attack = AttackKind::kLwPull;
  const baselines::BaselineResult via_shim = baselines::run_lundelius_welch(legacy);

  const ScenarioResult direct =
      run_scenario(baselines::to_scenario(legacy, "lundelius_welch"));
  EXPECT_EQ(via_shim.max_skew, direct.max_skew);
  EXPECT_EQ(via_shim.steady_skew, direct.steady_skew);
  EXPECT_EQ(via_shim.messages_sent, direct.messages_sent);
  EXPECT_EQ(via_shim.bytes_sent, direct.bytes_sent);
}

TEST(SweepGrid, RowMajorProductWithLabels) {
  SweepGrid grid(small_spec("auth"));
  grid.protocols({"auth", "unsynchronized"});
  grid.axis("delay", {{"zero", [](ScenarioSpec& s) { s.delay = DelayKind::kZero; }},
                      {"max", [](ScenarioSpec& s) { s.delay = DelayKind::kMax; }}});
  const std::vector<SweepCell> cells = grid.cells();
  ASSERT_EQ(cells.size(), 4u);
  // First axis outermost.
  EXPECT_EQ(cells[0].labels[0].second, "auth");
  EXPECT_EQ(cells[0].labels[1].second, "zero");
  EXPECT_EQ(cells[1].labels[1].second, "max");
  EXPECT_EQ(cells[2].labels[0].second, "unsynchronized");
  EXPECT_EQ(cells[3].spec.protocol, "unsynchronized");
  EXPECT_EQ(cells[3].spec.delay, DelayKind::kMax);
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].index, i);
}

TEST(SweepGrid, PerCellReseedingIsDeterministicAndDistinct) {
  SweepGrid grid(small_spec("auth"));
  grid.protocols({"auth", "unsynchronized"});
  grid.axis("delay", {{"zero", [](ScenarioSpec& s) { s.delay = DelayKind::kZero; }},
                      {"max", [](ScenarioSpec& s) { s.delay = DelayKind::kMax; }}});
  grid.reseed_per_cell();
  const std::vector<SweepCell> once = grid.cells();
  const std::vector<SweepCell> twice = grid.cells();
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i].spec.seed, twice[i].spec.seed);
    EXPECT_EQ(once[i].spec.seed, derive_cell_seed(3, once[i].spec.protocol, i));
    for (std::size_t j = i + 1; j < once.size(); ++j) {
      EXPECT_NE(once[i].spec.seed, once[j].spec.seed);
    }
  }
}

TEST(SweepGrid, CellSeedsDistinctAcrossEveryAxisIncludingProtocol) {
  // Regression for a latent seed-collision risk: the per-cell seed used to
  // depend only on (base seed, cell index), so two grids differing only in a
  // protocol axis value fed every protocol an identical random stream. An
  // 8x8 grid over all registered protocols must produce pairwise-distinct
  // seeds, and two single-protocol grids must produce disjoint seed sets.
  const std::vector<std::string> protocols = ProtocolRegistry::global().names();
  ASSERT_GE(protocols.size(), 8u);

  SweepGrid grid(small_spec("auth"));
  grid.protocols(std::vector<std::string>(protocols.begin(), protocols.begin() + 8));
  std::vector<SweepGrid::Value> reps;
  for (int r = 0; r < 8; ++r) reps.emplace_back("r" + std::to_string(r), nullptr);
  grid.axis("rep", std::move(reps));
  grid.reseed_per_cell();

  const std::vector<SweepCell> cells = grid.cells();
  ASSERT_EQ(cells.size(), 64u);
  std::set<std::uint64_t> seeds;
  for (const SweepCell& cell : cells) seeds.insert(cell.spec.seed);
  EXPECT_EQ(seeds.size(), cells.size());

  // Same grid shape, same base seed, different base protocol: no overlap.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_NE(derive_cell_seed(3, "auth", i), derive_cell_seed(3, "echo", i))
        << "cells differing only in protocol collided at index " << i;
  }
}

TEST(SweepRunner, GridResultsIdenticalAcrossThreadCounts) {
  // The acceptance bar of the redesign: a 2x2 grid, same seeds, must produce
  // bitwise-identical metrics whether run serially or on 4 workers.
  SweepGrid grid(small_spec("auth"));
  grid.protocols({"auth", "lundelius_welch"});
  grid.axis("delay", {{"uniform", [](ScenarioSpec& s) { s.delay = DelayKind::kUniform; }},
                      {"split", [](ScenarioSpec& s) { s.delay = DelayKind::kSplit; }}});
  const std::vector<SweepCell> cells = grid.cells();
  ASSERT_EQ(cells.size(), 4u);

  const std::vector<ScenarioResult> serial = SweepRunner(1).run(cells);
  const std::vector<ScenarioResult> parallel = SweepRunner(4).run(cells);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].protocol, parallel[i].protocol);
    EXPECT_EQ(serial[i].max_skew, parallel[i].max_skew);
    EXPECT_EQ(serial[i].steady_skew, parallel[i].steady_skew);
    EXPECT_EQ(serial[i].messages_sent, parallel[i].messages_sent);
    EXPECT_EQ(serial[i].bytes_sent, parallel[i].bytes_sent);
    EXPECT_EQ(serial[i].skew_series, parallel[i].skew_series);
  }
}

TEST(SweepRunner, PropagatesWorkerExceptions) {
  std::vector<ScenarioSpec> specs(3, small_spec("auth"));
  specs[1].protocol = "no_such_protocol";
  EXPECT_THROW((void)SweepRunner(3).run(specs), std::out_of_range);
}

TEST(Sinks, CsvHasHeaderAndOneRowPerCell) {
  SweepGrid grid(small_spec("auth"));
  grid.protocols({"auth", "unsynchronized"});
  const std::vector<SweepCell> cells = grid.cells();
  const std::vector<ScenarioResult> results = SweepRunner(2).run(cells);

  std::ostringstream os;
  write_csv(os, cells, results);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("cell,protocol"), std::string::npos);
  EXPECT_NE(csv.find("max_skew"), std::string::npos);
  EXPECT_NE(csv.find("messages_sent"), std::string::npos);
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 1 + cells.size());
}

TEST(Sinks, JsonContainsLabelsSpecAndResult) {
  SweepGrid grid(small_spec("auth"));
  grid.protocols({"auth"});
  const std::vector<SweepCell> cells = grid.cells();
  const std::vector<ScenarioResult> results = SweepRunner(1).run(cells);

  std::ostringstream os;
  write_json(os, cells, results);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"labels\": {\"protocol\": \"auth\"}"), std::string::npos);
  EXPECT_NE(json.find("\"max_skew\": "), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 3"), std::string::npos);
}

TEST(Engine, BaselineModeRejectsJoiners) {
  ScenarioSpec spec = small_spec("lundelius_welch");
  spec.joiners = 1;
  EXPECT_THROW((void)run_scenario(spec), std::logic_error);
}

TEST(Engine, ResolvedSpecAppliesRegistryPrepare) {
  ScenarioSpec spec = small_spec("leader_corrupt");
  spec.attack = AttackKind::kNone;
  spec.cfg.f = 0;
  const ScenarioSpec resolved = resolved_spec(spec);
  EXPECT_EQ(resolved.attack, AttackKind::kLeaderLie);
  EXPECT_EQ(resolved.cfg.f, 1u);
  // Unknown protocols pass through untouched (run_scenario still throws).
  EXPECT_EQ(resolved_spec(small_spec("no_such_protocol")).protocol, "no_such_protocol");
}

TEST(Sinks, DumpTheSpecThatActuallyRan) {
  // The registry's prepare hook forces the leader-lie attack; the dump must
  // record that, not the pre-resolution request (attack = none).
  SweepGrid grid(small_spec("leader_corrupt"));
  const std::vector<SweepCell> cells = grid.cells();
  const std::vector<ScenarioResult> results = SweepRunner(1).run(cells);
  std::ostringstream os;
  write_json(os, cells, results);
  EXPECT_NE(os.str().find("\"attack\": \"leader-lie\""), std::string::npos) << os.str();
}

TEST(Engine, LeaderCorruptForcesTheLie) {
  // The registry's prepare hook must install the leader-lie attack even when
  // the caller asked for no attack at all.
  ScenarioSpec spec = small_spec("leader_corrupt");
  spec.attack = AttackKind::kNone;
  const ScenarioResult r = run_scenario(spec);
  // Followers slave to a clock running 10% fast: accuracy is destroyed.
  EXPECT_GT(r.envelope.max_rate, 1.05);
}

}  // namespace
}  // namespace stclock::experiment
