#include <gtest/gtest.h>

#include "util/stats.h"

namespace stclock {
namespace {

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(Accumulator, SingleSample) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, EmptyThrows) {
  Accumulator acc;
  EXPECT_THROW((void)acc.mean(), std::logic_error);
  EXPECT_THROW((void)acc.min(), std::logic_error);
}

TEST(Accumulator, NumericallyStableMean) {
  Accumulator acc;
  for (int i = 0; i < 1'000'000; ++i) acc.add(1e9 + (i % 2));
  EXPECT_NEAR(acc.mean(), 1e9 + 0.5, 1e-3);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(Samples, PercentileSingleton) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(Samples, SortingIsLazyButCorrectAfterMoreAdds) {
  Samples s;
  s.add(3);
  s.add(1);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // add after a sorted query
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Samples, OutOfRangePercentileThrows) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1), std::logic_error);
  EXPECT_THROW((void)s.percentile(101), std::logic_error);
}

TEST(LinearFitTest, ExactLine) {
  std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y{1, 3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
}

TEST(LinearFitTest, NoisySlopeRecovered) {
  std::vector<double> x, y;
  for (int i = 0; i < 1000; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + ((i % 3) - 1) * 0.01);  // slope 0.5 + bounded noise
  }
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 1e-4);
}

TEST(LinearFitTest, DegenerateInputsThrow) {
  EXPECT_THROW((void)fit_line({1.0}, {1.0}), std::logic_error);           // too few
  EXPECT_THROW((void)fit_line({1, 2}, {1.0}), std::logic_error);          // mismatch
  EXPECT_THROW((void)fit_line({2, 2, 2}, {1, 2, 3}), std::logic_error);   // flat x
}

}  // namespace
}  // namespace stclock
