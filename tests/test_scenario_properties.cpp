#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "experiment/registry.h"
#include "scenfile/scenfile.h"

/// Property-based invariant suite over randomly drawn valid ScenarioSpecs
/// (bounded n <= 12, short horizons), across every protocol in the registry:
///
///   - worst skew is non-negative and bounds steady skew,
///   - the simulator dispatched events (the engine actually ran),
///   - for the Srikanth-Toueg variants with f within the resilience bound,
///     the measured skew sits inside the paper's theoretical envelope,
///   - spec -> JSON -> spec -> run_scenario reproduces the ScenarioResult
///     bit for bit (round-trip determinism of the scenario-file layer).
///
/// Draws are seeded deterministically, so failures reproduce.
namespace stclock::experiment {
namespace {

struct Draw {
  ScenarioSpec spec;
  bool sync = false;  // auth / echo: assert the theoretical envelope too
};

Draw draw_spec(const std::string& protocol, std::uint64_t salt) {
  std::mt19937_64 rng(0x5ce9a410ull ^ salt);
  const auto pick_u32 = [&rng](std::uint32_t lo, std::uint32_t hi) {
    return static_cast<std::uint32_t>(lo + rng() % (hi - lo + 1));
  };

  Draw draw;
  ScenarioSpec& spec = draw.spec;
  spec.protocol = protocol;
  spec.cfg.rho = 1e-4;
  spec.cfg.tdel = 0.01;
  spec.cfg.period = 1.0;
  spec.cfg.initial_sync = 0.005;
  spec.seed = rng();
  spec.horizon = 6.0;

  const DriftKind drifts[] = {DriftKind::kNone, DriftKind::kRandomConstant,
                              DriftKind::kRandomWalk, DriftKind::kExtremal};
  const DelayKind delays[] = {DelayKind::kZero,    DelayKind::kHalf,
                              DelayKind::kMax,     DelayKind::kUniform,
                              DelayKind::kSplit,   DelayKind::kAlternating};
  spec.drift = drifts[rng() % std::size(drifts)];
  spec.delay = delays[rng() % std::size(delays)];

  if (protocol == "auth" || protocol == "echo") {
    draw.sync = true;
    const bool echo = protocol == "echo";
    spec.cfg.n = pick_u32(echo ? 4 : 3, 12);
    // f within the variant's resilience bound (the property being tested).
    const std::uint32_t f_max = echo ? (spec.cfg.n - 1) / 3 : (spec.cfg.n - 1) / 2;
    spec.cfg.f = pick_u32(0, f_max);
    const AttackKind auth_attacks[] = {AttackKind::kNone, AttackKind::kCrash,
                                       AttackKind::kSpamEarly, AttackKind::kEquivocate};
    const AttackKind echo_attacks[] = {AttackKind::kNone, AttackKind::kCrash,
                                       AttackKind::kSpamEarly};
    spec.attack = echo ? echo_attacks[rng() % std::size(echo_attacks)]
                       : auth_attacks[rng() % std::size(auth_attacks)];
  } else {
    // Baselines: modest fault budgets, matched or benign attacks only.
    spec.cfg.n = pick_u32(4, 12);
    spec.cfg.f = pick_u32(0, (spec.cfg.n - 1) / 3);
    const AttackKind attacks[] = {AttackKind::kNone, AttackKind::kCrash};
    spec.attack = attacks[rng() % std::size(attacks)];
  }
  return draw;
}

void assert_invariants(const Draw& draw, const ScenarioResult& r) {
  EXPECT_GE(r.max_skew, 0.0);
  EXPECT_GE(r.steady_skew, 0.0);
  EXPECT_LE(r.steady_skew, r.max_skew);
  EXPECT_GT(r.events_dispatched, 0u);
  EXPECT_FALSE(r.skew_series.empty());
  if (draw.sync) {
    EXPECT_GT(r.bounds.precision, 0.0);
    EXPECT_TRUE(r.live);
    EXPECT_LE(r.steady_skew, r.bounds.precision);
    EXPECT_LE(r.pulse_spread, r.bounds.pulse_spread + 1e-9);
  }
}

void assert_bit_identical(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.max_skew, b.max_skew);
  EXPECT_EQ(a.steady_skew, b.steady_skew);
  EXPECT_EQ(a.local_skew, b.local_skew);
  EXPECT_EQ(a.steady_local_skew, b.steady_local_skew);
  EXPECT_EQ(a.pulse_spread, b.pulse_spread);
  EXPECT_EQ(a.min_period, b.min_period);
  EXPECT_EQ(a.max_period, b.max_period);
  EXPECT_EQ(a.min_pulses, b.min_pulses);
  EXPECT_EQ(a.max_pulses, b.max_pulses);
  EXPECT_EQ(a.live, b.live);
  EXPECT_EQ(a.envelope.min_rate, b.envelope.min_rate);
  EXPECT_EQ(a.envelope.max_rate, b.envelope.max_rate);
  EXPECT_EQ(a.join_latency, b.join_latency);
  EXPECT_EQ(a.joiners_integrated, b.joiners_integrated);
  EXPECT_EQ(a.rejoin_latency, b.rejoin_latency);
  EXPECT_EQ(a.churned_rejoined, b.churned_rejoined);
  EXPECT_EQ(a.corruption_events, b.corruption_events);
  EXPECT_EQ(a.nodes_corrupted, b.nodes_corrupted);
  EXPECT_EQ(a.stabilized, b.stabilized);
  EXPECT_EQ(a.stabilization_time, b.stabilization_time);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.rounds_completed, b.rounds_completed);
  EXPECT_EQ(a.skew_series, b.skew_series);
}

TEST(ScenarioProperties, InvariantsHoldForRandomSpecsAcrossEveryProtocol) {
  for (const std::string& protocol : ProtocolRegistry::global().names()) {
    for (std::uint64_t salt = 0; salt < 3; ++salt) {
      const Draw draw = draw_spec(protocol, salt);
      SCOPED_TRACE(protocol + " salt " + std::to_string(salt) + " n=" +
                   std::to_string(draw.spec.cfg.n) + " f=" +
                   std::to_string(draw.spec.cfg.f) + " seed=" +
                   std::to_string(draw.spec.seed));
      assert_invariants(draw, run_scenario(draw.spec));
    }
  }
}

TEST(ScenarioProperties, JsonRoundTripReproducesResultsBitForBit) {
  // spec -> JSON -> spec -> run must equal running the original spec: the
  // scenario-file layer may not perturb a single bit of any metric.
  for (const std::string& protocol : ProtocolRegistry::global().names()) {
    const Draw draw = draw_spec(protocol, 7);
    SCOPED_TRACE(protocol);
    const ScenarioResult direct = run_scenario(draw.spec);
    const ScenarioResult via_json =
        run_scenario(scenfile::parse_spec(scenfile::spec_to_json(draw.spec)));
    assert_bit_identical(direct, via_json);
  }
}

TEST(ScenarioProperties, ExplicitCompleteTopologyIsBitIdenticalToLegacySpecs) {
  // The topology refactor's acceptance bar, across the whole registry: a
  // spec that never mentions a topology (the legacy shape) and one that
  // spells out "topology": "complete" must produce identical results bit
  // for bit — and on a complete graph the new local-skew metric must
  // degenerate to the global spread exactly.
  for (const std::string& protocol : ProtocolRegistry::global().names()) {
    const Draw draw = draw_spec(protocol, 17);
    SCOPED_TRACE(protocol);
    const ScenarioResult legacy = run_scenario(draw.spec);

    ScenarioSpec explicit_spec = draw.spec;
    explicit_spec.topology = TopologyKind::kComplete;
    const std::string json = scenfile::spec_to_json(explicit_spec);
    EXPECT_NE(json.find("\"topology\": \"complete\""), std::string::npos);
    const ScenarioResult explicit_complete = run_scenario(scenfile::parse_spec(json));

    assert_bit_identical(legacy, explicit_complete);
    EXPECT_EQ(legacy.local_skew, legacy.max_skew);
    EXPECT_EQ(legacy.steady_local_skew, legacy.steady_skew);
  }
}

TEST(ScenarioProperties, SparseTopologiesKeepInvariantsAndRoundTrip) {
  // Ring / torus / star / gnp scenarios run, report a local skew bounded by
  // the global spread, and round-trip through the scenario-file layer bit
  // for bit (the paper's envelope claims are complete-graph-only, so only
  // the generic invariants apply).
  const TopologyKind kinds[] = {TopologyKind::kRing, TopologyKind::kTorus,
                                TopologyKind::kStar, TopologyKind::kGnp};
  for (const char* protocol : {"auth", "echo"}) {
    for (const TopologyKind kind : kinds) {
      Draw draw = draw_spec(protocol, 19);
      ScenarioSpec& spec = draw.spec;
      spec.cfg.n = 9;
      spec.cfg.f = 0;
      spec.attack = AttackKind::kNone;
      // Pair the link-keyed delay policy with the graphs it was built for:
      // every directed link gets its own stable hashed latency.
      spec.delay = DelayKind::kPerLink;
      spec.topology = kind;
      spec.gnp_p = 0.8;
      spec.topology_seed = 3;
      spec.horizon = 6.0;
      SCOPED_TRACE(std::string(protocol) + " on " + topology_kind_name(kind));

      const ScenarioResult r = run_scenario(spec);
      EXPECT_GE(r.local_skew, 0.0);
      EXPECT_LE(r.local_skew, r.max_skew);
      EXPECT_LE(r.steady_local_skew, r.local_skew);
      EXPECT_GT(r.events_dispatched, 0u);

      const ScenarioResult via_json =
          run_scenario(scenfile::parse_spec(scenfile::spec_to_json(spec)));
      assert_bit_identical(r, via_json);
    }
  }
}

TEST(ScenarioProperties, InertTopologyScheduleIsBitIdenticalToStaticTopology) {
  // The dynamic-topology acceptance bar, across the whole registry: a spec
  // whose schedule compiles but never fires inside the horizon (its only
  // event sits far past it) must reproduce the equivalent static-topology
  // run bit for bit — the epoch machinery is installed, armed, and charged
  // for, yet perturbs nothing. A zero-event schedule is the same single-
  // epoch compilation (pinned at the simulator level in
  // test_topology_schedule.cpp); this exercises it through every protocol.
  for (const std::string& protocol : ProtocolRegistry::global().names()) {
    Draw draw = draw_spec(protocol, 23);
    ScenarioSpec& spec = draw.spec;
    spec.cfg.n = 8;
    spec.cfg.f = protocol == "leader_corrupt" ? 1 : 0;
    spec.attack = AttackKind::kNone;
    spec.topology = TopologyKind::kRing;
    spec.horizon = 5.0;
    SCOPED_TRACE(protocol);
    const ScenarioResult static_run = run_scenario(spec);

    ScenarioSpec dynamic = spec;
    dynamic.topology_events = {
        {TopologyEventSpec::Kind::kAddEdge, 1000.0, 0, 4, TopologyKind::kRing}};
    const ScenarioResult inert = run_scenario(dynamic);

    assert_bit_identical(static_run, inert);
    EXPECT_EQ(static_run.topology_epochs, 1u);
    EXPECT_EQ(inert.topology_epochs, 2u);  // compiled, just never reached
  }
}

TEST(ScenarioProperties, DynamicTopologySpecsKeepInvariantsAndRoundTrip) {
  // A mid-run edge failure/heal plus a whole-graph rewire: the run must
  // satisfy the generic invariants, re-run deterministically, and survive
  // the scenario-file layer bit for bit (topology_events serialization
  // included).
  for (const char* protocol : {"auth", "echo", "gradient"}) {
    Draw draw = draw_spec(protocol, 29);
    ScenarioSpec& spec = draw.spec;
    spec.cfg.n = 8;
    spec.cfg.f = 0;
    spec.attack = AttackKind::kNone;
    spec.topology = TopologyKind::kRing;
    spec.topology_events = {
        {TopologyEventSpec::Kind::kRemoveEdge, 1.5, 0, 1, TopologyKind::kRing},
        {TopologyEventSpec::Kind::kAddEdge, 1.5, 2, 7, TopologyKind::kRing},
        {TopologyEventSpec::Kind::kAddEdge, 3.0, 0, 1, TopologyKind::kRing},
        {TopologyEventSpec::Kind::kSetGraph, 4.5, 0, 0, TopologyKind::kStar},
    };
    spec.horizon = 6.0;
    SCOPED_TRACE(protocol);

    const ScenarioResult r = run_scenario(spec);
    EXPECT_EQ(r.topology_epochs, 4u);
    EXPECT_GE(r.local_skew, 0.0);
    EXPECT_LE(r.local_skew, r.max_skew);
    EXPECT_GT(r.events_dispatched, 0u);

    const ScenarioResult again = run_scenario(spec);
    assert_bit_identical(r, again);

    const std::string json = scenfile::spec_to_json(spec);
    EXPECT_NE(json.find("\"topology_events\": [{\"at\": 1.5"), std::string::npos);
    const ScenarioResult via_json = run_scenario(scenfile::parse_spec(json));
    assert_bit_identical(r, via_json);
  }
}

TEST(ScenarioProperties, ChurnSpecsKeepInvariantsAndRoundTrip) {
  for (const char* protocol : {"auth", "echo"}) {
    Draw draw = draw_spec(protocol, 11);
    ScenarioSpec& spec = draw.spec;
    // Leave enough honest nodes up: churn one node out of a fleet that keeps
    // quorum through the window (f counts both corrupt and absent nodes).
    spec.cfg.n = 7;
    spec.cfg.f = 2;
    spec.attack = AttackKind::kCrash;
    spec.churn_nodes = 1;
    spec.churn_leave = 2.0;
    spec.churn_rejoin = 3.5;
    spec.horizon = 8.0;
    SCOPED_TRACE(protocol);

    const ScenarioResult r = run_scenario(spec);
    assert_invariants(draw, r);
    EXPECT_TRUE(r.churned_rejoined);
    EXPECT_GE(r.rejoin_latency, 0.0);

    const ScenarioResult via_json =
        run_scenario(scenfile::parse_spec(scenfile::spec_to_json(spec)));
    assert_bit_identical(r, via_json);
  }
}

TEST(ScenarioProperties, PartitionSpecsDropTrafficDeterministically) {
  Draw draw = draw_spec("auth", 13);
  ScenarioSpec& spec = draw.spec;
  spec.cfg.n = 7;
  spec.cfg.f = 2;
  spec.attack = AttackKind::kNone;
  spec.delay = DelayKind::kUniform;
  spec.partition_group = 3;
  spec.partition_start = 2.0;
  spec.partition_end = 4.0;
  spec.horizon = 8.0;

  const ScenarioResult r = run_scenario(spec);
  // A partition suspends the paper's delivery model: liveness and the skew
  // envelope are off the table for the cut-off window, but the run must
  // still be meaningful and bit-reproducible.
  EXPECT_GE(r.max_skew, 0.0);
  EXPECT_GT(r.events_dispatched, 0u);
  EXPECT_GT(r.messages_dropped, 0u);

  const ScenarioResult again = run_scenario(spec);
  assert_bit_identical(r, again);
  const ScenarioResult via_json =
      run_scenario(scenfile::parse_spec(scenfile::spec_to_json(spec)));
  assert_bit_identical(r, via_json);
}

}  // namespace
}  // namespace stclock::experiment
