#include "baselines/leader_sync.h"

#include "util/contracts.h"

namespace stclock::baselines {

LeaderProtocol::LeaderProtocol(NodeId leader, Duration period, Duration nominal_delay)
    : leader_(leader), period_(period), nominal_delay_(nominal_delay) {
  ST_REQUIRE(period > 0, "LeaderProtocol: period must be positive");
}

void LeaderProtocol::on_start(Context& ctx) {
  if (ctx.self() == leader_) {
    timer_ = ctx.set_timer_at_logical(period_ * static_cast<double>(round_));
  }
}

void LeaderProtocol::on_message(Context& ctx, NodeId from, const Message& m) {
  const auto* lt = std::get_if<LeaderTimeMsg>(&m);
  if (lt == nullptr || from != leader_ || ctx.self() == leader_) return;
  // Slave unconditionally to the leader's clock — the whole point of the
  // strawman: there is no quorum between the leader and our clock.
  const Duration delta = (lt->value + nominal_delay_) - ctx.logical_now();
  ctx.logical().adjust_instant(ctx.hardware_now(), delta);
}

void LeaderProtocol::on_timer(Context& ctx, TimerId id) {
  if (id != timer_) return;
  ctx.broadcast(Message(LeaderTimeMsg{round_, ctx.logical_now()}));
  ++round_;
  timer_ = ctx.set_timer_at_logical(period_ * static_cast<double>(round_));
}

BaselineResult run_leader_sync(const BaselineSpec& spec, bool corrupt_leader) {
  BaselineSpec adjusted = spec;
  // run_baseline corrupts the highest ids, so the leader is the last node
  // when it is to be corrupted, and node 0 otherwise.
  const NodeId leader = corrupt_leader ? spec.n - 1 : 0;
  adjusted.attack = corrupt_leader ? AttackKind::kLeaderLie : AttackKind::kNone;
  adjusted.f = corrupt_leader ? std::max<std::uint32_t>(spec.f, 1) : spec.f;

  const Duration nominal = spec.tdel / 2;
  const Duration period = spec.period;
  return run_baseline(adjusted, [leader, period, nominal](NodeId) {
    return std::make_unique<LeaderProtocol>(leader, period, nominal);
  });
}

}  // namespace stclock::baselines
