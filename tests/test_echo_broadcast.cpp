#include <gtest/gtest.h>

#include "broadcast/echo_broadcast.h"
#include "primitive_harness.h"

namespace stclock {
namespace {

using testing::PrimitiveHost;
using testing::identity_clocks;

constexpr Duration kTdel = 0.01;

struct EchoFixture {
  EchoFixture(std::uint32_t n, std::uint32_t f, double delay_fraction,
              std::uint64_t seed = 1)
      : registry(n, seed) {
    SimParams params;
    params.n = n;
    params.tdel = kTdel;
    params.seed = seed;
    sim = std::make_unique<Simulator>(params, identity_clocks(n),
                                      std::make_unique<FixedDelay>(delay_fraction),
                                      &registry);
    this->n = n;
    this->f = f;
  }

  PrimitiveHost* add_host(NodeId id, std::optional<LocalTime> ready_at, Round round = 1) {
    auto host = std::make_unique<PrimitiveHost>(std::make_unique<EchoBroadcast>(n, f), *sim,
                                                ready_at, round);
    PrimitiveHost* raw = host.get();
    sim->set_process(id, std::move(host));
    hosts.push_back(raw);
    return raw;
  }

  crypto::KeyRegistry registry;
  std::unique_ptr<Simulator> sim;
  std::vector<PrimitiveHost*> hosts;
  std::uint32_t n = 0, f = 0;
};

TEST(EchoBroadcast, RejectsInsufficientN) {
  EXPECT_THROW(EchoBroadcast(3, 1), std::logic_error);  // needs n >= 3f+1
  EXPECT_NO_THROW(EchoBroadcast(4, 1));
  EXPECT_NO_THROW(EchoBroadcast(7, 2));
}

TEST(EchoBroadcast, CorrectnessAllHonestAcceptWithinTwoHops) {
  // n = 4, f = 1 with the faulty node crashed; all three honest are ready.
  EchoFixture fx(4, 1, 1.0);
  fx.add_host(0, 0.00);
  fx.add_host(1, 0.01);
  fx.add_host(2, 0.02);  // (f+1)-th correct init is at t = 0.01
  fx.sim->set_adversary({3}, nullptr);

  fx.sim->run_until(1.0);
  for (auto* host : fx.hosts) {
    ASSERT_TRUE(host->accepted(1));
    // Correctness: within D = 2*tdel of f+1 correct processes being ready.
    EXPECT_LE(host->accept_time(1), 0.01 + 2 * kTdel + 1e-12);
  }
}

TEST(EchoBroadcast, NoAcceptWithoutEnoughCorrectInits) {
  // Only one honest node is ever ready (f = 1 needs 2 inits to echo).
  EchoFixture fx(4, 1, 1.0);
  fx.add_host(0, 0.0);
  fx.add_host(1, std::nullopt);
  fx.add_host(2, std::nullopt);
  fx.sim->set_adversary({3}, nullptr);

  fx.sim->run_until(1.0);
  for (auto* host : fx.hosts) EXPECT_FALSE(host->accepted(1));
}

TEST(EchoBroadcast, UnforgeabilityCorruptInitAndEchoInsufficient) {
  // The corrupt node sends init AND echo to everyone; with no correct init
  // the echo threshold (f+1 = 2) is never met by correct nodes, and a single
  // corrupt echo is far below the 2f+1 = 3 acceptance threshold.
  EchoFixture fx(4, 1, 0.0);

  class Spammer final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      ctx.send_from_to_all(3, Message(InitMsg{1}), 0.0);
      ctx.send_from_to_all(3, Message(EchoMsg{1}), 0.0);
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  fx.add_host(0, std::nullopt);
  fx.add_host(1, std::nullopt);
  fx.add_host(2, std::nullopt);
  fx.sim->set_adversary({3}, std::make_unique<Spammer>());

  fx.sim->run_until(1.0);
  for (auto* host : fx.hosts) EXPECT_FALSE(host->accepted(1));
}

TEST(EchoBroadcast, CorruptAssistAcceleratesButRespectsAnchor) {
  // Corrupt init+echo at time 0, single honest ready at 0.5: acceptance
  // happens (corrupt init + honest init = 2 = f+1 -> everyone echoes; 3
  // honest echoes + 1 corrupt >= 3) but never before the honest broadcast.
  EchoFixture fx(4, 1, 0.0);

  class Spammer final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      ctx.send_from_to_all(3, Message(InitMsg{1}), 0.0);
      ctx.send_from_to_all(3, Message(EchoMsg{1}), 0.0);
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  fx.add_host(0, 0.5);
  fx.add_host(1, std::nullopt);
  fx.add_host(2, std::nullopt);
  fx.sim->set_adversary({3}, std::make_unique<Spammer>());

  fx.sim->run_until(1.0);
  for (auto* host : fx.hosts) {
    ASSERT_TRUE(host->accepted(1));
    EXPECT_GE(host->accept_time(1), 0.5);  // Unforgeability anchor
    EXPECT_LE(host->accept_time(1), 0.5 + 2 * kTdel + 1e-12);
  }
}

TEST(EchoBroadcast, EchoOnEchoQuorumPath) {
  // Send f+1 = 2 echoes (1 corrupt + 1 implied): verify that a node that
  // saw too few inits still echoes when it sees f+1 echoes from others.
  // Construction: n = 7, f = 2. Corrupt nodes 5, 6 send echoes to node 0
  // only. Honest nodes 1..4 are ready (init); node 0 is not ready and —
  // because inits to it are withheld via targeted corrupt behaviour — it
  // must still accept through the echo-quorum path.
  EchoFixture fx(7, 2, 1.0);

  class EchoFeeder final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      ctx.send_from(5, 0, Message(EchoMsg{1}), 0.0);
      ctx.send_from(6, 0, Message(EchoMsg{1}), 0.0);
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  fx.add_host(0, std::nullopt);
  fx.add_host(1, 0.0);
  fx.add_host(2, 0.0);
  fx.add_host(3, 0.0);
  fx.add_host(4, 0.0);
  fx.sim->set_adversary({5, 6}, std::make_unique<EchoFeeder>());

  fx.sim->run_until(1.0);
  for (auto* host : fx.hosts) EXPECT_TRUE(host->accepted(1));
}

TEST(EchoBroadcast, RelayBoundHolds) {
  // Whatever the corrupt nodes do, acceptance times of honest nodes must lie
  // within D = 2*tdel of each other.
  EchoFixture fx(4, 1, 1.0);

  class SplitAssist final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      // Help only node 0 toward echo/acceptance.
      ctx.send_from(3, 0, Message(InitMsg{1}), 0.0);
      ctx.send_from(3, 0, Message(EchoMsg{1}), 0.0);
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  fx.add_host(0, 0.0);
  fx.add_host(1, 0.05);
  fx.add_host(2, 0.10);
  fx.sim->set_adversary({3}, std::make_unique<SplitAssist>());

  fx.sim->run_until(1.0);
  RealTime lo = kTimeInfinity, hi = 0;
  for (auto* host : fx.hosts) {
    ASSERT_TRUE(host->accepted(1));
    lo = std::min(lo, host->accept_time(1));
    hi = std::max(hi, host->accept_time(1));
  }
  EXPECT_LE(hi - lo, 2 * kTdel + 1e-12);
}

TEST(EchoBroadcast, DuplicateInitsFromSameSenderCountOnce) {
  EchoFixture fx(4, 1, 0.0);

  class Duplicator final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      for (int i = 0; i < 10; ++i) ctx.send_from_to_all(3, Message(InitMsg{1}), 0.0);
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  fx.add_host(0, std::nullopt);
  fx.add_host(1, std::nullopt);
  fx.add_host(2, std::nullopt);
  fx.sim->set_adversary({3}, std::make_unique<Duplicator>());

  fx.sim->run_until(1.0);
  // 10 copies of one corrupt init are still just one distinct sender: below
  // the f+1 = 2 echo threshold.
  for (auto* host : fx.hosts) EXPECT_FALSE(host->accepted(1));
}

TEST(EchoBroadcast, RoundsAreIndependent) {
  // Init/echo for round 1 must not contribute to round 2.
  EchoFixture fx(4, 1, 0.0);

  class Round1Spammer final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      ctx.send_from_to_all(3, Message(InitMsg{1}), 0.0);
      ctx.send_from_to_all(3, Message(EchoMsg{1}), 0.0);
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  fx.add_host(0, 0.1, /*round=*/2);
  fx.add_host(1, std::nullopt, /*round=*/2);
  fx.add_host(2, std::nullopt, /*round=*/2);
  fx.sim->set_adversary({3}, std::make_unique<Round1Spammer>());

  fx.sim->run_until(1.0);
  // Round 2 has a single init (node 0): below every threshold.
  for (auto* host : fx.hosts) EXPECT_FALSE(host->accepted(2));
}

TEST(EchoBroadcast, FaultFreeFZero) {
  EchoFixture fx(4, 0, 1.0);
  fx.add_host(0, 0.1);
  fx.add_host(1, std::nullopt);
  fx.add_host(2, std::nullopt);
  fx.add_host(3, std::nullopt);

  fx.sim->run_until(1.0);
  // f = 0: one init suffices for echoes, one echo suffices for acceptance.
  for (auto* host : fx.hosts) {
    ASSERT_TRUE(host->accepted(1));
    EXPECT_LE(host->accept_time(1), 0.1 + 2 * kTdel + 1e-12);
  }
}

}  // namespace
}  // namespace stclock
