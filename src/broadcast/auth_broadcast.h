#pragma once

#include <map>
#include <set>
#include <vector>

#include "broadcast/primitive.h"

/// Authenticated broadcast primitive (the paper's signature-based variant).
///
/// Ready processes sign and broadcast (round k). A process *accepts* round k
/// once it holds valid (round k) signatures from f+1 distinct signers — at
/// least one of which is then guaranteed to be correct (unforgeability). On
/// acceptance it relays an accepting bundle of f+1 signatures to everyone,
/// which makes every correct process accept within one message delay
/// (relay). Requires n >= 2f+1 so that correct processes alone can assemble
/// a quorum (correctness/liveness).
///
/// Acceptance spread: D = tdel.
namespace stclock {

class AuthBroadcast final : public BroadcastPrimitive {
 public:
  /// `fanin` = peers each node hears on the broadcast fabric (0 = the full
  /// fleet): the acceptance quorum is scaled_threshold(f + 1, n, fanin), so
  /// the default keeps the paper's exact f + 1.
  AuthBroadcast(std::uint32_t n, std::uint32_t f, std::uint32_t fanin = 0);

  void broadcast_ready(Context& ctx, Round k) override;
  bool handle_message(Context& ctx, NodeId from, const Message& m) override;
  void forget_below(Round floor) override;
  [[nodiscard]] Duration accept_spread(Duration tdel) const override { return tdel; }
  /// Scrambles the round floor and wipes the signature buffers; a floor
  /// landing above the live round makes the node deaf to all traffic.
  void corrupt_state(Rng& rng) override;
  /// Clamps a scrambled floor back down so live rounds flow again.
  void stabilize(Round expected_floor) override;

  /// Quorum size: f + 1 on the full fleet, the fan-in-proportional share of
  /// it on a sparse fabric (see scaled_threshold in primitive.h).
  [[nodiscard]] std::uint32_t quorum() const { return quorum_; }

 private:
  struct RoundState {
    std::set<NodeId> signers;
    SigBundle sigs;
    /// Cached round_signing_payload(k), serialized at most once per round
    /// instead of once per incoming signature batch.
    Bytes payload;
    bool sent_own = false;
    bool accepted = false;
  };

  /// The canonical signing payload for round `k`, cached in `state`.
  static const Bytes& payload_for(Round k, RoundState& state);

  void add_signatures(Context& ctx, Round k, const SigBundle& sigs);
  void maybe_accept(Context& ctx, Round k, RoundState& state);

  std::uint32_t n_;
  std::uint32_t f_;
  std::uint32_t quorum_;
  Round floor_ = 0;
  std::map<Round, RoundState> rounds_;
};

}  // namespace stclock
