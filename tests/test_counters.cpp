#include <gtest/gtest.h>

#include "trace/counters.h"

namespace stclock {
namespace {

TEST(Counters, TracksTotalsAndKinds) {
  MessageCounters c;
  c.on_send("round", 45);
  c.on_send("round", 45);
  c.on_send("echo", 9);
  c.on_deliver("round");

  EXPECT_EQ(c.total_sent(), 3u);
  EXPECT_EQ(c.total_delivered(), 1u);
  EXPECT_EQ(c.total_bytes(), 99u);
  ASSERT_TRUE(c.by_kind().contains("round"));
  EXPECT_EQ(c.by_kind().at("round").messages, 2u);
  EXPECT_EQ(c.by_kind().at("round").bytes, 90u);
  EXPECT_EQ(c.by_kind().at("echo").messages, 1u);
}

TEST(Counters, ResetClearsEverything) {
  MessageCounters c;
  c.on_send("x", 1);
  c.on_deliver("x");
  c.reset();
  EXPECT_EQ(c.total_sent(), 0u);
  EXPECT_EQ(c.total_delivered(), 0u);
  EXPECT_EQ(c.total_bytes(), 0u);
  EXPECT_TRUE(c.by_kind().empty());
}

}  // namespace
}  // namespace stclock
