#include "sim/network.h"

#include "util/contracts.h"

namespace stclock {

FixedDelay::FixedDelay(double fraction) : fraction_(fraction) {
  ST_REQUIRE(fraction >= 0 && fraction <= 1, "FixedDelay: fraction outside [0, 1]");
}

Duration FixedDelay::delay(NodeId, NodeId, RealTime, Duration tdel, Rng&) {
  return fraction_ * tdel;
}

UniformDelay::UniformDelay(double lo_fraction, double hi_fraction)
    : lo_(lo_fraction), hi_(hi_fraction) {
  ST_REQUIRE(lo_fraction >= 0 && hi_fraction <= 1 && lo_fraction <= hi_fraction,
             "UniformDelay: fractions must satisfy 0 <= lo <= hi <= 1");
}

Duration UniformDelay::delay(NodeId, NodeId, RealTime, Duration tdel, Rng& rng) {
  return rng.uniform(lo_ * tdel, hi_ * tdel);
}

}  // namespace stclock
