// Lockstep rounds: simulating synchronous execution on synchronized clocks.
//
// The paper's introduction argues that Byzantine clock synchronization is
// the foundation for simulating synchronous rounds. This example runs a
// classic synchronous algorithm — flooding the minimum of the nodes' inputs
// — on top of the full Srikanth–Toueg stack, with worst-case drift and
// delays, and verifies the synchrony contract held (no message ever arrived
// after its round ended).

#include <iostream>

#include "adversary/delay_policies.h"
#include "clocks/drift_models.h"
#include "core/synchronizer.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace {

/// Each node starts with a private input and repeatedly broadcasts the
/// smallest value it has seen. In a fully connected system one complete
/// round suffices; we run several to show the steady state.
class MinFlood final : public stclock::LockstepApp {
 public:
  explicit MinFlood(std::uint64_t input) : min_(input) {}

  std::uint64_t on_round(stclock::NodeId, std::uint64_t) override { return min_; }
  void on_round_message(stclock::NodeId, std::uint64_t, std::uint64_t payload) override {
    min_ = std::min(min_, payload);
  }

  [[nodiscard]] std::uint64_t current_min() const { return min_; }

 private:
  std::uint64_t min_;
};

}  // namespace

int main() {
  using namespace stclock;

  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;

  const Duration round_len = min_lockstep_round_duration(cfg);
  std::cout << "n=5, f=2; lockstep round duration " << Table::num(round_len * 1e3, 1)
            << " ms (= skew bound + one delivery, logical time)\n\n";

  const crypto::KeyRegistry registry(cfg.n, 7);
  SimParams params;
  params.n = cfg.n;
  params.tdel = cfg.tdel;
  params.seed = 7;
  Simulator sim(params, drift::adversarial_fleet(cfg.n, cfg.rho, cfg.initial_sync),
                std::make_unique<SplitDelay>(std::vector<NodeId>{1, 3}), &registry);

  const std::uint64_t inputs[] = {170, 42, 980, 301, 55};
  std::vector<MinFlood*> apps;
  std::vector<SynchronizedApp*> nodes;
  for (NodeId id = 0; id < cfg.n; ++id) {
    auto app = std::make_unique<MinFlood>(inputs[id]);
    apps.push_back(app.get());
    auto node = std::make_unique<SynchronizedApp>(cfg, round_len,
                                                  /*first_round_at=*/3 * cfg.period,
                                                  std::move(app));
    nodes.push_back(node.get());
    sim.set_process(id, std::move(node));
  }

  sim.run_until(15.0);

  Table table({"node", "input", "agreed min", "rounds executed", "late msgs"});
  bool all_agree = true;
  for (NodeId id = 0; id < cfg.n; ++id) {
    table.add_row({std::to_string(id), std::to_string(inputs[id]),
                   std::to_string(apps[id]->current_min()),
                   std::to_string(nodes[id]->rounds_executed()),
                   std::to_string(nodes[id]->late_messages())});
    all_agree &= apps[id]->current_min() == 42 && nodes[id]->late_messages() == 0;
  }
  table.print(std::cout);

  std::cout << "\nEvery node agreed on min = 42 after the first full exchange, and\n"
               "no message ever missed its round: the clocks simulated synchrony.\n";
  return all_agree ? 0 : 1;
}
