#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

/// Canonical byte serialization.
///
/// Signatures (crypto/signature.h) are computed over a canonical byte
/// encoding of protocol messages, so the encoding must be deterministic and
/// unambiguous: all integers are little-endian fixed width, and variable
/// length fields are length-prefixed.
namespace stclock {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Doubles are encoded via their IEEE-754 bit pattern.
  void f64(double v);
  /// Length-prefixed (u32) raw bytes.
  void bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads back values written by ByteWriter; throws std::out_of_range on
/// truncated input and std::logic_error on malformed length prefixes.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] Bytes bytes();
  [[nodiscard]] std::string str();

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t count) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Lower-case hex encoding, e.g. for digests in logs and test expectations.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> data);

/// Inverse of to_hex; throws std::invalid_argument on malformed input.
[[nodiscard]] Bytes from_hex(std::string_view hex);

}  // namespace stclock
