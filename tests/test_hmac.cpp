#include <gtest/gtest.h>

#include <string_view>

#include "crypto/hmac.h"
#include "util/bytes.h"

namespace stclock::crypto {
namespace {

Bytes bytes_of(std::string_view s) { return Bytes(s.begin(), s.end()); }

// RFC 4231 test vectors for HMAC-SHA256.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes msg = bytes_of("Hi There");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Bytes key = bytes_of("Jefe");
  const Bytes msg = bytes_of("what do ya want for nothing?");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  // Keys longer than one block are hashed first.
  const Bytes key(131, 0xaa);
  const Bytes msg = bytes_of("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const Bytes msg = bytes_of("message");
  EXPECT_NE(hmac_sha256(bytes_of("key-1"), msg), hmac_sha256(bytes_of("key-2"), msg));
}

TEST(Hmac, MessageSensitivity) {
  const Bytes key = bytes_of("key");
  EXPECT_NE(hmac_sha256(key, bytes_of("round 1")), hmac_sha256(key, bytes_of("round 2")));
}

TEST(Hmac, EmptyMessage) {
  const Bytes key = bytes_of("key");
  const Bytes empty;
  // Deterministic and well-defined.
  EXPECT_EQ(hmac_sha256(key, empty), hmac_sha256(key, empty));
}

TEST(Hmac, ExactlyBlockSizedKeyUsedVerbatim) {
  const Bytes key64(64, 0x42);
  const Bytes msg = bytes_of("m");
  // Must differ from the digest under the hashed version of the same key —
  // i.e. the <= blocksize path must not hash.
  const Digest direct = hmac_sha256(key64, msg);
  const Digest key_digest = sha256(key64);
  const Digest hashed_key = hmac_sha256(Bytes(key_digest.begin(), key_digest.end()), msg);
  EXPECT_NE(direct, hashed_key);
}

}  // namespace
}  // namespace stclock::crypto
