#include <gtest/gtest.h>

#include <map>
#include <set>

#include "adversary/delay_policies.h"
#include "clocks/drift_models.h"
#include "core/synchronizer.h"
#include "sim/simulator.h"

namespace stclock {
namespace {

SyncConfig lockstep_config() {
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;
  return cfg;
}

/// Records everything; used to verify the lockstep contract.
class RecordingApp final : public LockstepApp {
 public:
  std::uint64_t on_round(NodeId self, std::uint64_t round) override {
    rounds_entered.push_back(round);
    return self * 1000 + round;  // payload encodes (sender, round)
  }
  void on_round_message(NodeId from, std::uint64_t round, std::uint64_t payload) override {
    received[round].emplace(from, payload);
  }

  std::vector<std::uint64_t> rounds_entered;
  std::map<std::uint64_t, std::set<std::pair<NodeId, std::uint64_t>>> received;
};

struct LockstepHarness {
  explicit LockstepHarness(const SyncConfig& cfg, double delay_fraction = 1.0,
                           Duration round_duration = 0, std::uint32_t crashed = 0)
      : registry(cfg.n, 1) {
    const Duration delta =
        round_duration > 0 ? round_duration : min_lockstep_round_duration(cfg);
    SimParams params;
    params.n = cfg.n;
    params.tdel = cfg.tdel;
    params.seed = 1;
    sim = std::make_unique<Simulator>(params, drift::adversarial_fleet(cfg.n, cfg.rho,
                                                                       cfg.initial_sync),
                                      std::make_unique<FixedDelay>(delay_fraction),
                                      &registry);
    std::vector<NodeId> corrupt;
    for (NodeId id = cfg.n - crashed; id < cfg.n; ++id) corrupt.push_back(id);
    if (!corrupt.empty()) sim->set_adversary(corrupt, nullptr);

    for (NodeId id = 0; id < cfg.n - crashed; ++id) {
      auto app = std::make_unique<RecordingApp>();
      apps.push_back(app.get());
      auto node = std::make_unique<SynchronizedApp>(cfg, delta,
                                                    /*first_round_at=*/3 * cfg.period,
                                                    std::move(app));
      nodes.push_back(node.get());
      sim->set_process(id, std::move(node));
    }
  }

  crypto::KeyRegistry registry;
  std::unique_ptr<Simulator> sim;
  std::vector<RecordingApp*> apps;
  std::vector<SynchronizedApp*> nodes;
};

TEST(Synchronizer, MinRoundDurationScalesWithBounds) {
  SyncConfig cfg = lockstep_config();
  const Duration base = min_lockstep_round_duration(cfg);
  EXPECT_GT(base, 0);
  cfg.tdel *= 2;
  EXPECT_GT(min_lockstep_round_duration(cfg), base);
}

TEST(Synchronizer, RejectsTooShortRounds) {
  const SyncConfig cfg = lockstep_config();
  EXPECT_THROW(SynchronizedApp(cfg, min_lockstep_round_duration(cfg) / 2, 1.0,
                               std::make_unique<RecordingApp>()),
               std::logic_error);
}

TEST(Synchronizer, AllNodesExecuteSameRoundsInOrder) {
  LockstepHarness h(lockstep_config());
  h.sim->run_until(20.0);

  ASSERT_FALSE(h.apps.empty());
  const auto& reference = h.apps[0]->rounds_entered;
  EXPECT_GE(reference.size(), 100u);  // many lockstep rounds in 17 s
  for (const auto* app : h.apps) {
    EXPECT_EQ(app->rounds_entered, reference);
  }
  // Rounds are consecutive starting at 1.
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i], i + 1);
  }
}

TEST(Synchronizer, NoLateMessagesWhenDurationRespectsBound) {
  LockstepHarness h(lockstep_config());
  h.sim->run_until(20.0);
  for (const auto* node : h.nodes) EXPECT_EQ(node->late_messages(), 0u);
}

TEST(Synchronizer, EveryRoundDeliversAllHonestMessages) {
  LockstepHarness h(lockstep_config());
  h.sim->run_until(20.0);

  const std::uint64_t last_full_round = h.nodes[0]->rounds_executed() - 2;
  for (std::size_t i = 0; i < h.apps.size(); ++i) {
    for (std::uint64_t r = 1; r <= last_full_round; ++r) {
      ASSERT_TRUE(h.apps[i]->received.contains(r)) << "node " << i << " round " << r;
      // n messages per round: one from every node including self.
      EXPECT_EQ(h.apps[i]->received.at(r).size(), h.apps.size())
          << "node " << i << " round " << r;
      // Payload integrity: (sender, sender*1000 + r).
      for (const auto& [from, payload] : h.apps[i]->received.at(r)) {
        EXPECT_EQ(payload, from * 1000 + r);
      }
    }
  }
}

TEST(Synchronizer, SurvivesCrashedNodes) {
  LockstepHarness h(lockstep_config(), 1.0, 0, /*crashed=*/2);
  h.sim->run_until(20.0);
  const std::uint64_t last_full_round = h.nodes[0]->rounds_executed() - 2;
  EXPECT_GE(last_full_round, 50u);
  for (const auto* node : h.nodes) EXPECT_EQ(node->late_messages(), 0u);
  // Each round now delivers exactly the 3 honest messages.
  for (const auto* app : h.apps) {
    for (std::uint64_t r = 1; r <= last_full_round; ++r) {
      EXPECT_EQ(app->received.at(r).size(), h.apps.size());
    }
  }
}

TEST(Synchronizer, PulseObserverForwards) {
  LockstepHarness h(lockstep_config());
  std::uint64_t pulses = 0;
  for (auto* node : h.nodes) {
    node->set_pulse_observer([&pulses](NodeId, Round) { ++pulses; });
  }
  h.sim->run_until(10.0);
  EXPECT_GT(pulses, 0u);
}

/// Flooding-minimum demo: after f+1-ish rounds everyone knows the global
/// minimum input — the classic synchronous-algorithm exercise, run on top of
/// simulated synchrony.
class MinFloodApp final : public LockstepApp {
 public:
  explicit MinFloodApp(std::uint64_t input) : min_(input) {}

  std::uint64_t on_round(NodeId, std::uint64_t) override { return min_; }
  void on_round_message(NodeId, std::uint64_t, std::uint64_t payload) override {
    min_ = std::min(min_, payload);
  }

  [[nodiscard]] std::uint64_t current_min() const { return min_; }

 private:
  std::uint64_t min_;
};

TEST(Synchronizer, MinFloodConvergesInOneRound) {
  const SyncConfig cfg = lockstep_config();
  const crypto::KeyRegistry registry(cfg.n, 1);
  SimParams params;
  params.n = cfg.n;
  params.tdel = cfg.tdel;
  params.seed = 1;
  Simulator sim(params, drift::adversarial_fleet(cfg.n, cfg.rho, cfg.initial_sync),
                std::make_unique<FixedDelay>(1.0), &registry);

  std::vector<MinFloodApp*> apps;
  for (NodeId id = 0; id < cfg.n; ++id) {
    auto app = std::make_unique<MinFloodApp>(100 + id * 7);
    apps.push_back(app.get());
    sim.set_process(id, std::make_unique<SynchronizedApp>(
                            cfg, min_lockstep_round_duration(cfg), 3 * cfg.period,
                            std::move(app)));
  }
  sim.run_until(10.0);
  // Fully connected: one complete exchange suffices for the global min.
  for (const auto* app : apps) EXPECT_EQ(app->current_min(), 100u);
}

}  // namespace
}  // namespace stclock
