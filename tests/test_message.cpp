#include <gtest/gtest.h>

#include "sim/message.h"

namespace stclock {
namespace {

TEST(MessageTest, KindNames) {
  EXPECT_EQ(message_kind(Message(RoundMsg{1, {}})), "round");
  EXPECT_EQ(message_kind(Message(InitMsg{1})), "init");
  EXPECT_EQ(message_kind(Message(EchoMsg{1})), "echo");
  EXPECT_EQ(message_kind(Message(CnvValueMsg{1, 0.5})), "cnv");
  EXPECT_EQ(message_kind(Message(LwValueMsg{1})), "lw");
  EXPECT_EQ(message_kind(Message(LeaderTimeMsg{1, 0.5})), "leader");
}

TEST(MessageTest, RoundExtraction) {
  EXPECT_EQ(message_round(Message(RoundMsg{42, {}})), 42u);
  EXPECT_EQ(message_round(Message(InitMsg{7})), 7u);
  EXPECT_EQ(message_round(Message(EchoMsg{9})), 9u);
  EXPECT_EQ(message_round(Message(CnvValueMsg{3, 0.0})), 3u);
}

TEST(MessageTest, SizeGrowsWithSignatures) {
  RoundMsg small{1, {}};
  RoundMsg big{1, std::vector<crypto::Signature>(5)};
  EXPECT_LT(message_size_bytes(Message(small)), message_size_bytes(Message(big)));
  // Each signature adds signer id + MAC.
  EXPECT_EQ(message_size_bytes(Message(big)) - message_size_bytes(Message(small)),
            5 * (4 + crypto::kDigestSize));
}

TEST(MessageTest, FixedSizesForUnsignedKinds) {
  EXPECT_EQ(message_size_bytes(Message(InitMsg{1})), message_size_bytes(Message(InitMsg{999})));
  EXPECT_EQ(message_size_bytes(Message(EchoMsg{1})), message_size_bytes(Message(InitMsg{1})));
  // Value-carrying kinds are 8 bytes larger.
  EXPECT_EQ(message_size_bytes(Message(CnvValueMsg{1, 0.0})) -
                message_size_bytes(Message(LwValueMsg{1})),
            8u);
}

TEST(MessageTest, SigningPayloadDependsOnlyOnRound) {
  EXPECT_EQ(round_signing_payload(5), round_signing_payload(5));
  EXPECT_NE(round_signing_payload(5), round_signing_payload(6));
}

}  // namespace
}  // namespace stclock
