#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "baselines/baseline.h"
#include "core/runner.h"
#include "util/table.h"

/// Shared defaults for the experiment harnesses. Every experiment runs the
/// protocol under *adversarial* conditions by default — worst-case drift
/// (extremal rates), worst-case delay assignment (split), and an active
/// attack — because that is the regime the paper's bounds are about.
namespace stclock::bench {

inline SyncConfig default_auth_config() {
  SyncConfig cfg;
  cfg.n = 7;
  cfg.f = 3;  // = ceil(7/2) - 1, the authenticated maximum
  cfg.rho = 1e-4;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;
  cfg.variant = Variant::kAuthenticated;
  return cfg;
}

inline SyncConfig default_echo_config() {
  SyncConfig cfg = default_auth_config();
  cfg.variant = Variant::kEcho;
  cfg.f = 2;  // = ceil(7/3) - 1, the signature-free maximum
  return cfg;
}

inline RunSpec adversarial_spec(SyncConfig cfg, RealTime horizon = 30.0,
                                std::uint64_t seed = 1) {
  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = seed;
  spec.horizon = horizon;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = AttackKind::kSpamEarly;
  return spec;
}

inline void print_header(const char* experiment, const char* claim) {
  std::cout << "==============================================================\n"
            << experiment << "\n"
            << "Paper claim: " << claim << "\n"
            << "==============================================================\n";
}

/// Command-line options shared by every experiment binary:
///   --seed N   rerun the experiment with a different random seed
///   --csv      emit CSV instead of the aligned table (for plotting)
struct Options {
  std::uint64_t seed = 1;
  bool csv = false;
};

inline Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      opts.csv = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0] << " [--seed N] [--csv]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << arg << " (try --help)\n";
      std::exit(2);
    }
  }
  return opts;
}

inline void emit(const Table& table, const Options& opts) {
  if (opts.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

}  // namespace stclock::bench
