#include "core/runner.h"

#include <algorithm>
#include <map>

#include "adversary/delay_policies.h"
#include "clocks/drift_models.h"
#include "core/joiner.h"
#include "sim/simulator.h"
#include "trace/skew_tracker.h"
#include "util/contracts.h"

namespace stclock {

const char* drift_name(DriftKind kind) {
  switch (kind) {
    case DriftKind::kNone: return "none";
    case DriftKind::kRandomConstant: return "rand-const";
    case DriftKind::kRandomWalk: return "rand-walk";
    case DriftKind::kExtremal: return "extremal";
  }
  return "unknown";
}

const char* delay_name(DelayKind kind) {
  switch (kind) {
    case DelayKind::kZero: return "zero";
    case DelayKind::kHalf: return "half";
    case DelayKind::kMax: return "max";
    case DelayKind::kUniform: return "uniform";
    case DelayKind::kSplit: return "split";
    case DelayKind::kAlternating: return "alternating";
  }
  return "unknown";
}

namespace {

std::vector<HardwareClock> build_clocks(const RunSpec& spec, Rng& rng) {
  const SyncConfig& cfg = spec.cfg;
  switch (spec.drift) {
    case DriftKind::kNone: {
      std::vector<HardwareClock> fleet;
      fleet.reserve(cfg.n);
      for (std::uint32_t i = 0; i < cfg.n; ++i) {
        const LocalTime initial =
            cfg.n == 1 ? 0.0
                       : cfg.initial_sync * static_cast<double>(i) /
                             static_cast<double>(cfg.n - 1);
        fleet.push_back(drift::constant(initial, 1.0));
      }
      return fleet;
    }
    case DriftKind::kRandomConstant: {
      std::vector<HardwareClock> fleet;
      fleet.reserve(cfg.n);
      for (std::uint32_t i = 0; i < cfg.n; ++i) {
        fleet.push_back(drift::random_constant(rng, cfg.rho, cfg.initial_sync));
      }
      return fleet;
    }
    case DriftKind::kRandomWalk:
      return drift::random_fleet(rng, cfg.n, cfg.rho, cfg.initial_sync,
                                 spec.horizon + 1.0, cfg.period);
    case DriftKind::kExtremal:
      return drift::adversarial_fleet(cfg.n, cfg.rho, cfg.initial_sync);
  }
  ST_ASSERT(false, "build_clocks: unhandled drift kind");
  return {};
}

std::unique_ptr<DelayPolicy> build_delays(const RunSpec& spec) {
  switch (spec.delay) {
    case DelayKind::kZero: return std::make_unique<FixedDelay>(0.0);
    case DelayKind::kHalf: return std::make_unique<FixedDelay>(0.5);
    case DelayKind::kMax: return std::make_unique<FixedDelay>(1.0);
    case DelayKind::kUniform: return std::make_unique<UniformDelay>(0.0, 1.0);
    case DelayKind::kSplit: {
      std::vector<NodeId> slow;
      for (NodeId id = 1; id < spec.cfg.n; id += 2) slow.push_back(id);
      return std::make_unique<SplitDelay>(std::move(slow));
    }
    case DelayKind::kAlternating:
      return std::make_unique<AlternatingDelay>(spec.cfg.period);
  }
  ST_ASSERT(false, "build_delays: unhandled delay kind");
  return nullptr;
}

struct PulseLog {
  // pulse real times per node, indexed by round.
  std::vector<std::map<Round, RealTime>> by_node;
  std::vector<RealTime> first_pulse;  // -1 until seen
};

}  // namespace

RunResult run_sync(const RunSpec& spec) {
  const SyncConfig& cfg = spec.cfg;
  cfg.validate();
  ST_REQUIRE(spec.horizon > 0, "run_sync: horizon must be positive");
  ST_REQUIRE(spec.joiners + cfg.f < cfg.n, "run_sync: need at least one regular honest node");

  RunResult result;
  result.bounds = theory::derive_bounds(cfg);

  Rng rng(spec.seed);
  std::vector<HardwareClock> clocks = build_clocks(spec, rng);

  const crypto::KeyRegistry registry(cfg.n, spec.seed ^ 0x5eedULL);

  SimParams params;
  params.n = cfg.n;
  params.tdel = cfg.tdel;
  params.seed = rng.next_u64();
  Simulator sim(params, std::move(clocks), build_delays(spec), &registry);

  // Corrupted nodes take the highest ids; joiners the highest honest ids.
  const std::uint32_t corrupt_count =
      spec.attack == AttackKind::kNone ? 0
      : spec.corrupt_override > 0      ? spec.corrupt_override
                                       : cfg.f;
  ST_REQUIRE(corrupt_count + spec.joiners < cfg.n,
             "run_sync: need at least one regular honest node");
  std::vector<NodeId> corrupt;
  for (NodeId id = cfg.n - corrupt_count; id < cfg.n; ++id) corrupt.push_back(id);
  const NodeId first_joiner = cfg.n - corrupt_count - spec.joiners;

  AttackParams attack_params;
  attack_params.max_round =
      static_cast<Round>(spec.horizon / result.bounds.min_period) + 8;
  attack_params.period = cfg.period;
  attack_params.variant = cfg.variant;
  attack_params.nominal_delay = cfg.tdel / 2;

  if (!corrupt.empty()) {
    sim.set_adversary(corrupt, make_attack(spec.attack, attack_params));
  }

  PulseLog pulses;
  pulses.by_node.resize(cfg.n);
  pulses.first_pulse.assign(cfg.n, -1.0);

  std::vector<SyncProtocol*> protocols(cfg.n, nullptr);
  const std::uint32_t honest_count = cfg.n - corrupt_count;
  for (NodeId id = 0; id < honest_count; ++id) {
    const bool joining = id >= first_joiner;
    auto process = joining ? make_joining_process(cfg) : make_sync_process(cfg);
    protocols[id] = process.get();
    process->set_pulse_observer([&pulses, &sim](NodeId node, Round round) {
      pulses.by_node[node][round] = sim.now();
      if (pulses.first_pulse[node] < 0) pulses.first_pulse[node] = sim.now();
    });
    if (joining) sim.set_start_time(id, spec.join_time);
    sim.set_process(id, std::move(process));
  }

  // Joiners only count toward skew once integrated (their pre-integration
  // clock is arbitrary by definition).
  SkewTracker skew(spec.skew_series_interval, [&protocols](NodeId id) {
    return protocols[id] == nullptr || protocols[id]->integrated();
  });
  skew.set_steady_start(2 * result.bounds.max_period);
  EnvelopeTracker envelope(spec.envelope_interval);
  sim.set_post_event_hook([&skew, &envelope](const Simulator& s) {
    skew.sample(s);
    envelope.sample(s);
  });

  // Step the simulation so metrics get sampled at a bounded real-time
  // granularity even through event-quiet stretches.
  const Duration step = std::max(spec.skew_series_interval, 1e-3);
  for (RealTime t = step; t < spec.horizon + step; t += step) {
    sim.run_until(std::min(t, spec.horizon));
    skew.sample(sim);
    envelope.sample(sim);
  }

  // --- Collect metrics ---
  result.max_skew = skew.max_skew();
  result.steady_skew = skew.steady_max_skew();
  result.skew_series = skew.series();

  // Pulse spread per round: only rounds every regular honest node completed.
  std::map<Round, std::pair<RealTime, RealTime>> round_window;  // min,max
  std::map<Round, std::uint32_t> round_count;
  std::uint64_t regular_nodes = 0;
  for (NodeId id = 0; id < honest_count; ++id) {
    const bool joiner = id >= first_joiner;
    if (!joiner) ++regular_nodes;
    for (const auto& [round, t] : pulses.by_node[id]) {
      auto [it, inserted] = round_window.try_emplace(round, t, t);
      if (!inserted) {
        it->second.first = std::min(it->second.first, t);
        it->second.second = std::max(it->second.second, t);
      }
      if (!joiner) ++round_count[round];
    }
  }
  for (const auto& [round, window] : round_window) {
    if (round_count[round] == regular_nodes) {
      result.pulse_spread = std::max(result.pulse_spread, window.second - window.first);
    }
  }

  // Per-node periods and pulse counts.
  result.min_period = kTimeInfinity;
  bool any_period = false;
  result.min_pulses = UINT64_MAX;
  for (NodeId id = 0; id < honest_count; ++id) {
    const bool joiner = id >= first_joiner;
    const auto& log = pulses.by_node[id];
    RealTime prev = -1;
    for (const auto& [round, t] : log) {
      if (prev >= 0) {
        result.min_period = std::min(result.min_period, t - prev);
        result.max_period = std::max(result.max_period, t - prev);
        any_period = true;
      }
      prev = t;
    }
    if (!joiner) {
      result.min_pulses = std::min<std::uint64_t>(result.min_pulses, log.size());
      result.max_pulses = std::max<std::uint64_t>(result.max_pulses, log.size());
    }
  }
  if (!any_period) result.min_period = 0;
  if (result.min_pulses == UINT64_MAX) result.min_pulses = 0;

  // Liveness: nobody stalls — every regular honest node is within one round
  // of the front, and everyone pulsed at least twice.
  Round front = 0, back = UINT64_MAX;
  result.rounds_completed = UINT64_MAX;
  for (NodeId id = 0; id < honest_count; ++id) {
    if (id >= first_joiner) continue;
    const Round last = protocols[id]->last_round();
    front = std::max(front, last);
    back = std::min(back, last);
    result.rounds_completed = std::min<std::uint64_t>(result.rounds_completed, last);
  }
  result.live = result.min_pulses >= 2 && front <= back + 1;

  if (spec.joiners > 0) {
    result.joiners_integrated = true;
    for (NodeId id = first_joiner; id < honest_count; ++id) {
      if (!protocols[id]->integrated() || pulses.first_pulse[id] < 0) {
        result.joiners_integrated = false;
        continue;
      }
      result.join_latency =
          std::max(result.join_latency, pulses.first_pulse[id] - spec.join_time);
    }
    result.live = result.live && result.joiners_integrated;
  }

  // The envelope fit needs a few samples past the convergence prefix.
  if (spec.horizon > 2 * result.bounds.max_period + 3 * spec.envelope_interval) {
    const RealTime fit_start = 2 * result.bounds.max_period;
    result.envelope =
        envelope.report(result.bounds.rate_lo, result.bounds.rate_hi, fit_start);
    result.rate_fit_tolerance =
        2 * result.bounds.precision / (spec.horizon - fit_start);
  }

  result.messages_sent = sim.counters().total_sent();
  result.bytes_sent = sim.counters().total_bytes();
  return result;
}

}  // namespace stclock
