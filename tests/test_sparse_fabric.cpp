#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "broadcast/auth_broadcast.h"
#include "broadcast/echo_broadcast.h"
#include "broadcast/primitive.h"
#include "experiment/registry.h"
#include "experiment/scenario.h"
#include "sim/topology.h"

/// The sparse broadcast fabric: quorum scaling, the broadcast-mode routing
/// contract (full mode is THE bit-identity baseline; neighbors mode on a
/// complete graph degenerates to it exactly), and the paper's skew envelope
/// surviving on expander fabrics where each broadcast reaches k or m nodes
/// instead of n.
namespace stclock {
namespace {

TEST(ScaledThreshold, ReducesToPaperThresholdsAtFullFanIn) {
  // fanin 0 (= full fan-in) and fanin >= n-1 must leave the paper's
  // thresholds untouched: f+1 for auth relay, 2f+1 for echo accept.
  EXPECT_EQ(scaled_threshold(4, 10, 0), 4u);
  EXPECT_EQ(scaled_threshold(4, 10, 9), 4u);
  EXPECT_EQ(scaled_threshold(4, 10, 200), 4u);
  EXPECT_EQ(scaled_threshold(7, 10, 0), 7u);
}

TEST(ScaledThreshold, ScalesProportionallyToFanIn) {
  // 1 + floor((full - 1) * fanin / (n - 1)): never below 1, never above
  // full, monotone in fanin.
  EXPECT_EQ(scaled_threshold(4, 10, 3), 2u);  // 1 + floor(3*3/9) = 2
  EXPECT_EQ(scaled_threshold(4, 10, 6), 3u);  // 1 + floor(3*6/9) = 3
  EXPECT_EQ(scaled_threshold(1, 10, 3), 1u);  // f = 0 stays at 1
  std::uint32_t prev = 0;
  for (std::uint32_t fanin = 1; fanin < 9; ++fanin) {
    const std::uint32_t q = scaled_threshold(7, 10, fanin);
    EXPECT_GE(q, 1u);
    EXPECT_LE(q, 7u);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(ScaledThreshold, DrivesPrimitiveQuorums) {
  // Full fan-in: the classic quorums. Fan-in 8 of n=100: proportional.
  EXPECT_EQ(AuthBroadcast(100, 10).quorum(), 11u);
  EXPECT_EQ(AuthBroadcast(100, 10, 8).quorum(), 1u + (10u * 8u) / 99u);
  EXPECT_EQ(EchoBroadcast(100, 10).echo_threshold(), 11u);
  EXPECT_EQ(EchoBroadcast(100, 10).accept_threshold(), 21u);
  EXPECT_EQ(EchoBroadcast(100, 10, 8).accept_threshold(), 1u + (20u * 8u) / 99u);
}

TEST(SparseFabric, NeighborsModeOnCompleteGraphIsBitIdenticalToFull) {
  // On the complete graph "broadcast to my neighbors" IS "broadcast to
  // everyone", so every registered protocol must produce bit-identical
  // metrics in the two modes — the sparse fan-out path may not perturb
  // delivery order, RNG consumption, or metric accounting. Registry-wide so
  // a future protocol cannot quietly special-case a mode.
  for (const std::string& name : experiment::ProtocolRegistry::global().names()) {
    SCOPED_TRACE(name);
    experiment::ScenarioSpec spec;
    spec.protocol = name;
    spec.cfg.n = 8;
    spec.cfg.f = 0;
    spec.cfg.rho = 1e-4;
    spec.cfg.tdel = 0.01;
    spec.cfg.period = 1.0;
    spec.cfg.initial_sync = 0.005;
    spec.seed = 21;
    spec.horizon = 6.0;

    experiment::ScenarioSpec sparse = spec;
    sparse.broadcast_mode = BroadcastMode::kNeighbors;

    const experiment::ScenarioResult a = experiment::run_scenario(spec);
    const experiment::ScenarioResult b = experiment::run_scenario(sparse);
    EXPECT_EQ(a.max_skew, b.max_skew);
    EXPECT_EQ(a.local_skew, b.local_skew);
    EXPECT_EQ(a.messages_sent, b.messages_sent);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent);
    EXPECT_EQ(a.events_dispatched, b.events_dispatched);
    EXPECT_EQ(a.envelope.min_rate, b.envelope.min_rate);
    EXPECT_EQ(a.envelope.max_rate, b.envelope.max_rate);
  }
}

std::uint32_t bfs_diameter(const Topology& topo) {
  std::uint32_t diameter = 0;
  for (NodeId src = 0; src < topo.n(); ++src) {
    std::vector<std::uint32_t> dist(topo.n(), UINT32_MAX);
    std::vector<NodeId> frontier = {src};
    dist[src] = 0;
    while (!frontier.empty()) {
      std::vector<NodeId> next;
      for (const NodeId a : frontier) {
        const auto [nbrs, degree] = topo.neighbor_span(a);
        for (std::size_t i = 0; i < degree; ++i) {
          if (dist[nbrs[i]] == UINT32_MAX) {
            dist[nbrs[i]] = dist[a] + 1;
            next.push_back(nbrs[i]);
          }
        }
      }
      frontier = std::move(next);
    }
    for (const std::uint32_t d : dist) diameter = std::max(diameter, d);
  }
  return diameter;
}

TEST(SparseFabric, AuthOnExpanderKeepsSkewEnvelopeAndLiveness) {
  // The property sweep from the issue: auth x expander {k=8, k=16} x seeds,
  // under neighbors fan-out. On a sparse fabric a resync message reaches the
  // last node after <= diameter relay hops, so honest acceptance times
  // spread by at most diameter * tdel instead of the paper's single tdel.
  // The skew envelope scales the same way: initial_sync + diameter * tdel
  // plus the drift term, doubled for slack (drift between samples, discrete
  // sampling of the sup). Liveness must be exact — every node keeps pulsing.
  for (const std::uint32_t k : {8u, 16u}) {
    for (const std::uint64_t topo_seed : {3ULL, 11ULL}) {
      SCOPED_TRACE("k=" + std::to_string(k) + " topo_seed=" + std::to_string(topo_seed));
      experiment::ScenarioSpec spec;
      spec.protocol = "auth";
      spec.cfg.n = 48;
      spec.cfg.f = 0;
      spec.cfg.rho = 1e-4;
      spec.cfg.tdel = 0.01;
      spec.cfg.period = 1.0;
      spec.cfg.initial_sync = 0.005;
      spec.seed = 31;
      spec.horizon = 6.0;
      spec.topology = TopologyKind::kExpander;
      spec.expander_k = k;
      spec.topology_seed = topo_seed;
      spec.broadcast_mode = BroadcastMode::kNeighbors;

      const std::uint32_t diameter =
          bfs_diameter(Topology::expander(spec.cfg.n, k, topo_seed));
      const experiment::ScenarioResult r = experiment::run_scenario(spec);
      EXPECT_TRUE(r.live);
      EXPECT_EQ(r.min_pulses, r.max_pulses);
      const double envelope =
          2 * (spec.cfg.initial_sync + diameter * spec.cfg.tdel +
               2 * spec.cfg.rho * spec.cfg.period);
      EXPECT_LE(r.max_skew, envelope);
      EXPECT_GT(r.max_skew, 0.0);
    }
  }
}

TEST(SparseFabric, SampledFanOutIsSeedDeterministicAndLive) {
  // Sampled mode draws from a dedicated RNG stream forked off the scenario
  // seed: the same spec twice must agree bit for bit, and the protocol must
  // stay live even though each broadcast reaches only m = 6 of 32 peers
  // (the quorum scales with the fan-in, so acceptance still fires).
  experiment::ScenarioSpec spec;
  spec.protocol = "auth";
  spec.cfg.n = 32;
  spec.cfg.f = 0;
  spec.cfg.rho = 1e-4;
  spec.cfg.tdel = 0.01;
  spec.cfg.period = 1.0;
  spec.cfg.initial_sync = 0.005;
  spec.seed = 5;
  spec.horizon = 6.0;
  spec.topology = TopologyKind::kExpander;
  spec.expander_k = 16;
  spec.topology_seed = 9;
  spec.broadcast_mode = BroadcastMode::kSampled;
  spec.sample_size = 6;

  const experiment::ScenarioResult a = experiment::run_scenario(spec);
  const experiment::ScenarioResult b = experiment::run_scenario(spec);
  EXPECT_TRUE(a.live);
  EXPECT_EQ(a.max_skew, b.max_skew);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);

  // A different scenario seed must reach different draws (and thus a
  // different trace) — the stream is forked, not fixed.
  experiment::ScenarioSpec reseeded = spec;
  reseeded.seed = 6;
  const experiment::ScenarioResult c = experiment::run_scenario(reseeded);
  EXPECT_NE(a.max_skew, c.max_skew);
}

TEST(SparseFabric, SampledModeCutsMessageComplexity) {
  // The message-complexity cliff in miniature: full mode on the complete
  // graph is Theta(n^2) per round; sampled mode with m = 4 must send less
  // than half as much at n = 32 (each broadcast: 4 sends instead of 31).
  experiment::ScenarioSpec full;
  full.protocol = "auth";
  full.cfg.n = 32;
  full.cfg.f = 0;
  full.cfg.rho = 1e-4;
  full.cfg.tdel = 0.01;
  full.cfg.period = 1.0;
  full.cfg.initial_sync = 0.005;
  full.seed = 5;
  full.horizon = 6.0;

  experiment::ScenarioSpec sampled = full;
  sampled.broadcast_mode = BroadcastMode::kSampled;
  sampled.sample_size = 4;

  const experiment::ScenarioResult rf = experiment::run_scenario(full);
  const experiment::ScenarioResult rs = experiment::run_scenario(sampled);
  EXPECT_TRUE(rf.live);
  EXPECT_TRUE(rs.live);
  EXPECT_LT(rs.messages_sent * 2, rf.messages_sent);
}

}  // namespace
}  // namespace stclock
