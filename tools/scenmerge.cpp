#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "scenfile/scenfile.h"

/// scenmerge — deterministically reassemble sharded scenrun dumps.
///
///   scenmerge [-o OUT] SHARD [SHARD...]
///
/// Shards are JSON or CSV sink dumps (auto-detected; all shards must agree).
/// Records are re-ordered by their global cell index, so merging the
/// `--cells` shards of one grid reproduces the unsharded dump byte for byte.
/// Duplicate cell indices across shards are errors.
namespace {

int usage(std::ostream& os, int code) {
  os << "usage: scenmerge [-o OUT] SHARD [SHARD...]\n"
        "  -o OUT   write the merged dump to OUT instead of stdout\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> shard_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if ((arg == "-o" || arg == "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "scenmerge: unknown option: " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      shard_paths.push_back(arg);
    }
  }
  if (shard_paths.empty()) {
    std::cerr << "scenmerge: no shard files given\n";
    return usage(std::cerr, 2);
  }

  try {
    std::vector<std::string> shards;
    shards.reserve(shard_paths.size());
    for (const std::string& path : shard_paths) {
      std::ifstream in(path, std::ios::binary);
      if (!in) throw std::runtime_error("cannot open shard: " + path);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      shards.push_back(buffer.str());
    }

    const bool json = !shards[0].empty() && shards[0][0] == '[';
    const std::string merged = json ? stclock::scenfile::merge_json_sinks(shards)
                                    : stclock::scenfile::merge_csv_sinks(shards);

    if (out_path.empty() || out_path == "-") {
      std::cout << merged;
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) throw std::runtime_error("cannot open output file: " + out_path);
      out << merged;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "scenmerge: " << e.what() << "\n";
    return 1;
  }
}
