#pragma once

#include "baselines/baseline.h"

/// Free-running clocks: no synchronization at all. Skew grows linearly at
/// the relative drift rate gamma = (1+rho) - 1/(1+rho). This is the control
/// case for every comparison table.
namespace stclock::baselines {

/// A process that never touches its logical clock.
class UnsynchronizedProtocol final : public Process {
 public:
  void on_start(Context&) override {}
  void on_message(Context&, NodeId, const Message&) override {}
  void on_timer(Context&, TimerId) override {}
};

[[nodiscard]] BaselineResult run_unsynchronized(const BaselineSpec& spec);

}  // namespace stclock::baselines
