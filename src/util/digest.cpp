#include "util/digest.h"

namespace stclock::util {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// splitmix64 finalizer: full-width avalanche so that single-byte input
/// differences flip about half the output bits in each lane.
constexpr std::uint64_t avalanche(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Digest& Digest::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t l0 = lane0_;
  std::uint64_t l1 = lane1_;
  for (std::size_t i = 0; i < len; ++i) {
    l0 = (l0 ^ p[i]) * kFnvPrime;
    l1 = (l1 ^ p[i]) * kFnvPrime;
    // Lane 1 additionally folds the byte position so it is not a pure
    // function of lane 0's state (FNV with a different seed alone would
    // keep the lanes affinely related).
    l1 += static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
  }
  lane0_ = l0;
  lane1_ = l1;
  return *this;
}

Digest& Digest::update_u64(std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  return update(bytes, sizeof bytes);
}

std::uint64_t Digest::lo() const { return avalanche(lane0_); }

std::uint64_t Digest::hi() const { return avalanche(lane1_ ^ (lane0_ * kFnvPrime)); }

std::string Digest::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  const std::uint64_t halves[2] = {hi(), lo()};
  std::string out(32, '0');
  std::size_t pos = 0;
  for (const std::uint64_t half : halves) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out[pos++] = kDigits[(half >> shift) & 0xF];
    }
  }
  return out;
}

std::string digest_hex(std::string_view s) { return Digest().update(s).hex(); }

std::uint64_t fnv1a64(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

}  // namespace stclock::util
