#include <gtest/gtest.h>

#include <cstring>

#include "sim/message.h"
#include "util/arena.h"

/// The thread-local free-list arena behind hot-path Message interning and
/// RoundMsg signature bundles.
namespace stclock::util {
namespace {

TEST(Arena, RecyclesBlocksWithinASizeClass) {
  void* first = FreeListArena::allocate(100);
  std::memset(first, 0xAB, 100);
  FreeListArena::deallocate(first, 100);

  const std::size_t cached = FreeListArena::cached_blocks();
  EXPECT_GE(cached, 1u);

  // Same size class (64 < n <= 128): the freed block comes straight back.
  void* second = FreeListArena::allocate(128);
  EXPECT_EQ(second, first);
  EXPECT_EQ(FreeListArena::cached_blocks(), cached - 1);
  FreeListArena::deallocate(second, 128);
}

TEST(Arena, OversizedBlocksBypassTheCache) {
  const std::size_t cached = FreeListArena::cached_blocks();
  void* big = FreeListArena::allocate(FreeListArena::kMaxBlock + 1);
  ASSERT_NE(big, nullptr);
  FreeListArena::deallocate(big, FreeListArena::kMaxBlock + 1);
  EXPECT_EQ(FreeListArena::cached_blocks(), cached);
}

TEST(Arena, SigBundlesDrawFromTheArena) {
  // Warm the class once, then a fresh bundle of the same size must hit the
  // cache instead of the general-purpose allocator.
  {
    SigBundle warm(8);
    EXPECT_EQ(warm.size(), 8u);
  }
  const std::size_t cached = FreeListArena::cached_blocks();
  EXPECT_GE(cached, 1u);
  {
    SigBundle bundle(8);
    EXPECT_LT(FreeListArena::cached_blocks(), cached);
  }
  EXPECT_EQ(FreeListArena::cached_blocks(), cached);
}

TEST(Arena, BundleCopiesAndComparisonsBehaveLikePlainVectors) {
  SigBundle a(3);
  a[0].signer = 7;
  SigBundle b = a;
  EXPECT_EQ(a, b);
  b.push_back({});
  EXPECT_NE(a, b);
  b = std::move(a);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0].signer, 7u);
}

}  // namespace
}  // namespace stclock::util
