#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace stclock {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::min() const {
  ST_REQUIRE(n_ > 0, "Accumulator::min on empty accumulator");
  return min_;
}

double Accumulator::max() const {
  ST_REQUIRE(n_ > 0, "Accumulator::max on empty accumulator");
  return max_;
}

double Accumulator::mean() const {
  ST_REQUIRE(n_ > 0, "Accumulator::mean on empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  if (n_ < 2) return 0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Samples::ensure_sorted() const {
  if (!sorted_valid_ || sorted_.size() != xs_.size()) {
    sorted_ = xs_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::min() const {
  ST_REQUIRE(!xs_.empty(), "Samples::min on empty set");
  ensure_sorted();
  return sorted_.front();
}

double Samples::max() const {
  ST_REQUIRE(!xs_.empty(), "Samples::max on empty set");
  ensure_sorted();
  return sorted_.back();
}

double Samples::mean() const {
  ST_REQUIRE(!xs_.empty(), "Samples::mean on empty set");
  double sum = 0;
  for (double x : xs_) sum += x;
  return sum / static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0;
  const double m = mean();
  double s = 0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double Samples::percentile(double p) const {
  ST_REQUIRE(!xs_.empty(), "Samples::percentile on empty set");
  ST_REQUIRE(p >= 0 && p <= 100, "percentile out of range");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1 - frac) + sorted_[hi] * frac;
}

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  ST_REQUIRE(x.size() == y.size(), "fit_line: size mismatch");
  ST_REQUIRE(x.size() >= 2, "fit_line: need at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  ST_REQUIRE(sxx > 0, "fit_line: degenerate x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

}  // namespace stclock
