#include <gtest/gtest.h>

#include "clocks/drift_models.h"

namespace stclock {
namespace {

TEST(DriftModels, RandomConstantWithinBounds) {
  Rng rng(1);
  const double rho = 0.01;
  for (int i = 0; i < 50; ++i) {
    const HardwareClock clock = drift::random_constant(rng, rho, 0.5);
    EXPECT_TRUE(clock.respects_drift_bound(rho));
    EXPECT_GE(clock.initial_value(), 0.0);
    EXPECT_LE(clock.initial_value(), 0.5);
  }
}

TEST(DriftModels, RandomWalkWithinBounds) {
  Rng rng(2);
  const double rho = 0.02;
  const HardwareClock clock = drift::random_walk(rng, rho, 0.1, 100.0, 1.0);
  EXPECT_TRUE(clock.respects_drift_bound(rho));
  // Strictly increasing over the horizon.
  double prev = clock.read(0.0);
  for (double t = 0.5; t <= 100.0; t += 0.5) {
    EXPECT_GT(clock.read(t), prev);
    prev = clock.read(t);
  }
}

TEST(DriftModels, RandomWalkEnvelope) {
  // |H(t) - H(0) - t| bounded by drift over any horizon.
  Rng rng(3);
  const double rho = 0.05;
  const HardwareClock clock = drift::random_walk(rng, rho, 0.0, 50.0, 0.5);
  for (double t = 1.0; t <= 50.0; t += 1.0) {
    const double elapsed_local = clock.read(t) - clock.read(0.0);
    EXPECT_LE(elapsed_local, (1 + rho) * t + 1e-9);
    EXPECT_GE(elapsed_local, t / (1 + rho) - 1e-9);
  }
}

TEST(DriftModels, ExtremalRates) {
  const double rho = 0.01;
  const HardwareClock fast = drift::extremal_fast(0.0, rho);
  const HardwareClock slow = drift::extremal_slow(0.0, rho);
  EXPECT_DOUBLE_EQ(fast.read(10.0), 10.0 * (1 + rho));
  EXPECT_DOUBLE_EQ(slow.read(10.0), 10.0 / (1 + rho));
  EXPECT_TRUE(fast.respects_drift_bound(rho));
  EXPECT_TRUE(slow.respects_drift_bound(rho));
}

TEST(DriftModels, AdversarialFleetShape) {
  const double rho = 0.005;
  const auto fleet = drift::adversarial_fleet(5, rho, 0.4);
  ASSERT_EQ(fleet.size(), 5u);
  for (const auto& clock : fleet) EXPECT_TRUE(clock.respects_drift_bound(rho));
  // Initial values span [0, max_initial].
  EXPECT_DOUBLE_EQ(fleet.front().initial_value(), 0.0);
  EXPECT_DOUBLE_EQ(fleet.back().initial_value(), 0.4);
  // Alternating fast/slow rates.
  EXPECT_GT(fleet[0].rate_at(0), 1.0);
  EXPECT_LT(fleet[1].rate_at(0), 1.0);
}

TEST(DriftModels, AdversarialFleetMaximizesDivergence) {
  const double rho = 0.01;
  const auto fleet = drift::adversarial_fleet(2, rho, 0.0);
  const double gap_at_100 = fleet[0].read(100.0) - fleet[1].read(100.0);
  const double gamma = (1 + rho) - 1 / (1 + rho);
  EXPECT_NEAR(gap_at_100, gamma * 100.0, 1e-9);
}

TEST(DriftModels, RandomFleetSizeAndBounds) {
  Rng rng(4);
  const auto fleet = drift::random_fleet(rng, 7, 0.03, 0.2, 20.0, 2.0);
  ASSERT_EQ(fleet.size(), 7u);
  for (const auto& clock : fleet) {
    EXPECT_TRUE(clock.respects_drift_bound(0.03));
    EXPECT_LE(clock.initial_value(), 0.2);
  }
}

TEST(DriftModels, DeterministicGivenSeed) {
  Rng a(9), b(9);
  const HardwareClock ca = drift::random_walk(a, 0.01, 0.1, 30.0, 1.0);
  const HardwareClock cb = drift::random_walk(b, 0.01, 0.1, 30.0, 1.0);
  for (double t = 0; t <= 30.0; t += 0.25) EXPECT_DOUBLE_EQ(ca.read(t), cb.read(t));
}

}  // namespace
}  // namespace stclock
