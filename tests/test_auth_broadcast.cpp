#include <gtest/gtest.h>

#include "broadcast/auth_broadcast.h"
#include "primitive_harness.h"

namespace stclock {
namespace {

using testing::PrimitiveHost;
using testing::identity_clocks;

constexpr Duration kTdel = 0.01;

struct AuthFixture {
  AuthFixture(std::uint32_t n, std::uint32_t f, double delay_fraction,
              std::uint64_t seed = 1)
      : registry(n, seed) {
    SimParams params;
    params.n = n;
    params.tdel = kTdel;
    params.seed = seed;
    sim = std::make_unique<Simulator>(params, identity_clocks(n),
                                      std::make_unique<FixedDelay>(delay_fraction),
                                      &registry);
    this->n = n;
    this->f = f;
  }

  PrimitiveHost* add_host(NodeId id, std::optional<LocalTime> ready_at, Round round = 1) {
    auto host = std::make_unique<PrimitiveHost>(std::make_unique<AuthBroadcast>(n, f), *sim,
                                                ready_at, round);
    PrimitiveHost* raw = host.get();
    sim->set_process(id, std::move(host));
    hosts.push_back(raw);
    return raw;
  }

  crypto::KeyRegistry registry;
  std::unique_ptr<Simulator> sim;
  std::vector<PrimitiveHost*> hosts;
  std::uint32_t n = 0, f = 0;
};

TEST(AuthBroadcast, RejectsInsufficientN) {
  EXPECT_THROW(AuthBroadcast(4, 2), std::logic_error);  // needs n >= 2f+1
  EXPECT_NO_THROW(AuthBroadcast(5, 2));
  EXPECT_NO_THROW(AuthBroadcast(3, 1));
}

TEST(AuthBroadcast, CorrectnessAllHonestAccept) {
  // n = 5, f = 2 with the two "faulty" nodes simply absent (crashed).
  AuthFixture fx(5, 2, /*delay=*/1.0);
  fx.add_host(0, 0.00);
  fx.add_host(1, 0.01);
  fx.add_host(2, 0.02);  // third (f+1 = 3rd) correct broadcast at t = 0.02
  fx.sim->set_adversary({3, 4}, nullptr);

  fx.sim->run_until(1.0);

  for (auto* host : fx.hosts) ASSERT_TRUE(host->accepted(1));
  // Correctness: accepted within tdel of the (f+1)-th correct broadcast.
  for (auto* host : fx.hosts) {
    EXPECT_GE(host->accept_time(1), 0.02);
    EXPECT_LE(host->accept_time(1), 0.02 + kTdel + 1e-12);
  }
}

TEST(AuthBroadcast, NoQuorumNoAcceptance) {
  // Only f correct nodes ever broadcast: nobody may accept.
  AuthFixture fx(5, 2, 1.0);
  fx.add_host(0, 0.0);
  fx.add_host(1, 0.0);
  fx.add_host(2, std::nullopt);  // never ready
  fx.sim->set_adversary({3, 4}, nullptr);

  fx.sim->run_until(1.0);
  for (auto* host : fx.hosts) EXPECT_FALSE(host->accepted(1));
}

TEST(AuthBroadcast, UnforgeabilityCorruptSignaturesAloneInsufficient) {
  // f = 2 corrupted nodes flood their signatures at time 0; no honest node
  // is ever ready. Unforgeability: nobody accepts.
  AuthFixture fx(5, 2, 0.0);

  class Spammer final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      const Bytes payload = round_signing_payload(1);
      for (NodeId c : {NodeId{3}, NodeId{4}}) {
        const crypto::Signature sig = ctx.signer_for(c).sign(payload);
        ctx.send_from_to_all(c, Message(RoundMsg{1, {sig}}), 0.0);
      }
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  fx.add_host(0, std::nullopt);
  fx.add_host(1, std::nullopt);
  fx.add_host(2, std::nullopt);
  fx.sim->set_adversary({3, 4}, std::make_unique<Spammer>());

  fx.sim->run_until(1.0);
  for (auto* host : fx.hosts) EXPECT_FALSE(host->accepted(1));
}

TEST(AuthBroadcast, UnforgeabilityAnchorsAcceptanceToFirstHonestBroadcast) {
  // Corrupt signatures arrive at time 0, but the single honest broadcast
  // happens at t = 0.5: no acceptance may precede 0.5.
  AuthFixture fx(5, 2, 0.0);

  class Spammer final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      const Bytes payload = round_signing_payload(1);
      for (NodeId c : {NodeId{3}, NodeId{4}}) {
        const crypto::Signature sig = ctx.signer_for(c).sign(payload);
        ctx.send_from_to_all(c, Message(RoundMsg{1, {sig}}), 0.0);
      }
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  fx.add_host(0, 0.5);
  fx.add_host(1, std::nullopt);
  fx.add_host(2, std::nullopt);
  fx.sim->set_adversary({3, 4}, std::make_unique<Spammer>());

  fx.sim->run_until(1.0);
  for (auto* host : fx.hosts) {
    ASSERT_TRUE(host->accepted(1));
    EXPECT_GE(host->accept_time(1), 0.5);
    EXPECT_LE(host->accept_time(1), 0.5 + kTdel + 1e-12);
  }
}

TEST(AuthBroadcast, RelayDragsEveryoneAlong) {
  // The adversary completes a quorum at node 0 only. Node 0 must relay, so
  // every honest node accepts within one further tdel.
  AuthFixture fx(5, 2, 1.0);

  class TargetedSpammer final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      const Bytes payload = round_signing_payload(1);
      for (NodeId c : {NodeId{3}, NodeId{4}}) {
        const crypto::Signature sig = ctx.signer_for(c).sign(payload);
        ctx.send_from(c, 0, Message(RoundMsg{1, {sig}}), 0.0);  // node 0 only
      }
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  // Only node 0 broadcasts; with two corrupt signatures it completes its own
  // quorum immediately. Nodes 1 and 2 hold only node 0's signature — one
  // short of a quorum — until the relay arrives.
  fx.add_host(0, 0.0);
  fx.add_host(1, std::nullopt);
  fx.add_host(2, std::nullopt);
  fx.sim->set_adversary({3, 4}, std::make_unique<TargetedSpammer>());

  fx.sim->run_until(1.0);
  ASSERT_TRUE(fx.hosts[0]->accepted(1));
  const RealTime t0 = fx.hosts[0]->accept_time(1);
  for (auto* host : fx.hosts) {
    ASSERT_TRUE(host->accepted(1));
    EXPECT_LE(host->accept_time(1), t0 + kTdel + 1e-12);  // Relay property
  }
}

TEST(AuthBroadcast, DuplicateSignaturesCountOnce) {
  // One corrupt node sends its signature many times; with f = 1 a quorum
  // needs 2 *distinct* signers, so nothing is accepted until an honest node
  // broadcasts.
  AuthFixture fx(3, 1, 0.0);

  class Duplicator final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      const Bytes payload = round_signing_payload(1);
      const crypto::Signature sig = ctx.signer_for(2).sign(payload);
      for (int i = 0; i < 10; ++i) {
        ctx.send_from_to_all(2, Message(RoundMsg{1, {sig, sig}}), 0.0);
      }
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  fx.add_host(0, 0.25);
  fx.add_host(1, std::nullopt);
  fx.sim->set_adversary({2}, std::make_unique<Duplicator>());

  fx.sim->run_until(1.0);
  ASSERT_TRUE(fx.hosts[0]->accepted(1));
  EXPECT_GE(fx.hosts[0]->accept_time(1), 0.25);
}

TEST(AuthBroadcast, SignaturesAreRoundSpecific) {
  // Signatures for round 1 must not help a round-2 quorum.
  AuthFixture fx(3, 1, 0.0);

  class CrossRoundReplayer final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      // Corrupt signature correctly made for round 1 but packaged as round 2.
      const crypto::Signature round1_sig = ctx.signer_for(2).sign(round_signing_payload(1));
      ctx.send_from_to_all(2, Message(RoundMsg{2, {round1_sig}}), 0.0);
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  // Hosts listen for round 2; node 0 broadcasts readiness for round 2.
  fx.add_host(0, 0.1, /*round=*/2);
  fx.add_host(1, std::nullopt, /*round=*/2);
  fx.sim->set_adversary({2}, std::make_unique<CrossRoundReplayer>());

  fx.sim->run_until(1.0);
  // The mispackaged signature fails verification, so only node 0's own
  // signature exists for round 2 — one short of the 2-signer quorum.
  EXPECT_FALSE(fx.hosts[0]->accepted(2));
  EXPECT_FALSE(fx.hosts[1]->accepted(2));
}

TEST(AuthBroadcast, ForgedMacsRejected) {
  AuthFixture fx(3, 1, 0.0);

  class Forger final : public Adversary {
   public:
    void on_start(AdversaryContext& ctx) override {
      crypto::Signature fake;
      fake.signer = 0;  // honest node
      fake.mac.fill(0x42);
      ctx.send_from_to_all(2, Message(RoundMsg{1, {fake}}), 0.0);
    }
    void on_message(AdversaryContext&, NodeId, NodeId, const Message&) override {}
    void on_timer(AdversaryContext&, TimerId) override {}
  };

  fx.add_host(0, std::nullopt);
  fx.add_host(1, 0.1);  // one honest broadcast: 1 valid signer < quorum of 2
  fx.sim->set_adversary({2}, std::make_unique<Forger>());

  fx.sim->run_until(1.0);
  EXPECT_FALSE(fx.hosts[0]->accepted(1));
  EXPECT_FALSE(fx.hosts[1]->accepted(1));
}

TEST(AuthBroadcast, ForgetBelowSilencesOldRounds) {
  AuthFixture fx(3, 1, 0.0);
  auto* h0 = fx.add_host(0, std::nullopt);
  fx.add_host(1, std::nullopt);
  fx.add_host(2, std::nullopt);
  h0->primitive().forget_below(5);

  fx.sim->run_until(0.1);
  // Readiness for a forgotten round is a no-op (no message storm, no state).
  EXPECT_NO_THROW(fx.sim->run_until(0.2));
}

TEST(AuthBroadcast, SoloQuorumWhenFZero) {
  // f = 0: a node's own signature is a complete quorum; acceptance is
  // immediate and everyone follows within tdel.
  AuthFixture fx(3, 0, 1.0);
  fx.add_host(0, 0.1);
  fx.add_host(1, std::nullopt);
  fx.add_host(2, std::nullopt);

  fx.sim->run_until(1.0);
  ASSERT_TRUE(fx.hosts[0]->accepted(1));
  EXPECT_DOUBLE_EQ(fx.hosts[0]->accept_time(1), 0.1);
  for (auto* host : fx.hosts) {
    ASSERT_TRUE(host->accepted(1));
    EXPECT_LE(host->accept_time(1), 0.1 + kTdel + 1e-12);
  }
}

}  // namespace
}  // namespace stclock
