#include <gtest/gtest.h>

#include "adversary/delay_policies.h"
#include "sim/network.h"

namespace stclock {
namespace {

TEST(FixedDelayTest, ScalesWithTdel) {
  FixedDelay policy(0.5);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.delay(0, 1, 0.0, 0.02, rng), 0.01);
  EXPECT_DOUBLE_EQ(policy.delay(0, 1, 0.0, 1.0, rng), 0.5);
}

TEST(FixedDelayTest, RejectsOutOfRangeFraction) {
  EXPECT_THROW(FixedDelay(-0.1), std::logic_error);
  EXPECT_THROW(FixedDelay(1.1), std::logic_error);
}

TEST(UniformDelayTest, StaysWithinFractions) {
  UniformDelay policy(0.25, 0.75);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = policy.delay(0, 1, 0.0, 0.04, rng);
    EXPECT_GE(d, 0.01);
    EXPECT_LT(d, 0.03);
  }
}

TEST(UniformDelayTest, RejectsBadRange) {
  EXPECT_THROW(UniformDelay(0.5, 0.4), std::logic_error);
  EXPECT_THROW(UniformDelay(-0.1, 0.5), std::logic_error);
  EXPECT_THROW(UniformDelay(0.5, 1.5), std::logic_error);
}

TEST(SplitDelayTest, SlowTargetsGetFullDelay) {
  SplitDelay policy({1, 3});
  Rng rng(3);
  EXPECT_DOUBLE_EQ(policy.delay(0, 1, 0.0, 0.01, rng), 0.01);
  EXPECT_DOUBLE_EQ(policy.delay(0, 3, 5.0, 0.01, rng), 0.01);
  EXPECT_DOUBLE_EQ(policy.delay(0, 0, 0.0, 0.01, rng), 0.0);
  EXPECT_DOUBLE_EQ(policy.delay(2, 2, 0.0, 0.01, rng), 0.0);
}

TEST(AlternatingDelayTest, GroupsFlipEachInterval) {
  AlternatingDelay policy(1.0);
  Rng rng(4);
  // Phase 0: odd nodes slow.
  EXPECT_DOUBLE_EQ(policy.delay(0, 1, 0.5, 0.01, rng), 0.01);
  EXPECT_DOUBLE_EQ(policy.delay(0, 2, 0.5, 0.01, rng), 0.0);
  // Phase 1: even nodes slow.
  EXPECT_DOUBLE_EQ(policy.delay(0, 1, 1.5, 0.01, rng), 0.0);
  EXPECT_DOUBLE_EQ(policy.delay(0, 2, 1.5, 0.01, rng), 0.01);
}

TEST(AlternatingDelayTest, RejectsNonPositiveInterval) {
  EXPECT_THROW(AlternatingDelay(0.0), std::logic_error);
}

}  // namespace
}  // namespace stclock
