#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "adversary/delay_policies.h"
#include "sim/simulator.h"
#include "sim/topology_schedule.h"

/// The TopologySchedule subsystem: compile semantics (epoch grouping, strict
/// mutation checking, connectivity queries), the simulator's epoch-switch
/// machinery (a single-epoch schedule is bit-identical to no schedule;
/// traffic at time t rides the graph live at t), and the CutDelay rewrite
/// over the same machinery.
namespace stclock {
namespace {

std::shared_ptr<const Topology> make_ring(std::uint32_t n) {
  return std::make_shared<const Topology>(Topology::ring(n));
}

TEST(TopologySchedule, EmptyScheduleCompilesToOneBaseEpoch) {
  const auto base = make_ring(5);
  const CompiledTopologySchedule compiled = TopologySchedule{}.compile(base);
  ASSERT_EQ(compiled.epoch_count(), 1u);
  EXPECT_EQ(compiled.epoch_start(0), 0.0);
  EXPECT_EQ(compiled.epoch_graph(0).get(), base.get());  // the very same object
  EXPECT_EQ(compiled.epoch_at(123.0), 0u);
  EXPECT_EQ(compiled.first_disconnected_epoch(), CompiledTopologySchedule::kAllConnected);
}

TEST(TopologySchedule, EdgeEventsSnapshotPerDistinctTime) {
  const auto base = make_ring(5);
  TopologySchedule schedule;
  // Two events at t=2 form ONE epoch: the ring loses {0,1} and gains the
  // {0,2} chord atomically; t=4 heals the original edge.
  schedule.remove_edge(2.0, 0, 1).add_edge(2.0, 0, 2).add_edge(4.0, 1, 0);
  const CompiledTopologySchedule compiled = schedule.compile(base);

  ASSERT_EQ(compiled.epoch_count(), 3u);
  EXPECT_EQ(compiled.epoch_start(1), 2.0);
  EXPECT_EQ(compiled.epoch_start(2), 4.0);

  EXPECT_TRUE(compiled.adjacent_at(1.9, 0, 1));
  EXPECT_FALSE(compiled.adjacent_at(1.9, 0, 2));
  // Boundary times belong to the NEW epoch ([start, next) windows).
  EXPECT_FALSE(compiled.adjacent_at(2.0, 0, 1));
  EXPECT_TRUE(compiled.adjacent_at(2.0, 0, 2));
  EXPECT_TRUE(compiled.adjacent_at(4.0, 0, 1));
  EXPECT_TRUE(compiled.adjacent_at(4.0, 0, 2));  // the chord persists
  EXPECT_EQ(compiled.graph_at(5.0).edge_count(), 6u);
  EXPECT_EQ(compiled.n(), 5u);
}

TEST(TopologySchedule, SetGraphReplacesTheWholeTopology) {
  const auto base = make_ring(6);
  TopologySchedule schedule;
  schedule.set_graph(3.0, std::make_shared<const Topology>(Topology::star(6)));
  schedule.remove_edge(5.0, 0, 3);  // valid against the NEW star graph
  const CompiledTopologySchedule compiled = schedule.compile(base);

  ASSERT_EQ(compiled.epoch_count(), 3u);
  EXPECT_TRUE(compiled.adjacent_at(1.0, 2, 3));   // ring edge
  EXPECT_FALSE(compiled.adjacent_at(3.5, 2, 3));  // star: spokes unlinked
  EXPECT_TRUE(compiled.adjacent_at(3.5, 0, 3));   // hub link
  EXPECT_FALSE(compiled.adjacent_at(5.0, 0, 3));  // removed
  // The last epoch orphaned node 3 — visible to the connectivity query.
  EXPECT_EQ(compiled.first_disconnected_epoch(), 2u);
}

TEST(TopologySchedule, CompileRejectsInvalidSchedules) {
  const auto base = make_ring(5);
  const auto compile = [&base](const TopologySchedule& s) { (void)s.compile(base); };

  EXPECT_THROW(compile(TopologySchedule{}.add_edge(0.0, 0, 2)), std::logic_error);
  EXPECT_THROW(compile(TopologySchedule{}.add_edge(-1.0, 0, 2)), std::logic_error);
  // Unordered times.
  EXPECT_THROW(compile(TopologySchedule{}.add_edge(5.0, 0, 2).remove_edge(3.0, 0, 1)),
               std::logic_error);
  // Endpoint range / self-loop.
  EXPECT_THROW(compile(TopologySchedule{}.add_edge(1.0, 0, 9)), std::logic_error);
  EXPECT_THROW(compile(TopologySchedule{}.add_edge(1.0, 2, 2)), std::logic_error);
  // Adding a present link / removing an absent one.
  EXPECT_THROW(compile(TopologySchedule{}.add_edge(1.0, 0, 1)), std::logic_error);
  EXPECT_THROW(compile(TopologySchedule{}.remove_edge(1.0, 0, 2)), std::logic_error);
  // Replacement graph of the wrong size.
  EXPECT_THROW(compile(TopologySchedule{}.set_graph(1.0, make_ring(4))), std::logic_error);
}

// --- Simulator integration ---------------------------------------------------

/// Broadcasts every simulated second and records who it hears.
class ChatterProcess final : public Process {
 public:
  void on_start(Context& ctx) override { (void)ctx.set_timer_at_hardware(1.0); }
  void on_timer(Context& ctx, TimerId) override {
    ctx.broadcast(Message(InitMsg{1}));
    (void)ctx.set_timer_at_hardware(ctx.hardware_now() + 1.0);
  }
  void on_message(Context&, NodeId from, const Message&) override {
    heard_from.insert(from);
  }

  std::set<NodeId> heard_from;
};

struct Fleet {
  std::unique_ptr<Simulator> sim;
  std::vector<ChatterProcess*> procs;
};

Fleet build_fleet(std::uint32_t n, std::shared_ptr<const Topology> topo,
                  std::shared_ptr<const CompiledTopologySchedule> schedule,
                  std::uint64_t seed) {
  SimParams params;
  params.n = n;
  params.tdel = 0.01;
  params.seed = seed;
  params.topology = std::move(topo);
  params.schedule = std::move(schedule);
  std::vector<HardwareClock> clocks;
  for (std::uint32_t i = 0; i < n; ++i) clocks.emplace_back(0.0, 1.0);
  Fleet fleet;
  fleet.sim = std::make_unique<Simulator>(params, std::move(clocks),
                                          std::make_unique<UniformDelay>(0.0, 1.0), nullptr);
  for (NodeId id = 0; id < n; ++id) {
    auto proc = std::make_unique<ChatterProcess>();
    fleet.procs.push_back(proc.get());
    fleet.sim->set_process(id, std::move(proc));
  }
  return fleet;
}

TEST(ScheduledSimulator, SingleEpochScheduleIsBitIdenticalToNoSchedule) {
  // The zero-event contract at the substrate level: installing the compiled
  // form of an EMPTY schedule must not perturb a single event — no epoch
  // timers, same RNG draws, same counters, same deliveries.
  const auto ring = make_ring(6);
  const auto compiled =
      std::make_shared<const CompiledTopologySchedule>(TopologySchedule{}.compile(ring));
  Fleet plain = build_fleet(6, ring, nullptr, 99);
  Fleet scheduled = build_fleet(6, ring, compiled, 99);
  plain.sim->run_until(5.0);
  scheduled.sim->run_until(5.0);

  EXPECT_EQ(plain.sim->events_dispatched(), scheduled.sim->events_dispatched());
  EXPECT_EQ(plain.sim->counters().total_sent(), scheduled.sim->counters().total_sent());
  EXPECT_EQ(plain.sim->counters().total_bytes(), scheduled.sim->counters().total_bytes());
  EXPECT_EQ(plain.sim->messages_dropped(), scheduled.sim->messages_dropped());
  EXPECT_EQ(scheduled.sim->topology_epoch(), 0u);
  for (NodeId id = 0; id < 6; ++id) {
    EXPECT_EQ(plain.procs[id]->heard_from, scheduled.procs[id]->heard_from);
  }
}

TEST(ScheduledSimulator, BroadcastsRideTheGraphLiveAtSendTime) {
  // Ring of 4; at t=2.5 the {0,1} edge fails and a {0,2} chord appears.
  // Before the switch node 0 hears {self, 1, 3}; after it, {self, 2, 3}.
  const auto ring = make_ring(4);
  TopologySchedule schedule;
  schedule.remove_edge(2.5, 0, 1).add_edge(2.5, 0, 2);
  const auto compiled =
      std::make_shared<const CompiledTopologySchedule>(schedule.compile(ring));

  Fleet early = build_fleet(4, ring, compiled, 5);
  // Two exchanges, all pre-switch (the extra 0.2 drains in-flight
  // deliveries — they may trail a broadcast by up to tdel).
  early.sim->run_until(2.2);
  EXPECT_EQ(early.sim->topology_epoch(), 0u);
  EXPECT_EQ(early.procs[0]->heard_from, (std::set<NodeId>{0, 1, 3}));
  EXPECT_EQ(early.procs[2]->heard_from, (std::set<NodeId>{1, 2, 3}));

  early.procs[0]->heard_from.clear();
  early.procs[2]->heard_from.clear();
  early.sim->run_until(4.0);  // two more exchanges, all post-switch
  EXPECT_EQ(early.sim->topology_epoch(), 1u);
  EXPECT_EQ(early.sim->current_topology()->edge_count(), 4u);
  EXPECT_EQ(early.procs[0]->heard_from, (std::set<NodeId>{0, 2, 3}));
  EXPECT_EQ(early.procs[2]->heard_from, (std::set<NodeId>{0, 1, 2, 3}));
}

TEST(ScheduledSimulator, UnicastsCheckTheLiveGraphAndCountDrops) {
  /// Node 0 unicasts to node 1 every second; the link dies at t=2.5.
  class DirectedSender final : public Process {
   public:
    void on_start(Context& ctx) override { (void)ctx.set_timer_at_hardware(1.0); }
    void on_timer(Context& ctx, TimerId) override {
      if (ctx.self() == 0) ctx.send(1, Message(InitMsg{1}));
      (void)ctx.set_timer_at_hardware(ctx.hardware_now() + 1.0);
    }
    void on_message(Context&, NodeId, const Message&) override { ++received; }
    int received = 0;
  };

  const auto ring = make_ring(4);
  TopologySchedule schedule;
  schedule.remove_edge(2.5, 0, 1).add_edge(2.5, 0, 2);
  SimParams params;
  params.n = 4;
  params.tdel = 0.01;
  params.seed = 3;
  params.topology = ring;
  params.schedule = std::make_shared<const CompiledTopologySchedule>(schedule.compile(ring));
  std::vector<HardwareClock> clocks;
  for (int i = 0; i < 4; ++i) clocks.emplace_back(0.0, 1.0);
  Simulator sim(params, std::move(clocks), std::make_unique<FixedDelay>(0.5), nullptr);
  std::vector<DirectedSender*> procs;
  for (NodeId id = 0; id < 4; ++id) {
    auto proc = std::make_unique<DirectedSender>();
    procs.push_back(proc.get());
    sim.set_process(id, std::move(proc));
  }
  sim.run_until(4.5);

  // Sends at t=1 and t=2 ride the live link; t=3 and t=4 have none.
  EXPECT_EQ(procs[1]->received, 2);
  EXPECT_EQ(sim.messages_dropped(), 2u);
}

TEST(ScheduledSimulator, ScheduleMustMatchTheInstalledTopology) {
  const auto ring = make_ring(4);
  const auto other = make_ring(4);
  const auto compiled =
      std::make_shared<const CompiledTopologySchedule>(TopologySchedule{}.compile(other));
  SimParams params;
  params.n = 4;
  params.tdel = 0.01;
  params.topology = ring;
  params.schedule = compiled;  // compiled against a DIFFERENT object
  std::vector<HardwareClock> clocks;
  for (int i = 0; i < 4; ++i) clocks.emplace_back(0.0, 1.0);
  EXPECT_THROW(
      Simulator(params, std::move(clocks), std::make_unique<FixedDelay>(0.5), nullptr),
      std::logic_error);
}

// --- CutDelay over the compiled schedule ------------------------------------

TEST(CutDelaySchedule, DropsExactlyCrossCutTrafficInsideTheWindow) {
  // Nodes {0, 1} vs {2, 3}, window [2, 4). The policy compiles its cut as a
  // topology schedule; behavior must match the membership formulation.
  CutDelay cut({true, true}, 2.0, 4.0, std::make_unique<FixedDelay>(0.5));
  const Topology topo = Topology::complete(4);
  cut.on_topology(topo);
  Rng rng(1);

  EXPECT_EQ(cut.delay(0, 2, 1.0, 0.01, rng), 0.005);            // before the window
  EXPECT_EQ(cut.delay(0, 2, 2.0, 0.01, rng), kDropMessage);     // cross, inside
  EXPECT_EQ(cut.delay(3, 1, 3.9, 0.01, rng), kDropMessage);     // cross, inside
  EXPECT_EQ(cut.delay(0, 1, 3.0, 0.01, rng), 0.005);            // same side A
  EXPECT_EQ(cut.delay(2, 3, 3.0, 0.01, rng), 0.005);            // same side B
  EXPECT_EQ(cut.delay(0, 2, 4.0, 0.01, rng), 0.005);            // healed
}

TEST(CutDelaySchedule, WindowOpenFromTimeZeroIsTheBaseEpoch) {
  CutDelay cut({true}, 0.0, 2.0, std::make_unique<FixedDelay>(0.0));
  cut.on_topology(Topology::complete(3));
  Rng rng(1);
  EXPECT_EQ(cut.delay(0, 1, 0.0, 0.01, rng), kDropMessage);
  EXPECT_EQ(cut.delay(1, 2, 1.0, 0.01, rng), 0.0);  // same side B
  EXPECT_EQ(cut.delay(0, 1, 2.0, 0.01, rng), 0.0);  // healed
}

TEST(CutDelaySchedule, RequiresTheTopologyBeforeTraffic) {
  CutDelay cut({true}, 1.0, 2.0, std::make_unique<FixedDelay>(0.0));
  Rng rng(1);
  EXPECT_THROW((void)cut.delay(0, 1, 0.5, 0.01, rng), std::logic_error);
}

}  // namespace
}  // namespace stclock
