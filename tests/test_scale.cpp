#include <gtest/gtest.h>

#include <cstdint>

#include "sim/topology.h"

/// Scale guarantees of the sparse-first topology representation. The old
/// n x n bitset cost n^2/8 bytes no matter how sparse the graph — 1.25 GB
/// for a ring at n = 10^5, which is why million-node sweeps were impossible.
/// CSR stores O(n + E): these tests pin hard memory ceilings at n = 10^5 so
/// a representation regression fails loudly instead of silently OOMing the
/// scale sweeps.
namespace stclock {
namespace {

constexpr std::uint32_t kN = 100000;

TEST(TopologyScale, RingAtHundredThousandNodesStaysUnderThreeMegabytes) {
  const Topology topo = Topology::ring(kN);
  EXPECT_EQ(topo.edge_count(), kN);
  EXPECT_TRUE(topo.is_connected());
  // CSR: (n + 1) 8-byte offsets + 2E 4-byte neighbor ids ~ 1.6 MB. The old
  // bitset alone would have been 1.25 GB.
  EXPECT_LT(topo.memory_bytes(), 3u << 20);
}

TEST(TopologyScale, TorusAtHundredThousandNodesStaysUnderFiveMegabytes) {
  const Topology topo = Topology::torus(kN);  // 100000 = 250 x 400
  EXPECT_EQ(topo.edge_count(), 2u * kN);
  EXPECT_TRUE(topo.is_connected());
  for (NodeId id = 0; id < kN; id += 9973) EXPECT_EQ(topo.degree(id), 4u);
  EXPECT_LT(topo.memory_bytes(), 5u << 20);
}

TEST(TopologyScale, SparseGnpAtHundredThousandNodesStaysUnderTenMegabytes) {
  // p = 2e-4 over ~5e9 pairs: ~1e6 expected edges. The geometric-skipping
  // generator touches only present edges, so this builds in milliseconds
  // where the per-pair walk would draw five billion bernoullis.
  const Topology topo = Topology::gnp(kN, 2e-4, 17);
  const double expected = 2e-4 * (static_cast<double>(kN) * (kN - 1) / 2.0);
  EXPECT_GT(static_cast<double>(topo.edge_count()), 0.9 * expected);
  EXPECT_LT(static_cast<double>(topo.edge_count()), 1.1 * expected);
  EXPECT_LT(topo.memory_bytes(), 10u << 20);
}

TEST(TopologyScale, CompleteStoresNoAdjacencyAtAll) {
  // Complete graphs answer adjacent()/neighbors() implicitly; at any n the
  // representation is a couple of scalars.
  const Topology topo = Topology::complete(1000000);
  EXPECT_EQ(topo.edge_count(), 1000000ull * 999999ull / 2);
  EXPECT_TRUE(topo.adjacent(0, 999999));
  EXPECT_FALSE(topo.adjacent(42, 42));
  EXPECT_EQ(topo.degree(7), 999999u);
  EXPECT_LT(topo.memory_bytes(), 1024u);
}

TEST(TopologyScale, SmallGraphsKeepTheBitsetFastPath) {
  // Below the threshold adjacent() stays an O(1) bit probe; the bitset for
  // n <= 2048 costs at most 512 KB and the golden graphs all live here.
  const Topology topo = Topology::ring(2048);
  EXPECT_TRUE(topo.adjacent(0, 1));
  EXPECT_TRUE(topo.adjacent(0, 2047));
  EXPECT_FALSE(topo.adjacent(0, 1024));
  EXPECT_LT(topo.memory_bytes(), 1u << 20);
}

TEST(TopologyScale, GnpFastPathIsAPureFunctionOfItsSeed) {
  const Topology a = Topology::gnp(5000, 1e-3, 23);
  const Topology b = Topology::gnp(5000, 1e-3, 23);
  const Topology c = Topology::gnp(5000, 1e-3, 24);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (NodeId id = 0; id < 5000; id += 13) {
    ASSERT_EQ(a.neighbor_list(id), b.neighbor_list(id)) << "node " << id;
  }
  EXPECT_NE(a.edge_count(), c.edge_count());  // ~12.5k expected edges: a
                                              // collision is astronomically
                                              // unlikely
}

TEST(TopologyScale, GnpBelowTheFastPathThresholdKeepsTheLegacyMapping) {
  // Graphs below kGnpFastMinN must keep drawing one bernoulli per pair in
  // lexicographic order — the exact mapping every golden gnp row was
  // recorded under. This pins one seeded instance completely; if the
  // generator's small-n branch ever changes, this fails before the golden
  // suite does.
  const Topology topo = Topology::gnp(16, 0.4, 9);
  EXPECT_EQ(topo.edge_count(), 53u);
  EXPECT_EQ(topo.neighbor_list(0), (std::vector<NodeId>{1, 2, 3, 9, 13}));
}

}  // namespace
}  // namespace stclock
