// Experiment T3 — Comparison against prior algorithms.
//
// The paper's evaluation is a comparison-in-prose against contemporaneous
// algorithms; this table turns it into a measurement. All algorithms run on
// the identical substrate (n = 7, f = 2, same drift trajectories, same delay
// policy) in two regimes: benign (crashed faulty nodes) and attacked (each
// algorithm's worst implemented attack) — every cell goes through the one
// scenario engine, selected purely by registry name.
//
// Key columns: steady skew (precision) and the fitted clock rate under
// attack (accuracy). Srikanth–Toueg keeps BOTH bounded; interactive
// convergence keeps agreement but loses accuracy (drift amplification);
// leader sync loses everything to one corrupted leader.

#include "bench_common.h"

namespace stclock {
namespace {

constexpr double kRho = 1e-4;

experiment::ScenarioSpec cell_spec(const std::string& protocol, AttackKind attack,
                                   std::uint64_t seed, double delta = 0.05) {
  SyncConfig cfg = bench::default_auth_config();
  cfg.f = 2;  // match the baselines' f so substrates are identical
  cfg.rho = kRho;
  experiment::ScenarioSpec spec = bench::adversarial_scenario(cfg, 30.0, seed);
  spec.protocol = protocol;
  spec.attack = attack;
  spec.delta = delta;
  if (protocol == "echo") spec.cfg.variant = Variant::kEcho;
  return spec;
}

struct Comparison {
  std::string display;
  std::string benign_protocol;  // registry name for the benign regime
  AttackKind benign_attack;
  std::string attacked_protocol;  // registry name for the attacked regime
  AttackKind attacked_attack;
  double delta;
  std::string guarantee;  // a-priori bound on the attacked rate, if any
  std::string resilience;
};

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header(
      "T3 — Algorithm comparison (identical substrate, n=7, f=2)",
      "ST achieves skew Theta(tdel + rho*P) AND hardware-optimal accuracy at "
      "f < n/2 (auth); averaging baselines amplify drift or lose resilience",
      opts);

  const std::vector<Comparison> comparisons = {
      {"srikanth-toueg-auth", "auth", AttackKind::kCrash, "auth", AttackKind::kSpamEarly,
       0.05, "", "f < n/2"},
      {"srikanth-toueg-echo", "echo", AttackKind::kCrash, "echo", AttackKind::kSpamEarly,
       0.05, "", "f < n/3"},
      {"lundelius-welch", "lundelius_welch", AttackKind::kCrash, "lundelius_welch",
       AttackKind::kLwPull, 0.05, "bounded (f-trim)", "f < n/3"},
      // Two CNV rows with different discard thresholds: the rate excess scales
      // with the attacker-relevant parameter delta — there is no a-priori bound.
      {"interactive-conv d=0.05", "interactive_convergence", AttackKind::kCrash,
       "interactive_convergence", AttackKind::kCnvPull, 0.05, "NONE (grows with delta)",
       "f < n/3 (agreement only)"},
      {"interactive-conv d=0.20", "interactive_convergence", AttackKind::kCrash,
       "interactive_convergence", AttackKind::kCnvPull, 0.2, "NONE (grows with delta)",
       "f < n/3 (agreement only)"},
      {"leader-sync", "leader", AttackKind::kNone, "leader_corrupt", AttackKind::kNone,
       0.05, "NONE (leader-controlled)", "f = 0"},
      {"unsynchronized", "unsynchronized", AttackKind::kNone, "unsynchronized",
       AttackKind::kNone, 0.05, "hardware envelope", "-"},
  };

  // One flat cell list — benign and attacked regimes interleaved — so the
  // whole comparison runs through a single (parallel) sweep.
  std::vector<experiment::SweepCell> cells;
  for (const Comparison& c : comparisons) {
    experiment::SweepCell benign;
    benign.index = cells.size();
    benign.labels = {{"algorithm", c.display}, {"regime", "benign"}};
    benign.spec = cell_spec(c.benign_protocol, c.benign_attack, opts.seed, c.delta);
    cells.push_back(std::move(benign));

    experiment::SweepCell attacked;
    attacked.index = cells.size();
    attacked.labels = {{"algorithm", c.display}, {"regime", "attacked"}};
    attacked.spec = cell_spec(c.attacked_protocol, c.attacked_attack, opts.seed, c.delta);
    cells.push_back(std::move(attacked));
  }

  const std::vector<experiment::ScenarioResult> results = bench::run_cells(cells, opts);
  if (bench::emit_json(cells, results, opts)) return 0;

  Table table({"algorithm", "skew benign(s)", "skew attacked(s)", "rate attacked",
               "rate guarantee", "msgs/round", "resilience"});
  for (std::size_t i = 0; i < comparisons.size(); ++i) {
    const Comparison& c = comparisons[i];
    const experiment::ScenarioResult& benign = results[2 * i];
    const experiment::ScenarioResult& attacked = results[2 * i + 1];
    const double rounds = attacked.rounds_completed > 0
                              ? static_cast<double>(attacked.rounds_completed)
                              : cells[2 * i + 1].spec.horizon / cells[2 * i + 1].spec.cfg.period;
    std::string guarantee = c.guarantee.empty()
                                ? "<= " + Table::num(attacked.bounds.rate_hi, 6)
                                : c.guarantee;
    // The free-running control: skew only ever grows, and its rate envelope
    // IS the hardware envelope.
    const bool unsync = c.display == "unsynchronized";
    const double msgs_per_round =
        unsync ? 0.0
               : static_cast<double>((c.display == "leader-sync" ? benign : attacked)
                                         .messages_sent) /
                     rounds;
    table.add_row({c.display, Table::sci(unsync ? benign.max_skew : benign.steady_skew),
                   Table::sci(unsync ? attacked.max_skew : attacked.steady_skew),
                   Table::num(unsync ? 1.0 + kRho : attacked.envelope.max_rate, 6),
                   guarantee, Table::num(msgs_per_round, 0), c.resilience});
  }
  stclock::bench::emit(table, opts);
  std::cout << "(hardware rate max = " << Table::num(1.0 + kRho, 6) << ".\n"
            << " ST's attacked rate sits at its fixed a-priori ceiling\n"
            << " (1+rho)*P/(P-alpha) = 1 + O(tdel/P), which vanishes as P grows.\n"
            << " CNV's excess is attacker-scalable: compare the d=0.05 and d=0.20\n"
            << " rows — doubling the threshold doubles the drift amplification,\n"
            << " and no choice of hardware quality or period bounds it a priori.)\n";
  return 0;
}
