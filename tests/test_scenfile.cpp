#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/sinks.h"
#include "experiment/sweep.h"
#include "scenfile/scenfile.h"

/// Positive-path tests for the scenario-file layer: a JSON grid must be
/// exactly equivalent to the same grid written in C++ — same cells, same
/// labels, same sink bytes — and sharding a grid with --cells semantics then
/// merging the dumps must reproduce the unsharded dump byte for byte.
namespace stclock::scenfile {
namespace {

using experiment::ScenarioResult;
using experiment::ScenarioSpec;
using experiment::SweepCell;
using experiment::SweepGrid;
using experiment::SweepRunner;

constexpr const char* kGridText = R"({
  "base": {
    "protocol": "auth",
    "n": 5,
    "f": 1,
    "rho": 0.0001,
    "tdel": 0.01,
    "period": 1.0,
    "initial_sync": 0.005,
    "seed": 3,
    "horizon": 6.0,
    "drift": "rand-const",
    "delay": "uniform"
  },
  "axes": [
    {"name": "protocol", "values": ["auth", "unsynchronized"]},
    {"name": "seed", "values": [1, 2, 3]}
  ]
})";

ScenarioSpec compiled_base() {
  ScenarioSpec spec;
  spec.protocol = "auth";
  spec.cfg.n = 5;
  spec.cfg.f = 1;
  spec.cfg.rho = 0.0001;
  spec.cfg.tdel = 0.01;
  spec.cfg.period = 1.0;
  spec.cfg.initial_sync = 0.005;
  spec.seed = 3;
  spec.horizon = 6.0;
  spec.drift = DriftKind::kRandomConstant;
  spec.delay = DelayKind::kUniform;
  return spec;
}

SweepGrid compiled_grid() {
  SweepGrid grid(compiled_base());
  grid.protocols({"auth", "unsynchronized"});
  std::vector<SweepGrid::Value> seeds;
  for (const std::uint64_t s : {1, 2, 3}) {
    seeds.emplace_back(std::to_string(s),
                       [s](ScenarioSpec& spec) { spec.seed = s; });
  }
  grid.axis("seed", std::move(seeds));
  return grid;
}

TEST(ScenfileGrid, CellsMatchTheEquivalentCompiledGrid) {
  const std::vector<SweepCell> parsed = parse_grid(kGridText).cells();
  const std::vector<SweepCell> compiled = compiled_grid().cells();
  ASSERT_EQ(parsed.size(), compiled.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(parsed[i].index, compiled[i].index);
    EXPECT_EQ(parsed[i].labels, compiled[i].labels);
    EXPECT_EQ(parsed[i].spec.protocol, compiled[i].spec.protocol);
    EXPECT_EQ(parsed[i].spec.seed, compiled[i].spec.seed);
    EXPECT_EQ(parsed[i].spec.cfg.n, compiled[i].spec.cfg.n);
    EXPECT_EQ(parsed[i].spec.drift, compiled[i].spec.drift);
  }
}

TEST(ScenfileGrid, SinkDumpsMatchTheEquivalentCompiledGridByteForByte) {
  // The acceptance bar of the scenario-file layer: running a file-defined
  // grid must reproduce the compiled-in grid's CSV and JSON exactly.
  const std::vector<SweepCell> parsed = parse_grid(kGridText).cells();
  const std::vector<SweepCell> compiled = compiled_grid().cells();
  const std::vector<ScenarioResult> parsed_results = SweepRunner(2).run(parsed);
  const std::vector<ScenarioResult> compiled_results = SweepRunner(1).run(compiled);

  std::ostringstream json_a, json_b, csv_a, csv_b;
  experiment::write_json(json_a, parsed, parsed_results);
  experiment::write_json(json_b, compiled, compiled_results);
  experiment::write_csv(csv_a, parsed, parsed_results);
  experiment::write_csv(csv_b, compiled, compiled_results);
  EXPECT_EQ(json_a.str(), json_b.str());
  EXPECT_EQ(csv_a.str(), csv_b.str());
}

TEST(ScenfileGrid, ShardedRunsMergeByteIdenticalToUnsharded) {
  const std::vector<SweepCell> cells = parse_grid(kGridText).cells();
  ASSERT_EQ(cells.size(), 6u);
  const std::vector<ScenarioResult> results = SweepRunner(2).run(cells);

  std::ostringstream full_json, full_csv;
  experiment::write_json(full_json, cells, results);
  experiment::write_csv(full_csv, cells, results);

  // Shard as scenrun --cells does: slice the cell list, keep global indices.
  const auto dump_shard = [&cells, &results](std::size_t lo, std::size_t hi, bool json) {
    const std::vector<SweepCell> shard_cells(cells.begin() + static_cast<std::ptrdiff_t>(lo),
                                             cells.begin() + static_cast<std::ptrdiff_t>(hi));
    const std::vector<ScenarioResult> shard_results(
        results.begin() + static_cast<std::ptrdiff_t>(lo),
        results.begin() + static_cast<std::ptrdiff_t>(hi));
    std::ostringstream os;
    if (json) {
      experiment::write_json(os, shard_cells, shard_results);
    } else {
      experiment::write_csv(os, shard_cells, shard_results);
    }
    return os.str();
  };

  // Merge out of order to prove the merge sorts by global cell index.
  EXPECT_EQ(merge_json_sinks({dump_shard(4, 6, true), dump_shard(0, 4, true)}),
            full_json.str());
  EXPECT_EQ(merge_csv_sinks({dump_shard(4, 6, false), dump_shard(0, 4, false)}),
            full_csv.str());
}

TEST(ScenfileGrid, MergeRejectsDuplicateCells) {
  const std::vector<SweepCell> cells = parse_grid(kGridText).cells();
  const std::vector<ScenarioResult> results = SweepRunner(2).run(cells);
  std::ostringstream os;
  experiment::write_json(os, cells, results);
  EXPECT_THROW((void)merge_json_sinks({os.str(), os.str()}), ScenarioFileError);
}

TEST(ScenfileSpec, JsonRoundTripPreservesEveryField) {
  ScenarioSpec spec;
  spec.protocol = "echo";
  spec.cfg.n = 10;
  spec.cfg.f = 3;
  spec.cfg.rho = 1.25e-3;
  spec.cfg.tdel = 0.0125;
  spec.cfg.period = 1.5;
  spec.cfg.alpha = 0.04;
  spec.cfg.initial_sync = 0.006;
  spec.cfg.allow_unsynchronized_start = true;
  spec.cfg.adjust = AdjustMode::kAmortized;
  spec.cfg.amortize_window = 0.25;
  spec.delta = 0.075;
  spec.seed = 0xDEADBEEFCAFEBABEULL;  // needs all 64 bits to survive
  spec.horizon = 17.5;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kAlternating;
  spec.attack = AttackKind::kSleeper;
  spec.topology = TopologyKind::kGnp;
  spec.gnp_p = 0.8125;
  spec.topology_seed = 0xFEEDFACE12345678ULL;
  spec.expander_k = 12;
  spec.broadcast_mode = BroadcastMode::kSampled;
  spec.sample_size = 5;
  spec.joiners = 2;
  spec.join_time = 7.25;
  spec.corrupt_override = 1;
  spec.churn_nodes = 1;
  spec.churn_leave = 3.125;
  spec.churn_rejoin = 9.875;
  spec.partition_group = 4;
  spec.partition_start = 2.5;
  spec.partition_end = 5.5;
  spec.skew_series_interval = 0.025;
  spec.envelope_interval = 0.125;

  const ScenarioSpec back = parse_spec(spec_to_json(spec));
  EXPECT_EQ(back.protocol, spec.protocol);
  EXPECT_EQ(back.cfg.n, spec.cfg.n);
  EXPECT_EQ(back.cfg.f, spec.cfg.f);
  EXPECT_EQ(back.cfg.rho, spec.cfg.rho);
  EXPECT_EQ(back.cfg.tdel, spec.cfg.tdel);
  EXPECT_EQ(back.cfg.period, spec.cfg.period);
  EXPECT_EQ(back.cfg.alpha, spec.cfg.alpha);
  EXPECT_EQ(back.cfg.initial_sync, spec.cfg.initial_sync);
  EXPECT_EQ(back.cfg.allow_unsynchronized_start, spec.cfg.allow_unsynchronized_start);
  EXPECT_EQ(back.cfg.adjust, spec.cfg.adjust);
  EXPECT_EQ(back.cfg.amortize_window, spec.cfg.amortize_window);
  EXPECT_EQ(back.delta, spec.delta);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.horizon, spec.horizon);
  EXPECT_EQ(back.drift, spec.drift);
  EXPECT_EQ(back.delay, spec.delay);
  EXPECT_EQ(back.attack, spec.attack);
  EXPECT_EQ(back.topology, spec.topology);
  EXPECT_EQ(back.gnp_p, spec.gnp_p);
  EXPECT_EQ(back.topology_seed, spec.topology_seed);
  EXPECT_EQ(back.expander_k, spec.expander_k);
  EXPECT_EQ(back.broadcast_mode, spec.broadcast_mode);
  EXPECT_EQ(back.sample_size, spec.sample_size);
  EXPECT_EQ(back.joiners, spec.joiners);
  EXPECT_EQ(back.join_time, spec.join_time);
  EXPECT_EQ(back.corrupt_override, spec.corrupt_override);
  EXPECT_EQ(back.churn_nodes, spec.churn_nodes);
  EXPECT_EQ(back.churn_leave, spec.churn_leave);
  EXPECT_EQ(back.churn_rejoin, spec.churn_rejoin);
  EXPECT_EQ(back.partition_group, spec.partition_group);
  EXPECT_EQ(back.partition_start, spec.partition_start);
  EXPECT_EQ(back.partition_end, spec.partition_end);
  EXPECT_EQ(back.skew_series_interval, spec.skew_series_interval);
  EXPECT_EQ(back.envelope_interval, spec.envelope_interval);
}

TEST(ScenfileCellRange, ParsesHalfOpenGlobalRanges) {
  EXPECT_EQ(parse_cell_range("0:4", 8), (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(parse_cell_range("4:8", 8), (std::pair<std::size_t, std::size_t>{4, 8}));
  EXPECT_THROW((void)parse_cell_range("4:4", 8), ScenarioFileError);   // empty
  EXPECT_THROW((void)parse_cell_range("5:3", 8), ScenarioFileError);   // reversed
  EXPECT_THROW((void)parse_cell_range("0:9", 8), ScenarioFileError);   // past the end
  EXPECT_THROW((void)parse_cell_range("0-4", 8), ScenarioFileError);   // wrong separator
  EXPECT_THROW((void)parse_cell_range("a:b", 8), ScenarioFileError);   // not numbers
}

TEST(ScenfileExamples, CheckedInGridsLoadAndDescribeTheNewWorkloads) {
  const std::string dir = std::string(STCLOCK_SOURCE_DIR) + "/examples/scenarios/";

  const std::vector<SweepCell> churn = load_grid_file(dir + "churn_grid.json").cells();
  ASSERT_EQ(churn.size(), 6u);
  for (const SweepCell& cell : churn) {
    EXPECT_EQ(cell.spec.churn_nodes, 2u);
    EXPECT_LT(cell.spec.churn_leave, cell.spec.churn_rejoin);
  }

  const std::vector<SweepCell> partition =
      load_grid_file(dir + "partition_heal_grid.json").cells();
  ASSERT_EQ(partition.size(), 12u);
  for (const SweepCell& cell : partition) {
    EXPECT_GT(cell.spec.partition_group, 0u);
    EXPECT_LT(cell.spec.partition_start, cell.spec.partition_end);
  }

  const std::vector<SweepCell> topo =
      load_grid_file(dir + "ring_vs_complete_grid.json").cells();
  ASSERT_EQ(topo.size(), 8u);
  EXPECT_EQ(topo.front().spec.topology, TopologyKind::kComplete);
  EXPECT_EQ(topo.back().spec.topology, TopologyKind::kGnp);
}

TEST(ScenfileExamples, TopologyGridCellReportsLocalSkew) {
  const std::string dir = std::string(STCLOCK_SOURCE_DIR) + "/examples/scenarios/";
  const std::vector<SweepCell> cells =
      load_grid_file(dir + "ring_vs_complete_grid.json").cells();
  // A ring cell: local skew is a genuine (<=) refinement of the global
  // spread, and it lands in the sink columns.
  const SweepCell* ring = nullptr;
  for (const SweepCell& cell : cells) {
    if (cell.spec.topology == TopologyKind::kRing) ring = &cell;
  }
  ASSERT_NE(ring, nullptr);
  const ScenarioResult r = experiment::run_scenario(ring->spec);
  EXPECT_GT(r.local_skew, 0.0);
  EXPECT_LE(r.local_skew, r.max_skew);

  std::ostringstream csv;
  experiment::write_csv(csv, {*ring}, {r});
  EXPECT_NE(csv.str().find("local_skew"), std::string::npos);
  EXPECT_NE(csv.str().find(",ring,"), std::string::npos);
}

TEST(ScenfileExamples, ChurnGridCellRunsAndReintegrates) {
  const std::string dir = std::string(STCLOCK_SOURCE_DIR) + "/examples/scenarios/";
  const std::vector<SweepCell> cells = load_grid_file(dir + "churn_grid.json").cells();
  const ScenarioResult r = experiment::run_scenario(cells.front().spec);
  EXPECT_TRUE(r.churned_rejoined);
  EXPECT_GE(r.rejoin_latency, 0.0);
  EXPECT_TRUE(r.live);
}

TEST(ScenfileExamples, PartitionGridCellRunsAndDropsCrossCutTraffic) {
  const std::string dir = std::string(STCLOCK_SOURCE_DIR) + "/examples/scenarios/";
  const std::vector<SweepCell> cells = load_grid_file(dir + "partition_heal_grid.json").cells();
  const ScenarioResult r = experiment::run_scenario(cells.front().spec);
  EXPECT_GT(r.messages_dropped, 0u);
  EXPECT_GT(r.events_dispatched, 0u);
}

}  // namespace
}  // namespace stclock::scenfile
