#pragma once

#include <string>

/// Identity of the scenario engine, for cache keys and version reporting.
///
/// A result store entry is only reusable if the engine that produced it
/// would reproduce it bit for bit. Two things can break that: a semantic
/// change to the engine (new metric, changed event ordering, protocol fix)
/// and a build-configuration change that alters floating-point behaviour.
/// Both are folded into one opaque `engine_fingerprint()` string that every
/// cache key includes, so stale hits across engine revisions or rebuilds
/// with different compilers are structurally impossible — the key simply
/// never matches.
namespace stclock::experiment {

/// Semantic engine version. BUMP THIS whenever a change can alter any
/// ScenarioResult field for some spec (engine event ordering, metric
/// definitions, protocol behaviour, RNG derivation). Purely additive
/// changes that cannot affect existing results do not need a bump.
inline constexpr const char* kEngineVersion = "stclock-engine/10.0";

/// Build-configuration facts that can change numeric results without any
/// source change: compiler identity, optimization/NDEBUG mode, and the
/// floating-point evaluation method. Returned as a readable key=value list.
[[nodiscard]] std::string engine_build_salt();

/// "<kEngineVersion>+<digest of engine_build_salt()>": the string folded
/// into every resultstore cache key, and what `scenrun --version` prints.
[[nodiscard]] const std::string& engine_fingerprint();

}  // namespace stclock::experiment
