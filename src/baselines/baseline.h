#pragma once

#include <functional>
#include <memory>

#include "core/runner.h"
#include "sim/process.h"
#include "trace/envelope.h"

/// Shared harness for the baseline algorithms (prior work the paper compares
/// against). Baselines run on exactly the same substrate — clocks, delays,
/// adversary model — as the Srikanth–Toueg protocol, so comparison tables
/// measure algorithms, not harness differences.
namespace stclock::baselines {

struct BaselineSpec {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  double rho = 1e-4;
  Duration tdel = 0.01;
  Duration period = 1.0;
  /// CNV discard threshold (also reused to size collection windows).
  Duration delta = 0.05;
  Duration initial_sync = 0.005;

  std::uint64_t seed = 1;
  RealTime horizon = 30.0;
  DriftKind drift = DriftKind::kRandomWalk;
  DelayKind delay = DelayKind::kUniform;
  AttackKind attack = AttackKind::kNone;
};

struct BaselineResult {
  double max_skew = 0;
  double steady_skew = 0;
  EnvelopeTracker::Report envelope;  ///< vs the hardware slopes 1/(1+rho), 1+rho
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
};

/// Builds the common simulation, instantiates one honest process per honest
/// node via `factory(id)`, installs the spec's attack against the baseline,
/// runs, and reports. Corrupted nodes take the highest ids.
[[nodiscard]] BaselineResult run_baseline(
    const BaselineSpec& spec, const std::function<std::unique_ptr<Process>(NodeId)>& factory);

}  // namespace stclock::baselines
