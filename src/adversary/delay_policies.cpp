#include "adversary/delay_policies.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace stclock {

SplitDelay::SplitDelay(std::vector<NodeId> slow_targets) : slow_(std::move(slow_targets)) {
  std::sort(slow_.begin(), slow_.end());
}

Duration SplitDelay::delay(NodeId /*from*/, NodeId to, RealTime /*now*/, Duration tdel,
                           Rng& /*rng*/) {
  return std::binary_search(slow_.begin(), slow_.end(), to) ? tdel : 0.0;
}

AlternatingDelay::AlternatingDelay(Duration interval) : interval_(interval) {
  ST_REQUIRE(interval > 0, "AlternatingDelay: interval must be positive");
}

Duration AlternatingDelay::delay(NodeId /*from*/, NodeId to, RealTime now, Duration tdel,
                                 Rng& /*rng*/) {
  const auto phase = static_cast<std::uint64_t>(std::floor(now / interval_));
  const bool odd_slow = (phase % 2) == 0;
  const bool to_odd = (to % 2) == 1;
  return (to_odd == odd_slow) ? tdel : 0.0;
}

CutDelay::CutDelay(std::vector<bool> in_side_a, RealTime start, RealTime end,
                   std::unique_ptr<DelayPolicy> base)
    : in_a_(std::move(in_side_a)), start_(start), end_(end), base_(std::move(base)) {
  bool any = false;
  for (const bool member : in_a_) any = any || member;
  ST_REQUIRE(any, "CutDelay: side A must be non-empty");
  ST_REQUIRE(start >= 0 && end > start, "CutDelay: need 0 <= start < end");
  ST_REQUIRE(base_ != nullptr, "CutDelay: base policy required");
}

Duration CutDelay::delay(NodeId from, NodeId to, RealTime now, Duration tdel, Rng& rng) {
  const bool crosses_cut = in_a(from) != in_a(to);
  if (crosses_cut && now >= start_ && now < end_) return kDropMessage;
  return base_->delay(from, to, now, tdel, rng);
}

void CutDelay::on_topology(const Topology& topo) { base_->on_topology(topo); }

PartitionDelay::PartitionDelay(std::uint32_t group_a, RealTime start, RealTime end,
                               std::unique_ptr<DelayPolicy> base)
    : CutDelay(std::vector<bool>(group_a, true), start, end, std::move(base)) {}

}  // namespace stclock
