#include "adversary/delay_policies.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace stclock {

SplitDelay::SplitDelay(std::vector<NodeId> slow_targets) : slow_(std::move(slow_targets)) {
  std::sort(slow_.begin(), slow_.end());
}

Duration SplitDelay::delay(NodeId /*from*/, NodeId to, RealTime /*now*/, Duration tdel,
                           Rng& /*rng*/) {
  return std::binary_search(slow_.begin(), slow_.end(), to) ? tdel : 0.0;
}

AlternatingDelay::AlternatingDelay(Duration interval) : interval_(interval) {
  ST_REQUIRE(interval > 0, "AlternatingDelay: interval must be positive");
}

Duration AlternatingDelay::delay(NodeId /*from*/, NodeId to, RealTime now, Duration tdel,
                                 Rng& /*rng*/) {
  const auto phase = static_cast<std::uint64_t>(std::floor(now / interval_));
  const bool odd_slow = (phase % 2) == 0;
  const bool to_odd = (to % 2) == 1;
  return (to_odd == odd_slow) ? tdel : 0.0;
}

CutDelay::CutDelay(std::vector<bool> in_side_a, RealTime start, RealTime end,
                   std::unique_ptr<DelayPolicy> base)
    : in_a_(std::move(in_side_a)), start_(start), end_(end), base_(std::move(base)) {
  bool any = false;
  for (const bool member : in_a_) any = any || member;
  ST_REQUIRE(any, "CutDelay: side A must be non-empty");
  ST_REQUIRE(start >= 0 && end > start, "CutDelay: need 0 <= start < end");
  ST_REQUIRE(base_ != nullptr, "CutDelay: base policy required");
}

Duration CutDelay::delay(NodeId from, NodeId to, RealTime now, Duration tdel, Rng& rng) {
  ST_REQUIRE(cut_ != nullptr, "CutDelay: on_topology must run before traffic flows");
  // The cut schedule is the single source of truth for which links the cut
  // permits at time t: a send whose link is missing is lost in transit.
  if (!cut_->adjacent_at(now, from, to)) return kDropMessage;
  return base_->delay(from, to, now, tdel, rng);
}

Duration CutDelay::min_delay(Duration tdel) const { return base_->min_delay(tdel); }

void CutDelay::on_topology(const Topology& topo) {
  // Compile the cut as a topology schedule over the complete graph on the
  // fleet: full until the window opens, cross-cut links removed inside it,
  // full again once it heals. The run's actual graph is enforced by the
  // simulator itself, so only the cut's own prohibitions live here.
  const std::uint32_t n = topo.n();
  std::vector<std::pair<NodeId, NodeId>> kept;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (in_a(a) == in_a(b)) kept.emplace_back(a, b);
    }
  }
  const auto full = std::make_shared<const Topology>(Topology::complete(n));
  const auto cut_graph = std::make_shared<const Topology>(Topology::from_edges(n, kept));
  TopologySchedule schedule;
  if (start_ > 0) {
    schedule.set_graph(start_, cut_graph);
    schedule.set_graph(end_, full);
    cut_ = std::make_shared<const CompiledTopologySchedule>(schedule.compile(full));
  } else {
    // A cut open from time 0: the cut graph IS the base epoch.
    schedule.set_graph(end_, full);
    cut_ = std::make_shared<const CompiledTopologySchedule>(schedule.compile(cut_graph));
  }
  base_->on_topology(topo);
}

void CutDelay::on_topology_change(const Topology& topo, RealTime at) {
  // The cut is a node-set cut — independent of which links the live graph
  // happens to have — so only the base policy needs to hear about epochs.
  base_->on_topology_change(topo, at);
}

PartitionDelay::PartitionDelay(std::uint32_t group_a, RealTime start, RealTime end,
                               std::unique_ptr<DelayPolicy> base)
    : CutDelay(std::vector<bool>(group_a, true), start, end, std::move(base)) {}

}  // namespace stclock
