#include "core/config.h"

#include "core/theory.h"
#include "util/contracts.h"

namespace stclock {

std::string SyncConfig::variant_name() const {
  return variant == Variant::kAuthenticated ? "auth" : "echo";
}

bool SyncConfig::resilience_ok() const {
  if (variant == Variant::kAuthenticated) return n >= 2 * f + 1;
  return n >= 3 * f + 1;
}

void SyncConfig::validate() const {
  ST_REQUIRE(n >= 1, "SyncConfig: need at least one node");
  ST_REQUIRE(resilience_ok(), "SyncConfig: (n, f) violates the variant's resilience bound");
  ST_REQUIRE(rho >= 0, "SyncConfig: rho must be non-negative");
  ST_REQUIRE(tdel > 0, "SyncConfig: tdel must be positive");
  ST_REQUIRE(period > 0, "SyncConfig: period must be positive");
  ST_REQUIRE(initial_sync >= 0, "SyncConfig: initial_sync must be non-negative");

  const Duration alpha = theory::resolve_alpha(*this);
  ST_REQUIRE(alpha < period, "SyncConfig: alpha must be smaller than the period");

  const auto bounds = theory::derive_bounds(*this);
  ST_REQUIRE(bounds.min_period > 0,
             "SyncConfig: period too small relative to delays (min period <= 0)");
  // The inductive precision argument needs the initial spread to be covered
  // by the steady-state bound (unless the caller opts into convergence-only
  // semantics for the startup phase).
  ST_REQUIRE(allow_unsynchronized_start || initial_sync <= bounds.precision,
             "SyncConfig: initial clock spread exceeds the steady-state precision bound "
             "(set allow_unsynchronized_start to opt into convergence semantics)");

  if (adjust == AdjustMode::kAmortized && amortize_window > 0) {
    ST_REQUIRE(amortize_window < bounds.min_period,
               "SyncConfig: amortization window must fit within the minimum period "
               "(corrections must not overlap)");
  }
}

}  // namespace stclock
