// Reintegration: a repaired replica rejoins a running cluster.
//
// One node of a 5-node system is down at launch and boots 12.4 s in, with a
// hardware clock that knows nothing about the group. It listens passively,
// adopts the first resynchronization round it observes being accepted, and
// from then on participates fully — all while 1 node is actively Byzantine.

#include <iostream>

#include "experiment/scenario.h"
#include "util/table.h"

int main() {
  using namespace stclock;

  experiment::ScenarioSpec spec;
  spec.protocol = "auth";
  spec.cfg.n = 5;
  spec.cfg.f = 1;
  spec.cfg.rho = 1e-4;
  spec.cfg.tdel = 0.01;
  spec.cfg.period = 1.0;
  spec.cfg.initial_sync = 0.005;
  spec.seed = 99;
  spec.horizon = 30.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = AttackKind::kSpamEarly;  // hostile conditions during the join
  spec.joiners = 1;
  spec.join_time = 12.4;

  std::cout << "n=5, f=1 under active attack; node 3 boots at t = " << spec.join_time
            << " s with an unsynchronized clock.\n\n";

  const experiment::ScenarioResult r = experiment::run_scenario(spec);

  Table table({"metric", "value", "guarantee"});
  table.add_row({"joiner integrated", r.joiners_integrated ? "yes" : "NO", "yes"});
  table.add_row({"integration latency", Table::num(r.join_latency, 3) + " s",
                 "<= " + Table::num(r.bounds.max_period, 3) + " s (one period)"});
  table.add_row({"post-join skew", Table::sci(r.steady_skew) + " s",
                 "<= " + Table::sci(r.bounds.precision) + " s"});
  table.add_row({"running nodes disturbed", r.live ? "no" : "YES", "no"});
  table.print(std::cout);

  std::cout << "\nHow it works: the joiner participates in the broadcast primitive\n"
               "(verifying and relaying) but broadcasts no readiness of its own.\n"
               "The first accepted round k pins the group's clock to kP + alpha,\n"
               "which the joiner adopts; from that instant it is within the same\n"
               "Dmax bound as everyone else and starts pulsing normally.\n";
  return r.joiners_integrated ? 0 : 1;
}
