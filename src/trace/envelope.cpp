#include "trace/envelope.h"

#include <algorithm>

#include "util/contracts.h"

namespace stclock {

EnvelopeTracker::EnvelopeTracker(Duration sample_interval)
    : sample_interval_(sample_interval) {
  ST_REQUIRE(sample_interval > 0, "EnvelopeTracker: sample interval must be positive");
}

void EnvelopeTracker::enable_streaming(double slope_lo, double slope_hi,
                                       RealTime steady_start) {
  ST_REQUIRE(last_sample_ < 0, "EnvelopeTracker: enable_streaming before the first sample");
  streaming_ = true;
  stream_lo_ = slope_lo;
  stream_hi_ = slope_hi;
  stream_steady_ = steady_start;
}

void EnvelopeTracker::sample(const Simulator& sim) {
  const RealTime t = sim.now();
  if (last_sample_ >= 0 && t - last_sample_ < sample_interval_) return;
  last_sample_ = t;

  if (streaming_) {
    const std::uint32_t pool_n = std::min(sim.n(), kStreamPoolMaxN);
    if (sums_.empty()) sums_.resize(pool_n);
    for (NodeId id : sim.honest_ids()) {
      if (id >= pool_n) break;  // honest_ids is ascending; pooled prefix only
      if (!sim.observe_started(id)) continue;
      const double c = sim.observe_logical(id, t);
      NodeSums& s = sums_[id];
      ++s.samples;
      if (t >= stream_steady_) {
        ++s.window;
        s.st += t;
        s.sc += c;
        s.stt += t * t;
        s.stc += t * c;
      }
      s.upper = std::max(s.upper, c - stream_hi_ * t);
      s.lower = std::max(s.lower, stream_lo_ * t - c);
    }
    return;
  }

  if (series_.empty()) series_.resize(sim.n());
  for (NodeId id : sim.honest_ids()) {
    if (!sim.observe_started(id)) continue;
    series_[id].t.push_back(t);
    series_[id].c.push_back(sim.observe_logical(id, t));
  }
}

EnvelopeTracker::Report EnvelopeTracker::report(double slope_lo, double slope_hi,
                                                RealTime steady_start) const {
  Report rep;
  bool first = true;

  if (streaming_) {
    ST_REQUIRE(slope_lo == stream_lo_ && slope_hi == stream_hi_ &&
                   steady_start == stream_steady_,
               "EnvelopeTracker::report: streaming mode fixed different envelope "
               "parameters at enable_streaming time");
    for (const NodeSums& s : sums_) {
      if (s.samples < 2 || s.window < 2) continue;
      const auto n = static_cast<double>(s.window);
      const double det = n * s.stt - s.st * s.st;
      ST_REQUIRE(det > 0, "EnvelopeTracker::report: degenerate sample times");
      const double slope = (n * s.stc - s.st * s.sc) / det;
      if (first) {
        rep.min_rate = rep.max_rate = slope;
        first = false;
      } else {
        rep.min_rate = std::min(rep.min_rate, slope);
        rep.max_rate = std::max(rep.max_rate, slope);
      }
      rep.upper_offset = std::max(rep.upper_offset, s.upper);
      rep.lower_offset = std::max(rep.lower_offset, s.lower);
    }
    ST_REQUIRE(!first, "EnvelopeTracker::report: no node has enough samples");
    return rep;
  }

  for (const NodeSeries& s : series_) {
    if (s.t.size() < 2) continue;

    // Restrict the fit to the steady-state window.
    std::vector<double> ts, cs;
    for (std::size_t i = 0; i < s.t.size(); ++i) {
      if (s.t[i] >= steady_start) {
        ts.push_back(s.t[i]);
        cs.push_back(s.c[i]);
      }
    }
    if (ts.size() < 2) continue;

    const LinearFit fit = fit_line(ts, cs);
    if (first) {
      rep.min_rate = rep.max_rate = fit.slope;
      first = false;
    } else {
      rep.min_rate = std::min(rep.min_rate, fit.slope);
      rep.max_rate = std::max(rep.max_rate, fit.slope);
    }

    for (std::size_t i = 0; i < s.t.size(); ++i) {
      rep.upper_offset = std::max(rep.upper_offset, s.c[i] - slope_hi * s.t[i]);
      rep.lower_offset = std::max(rep.lower_offset, slope_lo * s.t[i] - s.c[i]);
    }
  }
  ST_REQUIRE(!first, "EnvelopeTracker::report: no node has enough samples");
  return rep;
}

}  // namespace stclock
