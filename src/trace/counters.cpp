#include "trace/counters.h"

namespace stclock {

void MessageCounters::on_send(const std::string& kind, std::size_t bytes) {
  ++total_sent_;
  total_bytes_ += bytes;
  auto& k = by_kind_[kind];
  ++k.messages;
  k.bytes += bytes;
}

void MessageCounters::on_deliver(const std::string&) { ++total_delivered_; }

void MessageCounters::reset() {
  total_sent_ = 0;
  total_delivered_ = 0;
  total_bytes_ = 0;
  by_kind_.clear();
}

}  // namespace stclock
