// Experiment T1 — Precision (agreement theorem).
//
// Claim: honest logical clocks stay within Dmax = Theta(tdel + rho*P) of each
// other, under worst-case drift, delays, and an active Byzantine attack, for
// both the authenticated (f < n/2) and signature-free (f < n/3) variants.
//
// This table sweeps tdel and P and reports measured worst-case steady-state
// skew against the derived bound; "ratio" is measured/bound (must be <= 1,
// and not absurdly small — the bound is supposed to be descriptive).

#include "bench_common.h"

namespace stclock {
namespace {

std::vector<experiment::SweepCell> build_cells(std::uint64_t seed) {
  std::vector<experiment::SweepCell> cells;
  for (const SyncConfig& base : {bench::default_auth_config(), bench::default_echo_config()}) {
    for (const Duration tdel : {0.001, 0.002, 0.005, 0.01, 0.02}) {
      SyncConfig cfg = base;
      cfg.tdel = tdel;
      cfg.initial_sync = tdel / 2;
      experiment::SweepCell cell;
      cell.index = cells.size();
      cell.labels = {{"variant", cfg.variant_name()},
                     {"axis", "tdel"},
                     {"value", Table::num(tdel * 1e3, 1) + "ms"}};
      cell.spec = bench::adversarial_scenario(cfg, 30.0, seed);
      cells.push_back(std::move(cell));
    }
    // P sweep at fixed tdel, larger rho so the rho*P term is visible.
    for (const Duration period : {0.5, 1.0, 2.0, 5.0}) {
      SyncConfig cfg = base;
      cfg.rho = 1e-3;
      cfg.period = period;
      experiment::SweepCell cell;
      cell.index = cells.size();
      cell.labels = {{"variant", cfg.variant_name()},
                     {"axis", "period"},
                     {"value", Table::num(period, 1) + "s"}};
      cell.spec = bench::adversarial_scenario(cfg, 20 * period, seed);
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("T1 — Precision vs (tdel, P)",
                      "skew <= Dmax = Theta(tdel + rho*P) at optimal resilience", opts);

  const std::vector<experiment::SweepCell> cells = build_cells(opts.seed);
  const std::vector<experiment::ScenarioResult> results = bench::run_cells(cells, opts);
  if (bench::emit_json(cells, results, opts)) return 0;

  Table table({"variant", "tdel(ms)", "P(s)", "skew(s)", "Dmax(s)", "ratio",
               "pulse-spread", "D-bound", "live"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SyncConfig& cfg = cells[i].spec.cfg;
    const experiment::ScenarioResult& r = results[i];
    table.add_row({cfg.variant_name(), Table::num(cfg.tdel * 1e3, 1),
                   Table::num(cfg.period, 1), Table::sci(r.steady_skew),
                   Table::sci(r.bounds.precision),
                   Table::num(r.steady_skew / r.bounds.precision, 2),
                   Table::sci(r.pulse_spread), Table::sci(r.bounds.pulse_spread),
                   r.live ? "yes" : "NO"});
  }
  stclock::bench::emit(table, opts);
  std::cout << "(workload: n=7, extremal drift, split delays, spam-early attack;\n"
               " every row must have ratio <= 1 and live = yes)\n";
  return 0;
}
