#pragma once

#include "baselines/baseline.h"

/// Naive leader-based synchronization (an NTP-like strawman): node 0
/// broadcasts its clock every period; followers slave to it. With an honest
/// leader this gives tight skew at O(n) messages per round — but a single
/// corrupted leader fully controls every clock in the system. The
/// comparison table includes it to motivate why the paper insists on f+1
/// supporting processes before anyone moves its clock.
namespace stclock::baselines {

class LeaderProtocol final : public Process {
 public:
  LeaderProtocol(NodeId leader, Duration period, Duration nominal_delay);

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, NodeId from, const Message& m) override;
  void on_timer(Context& ctx, TimerId id) override;

 private:
  NodeId leader_;
  Duration period_;
  Duration nominal_delay_;
  Round round_ = 1;
  TimerId timer_ = 0;
};

/// `corrupt_leader` puts the leader under adversary control (a strategy that
/// feeds followers a clock running 10% fast) — the breakdown demo.
[[nodiscard]] BaselineResult run_leader_sync(const BaselineSpec& spec, bool corrupt_leader);

}  // namespace stclock::baselines
