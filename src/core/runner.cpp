#include "core/runner.h"

#include "experiment/scenario.h"

namespace stclock {

RunResult run_sync(const RunSpec& spec) {
  experiment::ScenarioSpec scenario;
  scenario.protocol = spec.cfg.variant == Variant::kEcho ? "echo" : "auth";
  scenario.cfg = spec.cfg;
  scenario.seed = spec.seed;
  scenario.horizon = spec.horizon;
  scenario.drift = spec.drift;
  scenario.delay = spec.delay;
  scenario.attack = spec.attack;
  scenario.joiners = spec.joiners;
  scenario.join_time = spec.join_time;
  scenario.corrupt_override = spec.corrupt_override;
  scenario.skew_series_interval = spec.skew_series_interval;
  scenario.envelope_interval = spec.envelope_interval;

  experiment::ScenarioResult r = experiment::run_scenario(scenario);

  RunResult result;
  result.bounds = r.bounds;
  result.max_skew = r.max_skew;
  result.steady_skew = r.steady_skew;
  result.skew_series = std::move(r.skew_series);
  result.pulse_spread = r.pulse_spread;
  result.min_period = r.min_period;
  result.max_period = r.max_period;
  result.min_pulses = r.min_pulses;
  result.max_pulses = r.max_pulses;
  result.live = r.live;
  result.envelope = r.envelope;
  result.rate_fit_tolerance = r.rate_fit_tolerance;
  result.join_latency = r.join_latency;
  result.joiners_integrated = r.joiners_integrated;
  result.messages_sent = r.messages_sent;
  result.bytes_sent = r.bytes_sent;
  result.rounds_completed = r.rounds_completed;
  return result;
}

}  // namespace stclock
