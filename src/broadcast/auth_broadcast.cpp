#include "broadcast/auth_broadcast.h"

#include "util/contracts.h"

namespace stclock {

AuthBroadcast::AuthBroadcast(std::uint32_t n, std::uint32_t f, std::uint32_t fanin)
    : n_(n), f_(f), quorum_(scaled_threshold(f + 1, n, fanin)) {
  ST_REQUIRE(n >= 2 * f + 1, "AuthBroadcast requires n >= 2f+1");
}

void AuthBroadcast::broadcast_ready(Context& ctx, Round k) {
  if (k < floor_) return;
  RoundState& state = rounds_[k];
  if (state.sent_own) return;
  state.sent_own = true;

  const crypto::Signature sig = ctx.signer().sign(payload_for(k, state));
  // Broadcast reaches self too, but acceptance bookkeeping is synchronous
  // here so a solo quorum (f == 0) fires immediately either way.
  ctx.broadcast(Message(RoundMsg{k, {sig}}));
}

bool AuthBroadcast::handle_message(Context& ctx, NodeId /*from*/, const Message& m) {
  const auto* rm = std::get_if<RoundMsg>(&m);
  if (rm == nullptr) return false;
  if (rm->round < floor_) return true;  // stale round: consumed, ignored
  add_signatures(ctx, rm->round, rm->sigs);
  return true;
}

const Bytes& AuthBroadcast::payload_for(Round k, RoundState& state) {
  // The payload is never empty ("st-round" + the round), so empty = unset.
  if (state.payload.empty()) state.payload = round_signing_payload(k);
  return state.payload;
}

void AuthBroadcast::add_signatures(Context& ctx, Round k, const SigBundle& sigs) {
  RoundState& state = rounds_[k];
  if (state.accepted) return;

  const Bytes& payload = payload_for(k, state);
  for (const crypto::Signature& sig : sigs) {
    if (state.signers.contains(sig.signer)) continue;
    // Invalid signatures — wrong round, forged MAC, unknown signer — are
    // silently dropped; this is where unforgeability bites.
    if (!ctx.registry().verify(sig, payload)) continue;
    state.signers.insert(sig.signer);
    state.sigs.push_back(sig);
  }
  maybe_accept(ctx, k, state);
}

void AuthBroadcast::maybe_accept(Context& ctx, Round k, RoundState& state) {
  if (state.accepted || state.signers.size() < quorum()) return;
  state.accepted = true;

  // Relay first (the paper's rule): forward an accepting bundle so every
  // correct process accepts within one further message delay.
  SigBundle bundle(state.sigs.begin(), state.sigs.begin() + quorum());
  ctx.broadcast(Message(RoundMsg{k, std::move(bundle)}));

  deliver_accept(ctx, k);
}

void AuthBroadcast::forget_below(Round floor) {
  if (floor <= floor_) return;
  floor_ = floor;
  rounds_.erase(rounds_.begin(), rounds_.lower_bound(floor));
}

void AuthBroadcast::corrupt_state(Rng& rng) {
  // The floor and the per-round signature buffers are memory. The buffers
  // are wiped rather than bit-flipped: accumulated signatures are gone, and
  // sent_own/accepted flags with them (so a recovered node may harmlessly
  // re-sign a round it already signed).
  floor_ = rng.uniform_int(0, 1u << 20);
  rounds_.clear();
}

void AuthBroadcast::stabilize(Round expected_floor) {
  // Only ever lower the floor: raising it is forget_below's job and is
  // driven by actual acceptances. On an uncorrupted primitive the floor is
  // already <= the expected round, so this is a no-op.
  if (floor_ > expected_floor) floor_ = expected_floor;
}

}  // namespace stclock
