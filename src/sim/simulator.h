#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "clocks/hardware_clock.h"
#include "clocks/logical_clock.h"
#include "crypto/signature.h"
#include "sim/broadcast_mode.h"
#include "sim/corruption.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/process.h"
#include "sim/topology.h"
#include "sim/topology_schedule.h"
#include "trace/counters.h"
#include "util/rng.h"
#include "util/types.h"

/// The discrete-event simulator: the "testbed" substrate on which every
/// protocol and experiment in this repository runs.
///
/// A Simulator owns n nodes, each with a fixed hardware-clock trajectory and
/// a logical clock. Honest nodes run a `Process`; corrupted nodes are driven
/// collectively by one `Adversary`. All scheduling is deterministic given the
/// seed: ties in event time break by insertion order, and every node gets an
/// independent forked RNG stream.
namespace stclock {

struct SimParams {
  std::uint32_t n = 0;
  /// Maximum end-to-end delay between correct processes (the model's tdel).
  Duration tdel = 0.01;
  std::uint64_t seed = 1;
  /// Safety valve against runaway protocols.
  std::uint64_t max_events = 50'000'000;
  /// Pre-sizing hint for the event queue: the expected number of events
  /// resident at once. Zero derives the default from n — one full broadcast
  /// round of deliveries plus per-node timers, n * (n + 2).
  std::size_t queue_reserve = 0;
  /// Network graph. Null means the paper's implicit complete graph (the
  /// legacy behavior, bit-for-bit); an explicit complete topology takes the
  /// same code path. Any other graph restricts broadcasts to neighbors and
  /// drops sends on missing links.
  std::shared_ptr<const Topology> topology;
  /// Timed topology changes (compile a TopologySchedule against `topology`).
  /// Null — or a single-epoch compilation of an empty schedule — keeps the
  /// static path bit-for-bit: no epoch events are armed and every send
  /// consults the same graph. With later epochs, each boundary becomes a
  /// simulator event that swaps the live graph; link existence is checked at
  /// send time, so in-flight messages survive a switch. Requires `topology`
  /// to be the schedule's epoch-0 graph (same object).
  std::shared_ptr<const CompiledTopologySchedule> schedule;
  /// Scheduled state-corruption events (see sim/corruption.h). Times must be
  /// positive and non-decreasing. Empty — the default — arms no corruption
  /// machinery and leaves every RNG stream untouched, so the disabled path
  /// is bit-identical to a build without fault injection.
  std::vector<CorruptionEvent> corruptions;
  /// Broadcast fan-out policy (see sim/broadcast_mode.h). kFull and
  /// kNeighbors take exactly the legacy fan-out path; kSampled draws
  /// sample_size peers per broadcast from a dedicated RNG stream.
  BroadcastMode broadcast_mode = BroadcastMode::kFull;
  /// Peers per broadcast under kSampled (>= 1 required then); ignored in the
  /// other modes.
  std::uint32_t sample_size = 0;
  /// Worker threads for the lookahead-windowed parallel engine. 1 — the
  /// default — is the sequential engine, bit-for-bit. Values > 1 execute
  /// each window [t, t + lookahead) of events on a worker pool, where the
  /// lookahead is the delay policy's min_delay(): events closer together
  /// than the minimum message delay cannot causally interact across nodes,
  /// and a deterministic commit phase replays buffered side effects in the
  /// exact sequential (time, seq) order, so every metric is bit-identical
  /// to sim_threads = 1. Runs that cannot parallelize (zero lookahead, or a
  /// Byzantine adversary, whose deliveries to corrupted nodes are immediate
  /// and so cross nodes within any window) fall back to the sequential
  /// engine with a loud stderr note — never silently, never a deadlock.
  std::uint32_t sim_threads = 1;
};

class Simulator {
 public:
  /// `clocks` must have exactly params.n entries. The registry (for the
  /// authenticated variants) may be null when no protocol signs anything.
  Simulator(SimParams params, std::vector<HardwareClock> clocks,
            std::unique_ptr<DelayPolicy> delays, const crypto::KeyRegistry* registry);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Installs the honest protocol instance for node `id`. Must not be called
  /// for corrupted nodes.
  void set_process(NodeId id, std::unique_ptr<Process> process);

  /// Marks `ids` as corrupted and installs the Byzantine strategy driving
  /// them. Call at most once, before start().
  void set_adversary(std::vector<NodeId> ids, std::unique_ptr<Adversary> adversary);

  /// Delays the on_start of node `id` until real time `t` (models a node
  /// that boots late and must integrate — see core/joiner.h).
  void set_start_time(NodeId id, RealTime t);

  /// Builds the replacement process for a node rejoining after churn.
  using ProcessBuilder = std::function<std::unique_ptr<Process>()>;

  /// Schedules honest node `id` to crash at `down_at` and reboot at `up_at`
  /// as a fresh process built by `rebuild` (typically a passively integrating
  /// joiner — see core/joiner.h). While down, the node's pending timers are
  /// cancelled and deliveries to it are lost; the rebuilt process gets
  /// on_start at `up_at`. Call before start(); at most once per node.
  void schedule_restart(NodeId id, RealTime down_at, RealTime up_at,
                        ProcessBuilder rebuild);

  /// Dispatches on_start for every installed process and the adversary, then
  /// runs events until `horizon` (inclusive). May be called repeatedly with
  /// increasing horizons.
  void run_until(RealTime horizon);

  // --- Introspection (used by metrics, adversaries, and tests) ---
  /// Current simulation time. Inside a parallel worker this is the executing
  /// event's time for the calling thread (each node's handlers observe the
  /// same "now" they would sequentially); everywhere else it is the global
  /// clock, which the commit replay advances event by event.
  [[nodiscard]] RealTime now() const;
  [[nodiscard]] const SimParams& params() const { return params_; }
  [[nodiscard]] std::uint32_t n() const { return params_.n; }
  [[nodiscard]] bool is_corrupt(NodeId id) const;
  /// Honest node ids, ascending.
  [[nodiscard]] const std::vector<NodeId>& honest_ids() const { return honest_ids_; }
  /// True once node `id` has been started (relevant for late joiners).
  [[nodiscard]] bool is_started(NodeId id) const;

  // --- Tracker-facing observation API ---
  // The trace layer (skew tracker, envelope) reads fleet state from the
  // post-event hook. Sequentially these are plain live reads. During a
  // parallel commit replay the workers have already executed the whole
  // window, so a live read could see a node's *future*; these accessors
  // instead return the value the node had at the replay point (the recorded
  // pre-state of its first uncommitted change), keeping every hook
  // observation bit-identical to the sequential schedule.
  [[nodiscard]] bool observe_started(NodeId id) const {
    return par_ == nullptr ? nodes_[id].started : observe_started_slow(id);
  }
  [[nodiscard]] LocalTime observe_logical(NodeId id, RealTime t) const {
    return par_ == nullptr ? nodes_[id].logical->read(t) : observe_logical_slow(id, t);
  }
  /// The include predicate (set_include_probe) evaluated at the observation
  /// point; true when no probe is installed.
  [[nodiscard]] bool observe_include(NodeId id) const {
    if (par_ != nullptr) return observe_include_slow(id);
    return include_probe_ == nullptr || include_probe_(id);
  }
  /// Installs the predicate behind observe_include (the scenario engine uses
  /// it for "protocol instance is integrated"). Must be node-local: in a
  /// parallel run it is evaluated from the worker that owns the node.
  void set_include_probe(std::function<bool(NodeId)> probe);

  /// Lookahead windows executed on the worker pool so far. Stays 0 for
  /// sequential runs and for sim_threads > 1 runs that fell back; tests use
  /// it to assert the parallel engine actually engaged.
  [[nodiscard]] std::uint64_t parallel_windows() const { return parallel_windows_; }

  /// The base (epoch-0) network graph, or null for the implicit complete
  /// graph.
  [[nodiscard]] const Topology* topology() const { return params_.topology.get(); }

  /// The graph live right now: the base graph until the first epoch switch,
  /// then the current epoch's snapshot. Null for the implicit complete
  /// graph. The skew tracker samples local skew against this, so the metric
  /// always reflects the adjacency that was live at measurement time.
  [[nodiscard]] const Topology* current_topology() const { return topo_now_; }

  /// Index of the live epoch (0 until the first switch; static runs stay 0).
  [[nodiscard]] std::size_t topology_epoch() const { return epoch_; }

  [[nodiscard]] const HardwareClock& hardware(NodeId id) const;
  [[nodiscard]] const LogicalClock& logical(NodeId id) const;
  [[nodiscard]] LogicalClock& logical(NodeId id);

  [[nodiscard]] const MessageCounters& counters() const { return counters_; }
  [[nodiscard]] MessageCounters& counters() { return counters_; }

  /// Total events dispatched so far (timers + deliveries, cancelled timer
  /// pops included). Part of the determinism contract: for a fixed spec the
  /// count is reproducible bit-for-bit, which the golden trace test pins.
  [[nodiscard]] std::uint64_t events_dispatched() const { return events_dispatched_; }

  /// Sends lost in transit: the delay policy chose kDropMessage (partitions),
  /// the sender has no link to the recipient in the topology, or the
  /// recipient's in-flight buffer was wiped by a corruption event.
  [[nodiscard]] std::uint64_t messages_dropped() const { return messages_dropped_; }

  /// Corruption events that fired (== params.corruptions entries reached
  /// before the horizon) and the total victim count across them.
  [[nodiscard]] std::uint64_t corruption_events_fired() const {
    return corruption_events_fired_;
  }
  [[nodiscard]] std::uint64_t nodes_corrupted() const { return nodes_corrupted_; }

  /// Called after every dispatched event; used by the skew tracker to sample
  /// at exactly the moments state can change.
  void set_post_event_hook(std::function<void(const Simulator&)> hook);

 private:
  friend class Context;
  friend class AdversaryContext;

  /// Lifecycle of one timer id in the flat state table. Armed states encode
  /// the dispatch target; a fired or cancel-consumed timer is retired to
  /// kFired, so the table holds exactly one byte per timer ever armed and no
  /// tombstone set can grow unboundedly.
  enum class TimerState : std::uint8_t {
    kArmedProcess,
    kArmedStart,
    kArmedStop,  // churn: node goes down, replacement armed for the rejoin
    kArmedAdversary,
    kArmedEpoch,    // topology schedule: the owner slot holds the epoch index
    kArmedCorrupt,  // corruption event: the owner slot holds the event index
    kArmedTick,     // hardware ticker: auto re-arms, immune to corruption
    kCancelled,
    kFired,
  };

  struct Node {
    std::optional<HardwareClock> hw;
    std::optional<LogicalClock> logical;
    std::unique_ptr<Process> process;
    std::optional<Context> ctx;
    std::optional<Rng> rng;
    bool corrupt = false;
    RealTime start_time = 0;
    bool started = false;
    /// Corrupted receive buffer: deliveries sent strictly before this real
    /// time are dropped on arrival (-1 = never; the corruption-free path
    /// costs one always-false compare).
    RealTime purge_before = -1;
    /// Hardware ticker interval (0 = no ticker; see Context::start_ticker).
    Duration ticker_interval = 0;
    /// States of this node's parallel-allocated timers (see kParTimerBit):
    /// workers cannot consume the global sequential id counter, so timers
    /// armed inside a window get (node, index-in-this-table) ids instead.
    /// Timer id VALUES therefore differ between the engines — they are
    /// opaque handles and never surface in any metric. Always empty in
    /// sequential runs.
    std::vector<TimerState> par_timers;
  };

  /// Parallel timer ids: top bit set, owner node in bits [32, 63), index
  /// into the node's par_timers table below. Sequential ids never collide
  /// (they stay far below 2^63).
  static constexpr TimerId kParTimerBit = TimerId{1} << 63;
  [[nodiscard]] static TimerId par_timer_id(NodeId node, std::size_t index) {
    return kParTimerBit | (static_cast<TimerId>(node) << 32) |
           static_cast<TimerId>(index);
  }
  [[nodiscard]] static NodeId par_timer_node(TimerId id) {
    return static_cast<NodeId>((id >> 32) & 0x7fffffffu);
  }
  [[nodiscard]] static std::size_t par_timer_index(TimerId id) {
    return static_cast<std::size_t>(id & 0xffffffffu);
  }

  /// One scheduled churn restart (schedule_restart).
  struct Restart {
    NodeId node = 0;
    RealTime down_at = 0;
    RealTime up_at = 0;
    ProcessBuilder rebuild;
    TimerId stop_timer = 0;  // assigned when the simulation starts
  };

  void dispatch(const Event& ev);

  // Context plumbing.
  /// Unicast entry point: checks the topology link (off-graph sends drop).
  void honest_send(NodeId from, NodeId to, const Message& m);
  /// Pre-shared overload: Context::broadcast interns the message once and
  /// fans the same immutable payload out to every recipient. Trusts the
  /// caller to respect the topology (the fan-out loop visits neighbors
  /// only), keeping the per-recipient path free of adjacency checks.
  void honest_send(NodeId from, NodeId to, std::shared_ptr<const Message> msg);
  /// Broadcast fan-out on a non-complete topology: self plus neighbors.
  void sparse_fan_out(NodeId from, const Topology& topo,
                      const std::shared_ptr<const Message>& msg);
  /// kSampled: fills sample_scratch_ with this broadcast's recipients —
  /// params.sample_size distinct draws from the sender's domain (neighbor
  /// row, or everyone else on the complete graph), sorted ascending, self
  /// excluded. Returns false WITHOUT consuming draws when the domain is no
  /// larger than the sample; the caller falls back to the full fan-out.
  bool sample_broadcast_targets(NodeId from);
  /// Broadcast fan-out under kSampled: self plus the sampled peer set.
  void sampled_fan_out(NodeId from, const std::shared_ptr<const Message>& msg);
  void adversary_send(NodeId from, NodeId to, std::shared_ptr<const Message> msg,
                      RealTime deliver_at);
  TimerId arm_timer(NodeId node, RealTime fire_at,
                    TimerState kind = TimerState::kArmedProcess);
  void cancel_timer(TimerId id);
  [[nodiscard]] TimerState& timer_state(TimerId id);
  void start_ticker(NodeId id, Duration hw_interval);
  /// Fires corruption event `idx`: picks the victim subset with the
  /// dedicated corruption stream and scrambles each victim's memory.
  void apply_corruption(std::size_t idx);

  // --- Parallel engine (simulator_parallel.cpp) ---
  /// True on a worker thread currently executing this simulator's window.
  [[nodiscard]] bool in_worker() const;
  /// Decides once, at the first run_until, whether sim_threads > 1 can be
  /// honored (positive lookahead, no adversary); falls back loudly if not.
  void maybe_enable_parallel();
  /// The parallel main loop: drains lookahead windows until the horizon.
  void run_parallel(RealTime horizon);
  // Worker-phase counterparts of the sequential side-effect entry points:
  // they buffer ops into the owning worker instead of touching shared state.
  void par_unicast(NodeId from, NodeId to, const Message& m);
  void par_broadcast(NodeId from, const Message& m);
  TimerId par_arm_timer(NodeId node, RealTime fire_at, TimerState kind);
  // Slow paths of the observation API (parallel runs only).
  [[nodiscard]] bool observe_started_slow(NodeId id) const;
  [[nodiscard]] LocalTime observe_logical_slow(NodeId id, RealTime t) const;
  [[nodiscard]] bool observe_include_slow(NodeId id) const;
  // Thread-local worker marking (now() routes through it); const because
  // only thread-local state moves.
  void tls_enter_worker() const;
  void tls_set_worker_now(RealTime t) const;
  void tls_leave_worker() const;

  SimParams params_;
  /// Graph live right now (params_.topology until the first epoch switch);
  /// every broadcast fan-out, link check, and adversary send reads this one
  /// pointer, so the static path costs exactly what it did pre-schedule.
  const Topology* topo_now_ = nullptr;
  std::size_t epoch_ = 0;
  std::vector<Node> nodes_;
  std::vector<NodeId> honest_ids_;
  std::unique_ptr<DelayPolicy> delays_;
  const crypto::KeyRegistry* registry_;
  std::vector<crypto::Signer> signers_;  // index = node id

  std::unique_ptr<Adversary> adversary_;
  std::optional<AdversaryContext> adv_ctx_;
  std::optional<Rng> adv_rng_;

  EventQueue queue_;
  RealTime now_ = 0;
  bool started_ = false;
  std::uint64_t events_dispatched_ = 0;
  std::uint64_t messages_dropped_ = 0;
  TimerId next_timer_id_ = 1;
  /// Flat timer-state table, indexed by TimerId - 1 (ids are allocated
  /// sequentially from 1); replaces the cancelled/start/adversary lookup
  /// maps with one byte-per-timer array access.
  std::vector<TimerState> timer_states_;
  /// Owner of each armed timer (parallel to timer_states_): lets a churn
  /// stop event cancel exactly the departing node's pending process timers.
  std::vector<NodeId> timer_owners_;
  std::vector<Restart> restarts_;
  std::optional<Rng> net_rng_;
  /// Corruption draws come from their own stream, derived from the seed but
  /// OUTSIDE the root fork sequence (net, adversary, per-node): enabling
  /// corruption must not perturb any other stream, and with it disabled no
  /// stream is even created. Engaged only when params.corruptions is
  /// non-empty.
  std::optional<Rng> corrupt_rng_;
  /// Peer draws for kSampled broadcasts, likewise derived from the seed
  /// outside the root fork sequence and created only in sampled mode — full
  /// and neighbors runs stay bit-identical to the pre-fabric engine.
  std::optional<Rng> bcast_rng_;
  /// Recipient scratch for sampled fan-outs (capacity sample_size, reused).
  std::vector<NodeId> sample_scratch_;
  /// Mutable CSR copy backing the partial Fisher–Yates sampled draws (only
  /// built once a sampled run actually draws with sample_size >=
  /// kFisherYatesMinSample on a sparse graph; see broadcast_sample.h). Rows
  /// are left permuted between draws — same id set, order evolving — which
  /// keeps every draw O(m) while the seed -> sample-sequence mapping stays a
  /// pure function of (seed, topology, draw order).
  std::vector<std::uint64_t> fy_offsets_;
  std::vector<NodeId> fy_rows_;
  const Topology* fy_src_ = nullptr;
  std::uint64_t corruption_events_fired_ = 0;
  std::uint64_t nodes_corrupted_ = 0;

  MessageCounters counters_;
  std::function<void(const Simulator&)> post_event_hook_;
  std::function<bool(NodeId)> include_probe_;

  /// Worker pool, per-window buffers, and commit-replay state. Created only
  /// when the parallel engine actually engages, so par_ == nullptr doubles
  /// as the sequential fast-path test in the observation API.
  struct ParEngine;
  /// Out-of-line deleter so every TU can destroy a Simulator (and its
  /// members, on constructor-exception paths) without ParEngine's definition.
  struct ParEngineDeleter {
    void operator()(ParEngine* e) const;
  };
  std::unique_ptr<ParEngine, ParEngineDeleter> par_;
  bool par_checked_ = false;
  std::uint64_t parallel_windows_ = 0;
};

}  // namespace stclock
