#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "broadcast/primitive.h"
#include "sim/simulator.h"

/// Test harness for exercising a broadcast primitive in isolation: each
/// honest node runs a PrimitiveHost that broadcasts readiness for round 1 at
/// a configured real time (or never) and records when each round is
/// accepted.
namespace stclock::testing {

class PrimitiveHost final : public Process {
 public:
  /// `ready_at` is the hardware time at which this node broadcasts readiness
  /// for `ready_round`; nullopt means the node never becomes ready.
  PrimitiveHost(std::unique_ptr<BroadcastPrimitive> primitive, const Simulator& sim,
                std::optional<LocalTime> ready_at, Round ready_round = 1)
      : primitive_(std::move(primitive)),
        sim_(&sim),
        ready_at_(ready_at),
        ready_round_(ready_round) {
    primitive_->set_accept_handler([this](Context&, Round k) {
      accepted_[k] = sim_->now();
    });
  }

  void on_start(Context& ctx) override {
    if (ready_at_) ready_timer_ = ctx.set_timer_at_hardware(*ready_at_);
  }

  void on_message(Context& ctx, NodeId from, const Message& m) override {
    primitive_->handle_message(ctx, from, m);
  }

  void on_timer(Context& ctx, TimerId id) override {
    if (id == ready_timer_) primitive_->broadcast_ready(ctx, ready_round_);
  }

  [[nodiscard]] bool accepted(Round k) const { return accepted_.contains(k); }
  [[nodiscard]] RealTime accept_time(Round k) const { return accepted_.at(k); }
  [[nodiscard]] BroadcastPrimitive& primitive() { return *primitive_; }

 private:
  std::unique_ptr<BroadcastPrimitive> primitive_;
  const Simulator* sim_;
  std::optional<LocalTime> ready_at_;
  Round ready_round_;
  TimerId ready_timer_ = 0;
  std::map<Round, RealTime> accepted_;
};

inline std::vector<HardwareClock> identity_clocks(std::uint32_t n) {
  std::vector<HardwareClock> clocks;
  for (std::uint32_t i = 0; i < n; ++i) clocks.emplace_back(0.0, 1.0);
  return clocks;
}

}  // namespace stclock::testing
