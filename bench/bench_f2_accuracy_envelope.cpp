// Experiment F2 — Accuracy envelope (the paper's headline optimality result).
//
// Claim: Srikanth–Toueg logical clocks stay within a linear envelope of real
// time with the HARDWARE drift slopes (up to the O((alpha+D)/P) rate term) —
// synchronization does not amplify drift. Averaging under attack does:
// interactive convergence lets f colluding nodes drag every correct clock's
// rate beyond any hardware bound.
//
// Figure data: fitted long-run rate of each algorithm's logical clocks under
// its worst implemented attack, against the hardware envelope.

#include "baselines/hssd_sync.h"
#include "baselines/interactive_convergence.h"
#include "baselines/leader_sync.h"
#include "baselines/lundelius_welch.h"
#include "baselines/unsynchronized.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  using namespace stclock::baselines;
  bench::print_header("F2 — Accuracy envelope under attack",
                      "ST logical-clock rates stay hardware-optimal; averaging "
                      "(CNV) amplifies drift under f colluding nodes");

  constexpr double kRho = 1e-4;
  const double hw_hi = 1 + kRho;
  const double hw_lo = 1 / (1 + kRho);

  Table table({"algorithm", "attack", "min rate", "max rate", "hw envelope",
               "theory ceiling", "verdict"});

  auto add_st = [&](Variant variant) {
    SyncConfig cfg = bench::default_auth_config();
    cfg.f = 2;
    cfg.rho = kRho;
    cfg.variant = variant;
    RunSpec spec = bench::adversarial_spec(cfg, /*horizon=*/60.0, opts.seed);
    const RunResult r = run_sync(spec);
    const bool optimal = r.envelope.max_rate <= r.bounds.rate_hi + r.rate_fit_tolerance &&
                         r.envelope.min_rate >= r.bounds.rate_lo - r.rate_fit_tolerance;
    table.add_row({std::string("srikanth-toueg-") + cfg.variant_name(), "spam-early",
                   Table::num(r.envelope.min_rate, 6), Table::num(r.envelope.max_rate, 6),
                   "[" + Table::num(hw_lo, 6) + ", " + Table::num(hw_hi, 6) + "]",
                   Table::num(r.bounds.rate_hi, 6),
                   optimal ? "hardware-optimal" : "VIOLATED"});
  };
  add_st(Variant::kAuthenticated);
  add_st(Variant::kEcho);

  BaselineSpec spec;
  spec.n = 7;
  spec.f = 2;
  spec.rho = kRho;
  spec.tdel = 0.01;
  spec.period = 1.0;
  spec.delta = 0.05;
  spec.initial_sync = 0.005;
  spec.horizon = 60.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;

  {
    BaselineSpec s = spec;
    s.attack = AttackKind::kLwPull;
    const BaselineResult r = run_lundelius_welch(s);
    // Asymmetric delays bias every reading by up to tdel/2, so LW (like ST)
    // carries an inherent O(tdel/P) rate term; the f-trim keeps the
    // *attack* from adding anything beyond it.
    const bool resists = r.envelope.max_rate < hw_hi + s.tdel / s.period;
    table.add_row({"lundelius-welch", "lw-pull", Table::num(r.envelope.min_rate, 6),
                   Table::num(r.envelope.max_rate, 6),
                   "[" + Table::num(hw_lo, 6) + ", " + Table::num(hw_hi, 6) + "]", "-",
                   resists ? "resists (delay-bias only)" : "amplified"});
  }
  {
    BaselineSpec s = spec;
    s.attack = AttackKind::kCnvPull;
    const BaselineResult r = run_interactive_convergence(s);
    table.add_row({"interactive-conv", "cnv-pull", Table::num(r.envelope.min_rate, 6),
                   Table::num(r.envelope.max_rate, 6),
                   "[" + Table::num(hw_lo, 6) + ", " + Table::num(hw_hi, 6) + "]", "-",
                   r.envelope.max_rate > hw_hi + 0.001 ? "drift AMPLIFIED" : "unexpected"});
  }
  {
    // HSSD accepts on a single signature within a plausibility window: ONE
    // corrupted node advances every clock by ~window per period.
    BaselineSpec s = spec;
    s.f = 1;
    s.attack = AttackKind::kHssdEarly;
    const BaselineResult r = run_hssd(s);
    table.add_row({"hssd-single-sig", "hssd-early (1 node)",
                   Table::num(r.envelope.min_rate, 6), Table::num(r.envelope.max_rate, 6),
                   "[" + Table::num(hw_lo, 6) + ", " + Table::num(hw_hi, 6) + "]", "-",
                   r.envelope.max_rate > hw_hi + 0.005 ? "drift AMPLIFIED" : "unexpected"});
  }
  {
    const BaselineResult r = run_leader_sync(spec, /*corrupt_leader=*/true);
    table.add_row({"leader-sync", "leader-lie", Table::num(r.envelope.min_rate, 6),
                   Table::num(r.envelope.max_rate, 6),
                   "[" + Table::num(hw_lo, 6) + ", " + Table::num(hw_hi, 6) + "]", "-",
                   r.envelope.max_rate > 1.05 ? "fully hijacked" : "unexpected"});
  }
  {
    const BaselineResult r = run_unsynchronized(spec);
    table.add_row({"unsynchronized", "-", Table::num(r.envelope.min_rate, 6),
                   Table::num(r.envelope.max_rate, 6),
                   "[" + Table::num(hw_lo, 6) + ", " + Table::num(hw_hi, 6) + "]", "-",
                   "hardware itself"});
  }

  stclock::bench::emit(table, opts);
  std::cout << "(the ST rows must sit inside the theory ceiling — barely wider than\n"
               " the hardware envelope; CNV's max rate escapes the envelope by about\n"
               " f*0.9*delta/(n*P) = " << Table::num(2 * 0.9 * 0.05 / 7.0, 5)
            << " per unit rate, leader-sync by the full lie)\n";
  return 0;
}
