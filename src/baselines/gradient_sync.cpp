#include "baselines/gradient_sync.h"

#include <algorithm>

#include "util/contracts.h"

namespace stclock::baselines {

GradientProtocol::GradientProtocol(GradientParams params) : params_(params) {
  ST_REQUIRE(params_.n >= 1, "GradientProtocol: need at least one node");
  ST_REQUIRE(params_.period > 0, "GradientProtocol: period must be positive");
  ST_REQUIRE(params_.nominal_delay >= 0, "GradientProtocol: negative nominal delay");
  ST_REQUIRE(params_.gain > 0 && params_.gain <= 1.0,
             "GradientProtocol: gain must lie in (0, 1]");
}

void GradientProtocol::on_start(Context& ctx) {
  timer_ = ctx.set_timer_at_logical(params_.period * static_cast<double>(round_));
}

void GradientProtocol::on_message(Context& ctx, NodeId from, const Message& m) {
  const auto* g = std::get_if<GradientMsg>(&m);
  if (g == nullptr || from == ctx.self() || from >= params_.n) return;
  // Freshest estimate per neighbor wins. The offset is measured against our
  // clock at arrival; both clocks run within rho of real time, so it stays
  // accurate for the one round it is allowed to live. The table is kept
  // sorted by peer id so the averaging pass below accumulates in ascending
  // id order — the exact summation order of the legacy n-sized table.
  const Duration offset = (g->value + params_.nominal_delay) - ctx.logical_now();
  const auto it = std::lower_bound(peers_.begin(), peers_.end(), from,
                                   [](const PeerEstimate& e, NodeId id) { return e.peer < id; });
  if (it != peers_.end() && it->peer == from) {
    it->heard_round = g->round;
    it->offset = offset;
  } else {
    peers_.insert(it, PeerEstimate{from, g->round, offset});
  }
}

void GradientProtocol::on_timer(Context& ctx, TimerId id) {
  if (id != timer_) return;
  // Average the fresh neighbor estimates with our own zero offset, correct,
  // THEN broadcast and re-arm — so the next fire time accounts for the
  // adjustment just applied.
  Duration sum = 0;
  std::uint32_t count = 1;  // self
  for (const PeerEstimate& e : peers_) {
    if (e.heard_round + 1 >= round_ && e.heard_round > 0) {
      sum += e.offset;
      ++count;
    }
  }
  if (count > 1) {
    const Duration delta = params_.gain * (sum / static_cast<double>(count));
    ctx.logical().adjust_instant(ctx.hardware_now(), delta);
  }
  ctx.broadcast(Message(GradientMsg{round_, ctx.logical_now()}));
  ++round_;
  timer_ = ctx.set_timer_at_logical(params_.period * static_cast<double>(round_));
}

}  // namespace stclock::baselines
