#include "experiment/environment.h"

#include <utility>

#include "adversary/delay_policies.h"
#include "clocks/drift_models.h"
#include "util/contracts.h"

namespace stclock {

const char* drift_name(DriftKind kind) {
  switch (kind) {
    case DriftKind::kNone: return "none";
    case DriftKind::kRandomConstant: return "rand-const";
    case DriftKind::kRandomWalk: return "rand-walk";
    case DriftKind::kExtremal: return "extremal";
  }
  return "unknown";
}

const char* delay_name(DelayKind kind) {
  switch (kind) {
    case DelayKind::kZero: return "zero";
    case DelayKind::kHalf: return "half";
    case DelayKind::kMax: return "max";
    case DelayKind::kUniform: return "uniform";
    case DelayKind::kSplit: return "split";
    case DelayKind::kAlternating: return "alternating";
    case DelayKind::kPerLink: return "per-link";
  }
  return "unknown";
}

namespace experiment {

std::vector<HardwareClock> build_clock_fleet(DriftKind kind, std::uint32_t n, double rho,
                                             Duration initial_sync, RealTime horizon,
                                             Duration period, Rng& rng) {
  switch (kind) {
    case DriftKind::kNone: {
      std::vector<HardwareClock> fleet;
      fleet.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        const LocalTime initial =
            n == 1 ? 0.0
                   : initial_sync * static_cast<double>(i) / static_cast<double>(n - 1);
        fleet.push_back(drift::constant(initial, 1.0));
      }
      return fleet;
    }
    case DriftKind::kRandomConstant: {
      std::vector<HardwareClock> fleet;
      fleet.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        fleet.push_back(drift::random_constant(rng, rho, initial_sync));
      }
      return fleet;
    }
    case DriftKind::kRandomWalk:
      return drift::random_fleet(rng, n, rho, initial_sync, horizon + 1.0, period);
    case DriftKind::kExtremal:
      return drift::adversarial_fleet(n, rho, initial_sync);
  }
  ST_ASSERT(false, "build_clock_fleet: unhandled drift kind");
  return {};
}

std::unique_ptr<DelayPolicy> build_delay_policy(DelayKind kind, std::uint32_t n,
                                                Duration period, std::uint64_t link_seed) {
  switch (kind) {
    case DelayKind::kZero: return std::make_unique<FixedDelay>(0.0);
    case DelayKind::kHalf: return std::make_unique<FixedDelay>(0.5);
    case DelayKind::kMax: return std::make_unique<FixedDelay>(1.0);
    case DelayKind::kUniform: return std::make_unique<UniformDelay>(0.0, 1.0);
    case DelayKind::kSplit: {
      std::vector<NodeId> slow;
      for (NodeId id = 1; id < n; id += 2) slow.push_back(id);
      return std::make_unique<SplitDelay>(std::move(slow));
    }
    case DelayKind::kAlternating: return std::make_unique<AlternatingDelay>(period);
    case DelayKind::kPerLink: return std::make_unique<LinkDelay>(0.0, 1.0, link_seed);
  }
  ST_ASSERT(false, "build_delay_policy: unhandled delay kind");
  return nullptr;
}

std::shared_ptr<const Topology> build_topology(TopologyKind kind, std::uint32_t n,
                                               double gnp_p, std::uint64_t seed,
                                               std::uint32_t expander_k) {
  switch (kind) {
    case TopologyKind::kComplete: return std::make_shared<const Topology>(Topology::complete(n));
    case TopologyKind::kRing: return std::make_shared<const Topology>(Topology::ring(n));
    case TopologyKind::kTorus: return std::make_shared<const Topology>(Topology::torus(n));
    case TopologyKind::kStar: return std::make_shared<const Topology>(Topology::star(n));
    case TopologyKind::kGnp:
      return std::make_shared<const Topology>(Topology::gnp(n, gnp_p, seed));
    case TopologyKind::kExpander:
      return std::make_shared<const Topology>(Topology::expander(n, expander_k, seed));
    case TopologyKind::kCustom: break;  // not a generator family
  }
  ST_ASSERT(false, "build_topology: unhandled topology kind");
  return nullptr;
}

}  // namespace experiment
}  // namespace stclock
