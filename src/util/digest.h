#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

/// Self-contained streaming digest for content addressing.
///
/// Two independent 64-bit FNV-1a lanes (the second with a distinct offset
/// basis) run over the same byte stream and are finalized through a
/// splitmix64-style avalanche, yielding a 128-bit value rendered as 32 lower
/// case hex characters. This is NOT a cryptographic hash — it addresses a
/// trusted local cache, where what matters is (a) determinism across
/// platforms and builds (no word-size or endianness dependence: input is
/// consumed byte by byte, integers via an explicit little-endian helper) and
/// (b) enough avalanche that near-identical scenario specs never collide in
/// practice. The crypto in src/crypto/ stays reserved for the protocol's
/// adversary model; cache keys intentionally avoid that dependency so
/// src/util/ remains leaf-level.
namespace stclock::util {

class Digest {
 public:
  /// Appends raw bytes to the stream.
  Digest& update(const void* data, std::size_t len);
  Digest& update(std::string_view s) { return update(s.data(), s.size()); }
  /// Appends a 64-bit integer as 8 little-endian bytes (fixed width, so
  /// adjacent fields can never alias each other's encodings).
  Digest& update_u64(std::uint64_t v);

  /// Finalized 128-bit value; the stream may keep growing afterwards (the
  /// finalizer does not mutate lane state).
  [[nodiscard]] std::uint64_t lo() const;
  [[nodiscard]] std::uint64_t hi() const;
  /// 32 lowercase hex characters: hi then lo, big-endian digit order.
  [[nodiscard]] std::string hex() const;

 private:
  // FNV-1a offset bases: the standard one and an arbitrary odd variant so
  // the lanes decorrelate from the first byte on.
  std::uint64_t lane0_ = 0xcbf29ce484222325ULL;
  std::uint64_t lane1_ = 0x6c62272e07bb0142ULL;
};

/// One-shot convenience: Digest().update(s).hex().
[[nodiscard]] std::string digest_hex(std::string_view s);

/// Plain single-lane FNV-1a over raw bytes — the store's record checksum.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t len);

}  // namespace stclock::util
