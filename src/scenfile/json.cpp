#include "scenfile/json.h"

#include <cctype>
#include <cstdlib>

namespace stclock::scenfile {

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

const char* JsonValue::kind_name() const {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "unknown";
}

namespace {

class Parser {
 public:
  Parser(std::string_view input, const std::string& source)
      : input_(input), source_(source) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != input_.size()) fail("trailing characters after the JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ScenarioFileError(source_ + ":" + std::to_string(line_) + ": " + msg);
  }

  void skip_whitespace() {
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= input_.size()) fail("unexpected end of input");
    return input_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "', got '" + input_[pos_] + "'");
    }
  }

  bool consume_literal(std::string_view literal) {
    if (input_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    JsonValue value;
    value.line = line_;
    const char c = peek();
    switch (c) {
      case '{': parse_object(value); return value;
      case '[': parse_array(value); return value;
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.text = parse_string();
        return value;
      case 't':
        if (!consume_literal("true")) fail("invalid literal (expected \"true\")");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal (expected \"false\")");
        value.kind = JsonValue::Kind::kBool;
        value.boolean = false;
        return value;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal (expected \"null\")");
        value.kind = JsonValue::Kind::kNull;
        return value;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          parse_number(value);
          return value;
        }
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  void parse_object(JsonValue& value) {
    value.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("object keys must be strings");
      const int key_line = line_;
      std::string key = parse_string();
      if (value.find(key) != nullptr) {
        line_ = key_line;
        fail("duplicate key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = take();
      if (c == '}') return;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  void parse_array(JsonValue& value) {
    value.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      value.array.push_back(parse_value());
      skip_whitespace();
      const char c = take();
      if (c == ']') return;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= input_.size()) fail("unterminated string");
      const char c = input_[pos_++];
      if (c == '"') return out;
      if (c == '\n') fail("unterminated string (raw newline)");
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= input_.size()) fail("unterminated escape sequence");
      const char esc = input_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > input_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = input_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          // Scenario files are ASCII in practice; encode BMP code points as
          // UTF-8 and reject surrogates outright.
          if (code >= 0xD800 && code <= 0xDFFF) fail("\\u surrogates are not supported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  void parse_number(JsonValue& value) {
    value.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= input_.size() || !std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      fail("invalid number");
    }
    if (input_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < input_.size() && std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < input_.size() && input_[pos_] == '.') {
      ++pos_;
      if (pos_ >= input_.size() || !std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        fail("invalid number (digits required after '.')");
      }
      while (pos_ < input_.size() && std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < input_.size() && (input_[pos_] == 'e' || input_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < input_.size() && (input_[pos_] == '+' || input_[pos_] == '-')) ++pos_;
      if (pos_ >= input_.size() || !std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        fail("invalid number (digits required in exponent)");
      }
      while (pos_ < input_.size() && std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
    }
    value.raw = std::string(input_.substr(start, pos_ - start));
    value.number = std::strtod(value.raw.c_str(), nullptr);
  }

  std::string_view input_;
  const std::string& source_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

JsonValue parse_json(std::string_view input, const std::string& source) {
  return Parser(input, source).parse_document();
}

}  // namespace stclock::scenfile
