#include "experiment/registry.h"

#include <stdexcept>
#include <utility>

#include "baselines/gradient_sync.h"
#include "baselines/hssd_sync.h"
#include "baselines/interactive_convergence.h"
#include "baselines/leader_sync.h"
#include "baselines/lundelius_welch.h"
#include "baselines/unsynchronized.h"
#include "core/joiner.h"
#include "core/stab_sync.h"
#include "util/contracts.h"

namespace stclock::experiment {

namespace {

ProtocolRegistry::Entry sync_entry(std::string name, Variant variant) {
  ProtocolRegistry::Entry entry;
  entry.name = std::move(name);
  entry.mode = EngineMode::kSyncProtocol;
  entry.prepare = [variant](ScenarioSpec& spec) { spec.cfg.variant = variant; };
  entry.factory = [](const ScenarioSpec& spec, NodeId, bool joining) -> std::unique_ptr<Process> {
    // Fabric-aware thresholds: 0 (the paper's exact f+1 / 2f+1) except under
    // the sparse broadcast modes, where the quorum scales to the fan-in.
    const std::uint32_t fanin = broadcast_fanin(spec);
    return joining ? make_joining_process(spec.cfg, fanin)
                   : make_sync_process(spec.cfg, fanin);
  };
  return entry;
}

ProtocolRegistry::Entry baseline_entry(std::string name, ProcessFactory factory,
                                       std::function<void(ScenarioSpec&)> prepare = nullptr) {
  ProtocolRegistry::Entry entry;
  entry.name = std::move(name);
  entry.mode = EngineMode::kBaseline;
  entry.prepare = std::move(prepare);
  entry.factory = std::move(factory);
  return entry;
}

ProtocolRegistry built_ins() {
  using baselines::CnvParams;
  using baselines::CnvProtocol;
  using baselines::GradientParams;
  using baselines::GradientProtocol;
  using baselines::HssdParams;
  using baselines::HssdProtocol;
  using baselines::LeaderProtocol;
  using baselines::LwParams;
  using baselines::LwProtocol;
  using baselines::UnsynchronizedProtocol;

  ProtocolRegistry registry;
  registry.add(sync_entry("auth", Variant::kAuthenticated));
  registry.add(sync_entry("echo", Variant::kEcho));

  // Self-stabilizing Srikanth–Toueg over the authenticated primitive: the
  // same rounds on the wire, plus a hardware-anchored watchdog that repairs
  // arbitrarily scrambled memory (see core/stab_sync.h). Late joiners and
  // churned rebuilds integrate passively exactly like plain auth.
  {
    ProtocolRegistry::Entry entry;
    entry.name = "auth_stab";
    entry.mode = EngineMode::kSyncProtocol;
    entry.prepare = [](ScenarioSpec& spec) { spec.cfg.variant = Variant::kAuthenticated; };
    entry.factory = [](const ScenarioSpec& spec, NodeId,
                       bool joining) -> std::unique_ptr<Process> {
      return std::make_unique<StabSyncProtocol>(
          spec.cfg, make_primitive(spec.cfg, broadcast_fanin(spec)), joining);
    };
    registry.add(std::move(entry));
  }

  registry.add(baseline_entry(
      "lundelius_welch", [](const ScenarioSpec& spec, NodeId, bool) -> std::unique_ptr<Process> {
        LwParams params;
        params.n = spec.cfg.n;
        params.f = spec.cfg.f;
        params.period = spec.cfg.period;
        params.nominal_delay = spec.cfg.tdel / 2;
        params.collect_window = spec.delta + 4 * params.nominal_delay;
        return std::make_unique<LwProtocol>(params);
      }));

  registry.add(baseline_entry(
      "interactive_convergence",
      [](const ScenarioSpec& spec, NodeId, bool) -> std::unique_ptr<Process> {
        CnvParams params;
        params.n = spec.cfg.n;
        params.f = spec.cfg.f;
        params.period = spec.cfg.period;
        params.delta = spec.delta;
        params.nominal_delay = spec.cfg.tdel / 2;
        return std::make_unique<CnvProtocol>(params);
      }));

  registry.add(baseline_entry(
      "gradient", [](const ScenarioSpec& spec, NodeId, bool) -> std::unique_ptr<Process> {
        GradientParams params;
        params.n = spec.cfg.n;
        params.period = spec.cfg.period;
        params.nominal_delay = spec.cfg.tdel / 2;
        return std::make_unique<GradientProtocol>(params);
      }));

  registry.add(baseline_entry(
      "hssd", [](const ScenarioSpec& spec, NodeId, bool) -> std::unique_ptr<Process> {
        HssdParams params;
        params.n = spec.cfg.n;
        params.period = spec.cfg.period;
        params.beta = spec.cfg.tdel;
        params.window = spec.delta;
        return std::make_unique<HssdProtocol>(params);
      }));

  // The leader strawman comes in two registrations because corrupting the
  // leader changes which node leads: the engine corrupts the highest ids, so
  // the leader is the last node when it is to be corrupted, node 0 otherwise.
  registry.add(baseline_entry(
      "leader",
      [](const ScenarioSpec& spec, NodeId, bool) -> std::unique_ptr<Process> {
        return std::make_unique<LeaderProtocol>(0, spec.cfg.period, spec.cfg.tdel / 2);
      },
      [](ScenarioSpec& spec) { spec.attack = AttackKind::kNone; }));
  registry.add(baseline_entry(
      "leader_corrupt",
      [](const ScenarioSpec& spec, NodeId, bool) -> std::unique_ptr<Process> {
        return std::make_unique<LeaderProtocol>(spec.cfg.n - 1, spec.cfg.period,
                                                spec.cfg.tdel / 2);
      },
      [](ScenarioSpec& spec) {
        spec.attack = AttackKind::kLeaderLie;
        spec.cfg.f = std::max<std::uint32_t>(spec.cfg.f, 1);
      }));

  registry.add(baseline_entry(
      "unsynchronized", [](const ScenarioSpec&, NodeId, bool) -> std::unique_ptr<Process> {
        return std::make_unique<UnsynchronizedProtocol>();
      }));
  return registry;
}

}  // namespace

ProtocolRegistry& ProtocolRegistry::global() {
  static ProtocolRegistry registry = built_ins();
  return registry;
}

void ProtocolRegistry::add(Entry entry) {
  ST_REQUIRE(!entry.name.empty(), "ProtocolRegistry: entry needs a name");
  ST_REQUIRE(entry.factory != nullptr, "ProtocolRegistry: entry needs a factory");
  const auto [it, inserted] = entries_.try_emplace(entry.name, std::move(entry));
  (void)it;
  ST_REQUIRE(inserted, "ProtocolRegistry: duplicate protocol name");
}

const ProtocolRegistry::Entry* ProtocolRegistry::find(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

const ProtocolRegistry::Entry& ProtocolRegistry::at(const std::string& name) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    std::string known;
    for (const auto& [key, value] : entries_) {
      (void)value;
      known += known.empty() ? key : ", " + key;
    }
    throw std::out_of_range("unknown protocol \"" + name + "\" (known: " + known + ")");
  }
  return *entry;
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)entry;
    out.push_back(name);
  }
  return out;
}

}  // namespace stclock::experiment
