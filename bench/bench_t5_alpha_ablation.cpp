// Experiment T5 — Ablation of the adjustment constant alpha.
//
// The paper sets alpha = (1+rho) * D (one maximal acceptance latency). This
// ablation shows the trade-off the choice navigates: small alpha shrinks the
// skew contribution of the reset itself, while large alpha eats into the
// effective period (P - alpha), raising both the pulse rate ceiling and the
// drift-accumulation term. Correctness holds for any alpha in (0, P).

#include "bench_common.h"

namespace stclock {
namespace {

std::vector<experiment::SweepCell> build_cells(std::uint64_t seed) {
  experiment::SweepGrid grid(bench::adversarial_scenario(bench::default_auth_config(), 30.0,
                                                         seed));
  grid.axis("variant", {bench::variant_value(bench::default_auth_config()),
                        bench::variant_value(bench::default_echo_config())});
  std::vector<experiment::SweepGrid::Value> alphas;
  for (const double mult : {0.25, 0.5, 1.0, 2.0, 8.0, 32.0}) {
    alphas.emplace_back(Table::num(mult, 2), [mult](experiment::ScenarioSpec& spec) {
      spec.cfg.alpha = mult * theory::resolve_alpha(spec.cfg);
    });
  }
  grid.axis("alpha/default", std::move(alphas));
  return grid.cells();
}

}  // namespace
}  // namespace stclock

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("T5 — alpha ablation",
                      "alpha = (1+rho)*D balances skew against period/rate inflation", opts);

  const std::vector<experiment::SweepCell> cells = build_cells(opts.seed);
  const std::vector<experiment::ScenarioResult> results = bench::run_cells(cells, opts);
  if (bench::emit_json(cells, results, opts)) return 0;

  Table table({"variant", "alpha/default", "alpha(ms)", "skew(s)", "Dmax(s)",
               "max rate", "rate bound", "min period(s)", "live"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const experiment::ScenarioResult& r = results[i];
    table.add_row({cells[i].spec.cfg.variant_name(), cells[i].labels[1].second,
                   Table::num(cells[i].spec.cfg.alpha * 1e3, 2), Table::sci(r.steady_skew),
                   Table::sci(r.bounds.precision), Table::num(r.envelope.max_rate, 6),
                   Table::num(r.bounds.rate_hi, 6), Table::num(r.min_period, 3),
                   r.live ? "yes" : "NO"});
  }
  stclock::bench::emit(table, opts);
  std::cout << "(expect: skew within Dmax for all alpha; rate ceiling and min-period\n"
               " degradation grow with alpha — the paper's default keeps both negligible)\n";
  return 0;
}
