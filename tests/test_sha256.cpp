#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace stclock::crypto {
namespace {

std::string hex_of(const Digest& d) { return to_hex(d); }

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_of(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes = exactly one block; padding then occupies a full extra block.
  const std::string block(64, 'x');
  const Digest one_shot = sha256(block);

  Sha256 incremental;
  incremental.update(std::string_view(block).substr(0, 13));
  incremental.update(std::string_view(block).substr(13));
  EXPECT_EQ(one_shot, incremental.finish());
}

TEST(Sha256, IncrementalMatchesOneShotAcrossSplits) {
  const std::string msg =
      "the quick brown fox jumps over the lazy dog, repeatedly and at length, "
      "to exercise multi-block hashing paths";
  const Digest expected = sha256(msg);
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finish(), expected) << "split at " << split;
  }
}

TEST(Sha256, FiftyFiveAndFiftySixBytes) {
  // 55 bytes: padding fits in the same block; 56: spills into the next.
  EXPECT_EQ(hex_of(sha256(std::string(55, 'a'))),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(hex_of(sha256(std::string(56, 'a'))),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha256("round-1"), sha256("round-2"));
  EXPECT_NE(sha256("a"), sha256("b"));
}

TEST(Sha256, ReuseAfterFinishThrows) {
  Sha256 h;
  h.update("data");
  (void)h.finish();
  EXPECT_THROW(h.update("more"), std::logic_error);
  EXPECT_THROW((void)h.finish(), std::logic_error);
}

}  // namespace
}  // namespace stclock::crypto
