#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/message.h"
#include "util/types.h"

/// Time-ordered event queue for the discrete-event simulator.
///
/// Events at equal real times are dispatched in insertion order (a strictly
/// increasing sequence number breaks ties), which makes every run fully
/// deterministic for a given seed.
namespace stclock {

using TimerId = std::uint64_t;

struct TimerEvent {
  NodeId node = 0;
  TimerId id = 0;
};

struct DeliveryEvent {
  NodeId to = 0;
  NodeId from = 0;
  std::shared_ptr<const Message> msg;
  RealTime sent_at = 0;
};

struct Event {
  RealTime time = 0;
  std::uint64_t seq = 0;
  bool is_timer = false;
  TimerEvent timer;
  DeliveryEvent delivery;
};

class EventQueue {
 public:
  void push_timer(RealTime time, TimerEvent ev);
  void push_delivery(RealTime time, DeliveryEvent ev);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] RealTime next_time() const;

  /// Removes and returns the earliest event. Requires !empty().
  [[nodiscard]] Event pop();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace stclock
