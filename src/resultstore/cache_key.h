#pragma once

#include <string>
#include <string_view>

#include "experiment/scenario.h"

/// The cell fingerprint: one sweep cell → one content-addressed key.
///
/// A cell is a pure function of (fully-resolved spec, seed, engine), so its
/// key is a digest over exactly those three inputs:
///
///   key = digest( spec_to_json(resolved_spec(spec))   // canonical, bit-exact
///               , spec.seed                           // the derived per-cell seed
///               , engine_fingerprint() )              // version + build salt
///
/// The canonical serialization is scenfile::spec_to_json, which round-trips
/// every ScenarioSpec field bit-exactly (doubles at max_digits10) — two specs
/// share a key iff the engine would be handed identical inputs. The spec is
/// resolved through the registry's prepare hook first, so aliases that run
/// identically ("leader_corrupt" vs "leader" + forced attack) key
/// identically too.
///
/// Deliberately NOT in the key: thread count, shard boundaries (--cells),
/// sink choice, and host identity. Sweeps are bitwise-deterministic across
/// all of those (pinned by the shard-merge byte-identity suites), so cells
/// computed anywhere, in any partition of the grid, are interchangeable.
namespace stclock::resultstore {

/// Key under an explicit engine fingerprint (tests use this to prove that a
/// fingerprint bump invalidates every key).
[[nodiscard]] std::string cell_key(const experiment::ScenarioSpec& spec,
                                   std::string_view engine_fp);

/// Key under the running engine's own fingerprint.
[[nodiscard]] std::string cell_key(const experiment::ScenarioSpec& spec);

}  // namespace stclock::resultstore
