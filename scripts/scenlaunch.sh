#!/usr/bin/env bash
# scenlaunch — multi-host shard launcher for scenario-file grids.
#
# Splits a grid's global cell range into contiguous --cells A:B shards and
# dispatches one scenrun worker per shard across a pool of execution slots:
# local processes, remote hosts over ssh, or a mix (host manifest). Workers
# emit a heartbeat while they run; a shard whose heartbeat goes stale or
# whose wall-clock budget expires is a straggler — it is killed and
# re-dispatched on the next free slot (up to --retries). Finished shard
# dumps are scenmerged into the final CSV/JSON, byte-identical to an
# unsharded run (cells are pure functions of their spec, so WHERE and HOW
# OFTEN a shard ran can never show up in the bytes) — `scripts/check.sh
# --scen/--store` asserts exactly that, straggler re-dispatch included.
#
# Usage: scripts/scenlaunch.sh GRID.json (--workers N | --hosts FILE) [options]
#   --workers N      N local worker slots (shorthand for a manifest of
#                    "local N")
#   --hosts FILE     host manifest: one "HOST [SLOTS]" per line (# comments).
#                    HOST "local" runs in-process; anything else dispatches
#                    via "ssh -o BatchMode=yes HOST" and streams the shard
#                    dumps back over the connection (no shared filesystem
#                    needed; the repo + build dir must exist at --remote-dir
#                    on every remote host)
#   --csv FILE       merged CSV output
#   --json FILE      merged JSON output       (at least one of --csv/--json)
#   --shards N       shard count (default: one per slot; oversplit for
#                    better straggler recovery on heterogeneous pools)
#   --store DIR      pass --store DIR to every worker (give all hosts the
#                    same shared path for cross-host cache reuse)
#   --no-cache       pass --no-cache to every worker
#   --threads N      threads per worker (scenrun --threads; default 1)
#   --heartbeat SEC  heartbeat staleness that marks a straggler (default 30)
#   --shard-timeout SEC  wall-clock cap per shard attempt (default 600)
#   --retries N      re-dispatches allowed per shard (default 2)
#   --remote-dir DIR repo root on ssh hosts (default: this repo's root path)
#   --build-dir DIR  directory holding scenrun/scenmerge (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
  sed -n 's/^# \{0,1\}//p' "$0" | sed -n '2,37p'
}

GRID=""
WORKERS=0
HOSTS_FILE=""
CSV_OUT=""
JSON_OUT=""
SHARDS=0
STORE_DIR=""
NO_CACHE=0
THREADS=1
HB_TIMEOUT=30
SHARD_TIMEOUT=600
RETRIES=2
REMOTE_DIR="$PWD"
BUILD_DIR="build"
TEST_STRAGGLE=-1   # hidden: shard whose first attempt wedges (no heartbeat)
while [[ $# -gt 0 ]]; do
  case "$1" in
    -h|--help) usage; exit 0 ;;
    --workers) WORKERS="$2"; shift 2 ;;
    --hosts) HOSTS_FILE="$2"; shift 2 ;;
    --csv) CSV_OUT="$2"; shift 2 ;;
    --json) JSON_OUT="$2"; shift 2 ;;
    --shards) SHARDS="$2"; shift 2 ;;
    --store) STORE_DIR="$2"; shift 2 ;;
    --no-cache) NO_CACHE=1; shift ;;
    --threads) THREADS="$2"; shift 2 ;;
    --heartbeat) HB_TIMEOUT="$2"; shift 2 ;;
    --shard-timeout) SHARD_TIMEOUT="$2"; shift 2 ;;
    --retries) RETRIES="$2"; shift 2 ;;
    --remote-dir) REMOTE_DIR="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --test-straggle) TEST_STRAGGLE="$2"; shift 2 ;;
    -*) echo "scenlaunch: unknown option: $1" >&2; usage >&2; exit 2 ;;
    *)
      [[ -z "$GRID" ]] || { echo "scenlaunch: more than one grid file" >&2; exit 2; }
      GRID="$1"; shift ;;
  esac
done

[[ -n "$GRID" ]] || { echo "scenlaunch: no grid file given" >&2; usage >&2; exit 2; }
[[ -n "$CSV_OUT" || -n "$JSON_OUT" ]] \
  || { echo "scenlaunch: need --csv and/or --json output" >&2; exit 2; }
SCENRUN="$BUILD_DIR/scenrun"
SCENMERGE="$BUILD_DIR/scenmerge"
[[ -x "$SCENRUN" && -x "$SCENMERGE" ]] \
  || { echo "scenlaunch: $SCENRUN / $SCENMERGE not built (cmake --build $BUILD_DIR)" >&2; exit 1; }

# --- Slot pool: expand (--workers | --hosts) into one host name per slot -----
SLOT_HOST=()
if [[ -n "$HOSTS_FILE" ]]; then
  [[ -r "$HOSTS_FILE" ]] || { echo "scenlaunch: cannot read hosts file: $HOSTS_FILE" >&2; exit 2; }
  while read -r host slots _; do
    [[ -n "$host" && "$host" != \#* ]] || continue
    [[ -n "$slots" ]] || slots=1
    [[ "$slots" =~ ^[0-9]+$ && "$slots" -ge 1 ]] \
      || { echo "scenlaunch: bad slot count for host $host: $slots" >&2; exit 2; }
    for (( s = 0; s < slots; s++ )); do SLOT_HOST+=("$host"); done
  done < "$HOSTS_FILE"
  [[ ${#SLOT_HOST[@]} -ge 1 ]] || { echo "scenlaunch: empty hosts file" >&2; exit 2; }
else
  [[ "$WORKERS" =~ ^[0-9]+$ && "$WORKERS" -ge 1 ]] \
    || { echo "scenlaunch: need --workers N (>= 1) or --hosts FILE" >&2; exit 2; }
  for (( s = 0; s < WORKERS; s++ )); do SLOT_HOST+=(local); done
fi
NSLOTS=${#SLOT_HOST[@]}

TOTAL="$("$SCENRUN" "$GRID" --count)"
(( SHARDS >= 1 )) || SHARDS=$NSLOTS
(( SHARDS <= TOTAL )) || SHARDS=$TOTAL
(( NSLOTS <= SHARDS )) || NSLOTS=$SHARDS

STORE_ARGS=""
[[ -z "$STORE_DIR" ]] || STORE_ARGS="--store '$STORE_DIR'"
(( NO_CACHE == 0 )) || STORE_ARGS="$STORE_ARGS --no-cache"

TMP="$(mktemp -d)"
cleanup() {
  # Kill any worker process groups still running, then drop the scratch dir.
  local pid
  for pid in "${SLOT_PID[@]:-}"; do
    [[ -z "$pid" ]] || kill -TERM -- "-$pid" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

# Contiguous near-even split: the first (TOTAL % SHARDS) shards get one
# extra cell, covering [0, TOTAL) exactly.
SHARD_RANGE=()
lo=0
for (( sh = 0; sh < SHARDS; sh++ )); do
  size=$(( TOTAL / SHARDS + (sh < TOTAL % SHARDS ? 1 : 0) ))
  SHARD_RANGE+=("$lo:$(( lo + size ))")
  lo=$(( lo + size ))
done

# --- Dispatch ----------------------------------------------------------------
# A worker is a setsid'd process group: a heartbeat loop touching hb.SHARD
# once a second, plus the actual scenrun (local) or ssh pipeline (remote).
# Remote shards write to a remote mktemp dir and stream a tar of the two
# dumps back over the ssh connection — no shared filesystem required.
launch_shard() {
  local slot=$1 shard=$2 attempt=$3
  local host=${SLOT_HOST[$slot]}
  local range=${SHARD_RANGE[$shard]}
  local hb="$TMP/hb.$shard"
  local ocsv="$TMP/out.$shard.$attempt.csv" ojson="$TMP/out.$shard.$attempt.json"
  local inner

  if [[ "$shard" == "$TEST_STRAGGLE" && "$attempt" -eq 1 ]]; then
    # Fault injection for the smoke suite: a wedged worker — alive, silent,
    # no heartbeat. The monitor must detect and re-dispatch it.
    inner="exec sleep 100000"
  elif [[ "$host" == local || "$host" == localhost ]]; then
    inner="( while :; do touch '$hb'; sleep 1; done ) & hbpid=\$!
trap 'kill \$hbpid 2>/dev/null' EXIT
'$SCENRUN' '$GRID' --cells '$range' --threads '$THREADS' $STORE_ARGS \
  --csv '$ocsv' --json '$ojson'"
  else
    local remote="set -e; cd '$REMOTE_DIR'; t=\$(mktemp -d); trap 'rm -rf \"\$t\"' EXIT
'$BUILD_DIR/scenrun' '$GRID' --cells '$range' --threads '$THREADS' $STORE_ARGS \
  --csv \"\$t/s.csv\" --json \"\$t/s.json\" 1>&2
tar -C \"\$t\" -cf - s.csv s.json"
    inner="set -e
( while :; do touch '$hb'; sleep 1; done ) & hbpid=\$!
trap 'kill \$hbpid 2>/dev/null' EXIT
ssh -o BatchMode=yes '$host' ${remote@Q} > '$TMP/out.$shard.$attempt.tar'
mkdir -p '$TMP/x.$shard.$attempt'
tar -xf '$TMP/out.$shard.$attempt.tar' -C '$TMP/x.$shard.$attempt'
mv '$TMP/x.$shard.$attempt/s.csv' '$ocsv'
mv '$TMP/x.$shard.$attempt/s.json' '$ojson'"
  fi

  touch "$hb"
  setsid bash -c "$inner" > "$TMP/log.$shard.$attempt" 2>&1 &
  SLOT_PID[$slot]=$!
  SLOT_SHARD[$slot]=$shard
  SLOT_ATTEMPT[$slot]=$attempt
  SLOT_START[$slot]=$(date +%s)
}

QUEUE=()
for (( sh = 0; sh < SHARDS; sh++ )); do QUEUE+=("$sh"); done
SLOT_PID=()
SLOT_SHARD=()
SLOT_ATTEMPT=()
SLOT_START=()
for (( s = 0; s < NSLOTS; s++ )); do SLOT_PID[$s]=""; done
declare -A ATTEMPTS DONE_ATTEMPT
DONE_COUNT=0
REDISPATCHED=0

requeue_or_fail() {
  local shard=$1 why=$2
  if (( ${ATTEMPTS[$shard]} > RETRIES )); then
    echo "scenlaunch: shard ${SHARD_RANGE[$shard]} failed after ${ATTEMPTS[$shard]} attempt(s): $why" >&2
    sed 's/^/scenlaunch:   worker: /' "$TMP/log.$shard.${ATTEMPTS[$shard]}" >&2 || true
    exit 1
  fi
  echo "scenlaunch: shard ${SHARD_RANGE[$shard]} $why — re-dispatching" >&2
  REDISPATCHED=$(( REDISPATCHED + 1 ))
  QUEUE+=("$shard")
}

while (( DONE_COUNT < SHARDS )); do
  progressed=0
  for (( s = 0; s < NSLOTS; s++ )); do
    pid=${SLOT_PID[$s]}
    if [[ -n "$pid" ]]; then
      shard=${SLOT_SHARD[$s]}
      attempt=${SLOT_ATTEMPT[$s]}
      if kill -0 "$pid" 2>/dev/null; then
        now=$(date +%s)
        hb_mtime=$(stat -c %Y "$TMP/hb.$shard" 2>/dev/null || echo 0)
        if (( now - hb_mtime > HB_TIMEOUT )) || (( now - SLOT_START[$s] > SHARD_TIMEOUT )); then
          kill -TERM -- "-$pid" 2>/dev/null || true
          wait "$pid" 2>/dev/null || true
          SLOT_PID[$s]=""
          requeue_or_fail "$shard" "straggling (heartbeat stale or over budget), killed"
          progressed=1
        fi
      else
        rc=0; wait "$pid" || rc=$?
        SLOT_PID[$s]=""
        if [[ "$rc" -eq 0 && -s "$TMP/out.$shard.$attempt.csv" \
              && -s "$TMP/out.$shard.$attempt.json" ]]; then
          DONE_ATTEMPT[$shard]=$attempt
          DONE_COUNT=$(( DONE_COUNT + 1 ))
        else
          requeue_or_fail "$shard" "worker exited rc=$rc"
        fi
        progressed=1
      fi
    fi
    if [[ -z "${SLOT_PID[$s]}" && ${#QUEUE[@]} -gt 0 ]]; then
      shard=${QUEUE[0]}
      QUEUE=("${QUEUE[@]:1}")
      ATTEMPTS[$shard]=$(( ${ATTEMPTS[$shard]:-0} + 1 ))
      launch_shard "$s" "$shard" "${ATTEMPTS[$shard]}"
      progressed=1
    fi
  done
  (( progressed == 1 )) || sleep 0.2
done

# --- Merge (shard order is irrelevant — scenmerge re-orders by cell index) ---
if [[ -n "$CSV_OUT" ]]; then
  CSVS=()
  for (( sh = 0; sh < SHARDS; sh++ )); do CSVS+=("$TMP/out.$sh.${DONE_ATTEMPT[$sh]}.csv"); done
  "$SCENMERGE" -o "$CSV_OUT" "${CSVS[@]}"
fi
if [[ -n "$JSON_OUT" ]]; then
  JSONS=()
  for (( sh = 0; sh < SHARDS; sh++ )); do JSONS+=("$TMP/out.$sh.${DONE_ATTEMPT[$sh]}.json"); done
  "$SCENMERGE" -o "$JSON_OUT" "${JSONS[@]}"
fi
echo "scenlaunch: $TOTAL cells, $SHARDS shard(s) across $NSLOTS slot(s)," \
     "$REDISPATCHED re-dispatch(es) -> ${CSV_OUT:-}${CSV_OUT:+ }${JSON_OUT:-}"
