#pragma once

#include <iosfwd>
#include <vector>

#include "experiment/sweep.h"

/// Machine-readable sinks for sweep output. Both emit one record per cell
/// with the cell's axis labels, the resolved spec parameters, and the full
/// metric set, so downstream plotting/analysis never needs bespoke parsing
/// per experiment.
namespace stclock::experiment {

/// RFC-4180-ish CSV: one header row (axis labels first, in order of first
/// appearance across cells, then spec and metric columns), one row per cell.
void write_csv(std::ostream& os, const std::vector<SweepCell>& cells,
               const std::vector<ScenarioResult>& results);

/// A JSON array of {"labels": {...}, "spec": {...}, "result": {...}} objects.
void write_json(std::ostream& os, const std::vector<SweepCell>& cells,
                const std::vector<ScenarioResult>& results);

}  // namespace stclock::experiment
