#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "sim/topology.h"

/// The Topology abstraction: generator shapes, adjacency/connectivity
/// queries, determinism of seeded graphs — and the bit-identity contract of
/// the message path: a simulator given an explicit complete topology must
/// behave exactly like the legacy topology-free simulator, while sparse
/// graphs restrict broadcast fan-out to neighbors.
namespace stclock {
namespace {

TEST(Topology, CompleteLinksEveryDistinctPair) {
  const Topology topo = Topology::complete(5);
  EXPECT_TRUE(topo.is_complete());
  EXPECT_EQ(topo.edge_count(), 10u);
  for (NodeId a = 0; a < 5; ++a) {
    EXPECT_FALSE(topo.adjacent(a, a));
    EXPECT_EQ(topo.degree(a), 4u);
    for (NodeId b = 0; b < 5; ++b) {
      EXPECT_EQ(topo.adjacent(a, b), a != b);
    }
  }
  EXPECT_TRUE(topo.is_connected());
}

TEST(Topology, RingIsTwoRegularAndConnected) {
  const Topology topo = Topology::ring(6);
  EXPECT_FALSE(topo.is_complete());
  EXPECT_EQ(topo.edge_count(), 6u);
  for (NodeId id = 0; id < 6; ++id) {
    EXPECT_EQ(topo.degree(id), 2u);
    EXPECT_TRUE(topo.adjacent(id, (id + 1) % 6));
    EXPECT_FALSE(topo.adjacent(id, (id + 3) % 6));
  }
  EXPECT_TRUE(topo.is_connected());
  EXPECT_THROW((void)Topology::ring(2), std::logic_error);
}

TEST(Topology, TorusIsFourRegularWhenBothDimensionsWrap) {
  const Topology topo = Topology::torus(3, 4);
  EXPECT_EQ(topo.n(), 12u);
  for (NodeId id = 0; id < 12; ++id) EXPECT_EQ(topo.degree(id), 4u);
  EXPECT_EQ(topo.edge_count(), 24u);
  EXPECT_TRUE(topo.is_connected());

  // Near-square auto-factorization: 12 -> 3 x 4.
  EXPECT_EQ(Topology::torus(12).edge_count(), 24u);
}

TEST(Topology, TorusAutoFactorizationIsNearSquareAndRejectsPrimes) {
  // torus(n) must pick rows <= cols with rows the LARGEST divisor <= sqrt(n)
  // — the most-square grid, never a degenerate 1 x n ring in disguise.
  for (const std::uint32_t n : {9u, 12u, 16u, 24u, 100u, 143u}) {
    const Topology topo = Topology::torus(n);
    EXPECT_EQ(topo.n(), n);
    EXPECT_TRUE(topo.is_connected());
    // Every node has degree 4 when both dimensions wrap with length >= 3;
    // a 2 x k grid double-links the vertical wrap, giving degree 3.
    for (NodeId id = 0; id < n; ++id) EXPECT_GE(topo.degree(id), 3u) << "n=" << n;
  }
  // 143 = 11 x 13: the near-square split of a semiprime, with rows <= cols
  // (node 0's wrap neighbors pin the factorization: right wrap at cols - 1,
  // down wrap at (rows - 1) * cols).
  const Topology semi = Topology::torus(143);
  EXPECT_EQ(semi.edge_count(), 2u * 143u);
  EXPECT_EQ(semi.neighbor_list(0), (std::vector<NodeId>{1, 12, 13, 130}));

  // Prime n has no grid at all — it used to silently degenerate to a 1 x n
  // ring, reporting "torus" scaling numbers that were really ring numbers.
  EXPECT_THROW((void)Topology::torus(7), std::logic_error);
  EXPECT_THROW((void)Topology::torus(101), std::logic_error);
  EXPECT_THROW((void)Topology::torus(99991), std::logic_error);
  // Tiny n where no proper grid exists are still accepted as rings so the
  // golden-scale specs (n <= 9) keep their historic shapes.
  EXPECT_EQ(Topology::torus(4).n(), 4u);
}

TEST(Topology, StarRoutesEverythingThroughTheHub) {
  const Topology topo = Topology::star(6);
  EXPECT_EQ(topo.degree(0), 5u);
  for (NodeId spoke = 1; spoke < 6; ++spoke) {
    EXPECT_EQ(topo.degree(spoke), 1u);
    EXPECT_TRUE(topo.adjacent(0, spoke));
    EXPECT_FALSE(topo.adjacent(spoke, spoke % 5 + 1));
  }
  EXPECT_TRUE(topo.is_connected());
}

TEST(Topology, GnpIsAPureFunctionOfItsSeed) {
  const Topology a = Topology::gnp(16, 0.4, 9);
  const Topology b = Topology::gnp(16, 0.4, 9);
  const Topology c = Topology::gnp(16, 0.4, 10);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (NodeId id = 0; id < 16; ++id) EXPECT_EQ(a.neighbor_list(id), b.neighbor_list(id));
  // A different seed draws a different graph (16 choose 2 coin flips at
  // p = 0.4 colliding entirely would be astronomically unlikely).
  bool differs = c.edge_count() != a.edge_count();
  for (NodeId id = 0; !differs && id < 16; ++id) {
    differs = a.neighbor_list(id) != c.neighbor_list(id);
  }
  EXPECT_TRUE(differs);
  EXPECT_THROW((void)Topology::gnp(8, 0.0, 1), std::logic_error);
  EXPECT_THROW((void)Topology::gnp(8, 1.5, 1), std::logic_error);
}

TEST(Topology, FromEdgesValidatesAndDetectsDisconnection) {
  const Topology path = Topology::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(path.is_connected());
  EXPECT_EQ(path.degree(1), 2u);

  const Topology split = Topology::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(split.is_connected());

  EXPECT_THROW((void)Topology::from_edges(3, {{0, 3}}), std::logic_error);  // range
  EXPECT_THROW((void)Topology::from_edges(3, {{1, 1}}), std::logic_error);  // loop
  EXPECT_THROW((void)Topology::from_edges(3, {{0, 1}, {1, 0}}), std::logic_error);  // dup
}

// --- Message-path behavior -------------------------------------------------

/// Broadcasts one message at t=1 and records everything it receives.
class PingProcess final : public Process {
 public:
  void on_start(Context& ctx) override { (void)ctx.set_timer_at_hardware(1.0); }
  void on_timer(Context& ctx, TimerId) override { ctx.broadcast(Message(InitMsg{1})); }
  void on_message(Context&, NodeId from, const Message&) override {
    heard_from.push_back(from);
  }

  std::vector<NodeId> heard_from;
};

struct Fleet {
  std::unique_ptr<Simulator> sim;
  std::vector<PingProcess*> procs;
};

Fleet build_fleet(std::uint32_t n, std::shared_ptr<const Topology> topo, std::uint64_t seed) {
  SimParams params;
  params.n = n;
  params.tdel = 0.01;
  params.seed = seed;
  params.topology = std::move(topo);
  std::vector<HardwareClock> clocks;
  for (std::uint32_t i = 0; i < n; ++i) clocks.emplace_back(0.0, 1.0);
  Fleet fleet;
  fleet.sim = std::make_unique<Simulator>(params, std::move(clocks),
                                          std::make_unique<UniformDelay>(0.0, 1.0), nullptr);
  for (NodeId id = 0; id < n; ++id) {
    auto proc = std::make_unique<PingProcess>();
    fleet.procs.push_back(proc.get());
    fleet.sim->set_process(id, std::move(proc));
  }
  return fleet;
}

TEST(TopologySimulator, NullAndExplicitCompleteTopologyAreBitIdentical) {
  // The refactor's core contract: installing the (default) complete graph
  // explicitly takes the same code path — same RNG draws, same event order,
  // same counters — as the legacy topology-free simulator.
  Fleet legacy = build_fleet(6, nullptr, 42);
  Fleet complete = build_fleet(6, std::make_shared<const Topology>(Topology::complete(6)), 42);
  legacy.sim->run_until(2.0);
  complete.sim->run_until(2.0);

  EXPECT_EQ(legacy.sim->events_dispatched(), complete.sim->events_dispatched());
  EXPECT_EQ(legacy.sim->counters().total_sent(), complete.sim->counters().total_sent());
  EXPECT_EQ(legacy.sim->counters().total_bytes(), complete.sim->counters().total_bytes());
  for (NodeId id = 0; id < 6; ++id) {
    EXPECT_EQ(legacy.procs[id]->heard_from, complete.procs[id]->heard_from);
  }
}

TEST(TopologySimulator, BroadcastReachesExactlySelfPlusNeighbors) {
  const auto topo = std::make_shared<const Topology>(Topology::ring(5));
  Fleet fleet = build_fleet(5, topo, 7);
  fleet.sim->run_until(2.0);

  for (NodeId id = 0; id < 5; ++id) {
    // Everyone broadcast once; node `id` hears itself plus its two ring
    // neighbors, and nobody else.
    std::set<NodeId> heard(fleet.procs[id]->heard_from.begin(),
                           fleet.procs[id]->heard_from.end());
    const std::set<NodeId> expected = {id, (id + 1) % 5, (id + 4) % 5};
    EXPECT_EQ(heard, expected) << "node " << id;
  }
  EXPECT_EQ(fleet.sim->messages_dropped(), 0u);
}

TEST(TopologySimulator, OffGraphUnicastIsDroppedAndCounted) {
  /// Unicasts to the opposite corner of a ring have no link to ride.
  class UnicastProcess final : public Process {
   public:
    void on_start(Context& ctx) override { (void)ctx.set_timer_at_hardware(1.0); }
    void on_timer(Context& ctx, TimerId) override { ctx.send(2, Message(InitMsg{1})); }
    void on_message(Context&, NodeId, const Message& m) override {
      received += std::holds_alternative<InitMsg>(m) ? 1 : 0;
    }
    int received = 0;
  };

  SimParams params;
  params.n = 4;
  params.tdel = 0.01;
  params.seed = 1;
  params.topology = std::make_shared<const Topology>(Topology::ring(4));
  std::vector<HardwareClock> clocks;
  for (int i = 0; i < 4; ++i) clocks.emplace_back(0.0, 1.0);
  Simulator sim(params, std::move(clocks), std::make_unique<FixedDelay>(0.5), nullptr);
  std::vector<UnicastProcess*> procs;
  for (NodeId id = 0; id < 4; ++id) {
    auto proc = std::make_unique<UnicastProcess>();
    procs.push_back(proc.get());
    sim.set_process(id, std::move(proc));
  }
  sim.run_until(2.0);

  // Senders 1 and 3 are ring-adjacent to node 2; senders 0 and 2 are not
  // (node 2's unicast to itself is local and always delivered).
  EXPECT_EQ(procs[2]->received, 3);
  EXPECT_EQ(sim.messages_dropped(), 1u);  // node 0's send had no link
}

// Breadth-first eccentricity sweep; n is small enough for the full O(n * E)
// scan.
std::uint32_t bfs_diameter(const Topology& topo) {
  std::uint32_t diameter = 0;
  for (NodeId src = 0; src < topo.n(); ++src) {
    std::vector<std::uint32_t> dist(topo.n(), UINT32_MAX);
    std::vector<NodeId> frontier = {src};
    dist[src] = 0;
    while (!frontier.empty()) {
      std::vector<NodeId> next;
      for (const NodeId a : frontier) {
        const auto [nbrs, degree] = topo.neighbor_span(a);
        for (std::size_t i = 0; i < degree; ++i) {
          const NodeId b = nbrs[i];
          if (dist[b] == UINT32_MAX) {
            dist[b] = dist[a] + 1;
            next.push_back(b);
          }
        }
      }
      frontier = std::move(next);
    }
    for (const std::uint32_t d : dist) diameter = std::max(diameter, d);
  }
  return diameter;
}

TEST(Topology, ExpanderIsDeterministicPerSeed) {
  const Topology a = Topology::expander(64, 8, 42);
  const Topology b = Topology::expander(64, 8, 42);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  bool differs_from_reseed = false;
  const Topology c = Topology::expander(64, 8, 43);
  for (NodeId x = 0; x < 64; ++x) {
    for (NodeId y = 0; y < 64; ++y) {
      EXPECT_EQ(a.adjacent(x, y), b.adjacent(x, y));
      differs_from_reseed |= a.adjacent(x, y) != c.adjacent(x, y);
    }
  }
  // 64 choose 2 pairs and two independent 4-cycle unions: a collision would
  // mean the seed never reached the shuffles.
  EXPECT_TRUE(differs_from_reseed);
}

TEST(Topology, ExpanderDegreeAndConnectivityBounds) {
  // The union of k/2 Hamiltonian cycles: every node keeps at least its two
  // cycle neighbors from one cycle and at most k total (duplicate edges
  // across cycles merge), and the first cycle alone already connects the
  // graph.
  for (const std::uint32_t k : {2u, 8u, 16u}) {
    const Topology topo = Topology::expander(100, k, 7);
    EXPECT_TRUE(topo.is_connected());
    EXPECT_FALSE(topo.is_complete());
    for (NodeId id = 0; id < 100; ++id) {
      EXPECT_GE(topo.degree(id), 2u);
      EXPECT_LE(topo.degree(id), k);
    }
  }
}

TEST(Topology, ExpanderSpectralGapIsPinnedDirectly) {
  // The real expander certificate, replacing the old BFS-diameter proxy:
  // power-iterate |lambda_2| of the normalized adjacency. Random unions of
  // k/2 Hamiltonian cycles sit near the Ramanujan bound 2*sqrt(k-1)/k
  // (~0.66 at k=8); 0.8 leaves seed-to-seed slack while still failing any
  // lattice-like generator regression, whose gap vanishes as n grows. The
  // diameter bound follows from the gap, so this assertion is strictly
  // stronger than the one it replaces.
  for (const std::uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
    const Topology topo = Topology::expander(512, 8, seed);
    const double l2 = topo.normalized_lambda2(/*iters=*/200, /*seed=*/99);
    EXPECT_LE(l2, 0.8) << "seed " << seed;
    EXPECT_GT(l2, 0.0) << "seed " << seed;
    // Diameter sanity retained: a genuine gap of this size forces
    // logarithmic diameter, so the old proxy must keep holding too.
    const double log_bound = std::log(512.0) / std::log(8.0 - 1.0);
    EXPECT_LE(bfs_diameter(topo), static_cast<std::uint32_t>(2 * log_bound + 4))
        << "seed " << seed;
  }
}

TEST(Topology, SpectralGapSeparatesExpanderFromRing) {
  // The contrast that makes the metric meaningful: the 512-ring's normalized
  // lambda_2 is cos(2*pi/512) ~ 0.99992 — essentially no gap — while the
  // k=8 expander above sits below 0.8. Also pins determinism: same
  // (graph, iters, seed) must reproduce the estimate exactly.
  const Topology ring = Topology::ring(512);
  const double ring_l2 = ring.normalized_lambda2(/*iters=*/200, /*seed=*/99);
  EXPECT_GE(ring_l2, 0.9);
  EXPECT_LE(ring_l2, 1.0 + 1e-9);

  const Topology exp8 = Topology::expander(512, 8, 1);
  const double a = exp8.normalized_lambda2(/*iters=*/200, /*seed=*/99);
  const double b = exp8.normalized_lambda2(/*iters=*/200, /*seed=*/99);
  EXPECT_EQ(a, b);
  EXPECT_LT(a, ring_l2);

  // The complete family has no CSR rows to iterate; the call must refuse.
  const Topology full = Topology::complete(16);
  EXPECT_THROW((void)full.normalized_lambda2(10, 1), std::logic_error);
}

TEST(Topology, ExpanderRejectsDegenerateDegrees) {
  EXPECT_THROW((void)Topology::expander(10, 3, 1), std::logic_error);   // odd k
  EXPECT_THROW((void)Topology::expander(10, 0, 1), std::logic_error);   // k < 2
  EXPECT_THROW((void)Topology::expander(10, 10, 1), std::logic_error);  // k >= n
  EXPECT_THROW((void)Topology::expander(2, 2, 1), std::logic_error);    // n < 3
}

TEST(TopologySimulator, TopologySizeMustMatchFleetSize) {
  SimParams params;
  params.n = 4;
  params.tdel = 0.01;
  params.topology = std::make_shared<const Topology>(Topology::ring(5));
  std::vector<HardwareClock> clocks;
  for (int i = 0; i < 4; ++i) clocks.emplace_back(0.0, 1.0);
  EXPECT_THROW(Simulator(params, std::move(clocks), std::make_unique<FixedDelay>(0.5), nullptr),
               std::logic_error);
}

}  // namespace
}  // namespace stclock
