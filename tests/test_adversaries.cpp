#include <gtest/gtest.h>

#include "adversary/strategies.h"
#include "core/runner.h"

namespace stclock {
namespace {

TEST(Adversaries, NamesAreStable) {
  EXPECT_STREQ(attack_name(AttackKind::kNone), "none");
  EXPECT_STREQ(attack_name(AttackKind::kCrash), "crash");
  EXPECT_STREQ(attack_name(AttackKind::kSpamEarly), "spam-early");
  EXPECT_STREQ(attack_name(AttackKind::kEquivocate), "equivocate");
  EXPECT_STREQ(attack_name(AttackKind::kReplay), "replay");
  EXPECT_STREQ(attack_name(AttackKind::kForge), "forge");
  EXPECT_STREQ(attack_name(AttackKind::kCnvPull), "cnv-pull");
  EXPECT_STREQ(attack_name(AttackKind::kLwPull), "lw-pull");
  EXPECT_STREQ(attack_name(AttackKind::kLeaderLie), "leader-lie");
}

TEST(Adversaries, FactoryReturnsNullForPassiveKinds) {
  AttackParams params;
  EXPECT_EQ(make_attack(AttackKind::kNone, params), nullptr);
  EXPECT_EQ(make_attack(AttackKind::kCrash, params), nullptr);
  EXPECT_NE(make_attack(AttackKind::kSpamEarly, params), nullptr);
  EXPECT_NE(make_attack(AttackKind::kForge, params), nullptr);
}

RunSpec attack_spec(AttackKind attack) {
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;

  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 11;
  spec.horizon = 15.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  spec.attack = attack;
  return spec;
}

TEST(Adversaries, EveryAttackLeavesProtocolCorrect) {
  for (AttackKind attack : {AttackKind::kCrash, AttackKind::kSpamEarly,
                            AttackKind::kEquivocate, AttackKind::kReplay,
                            AttackKind::kForge}) {
    const RunResult r = run_sync(attack_spec(attack));
    EXPECT_TRUE(r.live) << attack_name(attack);
    EXPECT_LE(r.steady_skew, r.bounds.precision) << attack_name(attack);
    EXPECT_LE(r.pulse_spread, r.bounds.pulse_spread + 1e-9) << attack_name(attack);
  }
}

TEST(Adversaries, SpamEarlyActuallyAccelerates) {
  // The attack should shorten periods relative to the max-delay benign run —
  // it is a real attack, just one the bounds absorb.
  RunSpec benign = attack_spec(AttackKind::kCrash);
  benign.delay = DelayKind::kMax;
  RunSpec spam = attack_spec(AttackKind::kSpamEarly);
  spam.delay = DelayKind::kMax;

  const RunResult rb = run_sync(benign);
  const RunResult rs = run_sync(spam);
  EXPECT_LT(rs.min_period, rb.min_period);
}

TEST(Adversaries, ForgeNeverBreaksUnforgeabilityFloor) {
  RunSpec spec = attack_spec(AttackKind::kForge);
  spec.delay = DelayKind::kZero;
  const RunResult r = run_sync(spec);
  // If a forged bundle were ever accepted, a pulse would fire without any
  // honest node being ready, collapsing the minimum period.
  EXPECT_GE(r.min_period, r.bounds.min_period - 1e-9);
}

TEST(Adversaries, EquivocationCannotSplitPulses) {
  const RunResult r = run_sync(attack_spec(AttackKind::kEquivocate));
  // Relay property: even with targeted half-system messages, acceptance
  // times stay within the primitive's spread.
  EXPECT_LE(r.pulse_spread, r.bounds.pulse_spread + 1e-9);
}

TEST(Adversaries, MessageCostOfAttacksIsBounded) {
  // Attacks inflate traffic but must not break the simulation budget; the
  // run completes and counts messages sanely.
  const RunResult r = run_sync(attack_spec(AttackKind::kSpamEarly));
  EXPECT_GT(r.messages_sent, 0u);
  EXPECT_GT(r.bytes_sent, r.messages_sent);  // every message has > 1 byte
}

}  // namespace
}  // namespace stclock
