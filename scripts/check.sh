#!/usr/bin/env bash
# Local / CI gate: the tier-1 verify line with warnings-as-errors. The whole
# tree (src/, tests/, bench/, examples/) builds under -Wall -Wextra -Werror,
# so any new warning in the hot-path files fails the gate.
#
# Usage: scripts/check.sh [--bench] [--scen] [--store] [--faults] [--scale]
#                         [--asan] [--tsan] [build-dir]
#                         (default build-dir: build-check)
#   --bench  additionally smoke-run the tracked perf benchmarks (1 iteration,
#            via scripts/bench.sh --smoke) so the bench binaries cannot
#            bit-rot; BENCH_core.json is not modified.
#   --scen   additionally smoke-run the scenario-file driver: scenrun on every
#            checked-in example grid, then re-run each grid sharded in two
#            halves (--cells) and verify scenmerge reassembles dumps
#            byte-identical to the unsharded run.
#   --store  additionally smoke-run the result store: cold run of an example
#            grid with --store, warm re-run asserted 100% hits with
#            byte-identical dumps, scenstore ls/stats/gc, and a scenlaunch
#            host-manifest run WITH an injected straggler whose re-dispatched
#            merge must still match the cold run byte for byte.
#   --faults additionally smoke-run the fault-injection layer: the corruption
#            grid sharded across scenlaunch workers against the unsharded run
#            (stabilization metrics must be byte-identical across shard
#            boundaries), a scenstore verify pass over a freshly populated
#            store, and scenrun --store pointed at an uncreatable directory
#            asserted to fail loudly.
#   --scale  additionally smoke-run the million-node machinery at CI-sized
#            scale: the n=65536 ring grid (examples/scenarios/scale/) under a
#            hard wall-clock budget, the same grid sharded across scenlaunch
#            workers diffed byte-identical against the unsharded run, a
#            bench_scale ring cell with its per-cell budget enforced, the
#            n=65536 expander auth grid (neighbors + sampled fan-out,
#            sharded + byte-diffed), and the sparse-fabric acceptance cell
#            (auth n=1e5, expander k=16, sampled m=8, 120 s budget).
#   --asan   additionally build the tree under ASan+UBSan (its own build
#            directory, <build-dir>-asan) and run the tier-1 ctest suite in
#            it; any sanitizer report fails the gate.
#   --tsan   additionally build under ThreadSanitizer (<build-dir>-tsan) and
#            run the suites that exercise the parallel engine's worker pool
#            (parallel_sim, simulator, event_queue, counters); any data-race
#            report fails the gate.
#
# Uses a separate build directory so the strict flags never pollute an
# incremental developer build.
set -euo pipefail

cd "$(dirname "$0")/.."
RUN_BENCH=0
RUN_SCEN=0
RUN_STORE=0
RUN_FAULTS=0
RUN_SCALE=0
RUN_ASAN=0
RUN_TSAN=0
BUILD_DIR="build-check"
for arg in "$@"; do
  case "$arg" in
    -h|--help) sed -n 's/^# \{0,1\}//p' "$0" | sed -n '2,46p'; exit 0 ;;
    --bench) RUN_BENCH=1 ;;
    --scen) RUN_SCEN=1 ;;
    --store) RUN_STORE=1 ;;
    --faults) RUN_FAULTS=1 ;;
    --scale) RUN_SCALE=1 ;;
    --asan) RUN_ASAN=1 ;;
    --tsan) RUN_TSAN=1 ;;
    -*) echo "check.sh: unknown option: $arg (see --help)" >&2; exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [[ "$RUN_BENCH" -eq 1 ]]; then
  scripts/bench.sh --smoke "$BUILD_DIR-bench"
fi

SCEN_TMP=""
STORE_TMP=""
FAULT_TMP=""
SCALE_TMP=""
trap 'rm -rf ${SCEN_TMP:+"$SCEN_TMP"} ${STORE_TMP:+"$STORE_TMP"} ${FAULT_TMP:+"$FAULT_TMP"} ${SCALE_TMP:+"$SCALE_TMP"}' EXIT

if [[ "$RUN_SCEN" -eq 1 ]]; then
  SCEN_TMP="$(mktemp -d)"
  for grid in examples/scenarios/*.json; do
    name="$(basename "$grid" .json)"
    total="$("$BUILD_DIR/scenrun" "$grid" --count)"
    "$BUILD_DIR/scenrun" "$grid" --threads 4 \
      --json "$SCEN_TMP/$name.full.json" --csv "$SCEN_TMP/$name.full.csv"
    if (( total < 2 )); then
      echo "check.sh: scen smoke OK: $name ($total cell, too small to shard)"
      continue
    fi
    half=$((total / 2))
    "$BUILD_DIR/scenrun" "$grid" --cells "0:$half" \
      --json "$SCEN_TMP/$name.a.json" --csv "$SCEN_TMP/$name.a.csv"
    "$BUILD_DIR/scenrun" "$grid" --cells "$half:$total" \
      --json "$SCEN_TMP/$name.b.json" --csv "$SCEN_TMP/$name.b.csv"
    # Merge out of order: scenmerge must reassemble by global cell index.
    "$BUILD_DIR/scenmerge" -o "$SCEN_TMP/$name.merged.json" \
      "$SCEN_TMP/$name.b.json" "$SCEN_TMP/$name.a.json"
    "$BUILD_DIR/scenmerge" -o "$SCEN_TMP/$name.merged.csv" \
      "$SCEN_TMP/$name.b.csv" "$SCEN_TMP/$name.a.csv"
    diff "$SCEN_TMP/$name.full.json" "$SCEN_TMP/$name.merged.json"
    diff "$SCEN_TMP/$name.full.csv" "$SCEN_TMP/$name.merged.csv"
    echo "check.sh: scen smoke OK: $name ($total cells, shards byte-identical)"
  done
  # The dynamic-topology grid additionally goes through the process-level
  # shard launcher, so the schedule path is covered end-to-end: scenlaunch
  # splits it across worker processes, scenmerges the dumps, and the result
  # must be byte-identical to the unsharded run above.
  scripts/scenlaunch.sh examples/scenarios/dynamic_ring_grid.json \
    --workers 3 --build-dir "$BUILD_DIR" \
    --json "$SCEN_TMP/dynamic.launched.json" --csv "$SCEN_TMP/dynamic.launched.csv"
  diff "$SCEN_TMP/dynamic_ring_grid.full.json" "$SCEN_TMP/dynamic.launched.json"
  diff "$SCEN_TMP/dynamic_ring_grid.full.csv" "$SCEN_TMP/dynamic.launched.csv"
  echo "check.sh: scen smoke OK: dynamic_ring_grid via scenlaunch (byte-identical)"
fi

if [[ "$RUN_STORE" -eq 1 ]]; then
  STORE_TMP="$(mktemp -d)"
  GRID="examples/scenarios/dynamic_ring_grid.json"
  STORE="$STORE_TMP/store"
  TOTAL="$("$BUILD_DIR/scenrun" "$GRID" --count)"

  # Cold: every cell is a miss and gets published.
  "$BUILD_DIR/scenrun" "$GRID" --threads 4 --store "$STORE" \
    --csv "$STORE_TMP/cold.csv" --json "$STORE_TMP/cold.json" \
    2> "$STORE_TMP/cold.err"
  grep -q "hits=0 misses=$TOTAL" "$STORE_TMP/cold.err" \
    || { echo "check.sh: cold run was not all misses:"; cat "$STORE_TMP/cold.err"; exit 1; }

  # Warm: zero scenario computations, byte-identical dumps (different thread
  # count on purpose — neither caching nor threading may show in the bytes).
  "$BUILD_DIR/scenrun" "$GRID" --threads 2 --store "$STORE" \
    --csv "$STORE_TMP/warm.csv" --json "$STORE_TMP/warm.json" \
    2> "$STORE_TMP/warm.err"
  grep -q "hits=$TOTAL misses=0" "$STORE_TMP/warm.err" \
    || { echo "check.sh: warm run was not 100% hits:"; cat "$STORE_TMP/warm.err"; exit 1; }
  diff "$STORE_TMP/cold.csv" "$STORE_TMP/warm.csv"
  diff "$STORE_TMP/cold.json" "$STORE_TMP/warm.json"
  echo "check.sh: store smoke OK: warm re-run $TOTAL/$TOTAL hits, byte-identical"

  # Store maintenance round-trips.
  [[ "$("$BUILD_DIR/scenstore" "$STORE" ls | wc -l)" -eq "$TOTAL" ]] \
    || { echo "check.sh: scenstore ls disagrees with cell count" >&2; exit 1; }
  "$BUILD_DIR/scenstore" "$STORE" stats
  "$BUILD_DIR/scenstore" "$STORE" gc --keep-days 0 | grep -q "entries=0" \
    || { echo "check.sh: scenstore gc --keep-days 0 left entries behind" >&2; exit 1; }
  echo "check.sh: store smoke OK: scenstore ls/stats/gc"

  # Multi-host launcher against a host manifest, with shard 1's first
  # attempt wedged (no heartbeat): the monitor must re-dispatch it and the
  # merged dumps must STILL be byte-identical to the cold unsharded run.
  printf 'local 2\nlocal 1\n' > "$STORE_TMP/hosts"
  scripts/scenlaunch.sh "$GRID" --hosts "$STORE_TMP/hosts" --shards 4 \
    --build-dir "$BUILD_DIR" --store "$STORE" \
    --test-straggle 1 --heartbeat 2 --retries 2 \
    --csv "$STORE_TMP/launched.csv" --json "$STORE_TMP/launched.json"
  diff "$STORE_TMP/cold.csv" "$STORE_TMP/launched.csv"
  diff "$STORE_TMP/cold.json" "$STORE_TMP/launched.json"
  echo "check.sh: store smoke OK: scenlaunch straggler re-dispatch, byte-identical"
fi

if [[ "$RUN_FAULTS" -eq 1 ]]; then
  FAULT_TMP="$(mktemp -d)"
  GRID="examples/scenarios/corruption_grid.json"

  # Unsharded reference run, then the same grid split across scenlaunch
  # worker processes: the stabilization-time column must survive sharding
  # byte for byte (the corruption RNG is derived per cell, never from run
  # layout).
  "$BUILD_DIR/scenrun" "$GRID" --threads 4 \
    --json "$FAULT_TMP/full.json" --csv "$FAULT_TMP/full.csv"
  grep -q "stabilization_time" "$FAULT_TMP/full.csv" \
    || { echo "check.sh: corruption CSV lacks stabilization_time" >&2; exit 1; }
  scripts/scenlaunch.sh "$GRID" --workers 3 --build-dir "$BUILD_DIR" \
    --json "$FAULT_TMP/launched.json" --csv "$FAULT_TMP/launched.csv"
  diff "$FAULT_TMP/full.json" "$FAULT_TMP/launched.json"
  diff "$FAULT_TMP/full.csv" "$FAULT_TMP/launched.csv"
  echo "check.sh: faults smoke OK: corruption grid via scenlaunch (byte-identical)"

  # A populated store must pass a full verify sweep...
  "$BUILD_DIR/scenrun" "$GRID" --threads 4 --store "$FAULT_TMP/store" \
    --csv /dev/null 2> /dev/null
  "$BUILD_DIR/scenstore" "$FAULT_TMP/store" verify \
    || { echo "check.sh: scenstore verify failed on a healthy store" >&2; exit 1; }
  # ...and an unusable store directory must fail loudly, not quietly compute.
  : > "$FAULT_TMP/not-a-dir"
  if "$BUILD_DIR/scenrun" "$GRID" --store "$FAULT_TMP/not-a-dir/store" \
    --csv /dev/null 2> "$FAULT_TMP/store.err"; then
    echo "check.sh: scenrun --store accepted an uncreatable directory" >&2; exit 1
  fi
  grep -q "scenrun:" "$FAULT_TMP/store.err" \
    || { echo "check.sh: unusable store died without naming itself:" >&2; \
         cat "$FAULT_TMP/store.err" >&2; exit 1; }
  echo "check.sh: faults smoke OK: scenstore verify + loud store failure"
fi

if [[ "$RUN_SCALE" -eq 1 ]]; then
  SCALE_TMP="$(mktemp -d)"
  GRID="examples/scenarios/scale/ring_smoke_grid.json"

  # The n=65536 smoke grid must finish inside a hard budget: with the
  # sparse-first topology and the ladder queue the four cells take ~10 s;
  # the old n x n bitset alone would have needed 512 MB per cell and the
  # heap made every one of the ~5M queue ops pay a log-of-population sift.
  timeout 300 "$BUILD_DIR/scenrun" "$GRID" --threads 4 \
    --json "$SCALE_TMP/full.json" --csv "$SCALE_TMP/full.csv" \
    || { echo "check.sh: scale grid failed or blew its 300 s budget" >&2; exit 1; }

  # Sharding a scale grid across worker processes must not show in the
  # bytes: each cell's topology, RNG, and metric policy derive from the spec
  # alone, never from run layout.
  scripts/scenlaunch.sh "$GRID" --workers 3 --build-dir "$BUILD_DIR" \
    --json "$SCALE_TMP/launched.json" --csv "$SCALE_TMP/launched.csv"
  diff "$SCALE_TMP/full.json" "$SCALE_TMP/launched.json"
  diff "$SCALE_TMP/full.csv" "$SCALE_TMP/launched.csv"
  echo "check.sh: scale smoke OK: n=65536 grid in budget, shards byte-identical"

  # One bench_scale ring cell with the per-cell budget enforced end-to-end.
  "$BUILD_DIR/bench_scale" --n 65536 --horizon 2 --budget 120 \
    || { echo "check.sh: bench_scale n=65536 blew its 120 s budget" >&2; exit 1; }
  echo "check.sh: scale smoke OK: bench_scale n=65536 in budget"

  # The sparse broadcast fabric at scale: the n=65536 auth grid on an
  # expander (neighbors + sampled fan-out) in budget, and sharded across
  # scenlaunch workers byte-identical — the sampled-mode RNG stream derives
  # from the cell spec alone, so shard layout cannot leak into the draws.
  EGRID="examples/scenarios/scale/expander_auth_grid.json"
  timeout 300 "$BUILD_DIR/scenrun" "$EGRID" --threads 4 \
    --json "$SCALE_TMP/efull.json" --csv "$SCALE_TMP/efull.csv" \
    || { echo "check.sh: expander grid failed or blew its 300 s budget" >&2; exit 1; }
  scripts/scenlaunch.sh "$EGRID" --workers 3 --build-dir "$BUILD_DIR" \
    --json "$SCALE_TMP/elaunched.json" --csv "$SCALE_TMP/elaunched.csv"
  diff "$SCALE_TMP/efull.json" "$SCALE_TMP/elaunched.json"
  diff "$SCALE_TMP/efull.csv" "$SCALE_TMP/elaunched.csv"
  echo "check.sh: scale smoke OK: expander auth grid in budget, shards byte-identical"

  # The sparse-fabric acceptance cell: auth at n=10^5 on expander(k=16) with
  # sampled fan-out, per-cell wall budget enforced by bench_scale itself.
  "$BUILD_DIR/bench_scale" --protocol auth --topology expander --expander-k 16 \
    --mode sampled --sample 8 --n 100000 --horizon 5 --budget 120 \
    || { echo "check.sh: sampled expander auth n=1e5 blew its 120 s budget" >&2; exit 1; }
  echo "check.sh: scale smoke OK: auth n=1e5 sampled expander in budget"

  # The parallel engine at scale: the same acceptance cell at sim_threads=8
  # with delay=half (the positive-min_delay policy that gives the engine its
  # window). bench_scale prints the committed-window count; the test suite
  # already pins bit-identity, so this cell guards "the parallel path still
  # RUNS at n=1e5 under a budget" end to end.
  "$BUILD_DIR/bench_scale" --protocol auth --topology expander --expander-k 16 \
    --mode sampled --sample 8 --n 100000 --horizon 5 --delay half \
    --sim-threads 8 --budget 240 \
    || { echo "check.sh: parallel (sim_threads=8) n=1e5 cell failed its budget" >&2; exit 1; }
  echo "check.sh: scale smoke OK: sim_threads=8 n=1e5 sampled expander in budget"
fi

if [[ "$RUN_ASAN" -eq 1 ]]; then
  # -O1 keeps the sanitized suite quick; -fno-sanitize-recover turns every
  # UBSan finding into a hard test failure instead of a log line.
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g -O1 -fno-omit-frame-pointer"
  cmake -B "$BUILD_DIR-asan" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  cmake --build "$BUILD_DIR-asan" -j
  ctest --test-dir "$BUILD_DIR-asan" --output-on-failure -j "$(nproc)"
  echo "check.sh: asan suite OK"
fi

if [[ "$RUN_TSAN" -eq 1 ]]; then
  # TSan watches the worker pool's actual interleavings, so run only the
  # suites that spin it up (plus the queue/counter structures it shares);
  # the full tree under TSan would multiply CI time for no extra coverage.
  TSAN_FLAGS="-fsanitize=thread -g -O1 -fno-omit-frame-pointer"
  cmake -B "$BUILD_DIR-tsan" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build "$BUILD_DIR-tsan" -j \
    --target test_parallel_sim test_simulator test_event_queue test_counters
  ctest --test-dir "$BUILD_DIR-tsan" --output-on-failure \
    -R '^(test_parallel_sim|test_simulator|test_event_queue|test_counters)$'
  echo "check.sh: tsan suite OK"
fi
echo "check.sh: all green"
