#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/message.h"
#include "util/types.h"

/// Time-ordered event queue for the discrete-event simulator.
///
/// Events at equal real times are dispatched in insertion order (a strictly
/// increasing sequence number breaks ties), which makes every run fully
/// deterministic for a given seed.
///
/// Internally the heap stores only slim POD entries: timer payloads (two
/// ids) are inlined, and delivery payloads live in a free-listed slab
/// referenced by slot. Heap sifts therefore move 32-byte entries and never
/// touch a shared_ptr refcount; steady-state operation performs no
/// allocation once the slab and heap have grown to the standing population
/// (or were pre-sized via reserve()).
namespace stclock {

using TimerId = std::uint64_t;

struct TimerEvent {
  NodeId node = 0;
  TimerId id = 0;
};

struct DeliveryEvent {
  NodeId to = 0;
  NodeId from = 0;
  std::shared_ptr<const Message> msg;
  RealTime sent_at = 0;
};

/// A popped event, materialized from the queue's slim internal
/// representation: `timer` is meaningful when is_timer, `delivery` otherwise.
struct Event {
  RealTime time = 0;
  std::uint64_t seq = 0;
  bool is_timer = false;
  TimerEvent timer;
  DeliveryEvent delivery;
};

class EventQueue {
 public:
  /// Pre-sizes the heap and the delivery slab for `events` resident events
  /// (e.g. one full broadcast round, ~n^2), so the steady state never
  /// reallocates.
  void reserve(std::size_t events);

  void push_timer(RealTime time, TimerEvent ev);
  void push_delivery(RealTime time, DeliveryEvent ev);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] RealTime next_time() const;

  /// Removes and returns the earliest event. Requires !empty().
  [[nodiscard]] Event pop();

 private:
  struct Entry {
    RealTime time = 0;
    std::uint64_t seq = 0;
    TimerId timer_id = 0;         ///< timer payload (is_timer only)
    std::uint32_t node_or_slot = 0;  ///< timer target node, or delivery slab slot
    bool is_timer = false;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Min-heap over Entry (std::push_heap/pop_heap with Later).
  std::vector<Entry> heap_;
  std::vector<DeliveryEvent> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace stclock
