#include <gtest/gtest.h>

#include "core/runner.h"

namespace stclock {
namespace {

SyncConfig small_auth() {
  SyncConfig cfg;
  cfg.n = 5;
  cfg.f = 2;
  cfg.rho = 1e-3;
  cfg.tdel = 0.01;
  cfg.period = 1.0;
  cfg.initial_sync = 0.005;
  cfg.variant = Variant::kAuthenticated;
  return cfg;
}

SyncConfig small_echo() {
  SyncConfig cfg = small_auth();
  cfg.variant = Variant::kEcho;
  cfg.n = 7;
  cfg.f = 2;
  return cfg;
}

RunSpec spec_for(SyncConfig cfg) {
  RunSpec spec;
  spec.cfg = cfg;
  spec.seed = 7;
  spec.horizon = 20.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kSplit;
  return spec;
}

void expect_correct(const RunResult& r) {
  EXPECT_TRUE(r.live);
  EXPECT_LE(r.steady_skew, r.bounds.precision) << "precision bound violated";
  EXPECT_LE(r.pulse_spread, r.bounds.pulse_spread + 1e-9) << "relay bound violated";
  EXPECT_GE(r.min_period, r.bounds.min_period - 1e-9) << "minimum period violated";
  EXPECT_LE(r.max_period, r.bounds.max_period + 1e-9) << "maximum period violated";
  EXPECT_GE(r.envelope.min_rate, r.bounds.rate_lo - r.rate_fit_tolerance) << "rate too slow";
  EXPECT_LE(r.envelope.max_rate, r.bounds.rate_hi + r.rate_fit_tolerance) << "rate too fast";
}

TEST(SyncProtocol, AuthFaultFreeMeetsAllBounds) {
  const RunResult r = run_sync(spec_for(small_auth()));
  expect_correct(r);
  EXPECT_GE(r.min_pulses, 15u);  // ~1 pulse per second over 20s
}

TEST(SyncProtocol, EchoFaultFreeMeetsAllBounds) {
  const RunResult r = run_sync(spec_for(small_echo()));
  expect_correct(r);
}

TEST(SyncProtocol, AuthToleratesCrashedNodes) {
  RunSpec spec = spec_for(small_auth());
  spec.attack = AttackKind::kCrash;  // f = 2 of 5 silent
  expect_correct(run_sync(spec));
}

TEST(SyncProtocol, EchoToleratesCrashedNodes) {
  RunSpec spec = spec_for(small_echo());
  spec.attack = AttackKind::kCrash;
  expect_correct(run_sync(spec));
}

TEST(SyncProtocol, AuthToleratesSpamEarly) {
  RunSpec spec = spec_for(small_auth());
  spec.attack = AttackKind::kSpamEarly;
  const RunResult r = run_sync(spec);
  expect_correct(r);
}

TEST(SyncProtocol, EchoToleratesSpamEarly) {
  RunSpec spec = spec_for(small_echo());
  spec.attack = AttackKind::kSpamEarly;
  expect_correct(run_sync(spec));
}

TEST(SyncProtocol, AuthToleratesEquivocation) {
  RunSpec spec = spec_for(small_auth());
  spec.attack = AttackKind::kEquivocate;
  expect_correct(run_sync(spec));
}

TEST(SyncProtocol, EchoToleratesEquivocation) {
  RunSpec spec = spec_for(small_echo());
  spec.attack = AttackKind::kEquivocate;
  expect_correct(run_sync(spec));
}

TEST(SyncProtocol, AuthToleratesReplay) {
  RunSpec spec = spec_for(small_auth());
  spec.attack = AttackKind::kReplay;
  expect_correct(run_sync(spec));
}

TEST(SyncProtocol, AuthToleratesForgeryAttempts) {
  RunSpec spec = spec_for(small_auth());
  spec.attack = AttackKind::kForge;
  expect_correct(run_sync(spec));
}

TEST(SyncProtocol, SpamEarlyCannotBeatUnforgeabilityFloor) {
  // Even with every corrupt signature delivered at time 0, per-node periods
  // can never drop below (P - alpha)/(1+rho) - D: acceptance is anchored to
  // some honest node having been ready.
  RunSpec spec = spec_for(small_auth());
  spec.attack = AttackKind::kSpamEarly;
  spec.delay = DelayKind::kZero;  // fastest possible acceptance
  const RunResult r = run_sync(spec);
  EXPECT_GE(r.min_period, r.bounds.min_period - 1e-9);
}

TEST(SyncProtocol, WorksAtMinimumSystemSizes) {
  {
    SyncConfig cfg = small_auth();
    cfg.n = 3;
    cfg.f = 1;  // minimal authenticated system
    RunSpec spec = spec_for(cfg);
    spec.attack = AttackKind::kSpamEarly;
    expect_correct(run_sync(spec));
  }
  {
    SyncConfig cfg = small_echo();
    cfg.n = 4;
    cfg.f = 1;  // minimal echo system
    RunSpec spec = spec_for(cfg);
    spec.attack = AttackKind::kSpamEarly;
    expect_correct(run_sync(spec));
  }
}

TEST(SyncProtocol, SingleNodeDegenerateCase) {
  SyncConfig cfg = small_auth();
  cfg.n = 1;
  cfg.f = 0;
  cfg.initial_sync = 0;
  RunSpec spec = spec_for(cfg);
  spec.delay = DelayKind::kZero;
  spec.drift = DriftKind::kNone;
  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.live);
  EXPECT_NEAR(r.max_skew, 0.0, 1e-12);
}

TEST(SyncProtocol, AmortizedModeKeepsClocksMonotoneAndSynchronized) {
  SyncConfig cfg = small_auth();
  cfg.adjust = AdjustMode::kAmortized;
  RunSpec spec = spec_for(cfg);
  const RunResult r = run_sync(spec);
  EXPECT_TRUE(r.live);
  // Smoothing never violates monotonicity, so the fitted rate is positive
  // and the skew stays within a slightly relaxed bound (corrections lag by
  // up to one amortization window).
  EXPECT_GT(r.envelope.min_rate, 0.5);
  EXPECT_LE(r.steady_skew, 2 * r.bounds.precision);
}

TEST(SyncProtocol, SkewBoundedUnderEveryDelayPolicy) {
  for (DelayKind delay : {DelayKind::kZero, DelayKind::kHalf, DelayKind::kMax,
                          DelayKind::kUniform, DelayKind::kSplit, DelayKind::kAlternating}) {
    RunSpec spec = spec_for(small_auth());
    spec.delay = delay;
    const RunResult r = run_sync(spec);
    EXPECT_TRUE(r.live) << delay_name(delay);
    EXPECT_LE(r.steady_skew, r.bounds.precision) << delay_name(delay);
  }
}

TEST(SyncProtocol, DeterministicGivenSeed) {
  const RunSpec spec = spec_for(small_auth());
  const RunResult a = run_sync(spec);
  const RunResult b = run_sync(spec);
  EXPECT_DOUBLE_EQ(a.max_skew, b.max_skew);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_DOUBLE_EQ(a.min_period, b.min_period);
}

TEST(SyncProtocol, SeedsChangeOutcomesUnderRandomness) {
  RunSpec a = spec_for(small_auth());
  a.drift = DriftKind::kRandomWalk;
  a.delay = DelayKind::kUniform;
  RunSpec b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(run_sync(a).max_skew, run_sync(b).max_skew);
}

TEST(SyncProtocol, ResilienceBreakdownBeyondBoundAuth) {
  // The adversary controls ceil(n/2) nodes — one more than the protocol's
  // threshold assumes. With spam-early it can then assemble full quorums by
  // itself, destroying the unforgeability anchor: pulses fire arbitrarily
  // fast (min period collapses far below the theoretical floor).
  SyncConfig cfg = small_auth();  // n = 5, f = 2 -> quorum 3
  RunSpec spec = spec_for(cfg);
  spec.attack = AttackKind::kSpamEarly;
  spec.corrupt_override = 3;  // > f
  spec.delay = DelayKind::kZero;
  const RunResult r = run_sync(spec);
  EXPECT_LT(r.min_period, r.bounds.min_period / 2) << "breakdown did not materialize";
}

TEST(SyncProtocol, MessageComplexityQuadraticPerRound) {
  RunSpec spec = spec_for(small_auth());
  spec.delay = DelayKind::kHalf;
  spec.drift = DriftKind::kNone;
  const RunResult r = run_sync(spec);
  // Per round: n ready broadcasts + n acceptance relays = 2n messages of n
  // recipients each -> ~2n^2 sends per round.
  const double rounds = static_cast<double>(r.rounds_completed);
  const double per_round = static_cast<double>(r.messages_sent) / rounds;
  const double expected = 2.0 * spec.cfg.n * spec.cfg.n;
  EXPECT_GT(per_round, 0.5 * expected);
  EXPECT_LT(per_round, 2.0 * expected);
}

TEST(SyncProtocol, LargerSystemStillMeetsBounds) {
  SyncConfig cfg = small_auth();
  cfg.n = 15;
  cfg.f = 7;
  RunSpec spec = spec_for(cfg);
  spec.attack = AttackKind::kSpamEarly;
  spec.horizon = 12.0;
  expect_correct(run_sync(spec));
}

}  // namespace
}  // namespace stclock
