#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/types.h"

/// State-corruption fault injection (the self-stabilization workload).
///
/// A corruption event scrambles a seeded random subset of node *memory* at a
/// scheduled real time. What counts as memory — and is therefore fair game —
/// versus hardware — and therefore survives — follows the self-stabilization
/// model (Khanchandani–Lenzen): logical-clock corrections, round counters,
/// pending protocol timers, and in-flight message buffers are memory; the
/// hardware oscillator (HardwareClock) and the periodic hardware ticker
/// (Context::start_ticker) are not.
///
/// All scramble draws come from a dedicated RNG stream derived from the
/// simulation seed (never from the node/network/adversary streams), so a run
/// with corruption is bitwise-deterministic and a run without it is
/// bit-identical to one on a build that never heard of corruption.
namespace stclock {

/// Bitmask of state categories a corruption event scrambles.
enum CorruptKind : std::uint32_t {
  kCorruptClocks = 1u << 0,   ///< logical-clock correction state
  kCorruptTimers = 1u << 1,   ///< pending protocol timers (cancelled)
  kCorruptBuffers = 1u << 2,  ///< in-flight messages toward the victim (lost)
  kCorruptState = 1u << 3,    ///< protocol-private state (Process::corrupt_state)
};
inline constexpr std::uint32_t kCorruptAll =
    kCorruptClocks | kCorruptTimers | kCorruptBuffers | kCorruptState;

/// One scheduled corruption event (SimParams::corruptions).
struct CorruptionEvent {
  RealTime at = 0;          ///< real time the event fires (> 0)
  double fraction = 1.0;    ///< fraction of up honest nodes hit, in (0, 1]
  std::uint32_t kinds = kCorruptAll;
  /// Clock scramble magnitude: the correction state of a victim is shifted
  /// by uniform(-clock_range, clock_range) logical seconds.
  double clock_range = 5.0;
};

/// Bit for one kind name ("clocks", "timers", "buffers", "state"), or 0 for
/// anything else. "all" is the full mask.
[[nodiscard]] std::uint32_t corrupt_kind_bit(std::string_view name);

/// Canonical spelling of a kind mask: the known kinds present, comma-joined
/// in declaration order (e.g. "clocks,timers,buffers,state" for kCorruptAll).
/// Used by the scenario-file round-trip and the sinks, so it must be a fixed
/// function of the mask.
[[nodiscard]] std::string corrupt_kinds_name(std::uint32_t kinds);

}  // namespace stclock
