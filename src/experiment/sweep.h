#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "experiment/scenario.h"

/// Parameter sweeps over the unified scenario engine.
///
/// A `SweepGrid` declares a cartesian product of spec mutations ("axes") over
/// a base scenario and materializes it into labelled cells; a `SweepRunner`
/// executes any cell list across a thread pool. Every scenario is a pure
/// function of its spec (the engine seeds a fresh RNG per cell), so results
/// are deterministic and identical regardless of thread count — the worker
/// pool only changes wall-clock time, never output.
namespace stclock::experiment {

/// Deterministic per-cell seed: a splitmix64 mix of the base seed and the
/// cell index. Distinct indices give statistically independent streams, and
/// the mapping is stable across runs, grids, and thread counts.
[[nodiscard]] std::uint64_t derive_cell_seed(std::uint64_t base_seed, std::uint64_t cell_index);

/// Protocol-aware variant, used by SweepGrid::reseed_per_cell: the cell's
/// protocol name is hashed into the base seed before mixing, so two cells —
/// or two single-protocol grids — that differ only in protocol never share a
/// seed. Without this, running the "same" grid once per protocol (the common
/// sharding layout for scenario files) would feed every protocol an
/// identical random stream and silently correlate their results.
[[nodiscard]] std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                                             std::string_view protocol,
                                             std::uint64_t cell_index);

/// One grid cell: the fully resolved spec plus (axis, value) labels for
/// reporting.
struct SweepCell {
  std::size_t index = 0;
  std::vector<std::pair<std::string, std::string>> labels;
  ScenarioSpec spec;
};

class SweepGrid {
 public:
  using Mutator = std::function<void(ScenarioSpec&)>;
  /// One labelled setting on an axis.
  using Value = std::pair<std::string, Mutator>;

  explicit SweepGrid(ScenarioSpec base) : base_(std::move(base)) {}

  /// Appends an axis; the grid is the row-major cartesian product of all
  /// axes (first axis outermost), applied left to right to the base spec.
  SweepGrid& axis(std::string name, std::vector<Value> values);

  /// Convenience axis over registered protocol names.
  SweepGrid& protocols(const std::vector<std::string>& names);

  /// Re-seed every cell with derive_cell_seed(base.seed, protocol, index)
  /// instead of letting all cells share the base seed. Applied after all
  /// axis mutators, so it intentionally overrides any "seed" axis.
  SweepGrid& reseed_per_cell(bool on = true) {
    reseed_ = on;
    return *this;
  }

  [[nodiscard]] std::vector<SweepCell> cells() const;

 private:
  struct Axis {
    std::string name;
    std::vector<Value> values;
  };

  ScenarioSpec base_;
  bool reseed_ = false;
  std::vector<Axis> axes_;
};

/// Executes scenario cells on a pool of worker threads. Results come back
/// indexed exactly like the input, whatever the interleaving.
class SweepRunner {
 public:
  /// `threads` = 0 selects std::thread::hardware_concurrency().
  explicit SweepRunner(unsigned threads = 1);

  [[nodiscard]] std::vector<ScenarioResult> run(const std::vector<SweepCell>& cells) const;
  [[nodiscard]] std::vector<ScenarioResult> run(const std::vector<ScenarioSpec>& specs) const;

  [[nodiscard]] unsigned threads() const { return threads_; }

 private:
  unsigned threads_;
};

}  // namespace stclock::experiment
