#pragma once

#include <memory>

#include "core/sync_protocol.h"

/// Initialization and integration (the paper's treatment of joining and
/// repaired processes).
///
/// A process that boots while the system is already running cannot assume
/// anything about its clock relative to the group. It therefore starts
/// *passively*: it takes part in the broadcast primitive (verifying
/// signatures / echoing) but does not broadcast readiness and does not count
/// pulses. The first time it observes a round being accepted it adopts that
/// round's clock value C := kP + alpha — at that point it is synchronized to
/// within the ordinary precision bound and switches to full participation.
/// Integration therefore completes within one resynchronization period of
/// boot (measured by experiment T4).
namespace stclock {

/// Builds the broadcast primitive selected by `cfg.variant`. `fanin` is the
/// per-node peer count of the broadcast fabric the primitive will run over
/// (0 = the full fleet): it scales the acceptance thresholds (see
/// scaled_threshold in broadcast/primitive.h); the default keeps the paper's
/// exact f + 1 / 2f + 1.
[[nodiscard]] std::unique_ptr<BroadcastPrimitive> make_primitive(const SyncConfig& cfg,
                                                                std::uint32_t fanin = 0);

/// A full participant from time zero.
[[nodiscard]] std::unique_ptr<SyncProtocol> make_sync_process(const SyncConfig& cfg,
                                                              std::uint32_t fanin = 0);

/// A passively integrating participant (late joiner / repaired process).
[[nodiscard]] std::unique_ptr<SyncProtocol> make_joining_process(const SyncConfig& cfg,
                                                                 std::uint32_t fanin = 0);

}  // namespace stclock
