#include "core/theory.h"

#include "util/contracts.h"

namespace stclock::theory {

Duration accept_spread(const SyncConfig& cfg) {
  return cfg.variant == Variant::kAuthenticated ? cfg.tdel : 2 * cfg.tdel;
}

Duration resolve_alpha(const SyncConfig& cfg) {
  if (cfg.alpha > 0) return cfg.alpha;
  return (1.0 + cfg.rho) * accept_spread(cfg);
}

// Derivation sketch (all within the model of DESIGN.md; D below is the
// primitive's acceptance spread, gamma the maximal relative drift rate).
//
// Let a_min(k) / a_max(k) be the first / last real times at which a correct
// process accepts round k. The Relay property gives the pulse spread
//
//     a_max(k) - a_min(k) <= D.                                        (1)
//
// Every correct process sets C := kP + alpha at its acceptance, so after
// round k all correct logical clocks were set to the same value within a
// real-time window of width D.
//
// Readiness for round k+1 requires local progress P - alpha past the reset,
// taking real time in [(P-alpha)/(1+rho), (1+rho)(P-alpha)]; with (1) and
// Correctness (acceptance lands within D of enough correct processes being
// ready) this yields
//
//     a_min(k+1) >= a_min(k) + (P-alpha)/(1+rho),                      (2)
//     a_max(k+1) <= a_min(k) + D + (1+rho)(P-alpha) + D.               (3)
//
// Per-process periods follow from (1)-(3):
//
//     min period >= (P-alpha)/(1+rho) - D,
//     max period <= (1+rho)(P-alpha) + 2D.
//
// Precision. Between two processes that have both completed the round-k
// reset (acceptance times within D of each other), clocks diverge at
// relative rate at most gamma for at most tau = (1+rho)(P-alpha) + 2D real
// time (the span from a_min(k) to a_max(k+1), by (3)); the reset window
// itself contributes at most (1+rho)*D ... 1/(1+rho)*D of divergence, giving
// the "phase A" skew
//
//     skew_A = gamma * tau + D / (1+rho) ... conservatively
//     skew_A = gamma * ((1+rho)(P-alpha) + 2D) + D.                    (4)
//
// Across the round-(k+1) boundary ("phase B": i has reset, j not yet), the
// Unforgeability property anchors the first acceptance to some correct
// process having been ready, so j's clock is at most skew_A behind the new
// value (k+1)P, while i's clock is at most alpha + (1+rho)*D ahead of
// (k+1)P during the at-most-D-long window in which j still lags. Hence
//
//     Dmax = skew_A + alpha + (1+rho) * D.                             (5)
//
// Accuracy. The fastest sustainable pace is acceptance at the instant the
// fastest correct clock reads kP with zero delays (adversary signatures are
// free): logical progress P per (P-alpha)/(1+rho) real time, i.e. rate
// (1+rho) * P/(P-alpha). The slowest pace is rate-1/(1+rho) clocks with
// maximal delays: P per (1+rho)(P-alpha) + 2D real time. Both approach the
// hardware bounds as (alpha + D)/P -> 0 — the optimality claim: drift is
// NOT amplified by a constant factor, unlike averaging-based algorithms.
Bounds derive_bounds(const SyncConfig& cfg) {
  Bounds b;
  const double rho = cfg.rho;
  const Duration D = accept_spread(cfg);
  const Duration P = cfg.period;
  const Duration alpha = resolve_alpha(cfg);

  ST_REQUIRE(P > alpha, "theory: period must exceed alpha");

  b.accept_spread = D;
  b.alpha = alpha;
  b.gamma = (1.0 + rho) - 1.0 / (1.0 + rho);
  b.pulse_spread = D;
  b.min_period = (P - alpha) / (1.0 + rho) - D;
  b.max_period = (1.0 + rho) * (P - alpha) + 2 * D;

  const Duration skew_a = b.gamma * ((1.0 + rho) * (P - alpha) + 2 * D) + D;
  b.precision = skew_a + alpha + (1.0 + rho) * D;

  b.rate_hi = (1.0 + rho) * P / (P - alpha);
  b.rate_lo = P / ((1.0 + rho) * (P - alpha) + 2 * D);
  return b;
}

}  // namespace stclock::theory
