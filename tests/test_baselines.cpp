#include <gtest/gtest.h>

#include "baselines/interactive_convergence.h"
#include "baselines/leader_sync.h"
#include "baselines/lundelius_welch.h"
#include "baselines/unsynchronized.h"
#include "experiment/scenario.h"

namespace stclock::baselines {
namespace {

experiment::ScenarioSpec base_spec(const std::string& protocol) {
  experiment::ScenarioSpec spec;
  spec.protocol = protocol;
  spec.cfg.n = 7;
  spec.cfg.f = 2;
  spec.cfg.rho = 1e-3;
  spec.cfg.tdel = 0.01;
  spec.cfg.period = 1.0;
  spec.cfg.initial_sync = 0.005;
  spec.delta = 0.05;
  spec.seed = 5;
  spec.horizon = 30.0;
  spec.drift = DriftKind::kExtremal;
  spec.delay = DelayKind::kHalf;
  return spec;
}

TEST(Unsynchronized, SkewGrowsLinearlyWithDrift) {
  const experiment::ScenarioSpec spec = base_spec("unsynchronized");
  const experiment::ScenarioResult r = run_scenario(spec);
  const double gamma = (1 + spec.cfg.rho) - 1 / (1 + spec.cfg.rho);
  // Extremal drift: fastest and slowest clocks diverge at rate gamma.
  EXPECT_GE(r.max_skew, 0.8 * gamma * spec.horizon);
  EXPECT_LE(r.max_skew, gamma * spec.horizon + spec.cfg.initial_sync + 1e-9);
}

TEST(Unsynchronized, NoMessagesSent) {
  const experiment::ScenarioResult r = run_scenario(base_spec("unsynchronized"));
  EXPECT_EQ(r.messages_sent, 0u);
}

TEST(Cnv, ConvergesUnderBenignConditions) {
  const experiment::ScenarioResult r = run_scenario(base_spec("interactive_convergence"));
  // Steady-state skew bounded by roughly the reading error (tdel) plus
  // drift per round — far below the unsynchronized linear growth.
  EXPECT_LE(r.steady_skew, 3 * base_spec("interactive_convergence").cfg.tdel + 0.01);
}

TEST(Cnv, ToleratesCrashFaults) {
  experiment::ScenarioSpec spec = base_spec("interactive_convergence");
  spec.attack = AttackKind::kCrash;
  const experiment::ScenarioResult r = run_scenario(spec);
  EXPECT_LE(r.steady_skew, 3 * spec.cfg.tdel + 0.01);
}

TEST(Cnv, PullAttackAmplifiesDrift) {
  // The paper's motivation: averaging lets f colluding nodes drag the
  // *rate* of every correct clock. Expected bias ~ f * 0.9*delta / n per
  // period.
  experiment::ScenarioSpec spec = base_spec("interactive_convergence");
  spec.attack = AttackKind::kCnvPull;
  const experiment::ScenarioResult r = run_scenario(spec);

  const double bias_per_period =
      static_cast<double>(spec.cfg.f) * 0.9 * spec.delta / spec.cfg.n;
  const double expected_rate = 1.0 + bias_per_period / spec.cfg.period;
  // The fleet runs measurably faster than any hardware clock is allowed to.
  EXPECT_GT(r.envelope.max_rate,
            1 + spec.cfg.rho + 0.5 * bias_per_period / spec.cfg.period);
  EXPECT_LT(r.envelope.max_rate, expected_rate + 0.01);
}

TEST(Cnv, AgreementSurvivesPullAttackEvenThoughAccuracyDoesNot) {
  experiment::ScenarioSpec spec = base_spec("interactive_convergence");
  spec.attack = AttackKind::kCnvPull;
  const experiment::ScenarioResult r = run_scenario(spec);
  // The attack drags everyone together: mutual skew stays bounded...
  EXPECT_LE(r.steady_skew, 3 * spec.delta);
  // ...while real-time accuracy is destroyed (checked above).
}

TEST(Lw, ConvergesUnderBenignConditions) {
  const experiment::ScenarioResult r = run_scenario(base_spec("lundelius_welch"));
  EXPECT_LE(r.steady_skew, 3 * base_spec("lundelius_welch").cfg.tdel + 0.01);
}

TEST(Lw, FaultTolerantMidpointResistsPullAttack) {
  // The f-trim discards the adversary's extreme estimates: rate stays within
  // (a hair of) the hardware envelope — the contrast case to CNV.
  experiment::ScenarioSpec spec = base_spec("lundelius_welch");
  spec.attack = AttackKind::kLwPull;
  const experiment::ScenarioResult r = run_scenario(spec);
  EXPECT_LT(r.envelope.max_rate,
            1 + spec.cfg.rho + 5 * spec.cfg.tdel / spec.cfg.period);
  EXPECT_LE(r.steady_skew, 5 * spec.cfg.tdel + 0.01);
}

TEST(Lw, RequiresNGreaterThan3f) {
  LwParams params;
  params.n = 6;
  params.f = 2;
  EXPECT_THROW(LwProtocol{params}, std::logic_error);
}

TEST(Leader, HonestLeaderGivesTightSkew) {
  const experiment::ScenarioSpec spec = base_spec("leader");
  const experiment::ScenarioResult r = run_scenario(spec);
  EXPECT_LE(r.steady_skew, 3 * spec.cfg.tdel + 0.01);
}

TEST(Leader, CorruptLeaderDestroysAccuracy) {
  const experiment::ScenarioResult r = run_scenario(base_spec("leader_corrupt"));
  // Followers slave to a clock running 10% fast: rate blows far past any
  // drift bound — a single fault defeats the scheme entirely.
  EXPECT_GT(r.envelope.max_rate, 1.05);
}

TEST(Leader, HonestLeaderMessageCostIsLinear) {
  const experiment::ScenarioSpec spec = base_spec("leader");
  const experiment::ScenarioResult r = run_scenario(spec);
  // ~n messages per period, ~horizon/period periods.
  const double periods = spec.horizon / spec.cfg.period;
  EXPECT_LT(static_cast<double>(r.messages_sent), 2.0 * spec.cfg.n * periods);
}

TEST(Baselines, DeterministicGivenSeed) {
  const experiment::ScenarioSpec spec = base_spec("interactive_convergence");
  EXPECT_DOUBLE_EQ(run_scenario(spec).max_skew, run_scenario(spec).max_skew);
  EXPECT_DOUBLE_EQ(run_scenario(base_spec("lundelius_welch")).max_skew,
                   run_scenario(base_spec("lundelius_welch")).max_skew);
}

TEST(Baselines, LegacyShimsReproduceEngineMetrics) {
  // The legacy BaselineSpec entry points are shims over the same engine:
  // identical seeds must give identical metrics.
  BaselineSpec legacy;
  legacy.n = 7;
  legacy.f = 2;
  legacy.rho = 1e-3;
  legacy.tdel = 0.01;
  legacy.period = 1.0;
  legacy.delta = 0.05;
  legacy.initial_sync = 0.005;
  legacy.seed = 5;
  legacy.horizon = 30.0;
  legacy.drift = DriftKind::kExtremal;
  legacy.delay = DelayKind::kHalf;

  EXPECT_EQ(run_unsynchronized(legacy).max_skew,
            run_scenario(base_spec("unsynchronized")).max_skew);
  EXPECT_EQ(run_interactive_convergence(legacy).max_skew,
            run_scenario(base_spec("interactive_convergence")).max_skew);
  EXPECT_EQ(run_leader_sync(legacy, /*corrupt_leader=*/true).envelope.max_rate,
            run_scenario(base_spec("leader_corrupt")).envelope.max_rate);
}

}  // namespace
}  // namespace stclock::baselines
