#include "adversary/delay_policies.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace stclock {

SplitDelay::SplitDelay(std::vector<NodeId> slow_targets) : slow_(std::move(slow_targets)) {
  std::sort(slow_.begin(), slow_.end());
}

Duration SplitDelay::delay(NodeId /*from*/, NodeId to, RealTime /*now*/, Duration tdel,
                           Rng& /*rng*/) {
  return std::binary_search(slow_.begin(), slow_.end(), to) ? tdel : 0.0;
}

AlternatingDelay::AlternatingDelay(Duration interval) : interval_(interval) {
  ST_REQUIRE(interval > 0, "AlternatingDelay: interval must be positive");
}

Duration AlternatingDelay::delay(NodeId /*from*/, NodeId to, RealTime now, Duration tdel,
                                 Rng& /*rng*/) {
  const auto phase = static_cast<std::uint64_t>(std::floor(now / interval_));
  const bool odd_slow = (phase % 2) == 0;
  const bool to_odd = (to % 2) == 1;
  return (to_odd == odd_slow) ? tdel : 0.0;
}

}  // namespace stclock
