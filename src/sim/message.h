#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "crypto/signature.h"
#include "util/arena.h"
#include "util/bytes.h"
#include "util/types.h"

/// Wire messages for every protocol in the repository.
///
/// Channels are authenticated (the receiver knows the immediate sender), so
/// init/echo and the baseline messages carry no signatures; only the
/// authenticated round message carries a signature bundle, because those
/// signatures are *relayed* and must remain verifiable end-to-end.
namespace stclock {

/// Signature bundle storage: arena-backed, because bundles are the dominant
/// hot-path allocation — every authenticated broadcast copies one into the
/// interned Message, and every relay carries Theta(n) signatures.
using SigBundle = std::vector<crypto::Signature, util::ArenaAllocator<crypto::Signature>>;

/// Authenticated algorithm: "(round k)" with 1..n distinct signatures over
/// the canonical round payload. A fresh broadcast carries just the sender's
/// signature; an acceptance relay carries the full accepting bundle.
struct RoundMsg {
  Round round = 0;
  SigBundle sigs;
};

/// Signature-free primitive: "(init, round k)".
struct InitMsg {
  Round round = 0;
};

/// Signature-free primitive: "(echo, round k)".
struct EchoMsg {
  Round round = 0;
};

/// Interactive convergence (CNV) baseline: sender's logical clock reading at
/// transmission time.
struct CnvValueMsg {
  Round round = 0;
  LocalTime value = 0;
};

/// Lundelius–Welch baseline: "my logical clock just read round*P"; the
/// receiver timestamps arrival to estimate the clock offset.
struct LwValueMsg {
  Round round = 0;
};

/// Naive leader-based baseline: leader's logical clock reading.
struct LeaderTimeMsg {
  Round round = 0;
  LocalTime value = 0;
};

/// Application payload for the lockstep synchronizer (core/synchronizer.h):
/// "this is my message for simulated synchronous round `round`".
struct LockstepMsg {
  std::uint64_t round = 0;
  std::uint64_t payload = 0;
};

/// Gradient clock synchronization baseline: sender's logical clock reading
/// at transmission time, averaged by *neighbors* (the local-skew metric's
/// protocol family — see baselines/gradient_sync.h).
struct GradientMsg {
  Round round = 0;
  LocalTime value = 0;
};

using Message = std::variant<RoundMsg, InitMsg, EchoMsg, CnvValueMsg, LwValueMsg,
                             LeaderTimeMsg, LockstepMsg, GradientMsg>;

/// Message discriminator in variant-alternative order. Keys the fixed-size
/// counter arrays in trace/counters.h, so per-event accounting never
/// allocates; convert to a human-readable tag only at report time via
/// message_kind_name().
enum class MessageKind : std::uint8_t {
  kRound = 0,
  kInit,
  kEcho,
  kCnv,
  kLw,
  kLeader,
  kLockstep,
  kGradient,
};

inline constexpr std::size_t kMessageKindCount = std::variant_size_v<Message>;

/// Canonical byte string that round-k signatures are computed over. Includes
/// the round number so stale signatures cannot be replayed into a later
/// round (a replay adversary tests exactly this).
[[nodiscard]] Bytes round_signing_payload(Round round);

/// Kind discriminator of a message (O(1): the variant index).
[[nodiscard]] constexpr MessageKind message_kind(const Message& m) {
  return static_cast<MessageKind>(m.index());
}

/// Short human-readable tag ("round", "init", ...) for reports and logs.
[[nodiscard]] const char* message_kind_name(MessageKind kind);

/// Approximate serialized size in bytes (for the message/byte counters).
[[nodiscard]] std::size_t message_size_bytes(const Message& m);

/// Round number carried by any message kind.
[[nodiscard]] Round message_round(const Message& m);

}  // namespace stclock
