#pragma once

#include <cstdint>
#include <span>

#include "experiment/scenario.h"
#include "util/bytes.h"

/// Binary codec for the full ScenarioResult — every field the sinks can
/// print, including the skew series and the envelope report, so a cache hit
/// is indistinguishable from a recompute all the way to the output bytes.
///
/// The encoding is the canonical ByteWriter format (little-endian fixed
/// width, length-prefixed containers) plus a leading format version. Bump
/// `kResultCodecVersion` whenever ScenarioResult gains/changes a field; old
/// records then fail decoding and are treated as misses (the engine
/// fingerprint in the cache key usually rotates first, but the codec version
/// keeps decoding safe even for hand-copied stores).
namespace stclock::resultstore {

inline constexpr std::uint32_t kResultCodecVersion = 2;

[[nodiscard]] Bytes encode_result(const experiment::ScenarioResult& r);

/// Throws std::out_of_range / std::logic_error on truncated, over-long, or
/// version-mismatched input. Callers in the store catch and map to a miss.
[[nodiscard]] experiment::ScenarioResult decode_result(std::span<const std::uint8_t> data);

}  // namespace stclock::resultstore
