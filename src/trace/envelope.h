#pragma once

#include <vector>

#include "sim/simulator.h"
#include "util/stats.h"
#include "util/types.h"

/// Measures accuracy: how logical clocks progress relative to real time.
///
/// The paper's optimality theorem says logical clocks stay within a linear
/// envelope of real time with the *hardware* drift slopes 1/(1+rho) and
/// (1+rho) (up to additive constants and an O((alpha+D)/P) rate term) —
/// i.e. synchronization does not amplify drift. This tracker samples
/// (t, C_i(t)) for every honest node and reports:
///
///  - per-node least-squares rate (long-run slope), and the fleet min/max;
///  - envelope offsets: max_t [C_i(t) - rate_hi * t] and
///    max_t [rate_lo * t - C_i(t)] for given candidate slopes — constants iff
///    the envelope holds.
namespace stclock {

class EnvelopeTracker {
 public:
  explicit EnvelopeTracker(Duration sample_interval = 0.1);

  /// Samples all honest started nodes; called from the post-event hook.
  void sample(const Simulator& sim);

  struct Report {
    double min_rate = 0;  ///< smallest fitted per-node slope
    double max_rate = 0;  ///< largest fitted per-node slope
    /// Worst additive offsets against the candidate envelope slopes.
    double upper_offset = 0;  ///< max over samples of C(t) - slope_hi * t
    double lower_offset = 0;  ///< max over samples of slope_lo * t - C(t)
  };

  /// Requires at least two samples per node. Slopes are fitted over samples
  /// with t >= steady_start (skip convergence).
  [[nodiscard]] Report report(double slope_lo, double slope_hi,
                              RealTime steady_start = 0) const;

 private:
  struct NodeSeries {
    std::vector<double> t;
    std::vector<double> c;
  };

  Duration sample_interval_;
  RealTime last_sample_ = -1;
  std::vector<NodeSeries> series_;  // index = node id (empty for corrupt)
};

}  // namespace stclock
