#pragma once

#include <memory>
#include <vector>

#include "sim/network.h"

/// Adversarial delay policies: skew-maximizing assignments of honest-to-
/// honest message delays within the model's [0, tdel].
namespace stclock {

/// Messages to nodes in `slow_targets` take the full tdel; everything else
/// is instantaneous. Maximizes the spread of acceptance times.
class SplitDelay final : public DelayPolicy {
 public:
  explicit SplitDelay(std::vector<NodeId> slow_targets);
  [[nodiscard]] Duration delay(NodeId from, NodeId to, RealTime now, Duration tdel,
                               Rng& rng) override;

 private:
  std::vector<NodeId> slow_;
};

/// Alternates which half of the nodes is slow, switching every `interval`
/// of real time — the lagging group changes between rounds, which stresses
/// the precision analysis harder than a static split.
class AlternatingDelay final : public DelayPolicy {
 public:
  explicit AlternatingDelay(Duration interval);
  [[nodiscard]] Duration delay(NodeId from, NodeId to, RealTime now, Duration tdel,
                               Rng& rng) override;

 private:
  Duration interval_;
};

/// Partition-then-heal workload (dynamic networks, outside the ST model):
/// during [start, end) every message crossing the cut between nodes
/// [0, group_a) and [group_a, n) is dropped (kDropMessage); all other
/// traffic — and all traffic once healed — is delegated to the base policy.
class PartitionDelay final : public DelayPolicy {
 public:
  PartitionDelay(std::uint32_t group_a, RealTime start, RealTime end,
                 std::unique_ptr<DelayPolicy> base);
  [[nodiscard]] Duration delay(NodeId from, NodeId to, RealTime now, Duration tdel,
                               Rng& rng) override;

 private:
  std::uint32_t group_a_;
  RealTime start_, end_;
  std::unique_ptr<DelayPolicy> base_;
};

}  // namespace stclock
