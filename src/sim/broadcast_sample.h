#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

/// Sampling kernels for the sampled broadcast mode.
///
/// Both draw exactly `m` variates from the caller's stream for a sample of
/// size m — the invariant the fabric's determinism rests on — but they pay
/// very different costs for collisions:
///
///  - Floyd's algorithm keeps a scratch set of picked indices and probes it
///    per draw. With the tiny samples the fabric defaults to, the linear
///    probe is a few cache lines and beats anything with setup cost.
///  - Partial Fisher–Yates swaps picks to the front of a mutable copy of the
///    domain, so there is no membership probe at all — O(m) flat — but it
///    needs that mutable copy. The simulator caches one (its fy_* members)
///    and deliberately never un-permutes it: the rows keep holding the same
///    id sets, and every run replays the same draw sequence, so determinism
///    survives the accumulated shuffling.
///
/// The crossover is benchmarked by bench_tune --sample; m = 64 sits past the
/// point where Floyd's quadratic probing overtakes the swap loop. Below it
/// (and on the implicit complete-graph domain, which has no array to
/// permute) the simulator keeps Floyd bit-identical to earlier engines.
namespace stclock::broadcast_sample {

/// Sample sizes below this always use Floyd (identical draws to the
/// pre-Fisher–Yates engines); at or above it, sparse domains switch.
inline constexpr std::uint32_t kFisherYatesMinSample = 64;

/// Floyd's algorithm: appends `m` distinct indices in [0, domain_size) to
/// `out` (which it does not clear), drawing exactly `m` variates.
/// Requires m < domain_size and out empty on entry (out doubles as the
/// membership scratch).
inline void floyd_indices(Rng& rng, std::uint32_t domain_size, std::uint32_t m,
                          std::vector<NodeId>& out) {
  for (std::uint32_t j = domain_size - m; j < domain_size; ++j) {
    auto pick = static_cast<NodeId>(rng.uniform_int(0, j));
    if (std::find(out.begin(), out.end(), pick) != out.end()) pick = j;
    out.push_back(pick);
  }
}

/// Partial Fisher–Yates: permutes the first `m` slots of `row` (length
/// `domain_size`) with uniformly drawn partners and appends those slots to
/// `out`. Exactly `m` variates; the row is left permuted — same id set,
/// different order — which is fine for every later draw over it.
/// Requires m < domain_size.
inline void fisher_yates(Rng& rng, NodeId* row, std::uint32_t domain_size, std::uint32_t m,
                         std::vector<NodeId>& out) {
  for (std::uint32_t i = 0; i < m; ++i) {
    const auto j = static_cast<std::uint32_t>(rng.uniform_int(i, domain_size - 1));
    std::swap(row[i], row[j]);
    out.push_back(row[i]);
  }
}

}  // namespace stclock::broadcast_sample
