#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/sinks.h"
#include "resultstore/cache_key.h"
#include "resultstore/incremental.h"
#include "resultstore/store.h"
#include "scenfile/scenfile.h"

/// The incremental sweep engine over a checked-in example grid: a warm
/// re-run must perform ZERO scenario computations (100% hits) and emit
/// byte-identical sinks, and editing one axis must recompute exactly the
/// delta cells — the acceptance criteria of the result-store subsystem.
namespace stclock::resultstore {
namespace {

namespace fs = std::filesystem;

using experiment::ScenarioResult;
using experiment::SweepCell;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    dir_ = fs::temp_directory_path() /
           ("stclock-incr-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter.fetch_add(1)));
    fs::remove_all(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
};

std::string grid_file_text() {
  const std::string path =
      std::string(STCLOCK_SOURCE_DIR) + "/examples/scenarios/dynamic_ring_grid.json";
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string csv_dump(const std::vector<SweepCell>& cells,
                     const std::vector<ScenarioResult>& results) {
  std::ostringstream os;
  experiment::write_csv(os, cells, results);
  return os.str();
}

std::string json_dump(const std::vector<SweepCell>& cells,
                      const std::vector<ScenarioResult>& results) {
  std::ostringstream os;
  experiment::write_json(os, cells, results);
  return os.str();
}

TEST(IncrementalSweep, WarmRerunIsAllHitsAndByteIdenticalToColdRun) {
  const TempDir dir;
  const ResultStore store(dir.path());
  const std::vector<SweepCell> cells =
      scenfile::parse_grid(grid_file_text(), "dynamic_ring_grid.json").cells();
  ASSERT_EQ(cells.size(), 8u);

  CacheStats cold;
  const std::vector<ScenarioResult> cold_results =
      run_cells_cached(cells, &store, /*threads=*/4, /*use_cache=*/true, &cold);
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, cells.size());

  CacheStats warm;
  const std::vector<ScenarioResult> warm_results =
      run_cells_cached(cells, &store, /*threads=*/2, /*use_cache=*/true, &warm);
  EXPECT_EQ(warm.hits, cells.size());
  EXPECT_EQ(warm.misses, 0u);

  // The sinks cannot tell a replay from a recompute: same bytes, both
  // formats, despite the different thread counts.
  EXPECT_EQ(csv_dump(cells, cold_results), csv_dump(cells, warm_results));
  EXPECT_EQ(json_dump(cells, cold_results), json_dump(cells, warm_results));
}

TEST(IncrementalSweep, EditingOneAxisRecomputesExactlyTheDeltaCells) {
  const TempDir dir;
  const ResultStore store(dir.path());

  const std::string original_text = grid_file_text();
  const std::vector<SweepCell> cells =
      scenfile::parse_grid(original_text, "dynamic_ring_grid.json").cells();
  CacheStats cold;
  const std::vector<ScenarioResult> cold_results =
      run_cells_cached(cells, &store, 4, true, &cold);
  ASSERT_EQ(cold.misses, 8u);

  // Edit one value of the protocol axis: "gradient" -> "leader". The four
  // topology_events x gradient cells change identity; the four auth cells
  // keep their keys and must be served from the store untouched.
  std::string edited_text = original_text;
  const std::size_t at = edited_text.find("\"gradient\"");
  ASSERT_NE(at, std::string::npos);
  edited_text.replace(at, std::string("\"gradient\"").size(), "\"leader\"");

  const std::vector<SweepCell> edited_cells =
      scenfile::parse_grid(edited_text, "dynamic_ring_grid.edited.json").cells();
  ASSERT_EQ(edited_cells.size(), 8u);

  CacheStats delta;
  const std::vector<ScenarioResult> edited_results =
      run_cells_cached(edited_cells, &store, 4, true, &delta);
  EXPECT_EQ(delta.hits, 4u);
  EXPECT_EQ(delta.misses, 4u);

  // The unchanged (auth) cells really were replays of the cold run.
  for (std::size_t i = 0; i < edited_cells.size(); ++i) {
    if (edited_cells[i].spec.protocol != "auth") continue;
    EXPECT_EQ(edited_cells[i].spec.protocol, cells[i].spec.protocol);
    EXPECT_EQ(edited_results[i].max_skew, cold_results[i].max_skew);
    EXPECT_EQ(edited_results[i].messages_sent, cold_results[i].messages_sent);
    EXPECT_EQ(edited_results[i].events_dispatched, cold_results[i].events_dispatched);
  }

  // Re-running the edited grid is now fully warm; the original grid's
  // gradient cells are still cached too (the store accretes, never evicts
  // outside gc), so the ORIGINAL grid also replays 100% warm.
  CacheStats warm_edited;
  (void)run_cells_cached(edited_cells, &store, 1, true, &warm_edited);
  EXPECT_EQ(warm_edited.hits, 8u);
  CacheStats warm_original;
  (void)run_cells_cached(cells, &store, 1, true, &warm_original);
  EXPECT_EQ(warm_original.hits, 8u);
}

TEST(IncrementalSweep, NoCacheForcesRecomputeButRefreshesTheStore) {
  const TempDir dir;
  const ResultStore store(dir.path());
  // A 2-cell slice keeps the forced-recompute leg cheap.
  const std::vector<SweepCell> all =
      scenfile::parse_grid(grid_file_text(), "dynamic_ring_grid.json").cells();
  const std::vector<SweepCell> cells(all.begin(), all.begin() + 2);

  CacheStats first;
  (void)run_cells_cached(cells, &store, 2, true, &first);
  EXPECT_EQ(first.misses, 2u);

  CacheStats forced;
  const std::vector<ScenarioResult> forced_results =
      run_cells_cached(cells, &store, 2, /*use_cache=*/false, &forced);
  EXPECT_EQ(forced.hits, 0u);
  EXPECT_EQ(forced.misses, 2u);

  CacheStats warm;
  const std::vector<ScenarioResult> warm_results =
      run_cells_cached(cells, &store, 1, true, &warm);
  EXPECT_EQ(warm.hits, 2u);
  EXPECT_EQ(csv_dump(cells, forced_results), csv_dump(cells, warm_results));
}

TEST(IncrementalSweep, NullStoreDegradesToAPlainRun) {
  const std::vector<SweepCell> all =
      scenfile::parse_grid(grid_file_text(), "dynamic_ring_grid.json").cells();
  const std::vector<SweepCell> cells(all.begin(), all.begin() + 2);

  CacheStats stats;
  const std::vector<ScenarioResult> uncached =
      run_cells_cached(cells, nullptr, 1, true, &stats);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);

  const std::vector<ScenarioResult> reference = experiment::SweepRunner(1).run(cells);
  EXPECT_EQ(csv_dump(cells, uncached), csv_dump(cells, reference));
}

TEST(IncrementalSweep, CorruptedEntryIsRecomputedTransparently) {
  const TempDir dir;
  const ResultStore store(dir.path());
  const std::vector<SweepCell> all =
      scenfile::parse_grid(grid_file_text(), "dynamic_ring_grid.json").cells();
  const std::vector<SweepCell> cells(all.begin(), all.begin() + 2);

  CacheStats cold;
  const std::vector<ScenarioResult> cold_results = run_cells_cached(cells, &store, 2, true, &cold);

  // Vandalize one record mid-file; the next run must miss exactly that cell,
  // recompute it, and heal the store.
  const fs::path victim = store.object_path(cell_key(cells[0].spec));
  ASSERT_TRUE(fs::exists(victim));
  {
    std::fstream f(victim, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(30);
    const int byte = f.get();
    f.seekp(30);
    f.put(static_cast<char>(byte ^ 0x5A));
  }

  CacheStats healed;
  const std::vector<ScenarioResult> healed_results =
      run_cells_cached(cells, &store, 2, true, &healed);
  EXPECT_EQ(healed.hits, 1u);
  EXPECT_EQ(healed.misses, 1u);
  EXPECT_EQ(csv_dump(cells, cold_results), csv_dump(cells, healed_results));

  CacheStats warm;
  (void)run_cells_cached(cells, &store, 1, true, &warm);
  EXPECT_EQ(warm.hits, 2u);
}

}  // namespace
}  // namespace stclock::resultstore
