#include "scenfile/scenfile.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "experiment/registry.h"

namespace stclock::scenfile {

using experiment::ProtocolRegistry;
using experiment::ScenarioSpec;
using experiment::SweepGrid;

namespace {

[[noreturn]] void fail_at(const std::string& source, int line, const std::string& path,
                          const std::string& msg) {
  throw ScenarioFileError(source + ":" + std::to_string(line) + ": " + path + ": " + msg);
}

// --- Typed readers -----------------------------------------------------------

void require_kind(const JsonValue& v, JsonValue::Kind kind, const char* kind_name,
                  const std::string& source, const std::string& path) {
  if (v.kind != kind) {
    fail_at(source, v.line, path,
            std::string("expected ") + kind_name + ", got " + v.kind_name());
  }
}

double as_double(const JsonValue& v, const std::string& source, const std::string& path) {
  require_kind(v, JsonValue::Kind::kNumber, "number", source, path);
  return v.number;
}

bool as_bool(const JsonValue& v, const std::string& source, const std::string& path) {
  require_kind(v, JsonValue::Kind::kBool, "bool", source, path);
  return v.boolean;
}

const std::string& as_string(const JsonValue& v, const std::string& source,
                             const std::string& path) {
  require_kind(v, JsonValue::Kind::kString, "string", source, path);
  return v.text;
}

std::uint64_t as_u64(const JsonValue& v, const std::string& source, const std::string& path) {
  require_kind(v, JsonValue::Kind::kNumber, "number", source, path);
  if (v.raw.find_first_of(".eE-") != std::string::npos) {
    fail_at(source, v.line, path, "expected a non-negative integer, got " + v.raw);
  }
  errno = 0;
  char* end = nullptr;
  const std::uint64_t out = std::strtoull(v.raw.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    fail_at(source, v.line, path, "integer out of range: " + v.raw);
  }
  return out;
}

std::uint32_t as_u32(const JsonValue& v, const std::string& source, const std::string& path) {
  const std::uint64_t out = as_u64(v, source, path);
  if (out > std::numeric_limits<std::uint32_t>::max()) {
    fail_at(source, v.line, path, "integer out of range: " + v.raw);
  }
  return static_cast<std::uint32_t>(out);
}

double as_positive(const JsonValue& v, const std::string& source, const std::string& path) {
  const double out = as_double(v, source, path);
  if (!(out > 0)) fail_at(source, v.line, path, "must be positive, got " + v.raw);
  return out;
}

double as_non_negative(const JsonValue& v, const std::string& source,
                       const std::string& path) {
  const double out = as_double(v, source, path);
  if (!(out >= 0)) fail_at(source, v.line, path, "must be non-negative, got " + v.raw);
  return out;
}

// --- Enum names --------------------------------------------------------------

template <typename Enum>
Enum enum_from_name(const JsonValue& v, const std::vector<std::pair<const char*, Enum>>& table,
                    const char* what, const std::string& source, const std::string& path) {
  const std::string& name = as_string(v, source, path);
  std::string known;
  for (const auto& [entry_name, value] : table) {
    if (name == entry_name) return value;
    known += known.empty() ? entry_name : std::string(", ") + entry_name;
  }
  fail_at(source, v.line, path,
          std::string("unknown ") + what + " \"" + name + "\" (known: " + known + ")");
}

const std::vector<std::pair<const char*, DriftKind>>& drift_table() {
  static const std::vector<std::pair<const char*, DriftKind>> table = {
      {"none", DriftKind::kNone},
      {"rand-const", DriftKind::kRandomConstant},
      {"rand-walk", DriftKind::kRandomWalk},
      {"extremal", DriftKind::kExtremal},
  };
  return table;
}

const std::vector<std::pair<const char*, DelayKind>>& delay_table() {
  static const std::vector<std::pair<const char*, DelayKind>> table = {
      {"zero", DelayKind::kZero},           {"half", DelayKind::kHalf},
      {"max", DelayKind::kMax},             {"uniform", DelayKind::kUniform},
      {"split", DelayKind::kSplit},         {"alternating", DelayKind::kAlternating},
      {"per-link", DelayKind::kPerLink},
  };
  return table;
}

const std::vector<std::pair<const char*, AttackKind>>& attack_table() {
  static const std::vector<std::pair<const char*, AttackKind>> table = {
      {"none", AttackKind::kNone},           {"crash", AttackKind::kCrash},
      {"spam-early", AttackKind::kSpamEarly}, {"equivocate", AttackKind::kEquivocate},
      {"replay", AttackKind::kReplay},       {"forge", AttackKind::kForge},
      {"cnv-pull", AttackKind::kCnvPull},    {"lw-pull", AttackKind::kLwPull},
      {"leader-lie", AttackKind::kLeaderLie}, {"hssd-early", AttackKind::kHssdEarly},
      {"sleeper", AttackKind::kSleeper},
  };
  return table;
}

const std::vector<std::pair<const char*, TopologyKind>>& topology_table() {
  static const std::vector<std::pair<const char*, TopologyKind>> table = {
      {"complete", TopologyKind::kComplete}, {"ring", TopologyKind::kRing},
      {"torus", TopologyKind::kTorus},       {"star", TopologyKind::kStar},
      {"gnp", TopologyKind::kGnp},           {"expander", TopologyKind::kExpander},
  };
  return table;
}

const std::vector<std::pair<const char*, BroadcastMode>>& broadcast_mode_table() {
  static const std::vector<std::pair<const char*, BroadcastMode>> table = {
      {"full", BroadcastMode::kFull},
      {"neighbors", BroadcastMode::kNeighbors},
      {"sampled", BroadcastMode::kSampled},
  };
  return table;
}

const std::vector<std::pair<const char*, AdjustMode>>& adjust_table() {
  static const std::vector<std::pair<const char*, AdjustMode>> table = {
      {"instant", AdjustMode::kInstant},
      {"amortized", AdjustMode::kAmortized},
  };
  return table;
}

// --- Topology events ---------------------------------------------------------

/// Parses one "topology_events" element: {"at": T, "add": [a, b]} /
/// {"at": T, "remove": [a, b]} / {"at": T, "set": "ring"}. Structural
/// errors (types, arity, self-loops, missing/extra keys) fail here with the
/// element's line; node-range and connectivity checks need the final n and
/// run in the engine's validate_spec (surfacing at load time per cell).
experiment::TopologyEventSpec event_from_json(const JsonValue& v, const std::string& source,
                                              const std::string& path) {
  using Kind = experiment::TopologyEventSpec::Kind;
  require_kind(v, JsonValue::Kind::kObject, "object", source, path);
  experiment::TopologyEventSpec event;
  const JsonValue* at = v.find("at");
  if (at == nullptr) fail_at(source, v.line, path, "missing \"at\"");
  event.at = as_positive(*at, source, path + ".at");

  const JsonValue* action = nullptr;
  for (const auto& [key, value] : v.object) {
    if (key == "at") continue;
    if (key != "add" && key != "remove" && key != "set") {
      fail_at(source, value.line, path + "." + key, "unknown key (known: at, add, remove, set)");
    }
    if (action != nullptr) {
      fail_at(source, value.line, path, "need exactly one of \"add\", \"remove\", \"set\"");
    }
    action = &value;
    if (key == "set") {
      event.kind = Kind::kSetGraph;
      event.set = enum_from_name(value, topology_table(), "topology kind", source,
                                 path + ".set");
    } else {
      event.kind = key == "add" ? Kind::kAddEdge : Kind::kRemoveEdge;
      const std::string edge_path = path + "." + key;
      require_kind(value, JsonValue::Kind::kArray, "array", source, edge_path);
      if (value.array.size() != 2) {
        fail_at(source, value.line, edge_path, "expected an edge [a, b]");
      }
      event.a = as_u32(value.array[0], source, edge_path + "[0]");
      event.b = as_u32(value.array[1], source, edge_path + "[1]");
      if (event.a == event.b) {
        fail_at(source, value.line, edge_path, "edge endpoints must be distinct");
      }
    }
  }
  if (action == nullptr) {
    fail_at(source, v.line, path, "need exactly one of \"add\", \"remove\", \"set\"");
  }
  return event;
}

std::vector<experiment::TopologyEventSpec> events_from_json(const JsonValue& v,
                                                            const std::string& source,
                                                            const std::string& path) {
  require_kind(v, JsonValue::Kind::kArray, "array", source, path);
  std::vector<experiment::TopologyEventSpec> events;
  events.reserve(v.array.size());
  for (std::size_t i = 0; i < v.array.size(); ++i) {
    const std::string element = path + "[" + std::to_string(i) + "]";
    events.push_back(event_from_json(v.array[i], source, element));
    if (i > 0 && events[i].at < events[i - 1].at) {
      fail_at(source, v.array[i].line, element + ".at",
              "topology_events times must be non-decreasing");
    }
  }
  return events;
}

// --- Corruption fields -------------------------------------------------------

/// Parses "corrupt_at": a single positive number or a non-decreasing array of
/// them. A scalar means one corruption event, which also makes the field
/// usable as a plain sweep axis.
std::vector<RealTime> corrupt_at_from_json(const JsonValue& v, const std::string& source,
                                           const std::string& path) {
  std::vector<RealTime> out;
  if (v.kind == JsonValue::Kind::kNumber) {
    out.push_back(as_positive(v, source, path));
    return out;
  }
  require_kind(v, JsonValue::Kind::kArray, "number or array", source, path);
  out.reserve(v.array.size());
  for (std::size_t i = 0; i < v.array.size(); ++i) {
    const std::string element = path + "[" + std::to_string(i) + "]";
    out.push_back(as_positive(v.array[i], source, element));
    if (i > 0 && out[i] < out[i - 1]) {
      fail_at(source, v.array[i].line, element, "corrupt_at times must be non-decreasing");
    }
  }
  return out;
}

/// Parses "corrupt_kinds": "all" or a comma-separated subset of
/// "clocks,timers,buffers,state". Unknown names and duplicates are errors.
std::uint32_t corrupt_kinds_from_json(const JsonValue& v, const std::string& source,
                                      const std::string& path) {
  const std::string& text = as_string(v, source, path);
  std::uint32_t kinds = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::string token =
        text.substr(begin, comma == std::string::npos ? std::string::npos : comma - begin);
    const std::uint32_t bit = corrupt_kind_bit(token);
    if (bit == 0) {
      fail_at(source, v.line, path,
              "unknown corruption kind \"" + token +
                  "\" (known: clocks, timers, buffers, state, all)");
    }
    if ((kinds & bit) == bit && bit != kCorruptAll) {
      fail_at(source, v.line, path, "duplicate corruption kind \"" + token + "\"");
    }
    kinds |= bit;
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return kinds;
}

// --- Field catalog -----------------------------------------------------------

/// Applies one named scalar field to a spec; shared by the "base" object and
/// axis values, so both accept exactly the same fields under the same names
/// (which are also the sinks' column names). Returns false for unknown names.
bool apply_field(ScenarioSpec& spec, const std::string& field, const JsonValue& v,
                 const std::string& source, const std::string& path) {
  if (field == "protocol") {
    const std::string& name = as_string(v, source, path);
    if (ProtocolRegistry::global().find(name) == nullptr) {
      std::string known;
      for (const std::string& p : ProtocolRegistry::global().names()) {
        known += known.empty() ? p : ", " + p;
      }
      fail_at(source, v.line, path,
              "unregistered protocol \"" + name + "\" (known: " + known + ")");
    }
    spec.protocol = name;
  } else if (field == "n") {
    spec.cfg.n = as_u32(v, source, path);
    if (spec.cfg.n == 0) fail_at(source, v.line, path, "need at least one node");
  } else if (field == "f") {
    spec.cfg.f = as_u32(v, source, path);
  } else if (field == "rho") {
    spec.cfg.rho = as_non_negative(v, source, path);
  } else if (field == "tdel") {
    spec.cfg.tdel = as_positive(v, source, path);
  } else if (field == "period") {
    spec.cfg.period = as_positive(v, source, path);
  } else if (field == "alpha") {
    spec.cfg.alpha = as_non_negative(v, source, path);
  } else if (field == "initial_sync") {
    spec.cfg.initial_sync = as_non_negative(v, source, path);
  } else if (field == "allow_unsynchronized_start") {
    spec.cfg.allow_unsynchronized_start = as_bool(v, source, path);
  } else if (field == "adjust") {
    spec.cfg.adjust = enum_from_name(v, adjust_table(), "adjust mode", source, path);
  } else if (field == "amortize_window") {
    spec.cfg.amortize_window = as_non_negative(v, source, path);
  } else if (field == "delta") {
    spec.delta = as_positive(v, source, path);
  } else if (field == "seed") {
    spec.seed = as_u64(v, source, path);
  } else if (field == "horizon") {
    spec.horizon = as_positive(v, source, path);
  } else if (field == "drift") {
    spec.drift = enum_from_name(v, drift_table(), "drift kind", source, path);
  } else if (field == "delay") {
    spec.delay = enum_from_name(v, delay_table(), "delay kind", source, path);
  } else if (field == "attack") {
    spec.attack = enum_from_name(v, attack_table(), "attack kind", source, path);
  } else if (field == "topology") {
    spec.topology = enum_from_name(v, topology_table(), "topology kind", source, path);
  } else if (field == "gnp_p") {
    spec.gnp_p = as_double(v, source, path);
    if (!(spec.gnp_p > 0 && spec.gnp_p <= 1)) {
      fail_at(source, v.line, path, "edge probability must lie in (0, 1], got " + v.raw);
    }
  } else if (field == "topology_seed") {
    spec.topology_seed = as_u64(v, source, path);
  } else if (field == "expander_k") {
    spec.expander_k = as_u32(v, source, path);
    if (spec.expander_k < 2 || spec.expander_k % 2 != 0) {
      fail_at(source, v.line, path,
              "expander degree must be even and >= 2, got " + v.raw);
    }
  } else if (field == "broadcast_mode") {
    spec.broadcast_mode =
        enum_from_name(v, broadcast_mode_table(), "broadcast mode", source, path);
  } else if (field == "sample_size") {
    spec.sample_size = as_u32(v, source, path);
  } else if (field == "topology_events") {
    spec.topology_events = events_from_json(v, source, path);
  } else if (field == "joiners") {
    spec.joiners = as_u32(v, source, path);
  } else if (field == "join_time") {
    spec.join_time = as_positive(v, source, path);
  } else if (field == "corrupt_override") {
    spec.corrupt_override = as_u32(v, source, path);
  } else if (field == "corrupt_at") {
    spec.corrupt_at = corrupt_at_from_json(v, source, path);
  } else if (field == "corrupt_fraction") {
    spec.corrupt_fraction = as_double(v, source, path);
    if (!(spec.corrupt_fraction > 0 && spec.corrupt_fraction <= 1)) {
      fail_at(source, v.line, path, "corrupt_fraction must lie in (0, 1], got " + v.raw);
    }
  } else if (field == "corrupt_kinds") {
    spec.corrupt_kinds = corrupt_kinds_from_json(v, source, path);
  } else if (field == "churn_nodes") {
    spec.churn_nodes = as_u32(v, source, path);
  } else if (field == "churn_leave") {
    spec.churn_leave = as_positive(v, source, path);
  } else if (field == "churn_rejoin") {
    spec.churn_rejoin = as_positive(v, source, path);
  } else if (field == "partition_group") {
    spec.partition_group = as_u32(v, source, path);
  } else if (field == "partition_start") {
    spec.partition_start = as_non_negative(v, source, path);
  } else if (field == "partition_end") {
    spec.partition_end = as_positive(v, source, path);
  } else if (field == "skew_series_interval") {
    spec.skew_series_interval = as_positive(v, source, path);
  } else if (field == "envelope_interval") {
    spec.envelope_interval = as_positive(v, source, path);
  } else if (field == "sim_threads") {
    spec.sim_threads = as_u32(v, source, path);
    if (spec.sim_threads < 1 || spec.sim_threads > 64) {
      fail_at(source, v.line, path, "sim_threads must lie in [1, 64], got " + v.raw);
    }
  } else {
    return false;
  }
  return true;
}

constexpr const char* kKnownFields =
    "protocol, n, f, rho, tdel, period, alpha, initial_sync, "
    "allow_unsynchronized_start, adjust, amortize_window, delta, seed, horizon, "
    "drift, delay, attack, topology, gnp_p, topology_seed, expander_k, "
    "broadcast_mode, sample_size, topology_events, "
    "joiners, join_time, "
    "corrupt_override, corrupt_at, corrupt_fraction, corrupt_kinds, "
    "churn_nodes, churn_leave, churn_rejoin, partition_group, "
    "partition_start, partition_end, skew_series_interval, envelope_interval, "
    "sim_threads";

/// Compact single-line re-serialization, used to label array-valued axis
/// cells (e.g. a topology_events sweep) in sinks and summaries.
std::string compact_json(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kNumber: return v.raw;
    case JsonValue::Kind::kString: return "\"" + v.text + "\"";
    case JsonValue::Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i > 0) out += ",";
        out += compact_json(v.array[i]);
      }
      return out + "]";
    }
    case JsonValue::Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : v.object) {
        if (!first) out += ",";
        first = false;
        out += "\"" + key + "\":" + compact_json(value);
      }
      return out + "}";
    }
  }
  return "";
}

/// The display label an axis value contributes to its cell: the literal
/// token for scalars (so the label in sinks matches the file text), a
/// compact re-serialization for arrays (the topology_events sweep axis).
std::string value_label(const JsonValue& v, const std::string& source,
                        const std::string& path) {
  switch (v.kind) {
    case JsonValue::Kind::kString: return v.text;
    case JsonValue::Kind::kNumber: return v.raw;
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kArray: return compact_json(v);
    default:
      fail_at(source, v.line, path,
              std::string("axis values must be scalars or arrays, got ") + v.kind_name());
  }
}

std::string cell_context(const experiment::SweepCell& cell) {
  std::string out = "cell " + std::to_string(cell.index);
  if (!cell.labels.empty()) {
    out += " (";
    bool first = true;
    for (const auto& [axis, value] : cell.labels) {
      if (!first) out += ", ";
      first = false;
      out += axis + "=" + value;
    }
    out += ")";
  }
  return out;
}

/// Load-time cell validation: every materialized cell must satisfy exactly
/// the constraints the engine enforces at run time (resilience bounds,
/// joiner/churn/partition structure), with the cell named in the error.
void validate_cells(const SweepGrid& grid, const std::string& source) {
  for (const experiment::SweepCell& cell : grid.cells()) {
    const ProtocolRegistry::Entry* entry =
        ProtocolRegistry::global().find(cell.spec.protocol);
    if (entry == nullptr) {
      throw ScenarioFileError(source + ": " + cell_context(cell) +
                              ": unregistered protocol \"" + cell.spec.protocol + "\"");
    }
    try {
      experiment::validate_spec(experiment::resolved_spec(cell.spec), entry->mode);
    } catch (const std::logic_error& e) {
      throw ScenarioFileError(source + ": " + cell_context(cell) + ": " + e.what());
    }
  }
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

}  // namespace

ScenarioSpec spec_from_json(const JsonValue& value, const std::string& source,
                            const std::string& path) {
  require_kind(value, JsonValue::Kind::kObject, "object", source, path);
  ScenarioSpec spec;
  for (const auto& [field, v] : value.object) {
    if (!apply_field(spec, field, v, source, path + "." + field)) {
      fail_at(source, v.line, path + "." + field,
              std::string("unknown field (known: ") + kKnownFields + ")");
    }
  }
  return spec;
}

ScenarioSpec parse_spec(const std::string& text, const std::string& source) {
  return spec_from_json(parse_json(text, source), source);
}

std::string spec_to_json(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "{\n";
  const auto str = [&os](const char* key, const std::string& v) {
    os << "  \"" << key << "\": \"" << v << "\",\n";
  };
  const auto num = [&os](const char* key, const std::string& v, bool last = false) {
    os << "  \"" << key << "\": " << v << (last ? "\n" : ",\n");
  };
  str("protocol", spec.protocol);
  num("n", std::to_string(spec.cfg.n));
  num("f", std::to_string(spec.cfg.f));
  num("rho", fmt_double(spec.cfg.rho));
  num("tdel", fmt_double(spec.cfg.tdel));
  num("period", fmt_double(spec.cfg.period));
  num("alpha", fmt_double(spec.cfg.alpha));
  num("initial_sync", fmt_double(spec.cfg.initial_sync));
  os << "  \"allow_unsynchronized_start\": "
     << (spec.cfg.allow_unsynchronized_start ? "true" : "false") << ",\n";
  str("adjust", spec.cfg.adjust == AdjustMode::kInstant ? "instant" : "amortized");
  num("amortize_window", fmt_double(spec.cfg.amortize_window));
  num("delta", fmt_double(spec.delta));
  num("seed", std::to_string(spec.seed));
  num("horizon", fmt_double(spec.horizon));
  str("drift", drift_name(spec.drift));
  str("delay", delay_name(spec.delay));
  str("attack", attack_name(spec.attack));
  str("topology", topology_kind_name(spec.topology));
  num("gnp_p", fmt_double(spec.gnp_p));
  num("topology_seed", std::to_string(spec.topology_seed));
  num("expander_k", std::to_string(spec.expander_k));
  str("broadcast_mode", broadcast_mode_name(spec.broadcast_mode));
  num("sample_size", std::to_string(spec.sample_size));
  os << "  \"topology_events\": [";
  for (std::size_t i = 0; i < spec.topology_events.size(); ++i) {
    const experiment::TopologyEventSpec& ev = spec.topology_events[i];
    if (i > 0) os << ", ";
    os << "{\"at\": " << fmt_double(ev.at) << ", ";
    switch (ev.kind) {
      case experiment::TopologyEventSpec::Kind::kAddEdge:
        os << "\"add\": [" << ev.a << ", " << ev.b << "]";
        break;
      case experiment::TopologyEventSpec::Kind::kRemoveEdge:
        os << "\"remove\": [" << ev.a << ", " << ev.b << "]";
        break;
      case experiment::TopologyEventSpec::Kind::kSetGraph:
        os << "\"set\": \"" << topology_kind_name(ev.set) << "\"";
        break;
    }
    os << "}";
  }
  os << "],\n";
  num("joiners", std::to_string(spec.joiners));
  num("join_time", fmt_double(spec.join_time));
  num("corrupt_override", std::to_string(spec.corrupt_override));
  os << "  \"corrupt_at\": [";
  for (std::size_t i = 0; i < spec.corrupt_at.size(); ++i) {
    if (i > 0) os << ", ";
    os << fmt_double(spec.corrupt_at[i]);
  }
  os << "],\n";
  num("corrupt_fraction", fmt_double(spec.corrupt_fraction));
  str("corrupt_kinds", corrupt_kinds_name(spec.corrupt_kinds));
  num("churn_nodes", std::to_string(spec.churn_nodes));
  num("churn_leave", fmt_double(spec.churn_leave));
  num("churn_rejoin", fmt_double(spec.churn_rejoin));
  num("partition_group", std::to_string(spec.partition_group));
  num("partition_start", fmt_double(spec.partition_start));
  num("partition_end", fmt_double(spec.partition_end));
  num("skew_series_interval", fmt_double(spec.skew_series_interval));
  num("envelope_interval", fmt_double(spec.envelope_interval));
  num("sim_threads", std::to_string(spec.sim_threads), /*last=*/true);
  os << "}\n";
  return os.str();
}

SweepGrid parse_grid(const std::string& text, const std::string& source) {
  const JsonValue doc = parse_json(text, source);
  require_kind(doc, JsonValue::Kind::kObject, "object", source, "grid");
  for (const auto& [key, v] : doc.object) {
    if (key != "base" && key != "axes" && key != "reseed_per_cell") {
      fail_at(source, v.line, key, "unknown key (known: base, axes, reseed_per_cell)");
    }
  }

  ScenarioSpec base;
  if (const JsonValue* b = doc.find("base")) base = spec_from_json(*b, source, "base");

  SweepGrid grid(base);
  if (const JsonValue* axes = doc.find("axes")) {
    require_kind(*axes, JsonValue::Kind::kArray, "array", source, "axes");
    std::vector<std::string> seen;
    for (std::size_t i = 0; i < axes->array.size(); ++i) {
      const JsonValue& axis = axes->array[i];
      const std::string path = "axes[" + std::to_string(i) + "]";
      require_kind(axis, JsonValue::Kind::kObject, "object", source, path);
      for (const auto& [key, v] : axis.object) {
        if (key != "name" && key != "values") {
          fail_at(source, v.line, path + "." + key, "unknown key (known: name, values)");
        }
      }
      const JsonValue* name_v = axis.find("name");
      if (name_v == nullptr) fail_at(source, axis.line, path, "missing \"name\"");
      const std::string& name = as_string(*name_v, source, path + ".name");
      if (std::find(seen.begin(), seen.end(), name) != seen.end()) {
        fail_at(source, name_v->line, path + ".name", "duplicate axis \"" + name + "\"");
      }
      seen.push_back(name);

      const JsonValue* values_v = axis.find("values");
      if (values_v == nullptr) fail_at(source, axis.line, path, "missing \"values\"");
      require_kind(*values_v, JsonValue::Kind::kArray, "array", source, path + ".values");
      if (values_v->array.empty()) {
        fail_at(source, values_v->line, path + ".values", "axis needs at least one value");
      }

      std::vector<SweepGrid::Value> values;
      values.reserve(values_v->array.size());
      for (std::size_t j = 0; j < values_v->array.size(); ++j) {
        const JsonValue& v = values_v->array[j];
        const std::string value_path = path + ".values[" + std::to_string(j) + "]";
        std::string label = value_label(v, source, value_path);
        // Dry-run the applier now so a bad value fails at its source line
        // (the mutator itself runs later, against each cell).
        ScenarioSpec probe = base;
        if (!apply_field(probe, name, v, source, value_path)) {
          fail_at(source, name_v->line, path + ".name",
                  "unknown axis field \"" + name + "\" (known: " + kKnownFields + ")");
        }
        JsonValue captured = v;
        std::string field = name;
        std::string src = source;
        values.emplace_back(std::move(label),
                            [captured, field, src, value_path](ScenarioSpec& spec) {
                              apply_field(spec, field, captured, src, value_path);
                            });
      }
      grid.axis(name, std::move(values));
    }
  }

  if (const JsonValue* reseed = doc.find("reseed_per_cell")) {
    grid.reseed_per_cell(as_bool(*reseed, source, "reseed_per_cell"));
  }

  validate_cells(grid, source);
  return grid;
}

SweepGrid load_grid_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ScenarioFileError(path + ": cannot open scenario file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_grid(buffer.str(), path);
}

std::pair<std::size_t, std::size_t> parse_cell_range(const std::string& range,
                                                     std::size_t total) {
  const std::size_t colon = range.find(':');
  const auto parse_index = [&range](const std::string& token) -> std::size_t {
    if (token.empty() || token.find_first_not_of("0123456789") != std::string::npos) {
      throw ScenarioFileError("--cells: malformed range \"" + range +
                              "\" (expected A:B with non-negative integers)");
    }
    return static_cast<std::size_t>(std::strtoull(token.c_str(), nullptr, 10));
  };
  if (colon == std::string::npos) {
    throw ScenarioFileError("--cells: malformed range \"" + range + "\" (expected A:B)");
  }
  const std::size_t lo = parse_index(range.substr(0, colon));
  const std::size_t hi = parse_index(range.substr(colon + 1));
  if (lo >= hi) {
    throw ScenarioFileError("--cells: empty range \"" + range + "\" (need A < B)");
  }
  if (hi > total) {
    throw ScenarioFileError("--cells: range \"" + range + "\" exceeds the grid (" +
                            std::to_string(total) + " cells)");
  }
  return {lo, hi};
}

std::string merge_json_sinks(const std::vector<std::string>& shards) {
  // One record per line is part of write_json's format contract; the merge
  // keeps each record's bytes untouched so the result is byte-identical to
  // an unsharded dump over the same cells.
  std::vector<std::pair<std::uint64_t, std::string>> records;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const std::string source = "shard " + std::to_string(s);
    std::istringstream in(shards[s]);
    std::string line;
    if (!std::getline(in, line) || line != "[") {
      throw ScenarioFileError(source + ": not a JSON sink dump (expected \"[\" first line)");
    }
    bool closed = false;
    while (std::getline(in, line)) {
      if (line == "]") {
        closed = true;
        break;
      }
      std::string record = line;
      if (!record.empty() && record.back() == ',') record.pop_back();
      const JsonValue parsed = parse_json(record, source);
      const JsonValue* cell = parsed.find("cell");
      if (parsed.kind != JsonValue::Kind::kObject || cell == nullptr ||
          cell->kind != JsonValue::Kind::kNumber) {
        throw ScenarioFileError(source + ": record without a \"cell\" index: " + record);
      }
      records.emplace_back(as_u64(*cell, source, "cell"), std::move(record));
    }
    if (!closed) throw ScenarioFileError(source + ": truncated dump (missing \"]\")");
  }

  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].first == records[i - 1].first) {
      throw ScenarioFileError("duplicate cell " + std::to_string(records[i].first) +
                              " across shards");
    }
  }

  std::string out = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out += records[i].second;
    if (i + 1 < records.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

std::string merge_csv_sinks(const std::vector<std::string>& shards) {
  std::string header;
  std::vector<std::pair<std::uint64_t, std::string>> rows;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const std::string source = "shard " + std::to_string(s);
    std::istringstream in(shards[s]);
    std::string line;
    if (!std::getline(in, line) || line.rfind("cell", 0) != 0) {
      throw ScenarioFileError(source + ": not a CSV sink dump (expected a header row)");
    }
    if (header.empty()) {
      header = line;
    } else if (line != header) {
      throw ScenarioFileError(source + ": CSV header differs from the first shard's");
    }
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const std::size_t comma = line.find(',');
      const std::string index = line.substr(0, comma);
      if (index.empty() || index.find_first_not_of("0123456789") != std::string::npos) {
        throw ScenarioFileError(source + ": CSV row without a cell index: " + line);
      }
      rows.emplace_back(std::strtoull(index.c_str(), nullptr, 10), line);
    }
  }

  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].first == rows[i - 1].first) {
      throw ScenarioFileError("duplicate cell " + std::to_string(rows[i].first) +
                              " across shards");
    }
  }

  std::string out = header + "\n";
  for (const auto& [index, row] : rows) {
    (void)index;
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace stclock::scenfile
