#pragma once

#include <functional>
#include <memory>

#include "experiment/scenario.h"
#include "sim/process.h"
#include "trace/envelope.h"

/// Shared harness for the baseline algorithms (prior work the paper compares
/// against). Baselines run on exactly the same substrate — clocks, delays,
/// adversary model — as the Srikanth–Toueg protocol, because both now route
/// through the unified scenario engine (experiment/scenario.h); comparison
/// tables measure algorithms, not harness differences.
///
/// This header is the legacy shim: a BaselineSpec maps 1:1 onto a
/// ScenarioSpec, and every run_* entry point reproduces seed-identical
/// metrics through experiment::run_scenario(). New code should use the
/// scenario API with the registered protocol names ("lundelius_welch",
/// "interactive_convergence", "hssd", "leader", "leader_corrupt",
/// "unsynchronized") directly.
namespace stclock::baselines {

struct BaselineSpec {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  double rho = 1e-4;
  Duration tdel = 0.01;
  Duration period = 1.0;
  /// CNV discard threshold (also reused to size collection windows).
  Duration delta = 0.05;
  Duration initial_sync = 0.005;

  std::uint64_t seed = 1;
  RealTime horizon = 30.0;
  DriftKind drift = DriftKind::kRandomWalk;
  DelayKind delay = DelayKind::kUniform;
  AttackKind attack = AttackKind::kNone;
};

struct BaselineResult {
  double max_skew = 0;
  double steady_skew = 0;
  EnvelopeTracker::Report envelope;  ///< vs the hardware slopes 1/(1+rho), 1+rho
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
};

/// Maps a legacy spec onto the unified scenario API under `protocol`.
[[nodiscard]] experiment::ScenarioSpec to_scenario(const BaselineSpec& spec,
                                                   std::string protocol);

/// Projects a ScenarioResult back onto the legacy result struct.
[[nodiscard]] BaselineResult to_baseline_result(const experiment::ScenarioResult& result);

/// Builds the common simulation, instantiates one honest process per honest
/// node via `factory(id)`, installs the spec's attack against the baseline,
/// runs, and reports. Corrupted nodes take the highest ids.
[[nodiscard]] BaselineResult run_baseline(
    const BaselineSpec& spec, const std::function<std::unique_ptr<Process>(NodeId)>& factory);

}  // namespace stclock::baselines
