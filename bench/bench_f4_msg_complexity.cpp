// Experiment F4 — Message complexity vs system size.
//
// Figure data: messages and bytes per resynchronization round as n grows.
// Both primitives are O(n^2) messages per round: every node broadcasts
// readiness (n sends) and every node broadcasts one acceptance relay (auth)
// or one echo (echo variant). The byte cost differs: authenticated relays
// carry f+1 = Theta(n) signatures, so auth bytes grow as Theta(n^2 * n);
// echo messages are constant-size.

#include "bench_common.h"

int main(int argc, char** argv) {
  const stclock::bench::Options opts = stclock::bench::parse_options(argc, argv);
  using namespace stclock;
  bench::print_header("F4 — Message complexity vs n",
                      "O(n^2) messages per round for both primitives; auth bytes "
                      "carry Theta(n)-signature bundles", opts);

  experiment::SweepGrid grid(bench::adversarial_scenario(bench::default_auth_config(), 15.0,
                                                         opts.seed));
  grid.axis("variant", {bench::variant_value(bench::default_auth_config()),
                        bench::variant_value(bench::default_echo_config())});
  std::vector<experiment::SweepGrid::Value> sizes;
  for (const std::uint32_t n : {4u, 7u, 10u, 13u, 16u}) {
    sizes.emplace_back(std::to_string(n), [n](experiment::ScenarioSpec& spec) {
      spec.cfg.n = n;
      spec.cfg.f = spec.cfg.variant == Variant::kAuthenticated ? max_faults_authenticated(n)
                                                               : max_faults_echo(n);
      spec.attack = AttackKind::kCrash;  // count only the protocol's own traffic
    });
  }
  grid.axis("n", std::move(sizes));

  const std::vector<experiment::SweepCell> cells = grid.cells();
  const std::vector<experiment::ScenarioResult> results = bench::run_cells(cells, opts);
  if (bench::emit_json(cells, results, opts)) return 0;

  Table table({"variant", "n", "f", "msgs/round", "msgs/round/n^2", "bytes/round",
               "bytes/round/n^2"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SyncConfig& cfg = cells[i].spec.cfg;
    const experiment::ScenarioResult& r = results[i];
    const std::uint32_t n = cfg.n;
    const double rounds = static_cast<double>(r.rounds_completed);
    const double msgs = static_cast<double>(r.messages_sent) / rounds;
    const double bytes = static_cast<double>(r.bytes_sent) / rounds;
    table.add_row({cfg.variant_name(), std::to_string(n), std::to_string(cfg.f),
                   Table::num(msgs, 0), Table::num(msgs / (n * n), 2),
                   Table::num(bytes, 0), Table::num(bytes / (n * n), 1)});
  }
  stclock::bench::emit(table, opts);
  std::cout << "(msgs/round/n^2 should be ~flat in n for both variants;\n"
               " bytes/round/n^2 flat for echo, growing ~linearly in n for auth)\n";
  return 0;
}
