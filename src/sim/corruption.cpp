#include "sim/corruption.h"

namespace stclock {

namespace {

struct KindName {
  std::string_view name;
  std::uint32_t bit;
};

constexpr KindName kKindNames[] = {
    {"clocks", kCorruptClocks},
    {"timers", kCorruptTimers},
    {"buffers", kCorruptBuffers},
    {"state", kCorruptState},
};

}  // namespace

std::uint32_t corrupt_kind_bit(std::string_view name) {
  if (name == "all") return kCorruptAll;
  for (const KindName& k : kKindNames) {
    if (k.name == name) return k.bit;
  }
  return 0;
}

std::string corrupt_kinds_name(std::uint32_t kinds) {
  std::string out;
  for (const KindName& k : kKindNames) {
    if ((kinds & k.bit) == 0) continue;
    if (!out.empty()) out += ',';
    out += k.name;
  }
  return out;
}

}  // namespace stclock
