#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "scenfile/scenfile.h"

/// Negative and fuzz coverage for the scenario-file parser: every entry in
/// the malformed corpus must fail with a DISTINCT error that names the
/// offending field (no crashes, no silent defaults), and no truncation or
/// byte mutation of a valid document may escape ScenarioFileError.
namespace stclock::scenfile {
namespace {

struct BadCase {
  const char* name;
  const char* text;
  /// Every case's error must contain this field-naming fragment.
  const char* expect;
};

const BadCase kCorpus[] = {
    {"truncated_json", R"({"base": {"n": 7)", "unexpected end of input"},
    {"trailing_garbage", R"({"base": {"n": 7}} extra)", "trailing characters"},
    {"duplicate_json_key", R"({"base": {"n": 7, "n": 9}})", "duplicate key \"n\""},
    {"wrong_type_n", R"({"base": {"n": "seven"}})", "base.n: expected number, got string"},
    {"negative_n", R"({"base": {"n": -3}})", "base.n: expected a non-negative integer"},
    {"fractional_seed", R"({"base": {"seed": 1.5}})",
     "base.seed: expected a non-negative integer"},
    {"negative_duration", R"({"base": {"tdel": -0.01}})", "base.tdel: must be positive"},
    {"negative_rho", R"({"base": {"rho": -1e-4}})", "base.rho: must be non-negative"},
    {"unknown_base_field", R"({"base": {"frobnicate": 1}})",
     "base.frobnicate: unknown field"},
    {"unknown_top_level_key", R"({"bass": {}})", "bass: unknown key"},
    {"unregistered_protocol", R"({"base": {"protocol": "ntp"}})",
     "base.protocol: unregistered protocol \"ntp\""},
    {"unknown_drift", R"({"base": {"drift": "warp"}})", "unknown drift kind \"warp\""},
    {"unknown_attack", R"({"base": {"attack": "ddos"}})", "unknown attack kind \"ddos\""},
    {"auth_overcommitted_f", R"({"base": {"protocol": "auth", "n": 4, "f": 2}})",
     "resilience bound"},
    {"duplicate_axis",
     R"({"axes": [{"name": "seed", "values": [1]}, {"name": "seed", "values": [2]}]})",
     "duplicate axis \"seed\""},
    {"empty_axis_values", R"({"axes": [{"name": "seed", "values": []}]})",
     "axis needs at least one value"},
    {"unknown_axis_field", R"({"axes": [{"name": "color", "values": [1]}]})",
     "unknown axis field \"color\""},
    {"array_axis_value_on_scalar_field", R"({"axes": [{"name": "seed", "values": [[1]]}]})",
     "expected number, got array"},
    {"object_axis_value", R"({"axes": [{"name": "seed", "values": [{"v": 1}]}]})",
     "axis values must be scalars or arrays"},
    {"axis_missing_values", R"({"axes": [{"name": "seed"}]})", "missing \"values\""},
    {"churn_window_reversed",
     R"({"base": {"churn_nodes": 1, "churn_leave": 9.0, "churn_rejoin": 3.0}})",
     "churn_rejoin must come after churn_leave"},
    {"partition_covers_everyone", R"({"base": {"n": 5, "partition_group": 5}})",
     "partition_group must leave both sides non-empty"},
    {"baseline_with_joiners", R"({"base": {"protocol": "hssd", "joiners": 1}})",
     "baselines do not support joiners"},
    {"baseline_with_churn", R"({"base": {"protocol": "lundelius_welch", "churn_nodes": 1}})",
     "baselines do not support churn"},
    {"churn_eats_every_regular_node",
     R"({"base": {"protocol": "auth", "n": 3, "f": 1, "attack": "crash",
                  "churn_nodes": 2}})",
     "churn must leave at least one always-up honest node"},
    {"partition_names_missing_nodes", R"({"base": {"n": 5, "partition_group": 9}})",
     "partition_group names nodes outside [0, n)"},
    {"unknown_topology", R"({"base": {"topology": "mobius"}})",
     "unknown topology kind \"mobius\""},
    {"gnp_p_out_of_range", R"({"base": {"topology": "gnp", "gnp_p": 1.5}})",
     "edge probability must lie in (0, 1]"},
    {"disconnected_gnp",
     R"({"base": {"n": 10, "f": 1, "topology": "gnp", "gnp_p": 0.02,
                  "topology_seed": 7}})",
     "topology is disconnected"},
    // --- sparse broadcast fabric (PR-9) ---
    {"unknown_broadcast_mode", R"({"base": {"broadcast_mode": "gossip"}})",
     "unknown broadcast mode \"gossip\""},
    {"odd_expander_k", R"({"base": {"topology": "expander", "expander_k": 5}})",
     "expander degree must be even and >= 2, got 5"},
    {"sampled_without_sample_size", R"({"base": {"broadcast_mode": "sampled"}})",
     "broadcast_mode=sampled needs sample_size >= 1"},
    // --- topology_events (PR-5 dynamic topologies) ---
    {"topology_events_not_array", R"({"base": {"topology_events": 3}})",
     "base.topology_events: expected array, got number"},
    {"topology_event_missing_at",
     R"({"base": {"topology_events": [{"add": [0, 1]}]}})", "missing \"at\""},
    {"topology_event_no_action", R"({"base": {"topology_events": [{"at": 2.0}]}})",
     "need exactly one of \"add\", \"remove\", \"set\""},
    {"topology_event_two_actions",
     R"({"base": {"topology_events": [{"at": 2.0, "add": [0, 2], "remove": [1, 2]}]}})",
     "need exactly one of \"add\", \"remove\", \"set\""},
    {"topology_event_unknown_key",
     R"({"base": {"topology_events": [{"at": 2.0, "destroy": [0, 1]}]}})",
     "unknown key (known: at, add, remove, set)"},
    {"topology_event_bad_arity",
     R"({"base": {"topology_events": [{"at": 2.0, "add": [0]}]}})",
     "expected an edge [a, b]"},
    {"topology_event_self_loop",
     R"({"base": {"topology_events": [{"at": 2.0, "add": [1, 1]}]}})",
     "edge endpoints must be distinct"},
    {"topology_event_negative_time",
     R"({"base": {"topology_events": [{"at": -1.0, "add": [0, 2]}]}})",
     ".at: must be positive"},
    {"topology_event_unordered_times",
     R"({"base": {"topology_events": [{"at": 5.0, "remove": [0, 1]},
                                      {"at": 2.0, "add": [0, 1]}]}})",
     "topology_events times must be non-decreasing"},
    {"topology_event_unknown_set_kind",
     R"({"base": {"topology_events": [{"at": 2.0, "set": "mobius"}]}})",
     ".set: unknown topology kind \"mobius\""},
    // Engine-side load-time validation, mirroring the partition_group check.
    {"topology_event_node_out_of_range",
     R"({"base": {"n": 5, "topology_events": [{"at": 2.0, "add": [0, 9]}]}})",
     "topology_events names nodes outside [0, n)"},
    {"topology_event_removes_missing_link",
     R"({"base": {"n": 5, "topology": "ring",
                  "topology_events": [{"at": 2.0, "remove": [0, 2]}]}})",
     "remove_edge of a link that does not exist"},
    {"topology_event_adds_present_link",
     R"({"base": {"n": 5, "topology": "ring",
                  "topology_events": [{"at": 2.0, "add": [0, 1]}]}})",
     "add_edge of a link that already exists"},
    {"topology_event_disconnects_an_epoch",
     R"({"base": {"n": 5, "topology": "star",
                  "topology_events": [{"at": 2.0, "remove": [0, 1]}]}})",
     "disconnects the topology"},
    // --- corruption knobs (PR-7 fault injection) ---
    {"corrupt_at_wrong_type", R"({"base": {"corrupt_at": "late"}})",
     "base.corrupt_at: expected number or array, got string"},
    {"corrupt_at_negative", R"({"base": {"corrupt_at": -2.0}})",
     "base.corrupt_at: must be positive, got -2.0"},
    {"corrupt_at_decreasing", R"({"base": {"corrupt_at": [5.0, 3.0]}})",
     "base.corrupt_at[1]: corrupt_at times must be non-decreasing"},
    {"corrupt_at_past_horizon", R"({"base": {"horizon": 10.0, "corrupt_at": [12.0]}})",
     "corrupt_at must fall before the horizon"},
    {"corrupt_fraction_zero", R"({"base": {"corrupt_at": 2.0, "corrupt_fraction": 0}})",
     "corrupt_fraction must lie in (0, 1], got 0"},
    {"corrupt_fraction_above_one",
     R"({"base": {"corrupt_at": 2.0, "corrupt_fraction": 1.5}})",
     "corrupt_fraction must lie in (0, 1], got 1.5"},
    {"corrupt_kinds_unknown_name",
     R"({"base": {"corrupt_at": 2.0, "corrupt_kinds": "clocks,ram"}})",
     "unknown corruption kind \"ram\""},
    {"corrupt_kinds_duplicate_name",
     R"({"base": {"corrupt_at": 2.0, "corrupt_kinds": "timers,timers"}})",
     "duplicate corruption kind \"timers\""},
};

TEST(ScenfileErrors, EveryMalformedFileFailsWithADistinctFieldNamingError) {
  std::set<std::string> messages;
  for (const BadCase& bad : kCorpus) {
    SCOPED_TRACE(bad.name);
    std::string message;
    try {
      (void)parse_grid(bad.text, bad.name);
      FAIL() << "expected ScenarioFileError";
    } catch (const ScenarioFileError& e) {
      message = e.what();
    }
    EXPECT_NE(message.find(bad.expect), std::string::npos)
        << "error was: " << message;
    // Distinct errors: no two corpus entries may collapse into one message.
    EXPECT_TRUE(messages.insert(message).second) << "duplicate error: " << message;
  }
}

TEST(ScenfileErrors, ErrorsCarrySourceNameAndLine) {
  const char* text = "{\n  \"base\": {\n    \"tdel\": -1\n  }\n}";
  try {
    (void)parse_grid(text, "grid.json");
    FAIL() << "expected ScenarioFileError";
  } catch (const ScenarioFileError& e) {
    EXPECT_NE(std::string(e.what()).find("grid.json:3: base.tdel"), std::string::npos)
        << e.what();
  }
}

TEST(ScenfileErrors, ValidationErrorsNameTheOffendingCell) {
  // f=3 is fine for auth at n=7 but over the echo bound: only the echo cells
  // may fail, and the error must say which cell.
  const char* text = R"({
    "base": {"n": 7, "f": 3},
    "axes": [{"name": "protocol", "values": ["auth", "echo"]}]
  })";
  try {
    (void)parse_grid(text, "grid.json");
    FAIL() << "expected ScenarioFileError";
  } catch (const ScenarioFileError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("cell 1 (protocol=echo)"), std::string::npos) << message;
    EXPECT_NE(message.find("resilience"), std::string::npos) << message;
  }
}

const char* valid_document() {
  return R"({
  "base": {
    "protocol": "auth",
    "n": 7,
    "f": 2,
    "rho": 0.0001,
    "tdel": 0.01,
    "seed": 42,
    "horizon": 12.0,
    "drift": "extremal",
    "delay": "split",
    "attack": "spam-early",
    "churn_nodes": 1,
    "churn_leave": 4.0,
    "churn_rejoin": 8.0
  },
  "axes": [
    {"name": "protocol", "values": ["auth", "echo"]},
    {"name": "seed", "values": [1, 2, 3]}
  ],
  "reseed_per_cell": true
})";
}

TEST(ScenfileFuzz, EveryTruncationEitherParsesOrThrowsScenarioFileError) {
  const std::string valid = valid_document();
  ASSERT_NO_THROW((void)parse_grid(valid, "fuzz"));
  for (std::size_t len = 0; len < valid.size(); ++len) {
    try {
      (void)parse_grid(valid.substr(0, len), "fuzz");
    } catch (const ScenarioFileError&) {
      // expected for almost every prefix
    } catch (...) {
      FAIL() << "truncation at " << len << " escaped ScenarioFileError";
    }
  }
}

TEST(ScenfileFuzz, SingleByteMutationsNeverCrashOrEscape) {
  const std::string valid = valid_document();
  // Deterministic byte substitutions at every position: structural characters
  // and digits are the interesting corruptions for a JSON grammar.
  const char replacements[] = {'{', '}', '[', ']', '"', ':', ',', '0', '9',
                               '-', '.', 'x', '\\', ' ', '\n', '\0'};
  for (std::size_t pos = 0; pos < valid.size(); ++pos) {
    for (const char replacement : replacements) {
      std::string mutated = valid;
      mutated[pos] = replacement;
      try {
        (void)parse_grid(mutated, "fuzz");
      } catch (const ScenarioFileError&) {
        // fine: strict rejection
      } catch (...) {
        FAIL() << "mutation at " << pos << " ('" << replacement
               << "') escaped ScenarioFileError";
      }
    }
  }
}

}  // namespace
}  // namespace stclock::scenfile
