#!/usr/bin/env bash
# Local / CI gate: the tier-1 verify line with warnings-as-errors.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)
#
# Uses a separate build directory so the strict flags never pollute an
# incremental developer build.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
echo "check.sh: all green"
