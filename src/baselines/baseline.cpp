#include "baselines/baseline.h"

#include <utility>

namespace stclock::baselines {

experiment::ScenarioSpec to_scenario(const BaselineSpec& spec, std::string protocol) {
  experiment::ScenarioSpec scenario;
  scenario.protocol = std::move(protocol);
  scenario.cfg.n = spec.n;
  scenario.cfg.f = spec.f;
  scenario.cfg.rho = spec.rho;
  scenario.cfg.tdel = spec.tdel;
  scenario.cfg.period = spec.period;
  scenario.cfg.initial_sync = spec.initial_sync;
  scenario.delta = spec.delta;
  scenario.seed = spec.seed;
  scenario.horizon = spec.horizon;
  scenario.drift = spec.drift;
  scenario.delay = spec.delay;
  scenario.attack = spec.attack;
  return scenario;
}

BaselineResult to_baseline_result(const experiment::ScenarioResult& result) {
  BaselineResult out;
  out.max_skew = result.max_skew;
  out.steady_skew = result.steady_skew;
  out.envelope = result.envelope;
  out.messages_sent = result.messages_sent;
  out.bytes_sent = result.bytes_sent;
  return out;
}

BaselineResult run_baseline(
    const BaselineSpec& spec,
    const std::function<std::unique_ptr<Process>(NodeId)>& factory) {
  return to_baseline_result(experiment::run_scenario_with(
      to_scenario(spec, "custom"), experiment::EngineMode::kBaseline,
      [&factory](const experiment::ScenarioSpec&, NodeId id, bool) { return factory(id); }));
}

}  // namespace stclock::baselines
