#include <gtest/gtest.h>

#include "clocks/logical_clock.h"

namespace stclock {
namespace {

TEST(LogicalClock, MirrorsHardwareInitially) {
  HardwareClock hw(3.0, 1.5);
  LogicalClock clock(hw);
  EXPECT_DOUBLE_EQ(clock.read(0.0), 3.0);
  EXPECT_DOUBLE_EQ(clock.read(2.0), 6.0);
  EXPECT_DOUBLE_EQ(clock.rate_at(1.0), 1.5);
}

TEST(LogicalClock, InstantForwardAdjustment) {
  HardwareClock hw;
  LogicalClock clock(hw);
  clock.adjust_instant(/*h_now=*/5.0, /*delta=*/2.0);
  EXPECT_DOUBLE_EQ(clock.read_at_hardware(5.0), 7.0);
  EXPECT_DOUBLE_EQ(clock.read_at_hardware(6.0), 8.0);
  // Before the adjustment the old mapping holds.
  EXPECT_DOUBLE_EQ(clock.read_at_hardware(4.0), 4.0);
}

TEST(LogicalClock, InstantBackwardAdjustment) {
  HardwareClock hw;
  LogicalClock clock(hw);
  clock.adjust_instant(5.0, -1.0);
  EXPECT_DOUBLE_EQ(clock.read_at_hardware(5.0), 4.0);
  EXPECT_DOUBLE_EQ(clock.read_at_hardware(7.0), 6.0);
}

TEST(LogicalClock, StackedAdjustments) {
  HardwareClock hw;
  LogicalClock clock(hw);
  clock.adjust_instant(1.0, 0.5);
  clock.adjust_instant(2.0, 0.25);
  clock.adjust_instant(3.0, -0.125);
  EXPECT_DOUBLE_EQ(clock.read_at_hardware(4.0), 4.0 + 0.5 + 0.25 - 0.125);
  EXPECT_DOUBLE_EQ(clock.total_adjustment(), 0.625);
  EXPECT_EQ(clock.adjustment_count(), 3u);
  EXPECT_DOUBLE_EQ(clock.max_abs_adjustment(), 0.5);
}

TEST(LogicalClock, AdjustmentsMustMoveForward) {
  HardwareClock hw;
  LogicalClock clock(hw);
  clock.adjust_instant(5.0, 1.0);
  EXPECT_THROW(clock.adjust_instant(4.0, 1.0), std::logic_error);
}

TEST(LogicalClock, AmortizedAdjustmentRampsLinearly) {
  HardwareClock hw;
  LogicalClock clock(hw);
  clock.adjust_amortized(/*h_now=*/10.0, /*delta=*/1.0, /*window=*/2.0);
  EXPECT_DOUBLE_EQ(clock.read_at_hardware(10.0), 10.0);
  EXPECT_DOUBLE_EQ(clock.read_at_hardware(11.0), 11.5);  // halfway through ramp
  EXPECT_DOUBLE_EQ(clock.read_at_hardware(12.0), 13.0);  // ramp complete
  EXPECT_DOUBLE_EQ(clock.read_at_hardware(13.0), 14.0);  // back to slope 1
}

TEST(LogicalClock, AmortizedBackwardStaysMonotone) {
  HardwareClock hw;
  LogicalClock clock(hw);
  clock.adjust_amortized(0.0, -0.5, 2.0);  // slope 0.75 during ramp
  double prev = clock.read_at_hardware(0.0);
  for (double h = 0.05; h <= 4.0; h += 0.05) {
    const double cur = clock.read_at_hardware(h);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(clock.read_at_hardware(2.0), 1.5);
}

TEST(LogicalClock, AmortizedTooNegativeThrows) {
  HardwareClock hw;
  LogicalClock clock(hw);
  EXPECT_THROW(clock.adjust_amortized(0.0, -2.0, 2.0), std::logic_error);
  EXPECT_THROW(clock.adjust_amortized(0.0, 1.0, 0.0), std::logic_error);
}

TEST(LogicalClock, WhenReadsNoAdjustment) {
  HardwareClock hw(0.0, 2.0);  // local runs twice as fast
  LogicalClock clock(hw);
  // Logical reads 10 when hardware reads 10, i.e. real time 5.
  EXPECT_NEAR(clock.when_reads(0.0, 10.0), 5.0, 1e-12);
}

TEST(LogicalClock, WhenReadsTargetAlreadyPassed) {
  HardwareClock hw;
  LogicalClock clock(hw);
  EXPECT_DOUBLE_EQ(clock.when_reads(7.0, 3.0), 7.0);  // fire immediately
}

TEST(LogicalClock, WhenReadsAfterForwardJump) {
  HardwareClock hw;
  LogicalClock clock(hw);
  clock.adjust_instant(2.0, 5.0);  // at h=2 the clock jumps from 2 to 7
  // Target 6 is inside the jump: first reached exactly at the jump (h=2).
  EXPECT_NEAR(clock.when_reads(0.0, 6.0), 2.0, 1e-12);
  // Target 9 is after the jump: 9 = 7 + (h-2) -> h = 4.
  EXPECT_NEAR(clock.when_reads(0.0, 9.0), 4.0, 1e-12);
}

TEST(LogicalClock, WhenReadsAfterBackwardJump) {
  HardwareClock hw;
  LogicalClock clock(hw);
  clock.adjust_instant(2.0, -1.0);  // at h=2 the clock drops from 2 to 1
  // Queried from "now" = 2 (just after the drop), target 1.5: the clock
  // re-covers the interval; 1.5 = 1 + (h-2) -> h = 2.5.
  EXPECT_NEAR(clock.when_reads(2.0, 1.5), 2.5, 1e-12);
}

TEST(LogicalClock, WhenReadsDuringAmortizedRamp) {
  HardwareClock hw;
  LogicalClock clock(hw);
  clock.adjust_amortized(0.0, 1.0, 2.0);  // slope 1.5 on h in [0,2]
  // Logical 1.5 reached at h = 1.0.
  EXPECT_NEAR(clock.when_reads(0.0, 1.5), 1.0, 1e-12);
  // Logical 4 reached after the ramp: value(2)=3, slope 1 -> h=3.
  EXPECT_NEAR(clock.when_reads(0.0, 4.0), 3.0, 1e-12);
}

TEST(LogicalClock, WhenReadsComposesWithHardwareDrift) {
  HardwareClock hw(0.0, 0.5);  // slow hardware
  LogicalClock clock(hw);
  clock.adjust_instant(1.0, 2.0);  // at h=1 (real t=2) logical jumps to 3
  // Target logical 5: 5 = 3 + (h-1) -> h=3 -> real t = 6.
  EXPECT_NEAR(clock.when_reads(2.0, 5.0), 6.0, 1e-12);
}

TEST(LogicalClock, RateCombinesHardwareAndRamp) {
  HardwareClock hw(0.0, 2.0);
  LogicalClock clock(hw);
  clock.adjust_amortized(0.0, 2.0, 4.0);  // dL/dh = 1.5 during ramp
  EXPECT_DOUBLE_EQ(clock.rate_at(0.5), 3.0);  // 1.5 * 2.0
  EXPECT_DOUBLE_EQ(clock.rate_at(3.0), 2.0);  // ramp over (h=6 > 4? no: h=2*3=6 > 4) -> slope 1
}

TEST(LogicalClock, ReadBeforeStartThrows) {
  HardwareClock hw(5.0, 1.0);
  LogicalClock clock(hw);
  EXPECT_THROW((void)clock.read_at_hardware(4.0), std::logic_error);
}

}  // namespace
}  // namespace stclock
