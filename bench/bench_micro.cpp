// M1 — Substrate micro-benchmarks (google-benchmark).
//
// Costs of the building blocks: hashing/signing (the per-message crypto
// cost of the authenticated variant), event-queue operations, clock reads
// and inversions, and whole simulated rounds end-to-end.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <limits>
#include <string>

#include "clocks/drift_models.h"
#include "clocks/logical_clock.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "experiment/scenario.h"
#include "experiment/sweep.h"
#include "resultstore/cache_key.h"
#include "resultstore/store.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "trace/counters.h"

namespace stclock {
namespace {

void BM_Sha256_64B(benchmark::State& state) {
  const Bytes data(64, 0xAB);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha256(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_4KiB(benchmark::State& state) {
  const Bytes data(4096, 0xAB);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha256(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Sha256_4KiB);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes msg(17, 0x22);  // a round payload is this order of size
  for (auto _ : state) benchmark::DoNotOptimize(crypto::hmac_sha256(key, msg));
}
BENCHMARK(BM_HmacSha256);

void BM_SignRoundMessage(benchmark::State& state) {
  const crypto::KeyRegistry registry(16, 1);
  const crypto::Signer signer = registry.signer_for(3);
  const Bytes payload = round_signing_payload(42);
  for (auto _ : state) benchmark::DoNotOptimize(signer.sign(payload));
}
BENCHMARK(BM_SignRoundMessage);

void BM_VerifyRoundMessage(benchmark::State& state) {
  const crypto::KeyRegistry registry(16, 1);
  const Bytes payload = round_signing_payload(42);
  const crypto::Signature sig = registry.signer_for(3).sign(payload);
  for (auto _ : state) benchmark::DoNotOptimize(registry.verify(sig, payload));
}
BENCHMARK(BM_VerifyRoundMessage);

void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueue q;
  Rng rng(1);
  // Keep a standing population of 1024 events; each iteration pops the
  // earliest and pushes one at a random future time.
  for (int i = 0; i < 1024; ++i) q.push_timer(rng.next_double(), TimerEvent{0, 0});
  for (auto _ : state) {
    const Event e = q.pop();
    q.push_timer(e.time + rng.next_double(), TimerEvent{0, 0});
  }
}
BENCHMARK(BM_EventQueuePushPop);

// --- Hot-path benches (the perf trajectory tracked by scripts/bench.sh) ---

/// Broadcasts a quorum-sized RoundMsg once per simulated second. The other
/// n-1 nodes sink deliveries, so one simulated second costs one broadcast
/// fan-out (n sends) plus n deliveries through the queue/counter path.
class BroadcastDriver final : public Process {
 public:
  explicit BroadcastDriver(Message msg) : msg_(std::move(msg)) {}
  void on_start(Context& ctx) override { (void)ctx.set_timer_at_hardware(1.0); }
  void on_timer(Context& ctx, TimerId) override {
    ctx.broadcast(msg_);
    (void)ctx.set_timer_at_hardware(ctx.hardware_now() + 1.0);
  }
  void on_message(Context&, NodeId, const Message&) override {}

 private:
  Message msg_;
};

class SinkProcess final : public Process {
 public:
  void on_start(Context&) override {}
  void on_message(Context&, NodeId, const Message&) override {}
  void on_timer(Context&, TimerId) override {}
};

void run_broadcast_bench(benchmark::State& state, std::uint32_t n) {
  SimParams params;
  params.n = n;
  params.tdel = 0.01;
  params.seed = 1;
  params.max_events = std::numeric_limits<std::uint64_t>::max();  // bench runs unbounded
  std::vector<HardwareClock> clocks;
  for (std::uint32_t i = 0; i < n; ++i) clocks.emplace_back(0.0, 1.0);
  const crypto::KeyRegistry registry(n, 1);
  Simulator sim(params, std::move(clocks), std::make_unique<FixedDelay>(1.0), &registry);

  // A quorum-sized (f+1 = n/2) signature bundle: the relay message whose
  // per-recipient payload copy dominates un-interned broadcast cost.
  RoundMsg msg{1, {}};
  const Bytes payload = round_signing_payload(1);
  for (NodeId s = 0; s < n / 2 + 1; ++s) {
    msg.sigs.push_back(registry.signer_for(s).sign(payload));
  }
  sim.set_process(0, std::make_unique<BroadcastDriver>(Message(std::move(msg))));
  for (NodeId id = 1; id < n; ++id) sim.set_process(id, std::make_unique<SinkProcess>());

  RealTime t = 0;
  for (auto _ : state) {
    t += 1.0;
    sim.run_until(t);
  }
  state.SetItemsProcessed(state.iterations() * n);  // per-recipient sends
}

void BM_Broadcast_N64(benchmark::State& state) { run_broadcast_bench(state, 64); }
BENCHMARK(BM_Broadcast_N64);

void BM_Broadcast_N256(benchmark::State& state) { run_broadcast_bench(state, 256); }
BENCHMARK(BM_Broadcast_N256);

// The scale points the sparse-first refactor is judged by: same workload at
// fleet sizes where the old n x n adjacency bitset alone would have cost
// 2 GiB (65536^2 bits) and every queue op sifted through a million-entry
// heap. Tracked in BENCH_core.json next to the small-N points so a perf
// regression at scale cannot hide behind a flat N64 line.
void BM_Broadcast_N4096(benchmark::State& state) { run_broadcast_bench(state, 4096); }
BENCHMARK(BM_Broadcast_N4096)->Unit(benchmark::kMillisecond);

void BM_Broadcast_N65536(benchmark::State& state) { run_broadcast_bench(state, 65536); }
BENCHMARK(BM_Broadcast_N65536)->Unit(benchmark::kMillisecond);

void BM_TopoSwitch_Epochs(benchmark::State& state) {
  // The dynamic-topology path end-to-end: one iteration runs a 16-node ring
  // for 32 simulated seconds during which the {0, 8} chord flaps every half
  // second — 64 epoch switches — while every node broadcasts once per
  // second through the sparse fan-out. Tracks the cost of the epoch
  // machinery itself; the static-path overhead is pinned separately by
  // BM_Broadcast_* staying flat across the schedule refactor.
  constexpr std::uint32_t kN = 16;
  constexpr int kEpochs = 64;
  const auto ring = std::make_shared<const Topology>(Topology::ring(kN));
  TopologySchedule schedule;
  for (int e = 0; e < kEpochs; ++e) {
    const RealTime at = 0.5 * (e + 1);
    if (e % 2 == 0) {
      schedule.add_edge(at, 0, kN / 2);
    } else {
      schedule.remove_edge(at, 0, kN / 2);
    }
  }
  const auto compiled =
      std::make_shared<const CompiledTopologySchedule>(schedule.compile(ring));

  for (auto _ : state) {
    SimParams params;
    params.n = kN;
    params.tdel = 0.01;
    params.seed = 1;
    params.topology = ring;
    params.schedule = compiled;
    params.max_events = std::numeric_limits<std::uint64_t>::max();
    std::vector<HardwareClock> clocks;
    for (std::uint32_t i = 0; i < kN; ++i) clocks.emplace_back(0.0, 1.0);
    Simulator sim(params, std::move(clocks), std::make_unique<FixedDelay>(1.0), nullptr);
    for (NodeId id = 0; id < kN; ++id) {
      sim.set_process(id, std::make_unique<BroadcastDriver>(Message(InitMsg{1})));
    }
    sim.run_until(0.5 * kEpochs + 1.0);
    benchmark::DoNotOptimize(sim.events_dispatched());
  }
  state.SetItemsProcessed(state.iterations() * kEpochs);
}
BENCHMARK(BM_TopoSwitch_Epochs);

void BM_EventQueue_Churn(benchmark::State& state) {
  // Standing population of 1024 mixed timer/delivery events; each iteration
  // pops the earliest and pushes one of the other kind at a random future
  // time, exercising both payload paths plus heap sift cost.
  EventQueue q;
  Rng rng(7);
  const auto msg = std::make_shared<const Message>(RoundMsg{1, {}});
  for (int i = 0; i < 1024; ++i) {
    if (i % 2 == 0) {
      q.push_timer(rng.next_double(), TimerEvent{0, static_cast<TimerId>(i + 1)});
    } else {
      q.push_delivery(rng.next_double(), DeliveryEvent{0, 1, msg, 0.0});
    }
  }
  for (auto _ : state) {
    const Event e = q.pop();
    const RealTime t = e.time + rng.next_double();
    if (e.is_timer) {
      q.push_delivery(t, DeliveryEvent{0, 1, msg, e.time});
    } else {
      q.push_timer(t, TimerEvent{0, 1});
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueue_Churn);

void BM_Counters(benchmark::State& state) {
  // The per-send/per-deliver accounting exactly as the simulator performs it
  // (kind + size derivation included).
  MessageCounters c;
  const Message round = Message(RoundMsg{3, {}});
  const Message echo = Message(EchoMsg{3});
  for (auto _ : state) {
    c.on_send(message_kind(round), message_size_bytes(round));
    c.on_deliver(message_kind(round));
    c.on_send(message_kind(echo), message_size_bytes(echo));
    c.on_deliver(message_kind(echo));
  }
  benchmark::DoNotOptimize(c.total_sent());
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_Counters);

experiment::ScenarioSpec micro_scenario(const char* protocol, std::uint32_t f);

void BM_CellFingerprint(benchmark::State& state) {
  // Full cache-key derivation for one sweep cell: registry resolution,
  // canonical spec serialization, and the two-lane digest. This is the
  // per-cell overhead `scenrun --store` adds BEFORE any I/O — it must stay
  // microseconds so fingerprinting a 10^6-cell grid costs seconds.
  experiment::ScenarioSpec spec;
  spec.protocol = "gradient";
  spec.cfg.n = 8;
  spec.topology = TopologyKind::kRing;
  spec.topology_events.push_back(
      {experiment::TopologyEventSpec::Kind::kRemoveEdge, 1.0, 0, 1, TopologyKind::kRing});
  for (auto _ : state) {
    spec.seed += 1;  // vary an input so keys cannot be hoisted
    benchmark::DoNotOptimize(resultstore::cell_key(spec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CellFingerprint);

void BM_StoreLookup(benchmark::State& state) {
  // A warm hit: open, validate (length + checksum), decode a full
  // ScenarioResult. The comparison point is BM_FullRound_* — a lookup must
  // be orders of magnitude cheaper than the scenario it replaces.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("stclock-bench-store-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    const resultstore::ResultStore store(dir);
    const experiment::ScenarioSpec spec = micro_scenario("auth", 3);
    const std::string key = resultstore::cell_key(spec);
    store.save(key, experiment::run_scenario(spec));
    for (auto _ : state) {
      auto hit = store.load(key);
      benchmark::DoNotOptimize(hit);
    }
    state.SetItemsProcessed(state.iterations());
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StoreLookup);

void BM_HardwareClockRead(benchmark::State& state) {
  // A clock with 100 rate-change segments (a busy random-walk trajectory).
  HardwareClock clock(0.0, 1.0);
  for (int i = 1; i <= 100; ++i) {
    clock.set_rate_from(static_cast<double>(i), i % 2 == 0 ? 1.0001 : 0.9999);
  }
  double t = 0;
  for (auto _ : state) {
    t += 0.37;
    if (t > 100.0) t = 0;
    benchmark::DoNotOptimize(clock.read(t));
  }
}
BENCHMARK(BM_HardwareClockRead);

void BM_LogicalClockWhenReads(benchmark::State& state) {
  HardwareClock hw(0.0, 1.0001);
  LogicalClock clock(hw);
  for (int i = 1; i <= 64; ++i) {
    clock.adjust_instant(static_cast<double>(i), 0.01);  // 64 correction pieces
  }
  double target = 70.0;
  for (auto _ : state) {
    target += 0.001;
    if (target > 1000.0) target = 70.0;
    benchmark::DoNotOptimize(clock.when_reads(65.0, target));
  }
}
BENCHMARK(BM_LogicalClockWhenReads);

experiment::ScenarioSpec micro_scenario(const char* protocol, std::uint32_t f) {
  experiment::ScenarioSpec spec;
  spec.protocol = protocol;
  spec.cfg.n = 7;
  spec.cfg.f = f;
  spec.cfg.rho = 1e-4;
  spec.cfg.tdel = 0.01;
  spec.cfg.period = 1.0;
  spec.cfg.initial_sync = 0.005;
  spec.seed = 1;
  spec.horizon = 5.0;  // ~5 rounds
  spec.drift = DriftKind::kNone;
  spec.delay = DelayKind::kHalf;
  return spec;
}

void BM_FullRound_Auth(benchmark::State& state) {
  // End-to-end cost of one simulated resynchronization round (n = 7): all
  // events, crypto, and bookkeeping included.
  const experiment::ScenarioSpec spec = micro_scenario("auth", 3);
  for (auto _ : state) benchmark::DoNotOptimize(experiment::run_scenario(spec));
  state.SetItemsProcessed(state.iterations() * 5);  // rounds
}
BENCHMARK(BM_FullRound_Auth)->Unit(benchmark::kMillisecond);

void BM_FullRound_Echo(benchmark::State& state) {
  const experiment::ScenarioSpec spec = micro_scenario("echo", 2);
  for (auto _ : state) benchmark::DoNotOptimize(experiment::run_scenario(spec));
  state.SetItemsProcessed(state.iterations() * 5);
}
BENCHMARK(BM_FullRound_Echo)->Unit(benchmark::kMillisecond);

void BM_Sweep_Grid8(benchmark::State& state) {
  // An 8-cell protocol x delay grid through the SweepRunner: the scaling
  // payoff of the thread-pool sweep (state.range(0) worker threads).
  experiment::SweepGrid grid(micro_scenario("auth", 2));
  grid.protocols({"auth", "echo", "lundelius_welch", "unsynchronized"});
  grid.axis("delay", {{"half", [](experiment::ScenarioSpec& s) { s.delay = DelayKind::kHalf; }},
                      {"uniform",
                       [](experiment::ScenarioSpec& s) { s.delay = DelayKind::kUniform; }}});
  const std::vector<experiment::SweepCell> cells = grid.cells();
  const experiment::SweepRunner runner(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(runner.run(cells));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(cells.size()));
}
BENCHMARK(BM_Sweep_Grid8)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stclock

BENCHMARK_MAIN();
