#pragma once

#include <cstdint>
#include <map>
#include <string>

/// Message/byte accounting, maintained by the simulator and reported by the
/// message-complexity experiment (F4).
namespace stclock {

struct KindCount {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class MessageCounters {
 public:
  void on_send(const std::string& kind, std::size_t bytes);
  void on_deliver(const std::string& kind);

  [[nodiscard]] std::uint64_t total_sent() const { return total_sent_; }
  [[nodiscard]] std::uint64_t total_delivered() const { return total_delivered_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] const std::map<std::string, KindCount>& by_kind() const { return by_kind_; }

  void reset();

 private:
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::map<std::string, KindCount> by_kind_;
};

}  // namespace stclock
