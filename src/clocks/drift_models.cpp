#include "clocks/drift_models.h"

#include "util/contracts.h"

namespace stclock::drift {

HardwareClock constant(LocalTime initial, double rate) { return HardwareClock(initial, rate); }

HardwareClock random_constant(Rng& rng, double rho, LocalTime max_initial) {
  ST_REQUIRE(rho >= 0, "random_constant: rho must be non-negative");
  const double rate = rng.uniform(1.0 / (1.0 + rho), 1.0 + rho);
  const LocalTime initial = rng.uniform(0.0, max_initial);
  return HardwareClock(initial, rate);
}

HardwareClock random_walk(Rng& rng, double rho, LocalTime max_initial, RealTime horizon,
                          Duration switch_mean) {
  ST_REQUIRE(rho >= 0, "random_walk: rho must be non-negative");
  ST_REQUIRE(switch_mean > 0, "random_walk: switch_mean must be positive");
  const double lo = 1.0 / (1.0 + rho);
  const double hi = 1.0 + rho;
  HardwareClock clock(rng.uniform(0.0, max_initial), rng.uniform(lo, hi));
  RealTime t = rng.exponential(switch_mean);
  while (t < horizon) {
    clock.set_rate_from(t, rng.uniform(lo, hi));
    t += rng.exponential(switch_mean);
  }
  ST_ENSURE(clock.respects_drift_bound(rho), "random_walk: drift bound violated");
  return clock;
}

HardwareClock extremal_fast(LocalTime initial, double rho) {
  return HardwareClock(initial, 1.0 + rho);
}

HardwareClock extremal_slow(LocalTime initial, double rho) {
  return HardwareClock(initial, 1.0 / (1.0 + rho));
}

std::vector<HardwareClock> adversarial_fleet(std::uint32_t n, double rho,
                                             LocalTime max_initial) {
  ST_REQUIRE(n > 0, "adversarial_fleet: need at least one node");
  std::vector<HardwareClock> fleet;
  fleet.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    // Spread initial values across the allowed window; alternate extremal
    // rates so relative drift between adjacent nodes is maximal.
    const LocalTime initial =
        n == 1 ? 0.0 : max_initial * static_cast<double>(i) / static_cast<double>(n - 1);
    fleet.push_back(i % 2 == 0 ? extremal_fast(initial, rho) : extremal_slow(initial, rho));
  }
  return fleet;
}

std::vector<HardwareClock> random_fleet(Rng& rng, std::uint32_t n, double rho,
                                        LocalTime max_initial, RealTime horizon,
                                        Duration switch_mean) {
  std::vector<HardwareClock> fleet;
  fleet.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    fleet.push_back(random_walk(rng, rho, max_initial, horizon, switch_mean));
  }
  return fleet;
}

}  // namespace stclock::drift
